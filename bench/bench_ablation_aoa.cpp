// Ablation: the §9 AoA augmentation.
//
// The paper documents one limitation of ToF-trend heading detection: a
// client walking a circle around the AP keeps a constant distance, shows no
// ToF trend, and is misclassified as micro-mobile. It proposes Angle-of-
// Arrival as the fix. This ablation runs the classifier with and without the
// AoA-based orbit detector (phy/aoa.hpp) on:
//   * circular orbits at several radii  — the failure case itself,
//   * the four standard classes        — to show the fix costs (almost)
//                                        nothing elsewhere.
#include "sim/evaluation.hpp"

#include "bench_common.hpp"

int main() {
  using namespace mobiwlan;
  bench::banner("Ablation — AoA augmentation for the §9 circular-walk limitation",
                "baseline misclassifies orbits as micro 100% of the time; "
                "adding the AoA orbit detector should recover them as macro "
                "without disturbing the four standard classes");

  EvaluationOptions base;
  base.trials = 10;
  base.duration_s = 35.0;

  EvaluationOptions with_aoa = base;
  with_aoa.classifier.use_aoa = true;

  {
    TablePrinter t("circular orbit around the AP (ground truth: macro)");
    t.set_header({"radius", "baseline: macro / micro", "with AoA: macro / micro"});
    for (double radius : {8.0, 12.0, 16.0}) {
      Rng rng_a(bench::kMasterSeed + static_cast<std::uint64_t>(radius));
      Rng rng_b(bench::kMasterSeed + static_cast<std::uint64_t>(radius));
      EvaluationOptions orbit_a = base;
      orbit_a.trials = 5;
      EvaluationOptions orbit_b = with_aoa;
      orbit_b.trials = 5;
      const auto [macro_a, micro_a] = evaluate_orbit(rng_a, orbit_a, radius);
      const auto [macro_b, micro_b] = evaluate_orbit(rng_b, orbit_b, radius);
      char label[32];
      std::snprintf(label, sizeof(label), "%.0f m", radius);
      t.add_row({label,
                 TablePrinter::pct(macro_a) + " / " + TablePrinter::pct(micro_a),
                 TablePrinter::pct(macro_b) + " / " + TablePrinter::pct(micro_b)});
    }
    t.print();
  }

  {
    TablePrinter t("standard classes: accuracy without / with AoA");
    t.set_header({"class", "baseline", "with AoA"});
    Rng rng_a(bench::kMasterSeed + 99);
    Rng rng_b(bench::kMasterSeed + 99);
    const ConfusionMatrix a = evaluate_all(rng_a, base);
    const ConfusionMatrix b = evaluate_all(rng_b, with_aoa);
    for (MobilityClass cls : bench::kClasses) {
      t.add_row({std::string(to_string(cls)), TablePrinter::pct(a.accuracy(cls)),
                 TablePrinter::pct(b.accuracy(cls))});
    }
    t.print();
    std::printf("\nmean accuracy: baseline %s vs with-AoA %s "
                "(expected: within a few points; micro may give a little to "
                "the orbit detector's false positives)\n",
                TablePrinter::pct(a.mean_accuracy()).c_str(),
                TablePrinter::pct(b.mean_accuracy()).c_str());
  }
  return 0;
}
