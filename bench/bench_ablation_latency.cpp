// Ablation: per-MPDU delivery latency under aggregation policies (§9).
//
// The paper evaluates aggregation by throughput (Fig. 10); its §9 discussion
// raises real-time traffic, where *delay* is the budget. Running a CBR flow
// through the full Block ACK machinery (mac/latency_sim.*) exposes the other
// half of the §5 trade-off: long A-MPDUs under mobility lose their tails,
// and retransmissions head-of-line block the window — so the mobility-aware
// aggregation limit buys tail latency, not just throughput.
#include "mac/atheros_ra.hpp"
#include "mac/latency_sim.hpp"

#include "bench_common.hpp"

namespace mobiwlan {
namespace {

using bench::kMasterSeed;

LatencySimResult run(MobilityClass cls, bool adaptive, double fixed_limit,
                     std::uint64_t seed) {
  Rng rng(seed);
  Scenario s = make_scenario(cls, rng);
  AtherosRa ra;
  LatencySimConfig cfg;
  cfg.duration_s = 10.0;
  cfg.offered_pps = 3600.0;  // ~43 Mbps CBR: enough pressure to fill frames
  cfg.aggregation.adaptive = adaptive;
  cfg.aggregation.fixed_limit_s = fixed_limit;
  Rng sim_rng(seed + 606);
  return simulate_latency(s, ra, cfg, sim_rng);
}

}  // namespace
}  // namespace mobiwlan

int main() {
  using namespace mobiwlan;
  bench::banner("Ablation — MPDU delivery latency vs aggregation policy",
                "under device mobility long frames trade tail latency for "
                "nothing; the adaptive limit should match the best static "
                "choice per mode");

  TablePrinter t("latency per mode and aggregation policy (ms), 43 Mbps CBR");
  t.set_header({"mode", "policy", "p50", "p95", "p99", "dropped"});
  for (MobilityClass cls : {MobilityClass::kStatic, MobilityClass::kMacro}) {
    struct Policy {
      const char* name;
      bool adaptive;
      double fixed;
    };
    for (const Policy& p : {Policy{"2 ms", false, 2e-3}, Policy{"8 ms", false, 8e-3},
                            Policy{"adaptive", true, 4e-3}}) {
      SampleSet p50;
      SampleSet p95;
      SampleSet p99;
      int dropped = 0;
      for (int link = 0; link < 6; ++link) {
        const auto r = run(cls, p.adaptive, p.fixed, kMasterSeed + 9000 + link);
        p50.add(r.latencies_s.median() * 1e3);
        p95.add(r.latencies_s.quantile(0.95) * 1e3);
        p99.add(r.latencies_s.quantile(0.99) * 1e3);
        dropped += r.dropped;
      }
      t.add_row({std::string(to_string(cls)), p.name, TablePrinter::num(p50.mean(), 2),
                 TablePrinter::num(p95.mean(), 2), TablePrinter::num(p99.mean(), 2),
                 std::to_string(dropped)});
    }
  }
  t.print();

  std::printf("\nReading guide: for static clients all policies are "
              "equivalent at this load; for macro clients the 8 ms limit "
              "inflates the tail (lost frame tails head-of-line block the "
              "Block ACK window) while the adaptive policy tracks the 2 ms "
              "figure.\n");
  return 0;
}
