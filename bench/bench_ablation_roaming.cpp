// Ablation: handoff cost and 802.11r fast BSS transition (§9).
//
// The paper's roaming protocol forces disassociations, each costing a full
// scan + re-association (~200 ms) — fine for bulk transfer, painful for
// real-time traffic. §9 notes 802.11r cuts the transition to ~40 ms. This
// ablation sweeps the handoff cost for all three roaming schemes and reports
// throughput and total outage time (the jitter/loss proxy for real-time
// flows).
#include "net/roaming.hpp"

#include "bench_common.hpp"

namespace mobiwlan {
namespace {

using bench::kMasterSeed;

struct Outcome {
  double median_tput = 0.0;
  double mean_outage_s = 0.0;
  double mean_handoffs = 0.0;
};

Outcome run(RoamingScheme scheme, double handoff_outage_s, int walks) {
  SampleSet tput;
  double outage = 0.0;
  int handoffs = 0;
  for (int walk = 0; walk < walks; ++walk) {
    Rng rng(kMasterSeed + 7000 + walk);
    auto traj = WlanDeployment::corridor_walk(rng);
    WlanDeployment wlan(WlanDeployment::corridor_layout(), traj, ChannelConfig{},
                        rng);
    RoamingConfig cfg;
    cfg.duration_s = 75.0;
    cfg.handoff_outage_s = handoff_outage_s;
    Rng sim_rng(kMasterSeed + 7100 + walk);
    const RoamingResult r = simulate_roaming(wlan, scheme, cfg, sim_rng);
    tput.add(r.mean_throughput_mbps);
    outage += r.outage_s;
    handoffs += r.handoffs;
  }
  return {tput.median(), outage / walks, static_cast<double>(handoffs) / walks};
}

}  // namespace
}  // namespace mobiwlan

int main() {
  using namespace mobiwlan;
  bench::banner("Ablation — handoff cost: full scan (200 ms) vs 802.11r (40 ms)",
                "802.11r shrinks the outage budget ~5x, which mostly helps "
                "the schemes that hand off often; the motion-aware ordering "
                "must hold at both costs");

  const int walks = 10;
  TablePrinter t("median throughput (Mbps) and mean outage per 75 s walk");
  t.set_header({"scheme", "200 ms: tput", "outage", "40 ms: tput", "outage",
                "handoffs"});
  for (auto scheme : {RoamingScheme::kDefault, RoamingScheme::kSensorHint,
                      RoamingScheme::kMotionAware}) {
    const Outcome slow = run(scheme, 0.200, walks);
    const Outcome fast = run(scheme, 0.040, walks);
    t.add_row({std::string(to_string(scheme)),
               TablePrinter::num(slow.median_tput, 1),
               TablePrinter::num(slow.mean_outage_s, 2) + " s",
               TablePrinter::num(fast.median_tput, 1),
               TablePrinter::num(fast.mean_outage_s, 2) + " s",
               TablePrinter::num(fast.mean_handoffs, 1)});
  }
  t.print();

  std::printf("\nReading guide: with 802.11r the motion-aware scheme's "
              "forced disassociations become nearly free (sub-0.5 s of "
              "outage per walk), addressing the paper's real-time-traffic "
              "concern without changing the protocol.\n");
  return 0;
}
