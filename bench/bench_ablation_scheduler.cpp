// Ablation: mobility-aware client scheduling at the AP (§9 future work).
//
// "Scheduling client traffic at an AP taking movement into account" — the
// classifier tells the scheduler which client's channel actually varies, so
// opportunism (serve on peaks) is applied exactly where it pays. Two clients
// share one AP: one static, one walking. We compare round-robin,
// mobility-oblivious proportional fair, and the mobility-aware variant over
// identical channel realizations.
#include "net/scheduler.hpp"
#include "phy/error_model.hpp"
#include "phy/mcs.hpp"

#include "bench_common.hpp"

namespace mobiwlan {
namespace {

using bench::kMasterSeed;

struct RunResult {
  double total_mbps = 0.0;
  double static_share = 0.0;
  double mobile_mbps = 0.0;
};

RunResult run(Scheduler& scheduler, std::uint64_t seed) {
  Rng rng(seed);
  Scenario stat = make_scenario(MobilityClass::kStatic, rng);
  Scenario walk = make_scenario(MobilityClass::kMacro, rng);

  const double slot = 5e-3;
  const double duration = 20.0;
  double delivered[2] = {0.0, 0.0};
  int served_static = 0;
  int slots = 0;

  for (double t = 0.0; t < duration; t += slot) {
    auto rate_of = [&](Scenario& s) {
      const double snr = effective_snr_db(s.channel->csi_true(t), s.channel->snr_db(t));
      const int best = best_mcs(snr, 1500, 2);
      return expected_throughput_mbps(mcs(best), snr, 1500) * 0.7;
    };
    std::vector<ClientSlotInfo> clients(2);
    clients[0].rate_mbps = rate_of(stat);
    clients[0].mobility = MobilityMode::kStatic;
    clients[1].rate_mbps = rate_of(walk);
    clients[1].mobility = MobilityMode::kMacroAway;

    const std::size_t who = scheduler.pick(clients);
    scheduler.on_served(clients, who);
    delivered[who] += clients[who].rate_mbps * slot;
    if (who == 0) ++served_static;
    ++slots;
  }

  RunResult r;
  r.total_mbps = (delivered[0] + delivered[1]) / duration;
  r.static_share = static_cast<double>(served_static) / slots;
  r.mobile_mbps = delivered[1] / duration;
  return r;
}

}  // namespace
}  // namespace mobiwlan

int main() {
  using namespace mobiwlan;
  bench::banner("Ablation — mobility-aware scheduling at the AP (§9)",
                "opportunism applied only to the device-mobile client should "
                "beat round-robin and match-or-beat plain proportional fair, "
                "without starving the static client");

  TablePrinter t("two clients (static + walking), 20 s, mean over 8 draws");
  t.set_header({"scheduler", "total Mbps", "mobile Mbps", "static airtime share"});

  for (int which = 0; which < 3; ++which) {
    SampleSet total;
    SampleSet mobile;
    SampleSet share;
    std::string name;
    for (int draw = 0; draw < 8; ++draw) {
      RoundRobinScheduler rr;
      ProportionalFairScheduler pf;
      MobilityAwareScheduler ma;
      Scheduler* s = which == 0 ? static_cast<Scheduler*>(&rr)
                                : which == 1 ? static_cast<Scheduler*>(&pf)
                                             : static_cast<Scheduler*>(&ma);
      name = std::string(s->name());
      const RunResult r = run(*s, kMasterSeed + 9900 + draw);
      total.add(r.total_mbps);
      mobile.add(r.mobile_mbps);
      share.add(r.static_share);
    }
    t.add_row({name, TablePrinter::num(total.mean(), 1),
               TablePrinter::num(mobile.mean(), 1), TablePrinter::pct(share.mean())});
  }
  t.print();

  std::printf("\nReading guide: the gain over proportional fair is real but "
              "modest (~1%%) because indoor channel swings are slow relative "
              "to the PF averaging window — consistent with the paper "
              "leaving scheduling as future work rather than a headline "
              "result. The important property is that the opportunism boost "
              "is self-normalizing: the static client's airtime share stays "
              "at parity.\n");
  return 0;
}
