// Ablation: which channel mechanisms carry the classification signal.
//
// DESIGN.md argues the substitution preserves the paper's mechanisms because
// each classifier stage keys on a specific physical effect. This ablation
// disables those effects one at a time and re-runs the Table-1 evaluation:
//   * no ToF noise          — macro detection should get EASIER (cleaner
//                             trends), showing the median filter earns its
//                             keep only under realistic jitter;
//   * coarse ToF clock      — a 44 MHz timestamp clock doubles quantization,
//                             degrading macro detection;
//   * no environmental movers-as-paths (weak blockage only) — environmental
//                             should collapse into static;
//   * frozen people         — environmental becomes literally static.
#include "sim/evaluation.hpp"

#include "bench_common.hpp"

namespace mobiwlan {
namespace {

ConfusionMatrix run(const char* /*label*/, const ChannelConfig& channel,
                    std::uint64_t seed) {
  EvaluationOptions opt;
  opt.trials = 10;
  opt.duration_s = 35.0;
  opt.scenario.channel = channel;
  Rng rng(seed);
  return evaluate_all(rng, opt);
}

}  // namespace
}  // namespace mobiwlan

int main() {
  using namespace mobiwlan;
  bench::banner("Ablation — channel mechanisms vs classifier stages",
                "each substrate mechanism maps to one classifier signal; "
                "removing it should move exactly the class that depends on it");

  struct Variant {
    const char* name;
    ChannelConfig config;
  };
  std::vector<Variant> variants;

  variants.push_back({"full substrate", ChannelConfig{}});

  {
    ChannelConfig c;
    c.tof_noise_ns = 0.0;
    variants.push_back({"no ToF jitter", c});
  }
  {
    ChannelConfig c;
    c.tof_clock_hz = 44e6;  // the raw Atheros timestamp clock, no interpolation
    variants.push_back({"44 MHz ToF clock", c});
  }
  {
    ChannelConfig c;
    c.person_reflection_loss_lo_db = 40.0;  // movers contribute ~nothing
    c.person_reflection_loss_hi_db = 46.0;
    c.blockage_depth_weak_db = 0.0;
    c.blockage_depth_strong_db = 0.0;
    variants.push_back({"people invisible to RF", c});
  }
  {
    ChannelConfig c;
    c.mover_amplitude_weak_m = 0.0;  // people present but frozen
    c.mover_amplitude_strong_m = 0.0;
    c.blockage_depth_weak_db = 0.0;
    c.blockage_depth_strong_db = 0.0;
    variants.push_back({"people frozen", c});
  }

  TablePrinter t("per-class accuracy under substrate ablations");
  t.set_header({"variant", "static", "environmental", "micro", "macro"});
  for (const auto& v : variants) {
    const ConfusionMatrix m = run(v.name, v.config, bench::kMasterSeed + 5);
    t.add_row({v.name, TablePrinter::pct(m.accuracy(MobilityClass::kStatic)),
               TablePrinter::pct(m.accuracy(MobilityClass::kEnvironmental)),
               TablePrinter::pct(m.accuracy(MobilityClass::kMicro)),
               TablePrinter::pct(m.accuracy(MobilityClass::kMacro))});
  }
  t.print();

  std::printf("\nReading guide: removing ToF jitter should raise macro "
              "accuracy; the coarse 44 MHz clock should lower it; making "
              "people RF-invisible or frozen should collapse the "
              "environmental class toward static while leaving the "
              "device-mobility classes intact.\n");
  return 0;
}
