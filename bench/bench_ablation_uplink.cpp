// Ablation: uplink traffic (§9 discussion).
//
// The paper focuses on downlink but argues that rate adaptation and frame
// aggregation "can also be implemented on the client side as well to benefit
// uplink traffic". For uplink, the classifier still runs at the AP (only the
// AP computes ToF from data-ACK timestamps), so the client's rate adapter
// learns the mobility mode from periodic advertisements. This ablation
// sweeps that advertisement latency to show how much of the downlink gain
// survives hint staleness.
#include "mac/atheros_ra.hpp"
#include "mac/link_sim.hpp"

#include "bench_common.hpp"

namespace mobiwlan {
namespace {

using bench::kMasterSeed;

double run(bool aware, double hint_latency_s, std::uint64_t seed) {
  Rng rng(seed);
  Scenario s = make_scenario(seed % 2 == 0 ? MobilityClass::kMacro
                                           : MobilityClass::kMicro,
                             rng);
  LinkSimConfig cfg;
  cfg.duration_s = 12.0;
  cfg.tcp_stall_s = 0.025;
  cfg.mobility_hint_latency_s = hint_latency_s;
  Rng frame_rng(seed + 4242);
  if (aware) {
    AtherosRa ra = make_mobility_aware_atheros_ra();
    return simulate_link(s, ra, cfg, frame_rng).goodput_mbps;
  }
  AtherosRa ra;
  return simulate_link(s, ra, cfg, frame_rng).goodput_mbps;
}

}  // namespace
}  // namespace mobiwlan

int main() {
  using namespace mobiwlan;
  bench::banner("Ablation — uplink: mobility hints advertised to the client (§9)",
                "the AP classifies; the client-side RA consumes hints with "
                "advertisement latency. Mobility modes persist for seconds, "
                "so most of the gain should survive beacon-scale staleness");

  const int links = 10;
  SampleSet stock;
  for (int link = 0; link < links; ++link)
    stock.add(run(false, 0.0, kMasterSeed + 8800 + link));

  TablePrinter t("median goodput (Mbps), client-side RA on uplink");
  t.set_header({"hint latency", "motion-aware", "gain vs stock"});
  t.add_row({"(stock, no hints)", TablePrinter::num(stock.median(), 1), "0.0%"});
  for (double latency : {0.0, 0.1, 0.5, 1.0, 3.0}) {
    SampleSet aware;
    for (int link = 0; link < links; ++link)
      aware.add(run(true, latency, kMasterSeed + 8800 + link));
    char label[40];
    if (latency == 0.0)
      std::snprintf(label, sizeof(label), "0 (downlink baseline)");
    else
      std::snprintf(label, sizeof(label), "%.1f s", latency);
    t.add_row({label, TablePrinter::num(aware.median(), 1),
               TablePrinter::pct(aware.median() / stock.median() - 1.0)});
  }
  t.print();

  std::printf("\nReading guide: mobility modes change on multi-second "
              "timescales (Fig. 8a), so hint latencies up to ~1 s (a handful "
              "of beacon intervals) retain most of the downlink gain; only "
              "multi-second staleness erodes it.\n");
  return 0;
}
