// Ablation: channel-width and MIMO-mode adaptation (§9's null result).
//
// The paper's discussion suggests two more knobs mobility-awareness could
// drive — drop from 40 MHz to a more robust 20 MHz channel, or prefer
// spatial diversity over multiplexing, when the client moves away — but
// reports that "our preliminary experiments did not show any significant
// gains for these two cases." This ablation reproduces that *negative*
// result: on moving-away links we compare the oracle throughput of the
// standard configuration against oracle width / MIMO-mode adaptation.
//
//   * 20 MHz: data rate scales by 52/108 data subcarriers, noise bandwidth
//     halves (+3 dB SNR).
//   * Diversity (STBC/MRC single stream): ~3 dB SNR gain over the
//     power-split dual-stream configuration, at half the peak rate.
#include "phy/error_model.hpp"

#include "bench_common.hpp"

namespace mobiwlan {
namespace {

using bench::kMasterSeed;

double best_tput_40mhz(double snr_db) {
  const int best = best_mcs(snr_db, 1500, 2);
  return expected_throughput_mbps(mcs(best), snr_db, 1500);
}

double best_tput_20mhz(double snr_db) {
  // Half the bandwidth: +3 dB SNR (half the noise power), 52/108 of the rate.
  const double scale = 52.0 / 108.0;
  double best = 0.0;
  for (const auto& e : mcs_table()) {
    McsEntry narrow = e;
    narrow.rate_mbps *= scale;
    best = std::max(best, expected_throughput_mbps(narrow, snr_db + 3.0, 1500));
  }
  return best;
}

double best_tput_diversity(double snr_db) {
  // Single stream with transmit/receive diversity gain (~3 dB) instead of
  // splitting power across two streams.
  double best = 0.0;
  for (const auto& e : mcs_table()) {
    if (e.streams != 1) continue;
    best = std::max(best, expected_throughput_mbps(e, snr_db + 3.0, 1500));
  }
  return best;
}

}  // namespace
}  // namespace mobiwlan

int main() {
  using namespace mobiwlan;
  bench::banner("Ablation — channel width & MIMO mode adaptation (§9 null result)",
                "the paper's preliminary experiments found no significant "
                "gains from either knob; the oracle gains here should be "
                "near zero except at the very edge of coverage");

  SampleSet width_gain;
  SampleSet diversity_gain;
  SampleSet width_gain_edge;
  SampleSet diversity_gain_edge;

  Rng master(kMasterSeed + 42);
  const int links = 12;
  for (int link = 0; link < links; ++link) {
    // A moving-away client: SNR decays through the run.
    Scenario s = make_radial_scenario(false, 10.0, master);
    for (double t = 0.0; t < 25.0; t += 1.0) {
      const double snr =
          effective_snr_db(s.channel->csi_true(t), s.channel->snr_db(t));
      const double base = best_tput_40mhz(snr);
      if (base < 1.0) continue;  // link effectively dead either way
      const double w = best_tput_20mhz(snr) / base - 1.0;
      const double d = best_tput_diversity(snr) / base - 1.0;
      width_gain.add(w);
      diversity_gain.add(d);
      if (snr < 10.0) {
        width_gain_edge.add(w);
        diversity_gain_edge.add(d);
      }
    }
  }

  TablePrinter t("oracle gain from switching, moving-away links");
  t.set_header({"knob", "median gain (all samples)", "p90", "median at SNR<10 dB"});
  t.add_row({"40 MHz -> 20 MHz", TablePrinter::pct(width_gain.median()),
             TablePrinter::pct(width_gain.quantile(0.9)),
             width_gain_edge.empty() ? "n/a"
                                     : TablePrinter::pct(width_gain_edge.median())});
  t.add_row({"multiplexing -> diversity", TablePrinter::pct(diversity_gain.median()),
             TablePrinter::pct(diversity_gain.quantile(0.9)),
             diversity_gain_edge.empty()
                 ? "n/a"
                 : TablePrinter::pct(diversity_gain_edge.median())});
  t.print();

  std::printf("\nReading guide: the narrower channel never wins — the MCS "
              "ladder already provides its robustness at full width — and "
              "diversity only pays below ~10 dB, where absolute rates are "
              "tiny. Averaged over a walk both medians are zero-to-negative, "
              "matching the paper's \"no significant gains\" finding.\n");
  return 0;
}
