// bench_common.hpp — shared helpers for the per-figure bench binaries.
#pragma once

#include <cstdio>
#include <string>

#include "chan/scenario.hpp"
#include "core/mobility_classifier.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace mobiwlan::bench {

/// Master seed for all bench binaries; change to re-draw every "location".
inline constexpr std::uint64_t kMasterSeed = 20140204;  // CoNEXT'14

/// Print a figure banner with the paper's headline expectation.
inline void banner(const std::string& figure, const std::string& expectation) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", figure.c_str());
  std::printf("Paper: %s\n", expectation.c_str());
  std::printf("================================================================\n");
}

/// Drives a classifier over a scenario at the standard measurement cadences
/// and invokes `on_second(t, mode)` once per second after the warmup.
template <typename PerSecond>
void run_classifier(const Scenario& s, double duration_s, double warmup_s,
                    PerSecond on_second,
                    MobilityClassifier::Config cfg = {}) {
  MobilityClassifier clf(cfg);
  double next_csi = 0.0;
  double next_tof = 0.0;
  double next_second = warmup_s;
  for (double t = 0.0; t < duration_s; t += cfg.tof_period_s) {
    if (t >= next_csi - 1e-9) {
      clf.on_csi(t, s.channel->csi_at(t));
      next_csi += cfg.csi_period_s;
    }
    clf.on_tof(t, s.channel->tof_cycles(t));
    (void)next_tof;
    if (t >= next_second) {
      on_second(t, clf.mode());
      next_second += 1.0;
    }
  }
}

/// The four coarse classes in display order.
inline const MobilityClass kClasses[] = {
    MobilityClass::kStatic, MobilityClass::kEnvironmental, MobilityClass::kMicro,
    MobilityClass::kMacro};

}  // namespace mobiwlan::bench
