// bench_common.hpp — shared helpers for the per-figure bench binaries.
//
// The trial cadence loop and the master seed live in src/runtime/ (shared
// with the unified mobiwlan-bench driver); this header forwards to them so
// the standalone binaries keep their historical spellings.
#pragma once

#include <cstdio>
#include <string>

#include "chan/scenario.hpp"
#include "core/mobility_classifier.hpp"
#include "runtime/classifier_driver.hpp"
#include "runtime/experiment.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace mobiwlan::bench {

/// Master seed for all bench binaries (defined once, in the runtime layer).
using runtime::kMasterSeed;

/// Drives a classifier over a scenario at the standard measurement cadences
/// and invokes `on_second(t, mode)` once per second after the warmup.
/// (Defined once in runtime/classifier_driver.*; forwarded here.)
using runtime::run_classifier;

/// Print a figure banner with the paper's headline expectation.
inline void banner(const std::string& figure, const std::string& expectation) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", figure.c_str());
  std::printf("Paper: %s\n", expectation.c_str());
  std::printf("================================================================\n");
}

/// The four coarse classes in display order.
inline const MobilityClass kClasses[] = {
    MobilityClass::kStatic, MobilityClass::kEnvironmental, MobilityClass::kMicro,
    MobilityClass::kMacro};

}  // namespace mobiwlan::bench
