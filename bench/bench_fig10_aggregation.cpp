// Figure 10: frame aggregation (§5).
//  (a) mean throughput vs maximum aggregation time (2/4/8 ms) per mobility
//      mode — the optimum shrinks with mobility intensity;
//  (b) CDF of throughput for the adaptive mobility-aware limit vs statically
//      configured 4 ms (the stock default) and 8 ms (paper: +15% median over
//      the 4 ms default).
#include "mac/atheros_ra.hpp"
#include "mac/link_sim.hpp"

#include "bench_common.hpp"

namespace mobiwlan {
namespace {

using bench::kMasterSeed;

double run_link(MobilityClass cls, bool adaptive, double fixed_limit,
                std::uint64_t seed) {
  Rng rng(seed);
  Scenario s = make_scenario(cls, rng);
  AtherosRa ra;  // stock RA for all: isolate the aggregation policy
  LinkSimConfig cfg;
  cfg.duration_s = 10.0;
  cfg.aggregation.adaptive = adaptive;
  cfg.aggregation.fixed_limit_s = fixed_limit;
  Rng frame_rng(seed + 31337);
  return simulate_link(s, ra, cfg, frame_rng).goodput_mbps;
}

}  // namespace
}  // namespace mobiwlan

int main() {
  using namespace mobiwlan;

  bench::banner("Figure 10(a) — throughput vs max aggregation time per mode",
                "static/environmental peak at 8 ms; micro/macro peak at 2 ms "
                "(long frames outlive the channel estimate under motion)");
  {
    TablePrinter t("mean throughput (Mbps) vs aggregation time");
    t.set_header({"mode", "2 ms", "4 ms", "8 ms", "best"});
    for (MobilityClass cls : bench::kClasses) {
      double means[3];
      const double limits[3] = {2e-3, 4e-3, 8e-3};
      for (int li = 0; li < 3; ++li) {
        SampleSet tput;
        for (int link = 0; link < 8; ++link)
          tput.add(run_link(cls, false, limits[li],
                            kMasterSeed + 900 + link));
        means[li] = tput.mean();
      }
      const int best = static_cast<int>(std::max_element(means, means + 3) - means);
      const char* labels[3] = {"2 ms", "4 ms", "8 ms"};
      t.add_row({std::string(to_string(cls)), TablePrinter::num(means[0], 1),
                 TablePrinter::num(means[1], 1), TablePrinter::num(means[2], 1),
                 labels[best]});
    }
    t.print();
  }

  bench::banner("Figure 10(b) — adaptive vs statically configured aggregation",
                "adaptive beats the stock 4 ms default (~15% median) and the "
                "8 ms configuration on mixed-mobility links");
  {
    SampleSet adaptive;
    SampleSet fixed4;
    SampleSet fixed8;
    const MobilityClass mix[] = {MobilityClass::kStatic, MobilityClass::kMicro,
                                 MobilityClass::kMacro, MobilityClass::kMacro,
                                 MobilityClass::kEnvironmental};
    const int links = 15;
    for (int link = 0; link < links; ++link) {
      const MobilityClass cls = mix[link % 5];
      const std::uint64_t seed = kMasterSeed + 1200 + link;
      adaptive.add(run_link(cls, true, 4e-3, seed));
      fixed4.add(run_link(cls, false, 4e-3, seed));
      fixed8.add(run_link(cls, false, 8e-3, seed));
    }
    std::fputs(render_cdf_table("throughput (Mbps)", {{"aggregation 8 ms", &fixed8},
                                                      {"aggregation 4 ms", &fixed4},
                                                      {"adaptive", &adaptive}})
                   .c_str(),
               stdout);
    std::printf("\nmedian gain of adaptive over the 4 ms default: %+.1f%% "
                "(paper: ~+15%%); over 8 ms: %+.1f%%\n",
                100.0 * (adaptive.median() / fixed4.median() - 1.0),
                100.0 * (adaptive.median() / fixed8.median() - 1.0));
  }
  return 0;
}
