// Figure 11: SU transmit beamforming (§6.1/§6.3).
//  (a) throughput vs CSI feedback period per mobility mode — static clients
//      prefer long periods (feedback is pure overhead), mobile clients
//      prefer short ones (stale beams lose the array gain);
//  (b) CDF of throughput: adaptive per-mode feedback period vs the stock
//      statically configured 20 ms (paper: +33% median).
#include "core/policy.hpp"
#include "sim/beamforming_sim.hpp"

#include "bench_common.hpp"

namespace mobiwlan {
namespace {

using bench::kMasterSeed;

double run_bf(MobilityClass cls, bool adaptive, double fixed_period,
              std::uint64_t seed) {
  Rng rng(seed);
  // Beamforming links in the paper are the longer office links; keep the
  // default draw range but a single RX chain (the BF client was another AP).
  ScenarioOptions opt;
  opt.channel.n_rx = 1;
  // Beamforming pays off at cell edge: the 4.8 dB array gain is worth 2-3
  // MCS steps there, and stale beams lose all of it.
  opt.min_distance_m = 26.0;
  opt.max_distance_m = 48.0;
  opt.min_link_snr_db = 5.0;
  Scenario s = make_scenario(cls, rng, opt);
  BeamformingSimConfig cfg;
  cfg.duration_s = 10.0;
  cfg.adaptive_period = adaptive;
  cfg.fixed_period_s = fixed_period;
  Rng sim_rng(seed + 1234);
  return simulate_su_beamforming(s, cfg, sim_rng).throughput_mbps;
}

}  // namespace
}  // namespace mobiwlan

int main() {
  using namespace mobiwlan;

  bench::banner("Figure 11(a) — SU-BF throughput vs CSI feedback period",
                "static: monotonically better with longer periods; mobile "
                "modes: an interior optimum, then decay as the beam goes stale");
  {
    const double periods[] = {2e-3, 5e-3, 10e-3, 20e-3, 50e-3, 200e-3};
    TablePrinter t("mean throughput (Mbps) vs feedback period");
    t.set_header({"mode", "2 ms", "5 ms", "10 ms", "20 ms", "50 ms", "200 ms"});
    for (MobilityClass cls : bench::kClasses) {
      std::vector<std::string> row{std::string(to_string(cls))};
      for (double period : periods) {
        SampleSet tput;
        for (int link = 0; link < 6; ++link)
          tput.add(run_bf(cls, false, period, kMasterSeed + 2100 + link));
        row.push_back(TablePrinter::num(tput.mean(), 1));
      }
      t.add_row(row);
    }
    t.print();
  }

  bench::banner("Figure 11(b) — adaptive feedback period vs the stock default",
                "median throughput gain ~33% across mobile links");
  {
    SampleSet adaptive;
    SampleSet fixed_default;
    const MobilityClass mix[] = {MobilityClass::kStatic, MobilityClass::kMicro,
                                 MobilityClass::kMacro, MobilityClass::kEnvironmental};
    const double stock_period = default_params().bf_update_period_s;
    const int links = 16;
    for (int link = 0; link < links; ++link) {
      const MobilityClass cls = mix[link % 4];
      const std::uint64_t seed = kMasterSeed + 2400 + link;
      adaptive.add(run_bf(cls, true, stock_period, seed));
      fixed_default.add(run_bf(cls, false, stock_period, seed));
    }
    std::fputs(render_cdf_table("throughput (Mbps)",
                                {{"default (2 ms)", &fixed_default},
                                 {"motion-aware period", &adaptive}})
                   .c_str(),
               stdout);
    std::printf("\nmedian gain: %+.1f%% (paper: ~+33%%)\n",
                100.0 * (adaptive.median() / fixed_default.median() - 1.0));
  }
  return 0;
}
