// Figure 12: MU-MIMO with per-client CSI feedback periods (§6.2/§6.3),
// reproduced with the same trace-based zero-forcing emulation methodology
// the paper used (their AP lacked 802.11ac, as does our simulated one).
//  (a) per-client throughput vs (common) feedback period for a 3-client mix
//      of environmental / micro / macro mobility;
//  (b) CDF of the throughput gain of per-client adaptive periods over the
//      static 20 ms configuration across random 3-client draws (~40% mean).
#include "sim/beamforming_sim.hpp"

#include "bench_common.hpp"

namespace mobiwlan {
namespace {

using bench::kMasterSeed;

ScenarioOptions client_options() {
  ScenarioOptions opt;
  opt.channel.n_rx = 1;  // single-antenna MU-MIMO clients
  return opt;
}

struct Trio {
  Scenario env;
  Scenario micro;
  Scenario macro;
};

Trio make_trio(std::uint64_t seed) {
  Rng rng(seed);
  const auto opt = client_options();
  Trio trio{make_scenario(MobilityClass::kEnvironmental, rng, opt),
            make_scenario(MobilityClass::kMicro, rng, opt),
            make_scenario(MobilityClass::kMacro, rng, opt)};
  return trio;
}

}  // namespace
}  // namespace mobiwlan

int main() {
  using namespace mobiwlan;

  bench::banner("Figure 12(a) — MU-MIMO throughput vs CSI feedback period",
                "3 clients (env/micro/macro): stale feedback collapses the "
                "mobile client's SINR while static clients barely move");
  {
    const double periods[] = {2e-3, 5e-3, 10e-3, 20e-3, 50e-3, 200e-3};
    TablePrinter t("per-client throughput (Mbps) vs feedback period");
    t.set_header({"period", "environmental", "micro", "macro", "total"});
    for (double period : periods) {
      double sums[4] = {0, 0, 0, 0};
      const int draws = 4;
      for (int draw = 0; draw < draws; ++draw) {
        Trio trio = make_trio(kMasterSeed + 3000 + draw);
        BeamformingSimConfig cfg;
        cfg.duration_s = 8.0;
        cfg.fixed_period_s = period;
        Rng sim_rng(kMasterSeed + 3100 + draw);
        const auto r = simulate_mu_mimo({&trio.env, &trio.micro, &trio.macro},
                                        cfg, sim_rng);
        for (int k = 0; k < 3; ++k) sums[k] += r.per_client_mbps[k];
        sums[3] += r.total_mbps;
      }
      char label[32];
      std::snprintf(label, sizeof(label), "%.0f ms", period * 1e3);
      t.add_row({label, TablePrinter::num(sums[0] / draws, 1),
                 TablePrinter::num(sums[1] / draws, 1),
                 TablePrinter::num(sums[2] / draws, 1),
                 TablePrinter::num(sums[3] / draws, 1)});
    }
    t.print();
  }

  bench::banner("Figure 12(b) — adaptive per-client periods vs 2 ms default",
                "gain for every client mix; largest for macro clients; "
                "~40% average network-throughput improvement");
  {
    SampleSet gains;
    SampleSet macro_gains;
    const int draws = 12;
    for (int draw = 0; draw < draws; ++draw) {
      const std::uint64_t seed = kMasterSeed + 3500 + draw;
      MuMimoSimResult adaptive;
      MuMimoSimResult fixed;
      for (int mode = 0; mode < 2; ++mode) {
        Trio trio = make_trio(seed);  // identical channels for both schemes
        BeamformingSimConfig cfg;
        cfg.duration_s = 8.0;
        cfg.adaptive_period = mode == 0;
        cfg.fixed_period_s = 2e-3;  // the stock always-sound default
        Rng sim_rng(seed + 50);
        const auto r = simulate_mu_mimo({&trio.env, &trio.micro, &trio.macro},
                                        cfg, sim_rng);
        (mode == 0 ? adaptive : fixed) = r;
      }
      gains.add(adaptive.total_mbps / fixed.total_mbps - 1.0);
      macro_gains.add(adaptive.per_client_mbps[2] / fixed.per_client_mbps[2] - 1.0);
    }
    std::fputs(render_cdf_table("throughput gain (fraction)",
                                {{"network total", &gains},
                                 {"macro client", &macro_gains}})
                   .c_str(),
               stdout);
    std::printf("\nmean network gain: %+.1f%% (paper: ~+40%%); macro-client "
                "mean gain: %+.1f%% (paper: largest of the three)\n",
                100.0 * gains.mean(), 100.0 * macro_gains.mean());
  }
  return 0;
}
