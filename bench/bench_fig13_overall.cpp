// Figure 13: the end-to-end system experiment (§7). A client walks through
// the 6-AP floor while the AP stack runs either the complete mobility-aware
// suite (controller roaming + Table-2 RA + adaptive aggregation + adaptive
// beamforming feedback) or the stock mobility-oblivious defaults.
// Paper: the mobility-aware system wins in all 9 tests, ~2x median.
#include "sim/overall_sim.hpp"
#include "util/significance.hpp"

#include "bench_common.hpp"

namespace mobiwlan {
namespace {

using bench::kMasterSeed;

}  // namespace
}  // namespace mobiwlan

int main() {
  using namespace mobiwlan;
  bench::banner("Figure 13(b) — end-to-end throughput, all four optimizations",
                "mobility-aware beats the default stack in every walk; "
                "~2x median overall in the paper");

  SampleSet aware;
  SampleSet stock;
  int wins = 0;
  const int walks = 9;  // the paper ran 9 tests

  TablePrinter t("per-walk UDP throughput (Mbps)");
  t.set_header({"walk", "default stack", "mobility-aware", "gain"});
  for (int walk = 0; walk < walks; ++walk) {
    double results[2];
    for (int mode = 0; mode < 2; ++mode) {
      // Identical walk and deployment per stack.
      Rng rng(kMasterSeed + 4000 + walk);
      auto traj = WlanDeployment::corridor_walk(rng);
      WlanDeployment wlan(WlanDeployment::corridor_layout(), traj,
                          ChannelConfig{}, rng);
      OverallSimConfig cfg;
      cfg.duration_s = 60.0;
      cfg.mobility_aware = mode == 1;
      Rng sim_rng(kMasterSeed + 4100 + walk);
      results[mode] = simulate_overall(wlan, cfg, sim_rng).throughput_mbps;
    }
    stock.add(results[0]);
    aware.add(results[1]);
    if (results[1] > results[0]) ++wins;
    t.add_row({std::to_string(walk + 1), TablePrinter::num(results[0], 1),
               TablePrinter::num(results[1], 1),
               TablePrinter::pct(results[1] / results[0] - 1.0)});
  }
  t.print();

  std::fputs(render_cdf_table("end-to-end throughput (Mbps)",
                              {{"802.11n default", &stock},
                               {"motion-aware", &aware}})
                 .c_str(),
             stdout);
  std::printf("\nwins: %d/%d (paper: all); median gain %+.1f%% "
              "(paper: ~+100%%)\n",
              wins, walks, 100.0 * (aware.median() / stock.median() - 1.0));

  const BootstrapInterval ci =
      bootstrap_median_diff_ci(aware.samples(), stock.samples());
  std::printf("bootstrap 95%% CI on the median difference: [%.1f, %.1f] Mbps "
              "(point %.1f) -> %s\n",
              ci.lo, ci.hi, ci.point,
              ci.lo > 0.0 ? "significant" : "NOT significant at 95%");
  return 0;
}
