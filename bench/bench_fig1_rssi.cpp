// Figure 1: CDF of the standard deviation of RSSI (computed every 5 s) for
// the four mobility types. The paper's point: RSSI variation under
// environmental mobility overlaps (often exceeds) that under device
// mobility, so RSSI alone cannot separate them.
#include "bench_common.hpp"

namespace mobiwlan {
namespace {

using bench::kMasterSeed;

SampleSet rssi_stddevs(MobilityClass cls, int trials, Rng& master) {
  SampleSet out;
  for (int trial = 0; trial < trials; ++trial) {
    Scenario s = make_scenario(cls, master);
    // RSSI read from every ACK; 5-second windows (§2.2 / Fig. 1).
    for (double window = 0.0; window < 30.0; window += 5.0) {
      std::vector<double> rssi;
      for (double t = window; t < window + 5.0; t += 0.05)
        rssi.push_back(s.channel->rssi_dbm(t));
      out.add(stddev_of(rssi));
    }
  }
  return out;
}

}  // namespace
}  // namespace mobiwlan

int main() {
  using namespace mobiwlan;
  bench::banner("Figure 1 — CDF of std-dev of RSSI (5 s windows) per mobility type",
                "static ~0; environmental overlaps device mobility, so RSSI "
                "cannot separate environmental from device motion");

  Rng master(kMasterSeed);
  const int trials = 12;

  SampleSet static_s = rssi_stddevs(MobilityClass::kStatic, trials, master);
  Rng env_rng = master.split();
  SampleSet env_s;
  for (int trial = 0; trial < trials; ++trial) {
    Scenario s = make_environmental_scenario(EnvironmentalActivity::kStrong, env_rng);
    for (double window = 0.0; window < 30.0; window += 5.0) {
      std::vector<double> rssi;
      for (double t = window; t < window + 5.0; t += 0.05)
        rssi.push_back(s.channel->rssi_dbm(t));
      env_s.add(stddev_of(rssi));
    }
  }
  SampleSet micro_s = rssi_stddevs(MobilityClass::kMicro, trials, master);
  SampleSet macro_s = rssi_stddevs(MobilityClass::kMacro, trials, master);

  std::fputs(render_cdf_table("RSSI std-dev (dB) per mobility type",
                              {{"static", &static_s},
                               {"environmental", &env_s},
                               {"micro", &micro_s},
                               {"macro", &macro_s}})
                 .c_str(),
             stdout);

  std::fputs(render_ascii_cdf("environmental", env_s).c_str(), stdout);
  std::fputs(render_ascii_cdf("macro", macro_s).c_str(), stdout);

  // Overlap check: fraction of environmental windows whose std-dev exceeds
  // the micro-mobility median — the paper's "often higher" observation.
  const double micro_median = micro_s.median();
  const double overlap = 1.0 - env_s.cdf_at(micro_median);
  std::printf("\nShape check: static median %.2f dB (expected ~0); "
              "%.0f%% of environmental windows exceed the micro median "
              "(expected a substantial overlap)\n",
              static_s.median(), 100.0 * overlap);
  return 0;
}
