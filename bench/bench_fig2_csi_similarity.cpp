// Figure 2: CSI similarity (Eq. 1).
//  (a) similarity vs sampling period per mobility mode;
//  (b) CDF of similarity of consecutive samples at tau = 0.5 s —
//      Thr_sta = 0.98 and Thr_env = 0.7 separate static / environmental /
//      device mobility;
//  (c) micro vs macro similarity CDFs at fast sampling (5/10/25 ms): large
//      overlap, so CSI cannot separate the two device-mobility modes.
#include "core/csi_similarity.hpp"

#include "bench_common.hpp"

namespace mobiwlan {
namespace {

using bench::kMasterSeed;

/// Similarity samples for one scenario class at a given sampling period.
SampleSet similarities(MobilityClass cls,
                       std::optional<EnvironmentalActivity> activity,
                       double period_s, int trials, Rng& master) {
  SampleSet out;
  for (int trial = 0; trial < trials; ++trial) {
    Scenario s = activity ? make_environmental_scenario(*activity, master)
                          : make_scenario(cls, master);
    CsiMatrix prev = s.channel->csi_at(0.0);
    for (double t = period_s; t < 15.0; t += period_s) {
      const CsiMatrix cur = s.channel->csi_at(t);
      out.add(csi_similarity(prev, cur));
      prev = cur;
    }
  }
  return out;
}

}  // namespace
}  // namespace mobiwlan

int main() {
  using namespace mobiwlan;
  Rng master(kMasterSeed);
  const int trials = 10;

  // ---- (a) similarity vs sampling period --------------------------------
  bench::banner("Figure 2(a) — CSI similarity vs sampling period",
                "static stays ~1 at any period; device mobility drops fastest; "
                "environmental in between");
  {
    TablePrinter t("median CSI similarity vs sampling period");
    t.set_header({"period", "static", "env-weak", "env-strong", "micro", "macro"});
    for (double period : {0.005, 0.01, 0.025, 0.05, 0.1, 0.2, 0.3, 0.5}) {
      Rng row = master.split();
      const SampleSet st = similarities(MobilityClass::kStatic, std::nullopt,
                                        period, trials, row);
      const SampleSet ew = similarities(MobilityClass::kEnvironmental,
                                        EnvironmentalActivity::kWeak, period,
                                        trials, row);
      const SampleSet es = similarities(MobilityClass::kEnvironmental,
                                        EnvironmentalActivity::kStrong, period,
                                        trials, row);
      const SampleSet mi = similarities(MobilityClass::kMicro, std::nullopt,
                                        period, trials, row);
      const SampleSet ma = similarities(MobilityClass::kMacro, std::nullopt,
                                        period, trials, row);
      char label[32];
      std::snprintf(label, sizeof(label), "%.0f ms", period * 1e3);
      t.add_row({label, TablePrinter::num(st.median(), 3),
                 TablePrinter::num(ew.median(), 3), TablePrinter::num(es.median(), 3),
                 TablePrinter::num(mi.median(), 3), TablePrinter::num(ma.median(), 3)});
    }
    t.print();
  }

  // ---- (b) CDFs at tau = 0.5 s -------------------------------------------
  bench::banner("Figure 2(b) — CDF of similarity of consecutive samples (0.5 s)",
                "static above Thr_sta=0.98; environmental between 0.7 and 0.98; "
                "device mobility below Thr_env=0.7");
  {
    Rng row = master.split();
    const SampleSet st =
        similarities(MobilityClass::kStatic, std::nullopt, 0.5, trials, row);
    const SampleSet ew = similarities(MobilityClass::kEnvironmental,
                                      EnvironmentalActivity::kWeak, 0.5, trials, row);
    const SampleSet es = similarities(MobilityClass::kEnvironmental,
                                      EnvironmentalActivity::kStrong, 0.5, trials, row);
    const SampleSet mi =
        similarities(MobilityClass::kMicro, std::nullopt, 0.5, trials, row);
    const SampleSet ma =
        similarities(MobilityClass::kMacro, std::nullopt, 0.5, trials, row);
    std::fputs(render_cdf_table("CSI similarity at 0.5 s",
                                {{"static", &st},
                                 {"env-weak", &ew},
                                 {"env-strong", &es},
                                 {"micro", &mi},
                                 {"macro", &ma}})
                   .c_str(),
               stdout);
    std::printf("\nThreshold check: %.0f%% of static samples > 0.98 | "
                "%.0f%% of env samples in (0.7, 0.98] | "
                "%.0f%% of device samples <= 0.7\n",
                100.0 * (1.0 - st.cdf_at(0.98)),
                100.0 * (ew.cdf_at(0.98) - ew.cdf_at(0.7) + es.cdf_at(0.98) -
                         es.cdf_at(0.7)) /
                    2.0,
                100.0 * (mi.cdf_at(0.7) + ma.cdf_at(0.7)) / 2.0);
  }

  // ---- (c) micro vs macro at fast sampling --------------------------------
  bench::banner("Figure 2(c) — micro vs macro similarity at fast sampling",
                "the gap grows with faster sampling but the distributions "
                "still overlap: CSI alone cannot split micro from macro");
  {
    TablePrinter t("micro vs macro similarity quantiles");
    t.set_header({"period", "micro p25", "micro p50", "micro p75", "macro p25",
                  "macro p50", "macro p75", "overlap"});
    for (double period : {0.005, 0.010, 0.025}) {
      Rng row = master.split();
      const SampleSet mi =
          similarities(MobilityClass::kMicro, std::nullopt, period, trials, row);
      const SampleSet ma =
          similarities(MobilityClass::kMacro, std::nullopt, period, trials, row);
      // Overlap: fraction of micro samples below the macro p75 — a
      // misclassification proxy (paper: >5% even at 5 ms).
      const double overlap = mi.cdf_at(ma.quantile(0.75));
      char label[32];
      std::snprintf(label, sizeof(label), "%.0f ms", period * 1e3);
      t.add_row({label, TablePrinter::num(mi.quantile(0.25), 3),
                 TablePrinter::num(mi.median(), 3),
                 TablePrinter::num(mi.quantile(0.75), 3),
                 TablePrinter::num(ma.quantile(0.25), 3),
                 TablePrinter::num(ma.median(), 3),
                 TablePrinter::num(ma.quantile(0.75), 3), TablePrinter::pct(overlap)});
    }
    t.print();
  }
  return 0;
}
