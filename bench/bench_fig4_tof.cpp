// Figure 4: ToF values over time under device mobility. For micro-mobility
// the (noisy) readings wander randomly; for macro-mobility (a user walking
// toward and away from the AP periodically) they show clear secular trends.
#include "core/tof_tracker.hpp"

#include "bench_common.hpp"

namespace mobiwlan {
namespace {

using bench::kMasterSeed;

/// Per-second ToF medians (the classifier's working signal) for a scenario.
std::vector<double> per_second_medians(Scenario& s, double duration_s) {
  std::vector<double> out;
  MedianAggregator agg;
  double epoch = 0.0;
  for (double t = 0.0; t < duration_s; t += 0.02) {
    if (t - epoch >= 1.0) {
      if (auto m = agg.flush()) out.push_back(*m);
      epoch += 1.0;
    }
    agg.add(s.channel->tof_cycles(t));
  }
  return out;
}

void print_series(const char* name, const std::vector<double>& medians) {
  std::printf("%s (per-second ToF medians, clock cycles):\n  ", name);
  for (std::size_t i = 0; i < medians.size(); ++i) {
    std::printf("%6.1f", medians[i]);
    if ((i + 1) % 12 == 0) std::printf("\n  ");
  }
  std::printf("\n");
}

}  // namespace
}  // namespace mobiwlan

int main() {
  using namespace mobiwlan;
  bench::banner("Figure 4 — ToF over time under device mobility",
                "micro: random noise around a constant; macro (periodic "
                "toward/away walk): steady increasing/decreasing ramps");

  Rng master(kMasterSeed);

  Scenario micro = make_scenario(MobilityClass::kMicro, master);
  auto micro_medians = per_second_medians(micro, 60.0);
  print_series("micro-mobility", micro_medians);
  std::printf("  span: %.1f cycles (expected: small, noise-dominated)\n\n",
              SampleSet(micro_medians).max() - SampleSet(micro_medians).min());

  Scenario macro = make_bounce_scenario(4.0, 28.0, master);
  auto macro_medians = per_second_medians(macro, 60.0);
  print_series("macro-mobility (periodic toward/away)", macro_medians);

  // Count monotone runs of >= 4 medians in the macro series (the trend the
  // detector keys on) vs in the micro series.
  // Count monotone stretches of >= 4 s that also moved >= 3 cycles — flat
  // quantized plateaus do not count as walking.
  auto monotone_runs = [](const std::vector<double>& xs) {
    int runs = 0;
    std::size_t start = 0;
    int dir = 0;
    auto close_run = [&](std::size_t end) {
      if (end - start >= 3 && std::abs(xs[end] - xs[start]) >= 3.0) ++runs;
    };
    for (std::size_t i = 1; i < xs.size(); ++i) {
      const int d = xs[i] > xs[i - 1] ? 1 : (xs[i] < xs[i - 1] ? -1 : dir);
      if (d != dir && dir != 0) {
        close_run(i - 1);
        start = i - 1;
      }
      dir = d;
    }
    close_run(xs.size() - 1);
    return runs;
  };
  std::printf("\nShape check: monotone runs (>=4 s) — macro: %d, micro: %d "
              "(expected: macro >> micro)\n",
              monotone_runs(macro_medians), monotone_runs(micro_medians));

  // True distance for reference.
  std::printf("macro true distance at t=0/15/30/45 s: %.1f / %.1f / %.1f / %.1f m\n",
              macro.channel->true_distance(0.0), macro.channel->true_distance(15.0),
              macro.channel->true_distance(30.0), macro.channel->true_distance(45.0));
  return 0;
}
