// Figure 6: sensitivity of the two detector halves.
//  (a) accuracy / false positives of CSI-based static-vs-device detection
//      as a function of the CSI sampling period — short periods miss slow
//      channel change under device mobility;
//  (b) accuracy / false positives of macro-vs-micro detection as a function
//      of the ToF trend window — longer windows are more accurate but slower
//      (paper: a 4 s window reaches ~98%).
#include "bench_common.hpp"

namespace mobiwlan {
namespace {

using bench::kMasterSeed;

/// (a): fraction of device-mobility seconds detected as device mobility
/// (accuracy) and of static seconds flagged as device mobility (FP).
std::pair<double, double> csi_detection(double csi_period_s, int trials,
                                        Rng& master) {
  MobilityClassifier::Config cfg;
  cfg.csi_period_s = csi_period_s;
  int device_hits = 0;
  int device_total = 0;
  int static_fp = 0;
  int static_total = 0;
  for (int trial = 0; trial < trials; ++trial) {
    {
      const Scenario s = make_scenario(trial % 2 == 0 ? MobilityClass::kMicro
                                                      : MobilityClass::kMacro,
                                       master);
      bench::run_classifier(
          s, 25.0, 8.0,
          [&](double, MobilityMode mode) {
            ++device_total;
            if (is_device_mobility(mode)) ++device_hits;
          },
          cfg);
    }
    {
      const Scenario s = make_scenario(MobilityClass::kStatic, master);
      bench::run_classifier(
          s, 25.0, 8.0,
          [&](double, MobilityMode mode) {
            ++static_total;
            if (is_device_mobility(mode)) ++static_fp;
          },
          cfg);
    }
  }
  return {static_cast<double>(device_hits) / std::max(1, device_total),
          static_cast<double>(static_fp) / std::max(1, static_total)};
}

/// (b): macro detection accuracy and micro->macro false positives as a
/// function of the ToF trend window.
std::pair<double, double> tof_detection(std::size_t window, int trials,
                                        Rng& master) {
  MobilityClassifier::Config cfg;
  cfg.tof.trend_window = window;
  int macro_hits = 0;
  int macro_total = 0;
  int micro_fp = 0;
  int micro_total = 0;
  for (int trial = 0; trial < trials; ++trial) {
    {
      // Controlled radial walks: the detector's design regime.
      const Scenario s =
          make_radial_scenario(trial % 2 == 0, trial % 2 == 0 ? 30.0 : 8.0, master);
      bench::run_classifier(
          s, 18.0, static_cast<double>(window) + 4.0,
          [&](double, MobilityMode mode) {
            ++macro_total;
            if (is_macro(mode)) ++macro_hits;
          },
          cfg);
    }
    {
      const Scenario s = make_scenario(MobilityClass::kMicro, master);
      bench::run_classifier(
          s, 25.0, static_cast<double>(window) + 4.0,
          [&](double, MobilityMode mode) {
            ++micro_total;
            if (is_macro(mode)) ++micro_fp;
          },
          cfg);
    }
  }
  return {static_cast<double>(macro_hits) / std::max(1, macro_total),
          static_cast<double>(micro_fp) / std::max(1, micro_total)};
}

}  // namespace
}  // namespace mobiwlan

int main() {
  using namespace mobiwlan;
  Rng master(kMasterSeed);
  const int trials = 10;

  bench::banner("Figure 6(a) — CSI-based device-motion detection vs sampling period",
                "accuracy low for very short periods (channel barely changes "
                "between samples), high by ~500 ms; false positives stay low");
  {
    TablePrinter t("device-mobility detection vs CSI sampling period");
    t.set_header({"period", "accuracy", "false positives"});
    for (double period : {0.005, 0.01, 0.025, 0.05, 0.1, 0.5}) {
      Rng row = master.split();
      const auto [acc, fp] = csi_detection(period, trials, row);
      char label[32];
      std::snprintf(label, sizeof(label), "%.0f ms", period * 1e3);
      t.add_row({label, TablePrinter::pct(acc), TablePrinter::pct(fp)});
    }
    t.print();
  }

  bench::banner("Figure 6(b) — macro detection vs ToF trend window",
                "longer windows more accurate (4 s ~ 98% in the paper) but "
                "slower to react; micro false positives stay low");
  {
    TablePrinter t("macro-mobility detection vs ToF window");
    t.set_header({"window", "accuracy", "false positives"});
    for (std::size_t window : {2u, 3u, 4u, 5u, 6u, 8u}) {
      Rng row = master.split();
      const auto [acc, fp] = tof_detection(window, trials, row);
      char label[32];
      std::snprintf(label, sizeof(label), "%zu s", window);
      t.add_row({label, TablePrinter::pct(acc), TablePrinter::pct(fp)});
    }
    t.print();
  }
  return 0;
}
