// Figure 7: client roaming (§3).
//  (a) throughput gain of always using the strongest AP vs sticking with the
//      current one, per mobility mode — only "moving away" gains much;
//  (b) walking-client throughput CDFs for the default client, the
//      sensor-hint client ([1]), and the paper's controller-based
//      motion-aware roaming (~30% median gain over default).
#include "net/roaming.hpp"

#include "bench_common.hpp"

namespace mobiwlan {
namespace {

using bench::kMasterSeed;

constexpr double kSpacing = 35.0;  // must match corridor_layout()

std::shared_ptr<const Trajectory> trajectory_for(MobilityMode mode, Rng& rng,
                                                 double corridor_len) {
  const Vec2 start{rng.uniform(10.0, corridor_len - 10.0), rng.uniform(-6.0, 6.0)};
  switch (mode) {
    case MobilityMode::kStatic:
    case MobilityMode::kEnvironmental:
      return std::make_shared<StaticTrajectory>(start);
    case MobilityMode::kMicro:
      return std::make_shared<MicroTrajectory>(start, rng);
    case MobilityMode::kMacroToward: {
      // Walk toward the nearest AP along the corridor: the serving AP only
      // gets closer, so roaming should buy nothing.
      const double nearest = std::round(start.x / kSpacing) * kSpacing;
      const Vec2 dir{nearest - start.x, -start.y};
      return std::make_shared<LinearTrajectory>(start, dir, 1.2);
    }
    case MobilityMode::kMacroAway: {
      // Walk away from the nearest AP down the corridor, toward its
      // neighbor: exactly the case where a better AP appears mid-walk.
      const double nearest = std::round(start.x / kSpacing) * kSpacing;
      double away = start.x >= nearest ? 1.0 : -1.0;
      // Head toward the interior so a neighbor AP actually exists.
      if (nearest <= 0.0) away = 1.0;
      if (nearest >= corridor_len) away = -1.0;
      return std::make_shared<LinearTrajectory>(start, Vec2{away, 0.05}, 1.2);
    }
  }
  return std::make_shared<StaticTrajectory>(start);
}

}  // namespace
}  // namespace mobiwlan

int main() {
  using namespace mobiwlan;
  Rng master(kMasterSeed);
  const double corridor_len = 5.0 * kSpacing;

  bench::banner("Figure 7(a) — gain from roaming to the strongest AP vs sticking",
                "marginal for static/environmental/micro and moving-toward; "
                "significant only when moving away from the current AP");
  {
    TablePrinter t("oracle-vs-stick throughput gain per mobility mode");
    t.set_header({"mode", "median gain", "p75 gain"});
    for (MobilityMode mode :
         {MobilityMode::kMacroToward, MobilityMode::kEnvironmental,
          MobilityMode::kMicro, MobilityMode::kStatic, MobilityMode::kMacroAway}) {
      SampleSet gains;
      for (int trial = 0; trial < 10; ++trial) {
        Rng rng = master.split();
        ChannelConfig cfg;
        cfg.activity = mode == MobilityMode::kEnvironmental
                           ? EnvironmentalActivity::kStrong
                           : EnvironmentalActivity::kNone;
        auto traj = trajectory_for(mode, rng, corridor_len);
        WlanDeployment wlan(WlanDeployment::corridor_layout(), traj, cfg, rng);
        RoamingConfig rc;
        rc.duration_s = 30.0;  // a full inter-AP gap at walking speed
        const auto [oracle, stick] = oracle_vs_stick(wlan, rc);
        gains.add(stick > 0 ? oracle / stick - 1.0 : 0.0);
      }
      t.add_row({std::string(to_string(mode)), TablePrinter::pct(gains.median()),
                 TablePrinter::pct(gains.quantile(0.75))});
    }
    t.print();
  }

  bench::banner("Figure 7(b) — walking-client throughput per roaming scheme",
                "motion-aware > sensor-hint > default; ~30% median gain of "
                "motion-aware over the default sticky client");
  {
    SampleSet by_scheme[3];
    int handoffs[3] = {0, 0, 0};
    const int walks = 12;
    for (int walk = 0; walk < walks; ++walk) {
      for (int si = 0; si < 3; ++si) {
        // Identical walk + deployment per scheme (same seeds).
        Rng rng(kMasterSeed + 1000 + walk);
        auto traj = WlanDeployment::corridor_walk(rng);
        WlanDeployment wlan(WlanDeployment::corridor_layout(), traj,
                            ChannelConfig{}, rng);
        RoamingConfig rc;
        rc.duration_s = 75.0;
        Rng sim_rng(kMasterSeed + 2000 + walk);
        const auto scheme = static_cast<RoamingScheme>(si);
        const RoamingResult r = simulate_roaming(wlan, scheme, rc, sim_rng);
        by_scheme[si].add(r.mean_throughput_mbps);
        handoffs[si] += r.handoffs;
      }
    }
    std::fputs(render_cdf_table("throughput (Mbps) per scheme",
                                {{"default", &by_scheme[0]},
                                 {"sensor-hint", &by_scheme[1]},
                                 {"motion-aware", &by_scheme[2]}})
                   .c_str(),
               stdout);
    std::printf("\nhandoffs per walk: default %.1f | sensor-hint %.1f | "
                "motion-aware %.1f\n",
                static_cast<double>(handoffs[0]) / walks,
                static_cast<double>(handoffs[1]) / walks,
                static_cast<double>(handoffs[2]) / walks);
    std::printf("median gain over default: sensor-hint %+.1f%% | "
                "motion-aware %+.1f%% (paper: motion-aware ~+30%%, above "
                "sensor-hint)\n",
                100.0 * (by_scheme[1].median() / by_scheme[0].median() - 1.0),
                100.0 * (by_scheme[2].median() / by_scheme[0].median() - 1.0));
  }
  return 0;
}
