// Figure 8: how the optimal bit-rate behaves under mobility (trace-based,
// like the paper's §4 emulation).
//  (a) CDF of the time a given bit-rate stays optimal, per mobility mode —
//      long under static, short under device mobility;
//  (b) optimal MCS over time while moving toward / away from the AP —
//      trends up / down respectively;
//  (c) optimal MCS over time under environmental/micro mobility — no trend,
//      fluctuates within a small band.
#include "phy/error_model.hpp"

#include "bench_common.hpp"

namespace mobiwlan {
namespace {

using bench::kMasterSeed;

/// Oracle optimal MCS series sampled every `step` seconds.
std::vector<int> optimal_series(Scenario& s, double duration_s, double step) {
  std::vector<int> out;
  for (double t = 0.0; t < duration_s; t += step) {
    const double snr =
        effective_snr_db(s.channel->csi_true(t), s.channel->snr_db(t));
    out.push_back(best_mcs(snr, 1500, 2));
  }
  return out;
}

/// Durations (seconds) for which the optimal rate was stable.
SampleSet hold_durations(MobilityClass cls, int trials, Rng& master,
                         double step = 0.05) {
  SampleSet out;
  for (int trial = 0; trial < trials; ++trial) {
    Scenario s = make_scenario(cls, master);
    const auto series = optimal_series(s, 20.0, step);
    double hold = step;
    for (std::size_t i = 1; i < series.size(); ++i) {
      if (series[i] == series[i - 1]) {
        hold += step;
      } else {
        out.add(hold);
        hold = step;
      }
    }
    out.add(hold);
  }
  return out;
}

void print_mcs_series(const char* name, const std::vector<int>& series,
                      double step) {
  std::printf("%s (optimal MCS every %.1f s):\n  ", name, step);
  for (std::size_t i = 0; i < series.size(); ++i) {
    std::printf("%3d", series[i]);
    if ((i + 1) % 20 == 0) std::printf("\n  ");
  }
  std::printf("\n");
}

}  // namespace
}  // namespace mobiwlan

int main() {
  using namespace mobiwlan;
  Rng master(kMasterSeed);

  bench::banner("Figure 8(a) — CDF of time a bit-rate stays optimal",
                "static holds for seconds; device mobility changes the "
                "optimal rate within hundreds of milliseconds");
  {
    const SampleSet st = hold_durations(MobilityClass::kStatic, 8, master);
    const SampleSet en = hold_durations(MobilityClass::kEnvironmental, 8, master);
    const SampleSet mi = hold_durations(MobilityClass::kMicro, 8, master);
    const SampleSet ma = hold_durations(MobilityClass::kMacro, 8, master);
    std::fputs(render_cdf_table("optimal-rate hold duration (s)",
                                {{"static", &st},
                                 {"environmental", &en},
                                 {"micro", &mi},
                                 {"macro", &ma}})
                   .c_str(),
               stdout);
    std::printf("\nShape check: static median %.2f s vs macro median %.2f s "
                "(expected: order-of-magnitude gap)\n",
                st.median(), ma.median());
  }

  bench::banner("Figure 8(b) — optimal MCS over time, moving toward / away",
                "toward: rate ramps upward; away: rate ramps downward");
  {
    Scenario toward = make_radial_scenario(true, 32.0, master);
    const auto toward_series = optimal_series(toward, 20.0, 1.0);
    print_mcs_series("moving toward", toward_series, 1.0);

    Scenario away = make_radial_scenario(false, 8.0, master);
    const auto away_series = optimal_series(away, 20.0, 1.0);
    print_mcs_series("moving away", away_series, 1.0);

    std::printf("\nShape check: toward net change %+d MCS, away net change "
                "%+d MCS (expected: positive / negative)\n",
                toward_series.back() - toward_series.front(),
                away_series.back() - away_series.front());
  }

  bench::banner("Figure 8(c) — optimal MCS over time, environmental / micro",
                "no directional trend; stays within a small band of rates");
  {
    Scenario env = make_environmental_scenario(EnvironmentalActivity::kStrong, master);
    const auto env_series = optimal_series(env, 20.0, 1.0);
    print_mcs_series("environmental", env_series, 1.0);

    Scenario micro = make_scenario(MobilityClass::kMicro, master);
    const auto micro_series = optimal_series(micro, 20.0, 1.0);
    print_mcs_series("micro", micro_series, 1.0);

    auto band = [](const std::vector<int>& xs) {
      int lo = xs[0];
      int hi = xs[0];
      for (int x : xs) {
        lo = std::min(lo, x);
        hi = std::max(hi, x);
      }
      return hi - lo;
    };
    std::printf("\nShape check: env band %d MCS, micro band %d MCS "
                "(expected: small; cf. toward/away ramps above)\n",
                band(env_series), band(micro_series));
  }
  return 0;
}
