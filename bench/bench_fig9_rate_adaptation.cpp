// Figure 9 standalone binary. The trial code now lives in suite/fig9.cpp,
// registered with the unified mobiwlan-bench driver and sharded across a
// runtime::ThreadPool; this wrapper keeps the historical one-binary-per-
// figure entry point.
#include "suite/suite.hpp"

int main() { return mobiwlan::benchsuite::run_standalone("fig9"); }
