// Figure 9: mobility-aware rate adaptation (§4.3).
//  (a) per-link TCP throughput: stock Atheros RA vs the motion-aware variant
//      on device-mobility links (paper: +23% median);
//  (b) identical-channel comparison of five schemes — stock, motion-aware,
//      RapidSample (sensor hints), SoftRate, ESNR (paper: motion-aware beats
//      RapidSample, matches SoftRate, reaches ~90% of ESNR).
#include "mac/atheros_ra.hpp"
#include "mac/esnr_ra.hpp"
#include "mac/link_sim.hpp"
#include "mac/sensor_hint_ra.hpp"
#include "mac/softrate_ra.hpp"

#include "bench_common.hpp"

namespace mobiwlan {
namespace {

using bench::kMasterSeed;

LinkSimConfig tcp_config() {
  LinkSimConfig cfg;
  cfg.duration_s = 15.0;
  cfg.tcp_stall_s = 0.025;  // download TCP per the paper's §4.3 setup
  return cfg;
}

/// Run one scheme over the identical channel realization (same seed).
double run_scheme(const std::string& scheme, std::uint64_t seed,
                  MobilityClass cls) {
  Rng rng(seed);
  Scenario s = make_scenario(cls, rng);
  LinkSimConfig cfg = tcp_config();
  Rng frame_rng(seed + 77777);

  if (scheme == "atheros") {
    AtherosRa ra;
    return simulate_link(s, ra, cfg, frame_rng).goodput_mbps;
  }
  if (scheme == "motion-aware") {
    AtherosRa ra = make_mobility_aware_atheros_ra();
    return simulate_link(s, ra, cfg, frame_rng).goodput_mbps;
  }
  if (scheme == "rapidsample") {
    SensorHintRa ra;
    cfg.run_classifier = false;
    cfg.provide_sensor_hint = true;
    return simulate_link(s, ra, cfg, frame_rng).goodput_mbps;
  }
  if (scheme == "softrate") {
    SoftRateRa ra;
    cfg.run_classifier = false;
    cfg.provide_phy_feedback = true;
    return simulate_link(s, ra, cfg, frame_rng).goodput_mbps;
  }
  EsnrRa ra;
  cfg.run_classifier = false;
  cfg.provide_phy_feedback = true;
  return simulate_link(s, ra, cfg, frame_rng).goodput_mbps;
}

}  // namespace
}  // namespace mobiwlan

int main() {
  using namespace mobiwlan;

  bench::banner("Figure 9(a) — stock vs motion-aware Atheros RA, per link",
                "motion-aware wins on nearly every device-mobility link; "
                "+23% median TCP throughput in the paper");
  {
    SampleSet stock;
    SampleSet aware;
    int wins = 0;
    const int links = 15;
    TablePrinter t("per-link throughput (Mbps), device-mobility links, TCP");
    t.set_header({"link", "mode", "stock", "motion-aware", "gain"});
    for (int link = 0; link < links; ++link) {
      const MobilityClass cls =
          link % 2 == 0 ? MobilityClass::kMacro : MobilityClass::kMicro;
      const std::uint64_t seed = kMasterSeed + 100 + link;
      const double s = run_scheme("atheros", seed, cls);
      const double a = run_scheme("motion-aware", seed, cls);
      stock.add(s);
      aware.add(a);
      if (a > s) ++wins;
      t.add_row({std::to_string(link), std::string(to_string(cls)),
                 TablePrinter::num(s, 1), TablePrinter::num(a, 1),
                 TablePrinter::pct(a / s - 1.0)});
    }
    t.print();
    std::printf("\nmedian: stock %.1f vs motion-aware %.1f Mbps -> %+.1f%% "
                "(paper: +23%%); wins: %d/%d\n",
                stock.median(), aware.median(),
                100.0 * (aware.median() / stock.median() - 1.0), wins, links);
  }

  bench::banner("Figure 9(b) — five schemes over identical walking channels",
                "ESNR > SoftRate ~ motion-aware > RapidSample > stock; "
                "motion-aware ~90% of ESNR without client changes");
  {
    const char* schemes[] = {"atheros", "motion-aware", "rapidsample", "softrate",
                             "esnr"};
    SampleSet results[5];
    const int traces = 10;
    for (int trace = 0; trace < traces; ++trace) {
      for (int si = 0; si < 5; ++si) {
        results[si].add(
            run_scheme(schemes[si], kMasterSeed + 500 + trace, MobilityClass::kMacro));
      }
    }
    TablePrinter t("walking-trace throughput (Mbps), identical channels");
    t.set_header({"scheme", "p25", "median", "p75", "vs stock"});
    for (int si = 0; si < 5; ++si) {
      t.add_row({schemes[si], TablePrinter::num(results[si].quantile(0.25), 1),
                 TablePrinter::num(results[si].median(), 1),
                 TablePrinter::num(results[si].quantile(0.75), 1),
                 TablePrinter::pct(results[si].median() / results[0].median() - 1.0)});
    }
    t.print();
    std::printf("\nmotion-aware / ESNR ratio: %.2f (paper: ~0.90)\n",
                results[1].median() / results[4].median());
  }
  return 0;
}
