// Micro-benchmarks (google-benchmark) for the hot primitives: the costs that
// determine whether the classifier and the emulators can run at line rate on
// an AP-class CPU.
#include <benchmark/benchmark.h>

#include "chan/scenario.hpp"
#include "core/csi_similarity.hpp"
#include "core/mobility_classifier.hpp"
#include "phy/beamforming.hpp"
#include "phy/error_model.hpp"

namespace mobiwlan {
namespace {

CsiMatrix random_csi(Rng& rng, std::size_t tx = 3, std::size_t rx = 2) {
  CsiMatrix m(tx, rx, kDefaultSubcarriers);
  for (auto& v : m.raw()) v = rng.complex_gaussian();
  return m;
}

void BM_CsiSimilarity(benchmark::State& state) {
  Rng rng(1);
  const CsiMatrix a = random_csi(rng);
  const CsiMatrix b = random_csi(rng);
  for (auto _ : state) benchmark::DoNotOptimize(csi_similarity(a, b));
}
BENCHMARK(BM_CsiSimilarity);

void BM_ChannelSynthesis(benchmark::State& state) {
  Rng rng(2);
  Scenario s = make_scenario(MobilityClass::kMacro, rng);
  double t = 0.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.channel->csi_true(t));
    t += 0.001;
  }
}
BENCHMARK(BM_ChannelSynthesis);

void BM_ChannelSnr(benchmark::State& state) {
  Rng rng(3);
  Scenario s = make_scenario(MobilityClass::kMacro, rng);
  double t = 0.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.channel->snr_db(t));
    t += 0.001;
  }
}
BENCHMARK(BM_ChannelSnr);

void BM_EffectiveSnr(benchmark::State& state) {
  Rng rng(4);
  const CsiMatrix h = random_csi(rng);
  for (auto _ : state) benchmark::DoNotOptimize(effective_snr_db(h, 20.0));
}
BENCHMARK(BM_EffectiveSnr);

void BM_SuBeamformingGain(benchmark::State& state) {
  Rng rng(5);
  const CsiMatrix now = random_csi(rng);
  const CsiMatrix stale = random_csi(rng);
  for (auto _ : state)
    benchmark::DoNotOptimize(su_beamforming_gain_db(now, stale));
}
BENCHMARK(BM_SuBeamformingGain);

void BM_MuMimoZeroForcing(benchmark::State& state) {
  Rng rng(6);
  std::vector<CsiMatrix> now;
  std::vector<CsiMatrix> stale;
  for (int k = 0; k < 3; ++k) {
    now.push_back(random_csi(rng, 3, 1));
    stale.push_back(random_csi(rng, 3, 1));
  }
  const std::vector<double> snr(3, 20.0);
  for (auto _ : state)
    benchmark::DoNotOptimize(mu_mimo_zero_forcing(now, stale, snr));
}
BENCHMARK(BM_MuMimoZeroForcing);

void BM_ClassifierCsiStep(benchmark::State& state) {
  Rng rng(7);
  MobilityClassifier clf;
  double t = 0.0;
  std::vector<CsiMatrix> samples;
  for (int i = 0; i < 64; ++i) samples.push_back(random_csi(rng));
  std::size_t i = 0;
  for (auto _ : state) {
    clf.on_csi(t, samples[i % samples.size()]);
    t += 0.5;
    ++i;
  }
}
BENCHMARK(BM_ClassifierCsiStep);

void BM_ClassifierTofStep(benchmark::State& state) {
  Rng rng(8);
  MobilityClassifier::Config cfg;
  MobilityClassifier clf(cfg);
  // Force device mobility so ToF processing is active.
  for (double t = 0.0; t < 4.0; t += 0.5) clf.on_csi(t, random_csi(rng));
  double t = 4.0;
  for (auto _ : state) {
    clf.on_tof(t, 100.0 + rng.gaussian());
    t += 0.02;
  }
}
BENCHMARK(BM_ClassifierTofStep);

void BM_PerFromSnr(benchmark::State& state) {
  for (auto _ : state)
    benchmark::DoNotOptimize(per_from_snr(mcs(12), 22.0, 1500));
}
BENCHMARK(BM_PerFromSnr);

void BM_BestMcs(benchmark::State& state) {
  double snr = 5.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(best_mcs(snr, 1500, 2));
    snr = snr > 35.0 ? 5.0 : snr + 0.1;
  }
}
BENCHMARK(BM_BestMcs);

}  // namespace
}  // namespace mobiwlan
