// Table 1 standalone binary. The trial code now lives in suite/table1.cpp,
// registered with the unified mobiwlan-bench driver and sharded across a
// runtime::ThreadPool; this wrapper keeps the historical one-binary-per-
// figure entry point.
#include "suite/suite.hpp"

int main() { return mobiwlan::benchsuite::run_standalone("table1"); }
