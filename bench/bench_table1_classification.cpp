// Table 1: the full mobility-classification confusion matrix over randomized
// locations, plus macro heading (toward/away) accuracy on controlled walks.
// Paper: >92% accuracy in all scenarios (static 97%, environmental 95%,
// micro 96%, macro 93% — approximate readings of Table 1).
#include <cmath>
#include <map>

#include "bench_common.hpp"

namespace mobiwlan {
namespace {

using bench::kMasterSeed;

struct Row {
  std::map<MobilityClass, int> counts;
  int total = 0;
};

Row evaluate(MobilityClass cls, int trials, Rng& master) {
  Row row;
  for (int trial = 0; trial < trials; ++trial) {
    const Scenario s = make_scenario(cls, master);
    bench::run_classifier(s, 40.0, 10.0, [&](double, MobilityMode mode) {
      ++row.total;
      ++row.counts[to_class(mode)];
    });
  }
  return row;
}

}  // namespace
}  // namespace mobiwlan

int main() {
  using namespace mobiwlan;
  bench::banner("Table 1 — mobility classification accuracy",
                "diagonal > 92% everywhere (paper: static 97 / env 95 / "
                "micro 96 / macro 93)");

  Rng master(kMasterSeed);
  const int trials = 30;  // "locations" per class

  TablePrinter t("confusion matrix (rows = ground truth)");
  t.set_header({"truth \\ detected", "static", "environmental", "micro", "macro"});
  for (MobilityClass cls : bench::kClasses) {
    Row row = evaluate(cls, trials, master);
    std::vector<std::string> cells{std::string(to_string(cls))};
    for (MobilityClass det : bench::kClasses)
      cells.push_back(TablePrinter::pct(static_cast<double>(row.counts[det]) /
                                        row.total));
    t.add_row(cells);
  }
  t.print();

  // Heading accuracy on controlled toward/away walks (§2.4's direction claim).
  int heading_correct = 0;
  int heading_total = 0;
  for (int trial = 0; trial < 16; ++trial) {
    const bool toward = trial % 2 == 0;
    const Scenario s = make_radial_scenario(toward, toward ? 30.0 : 8.0, master);
    bench::run_classifier(s, 18.0, 8.0, [&](double, MobilityMode mode) {
      if (!is_macro(mode)) return;
      ++heading_total;
      const MobilityMode want =
          toward ? MobilityMode::kMacroToward : MobilityMode::kMacroAway;
      if (mode == want) ++heading_correct;
    });
  }
  std::printf("\nHeading (toward vs away) accuracy on radial walks: %.1f%% "
              "(%d/%d classified-macro seconds)\n",
              100.0 * heading_correct / std::max(1, heading_total),
              heading_correct, heading_total);

  // §9 limitation: a circular walk around the AP must classify as micro.
  int circular_micro = 0;
  int circular_total = 0;
  for (int trial = 0; trial < 6; ++trial) {
    const Scenario s = make_circular_scenario(10.0 + trial, master);
    bench::run_classifier(s, 30.0, 10.0, [&](double, MobilityMode mode) {
      ++circular_total;
      if (mode == MobilityMode::kMicro) ++circular_micro;
    });
  }
  std::printf("Limitation check (§9): circular walk classified micro %.1f%% "
              "of the time (paper predicts misclassification as micro)\n",
              100.0 * circular_micro / std::max(1, circular_total));
  return 0;
}
