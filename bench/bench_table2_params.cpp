// Table 2: the per-mobility-mode protocol parameter matrix, printed from the
// single source of truth in core/policy.hpp so the configuration in the code
// can be audited against the paper side by side.
#include "core/policy.hpp"

#include "bench_common.hpp"

int main() {
  using namespace mobiwlan;
  bench::banner("Table 2 — mobility-aware protocol actions",
                "per-mode parameters for roaming, rate adaptation, frame "
                "aggregation, beamforming and MU-MIMO (OCR-ambiguous cells "
                "documented in DESIGN.md)");

  const MobilityMode modes[] = {MobilityMode::kStatic, MobilityMode::kEnvironmental,
                                MobilityMode::kMicro, MobilityMode::kMacroAway,
                                MobilityMode::kMacroToward};

  TablePrinter t("Table 2 (plus the stock mobility-oblivious column)");
  t.set_header({"parameter", "static", "environment", "micro", "away", "towards",
                "stock"});

  auto fmt_ms = [](double s) { return TablePrinter::num(s * 1e3, 0) + " ms"; };
  auto fmt_alpha = [](double a) {
    return "1/" + TablePrinter::num(1.0 / a, 0);
  };

  std::vector<std::string> row;

  row = {"roaming preparation"};
  for (MobilityMode m : modes)
    row.push_back(mobility_params(m).encourage_roaming ? "encourage roam" : "no");
  row.push_back(default_params().encourage_roaming ? "yes" : "no");
  t.add_row(row);

  row = {"probe interval"};
  for (MobilityMode m : modes) row.push_back(fmt_ms(mobility_params(m).probe_interval_s));
  row.push_back(fmt_ms(default_params().probe_interval_s));
  t.add_row(row);

  row = {"PER smoothing factor"};
  for (MobilityMode m : modes)
    row.push_back(fmt_alpha(mobility_params(m).per_smoothing_alpha));
  row.push_back(fmt_alpha(default_params().per_smoothing_alpha));
  t.add_row(row);

  row = {"rate retries"};
  for (MobilityMode m : modes)
    row.push_back(std::to_string(mobility_params(m).rate_retries));
  row.push_back(std::to_string(default_params().rate_retries));
  t.add_row(row);

  row = {"aggregation limit"};
  for (MobilityMode m : modes)
    row.push_back(fmt_ms(mobility_params(m).aggregation_limit_s));
  row.push_back(fmt_ms(default_params().aggregation_limit_s));
  t.add_row(row);

  row = {"beamforming CV update"};
  for (MobilityMode m : modes)
    row.push_back(fmt_ms(mobility_params(m).bf_update_period_s));
  row.push_back(fmt_ms(default_params().bf_update_period_s));
  t.add_row(row);

  row = {"MU-MIMO CV update"};
  for (MobilityMode m : modes)
    row.push_back(fmt_ms(mobility_params(m).mumimo_update_period_s));
  row.push_back(fmt_ms(default_params().mumimo_update_period_s));
  t.add_row(row);

  t.print();
  return 0;
}
