// mobiwlan-bench — unified driver for the benches ported onto src/runtime/.
//
//   mobiwlan-bench --list                 enumerate registered benches
//   mobiwlan-bench                        run everything (default seed/jobs)
//   mobiwlan-bench --filter fig9          run benches whose name contains it
//   mobiwlan-bench --jobs 8 --seed 42     worker count / master seed
//   mobiwlan-bench --json out.json        write the structured run report
//   mobiwlan-bench --no-job-timing        omit per-job arrays from the JSON
//
// Determinism contract: for a fixed --seed, the printed tables and every
// non-"timing" byte of the JSON are identical for --jobs 1 and --jobs N.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "runtime/experiment.hpp"
#include "runtime/report.hpp"
#include "runtime/thread_pool.hpp"
#include "suite/suite.hpp"

namespace {

using mobiwlan::benchsuite::BenchDef;
using mobiwlan::benchsuite::registry;
namespace runtime = mobiwlan::runtime;

void print_usage() {
  std::printf(
      "usage: mobiwlan-bench [--list] [--filter SUBSTR] [--jobs N]\n"
      "                      [--seed S] [--json PATH] [--no-job-timing]\n");
}

struct Options {
  bool list = false;
  bool job_timing = true;
  std::string filter;
  std::string json_path;
  std::size_t jobs = 0;  // 0 = one worker per hardware thread
  std::uint64_t seed = runtime::kMasterSeed;
};

bool parse_args(int argc, char** argv, Options& opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "mobiwlan-bench: %s needs a value\n", flag);
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--list") {
      opt.list = true;
    } else if (arg == "--no-job-timing") {
      opt.job_timing = false;
    } else if (arg == "--filter") {
      const char* v = value("--filter");
      if (!v) return false;
      opt.filter = v;
    } else if (arg == "--json") {
      const char* v = value("--json");
      if (!v) return false;
      opt.json_path = v;
    } else if (arg == "--jobs") {
      const char* v = value("--jobs");
      if (!v) return false;
      opt.jobs = static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
    } else if (arg == "--seed") {
      const char* v = value("--seed");
      if (!v) return false;
      opt.seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--help" || arg == "-h") {
      print_usage();
      std::exit(0);
    } else {
      std::fprintf(stderr, "mobiwlan-bench: unknown flag %s\n", arg.c_str());
      print_usage();
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse_args(argc, argv, opt)) return 2;

  if (opt.list) {
    for (const BenchDef& def : registry())
      std::printf("%-10s %s\n", def.name.c_str(), def.description.c_str());
    return 0;
  }

  std::vector<const BenchDef*> selected;
  for (const BenchDef& def : registry())
    if (def.name.find(opt.filter) != std::string::npos)
      selected.push_back(&def);
  if (selected.empty()) {
    std::fprintf(stderr, "mobiwlan-bench: no bench matches --filter '%s'\n",
                 opt.filter.c_str());
    return 1;
  }

  std::size_t jobs = opt.jobs;
  if (jobs == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    jobs = hw ? hw : 1;
  }

  runtime::ThreadPool pool(jobs);
  runtime::RunReport run;
  run.master_seed = opt.seed;
  run.workers = pool.size();

  const auto run_start = std::chrono::steady_clock::now();
  for (const BenchDef* def : selected) {
    runtime::BenchReport report;
    report.name = def->name;
    report.description = def->description;
    runtime::Experiment exp(pool, opt.seed, &report);
    const auto start = std::chrono::steady_clock::now();
    def->run(exp, report);
    report.wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    std::fputs(report.text.c_str(), stdout);
    std::printf("\n[%s: %zu jobs on %zu workers, %.2fs wall, %.0f%% "
                "utilization, mean queue wait %.1f ms]\n",
                report.name.c_str(), report.jobs.size(), report.workers,
                report.wall_s, 100.0 * report.worker_utilization(),
                1e3 * report.mean_queue_wait_s());
    run.benches.push_back(std::move(report));
  }
  run.wall_s = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                             run_start)
                   .count();

  if (!opt.json_path.empty()) {
    std::ofstream out(opt.json_path, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "mobiwlan-bench: cannot write %s\n",
                   opt.json_path.c_str());
      return 1;
    }
    out << run.to_json(opt.job_timing);
    std::printf("\nwrote %s (%zu benches)\n", opt.json_path.c_str(),
                run.benches.size());
  }
  return 0;
}
