// mobiwlan-bench — unified driver for the benches ported onto src/runtime/.
//
//   mobiwlan-bench --list                 enumerate registered benches
//   mobiwlan-bench                        run everything (default seed/jobs)
//   mobiwlan-bench --filter fig9          run benches whose name contains it
//   mobiwlan-bench --jobs 8 --seed 42     worker count / master seed
//   mobiwlan-bench --json out.json        write the structured run report
//   mobiwlan-bench --no-job-timing        omit per-job arrays from the JSON
//   mobiwlan-bench --perf                 run the hot-path perf cases and
//                                         write BENCH_channel.json
//   mobiwlan-bench --perf --perf-check    also gate against the committed
//                                         baseline (ci/perf_baseline.json)
//   mobiwlan-bench --fidelity             run the paper-fidelity experiments
//                                         and write BENCH_fidelity.json
//   mobiwlan-bench --fidelity-check       also gate against the committed
//                                         baseline (ci/fidelity_baseline.json)
//   mobiwlan-bench --fidelity-check-only F  re-check an existing
//                                         BENCH_fidelity.json, no re-run
//   mobiwlan-bench --scale                run the AP-scale throughput bench
//                                         (64 APs x 512 clients) and write
//                                         BENCH_scale.json
//   mobiwlan-bench --scale --scale-check  also gate against the baseline's
//                                         gate_scale_* keys
//   mobiwlan-bench --fault                run the fault-injection degradation
//                                         sweep and write BENCH_fault.json
//   mobiwlan-bench --fault-check          also gate against the committed
//                                         baseline (ci/fault_baseline.json)
//   mobiwlan-bench --fault-check-only F   re-check an existing
//                                         BENCH_fault.json, no re-run
//   mobiwlan-bench --trace                run the record/replay determinism
//                                         suite and write BENCH_trace.json
//   mobiwlan-bench --trace-check          also gate against the committed
//                                         baseline (ci/trace_baseline.json)
//   mobiwlan-bench --trace-check-only F   re-check an existing
//                                         BENCH_trace.json, no re-run
//   mobiwlan-bench --campus               run the campus shard-invariance
//                                         matrix and write BENCH_campus.json
//   mobiwlan-bench --campus-check         also gate against the committed
//                                         baseline (ci/campus_baseline.json)
//   mobiwlan-bench --campus-check-only F  re-check an existing
//                                         BENCH_campus.json, no re-run
//   mobiwlan-bench --campus-sessions N    large-campus mode: one 4-shard run
//                                         at N sessions (conservation + RSS
//                                         evidence; optionally bounded by
//                                         --campus-rss-budget-mb MB)
//   mobiwlan-bench --loc                  run the CSI-fingerprint
//                                         localization bench and write
//                                         BENCH_loc.json
//   mobiwlan-bench --loc-check            also gate against the committed
//                                         baseline (ci/loc_baseline.json)
//   mobiwlan-bench --loc-check-only F     re-check an existing
//                                         BENCH_loc.json, no re-run
//
// Determinism contract: for a fixed --seed, the printed tables and every
// non-"timing" byte of the JSON are identical for --jobs 1 and --jobs N.
// The fidelity JSON follows the same contract. Perf cases are timing-based
// and therefore live entirely behind --perf; they never contribute to the
// deterministic JSON above.
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "fidelity/fidelity.hpp"
#include "runtime/experiment.hpp"
#include "runtime/report.hpp"
#include "runtime/thread_pool.hpp"
#include "suite/suite.hpp"
#include "util/alloc_count.hpp"
#include "util/flatjson.hpp"
#include "util/simd.hpp"

namespace {

using mobiwlan::benchsuite::BenchDef;
using mobiwlan::benchsuite::PerfCaseDef;
using mobiwlan::benchsuite::PerfResult;
using mobiwlan::benchsuite::perf_registry;
using mobiwlan::benchsuite::registry;
namespace runtime = mobiwlan::runtime;

void print_usage() {
  std::printf(
      "usage: mobiwlan-bench [--list] [--filter SUBSTR] [--jobs N]\n"
      "                      [--seed S] [--json PATH] [--no-job-timing]\n"
      "                      [--perf] [--perf-out PATH] [--perf-baseline "
      "PATH]\n"
      "                      [--perf-check] [--perf-min-time SECONDS]\n"
      "                      [--fidelity] [--fidelity-check]\n"
      "                      [--fidelity-check-only PATH] [--fidelity-out "
      "PATH]\n"
      "                      [--fidelity-baseline PATH]\n"
      "                      [--scale] [--scale-check] [--scale-out PATH]\n"
      "                      [--fault] [--fault-check]\n"
      "                      [--fault-check-only PATH] [--fault-out PATH]\n"
      "                      [--fault-baseline PATH]\n"
      "                      [--trace] [--trace-check]\n"
      "                      [--trace-check-only PATH] [--trace-out PATH]\n"
      "                      [--trace-baseline PATH]\n"
      "                      [--campus] [--campus-check]\n"
      "                      [--campus-check-only PATH] [--campus-out PATH]\n"
      "                      [--campus-baseline PATH]\n"
      "                      [--campus-sessions N]\n"
      "                      [--campus-rss-budget-mb MB]\n"
      "                      [--loc] [--loc-check]\n"
      "                      [--loc-check-only PATH] [--loc-out PATH]\n"
      "                      [--loc-baseline PATH]\n");
}

struct Options {
  bool list = false;
  bool job_timing = true;
  bool perf = false;
  bool perf_check = false;
  bool fidelity = false;
  bool fidelity_check = false;
  bool scale = false;
  bool scale_check = false;
  bool fault = false;
  bool fault_check = false;
  bool trace = false;
  bool trace_check = false;
  bool campus = false;
  bool campus_check = false;
  bool loc = false;
  bool loc_check = false;
  std::string filter;
  std::string json_path;
  std::string perf_out = "BENCH_channel.json";
  std::string perf_baseline = "ci/perf_baseline.json";
  std::string fidelity_check_only;  // path to an existing BENCH_fidelity.json
  std::string fidelity_out = "BENCH_fidelity.json";
  std::string fidelity_baseline = "ci/fidelity_baseline.json";
  std::string scale_out = "BENCH_scale.json";
  std::string fault_check_only;  // path to an existing BENCH_fault.json
  std::string fault_out = "BENCH_fault.json";
  std::string fault_baseline = "ci/fault_baseline.json";
  std::string trace_check_only;  // path to an existing BENCH_trace.json
  std::string trace_out = "BENCH_trace.json";
  std::string trace_baseline = "ci/trace_baseline.json";
  std::string campus_check_only;  // path to an existing BENCH_campus.json
  std::string campus_out = "BENCH_campus.json";
  std::string campus_baseline = "ci/campus_baseline.json";
  std::uint64_t campus_sessions = 0;   // nonzero: large-campus single run
  double campus_rss_budget_mb = 0.0;   // large mode: peak-RSS bound (0 = off)
  std::string loc_check_only;  // path to an existing BENCH_loc.json
  std::string loc_out = "BENCH_loc.json";
  std::string loc_baseline = "ci/loc_baseline.json";
  double perf_min_time = 1.0;
  std::size_t jobs = 0;  // 0 = one worker per hardware thread
  std::uint64_t seed = runtime::kMasterSeed;
};

bool parse_args(int argc, char** argv, Options& opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "mobiwlan-bench: %s needs a value\n", flag);
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--list") {
      opt.list = true;
    } else if (arg == "--no-job-timing") {
      opt.job_timing = false;
    } else if (arg == "--perf") {
      opt.perf = true;
    } else if (arg == "--perf-check") {
      opt.perf_check = true;
    } else if (arg == "--perf-out") {
      const char* v = value("--perf-out");
      if (!v) return false;
      opt.perf_out = v;
    } else if (arg == "--perf-baseline") {
      const char* v = value("--perf-baseline");
      if (!v) return false;
      opt.perf_baseline = v;
    } else if (arg == "--fidelity") {
      opt.fidelity = true;
    } else if (arg == "--fidelity-check") {
      opt.fidelity = true;
      opt.fidelity_check = true;
    } else if (arg == "--fidelity-check-only") {
      const char* v = value("--fidelity-check-only");
      if (!v) return false;
      opt.fidelity_check_only = v;
    } else if (arg == "--fidelity-out") {
      const char* v = value("--fidelity-out");
      if (!v) return false;
      opt.fidelity_out = v;
    } else if (arg == "--fidelity-baseline") {
      const char* v = value("--fidelity-baseline");
      if (!v) return false;
      opt.fidelity_baseline = v;
    } else if (arg == "--scale") {
      opt.scale = true;
    } else if (arg == "--scale-check") {
      opt.scale = true;
      opt.scale_check = true;
    } else if (arg == "--scale-out") {
      const char* v = value("--scale-out");
      if (!v) return false;
      opt.scale_out = v;
    } else if (arg == "--fault") {
      opt.fault = true;
    } else if (arg == "--fault-check") {
      opt.fault = true;
      opt.fault_check = true;
    } else if (arg == "--fault-check-only") {
      const char* v = value("--fault-check-only");
      if (!v) return false;
      opt.fault_check_only = v;
    } else if (arg == "--fault-out") {
      const char* v = value("--fault-out");
      if (!v) return false;
      opt.fault_out = v;
    } else if (arg == "--trace") {
      opt.trace = true;
    } else if (arg == "--trace-check") {
      opt.trace = true;
      opt.trace_check = true;
    } else if (arg == "--trace-check-only") {
      const char* v = value("--trace-check-only");
      if (!v) return false;
      opt.trace_check_only = v;
    } else if (arg == "--trace-out") {
      const char* v = value("--trace-out");
      if (!v) return false;
      opt.trace_out = v;
    } else if (arg == "--trace-baseline") {
      const char* v = value("--trace-baseline");
      if (!v) return false;
      opt.trace_baseline = v;
    } else if (arg == "--campus") {
      opt.campus = true;
    } else if (arg == "--campus-check") {
      opt.campus = true;
      opt.campus_check = true;
    } else if (arg == "--campus-check-only") {
      const char* v = value("--campus-check-only");
      if (!v) return false;
      opt.campus_check_only = v;
    } else if (arg == "--campus-out") {
      const char* v = value("--campus-out");
      if (!v) return false;
      opt.campus_out = v;
    } else if (arg == "--campus-baseline") {
      const char* v = value("--campus-baseline");
      if (!v) return false;
      opt.campus_baseline = v;
    } else if (arg == "--campus-sessions") {
      const char* v = value("--campus-sessions");
      if (!v) return false;
      opt.campus = true;
      opt.campus_sessions = std::strtoull(v, nullptr, 10);
    } else if (arg == "--campus-rss-budget-mb") {
      const char* v = value("--campus-rss-budget-mb");
      if (!v) return false;
      opt.campus_rss_budget_mb = std::strtod(v, nullptr);
    } else if (arg == "--loc") {
      opt.loc = true;
    } else if (arg == "--loc-check") {
      opt.loc = true;
      opt.loc_check = true;
    } else if (arg == "--loc-check-only") {
      const char* v = value("--loc-check-only");
      if (!v) return false;
      opt.loc_check_only = v;
    } else if (arg == "--loc-out") {
      const char* v = value("--loc-out");
      if (!v) return false;
      opt.loc_out = v;
    } else if (arg == "--loc-baseline") {
      const char* v = value("--loc-baseline");
      if (!v) return false;
      opt.loc_baseline = v;
    } else if (arg == "--fault-baseline") {
      const char* v = value("--fault-baseline");
      if (!v) return false;
      opt.fault_baseline = v;
    } else if (arg == "--perf-min-time") {
      const char* v = value("--perf-min-time");
      if (!v) return false;
      opt.perf_min_time = std::strtod(v, nullptr);
    } else if (arg == "--filter") {
      const char* v = value("--filter");
      if (!v) return false;
      opt.filter = v;
    } else if (arg == "--json") {
      const char* v = value("--json");
      if (!v) return false;
      opt.json_path = v;
    } else if (arg == "--jobs") {
      const char* v = value("--jobs");
      if (!v) return false;
      opt.jobs = static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
    } else if (arg == "--seed") {
      const char* v = value("--seed");
      if (!v) return false;
      opt.seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--help" || arg == "-h") {
      print_usage();
      std::exit(0);
    } else {
      std::fprintf(stderr, "mobiwlan-bench: unknown flag %s\n", arg.c_str());
      print_usage();
      return false;
    }
  }
  return true;
}

using mobiwlan::load_flat_json;  // util/flatjson.hpp

/// Runs the perf cases, writes the flat BENCH report (with pre-PR baseline
/// numbers and speedups folded in when the baseline file provides them), and
/// optionally gates against the baseline's gate_* values.
int run_perf(const Options& opt) {
  const auto baseline = load_flat_json(opt.perf_baseline);
  if (!baseline.empty())
    std::printf("perf: baseline %s (%zu keys)\n", opt.perf_baseline.c_str(),
                baseline.size());
  else
    std::printf("perf: no baseline at %s (measuring only)\n",
                opt.perf_baseline.c_str());
  if (!mobiwlan::alloc_hook_active())
    std::printf("perf: warning: alloc hook not linked, allocs/op will read 0\n");

  std::vector<PerfResult> results;
  for (const PerfCaseDef& def : perf_registry()) {
    PerfResult r = def.run(opt.perf_min_time);
    std::printf("  %-20s %12.1f ns/op  %12.0f ops/s  %6.2f allocs/op\n",
                r.name.c_str(), r.ns_per_op, r.ops_per_sec, r.allocs_per_op);
    results.push_back(std::move(r));
  }

  std::ofstream out(opt.perf_out, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "mobiwlan-bench: cannot write %s\n",
                 opt.perf_out.c_str());
    return 1;
  }
  out << "{\n";
  out << "  \"bench\": \"channel_perf\",\n";
  char buf[256];
  std::snprintf(buf, sizeof buf, "  \"min_time_s\": %g,\n", opt.perf_min_time);
  out << buf;
  std::snprintf(buf, sizeof buf, "  \"alloc_hook_active\": %d,\n",
                mobiwlan::alloc_hook_active() ? 1 : 0);
  out << buf;
  for (const PerfResult& r : results) {
    std::snprintf(buf, sizeof buf, "  \"%s_ns\": %.1f,\n", r.name.c_str(),
                  r.ns_per_op);
    out << buf;
    std::snprintf(buf, sizeof buf, "  \"%s_ops_per_sec\": %.0f,\n",
                  r.name.c_str(), r.ops_per_sec);
    out << buf;
    std::snprintf(buf, sizeof buf, "  \"%s_allocs\": %.2f,\n", r.name.c_str(),
                  r.allocs_per_op);
    out << buf;
    const auto pre_ns = baseline.find("pre_pr_" + r.name + "_ns");
    if (pre_ns != baseline.end()) {
      std::snprintf(buf, sizeof buf, "  \"pre_pr_%s_ns\": %.1f,\n",
                    r.name.c_str(), pre_ns->second);
      out << buf;
      const auto pre_allocs = baseline.find("pre_pr_" + r.name + "_allocs");
      if (pre_allocs != baseline.end()) {
        std::snprintf(buf, sizeof buf, "  \"pre_pr_%s_allocs\": %.2f,\n",
                      r.name.c_str(), pre_allocs->second);
        out << buf;
      }
      std::snprintf(buf, sizeof buf, "  \"%s_speedup_vs_pre_pr\": %.2f,\n",
                    r.name.c_str(), pre_ns->second / r.ns_per_op);
      out << buf;
    }
  }
  // Host-capability and tier provenance, quarantined on timing_* keys (the
  // same convention the determinism diffs filter on), so perf baselines are
  // comparable across hosts.
  std::snprintf(buf, sizeof buf, "  \"timing_host_avx2\": %d,\n",
                mobiwlan::simd::avx2fma_supported() ? 1 : 0);
  out << buf;
  std::snprintf(buf, sizeof buf, "  \"timing_host_avx512\": %d,\n",
                mobiwlan::simd::avx512_supported() ? 1 : 0);
  out << buf;
  std::snprintf(buf, sizeof buf, "  \"timing_active_simd_tier\": %d,\n",
                static_cast<int>(mobiwlan::simd::active_tier()));
  out << buf;
  std::snprintf(buf, sizeof buf, "  \"timing_active_precision_fp32\": %d,\n",
                mobiwlan::simd::active_precision() ==
                        mobiwlan::simd::Precision::kFloat32
                    ? 1
                    : 0);
  out << buf;
  out << "  \"end\": 0\n}\n";
  out.close();
  std::printf("wrote %s (%zu cases)\n", opt.perf_out.c_str(), results.size());

  if (!opt.perf_check) return 0;

  // Gate: each case must stay within (1 + tolerance) of its committed
  // gate_*_ns and must not allocate more than gate_*_allocs (+0.5 slack for
  // amortized one-off growth). Missing gate keys are reported, not fatal,
  // so new cases can land before the baseline is refreshed.
  const auto tol_it = baseline.find("tolerance");
  const double tol = tol_it != baseline.end() ? tol_it->second : 0.25;
  bool ok = true;
  for (const PerfResult& r : results) {
    const auto gate_ns = baseline.find("gate_" + r.name + "_ns");
    if (gate_ns == baseline.end()) {
      std::printf("perf-check: %-20s no gate_%s_ns in baseline, skipped\n",
                  r.name.c_str(), r.name.c_str());
      continue;
    }
    const double limit = gate_ns->second * (1.0 + tol);
    const bool time_ok = r.ns_per_op <= limit;
    bool allocs_ok = true;
    const auto gate_allocs = baseline.find("gate_" + r.name + "_allocs");
    if (gate_allocs != baseline.end() && mobiwlan::alloc_hook_active())
      allocs_ok = r.allocs_per_op <= gate_allocs->second + 0.5;
    std::printf("perf-check: %-20s %s  (%.1f ns/op vs limit %.1f",
                r.name.c_str(), time_ok && allocs_ok ? "ok" : "REGRESSION",
                r.ns_per_op, limit);
    if (gate_allocs != baseline.end())
      std::printf(", %.2f allocs/op vs gate %.2f", r.allocs_per_op,
                  gate_allocs->second);
    std::printf(")\n");
    ok = ok && time_ok && allocs_ok;
  }
  if (!ok) {
    std::fprintf(stderr,
                 "mobiwlan-bench: perf regression past %.0f%% tolerance "
                 "(baseline %s)\n",
                 100.0 * tol, opt.perf_baseline.c_str());
    return 1;
  }
  std::printf("perf-check: all cases within %.0f%% of baseline\n", 100.0 * tol);
  return 0;
}

namespace fidelity = mobiwlan::fidelity;

/// Checks a fidelity report against the committed baseline and prints the
/// verdict table. Returns the process exit code.
int check_fidelity_report(const fidelity::FidelityReport& report,
                          std::uint64_t run_seed, const Options& opt,
                          fidelity::CheckResult& check) {
  const auto baseline = load_flat_json(opt.fidelity_baseline);
  if (baseline.empty()) {
    std::fprintf(stderr, "mobiwlan-bench: no fidelity baseline at %s\n",
                 opt.fidelity_baseline.c_str());
    return 1;
  }
  check = report.check(baseline, run_seed);
  std::printf("\nfidelity-check against %s (seed %llu):\n",
              opt.fidelity_baseline.c_str(),
              static_cast<unsigned long long>(run_seed));
  std::fputs(fidelity::render_check(check).c_str(), stdout);
  if (!check.pass()) {
    std::fprintf(stderr,
                 "mobiwlan-bench: paper-fidelity gate FAILED (baseline %s)\n",
                 opt.fidelity_baseline.c_str());
    return 1;
  }
  std::printf("fidelity-check: all bounds hold\n");
  return 0;
}

/// `--fidelity` / `--fidelity-check`: run the experiments, write
/// BENCH_fidelity.json, optionally gate. `--fidelity-check-only` skips the
/// run and re-checks an existing report file instead.
int run_fidelity_mode(const Options& opt) {
  if (!opt.fidelity_check_only.empty()) {
    const auto doc = load_flat_json(opt.fidelity_check_only);
    if (doc.empty()) {
      std::fprintf(stderr, "mobiwlan-bench: cannot read fidelity report %s\n",
                   opt.fidelity_check_only.c_str());
      return 1;
    }
    std::uint64_t seed = 0;
    const fidelity::FidelityReport report =
        fidelity::report_from_flat_json(doc, seed);
    fidelity::CheckResult check;
    return check_fidelity_report(report, seed, opt, check);
  }

  std::size_t jobs = opt.jobs;
  if (jobs == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    jobs = hw ? hw : 1;
  }
  runtime::ThreadPool pool(jobs);
  runtime::BenchReport bench_report;
  bench_report.name = "fidelity";
  runtime::Experiment exp(pool, opt.seed, &bench_report);

  std::printf("fidelity: re-running Table 1 / Fig 2 / Fig 4 / Fig 9 "
              "(seed %llu, %zu workers)\n",
              static_cast<unsigned long long>(opt.seed), pool.size());
  const auto start = std::chrono::steady_clock::now();
  const fidelity::FidelityReport report =
      mobiwlan::benchsuite::run_fidelity(exp);
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  for (const auto& [key, v] : report.metrics())
    std::printf("  %-44s %.6g\n", key.c_str(), v);
  std::printf("[fidelity: %zu jobs on %zu workers, %.2fs wall]\n",
              bench_report.jobs.size(), pool.size(), wall_s);

  fidelity::CheckResult check;
  int rc = 0;
  const fidelity::CheckResult* check_ptr = nullptr;
  if (opt.fidelity_check) {
    rc = check_fidelity_report(report, opt.seed, opt, check);
    check_ptr = &check;
  }

  std::ofstream out(opt.fidelity_out, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "mobiwlan-bench: cannot write %s\n",
                 opt.fidelity_out.c_str());
    return 1;
  }
  out << report.to_json(opt.seed, wall_s, check_ptr);
  out.close();
  std::printf("wrote %s (%zu metrics)\n", opt.fidelity_out.c_str(),
              report.metrics().size());
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse_args(argc, argv, opt)) return 2;

  if (opt.list) {
    for (const BenchDef& def : registry())
      std::printf("%-10s %s\n", def.name.c_str(), def.description.c_str());
    for (const PerfCaseDef& def : perf_registry())
      std::printf("%-10s [perf] %s\n", def.name.c_str(),
                  def.description.c_str());
    return 0;
  }

  if (opt.perf) return run_perf(opt);
  if (opt.scale) {
    mobiwlan::benchsuite::ScaleOptions so;
    so.jobs = opt.jobs ? opt.jobs : 1;
    so.seed = opt.seed;
    so.min_time_s = opt.perf_min_time;
    so.check = opt.scale_check;
    so.out = opt.scale_out;
    so.baseline = opt.perf_baseline;
    return mobiwlan::benchsuite::run_scale_bench(so);
  }
  if (opt.fidelity || !opt.fidelity_check_only.empty())
    return run_fidelity_mode(opt);
  if (opt.fault || !opt.fault_check_only.empty()) {
    mobiwlan::benchsuite::FaultOptions fo;
    fo.jobs = opt.jobs;
    fo.seed = opt.seed;
    fo.check = opt.fault_check;
    fo.check_only = opt.fault_check_only;
    fo.out = opt.fault_out;
    fo.baseline = opt.fault_baseline;
    return mobiwlan::benchsuite::run_fault_bench(fo);
  }
  if (opt.trace || !opt.trace_check_only.empty()) {
    mobiwlan::benchsuite::TraceOptions to;
    to.jobs = opt.jobs;
    to.seed = opt.seed;
    to.check = opt.trace_check;
    to.check_only = opt.trace_check_only;
    to.out = opt.trace_out;
    to.baseline = opt.trace_baseline;
    return mobiwlan::benchsuite::run_trace_bench(to);
  }
  if (opt.loc || !opt.loc_check_only.empty()) {
    mobiwlan::benchsuite::LocOptions lo;
    lo.jobs = opt.jobs;
    lo.seed = opt.seed;
    lo.check = opt.loc_check;
    lo.check_only = opt.loc_check_only;
    lo.out = opt.loc_out;
    lo.baseline = opt.loc_baseline;
    return mobiwlan::benchsuite::run_loc_bench(lo);
  }
  if (opt.campus || !opt.campus_check_only.empty()) {
    mobiwlan::benchsuite::CampusOptions co;
    co.jobs = opt.jobs;
    co.seed = opt.seed;
    co.check = opt.campus_check;
    co.check_only = opt.campus_check_only;
    co.out = opt.campus_out;
    co.baseline = opt.campus_baseline;
    co.sessions = opt.campus_sessions;
    co.rss_budget_mb = opt.campus_rss_budget_mb;
    return mobiwlan::benchsuite::run_campus_bench(co);
  }

  std::vector<const BenchDef*> selected;
  for (const BenchDef& def : registry())
    if (def.name.find(opt.filter) != std::string::npos)
      selected.push_back(&def);
  if (selected.empty()) {
    std::fprintf(stderr, "mobiwlan-bench: no bench matches --filter '%s'\n",
                 opt.filter.c_str());
    return 1;
  }

  std::size_t jobs = opt.jobs;
  if (jobs == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    jobs = hw ? hw : 1;
  }

  runtime::ThreadPool pool(jobs);
  runtime::RunReport run;
  run.master_seed = opt.seed;
  run.workers = pool.size();

  const auto run_start = std::chrono::steady_clock::now();
  for (const BenchDef* def : selected) {
    runtime::BenchReport report;
    report.name = def->name;
    report.description = def->description;
    runtime::Experiment exp(pool, opt.seed, &report);
    const auto start = std::chrono::steady_clock::now();
    def->run(exp, report);
    report.wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    std::fputs(report.text.c_str(), stdout);
    std::printf("\n[%s: %zu jobs on %zu workers, %.2fs wall, %.0f%% "
                "utilization, mean queue wait %.1f ms]\n",
                report.name.c_str(), report.jobs.size(), report.workers,
                report.wall_s, 100.0 * report.worker_utilization(),
                1e3 * report.mean_queue_wait_s());
    run.benches.push_back(std::move(report));
  }
  run.wall_s = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                             run_start)
                   .count();

  if (!opt.json_path.empty()) {
    std::ofstream out(opt.json_path, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "mobiwlan-bench: cannot write %s\n",
                   opt.json_path.c_str());
      return 1;
    }
    out << run.to_json(opt.job_timing);
    std::printf("\nwrote %s (%zu benches)\n", opt.json_path.c_str(),
                run.benches.size());
  }
  return 0;
}
