// Campus shard-invariance suite (`mobiwlan-bench --campus`): the
// partitioning-determinism gate for the campus-scale simulation
// (src/campus/). One scenario — a 32x32 AP grid (1024 APs) absorbing 100k
// client sessions over an 80-epoch arrival window, everyone departed by the
// 130-epoch horizon — is run under four partitionings:
//
//      1 shard  x J workers      (the unsharded reference)
//      4 shards x J workers
//     16 shards x J workers
//     16 shards x 1 worker       (the scheduling cross-check)
//
// and every shard-invariant observable — the aggregate counters, per-mode
// step counts, bitwise float sums, the per-session FNV digest combiners and
// the histogram quantiles — must agree exactly across all four runs. The
// mismatch count is a gated metric (campus.invariance_mismatches, bound
// 0 == 0), so the committed baseline fails the build the moment any
// partitioning detail leaks into a session observable.
//
// Partition-variant transport counters (handover messages, deferred
// handovers, mailbox high-water depth) are reported per shard count. They
// are deterministic for a fixed seed at any worker count — handovers are
// staged into per-(src,dst) SPSC lanes and drained at an epoch barrier — so
// they are exact-gated too, and the whole report survives the jobs-1-vs-8
// byte diff in ci/campus_gate.sh. Keys matching `"timing` carry wall-clock
// rates and are quarantined by the usual convention.
//
// Precision is pinned to fp64 for the whole matrix; the SIMD *tier* is not:
// the anchored classifier pass and the elementwise batched kernels make the
// campus digests bitwise tier-invariant (gated by the campus tier-invariance
// test), so the committed baseline is host-portable while the throughput
// numbers reflect the host's real tier — which is what the campus
// throughput gate in ci/perf_gate.sh measures.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>

#include "campus/campus.hpp"
#include "fidelity/fidelity.hpp"
#include "suite/suite.hpp"
#include "util/flatjson.hpp"
#include "util/simd.hpp"

namespace mobiwlan::benchsuite {
namespace {

using fidelity::FidelityReport;

/// MobilityMode ordinals, in enum order (core/mobility_mode.hpp).
constexpr const char* kModeNames[campus::kModeCount] = {
    "static", "environmental", "micro",
    "macro_toward", "macro_away", "macro_orbit"};

struct CampusRun {
  std::size_t shards = 0;
  std::size_t jobs = 0;
  campus::CampusAggregate agg;
  std::uint64_t arrived = 0;
  std::uint64_t departed = 0;
  std::uint64_t active_end = 0;
  std::uint64_t handovers = 0;
  std::uint64_t deferred = 0;
  std::uint64_t mailbox_depth = 0;
  std::uint64_t pool_sessions = 0;  ///< peak resident (slab-constructed)
  std::uint64_t hot_allocs = 0;
  double wall_s = 0.0;
};

/// Process peak resident set (VmHWM) in MiB, or 0 where /proc is absent.
/// RSS is inherently nondeterministic (allocator, page reuse across the
/// matrix), so everything derived from it reports under `timing.` keys —
/// quarantined from both the baseline gate and the jobs byte-diff.
double peak_rss_mb() {
  std::ifstream st("/proc/self/status");
  std::string line;
  while (std::getline(st, line)) {
    if (line.rfind("VmHWM:", 0) == 0)
      return std::strtod(line.c_str() + 6, nullptr) / 1024.0;  // kB -> MiB
  }
  return 0.0;
}

CampusRun run_one(std::size_t shards, std::size_t jobs, std::uint64_t seed,
                  std::uint64_t n_sessions_override = 0) {
  campus::CampusConfig cfg = campus::campus_default_config();
  cfg.shards = shards;
  cfg.jobs = jobs;
  cfg.master_seed = seed;
  if (n_sessions_override) cfg.n_sessions = n_sessions_override;
  const auto start = std::chrono::steady_clock::now();
  campus::CampusSim sim(cfg);
  sim.run();
  CampusRun r;
  r.shards = shards;
  r.jobs = jobs;
  r.agg = sim.aggregate();
  r.arrived = sim.arrived();
  r.departed = sim.departed();
  r.active_end = sim.active();
  r.handovers = sim.handovers_sent();
  r.deferred = sim.deferred_handovers();
  r.mailbox_depth = sim.mailbox_max_depth();
  r.pool_sessions = sim.pool_sessions();
  r.hot_allocs = sim.hot_phase_allocs();
  r.wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return r;
}

int count_if_differs(bool differs) { return differs ? 1 : 0; }

/// Field-by-field comparison of everything the determinism contract says
/// must not depend on the partitioning. Floats compare with !=, not within
/// a tolerance: the campus folds departures in ascending session-id order
/// on purpose, so the sums are bitwise reproducible.
int invariance_mismatches(const CampusRun& a, const CampusRun& b) {
  const campus::CampusAggregate& x = a.agg;
  const campus::CampusAggregate& y = b.agg;
  int m = 0;
  m += count_if_differs(x.sessions != y.sessions);
  m += count_if_differs(x.steps != y.steps);
  m += count_if_differs(x.mac_steps != y.mac_steps);
  m += count_if_differs(x.mpdus_sent != y.mpdus_sent);
  m += count_if_differs(x.mpdus_failed != y.mpdus_failed);
  m += count_if_differs(x.ap_handovers != y.ap_handovers);
  for (std::size_t i = 0; i < campus::kModeCount; ++i)
    m += count_if_differs(x.mode_steps[i] != y.mode_steps[i]);
  m += count_if_differs(x.sum_mean_rssi_dbm != y.sum_mean_rssi_dbm);
  m += count_if_differs(x.sum_mean_similarity != y.sum_mean_similarity);
  m += count_if_differs(x.sum_mean_goodput_mbps != y.sum_mean_goodput_mbps);
  m += count_if_differs(x.sum_dwell_epochs != y.sum_dwell_epochs);
  m += count_if_differs(x.digest_xor != y.digest_xor);
  m += count_if_differs(x.digest_sum != y.digest_sum);
  m += count_if_differs(x.rssi_hist.total() != y.rssi_hist.total());
  m += count_if_differs(x.dwell_hist.total() != y.dwell_hist.total());
  m += count_if_differs(x.similarity_hist.total() != y.similarity_hist.total());
  for (const double q : {0.5, 0.9}) {
    m += count_if_differs(x.rssi_hist.quantile(q) != y.rssi_hist.quantile(q));
    m += count_if_differs(x.dwell_hist.quantile(q) != y.dwell_hist.quantile(q));
    m += count_if_differs(x.similarity_hist.quantile(q) !=
                          y.similarity_hist.quantile(q));
  }
  m += count_if_differs(a.arrived != b.arrived);
  m += count_if_differs(a.departed != b.departed);
  m += count_if_differs(a.active_end != b.active_end);
  // Peak resident sessions drives slab growth; arrivals and dwell times are
  // id-determined, so the peak must not depend on the partitioning either.
  m += count_if_differs(a.pool_sessions != b.pool_sessions);
  return m;
}

/// uint64 values (the FNV digests) do not fit a double exactly, so they are
/// reported as two exact 32-bit halves.
void add_u64_split(FidelityReport& rep, const std::string& key,
                   std::uint64_t v) {
  rep.add(key + "_hi", static_cast<double>(v >> 32));
  rep.add(key + "_lo", static_cast<double>(v & 0xffffffffULL));
}

int check_report(const FidelityReport& rep, std::uint64_t run_seed,
                 const std::string& baseline_path,
                 fidelity::CheckResult& check) {
  const auto baseline = load_flat_json(baseline_path);
  if (baseline.empty()) {
    std::fprintf(stderr, "mobiwlan-bench: no campus baseline at %s\n",
                 baseline_path.c_str());
    return 1;
  }
  check = rep.check(baseline, run_seed);
  std::printf("\ncampus-check against %s (seed %llu):\n", baseline_path.c_str(),
              static_cast<unsigned long long>(run_seed));
  std::fputs(fidelity::render_check(check).c_str(), stdout);
  if (!check.pass()) {
    std::fprintf(stderr,
                 "mobiwlan-bench: shard-invariance gate FAILED (baseline %s)\n",
                 baseline_path.c_str());
    return 1;
  }
  std::printf("campus-check: all bounds hold\n");
  return 0;
}

}  // namespace

int run_campus_bench(const CampusOptions& opt) {
  if (!opt.check_only.empty()) {
    const auto doc = load_flat_json(opt.check_only);
    if (doc.empty()) {
      std::fprintf(stderr, "mobiwlan-bench: cannot read campus report %s\n",
                   opt.check_only.c_str());
      return 1;
    }
    std::uint64_t seed = 0;
    const FidelityReport rep = fidelity::report_from_flat_json(doc, seed);
    fidelity::CheckResult check;
    return check_report(rep, seed, opt.baseline, check);
  }

  std::size_t jobs = opt.jobs;
  if (jobs == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    jobs = hw ? hw : 1;
  }

  if (opt.sessions) {
    // Large-campus mode: one {4 shards, jobs} run at the requested session
    // count. The streamed arrival schedule and the slab pool keep memory
    // proportional to PEAK RESIDENT sessions, not total sessions, so a
    // million-session day fits a fixed budget; this mode produces the
    // evidence (and the opt-in 250k ctest smoke gets its assertions).
    const campus::CampusConfig defaults = campus::campus_default_config();
    std::printf("campus-large: %zux%zu APs, %llu sessions over %llu epochs "
                "(4 shards, seed %llu, %zu workers)\n",
                defaults.cols, defaults.rows,
                static_cast<unsigned long long>(opt.sessions),
                static_cast<unsigned long long>(defaults.horizon_epochs),
                static_cast<unsigned long long>(opt.seed), jobs);
    const CampusRun r = run_one(4, jobs, opt.seed, opt.sessions);
    const double rss_mb = peak_rss_mb();
    const double bytes_per =
        r.pool_sessions ? rss_mb * 1024.0 * 1024.0 /
                              static_cast<double>(r.pool_sessions)
                        : 0.0;
    std::printf("  arrived %llu, departed %llu, active %llu — peak resident "
                "%llu (%.1f%% of total)\n",
                static_cast<unsigned long long>(r.arrived),
                static_cast<unsigned long long>(r.departed),
                static_cast<unsigned long long>(r.active_end),
                static_cast<unsigned long long>(r.pool_sessions),
                100.0 * static_cast<double>(r.pool_sessions) /
                    static_cast<double>(opt.sessions));
    std::printf("  wall %.2fs (%.0f session-steps/s), peak RSS %.1f MiB "
                "(%.0f bytes/resident session), hot-phase allocs %llu\n",
                r.wall_s,
                r.wall_s > 0.0 ? static_cast<double>(r.agg.steps) / r.wall_s
                               : 0.0,
                rss_mb, bytes_per,
                static_cast<unsigned long long>(r.hot_allocs));
    int rc = 0;
    if (r.arrived != opt.sessions ||
        r.arrived != r.departed + r.active_end ||
        r.agg.sessions != r.departed) {
      std::fprintf(stderr, "mobiwlan-bench: campus-large conservation "
                           "FAILED (arrived/departed/active inconsistent)\n");
      rc = 1;
    }
    if (opt.rss_budget_mb > 0.0 && rss_mb > opt.rss_budget_mb) {
      std::fprintf(stderr,
                   "mobiwlan-bench: campus-large peak RSS %.1f MiB exceeds "
                   "budget %.1f MiB\n",
                   rss_mb, opt.rss_budget_mb);
      rc = 1;
    }
    FidelityReport rep;
    rep.add("campus_large.sessions", static_cast<double>(opt.sessions));
    rep.add("campus_large.peak_resident",
            static_cast<double>(r.pool_sessions));
    rep.add("campus_large.steps", static_cast<double>(r.agg.steps));
    rep.add("campus_large.handovers", static_cast<double>(r.handovers));
    rep.add("timing.wall_s", r.wall_s);
    if (r.wall_s > 0.0)
      rep.add("timing.session_steps_per_s",
              static_cast<double>(r.agg.steps) / r.wall_s);
    rep.add("timing.peak_rss_mb", rss_mb);
    rep.add("timing.bytes_per_session", bytes_per);
    std::ofstream out(opt.out, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "mobiwlan-bench: cannot write %s\n",
                   opt.out.c_str());
      return 1;
    }
    out << rep.to_json(opt.seed, r.wall_s, nullptr);
    out.close();
    std::printf("wrote %s (%zu metrics)\n", opt.out.c_str(),
                rep.metrics().size());
    return rc;
  }

  const campus::CampusConfig defaults = campus::campus_default_config();
  std::printf("campus: %zux%zu APs, %llu sessions over %llu epochs — shard "
              "matrix 1/4/16 (seed %llu, %zu workers)\n",
              defaults.cols, defaults.rows,
              static_cast<unsigned long long>(defaults.n_sessions),
              static_cast<unsigned long long>(defaults.horizon_epochs),
              static_cast<unsigned long long>(opt.seed), jobs);

  // Pin the precision tier (fp32 CSI would change bits); the SIMD tier
  // runs at the host's native width — the digests are tier-invariant.
  simd::set_forced_precision(0);

  const struct {
    std::size_t shards;
    std::size_t jobs;
  } parts[] = {{1, jobs}, {4, jobs}, {16, jobs}, {16, 1}};
  CampusRun runs[4];
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < 4; ++i) {
    runs[i] = run_one(parts[i].shards, parts[i].jobs, opt.seed);
    std::printf("  %2zu shards x %zu workers: %llu arrived, %llu departed, "
                "%llu handovers (%llu deferred, depth %llu), %.2fs\n",
                runs[i].shards, runs[i].jobs,
                static_cast<unsigned long long>(runs[i].arrived),
                static_cast<unsigned long long>(runs[i].departed),
                static_cast<unsigned long long>(runs[i].handovers),
                static_cast<unsigned long long>(runs[i].deferred),
                static_cast<unsigned long long>(runs[i].mailbox_depth),
                runs[i].wall_s);
  }
  simd::set_forced_precision(-1);
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  int invariance = 0;
  for (int i = 1; i < 4; ++i)
    invariance += invariance_mismatches(runs[0], runs[i]);
  // runs[2] vs runs[3] share the partitioning and differ only in worker
  // count, so even the partition-variant transport counters must agree.
  int transport = 0;
  transport += count_if_differs(runs[2].handovers != runs[3].handovers);
  transport += count_if_differs(runs[2].deferred != runs[3].deferred);
  transport += count_if_differs(runs[2].mailbox_depth != runs[3].mailbox_depth);
  std::printf("  invariance: %d mismatches across the matrix, %d transport "
              "mismatches across worker counts\n",
              invariance, transport);

  FidelityReport rep;
  rep.add("campus.invariance_mismatches", invariance);
  rep.add("campus.jobs_transport_mismatches", transport);

  const campus::CampusAggregate& agg = runs[0].agg;
  rep.add("campus.sessions", static_cast<double>(agg.sessions));
  rep.add("campus.arrived", static_cast<double>(runs[0].arrived));
  rep.add("campus.departed", static_cast<double>(runs[0].departed));
  rep.add("campus.active_end", static_cast<double>(runs[0].active_end));
  rep.add("campus.steps", static_cast<double>(agg.steps));
  rep.add("campus.mac_steps", static_cast<double>(agg.mac_steps));
  rep.add("campus.mpdus_sent", static_cast<double>(agg.mpdus_sent));
  rep.add("campus.mpdus_failed", static_cast<double>(agg.mpdus_failed));
  rep.add("campus.ap_handovers", static_cast<double>(agg.ap_handovers));
  for (std::size_t i = 0; i < campus::kModeCount; ++i)
    rep.add(std::string("campus.mode_steps.") + kModeNames[i],
            static_cast<double>(agg.mode_steps[i]));
  const double n =
      agg.sessions ? static_cast<double>(agg.sessions) : 1.0;
  rep.add("campus.mean_rssi_dbm", agg.sum_mean_rssi_dbm / n);
  rep.add("campus.mean_similarity", agg.sum_mean_similarity / n);
  rep.add("campus.mean_goodput_mbps", agg.sum_mean_goodput_mbps / n);
  rep.add("campus.mean_dwell_epochs", agg.sum_dwell_epochs / n);
  add_u64_split(rep, "campus.digest_xor", agg.digest_xor);
  add_u64_split(rep, "campus.digest_sum", agg.digest_sum);
  rep.add("campus.rssi_p50", agg.rssi_hist.quantile(0.5));
  rep.add("campus.rssi_p90", agg.rssi_hist.quantile(0.9));
  rep.add("campus.dwell_p50", agg.dwell_hist.quantile(0.5));
  rep.add("campus.dwell_p90", agg.dwell_hist.quantile(0.9));
  rep.add("campus.similarity_p50", agg.similarity_hist.quantile(0.5));
  rep.add("campus.similarity_sessions",
          static_cast<double>(agg.similarity_hist.total()));
  for (int i = 0; i < 3; ++i) {
    const std::string p =
        "campus.partition" + std::to_string(parts[i].shards);
    rep.add(p + ".handovers", static_cast<double>(runs[i].handovers));
    rep.add(p + ".deferred", static_cast<double>(runs[i].deferred));
    rep.add(p + ".mailbox_depth", static_cast<double>(runs[i].mailbox_depth));
  }
  // Peak resident sessions (slab high-water) is deterministic and
  // shard-invariant, so it is exact-gated; the 16x1 run is always serial,
  // so its fused-phase allocation meter is live — steady-state churn must
  // stay pool-only (0 allocations) regardless of worker availability.
  rep.add("campus.pool_sessions",
          static_cast<double>(runs[0].pool_sessions));
  rep.add("campus.hot_allocs", static_cast<double>(runs[3].hot_allocs));
  if (wall_s > 0.0) {
    double total_steps = 0.0;
    for (const CampusRun& r : runs) total_steps += static_cast<double>(r.agg.steps);
    rep.add("timing.session_steps_per_s", total_steps / wall_s);
  }
  for (int i = 0; i < 4; ++i)
    rep.add("timing.run" + std::to_string(i) + "_wall_s", runs[i].wall_s);
  {
    // Median run wall: the noise-robust basis for the throughput gate in
    // ci/perf_gate.sh (each run executes the same campus.steps workload).
    double w[4];
    for (int i = 0; i < 4; ++i) w[i] = runs[i].wall_s;
    std::sort(w, w + 4);
    rep.add("timing.median_wall_s", (w[1] + w[2]) / 2.0);
  }
  const double rss_mb = peak_rss_mb();
  if (rss_mb > 0.0 && runs[0].pool_sessions > 0) {
    rep.add("timing.peak_rss_mb", rss_mb);
    rep.add("timing.bytes_per_session",
            rss_mb * 1024.0 * 1024.0 /
                static_cast<double>(runs[0].pool_sessions));
  }

  for (const auto& [key, v] : rep.metrics())
    std::printf("  %-44s %.6g\n", key.c_str(), v);
  std::printf("[campus: 4 runs, %.2fs wall]\n", wall_s);

  fidelity::CheckResult check;
  int rc = 0;
  const fidelity::CheckResult* check_ptr = nullptr;
  if (opt.check) {
    rc = check_report(rep, opt.seed, opt.baseline, check);
    check_ptr = &check;
  }

  std::ofstream out(opt.out, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "mobiwlan-bench: cannot write %s\n", opt.out.c_str());
    return 1;
  }
  out << rep.to_json(opt.seed, wall_s, check_ptr);
  out.close();
  std::printf("wrote %s (%zu metrics)\n", opt.out.c_str(),
              rep.metrics().size());
  return rc;
}

}  // namespace mobiwlan::benchsuite
