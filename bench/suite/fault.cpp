// Fault-tolerance suite (`mobiwlan-bench --fault`): quantifies graceful
// degradation when the PHY-observable exports (CSI, ToF, RSSI, feedback)
// are dropped, delayed, or reduced to RSSI-only — the failure modes a real
// controller deployment sees when firmware export queues overflow or the
// backhaul drops reports.
//
//   * Table-1 classification accuracy vs CSI+ToF drop rate (0-50%), paired
//     scenarios across levels; accuracy must degrade monotonically.
//   * Fig-9 (rate adaptation) and Fig-13 (end-to-end) mobility-aware vs
//     stock throughput ratios at 0% / 30% / 50% export loss: the aware
//     stack must degrade toward stock, never below it.
//   * Motion-aware vs default roaming under 30% ToF loss: the ToF trend
//     windows reset across gaps, so the scheme falls back to the stock
//     weak-signal behaviour and must still be at least as good.
//   * An exact zero-fault identity probe: an all-zero FaultPlan must
//     reproduce the raw channel observables bit for bit (count == 0).
//
// Metrics land in a fidelity::FidelityReport and are gated against
// ci/fault_baseline.json with the same flat-JSON schema, seed policy, and
// determinism contract as the paper-fidelity gate: for a fixed --seed the
// report is byte-identical at any --jobs outside its "timing" line.
#include <array>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "chan/scenario.hpp"
#include "core/mobility_classifier.hpp"
#include "fidelity/fidelity.hpp"
#include "net/deployment.hpp"
#include "net/roaming.hpp"
#include "runtime/thread_pool.hpp"
#include "sim/overall_sim.hpp"
#include "suite/suite.hpp"
#include "util/flatjson.hpp"
#include "util/stats.hpp"

namespace mobiwlan::benchsuite {
namespace {

using fidelity::FidelityReport;

constexpr MobilityClass kClasses[] = {
    MobilityClass::kStatic, MobilityClass::kEnvironmental, MobilityClass::kMicro,
    MobilityClass::kMacro};

/// The drop-rate sweep every subsection reports at (fractions of exports
/// lost). Metric suffixes are percentage-styled: drop00, drop10, ...
constexpr double kDropLevels[] = {0.0, 0.1, 0.3, 0.5};

std::string drop_key(double drop) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "drop%02d", static_cast<int>(drop * 100.0 + 0.5));
  return buf;
}

/// Stream-id offset decorrelating fault substreams from the channel draws
/// that share a scenario seed.
constexpr std::uint64_t kFaultSalt = 0xFA17;

/// A CSI+ToF drop plan whose substreams derive from the scenario seed, so
/// the fault world is reproducible and independent of the channel draws.
FaultPlan drop_plan(double drop, std::uint64_t scenario_seed) {
  FaultPlan plan;
  plan.csi.drop_prob = drop;
  plan.tof.drop_prob = drop;
  plan.seed = Rng(scenario_seed).stream(kFaultSalt).seed();
  return plan;
}

// ---- Table 1 under export loss ------------------------------------------

struct HitCounts {
  int hits = 0;
  int total = 0;
};

/// One classification trial through DegradedObservables, sampling the
/// hold-then-decay decision(t) once per second: a withheld (stale) decision
/// counts as a miss, so the metric prices both misclassification and the
/// classifier knowing it has gone blind.
HitCounts degraded_accuracy_trial(MobilityClass cls, const FaultPlan& plan,
                                  Rng& scenario_rng) {
  const Scenario s = make_scenario(cls, scenario_rng);
  DegradedObservables obs(*s.channel, plan);
  const MobilityClassifier::Config cfg;
  MobilityClassifier clf(cfg);
  HitCounts out;
  double next_csi = 0.0;
  double next_second = 10.0;  // warmup
  for (double t = 0.0; t < 30.0; t += cfg.tof_period_s) {
    if (t >= next_csi - 1e-9) {
      if (auto csi = obs.csi(t)) clf.on_csi(t, *csi);
      next_csi += cfg.csi_period_s;
    }
    if (auto tof = obs.tof_cycles(t)) clf.on_tof(t, *tof);
    if (t >= next_second) {
      ++out.total;
      const auto decided = clf.decision(t);
      if (decided && to_class(*decided) == cls) ++out.hits;
      next_second += 1.0;
    }
  }
  return out;
}

void fault_table1(runtime::Experiment& exp, FidelityReport& rep) {
  const int trials = 6;  // locations per class, shared across drop levels
  const std::size_t n = 4 * static_cast<std::size_t>(trials);
  const std::vector<std::uint64_t> scenario_seeds = exp.reserve_seeds(n);

  std::vector<double> acc;
  for (const double drop : kDropLevels) {
    const auto rows =
        exp.map<HitCounts>(n, [&scenario_seeds, drop,
                               trials](runtime::Trial& trial) {
          const MobilityClass cls =
              kClasses[trial.index / static_cast<std::size_t>(trials)];
          const std::uint64_t seed = scenario_seeds[trial.index];
          const FaultPlan plan = drop_plan(drop, seed);
          Rng scenario_rng(seed);
          return degraded_accuracy_trial(cls, plan, scenario_rng);
        });
    int hits = 0, total = 0;
    for (const HitCounts& r : rows) {
      hits += r.hits;
      total += r.total;
    }
    const double a = total > 0 ? static_cast<double>(hits) / total : 0.0;
    acc.push_back(a);
    rep.add("fault.table1.acc." + drop_key(drop), a);
  }
  // Monotone degradation with 0.5% slack for per-level sampling wiggle.
  bool monotone = true;
  for (std::size_t i = 1; i < acc.size(); ++i)
    if (acc[i] > acc[i - 1] + 0.005) monotone = false;
  rep.add("fault.table1.monotone", monotone ? 1.0 : 0.0);
}

// ---- Fig 9 / Fig 13 throughput ratios under export loss ------------------

void fault_fig9(runtime::Experiment& exp, FidelityReport& rep) {
  const int traces = 6;
  const std::vector<std::uint64_t> trace_seeds =
      exp.reserve_seeds(static_cast<std::size_t>(traces));
  const double levels[] = {0.0, 0.3, 0.5};
  for (const double drop : levels) {
    const auto per_scheme = exp.map<double>(
        static_cast<std::size_t>(traces) * 2,
        [&trace_seeds, drop](runtime::Trial& trial) {
          const std::uint64_t seed = trace_seeds[trial.index / 2];
          const FaultPlan plan = drop_plan(drop, seed);
          const char* scheme = trial.index % 2 == 0 ? "atheros" : "motion-aware";
          return fig9_run_scheme(scheme, seed, MobilityClass::kMacro, plan);
        });
    SampleSet stock, aware;
    for (int trace = 0; trace < traces; ++trace) {
      stock.add(per_scheme[static_cast<std::size_t>(trace) * 2]);
      aware.add(per_scheme[static_cast<std::size_t>(trace) * 2 + 1]);
    }
    rep.add("fault.fig9.aware_over_stock." + drop_key(drop),
            aware.median() / stock.median());
  }
}

void fault_fig13(runtime::Experiment& exp, FidelityReport& rep) {
  const int walks = 5;
  const std::vector<std::uint64_t> walk_seeds =
      exp.reserve_seeds(static_cast<std::size_t>(walks));
  const std::vector<std::uint64_t> traffic_seeds =
      exp.reserve_seeds(static_cast<std::size_t>(walks));
  const double levels[] = {0.0, 0.3};
  for (const double drop : levels) {
    const auto per_run = exp.map<double>(
        static_cast<std::size_t>(walks) * 2,
        [&walk_seeds, &traffic_seeds, drop](runtime::Trial& trial) {
          const std::size_t walk = trial.index / 2;
          Rng rng(walk_seeds[walk]);
          auto traj = WlanDeployment::corridor_walk(rng);
          WlanDeployment wlan(WlanDeployment::corridor_layout(), traj,
                              ChannelConfig{}, rng);
          OverallSimConfig cfg;
          cfg.duration_s = 45.0;
          cfg.mobility_aware = trial.index % 2 == 1;
          cfg.fault = drop_plan(drop, walk_seeds[walk]);
          Rng sim_rng(traffic_seeds[walk]);
          return simulate_overall(wlan, cfg, sim_rng).throughput_mbps;
        });
    SampleSet stock, aware;
    for (int walk = 0; walk < walks; ++walk) {
      stock.add(per_run[static_cast<std::size_t>(walk) * 2]);
      aware.add(per_run[static_cast<std::size_t>(walk) * 2 + 1]);
    }
    rep.add("fault.fig13.aware_over_stock." + drop_key(drop),
            aware.median() / stock.median());
  }
}

// ---- Motion-aware roaming under ToF export loss --------------------------

void fault_roaming(runtime::Experiment& exp, FidelityReport& rep) {
  const int walks = 5;
  const std::vector<std::uint64_t> walk_seeds =
      exp.reserve_seeds(static_cast<std::size_t>(walks));
  const auto per_run = exp.map<double>(
      static_cast<std::size_t>(walks) * 2, [&walk_seeds](runtime::Trial& trial) {
        const std::size_t walk = trial.index / 2;
        Rng rng(walk_seeds[walk]);
        auto traj = WlanDeployment::corridor_walk(rng);
        WlanDeployment wlan(WlanDeployment::corridor_layout(), traj,
                            ChannelConfig{}, rng);
        RoamingConfig cfg;
        cfg.fault.tof.drop_prob = 0.3;  // 30% of ToF exports lost
        cfg.fault.seed = Rng(walk_seeds[walk]).stream(kFaultSalt).seed();
        Rng sim_rng(walk_seeds[walk] + 1);
        const RoamingScheme scheme = trial.index % 2 == 0
                                         ? RoamingScheme::kDefault
                                         : RoamingScheme::kMotionAware;
        return simulate_roaming(wlan, scheme, cfg, sim_rng).mean_throughput_mbps;
      });
  SampleSet def, aware;
  for (int walk = 0; walk < walks; ++walk) {
    def.add(per_run[static_cast<std::size_t>(walk) * 2]);
    aware.add(per_run[static_cast<std::size_t>(walk) * 2 + 1]);
  }
  rep.add("fault.roam.aware_over_default.tofloss30",
          aware.median() / def.median());
}

// ---- Exact zero-fault identity probe -------------------------------------

/// An all-zero plan must reproduce the raw channel observables bit for bit:
/// twin channels built from the same seed, one read through
/// DegradedObservables, one raw, same call order. Any mismatch (value or a
/// withheld reading) counts.
int zero_identity_mismatches(std::uint64_t seed) {
  Rng rng_a(seed), rng_b(seed);
  const Scenario a = make_scenario(MobilityClass::kMacro, rng_a);
  const Scenario b = make_scenario(MobilityClass::kMacro, rng_b);
  DegradedObservables obs(*a.channel, FaultPlan{});
  int mismatches = 0;
  for (double t = 0.0; t < 10.0; t += 0.1) {
    const auto csi = obs.csi(t);
    const CsiMatrix want = b.channel->csi_at(t);
    if (!csi || csi->raw() != want.raw()) ++mismatches;
    const auto tof = obs.tof_cycles(t);
    if (!tof || *tof != b.channel->tof_cycles(t)) ++mismatches;
    const auto rssi = obs.rssi_dbm(t);
    if (!rssi || *rssi != b.channel->rssi_dbm(t)) ++mismatches;
    if (!obs.feedback_delivered(t)) ++mismatches;
  }
  return mismatches;
}

void fault_zero_identity(runtime::Experiment& exp, FidelityReport& rep) {
  const auto rows = exp.map<int>(4, [](runtime::Trial& trial) {
    return zero_identity_mismatches(trial.rng.next_u64());
  });
  int total = 0;
  for (const int m : rows) total += m;
  rep.add("fault.zero_identity_mismatches", total);
}

FidelityReport run_fault_report(runtime::Experiment& exp) {
  FidelityReport rep;
  fault_table1(exp, rep);
  fault_fig9(exp, rep);
  fault_fig13(exp, rep);
  fault_roaming(exp, rep);
  fault_zero_identity(exp, rep);
  return rep;
}

/// Checks the report against the committed baseline; prints the verdict
/// table. Same bound semantics as the fidelity gate.
int check_report(const FidelityReport& rep, std::uint64_t run_seed,
                 const std::string& baseline_path,
                 fidelity::CheckResult& check) {
  const auto baseline = load_flat_json(baseline_path);
  if (baseline.empty()) {
    std::fprintf(stderr, "mobiwlan-bench: no fault baseline at %s\n",
                 baseline_path.c_str());
    return 1;
  }
  check = rep.check(baseline, run_seed);
  std::printf("\nfault-check against %s (seed %llu):\n", baseline_path.c_str(),
              static_cast<unsigned long long>(run_seed));
  std::fputs(fidelity::render_check(check).c_str(), stdout);
  if (!check.pass()) {
    std::fprintf(stderr,
                 "mobiwlan-bench: fault-tolerance gate FAILED (baseline %s)\n",
                 baseline_path.c_str());
    return 1;
  }
  std::printf("fault-check: all bounds hold\n");
  return 0;
}

}  // namespace

int run_fault_bench(const FaultOptions& opt) {
  if (!opt.check_only.empty()) {
    const auto doc = load_flat_json(opt.check_only);
    if (doc.empty()) {
      std::fprintf(stderr, "mobiwlan-bench: cannot read fault report %s\n",
                   opt.check_only.c_str());
      return 1;
    }
    std::uint64_t seed = 0;
    const FidelityReport rep = fidelity::report_from_flat_json(doc, seed);
    fidelity::CheckResult check;
    return check_report(rep, seed, opt.baseline, check);
  }

  std::size_t jobs = opt.jobs;
  if (jobs == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    jobs = hw ? hw : 1;
  }
  runtime::ThreadPool pool(jobs);
  runtime::BenchReport bench_report;
  bench_report.name = "fault";
  runtime::Experiment exp(pool, opt.seed, &bench_report);

  std::printf("fault: degradation sweep — Table 1 / Fig 9 / Fig 13 / roaming "
              "(seed %llu, %zu workers)\n",
              static_cast<unsigned long long>(opt.seed), pool.size());
  const auto start = std::chrono::steady_clock::now();
  const FidelityReport rep = run_fault_report(exp);
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  for (const auto& [key, v] : rep.metrics())
    std::printf("  %-44s %.6g\n", key.c_str(), v);
  std::printf("[fault: %zu jobs on %zu workers, %.2fs wall]\n",
              bench_report.jobs.size(), pool.size(), wall_s);

  fidelity::CheckResult check;
  int rc = 0;
  const fidelity::CheckResult* check_ptr = nullptr;
  if (opt.check) {
    rc = check_report(rep, opt.seed, opt.baseline, check);
    check_ptr = &check;
  }

  std::ofstream out(opt.out, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "mobiwlan-bench: cannot write %s\n", opt.out.c_str());
    return 1;
  }
  out << rep.to_json(opt.seed, wall_s, check_ptr);
  out.close();
  std::printf("wrote %s (%zu metrics)\n", opt.out.c_str(), rep.metrics().size());
  return rc;
}

}  // namespace mobiwlan::benchsuite
