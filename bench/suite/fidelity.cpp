// Fidelity suite: re-runs the core experiments (Table 1, Fig 2, Fig 4,
// Fig 9) through the runtime Experiment sharder and records the statistics
// the paper-fidelity gate asserts on (src/fidelity/). Trial counts are
// smaller than the full benches — the gate wants stable statistics at CI
// cost, and for a fixed seed every number here is exact, so bounds in
// ci/fidelity_baseline.json can sit close to the measured values.
//
// Metric naming: `<experiment>.<group>.<stat>`; EXPERIMENTS.md links each
// experiment section to its assertion ids.
#include <array>
#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "chan/channel_batch.hpp"
#include "chan/scenario.hpp"
#include "core/csi_similarity.hpp"
#include "core/mobility_classifier.hpp"
#include "fidelity/fidelity.hpp"
#include "runtime/classifier_driver.hpp"
#include "suite/suite.hpp"
#include "util/filters.hpp"
#include "util/significance.hpp"
#include "util/stats.hpp"

namespace mobiwlan::benchsuite {
namespace {

using fidelity::FidelityReport;

constexpr MobilityClass kClasses[] = {
    MobilityClass::kStatic, MobilityClass::kEnvironmental, MobilityClass::kMicro,
    MobilityClass::kMacro};

int class_index(MobilityClass c) {
  for (int i = 0; i < 4; ++i)
    if (kClasses[i] == c) return i;
  return 0;
}

/// Metric id segment for a class ("static", "environmental", ...).
std::string class_key(MobilityClass c) { return std::string(to_string(c)); }

void add_accuracy_with_ci(FidelityReport& rep, const std::string& prefix,
                          int hits, int total) {
  const WilsonInterval ci =
      wilson_interval(static_cast<std::size_t>(hits),
                      static_cast<std::size_t>(total > 0 ? total : 1));
  rep.add(prefix, ci.point);
  rep.add(prefix + ".ci_lo", ci.lo);
  rep.add(prefix + ".ci_hi", ci.hi);
  rep.add(prefix + ".ci_halfwidth", (ci.hi - ci.lo) / 2.0);
}

// ---- Table 1: confusion-matrix diagonal + heading ------------------------

struct ClassCounts {
  std::array<int, 4> detected{};
  int total = 0;
};

void fidelity_table1(runtime::Experiment& exp, FidelityReport& rep) {
  const int trials = 16;  // locations per class; 30 s each, 10 s warmup
  for (const MobilityClass cls : kClasses) {
    const auto rows = exp.map<ClassCounts>(
        static_cast<std::size_t>(trials), [cls](runtime::Trial& trial) {
          ClassCounts out;
          const Scenario s = make_scenario(cls, trial.rng);
          runtime::run_classifier(s, 30.0, 10.0,
                                  [&](double, MobilityMode mode) {
                                    ++out.total;
                                    ++out.detected[class_index(to_class(mode))];
                                  });
          return out;
        });
    int hits = 0, total = 0;
    for (const ClassCounts& r : rows) {
      hits += r.detected[class_index(cls)];
      total += r.total;
    }
    add_accuracy_with_ci(rep, "table1.acc." + class_key(cls), hits, total);
    rep.add("table1.n_seconds." + class_key(cls), total);
  }

  // Heading accuracy on controlled radial walks (paper §2.4).
  struct HitCounts {
    int hits = 0;
    int total = 0;
  };
  const auto heading = exp.map<HitCounts>(12, [](runtime::Trial& trial) {
    const bool toward = trial.index % 2 == 0;
    HitCounts out;
    const Scenario s =
        make_radial_scenario(toward, toward ? 30.0 : 8.0, trial.rng);
    runtime::run_classifier(s, 18.0, 8.0, [&](double, MobilityMode mode) {
      if (!is_macro(mode)) return;
      ++out.total;
      const MobilityMode want =
          toward ? MobilityMode::kMacroToward : MobilityMode::kMacroAway;
      if (mode == want) ++out.hits;
    });
    return out;
  });
  int hits = 0, total = 0;
  for (const HitCounts& r : heading) {
    hits += r.hits;
    total += r.total;
  }
  add_accuracy_with_ci(rep, "table1.heading_accuracy", hits, total);
}

// ---- Fig 2: CSI-similarity threshold separation at tau = 0.5 s -----------

std::vector<double> similarity_trial(MobilityClass cls,
                                     std::optional<EnvironmentalActivity> act,
                                     runtime::Trial& trial) {
  Scenario s = act ? make_environmental_scenario(*act, trial.rng)
                   : make_scenario(cls, trial.rng);
  std::vector<double> out;
  // Sampled through the batched engine (single-link batch): same per-link
  // draw order as csi_at, vectorized synthesis path.
  ChannelBatch batch;
  batch.add_link(s.channel.get());
  ChannelBatch::Scratch scratch;
  CsiMatrix prev, cur;
  batch.csi_into(0, 0.0, prev, scratch);
  for (double t = 0.5; t < 15.0; t += 0.5) {
    batch.csi_into(0, t, cur, scratch);
    out.push_back(csi_similarity(prev, cur));
    std::swap(prev, cur);
  }
  return out;
}

SampleSet similarity_samples(runtime::Experiment& exp, MobilityClass cls,
                             std::optional<EnvironmentalActivity> act,
                             int trials) {
  const auto rows = exp.map<std::vector<double>>(
      static_cast<std::size_t>(trials), [cls, act](runtime::Trial& trial) {
        return similarity_trial(cls, act, trial);
      });
  SampleSet out;
  for (const auto& r : rows) out.add_all(r);
  return out;
}

void fidelity_fig2(runtime::Experiment& exp, FidelityReport& rep) {
  constexpr double kThrSta = 0.98;  // paper's Thr_sta / Thr_env
  constexpr double kThrEnv = 0.7;
  const int trials = 12;

  const SampleSet st =
      similarity_samples(exp, MobilityClass::kStatic, std::nullopt, trials);
  const SampleSet ew = similarity_samples(
      exp, MobilityClass::kEnvironmental, EnvironmentalActivity::kWeak, trials);
  const SampleSet es =
      similarity_samples(exp, MobilityClass::kEnvironmental,
                         EnvironmentalActivity::kStrong, trials);
  const SampleSet mi =
      similarity_samples(exp, MobilityClass::kMicro, std::nullopt, trials);
  const SampleSet ma =
      similarity_samples(exp, MobilityClass::kMacro, std::nullopt, trials);

  SampleSet env;
  env.add_all(ew.samples());
  env.add_all(es.samples());
  SampleSet dev;
  dev.add_all(mi.samples());
  dev.add_all(ma.samples());

  // Separation quantiles: the bulk of each class on its side of the
  // thresholds (Fig 2(b): static above 0.98, environmental in (0.7, 0.98],
  // device mobility below 0.7).
  rep.add("fig2.static.p05", st.quantile(0.05));
  rep.add("fig2.static.frac_above_thr_sta", 1.0 - st.cdf_at(kThrSta));
  rep.add("fig2.env.p05", env.quantile(0.05));
  rep.add("fig2.env.p95", env.quantile(0.95));
  rep.add("fig2.env.frac_in_band", env.cdf_at(kThrSta) - env.cdf_at(kThrEnv));
  rep.add("fig2.device.p95", dev.quantile(0.95));
  rep.add("fig2.device.frac_below_thr_env", dev.cdf_at(kThrEnv));
  rep.add("fig2.n_samples",
          static_cast<double>(st.size() + env.size() + dev.size()));
}

// ---- Fig 4: ToF ramps under macro vs micro mobility ----------------------

std::vector<double> tof_median_series(Scenario& s, double duration_s) {
  std::vector<double> out;
  MedianAggregator agg;
  double epoch = 0.0;
  for (double t = 0.0; t < duration_s; t += 0.02) {
    if (t - epoch >= 1.0) {
      if (auto m = agg.flush()) out.push_back(*m);
      epoch += 1.0;
    }
    agg.add(s.channel->tof_cycles(t));
  }
  return out;
}

void fidelity_fig4(runtime::Experiment& exp, FidelityReport& rep) {
  // Same run definition as bench_fig4_tof: a monotone stretch counts as a
  // walking ramp if it spans >= 3 steps and >= 3 cycles of net change.
  constexpr std::size_t kMinSteps = 3;
  constexpr double kMinChange = 3.0;
  const int trials = 6;

  const auto macro_runs =
      exp.map<int>(static_cast<std::size_t>(trials), [&](runtime::Trial& trial) {
        Scenario s = make_bounce_scenario(4.0, 28.0, trial.rng);
        return fidelity::count_monotone_runs(tof_median_series(s, 60.0),
                                             kMinSteps, kMinChange);
      });
  const auto micro_runs =
      exp.map<int>(static_cast<std::size_t>(trials), [&](runtime::Trial& trial) {
        Scenario s = make_scenario(MobilityClass::kMicro, trial.rng);
        return fidelity::count_monotone_runs(tof_median_series(s, 60.0),
                                             kMinSteps, kMinChange);
      });

  double macro_sum = 0.0;
  int macro_min = macro_runs[0];
  for (const int r : macro_runs) {
    macro_sum += r;
    if (r < macro_min) macro_min = r;
  }
  int micro_max = micro_runs[0];
  for (const int r : micro_runs)
    if (r > micro_max) micro_max = r;

  rep.add("fig4.macro.mean_runs", macro_sum / trials);
  rep.add("fig4.macro.min_runs", macro_min);
  rep.add("fig4.micro.max_runs", micro_max);
}

// ---- Fig 9: rate-adaptation scheme ordering ------------------------------

void fidelity_fig9(runtime::Experiment& exp, FidelityReport& rep) {
  const char* schemes[] = {"atheros", "motion-aware", "rapidsample",
                           "softrate", "esnr"};
  const char* keys[] = {"atheros", "motion_aware", "rapidsample", "softrate",
                        "esnr"};
  const int traces = 8;
  const std::vector<std::uint64_t> trace_seeds =
      exp.reserve_seeds(static_cast<std::size_t>(traces));
  const auto per_scheme = exp.map<double>(
      static_cast<std::size_t>(traces) * 5,
      [&trace_seeds, &schemes](runtime::Trial& trial) {
        return fig9_run_scheme(schemes[trial.index % 5],
                               trace_seeds[trial.index / 5],
                               MobilityClass::kMacro);
      });

  SampleSet results[5];
  for (int trace = 0; trace < traces; ++trace)
    for (int si = 0; si < 5; ++si)
      results[si].add(per_scheme[static_cast<std::size_t>(trace) * 5 +
                                 static_cast<std::size_t>(si)]);
  for (int si = 0; si < 5; ++si)
    rep.add(std::string("fig9.") + keys[si] + ".median_mbps",
            results[si].median());

  // Paper ordering (Fig 9(b)): ESNR best, motion-aware ~90% of ESNR and
  // clearly above stock; RapidSample between stock and motion-aware.
  const double stock = results[0].median();
  rep.add("fig9.aware_over_stock", results[1].median() / stock);
  rep.add("fig9.rapidsample_over_stock", results[2].median() / stock);
  rep.add("fig9.esnr_over_stock", results[4].median() / stock);
  rep.add("fig9.aware_over_esnr", results[1].median() / results[4].median());
}

}  // namespace

fidelity::FidelityReport run_fidelity(runtime::Experiment& exp) {
  FidelityReport rep;
  fidelity_table1(exp, rep);
  fidelity_fig2(exp, rep);
  fidelity_fig4(exp, rep);
  fidelity_fig9(exp, rep);
  return rep;
}

}  // namespace mobiwlan::benchsuite
