// Figure 13 on the runtime runner: the end-to-end system experiment (§7).
// One job per (walk, stack); both stacks of a walk replay the identical
// deployment and traffic seeds, reserved up front, so the comparison is
// paired exactly as in the standalone bench.
#include <string>

#include "sim/overall_sim.hpp"
#include "suite/suite.hpp"
#include "util/significance.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace mobiwlan::benchsuite {

BenchDef fig13_bench() {
  BenchDef def;
  def.name = "fig13";
  def.description =
      "end-to-end 6-AP floor walks: full mobility-aware suite vs stock stack";
  def.run = [](runtime::Experiment& exp, runtime::BenchReport& report) {
    report.text += banner_text(
        "Figure 13(b) — end-to-end throughput, all four optimizations",
        "mobility-aware beats the default stack in every walk; "
        "~2x median overall in the paper");

    const int walks = 9;  // the paper ran 9 tests
    report.add_metadata("walks", std::to_string(walks));
    report.add_metadata("walk_duration_s", "60");
    const std::vector<std::uint64_t> walk_seeds =
        exp.reserve_seeds(static_cast<std::size_t>(walks));
    const std::vector<std::uint64_t> traffic_seeds =
        exp.reserve_seeds(static_cast<std::size_t>(walks));

    const auto per_run = exp.map<double>(
        static_cast<std::size_t>(walks) * 2,
        [&walk_seeds, &traffic_seeds](runtime::Trial& trial) {
          const std::size_t walk = trial.index / 2;
          // Identical walk and deployment per stack.
          Rng rng(walk_seeds[walk]);
          auto traj = WlanDeployment::corridor_walk(rng);
          WlanDeployment wlan(WlanDeployment::corridor_layout(), traj,
                              ChannelConfig{}, rng);
          OverallSimConfig cfg;
          cfg.duration_s = 60.0;
          cfg.mobility_aware = trial.index % 2 == 1;
          Rng sim_rng(traffic_seeds[walk]);
          return simulate_overall(wlan, cfg, sim_rng).throughput_mbps;
        });

    SampleSet stock;
    SampleSet aware;
    int wins = 0;
    TablePrinter t("per-walk UDP throughput (Mbps)");
    t.set_header({"walk", "default stack", "mobility-aware", "gain"});
    for (int walk = 0; walk < walks; ++walk) {
      const double s = per_run[static_cast<std::size_t>(walk) * 2];
      const double a = per_run[static_cast<std::size_t>(walk) * 2 + 1];
      stock.add(s);
      aware.add(a);
      if (a > s) ++wins;
      t.add_row({std::to_string(walk + 1), TablePrinter::num(s, 1),
                 TablePrinter::num(a, 1), TablePrinter::pct(a / s - 1.0)});
    }
    report.text += t.render();
    report.text += render_cdf_table("end-to-end throughput (Mbps)",
                                    {{"802.11n default", &stock},
                                     {"motion-aware", &aware}});
    report.add_metric("stock_median_mbps", stock.median());
    report.add_metric("aware_median_mbps", aware.median());
    report.add_metric("median_gain", aware.median() / stock.median() - 1.0);
    report.add_metric("wins", wins);
    report.text += strf(
        "\nwins: %d/%d (paper: all); median gain %+.1f%% (paper: ~+100%%)\n",
        wins, walks, 100.0 * (aware.median() / stock.median() - 1.0));

    const BootstrapInterval ci =
        bootstrap_median_diff_ci(aware.samples(), stock.samples());
    report.add_metric("median_diff_ci_lo_mbps", ci.lo);
    report.add_metric("median_diff_ci_hi_mbps", ci.hi);
    report.add_metric("median_diff_point_mbps", ci.point);
    report.text += strf(
        "bootstrap 95%% CI on the median difference: [%.1f, %.1f] Mbps "
        "(point %.1f) -> %s\n",
        ci.lo, ci.hi, ci.point,
        ci.lo > 0.0 ? "significant" : "NOT significant at 95%");
  };
  return def;
}

}  // namespace mobiwlan::benchsuite
