// Figure 9 on the runtime runner: mobility-aware rate adaptation (§4.3).
//  (a) per-link TCP throughput, stock vs motion-aware Atheros RA — one job
//      per (link, variant), both variants replaying the same channel seed;
//  (b) five schemes over identical walking channels — one job per
//      (trace, scheme), all five schemes of a trace sharing one seed
//      reserved up front via Experiment::reserve_seeds().
#include <algorithm>
#include <string>

#include "chan/scenario.hpp"
#include "mac/atheros_ra.hpp"
#include "mac/esnr_ra.hpp"
#include "mac/link_sim.hpp"
#include "mac/sensor_hint_ra.hpp"
#include "mac/softrate_ra.hpp"
#include "suite/suite.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace mobiwlan::benchsuite {
namespace {

LinkSimConfig tcp_config() {
  LinkSimConfig cfg;
  cfg.duration_s = 15.0;
  cfg.tcp_stall_s = 0.025;  // download TCP per the paper's §4.3 setup
  return cfg;
}

}  // namespace

/// Run one scheme over the identical channel realization (same seed).
double fig9_run_scheme(const std::string& scheme, std::uint64_t seed,
                       MobilityClass cls, const FaultPlan& fault) {
  Rng rng(seed);
  Scenario s = make_scenario(cls, rng);
  LinkSimConfig cfg = tcp_config();
  cfg.fault = fault;
  Rng frame_rng(seed + 77777);

  if (scheme == "atheros") {
    AtherosRa ra;
    return simulate_link(s, ra, cfg, frame_rng).goodput_mbps;
  }
  if (scheme == "motion-aware") {
    AtherosRa ra = make_mobility_aware_atheros_ra();
    return simulate_link(s, ra, cfg, frame_rng).goodput_mbps;
  }
  if (scheme == "rapidsample") {
    SensorHintRa ra;
    cfg.run_classifier = false;
    cfg.provide_sensor_hint = true;
    return simulate_link(s, ra, cfg, frame_rng).goodput_mbps;
  }
  if (scheme == "softrate") {
    SoftRateRa ra;
    cfg.run_classifier = false;
    cfg.provide_phy_feedback = true;
    return simulate_link(s, ra, cfg, frame_rng).goodput_mbps;
  }
  EsnrRa ra;
  cfg.run_classifier = false;
  cfg.provide_phy_feedback = true;
  return simulate_link(s, ra, cfg, frame_rng).goodput_mbps;
}

BenchDef fig9_bench() {
  BenchDef def;
  def.name = "fig9";
  def.description =
      "rate adaptation: stock vs motion-aware, and five schemes head-to-head";
  def.run = [](runtime::Experiment& exp, runtime::BenchReport& report) {
    // (a) stock vs motion-aware per link. Each link's two variants share a
    // seed so they see the identical channel.
    report.text += banner_text(
        "Figure 9(a) — stock vs motion-aware Atheros RA, per link",
        "motion-aware wins on nearly every device-mobility link; "
        "+23% median TCP throughput in the paper");
    const int links = 15;
    report.add_metadata("links", std::to_string(links));
    report.add_metadata("traffic", "tcp 15s");
    const std::vector<std::uint64_t> link_seeds =
        exp.reserve_seeds(static_cast<std::size_t>(links));
    const char* variants[] = {"atheros", "motion-aware"};
    const auto per_link = exp.map<double>(
        static_cast<std::size_t>(links) * 2,
        [&link_seeds, &variants](runtime::Trial& trial) {
          const std::size_t link = trial.index / 2;
          const MobilityClass cls =
              link % 2 == 0 ? MobilityClass::kMacro : MobilityClass::kMicro;
          return fig9_run_scheme(variants[trial.index % 2], link_seeds[link],
                                 cls);
        });
    {
      SampleSet stock;
      SampleSet aware;
      int wins = 0;
      TablePrinter t("per-link throughput (Mbps), device-mobility links, TCP");
      t.set_header({"link", "mode", "stock", "motion-aware", "gain"});
      for (int link = 0; link < links; ++link) {
        const MobilityClass cls =
            link % 2 == 0 ? MobilityClass::kMacro : MobilityClass::kMicro;
        const double s = per_link[static_cast<std::size_t>(link) * 2];
        const double a = per_link[static_cast<std::size_t>(link) * 2 + 1];
        stock.add(s);
        aware.add(a);
        if (a > s) ++wins;
        t.add_row({std::to_string(link), std::string(to_string(cls)),
                   TablePrinter::num(s, 1), TablePrinter::num(a, 1),
                   TablePrinter::pct(a / s - 1.0)});
      }
      report.text += t.render();
      report.add_metric("per_link.stock_median_mbps", stock.median());
      report.add_metric("per_link.aware_median_mbps", aware.median());
      report.add_metric("per_link.median_gain",
                        aware.median() / stock.median() - 1.0);
      report.add_metric("per_link.wins", wins);
      report.text += strf(
          "\nmedian: stock %.1f vs motion-aware %.1f Mbps -> %+.1f%% "
          "(paper: +23%%); wins: %d/%d\n",
          stock.median(), aware.median(),
          100.0 * (aware.median() / stock.median() - 1.0), wins, links);
    }

    // (b) five schemes over identical walking channels: seed per trace,
    // shared by all five scheme jobs of that trace.
    report.text += banner_text(
        "Figure 9(b) — five schemes over identical walking channels",
        "ESNR > SoftRate ~ motion-aware > RapidSample > stock; "
        "motion-aware ~90% of ESNR without client changes");
    const char* schemes[] = {"atheros", "motion-aware", "rapidsample",
                             "softrate", "esnr"};
    const int traces = 10;
    report.add_metadata("walking_traces", std::to_string(traces));
    const std::vector<std::uint64_t> trace_seeds =
        exp.reserve_seeds(static_cast<std::size_t>(traces));
    const auto per_scheme = exp.map<double>(
        static_cast<std::size_t>(traces) * 5,
        [&trace_seeds, &schemes](runtime::Trial& trial) {
          return fig9_run_scheme(schemes[trial.index % 5],
                                 trace_seeds[trial.index / 5],
                                 MobilityClass::kMacro);
        });
    {
      SampleSet results[5];
      for (int trace = 0; trace < traces; ++trace)
        for (int si = 0; si < 5; ++si)
          results[si].add(per_scheme[static_cast<std::size_t>(trace) * 5 +
                                     static_cast<std::size_t>(si)]);
      TablePrinter t("walking-trace throughput (Mbps), identical channels");
      t.set_header({"scheme", "p25", "median", "p75", "vs stock"});
      for (int si = 0; si < 5; ++si) {
        t.add_row(
            {schemes[si], TablePrinter::num(results[si].quantile(0.25), 1),
             TablePrinter::num(results[si].median(), 1),
             TablePrinter::num(results[si].quantile(0.75), 1),
             TablePrinter::pct(results[si].median() / results[0].median() -
                               1.0)});
        report.add_metric(strf("schemes.%s_median_mbps", schemes[si]),
                          results[si].median());
      }
      report.text += t.render();
      report.add_metric("schemes.aware_vs_esnr",
                        results[1].median() / results[4].median());
      report.text += strf("\nmotion-aware / ESNR ratio: %.2f (paper: ~0.90)\n",
                          results[1].median() / results[4].median());
    }
  };
  return def;
}

}  // namespace mobiwlan::benchsuite
