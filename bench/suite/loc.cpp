// Localization suite (`mobiwlan-bench --loc`): the CSI-fingerprint
// indoor-positioning workload built on src/loc/.
//
//   * loc.db.*   — a 100x100-cell / 64-AP fingerprint database surveyed in
//     parallel through the Experiment sharder (bitwise digest, serial
//     rebuild spot-check at 0 mismatches).
//   * loc.err.*  — held-out walks localized against the DB: kNN-only and
//     AoA/ToF-fused median and p90 error in meters.
//   * loc.gate.* — the mobility-gated-refresh ablation: the identical
//     recorded observation stream replayed into two DB copies, one routed
//     by MobilityGate (static clients refresh their registration cell,
//     mobile/unknown query only), one refreshing on every epoch. Gating
//     must be no worse on post-replay probe accuracy with strictly fewer
//     writes.
//   * loc.lookup_checksum / timing_loc_* — the raw-speed section: repeated
//     single-thread lookup blocks against the 10^4-cell DB, median wall.
//
// Metrics land in a fidelity::FidelityReport gated against
// ci/loc_baseline.json with the usual flat-JSON schema and seed policy.
// Everything outside keys starting with "timing" is byte-identical for a
// fixed --seed at any --jobs; ci/loc_gate.sh diffs jobs 1 vs 8 and holds
// the lookup-rate floor (gate_loc_lookups_per_s, 0.85 grace like the
// campus gate).
#include <algorithm>
#include <bit>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "chan/trajectory.hpp"
#include "core/mobility_classifier.hpp"
#include "fidelity/fidelity.hpp"
#include "loc/fingerprint_db.hpp"
#include "loc/locator.hpp"
#include "loc/mobility_gate.hpp"
#include "net/deployment.hpp"
#include "phy/aoa.hpp"
#include "runtime/thread_pool.hpp"
#include "suite/suite.hpp"
#include "util/alloc_count.hpp"
#include "util/flatjson.hpp"
#include "util/simd.hpp"

namespace mobiwlan::benchsuite {
namespace {

using fidelity::FidelityReport;

// ---- shared workload shape -------------------------------------------------

/// Salts decorrelating the suite's derived seeds from each other.
constexpr std::uint64_t kDbSalt = 0x10CDB;
constexpr std::uint64_t kSmallDbSalt = 0x10C5D;
constexpr std::uint64_t kQuerySalt = 0x10CD1CE;

constexpr double kEpochPeriodS = 0.5;   ///< classifier CSI cadence
constexpr double kRefreshAlpha = 0.25;  ///< EWMA weight of a refresh

loc::LocatorConfig locator_config() { return loc::LocatorConfig{}; }

/// The main 10^4-cell database: 100x100 cells at 4 m pitch under an
/// 8x8 AP grid at 52 m pitch (everywhere covered, ~4-5 audible APs/cell).
loc::FingerprintDbConfig main_db_config(std::uint64_t seed) {
  loc::FingerprintDbConfig cfg;
  cfg.cols = 100;
  cfg.rows = 100;
  cfg.pitch_m = 4.0;
  cfg.coverage_radius_m = 60.0;
  cfg.rssi_floor_dbm = -88.0;
  cfg.seed = Rng(seed).stream(kDbSalt).seed();
  return cfg;
}

/// The ablation database: small enough that two replay arms with per-epoch
/// writes stay cheap, dense enough that every cell hears several APs.
loc::FingerprintDbConfig small_db_config(std::uint64_t seed) {
  loc::FingerprintDbConfig cfg;
  cfg.cols = 32;
  cfg.rows = 32;
  cfg.pitch_m = 4.0;
  cfg.coverage_radius_m = 60.0;
  cfg.rssi_floor_dbm = -88.0;
  cfg.seed = Rng(seed).stream(kSmallDbSalt).seed();
  return cfg;
}

double percentile(std::vector<double>& v, double q) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const double idx = q * static_cast<double>(v.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  return v[lo] + (v[hi] - v[lo]) * (idx - static_cast<double>(lo));
}

/// A query-side channel observing the same per-AP environment the survey
/// recorded (same stream id — see the FingerprintDb header).
std::unique_ptr<WirelessChannel> query_channel(
    const loc::FingerprintDb& db, std::size_t ap,
    std::shared_ptr<const Trajectory> traj) {
  return std::make_unique<WirelessChannel>(
      db.channel_config(), db.ap_position(ap), std::move(traj),
      Rng(db.config().seed).stream(loc::kSurveySalt ^ ap));
}

// ---- database build --------------------------------------------------------

struct CellRows {
  std::vector<float> row;
  std::vector<float> rssi;
  std::uint64_t mask = 0;
};

/// Builds a FingerprintDb by fanning survey_cell over the Experiment
/// sharder. Each cell's row is a pure function of (config, cell), so the
/// adopted database is bitwise identical to FingerprintDb::build() at any
/// worker count.
std::unique_ptr<loc::FingerprintDb> build_db(runtime::Experiment& exp,
                                             const loc::FingerprintDbConfig& cfg,
                                             std::vector<Vec2> aps,
                                             const ChannelConfig& chan_cfg) {
  auto db = std::make_unique<loc::FingerprintDb>(cfg, std::move(aps), chan_cfg);
  const loc::FingerprintDb* dbp = db.get();
  const std::size_t n_aps = db->n_aps();
  const auto rows = exp.map<CellRows>(
      db->n_cells(), [dbp, n_aps](runtime::Trial& trial) {
        CellRows r;
        r.row.resize(n_aps * loc::kFeat);
        r.rssi.resize(n_aps);
        ChannelBatch::Scratch scratch;
        dbp->survey_cell(trial.index, r.row.data(), r.rssi.data(), &r.mask,
                         scratch);
        return r;
      });

  std::vector<float> feat(db->n_cells() * n_aps * loc::kFeat);
  std::vector<float> rssi(db->n_cells() * n_aps);
  std::vector<std::uint64_t> masks(db->n_cells());
  for (std::size_t cell = 0; cell < rows.size(); ++cell) {
    std::copy(rows[cell].row.begin(), rows[cell].row.end(),
              feat.begin() + static_cast<std::ptrdiff_t>(cell * n_aps * loc::kFeat));
    std::copy(rows[cell].rssi.begin(), rows[cell].rssi.end(),
              rssi.begin() + static_cast<std::ptrdiff_t>(cell * n_aps));
    masks[cell] = rows[cell].mask;
  }
  db->adopt_rows(std::move(feat), std::move(rssi), std::move(masks));
  return db;
}

void loc_db_section(FidelityReport& rep, const loc::FingerprintDb& db) {
  std::uint64_t visible = 0;
  for (std::size_t cell = 0; cell < db.n_cells(); ++cell)
    visible += static_cast<std::uint64_t>(std::popcount(db.cell_mask(cell)));

  // Serial rebuild spot-check: re-survey a spread of cells on this thread
  // and compare bitwise against the parallel-built rows.
  constexpr std::size_t kProbes = 17;
  ChannelBatch::Scratch scratch;
  std::vector<float> row(db.n_aps() * loc::kFeat);
  std::vector<float> rssi(db.n_aps());
  std::uint64_t mismatches = 0;
  for (std::size_t p = 0; p < kProbes; ++p) {
    const std::size_t cell = (p * db.n_cells()) / kProbes;
    std::uint64_t mask = 0;
    db.survey_cell(cell, row.data(), rssi.data(), &mask, scratch);
    if (mask != db.cell_mask(cell) ||
        std::memcmp(row.data(), db.cell_features(cell),
                    row.size() * sizeof(float)) != 0 ||
        std::memcmp(rssi.data(), db.cell_rssi(cell),
                    rssi.size() * sizeof(float)) != 0)
      ++mismatches;
  }

  const std::uint64_t digest = db.digest();
  rep.add("loc.db.cells", static_cast<double>(db.n_cells()));
  rep.add("loc.db.aps", static_cast<double>(db.n_aps()));
  rep.add("loc.db.visible_pairs", static_cast<double>(visible));
  rep.add("loc.db.digest_hi", static_cast<double>(digest >> 32));
  rep.add("loc.db.digest_lo", static_cast<double>(digest & 0xffffffffULL));
  rep.add("loc.db.rebuild_mismatches", static_cast<double>(mismatches));
}

// ---- held-out walk accuracy ------------------------------------------------

struct WalkErrs {
  std::vector<double> knn;
  std::vector<double> fused;
};

void loc_err_section(runtime::Experiment& exp, FidelityReport& rep,
                     const loc::FingerprintDb& db) {
  constexpr std::size_t kWalks = 6;
  constexpr int kQueriesPerWalk = 120;
  const loc::FingerprintDb* dbp = &db;
  const auto results = exp.map<WalkErrs>(kWalks, [dbp](runtime::Trial& trial) {
    const loc::FingerprintDb& db = *dbp;
    const auto& cfg = db.config();
    WalkErrs out;

    WalkTrajectory::Config wc;
    const double margin = 5.0 * cfg.pitch_m;
    wc.bounds_min = cfg.origin + Vec2{margin, margin};
    wc.bounds_max =
        cfg.origin + Vec2{static_cast<double>(cfg.cols) * cfg.pitch_m - margin,
                          static_cast<double>(cfg.rows) * cfg.pitch_m - margin};
    const Vec2 start{trial.rng.uniform(wc.bounds_min.x, wc.bounds_max.x),
                     trial.rng.uniform(wc.bounds_min.y, wc.bounds_max.y)};
    const auto traj =
        std::make_shared<WalkTrajectory>(start, trial.rng, wc, 120.0);

    std::vector<std::unique_ptr<WirelessChannel>> chans(db.n_aps());
    for (std::size_t ap = 0; ap < db.n_aps(); ++ap)
      chans[ap] = query_channel(db, ap, traj);

    loc::Locator locator(&db, locator_config());
    loc::Locator::Scratch s;
    ChannelBatch::Scratch cs;
    ChannelSample smp, serving_smp;
    for (int q = 0; q < kQueriesPerWalk; ++q) {
      const double t = kEpochPeriodS * q;
      const Vec2 truth = traj->position(t);
      locator.begin_query(s);
      double best_rssi = -1e18;
      std::size_t serving = 0;
      for (std::size_t ap = 0; ap < db.n_aps(); ++ap) {
        if (distance(db.ap_position(ap), truth) > cfg.coverage_radius_m)
          continue;
        ChannelBatch::sample_link(*chans[ap], t, smp, cs);
        locator.observe_ap(s, ap, smp.csi, smp.rssi_dbm);
        if (smp.rssi_dbm > best_rssi) {
          best_rssi = smp.rssi_dbm;
          serving = ap;
          serving_smp = smp;
        }
      }
      const loc::LocEstimate knn = locator.locate(s);
      if (!knn.valid) continue;
      out.knn.push_back(distance(knn.position, truth));
      const AoaEstimate aoa = estimate_aoa(serving_smp.csi);
      const loc::LocEstimate fused =
          locator.locate_fused(s, aoa, serving, serving_smp.tof_cycles);
      out.fused.push_back(distance(fused.position, truth));
    }
    return out;
  });

  std::vector<double> knn, fused;
  for (const auto& r : results) {
    knn.insert(knn.end(), r.knn.begin(), r.knn.end());
    fused.insert(fused.end(), r.fused.begin(), r.fused.end());
  }
  rep.add("loc.err.queries", static_cast<double>(knn.size()));
  rep.add("loc.err.knn_median_m", percentile(knn, 0.5));
  rep.add("loc.err.knn_p90_m", percentile(knn, 0.9));
  rep.add("loc.err.fused_median_m", percentile(fused, 0.5));
  rep.add("loc.err.fused_p90_m", percentile(fused, 0.9));
}

// ---- mobility-gated refresh ablation ---------------------------------------

constexpr std::size_t kClients = 24;  ///< half static, half walking
constexpr std::size_t kEpochs = 120;  ///< 60 s at the classifier cadence

struct ObsRec {
  std::vector<float> feat;
  std::vector<float> rssi;
  std::uint64_t mask = 0;
  int decision = -1;  ///< classifier decision ordinal, -1 = withheld
  Vec2 truth{};
};

struct ClientRecord {
  bool is_static = false;
  std::vector<ObsRec> epochs;
};

/// Records one client's 60 s of observations: per epoch the query
/// fingerprint, the live classifier's decision, and the ground truth. The
/// same records then replay into both ablation arms, so the arms differ
/// only in refresh policy — never in what was observed.
ClientRecord record_client(runtime::Trial& trial, const loc::FingerprintDb& db) {
  const auto& cfg = db.config();
  ClientRecord rec;
  rec.is_static = trial.index < kClients / 2;

  const double margin = 2.0 * cfg.pitch_m;
  const double span_x = static_cast<double>(cfg.cols) * cfg.pitch_m;
  const double span_y = static_cast<double>(cfg.rows) * cfg.pitch_m;
  const Vec2 lo = cfg.origin + Vec2{margin, margin};
  const Vec2 hi = cfg.origin + Vec2{span_x - margin, span_y - margin};
  const Vec2 start{trial.rng.uniform(lo.x, hi.x), trial.rng.uniform(lo.y, hi.y)};
  std::shared_ptr<const Trajectory> traj;
  if (rec.is_static) {
    traj = std::make_shared<StaticTrajectory>(start);
  } else {
    WalkTrajectory::Config wc;
    wc.bounds_min = lo;
    wc.bounds_max = hi;
    traj = std::make_shared<WalkTrajectory>(start, trial.rng, wc, 120.0);
  }

  std::vector<std::unique_ptr<WirelessChannel>> chans(db.n_aps());
  for (std::size_t ap = 0; ap < db.n_aps(); ++ap)
    chans[ap] = query_channel(db, ap, traj);

  loc::Locator locator(&db, locator_config());
  loc::Locator::Scratch s;
  ChannelBatch::Scratch cs;
  ChannelSample smp, serving_smp;
  MobilityClassifier clf{MobilityClassifier::Config{}};
  rec.epochs.resize(kEpochs);
  for (std::size_t e = 0; e < kEpochs; ++e) {
    const double t = kEpochPeriodS * static_cast<double>(e);
    const Vec2 truth = traj->position(t);
    locator.begin_query(s);
    double best_rssi = -1e18;
    std::size_t serving = 0;
    bool have_serving = false;
    for (std::size_t ap = 0; ap < db.n_aps(); ++ap) {
      if (distance(db.ap_position(ap), truth) > cfg.coverage_radius_m) continue;
      ChannelBatch::sample_link(*chans[ap], t, smp, cs);
      locator.observe_ap(s, ap, smp.csi, smp.rssi_dbm);
      if (smp.rssi_dbm > best_rssi) {
        best_rssi = smp.rssi_dbm;
        serving = ap;
        serving_smp = smp;
        have_serving = true;
      }
    }

    // A third of the clients lose their PHY exports for 5 s mid-run, so
    // the gated arm exercises hold-then-decay on genuinely stale decisions.
    const bool outage = (trial.index % 3 == 0) && e >= 60 && e < 70;
    if (have_serving && !outage) {
      clf.on_csi(t, serving_smp.csi);
      const auto tof_period = MobilityClassifier::Config{}.tof_period_s;
      const int n_tof = static_cast<int>(kEpochPeriodS / tof_period);
      for (int i = 0; i < n_tof; ++i)
        clf.on_tof(t + tof_period * i, chans[serving]->tof_cycles(t + tof_period * i));
    }

    ObsRec& r = rec.epochs[e];
    r.feat = s.feat;
    r.rssi = s.rssi;
    r.mask = s.mask;
    r.truth = truth;
    const auto decided = clf.decision(t);
    r.decision = decided ? static_cast<int>(*decided) : -1;
  }
  return rec;
}

/// Rebuilds a recorded query in the locator scratch (strongest-AP choice
/// replays the observe_ap tie-break: highest RSSI, lowest index).
void load_query(const loc::Locator& locator, loc::Locator::Scratch& s,
                const ObsRec& r) {
  locator.begin_query(s);
  std::copy(r.feat.begin(), r.feat.end(), s.feat.begin());
  std::copy(r.rssi.begin(), r.rssi.end(), s.rssi.begin());
  s.mask = r.mask;
  std::uint64_t bits = r.mask;
  while (bits != 0) {
    const std::size_t ap = static_cast<std::size_t>(std::countr_zero(bits));
    bits &= bits - 1;
    if (s.rssi[ap] > s.strongest_rssi) {
      s.strongest_rssi = s.rssi[ap];
      s.strongest_ap = ap;
    }
  }
}

struct ArmResult {
  std::uint64_t writes = 0;
  std::uint64_t held = 0;
  std::uint64_t decayed = 0;
  std::vector<double> errs;        ///< per-epoch localization error, live DB
  std::vector<double> probe_errs;  ///< post-replay probes at registered cells
};

/// Replays the recorded streams into a copy of the DB under one refresh
/// policy. A refresh contributes the client's current fingerprint to its
/// *registered* cell — the cell of the position it associated at, which is
/// where the infrastructure believes a static client sits. That is exactly
/// the update a crowdsourced fingerprint DB harvests from parked clients,
/// and exactly what mobility-gating protects: a walking client believed
/// static EWMAs far-away fingerprints into its registration cell. The
/// post-replay probes replay every client's epoch-0 observation against
/// the final DB, so corrupted registration cells surface as probe error.
ArmResult run_arm(const loc::FingerprintDb& base,
                  const std::vector<ClientRecord>& recs, bool gated) {
  loc::FingerprintDb db = base;  // each arm mutates its own copy
  loc::Locator locator(&db, locator_config());
  loc::Locator::Scratch s;
  std::vector<loc::MobilityGate> gates(recs.size());
  std::vector<std::size_t> reg_cell(recs.size());
  for (std::size_t c = 0; c < recs.size(); ++c)
    reg_cell[c] = db.nearest_cell(recs[c].epochs[0].truth);
  ArmResult out;
  for (std::size_t e = 0; e < kEpochs; ++e) {
    const double t = kEpochPeriodS * static_cast<double>(e);
    for (std::size_t c = 0; c < recs.size(); ++c) {
      const ObsRec& r = recs[c].epochs[e];
      if (r.mask == 0) continue;
      load_query(locator, s, r);
      const loc::LocEstimate est = locator.locate(s);
      if (!est.valid) continue;
      out.errs.push_back(distance(est.position, r.truth));
      bool refresh = true;
      if (gated) {
        const std::optional<MobilityMode> decision =
            r.decision >= 0
                ? std::optional<MobilityMode>(static_cast<MobilityMode>(r.decision))
                : std::nullopt;
        refresh = gates[c].route(t, decision) == loc::GateAction::kRefresh;
      }
      if (refresh)
        db.refresh(reg_cell[c], s.feat.data(), s.rssi.data(), s.mask,
                   kRefreshAlpha);
    }
  }
  out.writes = db.writes();
  for (const auto& g : gates) {
    out.held += g.held();
    out.decayed += g.decayed();
  }
  for (std::size_t c = 0; c < recs.size(); ++c) {
    const ObsRec& r = recs[c].epochs[0];
    if (r.mask == 0) continue;
    load_query(locator, s, r);
    const loc::LocEstimate est = locator.locate(s);
    if (est.valid) out.probe_errs.push_back(distance(est.position, r.truth));
  }
  return out;
}

void loc_gate_section(runtime::Experiment& exp, FidelityReport& rep,
                      std::uint64_t seed, const ChannelConfig& chan_cfg) {
  const auto db = build_db(exp, small_db_config(seed),
                           WlanDeployment::grid_layout(4, 4, 40.0), chan_cfg);
  const loc::FingerprintDb* dbp = db.get();
  const auto records = exp.map<ClientRecord>(
      kClients,
      [dbp](runtime::Trial& trial) { return record_client(trial, *dbp); });

  ArmResult gated = run_arm(*db, records, /*gated=*/true);
  ArmResult always = run_arm(*db, records, /*gated=*/false);

  const auto mean = [](const std::vector<double>& v) {
    double s = 0.0;
    for (const double x : v) s += x;
    return v.empty() ? 0.0 : s / static_cast<double>(v.size());
  };
  const double probe_gated = mean(gated.probe_errs);
  const double probe_always = mean(always.probe_errs);
  rep.add("loc.gate.writes_gated", static_cast<double>(gated.writes));
  rep.add("loc.gate.writes_always", static_cast<double>(always.writes));
  rep.add("loc.gate.fewer_writes", gated.writes < always.writes ? 1.0 : 0.0);
  rep.add("loc.gate.err_gated_median_m", percentile(gated.errs, 0.5));
  rep.add("loc.gate.err_always_median_m", percentile(always.errs, 0.5));
  rep.add("loc.gate.probe_err_gated_m", probe_gated);
  rep.add("loc.gate.probe_err_always_m", probe_always);
  rep.add("loc.gate.accuracy_ok", probe_gated <= probe_always + 1e-9 ? 1.0 : 0.0);
  rep.add("loc.gate.held", static_cast<double>(gated.held));
  rep.add("loc.gate.decayed", static_cast<double>(gated.decayed));
}

// ---- raw lookup throughput -------------------------------------------------

void loc_throughput_section(FidelityReport& rep, const loc::FingerprintDb& db) {
  constexpr std::size_t kPrepared = 64;
  constexpr std::size_t kBlock = 20000;
  constexpr int kRuns = 5;
  const auto& cfg = db.config();

  loc::Locator locator(&db, locator_config());
  std::vector<loc::Locator::Scratch> queries(kPrepared);
  Rng qrng = Rng(cfg.seed).stream(kQuerySalt);
  ChannelBatch::Scratch cs;
  ChannelSample smp;
  const double margin = 2.0 * cfg.pitch_m;
  for (std::size_t i = 0; i < kPrepared; ++i) {
    const Vec2 p =
        cfg.origin +
        Vec2{qrng.uniform(margin, static_cast<double>(cfg.cols) * cfg.pitch_m - margin),
             qrng.uniform(margin, static_cast<double>(cfg.rows) * cfg.pitch_m - margin)};
    const auto traj = std::make_shared<StaticTrajectory>(p);
    locator.begin_query(queries[i]);
    for (std::size_t ap = 0; ap < db.n_aps(); ++ap) {
      if (distance(db.ap_position(ap), p) > cfg.coverage_radius_m) continue;
      const auto ch = query_channel(db, ap, traj);
      ChannelBatch::sample_link(*ch, 0.0, smp, cs);
      locator.observe_ap(queries[i], ap, smp.csi, smp.rssi_dbm);
    }
  }

  // Warm pass (buffers reach steady state), then the alloc-counted
  // checksum pass: both deterministic, neither timed.
  for (std::size_t i = 0; i < kPrepared; ++i) (void)locator.locate(queries[i]);
  std::uint64_t checksum = 0;
  const std::uint64_t alloc0 = alloc_count();
  for (std::size_t i = 0; i < kBlock; ++i) {
    const loc::LocEstimate est = locator.locate(queries[i % kPrepared]);
    checksum += est.valid ? est.cell + 1 : 0;
  }
  const std::uint64_t allocs = alloc_count() - alloc0;

  std::vector<double> walls;
  std::uint64_t sink = 0;
  for (int r = 0; r < kRuns; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < kBlock; ++i) {
      const loc::LocEstimate est = locator.locate(queries[i % kPrepared]);
      sink += est.cell;
    }
    walls.push_back(
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count());
  }
  asm volatile("" : : "r"(&sink) : "memory");
  std::sort(walls.begin(), walls.end());
  const double median_wall = walls[walls.size() / 2];

  rep.add("loc.lookup_checksum", static_cast<double>(checksum));
  rep.add("loc.query_allocs", static_cast<double>(allocs));
  rep.add("timing_loc_median_wall_s", median_wall);
  rep.add("timing_loc_lookups_per_s",
          median_wall > 0.0 ? static_cast<double>(kBlock) / median_wall : 0.0);
  rep.add("timing_host_avx2", simd::avx2fma_supported() ? 1.0 : 0.0);
  rep.add("timing_host_avx512", simd::avx512_supported() ? 1.0 : 0.0);
  rep.add("timing_active_simd_tier",
          static_cast<double>(static_cast<int>(simd::active_tier())));
  rep.add("timing_active_precision_fp32",
          simd::active_precision() == simd::Precision::kFloat32 ? 1.0 : 0.0);
}

// ---- driver ----------------------------------------------------------------

FidelityReport run_loc_report(runtime::Experiment& exp, std::uint64_t seed) {
  FidelityReport rep;
  const ChannelConfig chan_cfg;  // defaults: 3x2 antennas, 52 subcarriers
  const auto db = build_db(exp, main_db_config(seed),
                           WlanDeployment::grid_layout(8, 8, 52.0), chan_cfg);
  loc_db_section(rep, *db);
  loc_err_section(exp, rep, *db);
  loc_gate_section(exp, rep, seed, chan_cfg);
  loc_throughput_section(rep, *db);
  return rep;
}

int check_report(const FidelityReport& rep, std::uint64_t run_seed,
                 const std::string& baseline_path,
                 fidelity::CheckResult& check) {
  const auto baseline = load_flat_json(baseline_path);
  if (baseline.empty()) {
    std::fprintf(stderr, "mobiwlan-bench: no loc baseline at %s\n",
                 baseline_path.c_str());
    return 1;
  }
  check = rep.check(baseline, run_seed);
  std::printf("\nloc-check against %s (seed %llu):\n", baseline_path.c_str(),
              static_cast<unsigned long long>(run_seed));
  std::fputs(fidelity::render_check(check).c_str(), stdout);
  if (!check.pass()) {
    std::fprintf(stderr, "mobiwlan-bench: localization gate FAILED (baseline %s)\n",
                 baseline_path.c_str());
    return 1;
  }
  std::printf("loc-check: all bounds hold\n");
  return 0;
}

}  // namespace

int run_loc_bench(const LocOptions& opt) {
  if (!opt.check_only.empty()) {
    const auto doc = load_flat_json(opt.check_only);
    if (doc.empty()) {
      std::fprintf(stderr, "mobiwlan-bench: cannot read loc report %s\n",
                   opt.check_only.c_str());
      return 1;
    }
    std::uint64_t seed = 0;
    const FidelityReport rep = fidelity::report_from_flat_json(doc, seed);
    fidelity::CheckResult check;
    return check_report(rep, seed, opt.baseline, check);
  }

  std::size_t jobs = opt.jobs;
  if (jobs == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    jobs = hw ? hw : 1;
  }
  runtime::ThreadPool pool(jobs);
  runtime::BenchReport bench_report;
  bench_report.name = "loc";
  runtime::Experiment exp(pool, opt.seed, &bench_report);

  std::printf("loc: fingerprint DB + kNN/fused accuracy + mobility-gated "
              "refresh + lookup rate (seed %llu, %zu workers)\n",
              static_cast<unsigned long long>(opt.seed), pool.size());
  const auto start = std::chrono::steady_clock::now();
  const FidelityReport rep = run_loc_report(exp, opt.seed);
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  for (const auto& [key, v] : rep.metrics())
    std::printf("  %-44s %.6g\n", key.c_str(), v);
  std::printf("[loc: %zu jobs on %zu workers, %.2fs wall]\n",
              bench_report.jobs.size(), pool.size(), wall_s);

  fidelity::CheckResult check;
  int rc = 0;
  const fidelity::CheckResult* check_ptr = nullptr;
  if (opt.check) {
    rc = check_report(rep, opt.seed, opt.baseline, check);
    check_ptr = &check;
  }

  std::ofstream out(opt.out, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "mobiwlan-bench: cannot write %s\n", opt.out.c_str());
    return 1;
  }
  out << rep.to_json(opt.seed, wall_s, check_ptr);
  out.close();
  std::printf("wrote %s (%zu metrics)\n", opt.out.c_str(), rep.metrics().size());
  return rc;
}

}  // namespace mobiwlan::benchsuite
