// perf.cpp — hot-path microbenchmarks for `mobiwlan-bench --perf`.
//
// Four cases cover the per-packet pipeline the runtime loops execute
// millions of times per study: full channel sampling, bare CSI synthesis,
// CSI similarity, and one classifier CSI step. Each case exercises the
// scratch-buffer (zero-allocation) API that the steady-state loops use, so
// allocs_per_op doubles as a regression check on the allocation-free
// contract whenever the counting hook is linked (it is, in mobiwlan-bench).
//
// The workload construction is deliberately simple and self-contained so
// the numbers stay comparable across refactors: a strong-activity channel
// with a walking client, sampled at 1 kHz. ci/perf_baseline.json stores the
// gate values; ci/perf_gate.sh fails the build when a case regresses past
// the tolerance band.
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <memory>
#include <mutex>
#include <vector>

#include "campus/campus.hpp"
#include "chan/channel.hpp"
#include "chan/channel_batch.hpp"
#include "chan/trajectory.hpp"
#include "core/csi_similarity.hpp"
#include "core/mobility_classifier.hpp"
#include "phy/aoa.hpp"
#include "runtime/thread_pool.hpp"
#include "suite/suite.hpp"
#include "util/alloc_count.hpp"
#include "util/rng.hpp"
#include "util/simd.hpp"

namespace mobiwlan::benchsuite {
namespace {

using clock_type = std::chrono::steady_clock;

/// The shared perf workload: strong environmental activity plus a client
/// walking away from the AP at 1.2 m/s — every mobility signal active, so no
/// hot branch is skipped. Seeded off a dedicated stream, independent of the
/// experiment runner's job streams.
std::unique_ptr<WirelessChannel> perf_channel() {
  Rng master(20140204);
  Rng rng = master.stream(2001);
  ChannelConfig cfg;
  cfg.activity = EnvironmentalActivity::kStrong;
  auto traj =
      std::make_shared<LinearTrajectory>(Vec2{9.0, 0.0}, Vec2{1.0, 0.4}, 1.2);
  return std::make_unique<WirelessChannel>(cfg, Vec2{0.0, 0.0},
                                           std::move(traj), rng.split());
}

/// Repeats `body` in 256-op batches until `min_time_s` elapses (after a
/// 64-op warmup that also populates any scratch buffers), then reports
/// mean ns/op and allocs/op over the timed region.
template <typename Body>
PerfResult measure(const char* name, double min_time_s, Body body) {
  for (int i = 0; i < 64; ++i) body();
  std::uint64_t iters = 0;
  const std::uint64_t allocs0 = alloc_count();
  const auto t0 = clock_type::now();
  double elapsed = 0.0;
  do {
    for (int i = 0; i < 256; ++i) body();
    iters += 256;
    elapsed = std::chrono::duration<double>(clock_type::now() - t0).count();
  } while (elapsed < min_time_s);
  const std::uint64_t allocs1 = alloc_count();

  PerfResult r;
  r.name = name;
  r.ns_per_op = 1e9 * elapsed / static_cast<double>(iters);
  r.ops_per_sec = static_cast<double>(iters) / elapsed;
  r.allocs_per_op =
      static_cast<double>(allocs1 - allocs0) / static_cast<double>(iters);
  return r;
}

PerfResult run_channel_sample(double min_time_s) {
  auto ch = perf_channel();
  WirelessChannel::PathScratch scratch;
  ChannelSample s;
  double t = 0.0;
  return measure("channel_sample", min_time_s, [&] {
    ch->sample_into(t, s, scratch);
    t += 0.001;
    asm volatile("" : : "r"(&s) : "memory");
  });
}

PerfResult run_channel_synthesis(double min_time_s) {
  auto ch = perf_channel();
  WirelessChannel::PathScratch scratch;
  CsiMatrix m;
  double t = 0.0;
  return measure("channel_synthesis", min_time_s, [&] {
    ch->csi_true_into(t, m, scratch);
    t += 0.001;
    asm volatile("" : : "r"(&m) : "memory");
  });
}

/// Restores the forced precision tier on scope exit (the fp32 cases must
/// not leak their override into later cases or the gate run).
struct PrecisionGuard {
  explicit PrecisionGuard(int precision) {
    simd::set_forced_precision(precision);
  }
  ~PrecisionGuard() { simd::set_forced_precision(-1); }
};

/// Batched noiseless synthesis through ChannelBatch — the engine the scale
/// runs and the classifier driver sit on, at the paper's 3x2x52 layout.
/// `precision` pins the plane tier: 0 = fp64 (the default contract),
/// 1 = fp32 (error-bounded tier; see DESIGN.md §5).
PerfResult run_batch_synthesis_tier(const char* name, double min_time_s,
                                    int precision) {
  PrecisionGuard guard(precision);
  auto ch = perf_channel();
  ChannelBatch batch;
  batch.add_link(ch.get());
  ChannelBatch::Scratch scratch;
  CsiMatrix m;
  double t = 0.0;
  return measure(name, min_time_s, [&] {
    batch.csi_true_into(0, t, m, scratch);
    t += 0.001;
    asm volatile("" : : "r"(&m) : "memory");
  });
}

PerfResult run_batch_synthesis(double min_time_s) {
  return run_batch_synthesis_tier("batch_synthesis", min_time_s, 0);
}

PerfResult run_batch_synthesis_f32(double min_time_s) {
  return run_batch_synthesis_tier("batch_synthesis_f32", min_time_s, 1);
}

PerfResult run_aoa_sweep(double min_time_s) {
  // One full 181-point beamscan over a fixed CSI snapshot — the estimator
  // the localization fusion path calls per serving-AP observation. Holds
  // the steering-vector hoist honest: the per-grid-point work must stay
  // one complex multiply-accumulate per (tx, rx, subcarrier), not a
  // std::polar in the inner loop.
  auto ch = perf_channel();
  const CsiMatrix csi = ch->csi_at(0.0);
  return measure("aoa_sweep", min_time_s, [&] {
    AoaEstimate est = estimate_aoa(csi);
    asm volatile("" : : "r"(&est) : "memory");
  });
}

PerfResult run_csi_similarity(double min_time_s) {
  auto ch = perf_channel();
  const CsiMatrix a = ch->csi_at(0.0);
  const CsiMatrix b = ch->csi_at(0.5);
  CsiSimilarityScratch scratch;
  return measure("csi_similarity", min_time_s, [&] {
    double s = csi_similarity(a, b, scratch);
    asm volatile("" : : "r"(&s) : "memory");
  });
}

PerfResult run_classifier_csi_step(double min_time_s) {
  auto ch = perf_channel();
  std::vector<CsiMatrix> samples;
  samples.reserve(64);
  for (int i = 0; i < 64; ++i) samples.push_back(ch->csi_at(i * 0.5));
  MobilityClassifier clf;
  double t = 0.0;
  std::size_t i = 0;
  return measure("classifier_csi_step", min_time_s, [&] {
    clf.on_csi(t, samples[i % samples.size()]);
    t += 0.5;
    ++i;
  });
}

PerfResult run_pool_post_many(double min_time_s) {
  // Dispatch overhead of the batched enqueue: one op = post_many() of 64
  // no-op tasks (one lock + one notify_all) plus the completion wait. The
  // tasks capture 16 bytes, so they ride the TaskFn inline buffer — the
  // allocs/op column proves the queue itself is the only allocator (one
  // node per task from std::queue, nothing per-submit).
  runtime::ThreadPool pool(1);
  constexpr std::size_t kTasks = 64;
  std::atomic<std::size_t> remaining{0};
  std::mutex mu;
  std::condition_variable done;
  return measure("pool_post_many", min_time_s, [&] {
    remaining.store(kTasks, std::memory_order_relaxed);
    pool.post_many(kTasks, [&](std::size_t) {
      return runtime::TaskFn([&] {
        if (remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
          std::lock_guard<std::mutex> lock(mu);
          done.notify_one();
        }
      });
    });
    std::unique_lock<std::mutex> lock(mu);
    done.wait(lock, [&] {
      return remaining.load(std::memory_order_acquire) == 0;
    });
  });
}

PerfResult run_campus_step(double min_time_s) {
  // A steady-state campus shard step: 512 resident sessions on an 8x8 grid
  // over 4 shards, all arrived at epoch 1 and none departing within the
  // measured horizon. The hysteresis is pinned high so no session
  // re-associates mid-measurement — the case times the shard step loop
  // (batch rebuild + batched sample + per-session step + mailbox sweep),
  // not channel re-construction, and its allocs/op column gates the
  // zero-allocation contract of that loop.
  campus::CampusConfig cfg = campus::campus_default_config();
  cfg.cols = 8;
  cfg.rows = 8;
  cfg.shards = 4;
  cfg.jobs = 1;
  cfg.n_sessions = 512;
  cfg.arrival_window_epochs = 1;
  cfg.min_dwell_epochs = 100000;
  cfg.mean_extra_dwell_epochs = 0.0;
  cfg.max_dwell_epochs = 100000;
  cfg.horizon_epochs = 200000;
  cfg.session.handover_hysteresis_m = 1e9;
  campus::CampusSim sim(cfg);
  sim.step_epoch();  // admits (and primes) every session
  return measure("campus_step", min_time_s, [&] { sim.step_epoch(); });
}

}  // namespace

const std::vector<PerfCaseDef>& perf_registry() {
  static const std::vector<PerfCaseDef> cases = {
      {"channel_sample",
       "full ChannelSample (geometry+CSI+noise) via sample_into",
       run_channel_sample},
      {"channel_synthesis", "noiseless 3x2x52 CSI synthesis via csi_true_into",
       run_channel_synthesis},
      {"batch_synthesis",
       "batched noiseless synthesis via ChannelBatch (fp64 tier)",
       run_batch_synthesis},
      {"batch_synthesis_f32",
       "batched noiseless synthesis via ChannelBatch (fp32 tier)",
       run_batch_synthesis_f32},
      {"aoa_sweep", "181-point beamscan AoA estimate on a fixed CSI snapshot",
       run_aoa_sweep},
      {"csi_similarity", "4-pair Pearson CSI similarity with scratch buffers",
       run_csi_similarity},
      {"classifier_csi_step", "MobilityClassifier::on_csi steady-state step",
       run_classifier_csi_step},
      {"pool_post_many", "64-task batched enqueue + drain on a 1-worker pool",
       run_pool_post_many},
      {"campus_step", "one campus epoch: 512 resident sessions on 4 shards",
       run_campus_step},
  };
  return cases;
}

}  // namespace mobiwlan::benchsuite
