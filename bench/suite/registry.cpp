#include "suite/suite.hpp"

#include <chrono>
#include <cstdarg>
#include <cstdio>
#include <thread>

#include "runtime/thread_pool.hpp"

namespace mobiwlan::benchsuite {

const std::vector<BenchDef>& registry() {
  static const std::vector<BenchDef> benches = {
      table1_bench(),
      fig9_bench(),
      fig13_bench(),
  };
  return benches;
}

int run_standalone(const std::string& name) {
  for (const BenchDef& def : registry()) {
    if (def.name != name) continue;
    const unsigned hw = std::thread::hardware_concurrency();
    runtime::ThreadPool pool(hw ? hw : 1);
    runtime::BenchReport report;
    report.name = def.name;
    report.description = def.description;
    runtime::Experiment exp(pool, runtime::kMasterSeed, &report);
    const auto start = std::chrono::steady_clock::now();
    def.run(exp, report);
    report.wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    std::fputs(report.text.c_str(), stdout);
    std::printf("\n[%s: %zu jobs on %zu workers, %.2fs wall, %.0f%% "
                "utilization]\n",
                def.name.c_str(), report.jobs.size(), report.workers,
                report.wall_s, 100.0 * report.worker_utilization());
    return 0;
  }
  std::fprintf(stderr, "unknown bench: %s\n", name.c_str());
  return 1;
}

std::string strf(const char* format, ...) {
  va_list args;
  va_start(args, format);
  va_list args_copy;
  va_copy(args_copy, args);
  const int n = std::vsnprintf(nullptr, 0, format, args);
  va_end(args);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<std::size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, format, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string banner_text(const std::string& figure,
                        const std::string& expectation) {
  return strf("\n================================================================\n"
              "%s\nPaper: %s\n"
              "================================================================\n",
              figure.c_str(), expectation.c_str());
}

}  // namespace mobiwlan::benchsuite
