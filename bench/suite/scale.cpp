// scale.cpp — AP-scale throughput benchmark (`mobiwlan-bench --scale`).
//
// The workload: a 64-AP floor (8x8 grid, 30 m pitch) serving 512 clients,
// every link an independent scatterer field over a shared master seed. The
// bench answers three questions the per-link perf cases cannot:
//
//   1. *Equivalence at scale* — one ChannelBatch pass over all 512 links
//      must agree with 512 independent WirelessChannel::sample_into calls
//      (same seeds) to <= 1e-12 scale-relative per CSI element and exactly
//      on every quantized output (RSSI, ToF). Checked every run, on a pool
//      of --jobs workers, so it doubles as a shard-determinism check.
//   2. *Batch throughput* — aggregate CSI samples/s of the batched engine
//      vs the per-link loop, single-threaded, plus a thread-scaling ladder
//      (1/2/4/8 executors via ThreadPool::parallel_for, grain 64, one
//      Scratch per slot; widths above the host's hardware concurrency are
//      skipped — they would measure oversubscription, not scaling).
//   3. *Allocation discipline* — a steady-state batch pass must perform
//      zero heap allocations (counted via the mobiwlan_alloc_hook that
//      mobiwlan-bench links).
//
// Determinism contract: everything in BENCH_scale.json except the
// `timing_*` keys is byte-identical for --jobs 1 and --jobs N. Timing keys
// are quarantined by name, the same convention as the run reports.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <memory>
#include <numbers>
#include <string>
#include <thread>
#include <vector>

#include "chan/channel.hpp"
#include "chan/channel_batch.hpp"
#include "chan/trajectory.hpp"
#include "runtime/experiment.hpp"
#include "runtime/thread_pool.hpp"
#include "suite/suite.hpp"
#include "util/alloc_count.hpp"
#include "util/flatjson.hpp"
#include "util/rng.hpp"
#include "util/simd.hpp"

namespace mobiwlan::benchsuite {
namespace {

using clock_type = std::chrono::steady_clock;

constexpr std::size_t kApsPerSide = 8;
constexpr std::size_t kNumAps = kApsPerSide * kApsPerSide;  // 64
constexpr double kApPitchM = 30.0;
constexpr std::size_t kNumClients = 512;
constexpr std::size_t kShardGrain = 64;  // links per parallel_for chunk

struct LinkSet {
  std::vector<std::unique_ptr<WirelessChannel>> channels;
  ChannelBatch batch;  // non-owning view, link i == channels[i]
};

/// Builds the 512-link floor. Construction is sharded through the
/// Experiment (chunk-keyed substreams), so the set is bit-identical on any
/// pool size — and calling this twice on experiments with the same seed
/// yields two identical, independent copies (the per-link / batched pair
/// the agreement phase compares).
LinkSet build_links(runtime::Experiment& exp) {
  LinkSet set;
  set.channels.resize(kNumClients);
  exp.shard(kNumClients, kShardGrain,
            [&](std::size_t begin, std::size_t end, Rng& rng) {
              for (std::size_t i = begin; i < end; ++i) {
                const std::size_t ap = i % kNumAps;
                const Vec2 ap_pos{
                    static_cast<double>(ap % kApsPerSide) * kApPitchM,
                    static_cast<double>(ap / kApsPerSide) * kApPitchM};
                ChannelConfig cfg;
                cfg.activity = (i % 2 == 0) ? EnvironmentalActivity::kStrong
                                            : EnvironmentalActivity::kWeak;
                const Vec2 start{ap_pos.x + rng.uniform(-12.0, 12.0),
                                 ap_pos.y + rng.uniform(-12.0, 12.0)};
                const double heading =
                    rng.uniform(0.0, 2.0 * std::numbers::pi);
                auto traj = std::make_shared<LinearTrajectory>(
                    start, Vec2{std::cos(heading), std::sin(heading)}, 1.2);
                set.channels[i] = std::make_unique<WirelessChannel>(
                    cfg, ap_pos, std::move(traj), rng.split());
              }
            });
  for (auto& ch : set.channels) set.batch.add_link(ch.get());
  return set;
}

/// One batched pass over all links at time t, sharded over `pool` with one
/// scratch per slot. Writes out[0..kNumClients).
void batch_pass(runtime::ThreadPool& pool,
                std::vector<ChannelBatch::Scratch>& scratches, LinkSet& set,
                double t, ChannelSample* out) {
  pool.parallel_for(kNumClients, kShardGrain,
                    [&](std::size_t slot, std::size_t begin, std::size_t end) {
                      set.batch.sample_range(t, begin, end, out,
                                             scratches[slot]);
                    });
}

struct Agreement {
  double max_rel_diff = 0.0;  // scale-relative, per link
  long exact_mismatches = 0;  // RSSI / ToF quantized outputs
  double checksum = 0.0;      // order-independent probe over both sets
};

/// Compares a batched pass against the per-link loop, link by link. CSI
/// diffs are measured relative to the link's own CSI scale (max |element|):
/// deep-faded subcarriers sit at ~1e-15 absolute like everything else, so a
/// per-element relative measure would only amplify noise on values that
/// carry none of the similarity signal.
void compare_pass(const ChannelSample* a, const ChannelSample* b,
                  Agreement& agg) {
  for (std::size_t i = 0; i < kNumClients; ++i) {
    double scale = 0.0;
    for (const cplx& z : a[i].csi.raw())
      scale = std::max({scale, std::abs(z.real()), std::abs(z.imag())});
    scale = std::max(scale, 1e-300);
    for (std::size_t k = 0; k < a[i].csi.raw().size(); ++k) {
      const double dr =
          std::abs(a[i].csi.raw()[k].real() - b[i].csi.raw()[k].real());
      const double di =
          std::abs(a[i].csi.raw()[k].imag() - b[i].csi.raw()[k].imag());
      agg.max_rel_diff = std::max(agg.max_rel_diff, (dr + di) / scale);
    }
    if (a[i].rssi_dbm != b[i].rssi_dbm) ++agg.exact_mismatches;
    if (a[i].tof_cycles != b[i].tof_cycles) ++agg.exact_mismatches;
    agg.checksum += a[i].rssi_dbm + a[i].tof_cycles + b[i].rssi_dbm +
                    b[i].tof_cycles;
  }
}

/// Times `pass(t)` in whole passes until `min_time_s` elapses (one warmup
/// pass first); returns ns per link-sample.
template <typename Pass>
double time_passes(double min_time_s, double& t, Pass&& pass) {
  pass(t);
  t += 0.001;
  std::size_t passes = 0;
  const auto t0 = clock_type::now();
  double elapsed = 0.0;
  do {
    pass(t);
    t += 0.001;
    ++passes;
    elapsed = std::chrono::duration<double>(clock_type::now() - t0).count();
  } while (elapsed < min_time_s);
  return 1e9 * elapsed / (static_cast<double>(passes) * kNumClients);
}

/// Paired fp32-vs-fp64 batched-synthesis ratio at `tier`, on a wideband
/// (242-subcarrier) link where the synthesis kernels — not the per-path
/// scalar prep — dominate. The two precisions are measured *interleaved*
/// (alternating 256-op blocks with a short untimed warm block after each
/// switch, so the plane working-set swap is not charged to either side) and
/// the ratio comes from the summed times: background-load drift on a shared
/// CI host hits both sides equally instead of skewing whichever side ran
/// second.
struct F32Speedup {
  double f64_ns = 0.0;
  double f32_ns = 0.0;
  double speedup = 0.0;
};

F32Speedup measure_f32_synthesis(double min_time_s, int tier) {
  Rng master(runtime::kMasterSeed);
  Rng rng = master.stream(7001);
  ChannelConfig cfg;
  cfg.n_subcarriers = 242;  // 80 MHz-class width: synthesis-dominated
  cfg.activity = EnvironmentalActivity::kWeak;
  auto traj =
      std::make_shared<LinearTrajectory>(Vec2{9.0, 0.0}, Vec2{1.0, 0.4}, 1.2);
  auto ch = std::make_unique<WirelessChannel>(cfg, Vec2{0.0, 0.0},
                                              std::move(traj), rng.split());
  ChannelBatch batch;
  batch.add_link(ch.get());
  ChannelBatch::Scratch scratch;
  CsiMatrix m;
  simd::set_forced_tier(tier);
  double t = 0.1;
  for (int i = 0; i < 64; ++i) {  // size both precision tiers' planes
    simd::set_forced_precision(i & 1);
    batch.csi_true_into(0, t, m, scratch);
    t += 1e-4;
  }
  F32Speedup r;
  double t64 = 0.0, t32 = 0.0;
  std::size_t ops = 0;
  do {
    for (int precision = 0; precision < 2; ++precision) {
      simd::set_forced_precision(precision);
      for (int i = 0; i < 32; ++i) {  // untimed: repopulate caches post-switch
        batch.csi_true_into(0, t, m, scratch);
        t += 1e-4;
      }
      const auto t0 = clock_type::now();
      for (int i = 0; i < 256; ++i) {
        batch.csi_true_into(0, t, m, scratch);
        t += 1e-4;
      }
      const double dt =
          std::chrono::duration<double>(clock_type::now() - t0).count();
      (precision == 0 ? t64 : t32) += dt;
    }
    ops += 256;
  } while (t64 + t32 < min_time_s);
  simd::set_forced_precision(-1);
  simd::set_forced_tier(-1);
  r.f64_ns = 1e9 * t64 / static_cast<double>(ops);
  r.f32_ns = 1e9 * t32 / static_cast<double>(ops);
  r.speedup = t64 / t32;
  return r;
}

}  // namespace

int run_scale_bench(const ScaleOptions& opt) {
  std::size_t jobs = opt.jobs;
  if (jobs == 0) jobs = 1;

  std::printf("scale: %zu APs x %zu clients, seed %llu, %zu jobs\n", kNumAps,
              kNumClients, static_cast<unsigned long long>(opt.seed), jobs);

  runtime::ThreadPool pool(jobs);
  runtime::Experiment exp_a(pool, opt.seed);
  runtime::Experiment exp_b(pool, opt.seed);
  LinkSet set_a = build_links(exp_a);  // sampled through ChannelBatch
  LinkSet set_b = build_links(exp_b);  // sampled per link

  std::vector<ChannelBatch::Scratch> scratches(pool.size() + 1);
  std::vector<ChannelSample> out_a(kNumClients), out_b(kNumClients);
  WirelessChannel::PathScratch per_link_scratch;

  // ---- phase 1: equivalence (deterministic keys) ------------------------
  Agreement agg;
  for (int pass = 0; pass < 4; ++pass) {
    const double t = 0.25 * (pass + 1);
    batch_pass(pool, scratches, set_a, t, out_a.data());
    for (std::size_t i = 0; i < kNumClients; ++i)
      set_b.channels[i]->sample_into(t, out_b[i], per_link_scratch);
    compare_pass(out_a.data(), out_b.data(), agg);
  }
  const bool agree = agg.max_rel_diff <= 1e-12 && agg.exact_mismatches == 0;
  std::printf(
      "  agreement: max_rel_diff %.3e, %ld exact mismatches, checksum "
      "%.17g -> %s\n",
      agg.max_rel_diff, agg.exact_mismatches, agg.checksum,
      agree ? "ok" : "FAIL");

  // ---- phase 2: steady-state allocation count (deterministic key) -------
  // One explicit warmup pass sizes scratches[0] for every link (at jobs > 1
  // the caller's slot saw only some chunks in phase 1); the 8 counted
  // single-threaded passes after it must not allocate.
  double t_alloc = 2.0;
  set_a.batch.sample_range(t_alloc, 0, kNumClients, out_a.data(),
                           scratches[0]);
  t_alloc += 0.001;
  const std::uint64_t allocs0 = alloc_count();
  for (int pass = 0; pass < 8; ++pass) {
    set_a.batch.sample_range(t_alloc, 0, kNumClients, out_a.data(),
                             scratches[0]);
    t_alloc += 0.001;
  }
  const double allocs_per_op =
      static_cast<double>(alloc_count() - allocs0) / (8.0 * kNumClients);
  std::printf("  steady-state allocs/op: %.4f%s\n", allocs_per_op,
              alloc_hook_active() ? "" : " (hook not linked)");

  // ---- phase 3: throughput (timing keys) --------------------------------
  double t_time = 10.0;
  const double per_link_ns =
      time_passes(opt.min_time_s, t_time, [&](double t) {
        for (std::size_t i = 0; i < kNumClients; ++i)
          set_b.channels[i]->sample_into(t, out_b[i], per_link_scratch);
      });
  const double batch_ns = time_passes(opt.min_time_s, t_time, [&](double t) {
    set_a.batch.sample_range(t, 0, kNumClients, out_a.data(), scratches[0]);
  });
  const double speedup = per_link_ns / batch_ns;
  std::printf("  single-thread: per-link %.0f ns, batch %.0f ns  (%.2fx, "
              "%.2fM samples/s)\n",
              per_link_ns, batch_ns, speedup, 1e3 / batch_ns);

  // Thread-scaling ladder: N executors = a pool of N-1 helpers plus the
  // calling thread (jobs 1 reuses the single-thread number above). A width
  // beyond the hardware concurrency measures scheduler thrash, not scaling,
  // so the ladder only reports widths the host can actually run in
  // parallel; hardware_concurrency() == 0 means "unknown" and keeps the
  // full ladder. The procedure is documented in EXPERIMENTS.md.
  const unsigned hw = std::thread::hardware_concurrency();
  std::vector<std::size_t> ladder_widths{1};
  for (std::size_t n : {2u, 4u, 8u})
    if (hw == 0 || n <= hw) ladder_widths.push_back(n);
  std::vector<double> ladder_ns{batch_ns};
  for (std::size_t k = 1; k < ladder_widths.size(); ++k) {
    const std::size_t n = ladder_widths[k];
    runtime::ThreadPool ladder_pool(n - 1);
    std::vector<ChannelBatch::Scratch> ladder_scratch(ladder_pool.size() + 1);
    const double ns = time_passes(opt.min_time_s, t_time, [&](double t) {
      batch_pass(ladder_pool, ladder_scratch, set_a, t, out_a.data());
    });
    ladder_ns.push_back(ns);
    std::printf("  %zu executors: %.0f ns/sample (%.2fx vs 1, %.2fM "
                "samples/s)\n",
                n, ns, batch_ns / ns, 1e3 / ns);
  }
  if (ladder_widths.size() == 1)
    std::printf("  thread ladder: host has %u hardware thread(s); wider "
                "widths skipped\n",
                hw);

  // ---- phase 4: fp32 synthesis ratio (timing keys) ----------------------
  // Gate quantity for ci/perf_gate.sh's fp32 section: the precision-tier
  // speedup at the host's active SIMD tier, plus the avx2-forced pair so
  // AVX-512 hosts also publish the narrower tier's ratio.
  const F32Speedup f32_best = measure_f32_synthesis(opt.min_time_s, -1);
  std::printf(
      "  fp32 synthesis (242 sc, %s tier): fp64 %.0f ns, fp32 %.0f ns "
      "(%.2fx)\n",
      simd::tier_name(simd::active_tier()), f32_best.f64_ns, f32_best.f32_ns,
      f32_best.speedup);
  F32Speedup f32_avx2;
  if (simd::avx2fma_supported()) {
    f32_avx2 = measure_f32_synthesis(opt.min_time_s, 1);
    std::printf(
        "  fp32 synthesis (242 sc, avx2-forced): fp64 %.0f ns, fp32 %.0f ns "
        "(%.2fx)\n",
        f32_avx2.f64_ns, f32_avx2.f32_ns, f32_avx2.speedup);
  }

  // ---- report -----------------------------------------------------------
  std::ofstream out(opt.out, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "mobiwlan-bench: cannot write %s\n", opt.out.c_str());
    return 1;
  }
  char buf[256];
  out << "{\n  \"bench\": \"scale\",\n";
  std::snprintf(buf, sizeof buf, "  \"n_aps\": %zu,\n", kNumAps);
  out << buf;
  std::snprintf(buf, sizeof buf, "  \"n_clients\": %zu,\n", kNumClients);
  out << buf;
  std::snprintf(buf, sizeof buf, "  \"agreement_max_rel_diff\": %.3e,\n",
                agg.max_rel_diff);
  out << buf;
  std::snprintf(buf, sizeof buf, "  \"agreement_exact_mismatches\": %ld,\n",
                agg.exact_mismatches);
  out << buf;
  std::snprintf(buf, sizeof buf, "  \"agreement_checksum\": %.17g,\n",
                agg.checksum);
  out << buf;
  std::snprintf(buf, sizeof buf, "  \"alloc_hook_active\": %d,\n",
                alloc_hook_active() ? 1 : 0);
  out << buf;
  std::snprintf(buf, sizeof buf, "  \"scale_allocs_per_op\": %.4f,\n",
                allocs_per_op);
  out << buf;
  std::snprintf(buf, sizeof buf, "  \"timing_per_link_sample_ns\": %.1f,\n",
                per_link_ns);
  out << buf;
  std::snprintf(buf, sizeof buf, "  \"timing_batch_sample_ns\": %.1f,\n",
                batch_ns);
  out << buf;
  std::snprintf(buf, sizeof buf, "  \"timing_batch_speedup\": %.2f,\n",
                speedup);
  out << buf;
  std::snprintf(buf, sizeof buf,
                "  \"timing_batch_samples_per_sec\": %.0f,\n", 1e9 / batch_ns);
  out << buf;
  std::snprintf(buf, sizeof buf, "  \"timing_hw_concurrency\": %u,\n", hw);
  out << buf;
  for (std::size_t k = 0; k < ladder_ns.size(); ++k) {
    std::snprintf(buf, sizeof buf, "  \"timing_jobs%zu_sample_ns\": %.1f,\n",
                  ladder_widths[k], ladder_ns[k]);
    out << buf;
    std::snprintf(buf, sizeof buf,
                  "  \"timing_jobs%zu_samples_per_sec\": %.0f,\n",
                  ladder_widths[k], 1e9 / ladder_ns[k]);
    out << buf;
  }
  // Host-capability and tier provenance, quarantined on timing_* keys: the
  // deterministic body of the report stays host-independent while baselines
  // stay comparable across machines.
  std::snprintf(buf, sizeof buf, "  \"timing_host_avx2\": %d,\n",
                simd::avx2fma_supported() ? 1 : 0);
  out << buf;
  std::snprintf(buf, sizeof buf, "  \"timing_host_avx512\": %d,\n",
                simd::avx512_supported() ? 1 : 0);
  out << buf;
  std::snprintf(buf, sizeof buf, "  \"timing_active_simd_tier\": %d,\n",
                static_cast<int>(simd::active_tier()));
  out << buf;
  std::snprintf(buf, sizeof buf, "  \"timing_active_precision_fp32\": %d,\n",
                simd::active_precision() == simd::Precision::kFloat32 ? 1 : 0);
  out << buf;
  std::snprintf(buf, sizeof buf, "  \"timing_f32_synthesis_f64_ns\": %.1f,\n",
                f32_best.f64_ns);
  out << buf;
  std::snprintf(buf, sizeof buf, "  \"timing_f32_synthesis_f32_ns\": %.1f,\n",
                f32_best.f32_ns);
  out << buf;
  std::snprintf(buf, sizeof buf, "  \"timing_f32_synthesis_speedup\": %.2f,\n",
                f32_best.speedup);
  out << buf;
  if (simd::avx2fma_supported()) {
    std::snprintf(buf, sizeof buf,
                  "  \"timing_f32_synthesis_speedup_avx2\": %.2f,\n",
                  f32_avx2.speedup);
    out << buf;
  }
  out << "  \"end\": 0\n}\n";
  out.close();
  std::printf("wrote %s\n", opt.out.c_str());

  if (!agree) {
    std::fprintf(stderr,
                 "mobiwlan-bench: scale agreement FAILED (max_rel_diff %.3e, "
                 "%ld exact mismatches)\n",
                 agg.max_rel_diff, agg.exact_mismatches);
    return 1;
  }
  if (!opt.check) return 0;

  // ---- gate (--scale-check) ---------------------------------------------
  const auto baseline = load_flat_json(opt.baseline);
  const auto tol_it = baseline.find("tolerance");
  const double tol = tol_it != baseline.end() ? tol_it->second : 0.25;
  bool ok = true;

  const auto gate_ns = baseline.find("gate_scale_batch_sample_ns");
  if (gate_ns != baseline.end()) {
    const double limit = gate_ns->second * (1.0 + tol);
    const bool time_ok = batch_ns <= limit;
    std::printf("scale-check: batch_sample_ns %s  (%.1f vs limit %.1f)\n",
                time_ok ? "ok" : "REGRESSION", batch_ns, limit);
    ok = ok && time_ok;
  } else {
    std::printf("scale-check: no gate_scale_batch_sample_ns in %s, skipped\n",
                opt.baseline.c_str());
  }
  const auto gate_speedup = baseline.find("gate_scale_min_speedup");
  if (gate_speedup != baseline.end()) {
    const bool sp_ok = speedup >= gate_speedup->second;
    std::printf("scale-check: batch_speedup %s  (%.2fx vs floor %.2fx)\n",
                sp_ok ? "ok" : "REGRESSION", speedup, gate_speedup->second);
    ok = ok && sp_ok;
  }
  if (alloc_hook_active()) {
    // Strict: a single steady-state allocation per op is a contract break,
    // not a perf wobble — no tolerance band.
    const bool alloc_ok = allocs_per_op == 0.0;
    std::printf("scale-check: allocs_per_op %s  (%.4f, gate 0)\n",
                alloc_ok ? "ok" : "REGRESSION", allocs_per_op);
    ok = ok && alloc_ok;
  }
  if (!ok) {
    std::fprintf(stderr, "mobiwlan-bench: scale gate FAILED (baseline %s)\n",
                 opt.baseline.c_str());
    return 1;
  }
  std::printf("scale-check: all gates hold\n");
  return 0;
}

}  // namespace mobiwlan::benchsuite
