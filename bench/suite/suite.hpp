// suite.hpp — the benches registered with the unified mobiwlan-bench driver.
//
// Each ported bench is a BenchDef: a name the CLI filters on and a run
// function that fans trials out through a runtime::Experiment and records
// metrics/text into a runtime::BenchReport. The standalone per-figure
// binaries forward to run_standalone() so both entry points execute the
// exact same trial code.
#pragma once

#include <string>
#include <vector>

#include "core/mobility_mode.hpp"
#include "fault/fault.hpp"
#include "fidelity/fidelity.hpp"
#include "runtime/experiment.hpp"
#include "runtime/report.hpp"

namespace mobiwlan::benchsuite {

/// One bench registered with the driver.
struct BenchDef {
  std::string name;         ///< CLI name, e.g. "table1"
  std::string description;  ///< one-line summary shown by --list
  std::function<void(runtime::Experiment&, runtime::BenchReport&)> run;
};

/// All benches ported onto the runtime runner, in registration order.
const std::vector<BenchDef>& registry();

/// One timed measurement from a perf case.
struct PerfResult {
  std::string name;
  double ns_per_op = 0.0;
  double ops_per_sec = 0.0;
  double allocs_per_op = 0.0;  ///< 0 unless the counting hook is linked
};

/// One hot-path microbenchmark run by `mobiwlan-bench --perf`.
///
/// Perf cases are timing-based by nature, so they live in a separate
/// registry: the deterministic benches above must stay byte-identical across
/// worker counts, and perf numbers never appear in their JSON.
struct PerfCaseDef {
  std::string name;         ///< key used in BENCH_channel.json and the gate
  std::string description;  ///< one-line summary shown by --list
  std::function<PerfResult(double min_time_s)> run;
};

/// The registered perf cases (bench/suite/perf.cpp), in registration order.
const std::vector<PerfCaseDef>& perf_registry();

/// Runs one registered bench with the default seed and one worker per
/// hardware thread, printing its text output — the compatibility entry
/// point for the historical per-figure binaries. Returns a process exit
/// code (1 if `name` is not registered).
int run_standalone(const std::string& name);

/// printf-style formatting into a std::string (bench text assembly).
std::string strf(const char* format, ...)
    __attribute__((format(printf, 1, 2)));

/// The banner every bench opens its text output with.
std::string banner_text(const std::string& figure,
                        const std::string& expectation);

// The registered benches (one definition per suite/*.cpp file).
BenchDef table1_bench();
BenchDef fig9_bench();
BenchDef fig13_bench();

/// One RA scheme over one channel seed (fig9.cpp) — shared with the
/// fidelity suite so the gate replays exactly the bench's trial code. The
/// fault-tolerance suite passes a non-zero `fault` plan; the default
/// (all-zero) plan is bitwise-identical to the historical signature.
double fig9_run_scheme(const std::string& scheme, std::uint64_t seed,
                       MobilityClass cls, const FaultPlan& fault = {});

/// Re-runs the core experiments (Table 1, Fig 2, Fig 4, Fig 9) through the
/// sharder and records the statistics the paper-fidelity gate asserts on.
/// Deterministic for a fixed Experiment seed at any worker count.
fidelity::FidelityReport run_fidelity(runtime::Experiment& exp);

/// `mobiwlan-bench --scale` configuration (bench/suite/scale.cpp).
struct ScaleOptions {
  std::size_t jobs = 1;       ///< pool workers for the agreement/shard passes
  std::uint64_t seed = 0;     ///< master seed (driver passes --seed)
  double min_time_s = 1.0;    ///< per timing measurement
  bool check = false;         ///< gate against the baseline's gate_scale_* keys
  std::string out = "BENCH_scale.json";
  std::string baseline = "ci/perf_baseline.json";
};

/// The AP-scale throughput bench: 64 APs x 512 clients, batched-vs-per-link
/// equivalence + throughput + thread-scaling ladder + steady-state alloc
/// count. Everything in the JSON except `timing_*` keys is byte-identical
/// across `jobs`. Returns a process exit code.
int run_scale_bench(const ScaleOptions& opt);

/// `mobiwlan-bench --fault` configuration (bench/suite/fault.cpp).
struct FaultOptions {
  std::size_t jobs = 0;       ///< pool workers (0 = one per hardware thread)
  std::uint64_t seed = 0;     ///< master seed (driver passes --seed)
  bool check = false;         ///< gate against the committed baseline
  std::string check_only;     ///< re-check this BENCH_fault.json, no re-run
  std::string out = "BENCH_fault.json";
  std::string baseline = "ci/fault_baseline.json";
};

/// The fault-tolerance / graceful-degradation bench: Table-1 classification
/// accuracy vs CSI+ToF drop rate (0-50%), Fig-9 / Fig-13 mobility-aware vs
/// stock throughput ratios under export loss, motion-aware roaming under
/// 30% ToF loss, and an exact zero-fault identity probe. Deterministic for
/// a fixed seed at any worker count (same flat-JSON contract as the
/// fidelity report). Returns a process exit code.
int run_fault_bench(const FaultOptions& opt);

/// `mobiwlan-bench --trace` configuration (bench/suite/trace.cpp).
struct TraceOptions {
  std::size_t jobs = 0;       ///< pool workers (0 = one per hardware thread)
  std::uint64_t seed = 0;     ///< master seed (driver passes --seed)
  bool check = false;         ///< gate against the committed baseline
  std::string check_only;     ///< re-check this BENCH_trace.json, no re-run
  std::string out = "BENCH_trace.json";
  std::string baseline = "ci/trace_baseline.json";
};

/// The trace record/replay determinism bench: every protocol loop recorded
/// live and replayed from the trace alone with bitwise result comparison,
/// fault-layer composition onto replay, the arXiv 2002.03905 pitfall probes
/// (timestamp skew, gap decay, missing streams), a CSV import round-trip,
/// and a timing-quarantined replay-throughput measurement. Deterministic
/// for a fixed seed at any worker count outside `"timing` lines. Returns a
/// process exit code.
int run_trace_bench(const TraceOptions& opt);

/// `mobiwlan-bench --campus` configuration (bench/suite/campus.cpp).
struct CampusOptions {
  std::size_t jobs = 0;       ///< workers per campus run (0 = one per hw thread)
  std::uint64_t seed = 0;     ///< master seed (driver passes --seed)
  bool check = false;         ///< gate against the committed baseline
  std::string check_only;     ///< re-check this BENCH_campus.json, no re-run
  std::string out = "BENCH_campus.json";
  std::string baseline = "ci/campus_baseline.json";
  /// Nonzero switches to large-campus mode: ONE {4 shards, jobs} run at
  /// this session count (no invariance matrix, no baseline gate) reporting
  /// conservation, peak RSS and throughput — the 250k ctest smoke and the
  /// 10^6-session memory-budget evidence in EXPERIMENTS.md.
  std::uint64_t sessions = 0;
  /// In large-campus mode, fail if peak RSS exceeds this many MiB (0 = off).
  double rss_budget_mb = 0.0;
};

/// The campus shard-invariance bench: one 1024-AP / 100k-session churn
/// scenario run under 1/4/16-shard partitionings (plus a 16-shard
/// single-worker cross-check), with every shard-invariant observable —
/// aggregate counters, bitwise float sums, per-session digest combiners,
/// histogram quantiles — compared exactly across the matrix and gated.
/// Deterministic for a fixed seed at any shard/worker count outside
/// `"timing` lines. Returns a process exit code.
int run_campus_bench(const CampusOptions& opt);

/// `mobiwlan-bench --loc` configuration (bench/suite/loc.cpp).
struct LocOptions {
  std::size_t jobs = 0;       ///< pool workers (0 = one per hardware thread)
  std::uint64_t seed = 0;     ///< master seed (driver passes --seed)
  bool check = false;         ///< gate against the committed baseline
  std::string check_only;     ///< re-check this BENCH_loc.json, no re-run
  std::string out = "BENCH_loc.json";
  std::string baseline = "ci/loc_baseline.json";
};

/// The CSI-fingerprint localization bench: parallel survey of a 10^4-cell
/// fingerprint database (bitwise digest + serial rebuild probe), held-out
/// walk accuracy for kNN-only and AoA/ToF-fused estimates, the
/// mobility-gated vs always-update refresh ablation on a recorded
/// observation stream, and the single-thread lookup-rate section. For a
/// fixed --seed, everything outside keys starting with "timing" is
/// byte-identical at any --jobs. Returns a process exit code.
int run_loc_bench(const LocOptions& opt);

}  // namespace mobiwlan::benchsuite
