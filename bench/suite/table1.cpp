// Table 1 on the runtime runner: the mobility-classification confusion
// matrix over randomized locations, macro heading accuracy on controlled
// radial walks, and the §9 circular-walk limitation check. Every location
// is one independent job; aggregation is in job-index order so the numbers
// are identical for any worker count.
#include <algorithm>
#include <array>
#include <string>

#include "chan/scenario.hpp"
#include "core/mobility_classifier.hpp"
#include "runtime/classifier_driver.hpp"
#include "suite/suite.hpp"
#include "util/table.hpp"

namespace mobiwlan::benchsuite {
namespace {

constexpr MobilityClass kClasses[] = {
    MobilityClass::kStatic, MobilityClass::kEnvironmental, MobilityClass::kMicro,
    MobilityClass::kMacro};

int class_index(MobilityClass c) {
  for (int i = 0; i < 4; ++i)
    if (kClasses[i] == c) return i;
  return 0;
}

/// Per-second detections of one randomized-location trial.
struct ClassCounts {
  std::array<int, 4> detected{};
  int total = 0;
};

ClassCounts classify_trial(MobilityClass cls, runtime::Trial& trial) {
  ClassCounts out;
  const Scenario s = make_scenario(cls, trial.rng);
  runtime::run_classifier(s, 40.0, 10.0, [&](double, MobilityMode mode) {
    ++out.total;
    ++out.detected[class_index(to_class(mode))];
  });
  return out;
}

struct HitCounts {
  int hits = 0;
  int total = 0;
};

}  // namespace

BenchDef table1_bench() {
  BenchDef def;
  def.name = "table1";
  def.description =
      "mobility classification accuracy (confusion matrix + macro heading)";
  def.run = [](runtime::Experiment& exp, runtime::BenchReport& report) {
    report.text += banner_text(
        "Table 1 — mobility classification accuracy",
        "diagonal > 92% everywhere (paper: static 97 / env 95 / "
        "micro 96 / macro 93)");

    const int trials = 30;  // "locations" per class
    report.add_metadata("trials_per_class", std::to_string(trials));
    report.add_metadata("trial_duration_s", "40");
    report.add_metadata("warmup_s", "10");

    TablePrinter t("confusion matrix (rows = ground truth)");
    t.set_header({"truth \\ detected", "static", "environmental", "micro",
                  "macro"});
    for (const MobilityClass cls : kClasses) {
      const auto rows = exp.map<ClassCounts>(
          static_cast<std::size_t>(trials),
          [cls](runtime::Trial& trial) { return classify_trial(cls, trial); });
      ClassCounts sum;
      for (const ClassCounts& r : rows) {
        sum.total += r.total;
        for (int i = 0; i < 4; ++i) sum.detected[i] += r.detected[i];
      }
      std::vector<std::string> cells{std::string(to_string(cls))};
      for (const MobilityClass det : kClasses) {
        const double frac =
            static_cast<double>(sum.detected[class_index(det)]) /
            std::max(1, sum.total);
        report.add_metric(strf("confusion.%s.%s",
                               std::string(to_string(cls)).c_str(),
                               std::string(to_string(det)).c_str()),
                          frac);
        cells.push_back(TablePrinter::pct(frac));
      }
      t.add_row(cells);
    }
    report.text += t.render();

    // Heading accuracy on controlled toward/away walks (§2.4).
    const auto heading = exp.map<HitCounts>(16, [](runtime::Trial& trial) {
      const bool toward = trial.index % 2 == 0;
      HitCounts out;
      const Scenario s =
          make_radial_scenario(toward, toward ? 30.0 : 8.0, trial.rng);
      runtime::run_classifier(s, 18.0, 8.0, [&](double, MobilityMode mode) {
        if (!is_macro(mode)) return;
        ++out.total;
        const MobilityMode want =
            toward ? MobilityMode::kMacroToward : MobilityMode::kMacroAway;
        if (mode == want) ++out.hits;
      });
      return out;
    });
    HitCounts h;
    for (const HitCounts& r : heading) {
      h.hits += r.hits;
      h.total += r.total;
    }
    const double heading_acc =
        static_cast<double>(h.hits) / std::max(1, h.total);
    report.add_metric("heading_accuracy", heading_acc);
    report.text += strf("\nHeading (toward vs away) accuracy on radial walks: "
                        "%.1f%% (%d/%d classified-macro seconds)\n",
                        100.0 * heading_acc, h.hits, h.total);

    // §9 limitation: a circular walk around the AP must classify as micro.
    const auto circular = exp.map<HitCounts>(6, [](runtime::Trial& trial) {
      HitCounts out;
      const Scenario s = make_circular_scenario(
          10.0 + static_cast<double>(trial.index), trial.rng);
      runtime::run_classifier(s, 30.0, 10.0, [&](double, MobilityMode mode) {
        ++out.total;
        if (mode == MobilityMode::kMicro) ++out.hits;
      });
      return out;
    });
    HitCounts c;
    for (const HitCounts& r : circular) {
      c.hits += r.hits;
      c.total += r.total;
    }
    const double circular_micro =
        static_cast<double>(c.hits) / std::max(1, c.total);
    report.add_metric("circular_classified_micro", circular_micro);
    report.text += strf("Limitation check (§9): circular walk classified "
                        "micro %.1f%% of the time (paper predicts "
                        "misclassification as micro)\n",
                        100.0 * circular_micro);
  };
  return def;
}

}  // namespace mobiwlan::benchsuite
