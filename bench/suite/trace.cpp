// Trace record/replay suite (`mobiwlan-bench --trace`): the
// replay-determinism gate. Every protocol loop is run live through a
// RecordingSource tee, then re-run from the recorded trace alone, and the
// two runs must agree bit for bit — classifier decisions, protocol-loop
// statistics, association timelines. Any mismatch count above zero means
// the trace subsystem changed what a protocol observed.
//
//   * Classifier replay: 4 mobility classes x 2 seeds, per-second decisions
//     compared exactly (including withheld/stale decisions).
//   * Loop replay: link / latency / roaming / overall, each recorded live
//     (including runs with a 30% export-drop FaultPlan and an rssi_only run,
//     whose absence records must replay their exact degradation pattern) and
//     replayed in strict mode.
//   * Fault composition: a clean recording replayed through a FaultedSource
//     in relaxed mode — drops skip recorded reads (skipped > 0) and the
//     composed replay is itself deterministic.
//   * arXiv 2002.03905 pitfall probes: timestamp skew is detected (strict
//     replay throws), recording gaps decay the classifier to "unknown"
//     instead of being interpolated, and a trace lacking a required stream
//     is refused up front.
//   * A CSV import round-trip through trace::import_csv.
//
// Metrics land in a fidelity::FidelityReport gated against
// ci/trace_baseline.json: for a fixed --seed the report is byte-identical
// at any --jobs outside lines matching `"timing` (the replay-throughput
// probe is timing-based and quarantined under that prefix).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "chan/scenario.hpp"
#include "core/mobility_classifier.hpp"
#include "fidelity/fidelity.hpp"
#include "mac/atheros_ra.hpp"
#include "mac/latency_sim.hpp"
#include "mac/link_sim.hpp"
#include "net/deployment.hpp"
#include "net/deployment_source.hpp"
#include "net/roaming.hpp"
#include "runtime/classifier_driver.hpp"
#include "runtime/thread_pool.hpp"
#include "sim/overall_sim.hpp"
#include "suite/suite.hpp"
#include "trace/import.hpp"
#include "trace/source.hpp"
#include "trace/trace_source.hpp"
#include "util/alloc_count.hpp"
#include "util/flatjson.hpp"

namespace mobiwlan::benchsuite {
namespace {

using fidelity::FidelityReport;

constexpr MobilityClass kClasses[] = {
    MobilityClass::kStatic, MobilityClass::kEnvironmental, MobilityClass::kMicro,
    MobilityClass::kMacro};

/// Same salt as the fault suite: fault substreams decorrelated from the
/// channel draws sharing a scenario seed.
constexpr std::uint64_t kTraceFaultSalt = 0xFA17;

FaultPlan trace_drop_plan(double drop, std::uint64_t scenario_seed) {
  FaultPlan plan;
  plan.csi.drop_prob = drop;
  plan.tof.drop_prob = drop;
  plan.feedback.drop_prob = drop;
  plan.seed = Rng(scenario_seed).stream(kTraceFaultSalt).seed();
  return plan;
}

/// Scratch trace path unique per probe/trial (trials run concurrently in one
/// process); removed after each probe.
std::string tmp_path(const char* probe, std::size_t index) {
  return "BENCH_trace_tmp_" + std::string(probe) + "_" + std::to_string(index) +
         ".mwtr";
}

struct TmpTrace {
  explicit TmpTrace(std::string p) : path(std::move(p)) {}
  ~TmpTrace() { std::remove(path.c_str()); }
  std::string path;
};

int count_if_differs(bool differs) { return differs ? 1 : 0; }

// ---- classifier replay ----------------------------------------------------

using DecisionLog = std::vector<std::pair<double, std::optional<MobilityMode>>>;

int classifier_replay_mismatches(MobilityClass cls, std::uint64_t seed,
                                 const std::string& path) {
  TmpTrace tmp(path);
  DecisionLog live_log, replay_log;
  {
    Rng rng(seed);
    Scenario s = make_scenario(cls, rng);
    trace::LiveChannelSource live(*s.channel);
    trace::TraceWriter writer(
        path, trace::RecordingSource::header_for(live, ChannelConfig{}));
    trace::RecordingSource rec(live, writer);
    runtime::run_classifier_from_source(
        rec, 0, 30.0, 10.0, [&](double t, std::optional<MobilityMode> m) {
          live_log.emplace_back(t, m);
        });
    writer.close();
  }
  {
    trace::TraceSource replay(path);  // strict
    runtime::run_classifier_from_source(
        replay, 0, 30.0, 10.0, [&](double t, std::optional<MobilityMode> m) {
          replay_log.emplace_back(t, m);
        });
  }
  if (live_log.size() != replay_log.size()) return 1;
  int mismatches = 0;
  for (std::size_t i = 0; i < live_log.size(); ++i)
    mismatches += count_if_differs(live_log[i] != replay_log[i]);
  return mismatches;
}

void trace_classifier_replay(runtime::Experiment& exp, FidelityReport& rep) {
  const std::size_t n = 4 * 2;  // classes x seeds
  const std::vector<std::uint64_t> seeds = exp.reserve_seeds(n);
  const auto rows = exp.map<int>(n, [&seeds](runtime::Trial& trial) {
    const MobilityClass cls = kClasses[trial.index / 2];
    return classifier_replay_mismatches(
        cls, seeds[trial.index], tmp_path("clf", trial.index));
  });
  int total = 0;
  for (const int m : rows) total += m;
  rep.add("trace.replay.classifier_mismatches", total);
}

// ---- link / latency replay ------------------------------------------------

int link_result_mismatches(const LinkSimResult& a, const LinkSimResult& b) {
  int m = 0;
  m += count_if_differs(a.goodput_mbps != b.goodput_mbps);
  m += count_if_differs(a.mean_per != b.mean_per);
  m += count_if_differs(a.frames != b.frames);
  m += count_if_differs(a.mpdus_sent != b.mpdus_sent);
  m += count_if_differs(a.mpdus_lost != b.mpdus_lost);
  m += count_if_differs(a.full_loss_events != b.full_loss_events);
  m += count_if_differs(a.mcs_series != b.mcs_series);
  m += count_if_differs(a.mode_series != b.mode_series);
  return m;
}

/// Records one link-sim run through `plan` (composed as a FaultedSource so
/// absence records capture the degradation pattern), replays it strict, and
/// compares every result field bitwise.
int link_replay_mismatches(std::uint64_t seed, const FaultPlan& plan,
                           const std::string& path) {
  TmpTrace tmp(path);
  LinkSimConfig cfg;
  cfg.duration_s = 5.0;
  cfg.provide_sensor_hint = true;
  cfg.provide_phy_feedback = true;
  LinkSimResult live_r, replay_r;
  MobilityClass truth;
  {
    Rng rng(seed);
    Scenario s = make_scenario(MobilityClass::kMacro, rng);
    truth = s.truth;
    trace::LiveChannelSource live(*s.channel);
    trace::FaultedSource faulted(live, plan);
    trace::TraceWriter writer(
        path, trace::RecordingSource::header_for(faulted, ChannelConfig{}));
    trace::RecordingSource rec(faulted, writer);
    AtherosRa ra = make_mobility_aware_atheros_ra();
    Rng sim_rng(seed + 1);
    live_r = simulate_link(rec, ra, cfg, sim_rng, truth);
    writer.close();
  }
  {
    trace::TraceSource replay(path);  // strict
    AtherosRa ra = make_mobility_aware_atheros_ra();
    Rng sim_rng(seed + 1);
    replay_r = simulate_link(replay, ra, cfg, sim_rng, truth);
  }
  return link_result_mismatches(live_r, replay_r);
}

int latency_replay_mismatches(std::uint64_t seed, const FaultPlan& plan,
                              const std::string& path) {
  TmpTrace tmp(path);
  LatencySimConfig cfg;
  cfg.duration_s = 5.0;
  LatencySimResult live_r, replay_r;
  {
    Rng rng(seed);
    Scenario s = make_scenario(MobilityClass::kMicro, rng);
    trace::LiveChannelSource live(*s.channel);
    trace::FaultedSource faulted(live, plan);
    trace::TraceWriter writer(
        path, trace::RecordingSource::header_for(faulted, ChannelConfig{}));
    trace::RecordingSource rec(faulted, writer);
    AtherosRa ra;
    Rng sim_rng(seed + 1);
    live_r = simulate_latency(rec, ra, cfg, sim_rng);
    writer.close();
  }
  {
    trace::TraceSource replay(path);  // strict
    AtherosRa ra;
    Rng sim_rng(seed + 1);
    replay_r = simulate_latency(replay, ra, cfg, sim_rng);
  }
  int m = 0;
  m += count_if_differs(live_r.delivered != replay_r.delivered);
  m += count_if_differs(live_r.dropped != replay_r.dropped);
  m += count_if_differs(live_r.offered != replay_r.offered);
  m += count_if_differs(live_r.leftover != replay_r.leftover);
  m += count_if_differs(live_r.goodput_mbps != replay_r.goodput_mbps);
  m += count_if_differs(live_r.latencies_s.size() != replay_r.latencies_s.size());
  if (!live_r.latencies_s.empty() && !replay_r.latencies_s.empty())
    m += count_if_differs(live_r.latencies_s.mean() != replay_r.latencies_s.mean());
  return m;
}

void trace_link_latency_replay(runtime::Experiment& exp, FidelityReport& rep) {
  // Trials: clean, 30% drops, rssi_only — the degraded recordings must
  // replay their exact absence pattern (strict mode, absence records).
  const std::vector<std::uint64_t> seeds = exp.reserve_seeds(3);
  const auto link_rows = exp.map<int>(3, [&seeds](runtime::Trial& trial) {
    FaultPlan plan;
    if (trial.index == 1) plan = trace_drop_plan(0.3, seeds[trial.index]);
    if (trial.index == 2) {
      plan = trace_drop_plan(0.0, seeds[trial.index]);
      plan.rssi_only = true;
    }
    return link_replay_mismatches(seeds[trial.index], plan,
                                  tmp_path("link", trial.index));
  });
  int link_total = 0;
  for (const int m : link_rows) link_total += m;
  rep.add("trace.replay.link_mismatches", link_total);

  const std::vector<std::uint64_t> lat_seeds = exp.reserve_seeds(2);
  const auto lat_rows = exp.map<int>(2, [&lat_seeds](runtime::Trial& trial) {
    const FaultPlan plan = trial.index == 1
                               ? trace_drop_plan(0.3, lat_seeds[trial.index])
                               : FaultPlan{};
    return latency_replay_mismatches(lat_seeds[trial.index], plan,
                                     tmp_path("lat", trial.index));
  });
  int lat_total = 0;
  for (const int m : lat_rows) lat_total += m;
  rep.add("trace.replay.latency_mismatches", lat_total);
}

// ---- roaming / overall replay ---------------------------------------------

int roam_replay_mismatches(std::uint64_t seed, RoamingScheme scheme,
                           const FaultPlan& plan, const std::string& path) {
  TmpTrace tmp(path);
  RoamingConfig cfg;
  cfg.duration_s = 30.0;
  RoamingResult live_r, replay_r;
  MobilityClass cls;
  {
    Rng rng(seed);
    auto traj = WlanDeployment::corridor_walk(rng);
    WlanDeployment wlan(WlanDeployment::corridor_layout(), traj,
                        ChannelConfig{}, rng);
    cls = wlan.client().mobility_class();
    LiveDeploymentSource live(wlan, LiveDeploymentSource::CsiPath::kPerLink);
    trace::FaultedSource faulted(live, plan);
    trace::TraceWriter writer(
        path, trace::RecordingSource::header_for(faulted, ChannelConfig{}));
    trace::RecordingSource rec(faulted, writer);
    Rng sim_rng(seed + 1);
    live_r = simulate_roaming(rec, scheme, cfg, sim_rng, cls);
    writer.close();
  }
  {
    trace::TraceSource replay(path);  // strict
    Rng sim_rng(seed + 1);
    replay_r = simulate_roaming(replay, scheme, cfg, sim_rng, cls);
  }
  int m = 0;
  m += count_if_differs(live_r.mean_throughput_mbps != replay_r.mean_throughput_mbps);
  m += count_if_differs(live_r.handoffs != replay_r.handoffs);
  m += count_if_differs(live_r.scans != replay_r.scans);
  m += count_if_differs(live_r.outage_s != replay_r.outage_s);
  m += count_if_differs(live_r.associations != replay_r.associations);
  return m;
}

int overall_replay_mismatches(std::uint64_t seed, bool aware, double drop,
                              const std::string& path) {
  TmpTrace tmp(path);
  OverallSimConfig cfg;
  cfg.duration_s = 8.0;
  cfg.mobility_aware = aware;
  cfg.fault = trace_drop_plan(drop, seed);
  OverallSimResult live_r, replay_r;
  {
    Rng rng(seed);
    auto traj = WlanDeployment::corridor_walk(rng);
    WlanDeployment wlan(WlanDeployment::corridor_layout(), traj,
                        ChannelConfig{}, rng);
    LiveDeploymentSource live(wlan, LiveDeploymentSource::CsiPath::kBatched);
    trace::TraceWriter writer(
        path, trace::RecordingSource::header_for(live, ChannelConfig{}));
    trace::RecordingSource rec(live, writer);
    Rng sim_rng(seed + 1);
    live_r = simulate_overall(rec, cfg, sim_rng);
    writer.close();
  }
  {
    // The overall loop regenerates its per-AP fault gating from cfg.fault, so
    // a strict replay issues exactly the recorded query sequence.
    trace::TraceSource replay(path);
    Rng sim_rng(seed + 1);
    replay_r = simulate_overall(replay, cfg, sim_rng);
  }
  int m = 0;
  m += count_if_differs(live_r.throughput_mbps != replay_r.throughput_mbps);
  m += count_if_differs(live_r.handoffs != replay_r.handoffs);
  m += count_if_differs(live_r.outage_s != replay_r.outage_s);
  m += count_if_differs(live_r.associations != replay_r.associations);
  return m;
}

void trace_deployment_replay(runtime::Experiment& exp, FidelityReport& rep) {
  const std::vector<std::uint64_t> roam_seeds = exp.reserve_seeds(3);
  const auto roam_rows = exp.map<int>(3, [&roam_seeds](runtime::Trial& trial) {
    const RoamingScheme schemes[] = {RoamingScheme::kDefault,
                                     RoamingScheme::kSensorHint,
                                     RoamingScheme::kMotionAware};
    const FaultPlan plan = trial.index == 2
                               ? trace_drop_plan(0.3, roam_seeds[trial.index])
                               : FaultPlan{};
    return roam_replay_mismatches(roam_seeds[trial.index],
                                  schemes[trial.index], plan,
                                  tmp_path("roam", trial.index));
  });
  int roam_total = 0;
  for (const int m : roam_rows) roam_total += m;
  rep.add("trace.replay.roam_mismatches", roam_total);

  const std::vector<std::uint64_t> ov_seeds = exp.reserve_seeds(2);
  const auto ov_rows = exp.map<int>(2, [&ov_seeds](runtime::Trial& trial) {
    const bool aware = trial.index == 0;
    const double drop = trial.index == 1 ? 0.3 : 0.0;
    return overall_replay_mismatches(ov_seeds[trial.index], aware, drop,
                                     tmp_path("overall", trial.index));
  });
  int ov_total = 0;
  for (const int m : ov_rows) ov_total += m;
  rep.add("trace.replay.overall_mismatches", ov_total);
}

// ---- fault layer composed onto replay -------------------------------------

/// Records a clean link run, then replays it twice through a 30%-drop
/// FaultedSource in relaxed mode. The composed replay must (a) skip recorded
/// reads (the drops land on the replayed stream), and (b) be deterministic.
void trace_fault_composition(runtime::Experiment& exp, FidelityReport& rep) {
  const std::vector<std::uint64_t> seeds = exp.reserve_seeds(1);
  const std::uint64_t seed = seeds[0];
  const std::string path = tmp_path("compose", 0);
  TmpTrace tmp(path);

  LinkSimConfig cfg;
  cfg.duration_s = 5.0;
  {
    Rng rng(seed);
    Scenario s = make_scenario(MobilityClass::kMacro, rng);
    trace::LiveChannelSource live(*s.channel);
    trace::TraceWriter writer(
        path, trace::RecordingSource::header_for(live, ChannelConfig{}));
    trace::RecordingSource rec(live, writer);
    AtherosRa ra = make_mobility_aware_atheros_ra();
    Rng sim_rng(seed + 1);
    (void)simulate_link(rec, ra, cfg, sim_rng, MobilityClass::kMacro);
    writer.close();
  }

  const FaultPlan plan = trace_drop_plan(0.3, seed);
  auto composed_run = [&](std::uint64_t* skipped_out) {
    // Relaxed: replay-time drops make later queries pass over recorded reads
    // (counted as skipped), and the diverged frame cadence is served from the
    // previous ground-truth record while it is younger than one frame.
    trace::TraceSource::Config tc;
    tc.strict = false;
    tc.max_age_s = 0.05;
    trace::TraceSource replay(path, tc);
    trace::FaultedSource faulted(replay, plan);
    AtherosRa ra = make_mobility_aware_atheros_ra();
    Rng sim_rng(seed + 1);
    const LinkSimResult r =
        simulate_link(faulted, ra, cfg, sim_rng, MobilityClass::kMacro);
    if (skipped_out) *skipped_out = replay.counters().skipped;
    return r;
  };
  std::uint64_t skipped = 0;
  const LinkSimResult a = composed_run(&skipped);
  const LinkSimResult b = composed_run(nullptr);
  rep.add("trace.compose.fault_mismatches", link_result_mismatches(a, b));
  rep.add("trace.compose.fault_skipped_positive", skipped > 0 ? 1.0 : 0.0);
  (void)exp;
}

// ---- pitfall probes (arXiv 2002.03905) ------------------------------------

void trace_pitfalls(runtime::Experiment& exp, FidelityReport& rep) {
  // Timestamp skew: a strict replay whose query times do not align with the
  // log must throw, never silently serve the nearest record.
  {
    const std::string path = tmp_path("skew", 0);
    TmpTrace tmp(path);
    trace::TraceHeader h;
    h.stream_mask = trace::stream_bit(trace::StreamKind::kRssi);
    h.n_tx = 1;
    h.n_rx = 1;
    h.n_sc = 1;
    {
      trace::TraceWriter writer(path, h);
      writer.put_scalar(trace::StreamKind::kRssi, 0, 0.5, -60.0);
      writer.close();
    }
    int detected = 0;
    try {
      trace::TraceSource replay(path);
      (void)replay.rssi_dbm(0, 0.75);  // past the record: skips it
    } catch (const trace::TraceError& e) {
      if (e.code() == trace::TraceError::Code::kTimestampSkew) ++detected;
    }
    try {
      trace::TraceSource replay(path);
      (void)replay.rssi_dbm(0, 0.25);  // before the record: no match
    } catch (const trace::TraceError& e) {
      if (e.code() == trace::TraceError::Code::kTimestampSkew) ++detected;
    }
    rep.add("trace.pitfall.skew_detected", detected == 2 ? 1.0 : 0.0);
  }

  // Gap handling: replaying past the end of a recording must decay the
  // classifier to "unknown" (hold-then-decay), never interpolate.
  {
    const std::vector<std::uint64_t> seeds = exp.reserve_seeds(1);
    const std::string path = tmp_path("gap", 0);
    TmpTrace tmp(path);
    {
      Rng rng(seeds[0]);
      Scenario s = make_scenario(MobilityClass::kMacro, rng);
      trace::LiveChannelSource live(*s.channel);
      trace::TraceWriter writer(
          path, trace::RecordingSource::header_for(live, ChannelConfig{}));
      trace::RecordingSource rec(live, writer);
      runtime::run_classifier_from_source(rec, 0, 20.0, 10.0,
                                          [](double, std::optional<MobilityMode>) {});
      writer.close();
    }
    bool engaged_in_coverage = false;
    bool engaged_in_gap = false;
    trace::TraceSource::Config tc;
    tc.strict = false;
    trace::TraceSource replay(path, tc);
    runtime::run_classifier_from_source(
        replay, 0, 40.0, 10.0, [&](double t, std::optional<MobilityMode> m) {
          if (t < 20.0 && m) engaged_in_coverage = true;
          if (t >= 25.0 && m) engaged_in_gap = true;
        });
    rep.add("trace.pitfall.gap_decayed",
            engaged_in_coverage && !engaged_in_gap ? 1.0 : 0.0);
  }

  // Missing feedback: a consumer must be refused up front when the trace
  // lacks a stream it requires, instead of replaying silent absence.
  {
    const std::vector<std::uint64_t> seeds = exp.reserve_seeds(1);
    const std::string path = tmp_path("missing", 0);
    TmpTrace tmp(path);
    {
      Rng rng(seeds[0]);
      Scenario s = make_scenario(MobilityClass::kStatic, rng);
      trace::LiveChannelSource live(*s.channel);
      trace::TraceWriter writer(
          path, trace::RecordingSource::header_for(live, ChannelConfig{}));
      trace::RecordingSource rec(live, writer);
      runtime::run_classifier_from_source(rec, 0, 12.0, 10.0,
                                          [](double, std::optional<MobilityMode>) {});
      writer.close();
    }
    bool refused = false;
    try {
      trace::TraceSource::Config tc;
      tc.ignore_mask = trace::stream_bit(trace::StreamKind::kTof);
      trace::TraceSource replay(path, tc);
      runtime::run_classifier_from_source(replay, 0, 12.0, 10.0,
                                          [](double, std::optional<MobilityMode>) {});
    } catch (const trace::TraceError& e) {
      refused = e.code() == trace::TraceError::Code::kMissingStream;
    }
    rep.add("trace.pitfall.missing_stream_refused", refused ? 1.0 : 0.0);
  }
}

// ---- CSV import round-trip ------------------------------------------------

void trace_import_probe(runtime::Experiment& exp, FidelityReport& rep) {
  (void)exp;
  const std::string csv = "BENCH_trace_tmp_import.csv";
  const std::string out = tmp_path("import", 0);
  TmpTrace tmp_csv(csv), tmp_out(out);
  {
    std::ofstream f(csv, std::ios::binary);
    f << "mwtr-csv,2\n"
         "streams,rssi,tof\n"
         "units,1\n"
         "geometry,1,1,1\n"
         "carrier_hz,5.24e9\n"
         "period_s,0.5\n"
         "data\n"
         "rssi,0,0.0,-55.25\n"
         "tof,0,0.0,412.5\n"
         "rssi,0,0.5,-56.5\n"
         "tof,0,0.5,413.75\n";
  }
  bool ok = false;
  try {
    const std::uint64_t n = trace::import_csv(csv, out);
    trace::TraceSource replay(out);
    const auto r0 = replay.rssi_dbm(0, 0.0);
    const auto t0 = replay.tof_cycles(0, 0.0);
    const auto r1 = replay.rssi_dbm(0, 0.5);
    const auto t1 = replay.tof_cycles(0, 0.5);
    ok = n == 4 && r0 && *r0 == -55.25 && t0 && *t0 == 412.5 && r1 &&
         *r1 == -56.5 && t1 && *t1 == 413.75 &&
         !replay.has(trace::StreamKind::kCsi);
  } catch (const trace::TraceError&) {
    ok = false;
  }
  rep.add("trace.import.csv_roundtrip_ok", ok ? 1.0 : 0.0);
}

// ---- replay throughput (timing-quarantined) --------------------------------

/// Streams one recorded link trace back through TraceReader and reports
/// records/s and allocs/record. Keys carry the `timing.` prefix so the
/// determinism diff (`grep -v '"timing'`) strips them alongside the wall
/// clock; nothing here is gated.
void trace_throughput_probe(runtime::Experiment& exp, FidelityReport& rep) {
  const std::vector<std::uint64_t> seeds = exp.reserve_seeds(1);
  const std::string path = tmp_path("perf", 0);
  TmpTrace tmp(path);
  LinkSimConfig cfg;
  cfg.duration_s = 5.0;
  {
    Rng rng(seeds[0]);
    Scenario s = make_scenario(MobilityClass::kMacro, rng);
    trace::LiveChannelSource live(*s.channel);
    trace::TraceWriter writer(
        path, trace::RecordingSource::header_for(live, ChannelConfig{}));
    trace::RecordingSource rec(live, writer);
    AtherosRa ra;
    Rng sim_rng(seeds[0] + 1);
    (void)simulate_link(rec, ra, cfg, sim_rng, MobilityClass::kMacro);
    writer.close();
  }
  std::uint64_t records = 0;
  const std::uint64_t allocs0 = alloc_count();
  const auto start = std::chrono::steady_clock::now();
  {
    trace::TraceReader reader(path);
    trace::TraceRecord record;
    while (reader.next(record)) ++records;
  }
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  const std::uint64_t allocs = alloc_count() - allocs0;
  if (records > 0 && wall_s > 0.0) {
    rep.add("timing.replay_records_per_s",
            static_cast<double>(records) / wall_s);
    rep.add("timing.replay_allocs_per_record",
            static_cast<double>(allocs) / static_cast<double>(records));
  }
  std::printf("  replay throughput: %llu records in %.3fs (%.0f records/s, "
              "%.3f allocs/record%s)\n",
              static_cast<unsigned long long>(records), wall_s,
              static_cast<double>(records) / wall_s,
              static_cast<double>(allocs) / static_cast<double>(records),
              alloc_hook_active() ? "" : ", hook not linked");
}

FidelityReport run_trace_report(runtime::Experiment& exp) {
  FidelityReport rep;
  trace_classifier_replay(exp, rep);
  trace_link_latency_replay(exp, rep);
  trace_deployment_replay(exp, rep);
  trace_fault_composition(exp, rep);
  trace_pitfalls(exp, rep);
  trace_import_probe(exp, rep);
  trace_throughput_probe(exp, rep);
  return rep;
}

int check_report(const FidelityReport& rep, std::uint64_t run_seed,
                 const std::string& baseline_path,
                 fidelity::CheckResult& check) {
  const auto baseline = load_flat_json(baseline_path);
  if (baseline.empty()) {
    std::fprintf(stderr, "mobiwlan-bench: no trace baseline at %s\n",
                 baseline_path.c_str());
    return 1;
  }
  check = rep.check(baseline, run_seed);
  std::printf("\ntrace-check against %s (seed %llu):\n", baseline_path.c_str(),
              static_cast<unsigned long long>(run_seed));
  std::fputs(fidelity::render_check(check).c_str(), stdout);
  if (!check.pass()) {
    std::fprintf(stderr,
                 "mobiwlan-bench: replay-determinism gate FAILED (baseline %s)\n",
                 baseline_path.c_str());
    return 1;
  }
  std::printf("trace-check: all bounds hold\n");
  return 0;
}

}  // namespace

int run_trace_bench(const TraceOptions& opt) {
  if (!opt.check_only.empty()) {
    const auto doc = load_flat_json(opt.check_only);
    if (doc.empty()) {
      std::fprintf(stderr, "mobiwlan-bench: cannot read trace report %s\n",
                   opt.check_only.c_str());
      return 1;
    }
    std::uint64_t seed = 0;
    const FidelityReport rep = fidelity::report_from_flat_json(doc, seed);
    fidelity::CheckResult check;
    return check_report(rep, seed, opt.baseline, check);
  }

  std::size_t jobs = opt.jobs;
  if (jobs == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    jobs = hw ? hw : 1;
  }
  runtime::ThreadPool pool(jobs);
  runtime::BenchReport bench_report;
  bench_report.name = "trace";
  runtime::Experiment exp(pool, opt.seed, &bench_report);

  std::printf("trace: record/replay determinism — classifier / link / latency "
              "/ roaming / overall + pitfalls (seed %llu, %zu workers)\n",
              static_cast<unsigned long long>(opt.seed), pool.size());
  const auto start = std::chrono::steady_clock::now();
  const FidelityReport rep = run_trace_report(exp);
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  for (const auto& [key, v] : rep.metrics())
    std::printf("  %-44s %.6g\n", key.c_str(), v);
  std::printf("[trace: %zu jobs on %zu workers, %.2fs wall]\n",
              bench_report.jobs.size(), pool.size(), wall_s);

  fidelity::CheckResult check;
  int rc = 0;
  const fidelity::CheckResult* check_ptr = nullptr;
  if (opt.check) {
    rc = check_report(rep, opt.seed, opt.baseline, check);
    check_ptr = &check;
  }

  std::ofstream out(opt.out, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "mobiwlan-bench: cannot write %s\n", opt.out.c_str());
    return 1;
  }
  out << rep.to_json(opt.seed, wall_s, check_ptr);
  out.close();
  std::printf("wrote %s (%zu metrics)\n", opt.out.c_str(), rep.metrics().size());
  return rc;
}

}  // namespace mobiwlan::benchsuite
