file(REMOVE_RECURSE
  "../bench/bench_ablation_aoa"
  "../bench/bench_ablation_aoa.pdb"
  "CMakeFiles/bench_ablation_aoa.dir/bench_ablation_aoa.cpp.o"
  "CMakeFiles/bench_ablation_aoa.dir/bench_ablation_aoa.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_aoa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
