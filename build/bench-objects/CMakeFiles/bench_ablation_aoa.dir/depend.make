# Empty dependencies file for bench_ablation_aoa.
# This may be replaced when dependencies are built.
