file(REMOVE_RECURSE
  "../bench/bench_ablation_roaming"
  "../bench/bench_ablation_roaming.pdb"
  "CMakeFiles/bench_ablation_roaming.dir/bench_ablation_roaming.cpp.o"
  "CMakeFiles/bench_ablation_roaming.dir/bench_ablation_roaming.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_roaming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
