# Empty dependencies file for bench_ablation_roaming.
# This may be replaced when dependencies are built.
