file(REMOVE_RECURSE
  "../bench/bench_ablation_substrate"
  "../bench/bench_ablation_substrate.pdb"
  "CMakeFiles/bench_ablation_substrate.dir/bench_ablation_substrate.cpp.o"
  "CMakeFiles/bench_ablation_substrate.dir/bench_ablation_substrate.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_substrate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
