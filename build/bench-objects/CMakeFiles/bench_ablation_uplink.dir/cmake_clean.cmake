file(REMOVE_RECURSE
  "../bench/bench_ablation_uplink"
  "../bench/bench_ablation_uplink.pdb"
  "CMakeFiles/bench_ablation_uplink.dir/bench_ablation_uplink.cpp.o"
  "CMakeFiles/bench_ablation_uplink.dir/bench_ablation_uplink.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_uplink.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
