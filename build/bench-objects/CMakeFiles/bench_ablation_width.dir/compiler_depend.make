# Empty compiler generated dependencies file for bench_ablation_width.
# This may be replaced when dependencies are built.
