file(REMOVE_RECURSE
  "../bench/bench_fig11_beamforming"
  "../bench/bench_fig11_beamforming.pdb"
  "CMakeFiles/bench_fig11_beamforming.dir/bench_fig11_beamforming.cpp.o"
  "CMakeFiles/bench_fig11_beamforming.dir/bench_fig11_beamforming.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_beamforming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
