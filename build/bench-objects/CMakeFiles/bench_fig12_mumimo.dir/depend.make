# Empty dependencies file for bench_fig12_mumimo.
# This may be replaced when dependencies are built.
