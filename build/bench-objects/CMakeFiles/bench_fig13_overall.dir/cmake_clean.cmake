file(REMOVE_RECURSE
  "../bench/bench_fig13_overall"
  "../bench/bench_fig13_overall.pdb"
  "CMakeFiles/bench_fig13_overall.dir/bench_fig13_overall.cpp.o"
  "CMakeFiles/bench_fig13_overall.dir/bench_fig13_overall.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_overall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
