file(REMOVE_RECURSE
  "../bench/bench_fig1_rssi"
  "../bench/bench_fig1_rssi.pdb"
  "CMakeFiles/bench_fig1_rssi.dir/bench_fig1_rssi.cpp.o"
  "CMakeFiles/bench_fig1_rssi.dir/bench_fig1_rssi.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_rssi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
