file(REMOVE_RECURSE
  "../bench/bench_fig2_csi_similarity"
  "../bench/bench_fig2_csi_similarity.pdb"
  "CMakeFiles/bench_fig2_csi_similarity.dir/bench_fig2_csi_similarity.cpp.o"
  "CMakeFiles/bench_fig2_csi_similarity.dir/bench_fig2_csi_similarity.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_csi_similarity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
