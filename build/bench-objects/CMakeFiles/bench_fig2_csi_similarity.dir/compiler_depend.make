# Empty compiler generated dependencies file for bench_fig2_csi_similarity.
# This may be replaced when dependencies are built.
