file(REMOVE_RECURSE
  "../bench/bench_fig4_tof"
  "../bench/bench_fig4_tof.pdb"
  "CMakeFiles/bench_fig4_tof.dir/bench_fig4_tof.cpp.o"
  "CMakeFiles/bench_fig4_tof.dir/bench_fig4_tof.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_tof.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
