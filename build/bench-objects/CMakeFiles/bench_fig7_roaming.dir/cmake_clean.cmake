file(REMOVE_RECURSE
  "../bench/bench_fig7_roaming"
  "../bench/bench_fig7_roaming.pdb"
  "CMakeFiles/bench_fig7_roaming.dir/bench_fig7_roaming.cpp.o"
  "CMakeFiles/bench_fig7_roaming.dir/bench_fig7_roaming.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_roaming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
