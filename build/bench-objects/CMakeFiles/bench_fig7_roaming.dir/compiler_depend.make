# Empty compiler generated dependencies file for bench_fig7_roaming.
# This may be replaced when dependencies are built.
