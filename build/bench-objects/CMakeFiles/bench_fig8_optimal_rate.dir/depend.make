# Empty dependencies file for bench_fig8_optimal_rate.
# This may be replaced when dependencies are built.
