file(REMOVE_RECURSE
  "../bench/bench_fig9_rate_adaptation"
  "../bench/bench_fig9_rate_adaptation.pdb"
  "CMakeFiles/bench_fig9_rate_adaptation.dir/bench_fig9_rate_adaptation.cpp.o"
  "CMakeFiles/bench_fig9_rate_adaptation.dir/bench_fig9_rate_adaptation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_rate_adaptation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
