file(REMOVE_RECURSE
  "../bench/bench_table1_classification"
  "../bench/bench_table1_classification.pdb"
  "CMakeFiles/bench_table1_classification.dir/bench_table1_classification.cpp.o"
  "CMakeFiles/bench_table1_classification.dir/bench_table1_classification.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_classification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
