file(REMOVE_RECURSE
  "CMakeFiles/floor_sim.dir/floor_sim.cpp.o"
  "CMakeFiles/floor_sim.dir/floor_sim.cpp.o.d"
  "floor_sim"
  "floor_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/floor_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
