# Empty dependencies file for floor_sim.
# This may be replaced when dependencies are built.
