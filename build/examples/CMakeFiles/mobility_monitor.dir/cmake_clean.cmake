file(REMOVE_RECURSE
  "CMakeFiles/mobility_monitor.dir/mobility_monitor.cpp.o"
  "CMakeFiles/mobility_monitor.dir/mobility_monitor.cpp.o.d"
  "mobility_monitor"
  "mobility_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mobility_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
