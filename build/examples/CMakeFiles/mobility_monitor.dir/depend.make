# Empty dependencies file for mobility_monitor.
# This may be replaced when dependencies are built.
