file(REMOVE_RECURSE
  "CMakeFiles/roaming_demo.dir/roaming_demo.cpp.o"
  "CMakeFiles/roaming_demo.dir/roaming_demo.cpp.o.d"
  "roaming_demo"
  "roaming_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/roaming_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
