# Empty dependencies file for roaming_demo.
# This may be replaced when dependencies are built.
