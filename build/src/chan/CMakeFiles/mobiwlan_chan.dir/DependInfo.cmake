
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/chan/channel.cpp" "src/chan/CMakeFiles/mobiwlan_chan.dir/channel.cpp.o" "gcc" "src/chan/CMakeFiles/mobiwlan_chan.dir/channel.cpp.o.d"
  "/root/repo/src/chan/csi_trace.cpp" "src/chan/CMakeFiles/mobiwlan_chan.dir/csi_trace.cpp.o" "gcc" "src/chan/CMakeFiles/mobiwlan_chan.dir/csi_trace.cpp.o.d"
  "/root/repo/src/chan/scenario.cpp" "src/chan/CMakeFiles/mobiwlan_chan.dir/scenario.cpp.o" "gcc" "src/chan/CMakeFiles/mobiwlan_chan.dir/scenario.cpp.o.d"
  "/root/repo/src/chan/trajectory.cpp" "src/chan/CMakeFiles/mobiwlan_chan.dir/trajectory.cpp.o" "gcc" "src/chan/CMakeFiles/mobiwlan_chan.dir/trajectory.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/mobiwlan_util.dir/DependInfo.cmake"
  "/root/repo/build/src/phy/CMakeFiles/mobiwlan_phy.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
