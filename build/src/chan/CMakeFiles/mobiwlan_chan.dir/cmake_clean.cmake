file(REMOVE_RECURSE
  "CMakeFiles/mobiwlan_chan.dir/channel.cpp.o"
  "CMakeFiles/mobiwlan_chan.dir/channel.cpp.o.d"
  "CMakeFiles/mobiwlan_chan.dir/csi_trace.cpp.o"
  "CMakeFiles/mobiwlan_chan.dir/csi_trace.cpp.o.d"
  "CMakeFiles/mobiwlan_chan.dir/scenario.cpp.o"
  "CMakeFiles/mobiwlan_chan.dir/scenario.cpp.o.d"
  "CMakeFiles/mobiwlan_chan.dir/trajectory.cpp.o"
  "CMakeFiles/mobiwlan_chan.dir/trajectory.cpp.o.d"
  "libmobiwlan_chan.a"
  "libmobiwlan_chan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mobiwlan_chan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
