file(REMOVE_RECURSE
  "libmobiwlan_chan.a"
)
