# Empty dependencies file for mobiwlan_chan.
# This may be replaced when dependencies are built.
