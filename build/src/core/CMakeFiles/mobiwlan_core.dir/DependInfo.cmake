
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/csi_similarity.cpp" "src/core/CMakeFiles/mobiwlan_core.dir/csi_similarity.cpp.o" "gcc" "src/core/CMakeFiles/mobiwlan_core.dir/csi_similarity.cpp.o.d"
  "/root/repo/src/core/mobility_classifier.cpp" "src/core/CMakeFiles/mobiwlan_core.dir/mobility_classifier.cpp.o" "gcc" "src/core/CMakeFiles/mobiwlan_core.dir/mobility_classifier.cpp.o.d"
  "/root/repo/src/core/tof_tracker.cpp" "src/core/CMakeFiles/mobiwlan_core.dir/tof_tracker.cpp.o" "gcc" "src/core/CMakeFiles/mobiwlan_core.dir/tof_tracker.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/mobiwlan_util.dir/DependInfo.cmake"
  "/root/repo/build/src/phy/CMakeFiles/mobiwlan_phy.dir/DependInfo.cmake"
  "/root/repo/build/src/chan/CMakeFiles/mobiwlan_chan.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
