file(REMOVE_RECURSE
  "CMakeFiles/mobiwlan_core.dir/csi_similarity.cpp.o"
  "CMakeFiles/mobiwlan_core.dir/csi_similarity.cpp.o.d"
  "CMakeFiles/mobiwlan_core.dir/mobility_classifier.cpp.o"
  "CMakeFiles/mobiwlan_core.dir/mobility_classifier.cpp.o.d"
  "CMakeFiles/mobiwlan_core.dir/tof_tracker.cpp.o"
  "CMakeFiles/mobiwlan_core.dir/tof_tracker.cpp.o.d"
  "libmobiwlan_core.a"
  "libmobiwlan_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mobiwlan_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
