file(REMOVE_RECURSE
  "libmobiwlan_core.a"
)
