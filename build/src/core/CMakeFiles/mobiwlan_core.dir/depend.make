# Empty dependencies file for mobiwlan_core.
# This may be replaced when dependencies are built.
