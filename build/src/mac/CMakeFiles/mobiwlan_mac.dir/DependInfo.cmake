
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mac/aggregation.cpp" "src/mac/CMakeFiles/mobiwlan_mac.dir/aggregation.cpp.o" "gcc" "src/mac/CMakeFiles/mobiwlan_mac.dir/aggregation.cpp.o.d"
  "/root/repo/src/mac/atheros_ra.cpp" "src/mac/CMakeFiles/mobiwlan_mac.dir/atheros_ra.cpp.o" "gcc" "src/mac/CMakeFiles/mobiwlan_mac.dir/atheros_ra.cpp.o.d"
  "/root/repo/src/mac/blockack.cpp" "src/mac/CMakeFiles/mobiwlan_mac.dir/blockack.cpp.o" "gcc" "src/mac/CMakeFiles/mobiwlan_mac.dir/blockack.cpp.o.d"
  "/root/repo/src/mac/esnr_ra.cpp" "src/mac/CMakeFiles/mobiwlan_mac.dir/esnr_ra.cpp.o" "gcc" "src/mac/CMakeFiles/mobiwlan_mac.dir/esnr_ra.cpp.o.d"
  "/root/repo/src/mac/latency_sim.cpp" "src/mac/CMakeFiles/mobiwlan_mac.dir/latency_sim.cpp.o" "gcc" "src/mac/CMakeFiles/mobiwlan_mac.dir/latency_sim.cpp.o.d"
  "/root/repo/src/mac/link_sim.cpp" "src/mac/CMakeFiles/mobiwlan_mac.dir/link_sim.cpp.o" "gcc" "src/mac/CMakeFiles/mobiwlan_mac.dir/link_sim.cpp.o.d"
  "/root/repo/src/mac/sensor_hint_ra.cpp" "src/mac/CMakeFiles/mobiwlan_mac.dir/sensor_hint_ra.cpp.o" "gcc" "src/mac/CMakeFiles/mobiwlan_mac.dir/sensor_hint_ra.cpp.o.d"
  "/root/repo/src/mac/softrate_ra.cpp" "src/mac/CMakeFiles/mobiwlan_mac.dir/softrate_ra.cpp.o" "gcc" "src/mac/CMakeFiles/mobiwlan_mac.dir/softrate_ra.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/mobiwlan_core.dir/DependInfo.cmake"
  "/root/repo/build/src/chan/CMakeFiles/mobiwlan_chan.dir/DependInfo.cmake"
  "/root/repo/build/src/phy/CMakeFiles/mobiwlan_phy.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mobiwlan_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
