file(REMOVE_RECURSE
  "CMakeFiles/mobiwlan_mac.dir/aggregation.cpp.o"
  "CMakeFiles/mobiwlan_mac.dir/aggregation.cpp.o.d"
  "CMakeFiles/mobiwlan_mac.dir/atheros_ra.cpp.o"
  "CMakeFiles/mobiwlan_mac.dir/atheros_ra.cpp.o.d"
  "CMakeFiles/mobiwlan_mac.dir/blockack.cpp.o"
  "CMakeFiles/mobiwlan_mac.dir/blockack.cpp.o.d"
  "CMakeFiles/mobiwlan_mac.dir/esnr_ra.cpp.o"
  "CMakeFiles/mobiwlan_mac.dir/esnr_ra.cpp.o.d"
  "CMakeFiles/mobiwlan_mac.dir/latency_sim.cpp.o"
  "CMakeFiles/mobiwlan_mac.dir/latency_sim.cpp.o.d"
  "CMakeFiles/mobiwlan_mac.dir/link_sim.cpp.o"
  "CMakeFiles/mobiwlan_mac.dir/link_sim.cpp.o.d"
  "CMakeFiles/mobiwlan_mac.dir/sensor_hint_ra.cpp.o"
  "CMakeFiles/mobiwlan_mac.dir/sensor_hint_ra.cpp.o.d"
  "CMakeFiles/mobiwlan_mac.dir/softrate_ra.cpp.o"
  "CMakeFiles/mobiwlan_mac.dir/softrate_ra.cpp.o.d"
  "libmobiwlan_mac.a"
  "libmobiwlan_mac.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mobiwlan_mac.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
