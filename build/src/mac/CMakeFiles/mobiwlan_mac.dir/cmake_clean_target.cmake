file(REMOVE_RECURSE
  "libmobiwlan_mac.a"
)
