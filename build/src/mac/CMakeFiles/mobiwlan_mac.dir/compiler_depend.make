# Empty compiler generated dependencies file for mobiwlan_mac.
# This may be replaced when dependencies are built.
