file(REMOVE_RECURSE
  "CMakeFiles/mobiwlan_net.dir/deployment.cpp.o"
  "CMakeFiles/mobiwlan_net.dir/deployment.cpp.o.d"
  "CMakeFiles/mobiwlan_net.dir/roaming.cpp.o"
  "CMakeFiles/mobiwlan_net.dir/roaming.cpp.o.d"
  "CMakeFiles/mobiwlan_net.dir/scheduler.cpp.o"
  "CMakeFiles/mobiwlan_net.dir/scheduler.cpp.o.d"
  "libmobiwlan_net.a"
  "libmobiwlan_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mobiwlan_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
