file(REMOVE_RECURSE
  "libmobiwlan_net.a"
)
