# Empty compiler generated dependencies file for mobiwlan_net.
# This may be replaced when dependencies are built.
