
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/phy/airtime.cpp" "src/phy/CMakeFiles/mobiwlan_phy.dir/airtime.cpp.o" "gcc" "src/phy/CMakeFiles/mobiwlan_phy.dir/airtime.cpp.o.d"
  "/root/repo/src/phy/aoa.cpp" "src/phy/CMakeFiles/mobiwlan_phy.dir/aoa.cpp.o" "gcc" "src/phy/CMakeFiles/mobiwlan_phy.dir/aoa.cpp.o.d"
  "/root/repo/src/phy/beamforming.cpp" "src/phy/CMakeFiles/mobiwlan_phy.dir/beamforming.cpp.o" "gcc" "src/phy/CMakeFiles/mobiwlan_phy.dir/beamforming.cpp.o.d"
  "/root/repo/src/phy/csi.cpp" "src/phy/CMakeFiles/mobiwlan_phy.dir/csi.cpp.o" "gcc" "src/phy/CMakeFiles/mobiwlan_phy.dir/csi.cpp.o.d"
  "/root/repo/src/phy/csi_feedback.cpp" "src/phy/CMakeFiles/mobiwlan_phy.dir/csi_feedback.cpp.o" "gcc" "src/phy/CMakeFiles/mobiwlan_phy.dir/csi_feedback.cpp.o.d"
  "/root/repo/src/phy/error_model.cpp" "src/phy/CMakeFiles/mobiwlan_phy.dir/error_model.cpp.o" "gcc" "src/phy/CMakeFiles/mobiwlan_phy.dir/error_model.cpp.o.d"
  "/root/repo/src/phy/mcs.cpp" "src/phy/CMakeFiles/mobiwlan_phy.dir/mcs.cpp.o" "gcc" "src/phy/CMakeFiles/mobiwlan_phy.dir/mcs.cpp.o.d"
  "/root/repo/src/phy/mimo.cpp" "src/phy/CMakeFiles/mobiwlan_phy.dir/mimo.cpp.o" "gcc" "src/phy/CMakeFiles/mobiwlan_phy.dir/mimo.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/mobiwlan_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
