file(REMOVE_RECURSE
  "CMakeFiles/mobiwlan_phy.dir/airtime.cpp.o"
  "CMakeFiles/mobiwlan_phy.dir/airtime.cpp.o.d"
  "CMakeFiles/mobiwlan_phy.dir/aoa.cpp.o"
  "CMakeFiles/mobiwlan_phy.dir/aoa.cpp.o.d"
  "CMakeFiles/mobiwlan_phy.dir/beamforming.cpp.o"
  "CMakeFiles/mobiwlan_phy.dir/beamforming.cpp.o.d"
  "CMakeFiles/mobiwlan_phy.dir/csi.cpp.o"
  "CMakeFiles/mobiwlan_phy.dir/csi.cpp.o.d"
  "CMakeFiles/mobiwlan_phy.dir/csi_feedback.cpp.o"
  "CMakeFiles/mobiwlan_phy.dir/csi_feedback.cpp.o.d"
  "CMakeFiles/mobiwlan_phy.dir/error_model.cpp.o"
  "CMakeFiles/mobiwlan_phy.dir/error_model.cpp.o.d"
  "CMakeFiles/mobiwlan_phy.dir/mcs.cpp.o"
  "CMakeFiles/mobiwlan_phy.dir/mcs.cpp.o.d"
  "CMakeFiles/mobiwlan_phy.dir/mimo.cpp.o"
  "CMakeFiles/mobiwlan_phy.dir/mimo.cpp.o.d"
  "libmobiwlan_phy.a"
  "libmobiwlan_phy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mobiwlan_phy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
