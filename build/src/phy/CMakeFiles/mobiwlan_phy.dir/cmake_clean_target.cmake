file(REMOVE_RECURSE
  "libmobiwlan_phy.a"
)
