# Empty dependencies file for mobiwlan_phy.
# This may be replaced when dependencies are built.
