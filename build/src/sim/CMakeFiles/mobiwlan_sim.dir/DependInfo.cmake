
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/beamforming_sim.cpp" "src/sim/CMakeFiles/mobiwlan_sim.dir/beamforming_sim.cpp.o" "gcc" "src/sim/CMakeFiles/mobiwlan_sim.dir/beamforming_sim.cpp.o.d"
  "/root/repo/src/sim/evaluation.cpp" "src/sim/CMakeFiles/mobiwlan_sim.dir/evaluation.cpp.o" "gcc" "src/sim/CMakeFiles/mobiwlan_sim.dir/evaluation.cpp.o.d"
  "/root/repo/src/sim/event_queue.cpp" "src/sim/CMakeFiles/mobiwlan_sim.dir/event_queue.cpp.o" "gcc" "src/sim/CMakeFiles/mobiwlan_sim.dir/event_queue.cpp.o.d"
  "/root/repo/src/sim/overall_sim.cpp" "src/sim/CMakeFiles/mobiwlan_sim.dir/overall_sim.cpp.o" "gcc" "src/sim/CMakeFiles/mobiwlan_sim.dir/overall_sim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/mobiwlan_net.dir/DependInfo.cmake"
  "/root/repo/build/src/mac/CMakeFiles/mobiwlan_mac.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/mobiwlan_core.dir/DependInfo.cmake"
  "/root/repo/build/src/chan/CMakeFiles/mobiwlan_chan.dir/DependInfo.cmake"
  "/root/repo/build/src/phy/CMakeFiles/mobiwlan_phy.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mobiwlan_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
