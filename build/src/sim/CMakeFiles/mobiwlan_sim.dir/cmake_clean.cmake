file(REMOVE_RECURSE
  "CMakeFiles/mobiwlan_sim.dir/beamforming_sim.cpp.o"
  "CMakeFiles/mobiwlan_sim.dir/beamforming_sim.cpp.o.d"
  "CMakeFiles/mobiwlan_sim.dir/evaluation.cpp.o"
  "CMakeFiles/mobiwlan_sim.dir/evaluation.cpp.o.d"
  "CMakeFiles/mobiwlan_sim.dir/event_queue.cpp.o"
  "CMakeFiles/mobiwlan_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/mobiwlan_sim.dir/overall_sim.cpp.o"
  "CMakeFiles/mobiwlan_sim.dir/overall_sim.cpp.o.d"
  "libmobiwlan_sim.a"
  "libmobiwlan_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mobiwlan_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
