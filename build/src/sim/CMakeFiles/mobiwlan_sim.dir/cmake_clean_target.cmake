file(REMOVE_RECURSE
  "libmobiwlan_sim.a"
)
