# Empty dependencies file for mobiwlan_sim.
# This may be replaced when dependencies are built.
