file(REMOVE_RECURSE
  "CMakeFiles/mobiwlan_util.dir/filters.cpp.o"
  "CMakeFiles/mobiwlan_util.dir/filters.cpp.o.d"
  "CMakeFiles/mobiwlan_util.dir/matrix.cpp.o"
  "CMakeFiles/mobiwlan_util.dir/matrix.cpp.o.d"
  "CMakeFiles/mobiwlan_util.dir/rng.cpp.o"
  "CMakeFiles/mobiwlan_util.dir/rng.cpp.o.d"
  "CMakeFiles/mobiwlan_util.dir/significance.cpp.o"
  "CMakeFiles/mobiwlan_util.dir/significance.cpp.o.d"
  "CMakeFiles/mobiwlan_util.dir/stats.cpp.o"
  "CMakeFiles/mobiwlan_util.dir/stats.cpp.o.d"
  "CMakeFiles/mobiwlan_util.dir/table.cpp.o"
  "CMakeFiles/mobiwlan_util.dir/table.cpp.o.d"
  "libmobiwlan_util.a"
  "libmobiwlan_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mobiwlan_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
