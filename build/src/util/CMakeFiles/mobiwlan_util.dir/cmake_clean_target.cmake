file(REMOVE_RECURSE
  "libmobiwlan_util.a"
)
