# Empty compiler generated dependencies file for mobiwlan_util.
# This may be replaced when dependencies are built.
