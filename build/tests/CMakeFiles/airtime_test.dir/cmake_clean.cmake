file(REMOVE_RECURSE
  "CMakeFiles/airtime_test.dir/phy/airtime_test.cpp.o"
  "CMakeFiles/airtime_test.dir/phy/airtime_test.cpp.o.d"
  "airtime_test"
  "airtime_test.pdb"
  "airtime_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/airtime_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
