# Empty compiler generated dependencies file for airtime_test.
# This may be replaced when dependencies are built.
