file(REMOVE_RECURSE
  "CMakeFiles/aoa_test.dir/phy/aoa_test.cpp.o"
  "CMakeFiles/aoa_test.dir/phy/aoa_test.cpp.o.d"
  "aoa_test"
  "aoa_test.pdb"
  "aoa_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aoa_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
