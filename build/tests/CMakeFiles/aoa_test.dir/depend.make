# Empty dependencies file for aoa_test.
# This may be replaced when dependencies are built.
