file(REMOVE_RECURSE
  "CMakeFiles/atheros_ra_test.dir/mac/atheros_ra_test.cpp.o"
  "CMakeFiles/atheros_ra_test.dir/mac/atheros_ra_test.cpp.o.d"
  "atheros_ra_test"
  "atheros_ra_test.pdb"
  "atheros_ra_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atheros_ra_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
