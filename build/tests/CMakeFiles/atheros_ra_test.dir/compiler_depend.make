# Empty compiler generated dependencies file for atheros_ra_test.
# This may be replaced when dependencies are built.
