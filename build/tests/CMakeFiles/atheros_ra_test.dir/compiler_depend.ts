# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for atheros_ra_test.
