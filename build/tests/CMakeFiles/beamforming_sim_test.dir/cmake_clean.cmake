file(REMOVE_RECURSE
  "CMakeFiles/beamforming_sim_test.dir/sim/beamforming_sim_test.cpp.o"
  "CMakeFiles/beamforming_sim_test.dir/sim/beamforming_sim_test.cpp.o.d"
  "beamforming_sim_test"
  "beamforming_sim_test.pdb"
  "beamforming_sim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/beamforming_sim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
