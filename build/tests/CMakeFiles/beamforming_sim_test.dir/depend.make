# Empty dependencies file for beamforming_sim_test.
# This may be replaced when dependencies are built.
