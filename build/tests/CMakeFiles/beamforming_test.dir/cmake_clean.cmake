file(REMOVE_RECURSE
  "CMakeFiles/beamforming_test.dir/phy/beamforming_test.cpp.o"
  "CMakeFiles/beamforming_test.dir/phy/beamforming_test.cpp.o.d"
  "beamforming_test"
  "beamforming_test.pdb"
  "beamforming_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/beamforming_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
