# Empty compiler generated dependencies file for beamforming_test.
# This may be replaced when dependencies are built.
