file(REMOVE_RECURSE
  "CMakeFiles/blockack_test.dir/mac/blockack_test.cpp.o"
  "CMakeFiles/blockack_test.dir/mac/blockack_test.cpp.o.d"
  "blockack_test"
  "blockack_test.pdb"
  "blockack_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blockack_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
