# Empty compiler generated dependencies file for blockack_test.
# This may be replaced when dependencies are built.
