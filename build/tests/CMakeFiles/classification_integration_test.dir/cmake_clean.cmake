file(REMOVE_RECURSE
  "CMakeFiles/classification_integration_test.dir/integration/classification_integration_test.cpp.o"
  "CMakeFiles/classification_integration_test.dir/integration/classification_integration_test.cpp.o.d"
  "classification_integration_test"
  "classification_integration_test.pdb"
  "classification_integration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/classification_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
