# Empty compiler generated dependencies file for classification_integration_test.
# This may be replaced when dependencies are built.
