file(REMOVE_RECURSE
  "CMakeFiles/csi_feedback_test.dir/phy/csi_feedback_test.cpp.o"
  "CMakeFiles/csi_feedback_test.dir/phy/csi_feedback_test.cpp.o.d"
  "csi_feedback_test"
  "csi_feedback_test.pdb"
  "csi_feedback_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csi_feedback_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
