# Empty dependencies file for csi_feedback_test.
# This may be replaced when dependencies are built.
