file(REMOVE_RECURSE
  "CMakeFiles/csi_similarity_test.dir/core/csi_similarity_test.cpp.o"
  "CMakeFiles/csi_similarity_test.dir/core/csi_similarity_test.cpp.o.d"
  "csi_similarity_test"
  "csi_similarity_test.pdb"
  "csi_similarity_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csi_similarity_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
