# Empty dependencies file for csi_similarity_test.
# This may be replaced when dependencies are built.
