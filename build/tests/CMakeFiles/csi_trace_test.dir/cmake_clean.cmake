file(REMOVE_RECURSE
  "CMakeFiles/csi_trace_test.dir/chan/csi_trace_test.cpp.o"
  "CMakeFiles/csi_trace_test.dir/chan/csi_trace_test.cpp.o.d"
  "csi_trace_test"
  "csi_trace_test.pdb"
  "csi_trace_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csi_trace_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
