# Empty dependencies file for csi_trace_test.
# This may be replaced when dependencies are built.
