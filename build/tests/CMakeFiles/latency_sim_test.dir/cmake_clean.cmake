file(REMOVE_RECURSE
  "CMakeFiles/latency_sim_test.dir/mac/latency_sim_test.cpp.o"
  "CMakeFiles/latency_sim_test.dir/mac/latency_sim_test.cpp.o.d"
  "latency_sim_test"
  "latency_sim_test.pdb"
  "latency_sim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/latency_sim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
