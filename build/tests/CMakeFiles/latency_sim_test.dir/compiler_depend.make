# Empty compiler generated dependencies file for latency_sim_test.
# This may be replaced when dependencies are built.
