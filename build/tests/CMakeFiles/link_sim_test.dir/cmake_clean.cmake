file(REMOVE_RECURSE
  "CMakeFiles/link_sim_test.dir/mac/link_sim_test.cpp.o"
  "CMakeFiles/link_sim_test.dir/mac/link_sim_test.cpp.o.d"
  "link_sim_test"
  "link_sim_test.pdb"
  "link_sim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/link_sim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
