# Empty dependencies file for link_sim_test.
# This may be replaced when dependencies are built.
