file(REMOVE_RECURSE
  "CMakeFiles/mcs_test.dir/phy/mcs_test.cpp.o"
  "CMakeFiles/mcs_test.dir/phy/mcs_test.cpp.o.d"
  "mcs_test"
  "mcs_test.pdb"
  "mcs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
