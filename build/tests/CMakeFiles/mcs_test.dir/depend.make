# Empty dependencies file for mcs_test.
# This may be replaced when dependencies are built.
