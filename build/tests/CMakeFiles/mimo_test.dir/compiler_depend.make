# Empty compiler generated dependencies file for mimo_test.
# This may be replaced when dependencies are built.
