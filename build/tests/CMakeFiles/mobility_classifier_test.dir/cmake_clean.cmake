file(REMOVE_RECURSE
  "CMakeFiles/mobility_classifier_test.dir/core/mobility_classifier_test.cpp.o"
  "CMakeFiles/mobility_classifier_test.dir/core/mobility_classifier_test.cpp.o.d"
  "mobility_classifier_test"
  "mobility_classifier_test.pdb"
  "mobility_classifier_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mobility_classifier_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
