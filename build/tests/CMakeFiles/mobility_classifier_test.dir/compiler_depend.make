# Empty compiler generated dependencies file for mobility_classifier_test.
# This may be replaced when dependencies are built.
