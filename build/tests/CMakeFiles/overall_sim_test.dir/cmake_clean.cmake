file(REMOVE_RECURSE
  "CMakeFiles/overall_sim_test.dir/sim/overall_sim_test.cpp.o"
  "CMakeFiles/overall_sim_test.dir/sim/overall_sim_test.cpp.o.d"
  "overall_sim_test"
  "overall_sim_test.pdb"
  "overall_sim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/overall_sim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
