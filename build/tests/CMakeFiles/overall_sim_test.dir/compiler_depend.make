# Empty compiler generated dependencies file for overall_sim_test.
# This may be replaced when dependencies are built.
