
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/policy_test.cpp" "tests/CMakeFiles/policy_test.dir/core/policy_test.cpp.o" "gcc" "tests/CMakeFiles/policy_test.dir/core/policy_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/mobiwlan_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/mobiwlan_net.dir/DependInfo.cmake"
  "/root/repo/build/src/mac/CMakeFiles/mobiwlan_mac.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/mobiwlan_core.dir/DependInfo.cmake"
  "/root/repo/build/src/chan/CMakeFiles/mobiwlan_chan.dir/DependInfo.cmake"
  "/root/repo/build/src/phy/CMakeFiles/mobiwlan_phy.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mobiwlan_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
