file(REMOVE_RECURSE
  "CMakeFiles/protocol_integration_test.dir/integration/protocol_integration_test.cpp.o"
  "CMakeFiles/protocol_integration_test.dir/integration/protocol_integration_test.cpp.o.d"
  "protocol_integration_test"
  "protocol_integration_test.pdb"
  "protocol_integration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protocol_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
