file(REMOVE_RECURSE
  "CMakeFiles/ra_baselines_test.dir/mac/ra_baselines_test.cpp.o"
  "CMakeFiles/ra_baselines_test.dir/mac/ra_baselines_test.cpp.o.d"
  "ra_baselines_test"
  "ra_baselines_test.pdb"
  "ra_baselines_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ra_baselines_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
