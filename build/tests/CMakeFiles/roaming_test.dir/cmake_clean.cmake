file(REMOVE_RECURSE
  "CMakeFiles/roaming_test.dir/net/roaming_test.cpp.o"
  "CMakeFiles/roaming_test.dir/net/roaming_test.cpp.o.d"
  "roaming_test"
  "roaming_test.pdb"
  "roaming_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/roaming_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
