# Empty dependencies file for roaming_test.
# This may be replaced when dependencies are built.
