file(REMOVE_RECURSE
  "CMakeFiles/tof_tracker_test.dir/core/tof_tracker_test.cpp.o"
  "CMakeFiles/tof_tracker_test.dir/core/tof_tracker_test.cpp.o.d"
  "tof_tracker_test"
  "tof_tracker_test.pdb"
  "tof_tracker_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tof_tracker_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
