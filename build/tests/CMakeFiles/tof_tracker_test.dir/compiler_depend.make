# Empty compiler generated dependencies file for tof_tracker_test.
# This may be replaced when dependencies are built.
