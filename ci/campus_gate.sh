#!/usr/bin/env bash
# ci/campus_gate.sh — campus shard-invariance gate.
#
# Runs the campus suite (`mobiwlan-bench --campus`): one 1024-AP / 100k-
# session churn scenario under 1/4/16-shard partitionings (plus a 16-shard
# single-worker cross-check). Every shard-invariant observable — aggregate
# counters, bitwise float sums, the per-session FNV digest combiners and
# histogram quantiles — is compared exactly across the matrix inside the
# bench (campus.invariance_mismatches, gated 0 == 0), and every gated key in
# ci/campus_baseline.json is an exact min == max pair, so a single changed
# session-step observable fails the build. A second run at --jobs 1 must
# reproduce the --jobs 8 report byte-for-byte outside `"timing` lines.
#
# Refresh after an intentional behaviour change with:
#   ./build/bench/mobiwlan-bench --campus
# and copy the campus.* values into ci/campus_baseline.json as min/max
# pairs; the negative baseline (ci/campus_baseline_negative.json, one
# digest bit off) must keep failing.
set -euo pipefail
cd "$(dirname "$0")/.."

BENCH="${BENCH:-./build/bench/mobiwlan-bench}"
OUT="${CAMPUS_OUT:-/tmp/mobiwlan_campus.json}"
OUT_J1="${OUT%.json}_j1.json"

if [[ ! -x "${BENCH}" ]]; then
  echo "FAIL: ${BENCH} not built (run cmake --build build first)" >&2
  exit 1
fi

"${BENCH}" --campus-check --jobs 8 \
  --campus-out "${OUT}" \
  --campus-baseline ci/campus_baseline.json

echo "-- campus determinism: --jobs 1 vs --jobs 8 --"
"${BENCH}" --campus-check --jobs 1 \
  --campus-out "${OUT_J1}" \
  --campus-baseline ci/campus_baseline.json >/dev/null
if ! diff <(grep -v '"timing' "${OUT}") \
          <(grep -v '"timing' "${OUT_J1}"); then
  echo "FAIL: campus report differs between --jobs 8 and --jobs 1" >&2
  exit 1
fi
echo "ok: campus report byte-identical modulo timing"

echo "-- campus gate negative control --"
if "${BENCH}" --campus-check-only "${OUT}" \
     --campus-baseline ci/campus_baseline_negative.json >/dev/null 2>&1; then
  echo "FAIL: negative baseline passed — the gate cannot catch regressions" >&2
  exit 1
fi
echo "ok: negative baseline fails as intended"
