#!/usr/bin/env bash
# ci/check.sh — the full pre-merge gate:
#   1. plain build + entire ctest suite;
#   2. runtime determinism check: mobiwlan-bench at --jobs 1 vs --jobs 8
#      must produce byte-identical JSON outside the "timing" lines;
#   3. perf-regression smoke gate: ci/perf_gate.sh with a short per-case
#      budget and the baseline's 25% tolerance band (microbench cases plus
#      the AP-scale throughput bench and its speedup/alloc gates);
#   4. statistical paper-fidelity gate: ci/fidelity_gate.sh checks the core
#      experiment statistics against ci/fidelity_baseline.json and diffs the
#      --jobs 1 vs --jobs 8 reports;
#   5. fault-injection gate: ci/fault_gate.sh checks graceful degradation
#      under PHY-observable export loss against ci/fault_baseline.json,
#      diffs the --jobs 1 vs --jobs 8 reports, and proves the negative
#      baseline still fails;
#   5b. trace replay gate: ci/trace_gate.sh records every protocol loop,
#      replays it from the trace alone, and requires bit-identical results
#      (plus fault-composition and pitfall probes) at --jobs 1 and 8;
#   5c. campus shard-invariance gate: ci/campus_gate.sh runs the 1024-AP /
#      100k-session churn scenario under 1/4/16-shard partitionings and
#      requires bitwise-identical per-session aggregates across the matrix
#      and across --jobs 1 vs 8, plus a failing negative baseline;
#   5d. localization gate: ci/loc_gate.sh surveys the fingerprint database,
#      checks the kNN/fused accuracy and mobility-gated-refresh ablation
#      against ci/loc_baseline.json (exact min == max pairs), diffs the
#      --jobs 1 vs --jobs 8 reports, proves the negative baseline fails,
#      and holds the single-thread lookup-rate floor;
#   6. scale determinism: the AP-scale bench JSON at --jobs 1 vs --jobs 8
#      must be byte-identical outside the timing_* lines;
#   7. ThreadSanitizer build (-DMOBIWLAN_SANITIZE=thread) running the
#      runtime thread-pool, experiment, and parallel_for tests plus the
#      campus mailbox stress test (concurrent SPSC producers against a
#      live consumer).
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc)"

echo "== build (RelWithDebInfo) =="
cmake -B build -S . >/dev/null
cmake --build build -j"${JOBS}"

echo "== ctest =="
ctest --test-dir build --output-on-failure -j"${JOBS}"

echo "== determinism: --jobs 1 vs --jobs 8 =="
./build/bench/mobiwlan-bench --filter table1 --jobs 8 --json /tmp/mobiwlan_a.json >/dev/null
./build/bench/mobiwlan-bench --filter table1 --jobs 1 --json /tmp/mobiwlan_b.json >/dev/null
if ! diff <(grep -v '"timing":' /tmp/mobiwlan_a.json) \
          <(grep -v '"timing":' /tmp/mobiwlan_b.json); then
  echo "FAIL: bench results differ between --jobs 8 and --jobs 1" >&2
  exit 1
fi
echo "ok: results byte-identical modulo timing"

echo "== perf gate: channel hot loops =="
PERF_MIN_TIME="${PERF_MIN_TIME:-0.2}" ./ci/perf_gate.sh

echo "== fidelity gate: paper-shape statistics =="
./ci/fidelity_gate.sh

echo "== fault gate: graceful degradation under export loss =="
./ci/fault_gate.sh

echo "== trace gate: record/replay determinism =="
./ci/trace_gate.sh

echo "== campus gate: shard-invariance across 1/4/16 partitionings =="
./ci/campus_gate.sh

echo "== loc gate: fingerprint localization + mobility-gated refresh =="
./ci/loc_gate.sh

echo "== scale determinism: --jobs 1 vs --jobs 8 =="
./build/bench/mobiwlan-bench --scale --jobs 8 --perf-min-time 0.05 \
  --scale-out /tmp/mobiwlan_scale_a.json >/dev/null
./build/bench/mobiwlan-bench --scale --jobs 1 --perf-min-time 0.05 \
  --scale-out /tmp/mobiwlan_scale_b.json >/dev/null
if ! diff <(grep -v '"timing' /tmp/mobiwlan_scale_a.json) \
          <(grep -v '"timing' /tmp/mobiwlan_scale_b.json); then
  echo "FAIL: scale results differ between --jobs 8 and --jobs 1" >&2
  exit 1
fi
echo "ok: scale results byte-identical modulo timing"

echo "== ThreadSanitizer: runtime tests =="
cmake -B build-tsan -S . -DMOBIWLAN_SANITIZE=thread \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
cmake --build build-tsan -j"${JOBS}" \
  --target thread_pool_test experiment_test parallel_for_test \
           mailbox_stress_test
TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/thread_pool_test
TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/experiment_test
TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/parallel_for_test
TSAN_OPTIONS="halt_on_error=1" ./build-tsan/tests/mailbox_stress_test

echo "== all checks passed =="
