#!/usr/bin/env bash
# ci/fault_gate.sh — fault-injection / graceful-degradation gate.
#
# Runs the fault-tolerance sweep (`mobiwlan-bench --fault`): Table-1
# classification accuracy vs CSI+ToF drop rate (must degrade monotonically),
# Fig-9 / Fig-13 mobility-aware vs stock throughput ratios under export
# loss, motion-aware roaming under 30% ToF loss (must stay at least as good
# as default roaming), and the exact zero-fault identity probe (an all-zero
# FaultPlan must reproduce the raw observables bit for bit). Bounds live in
# ci/fault_baseline.json. A second run at --jobs 1 must reproduce the
# --jobs 8 report byte-for-byte outside the "timing" line — faulted runs
# obey the same determinism contract as everything else.
#
# Refresh after an intentional behaviour change with:
#   ./build/bench/mobiwlan-bench --fault
# and re-derive the bounds from the printed metrics per EXPERIMENTS.md; the
# negative baseline (ci/fault_baseline_negative.json) must keep failing.
set -euo pipefail
cd "$(dirname "$0")/.."

BENCH="${BENCH:-./build/bench/mobiwlan-bench}"
OUT="${FAULT_OUT:-/tmp/mobiwlan_fault.json}"
OUT_J1="${OUT%.json}_j1.json"

if [[ ! -x "${BENCH}" ]]; then
  echo "FAIL: ${BENCH} not built (run cmake --build build first)" >&2
  exit 1
fi

"${BENCH}" --fault-check --jobs 8 \
  --fault-out "${OUT}" \
  --fault-baseline ci/fault_baseline.json

echo "-- fault determinism: --jobs 1 vs --jobs 8 --"
"${BENCH}" --fault-check --jobs 1 \
  --fault-out "${OUT_J1}" \
  --fault-baseline ci/fault_baseline.json >/dev/null
if ! diff <(grep -v '"timing":' "${OUT}") \
          <(grep -v '"timing":' "${OUT_J1}"); then
  echo "FAIL: fault report differs between --jobs 8 and --jobs 1" >&2
  exit 1
fi
echo "ok: fault report byte-identical modulo timing"

echo "-- fault gate negative control --"
if "${BENCH}" --fault-check-only "${OUT}" \
     --fault-baseline ci/fault_baseline_negative.json >/dev/null 2>&1; then
  echo "FAIL: negative baseline passed — the gate cannot catch regressions" >&2
  exit 1
fi
echo "ok: negative baseline fails as intended"
