#!/usr/bin/env bash
# ci/fidelity_gate.sh — statistical paper-fidelity gate.
#
# Re-runs the core paper experiments (Table 1 confusion matrix, Fig. 2
# threshold separation, Fig. 4 ramp detection, Fig. 9 rate-adaptation
# ordering) through the Experiment sharder and checks the measured
# statistics against the bounds in ci/fidelity_baseline.json. A second run
# at --jobs 1 must reproduce the --jobs 8 report byte-for-byte outside the
# "timing" lines — the same determinism contract as the bench suite.
#
# The baseline encodes paper-shape claims (per-class accuracy with Wilson CI
# width, similarity quantiles, monotone-run counts, throughput ratios), not
# exact values; bounds carry calibration slack so only a real behavior change
# trips them. Refresh after an intentional model change with:
#   ./build/bench/mobiwlan-bench --fidelity
# and re-derive the bounds from the printed metrics per EXPERIMENTS.md.
set -euo pipefail
cd "$(dirname "$0")/.."

BENCH="${BENCH:-./build/bench/mobiwlan-bench}"
OUT="${FIDELITY_OUT:-/tmp/mobiwlan_fidelity.json}"
OUT_J1="${OUT%.json}_j1.json"

if [[ ! -x "${BENCH}" ]]; then
  echo "FAIL: ${BENCH} not built (run cmake --build build first)" >&2
  exit 1
fi

"${BENCH}" --fidelity-check --jobs 8 \
  --fidelity-out "${OUT}" \
  --fidelity-baseline ci/fidelity_baseline.json

echo "-- fidelity determinism: --jobs 1 vs --jobs 8 --"
"${BENCH}" --fidelity-check --jobs 1 \
  --fidelity-out "${OUT_J1}" \
  --fidelity-baseline ci/fidelity_baseline.json >/dev/null
if ! diff <(grep -v '"timing":' "${OUT}") \
          <(grep -v '"timing":' "${OUT_J1}"); then
  echo "FAIL: fidelity report differs between --jobs 8 and --jobs 1" >&2
  exit 1
fi
echo "ok: fidelity report byte-identical modulo timing"
