#!/usr/bin/env bash
# ci/loc_gate.sh — CSI-fingerprint localization gate.
#
# Runs the localization suite (`mobiwlan-bench --loc`): the parallel
# fingerprint-database survey (bitwise digest + serial rebuild probe), the
# held-out-walk kNN/fused accuracy statistics, the mobility-gated vs
# always-update refresh ablation (gating must hold accuracy with strictly
# fewer DB writes), and the single-thread lookup-rate section. Every gated
# key in ci/loc_baseline.json is an exact min == max pair, so a single bit
# changed anywhere in the surveyed database or the lookup pipeline fails
# the build. A second run at --jobs 1 must reproduce the --jobs 8 report
# byte-for-byte outside `"timing` lines, and the timing-quarantined lookup
# rate must clear 85% of the committed gate_loc_lookups_per_s floor (and
# never the 1e5/s requirement itself).
#
# Refresh after an intentional behaviour change with:
#   ./build/bench/mobiwlan-bench --loc
# and copy the loc.* values into ci/loc_baseline.json as min/max pairs;
# the negative baseline (ci/loc_baseline_negative.json, one digest bit
# off) must keep failing.
set -euo pipefail
cd "$(dirname "$0")/.."

BENCH="${BENCH:-./build/bench/mobiwlan-bench}"
OUT="${LOC_OUT:-/tmp/mobiwlan_loc.json}"
OUT_J1="${OUT%.json}_j1.json"

if [[ ! -x "${BENCH}" ]]; then
  echo "FAIL: ${BENCH} not built (run cmake --build build first)" >&2
  exit 1
fi

flat_key() {  # flat_key FILE KEY -> numeric value
  grep -o "\"$2\": *-\?[0-9.eE+-]*" "$1" | head -1 | awk '{print $NF}'
}

"${BENCH}" --loc-check --jobs 8 \
  --loc-out "${OUT}" \
  --loc-baseline ci/loc_baseline.json

echo "-- loc determinism: --jobs 1 vs --jobs 8 --"
"${BENCH}" --loc-check --jobs 1 \
  --loc-out "${OUT_J1}" \
  --loc-baseline ci/loc_baseline.json >/dev/null
if ! diff <(grep -v '"timing' "${OUT}") \
          <(grep -v '"timing' "${OUT_J1}"); then
  echo "FAIL: loc report differs between --jobs 8 and --jobs 1" >&2
  exit 1
fi
echo "ok: loc report byte-identical modulo timing"

echo "-- loc gate negative control --"
if "${BENCH}" --loc-check-only "${OUT}" \
     --loc-baseline ci/loc_baseline_negative.json >/dev/null 2>&1; then
  echo "FAIL: negative baseline passed — the gate cannot catch regressions" >&2
  exit 1
fi
echo "ok: negative baseline fails as intended"

echo "-- loc lookup-rate floor --"
rate="$(flat_key "${OUT}" timing_loc_lookups_per_s)"
floor="$(flat_key ci/loc_baseline.json gate_loc_lookups_per_s)"
if ! awk -v r="${rate}" -v f="${floor}" \
     'BEGIN { exit !(r != "" && r >= 100000 && r >= 0.85 * f) }'; then
  echo "FAIL: lookup rate ${rate}/s below max(1e5, 0.85 * ${floor})/s" >&2
  exit 1
fi
echo "ok: ${rate} lookups/s (floor ${floor}, 0.85 grace, 1e5 hard)"
