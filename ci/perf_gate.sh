#!/usr/bin/env bash
# ci/perf_gate.sh — perf-regression gate for the channel hot loops.
#
# Two bench runs against the gate_* values in ci/perf_baseline.json:
#   1. mobiwlan-bench --perf: the per-op microbench cases, failing on any
#      case past the baseline's tolerance band (default 25%) or any hot
#      loop that starts allocating;
#   2. mobiwlan-bench --scale: the AP-scale throughput bench (64 APs x 512
#      clients), gating the batched sample time, the batch-vs-per-link
#      speedup floor, and the zero-allocation steady state. The bench also
#      enforces batched-vs-per-link agreement on every run.
# The gate values are wall-clock numbers from one reference host; the
# tolerance absorbs normal host-to-host and run-to-run variance, so a
# failure means a real regression, not noise. Refresh after an intentional
# perf change with:
#   ./build/bench/mobiwlan-bench --perf
#   ./build/bench/mobiwlan-bench --scale
# and copy the new values into ci/perf_baseline.json as gate_*.
#
# PERF_MIN_TIME sets seconds per case/measurement (default 0.2 for a quick
# CI smoke run; use >= 1.0 when refreshing the baseline).
set -euo pipefail
cd "$(dirname "$0")/.."

BENCH="${BENCH:-./build/bench/mobiwlan-bench}"
MIN_TIME="${PERF_MIN_TIME:-0.2}"
OUT="${PERF_OUT:-/tmp/mobiwlan_perf.json}"
SCALE_OUT="${SCALE_OUT:-/tmp/mobiwlan_scale.json}"

if [[ ! -x "${BENCH}" ]]; then
  echo "FAIL: ${BENCH} not built (run cmake --build build first)" >&2
  exit 1
fi

"${BENCH}" --perf --perf-check \
  --perf-min-time "${MIN_TIME}" \
  --perf-out "${OUT}" \
  --perf-baseline ci/perf_baseline.json

"${BENCH}" --scale --scale-check \
  --perf-min-time "${MIN_TIME}" \
  --scale-out "${SCALE_OUT}" \
  --perf-baseline ci/perf_baseline.json

# ---- fp32 precision-tier section ------------------------------------------
# The scale bench publishes the paired (interleaved, drift-immune) fp32-vs-
# fp64 wideband batched-synthesis ratio at the host's active SIMD tier. On
# AVX2-capable hosts that ratio must clear gate_f32_min_speedup; hosts
# without the wider ISA tiers skip the corresponding check LOUDLY rather
# than silently passing.
flat_key() { grep -o "\"$2\": *-\?[0-9.eE+-]*" "$1" | head -1 | awk '{print $NF}'; }

HOST_AVX2="$(flat_key "${SCALE_OUT}" timing_host_avx2)"
HOST_AVX512="$(flat_key "${SCALE_OUT}" timing_host_avx512)"

if [[ "${HOST_AVX2}" != "1" ]]; then
  echo "fp32-check: SKIPPED — host lacks AVX2+FMA; the avx2 and avx512" \
       "tiers cannot be exercised here and the >=1.6x speedup gate does" \
       "not apply to the scalar tier" >&2
else
  if [[ "${HOST_AVX512}" != "1" ]]; then
    echo "fp32-check: NOTE — host lacks AVX-512 (f/dq/vl); the avx512 tier" \
         "falls back to avx2 and the ratio below is gated at the avx2 tier" >&2
  fi
  SPEEDUP="$(flat_key "${SCALE_OUT}" timing_f32_synthesis_speedup)"
  MIN_SPEEDUP="$(flat_key ci/perf_baseline.json gate_f32_min_speedup)"
  if [[ -z "${SPEEDUP}" || -z "${MIN_SPEEDUP}" ]]; then
    echo "FAIL: fp32 speedup keys missing (scale json ${SCALE_OUT})" >&2
    exit 1
  fi
  if awk -v s="${SPEEDUP}" -v m="${MIN_SPEEDUP}" 'BEGIN { exit !(s >= m) }'; then
    echo "fp32-check: batched synthesis fp32 speedup ${SPEEDUP}x >= ${MIN_SPEEDUP}x (active tier)"
  else
    echo "FAIL: fp32 batched synthesis speedup ${SPEEDUP}x below the" \
         "${MIN_SPEEDUP}x floor (ci/perf_baseline.json gate_f32_min_speedup)" >&2
    exit 1
  fi
fi

# ---- campus throughput section --------------------------------------------
# One full --campus matrix (four runs of the identical 100k-session
# workload). The throughput gate divides the fixed per-run step count
# (campus_steps_per_run) by timing.median_wall_s — the median of the four
# run walls — so a single descheduled run cannot flip the verdict. The
# floor gate_campus_session_steps_per_s is the 3x mark over the
# pre-streaming engine (168,480 steps/s); 15% grace separates host noise
# (observed ~505-580k) from the nearest real regression plateau (~312k
# with the fused pass alone, ~265k without the slab pool). The hot loop's
# allocs-per-op contract is gated separately by the --perf campus_step
# case above and exactly (campus.hot_allocs) by ci/campus_gate.sh.
CAMPUS_PERF_OUT="${CAMPUS_PERF_OUT:-/tmp/mobiwlan_campus_perf.json}"
"${BENCH}" --campus --campus-out "${CAMPUS_PERF_OUT}" >/dev/null

MEDIAN_WALL="$(flat_key "${CAMPUS_PERF_OUT}" timing.median_wall_s)"
STEPS_PER_RUN="$(flat_key ci/perf_baseline.json campus_steps_per_run)"
STEPS_FLOOR="$(flat_key ci/perf_baseline.json gate_campus_session_steps_per_s)"
if [[ -z "${MEDIAN_WALL}" || -z "${STEPS_PER_RUN}" || -z "${STEPS_FLOOR}" ]]; then
  echo "FAIL: campus throughput keys missing (campus json ${CAMPUS_PERF_OUT})" >&2
  exit 1
fi
if awk -v w="${MEDIAN_WALL}" -v n="${STEPS_PER_RUN}" -v f="${STEPS_FLOOR}" \
     'BEGIN { exit !(w > 0 && n / w >= 0.85 * f) }'; then
  THR="$(awk -v w="${MEDIAN_WALL}" -v n="${STEPS_PER_RUN}" 'BEGIN { printf "%.0f", n / w }')"
  echo "campus-check: ${THR} session-steps/s (median wall ${MEDIAN_WALL}s) >= 0.85 * ${STEPS_FLOOR} floor"
else
  THR="$(awk -v w="${MEDIAN_WALL}" -v n="${STEPS_PER_RUN}" 'BEGIN { printf "%.0f", n / w }')"
  echo "FAIL: campus throughput ${THR} session-steps/s below 0.85 *" \
       "${STEPS_FLOOR} (ci/perf_baseline.json gate_campus_session_steps_per_s)" >&2
  exit 1
fi
