#!/usr/bin/env bash
# ci/perf_gate.sh — perf-regression gate for the channel hot loops.
#
# Two bench runs against the gate_* values in ci/perf_baseline.json:
#   1. mobiwlan-bench --perf: the per-op microbench cases, failing on any
#      case past the baseline's tolerance band (default 25%) or any hot
#      loop that starts allocating;
#   2. mobiwlan-bench --scale: the AP-scale throughput bench (64 APs x 512
#      clients), gating the batched sample time, the batch-vs-per-link
#      speedup floor, and the zero-allocation steady state. The bench also
#      enforces batched-vs-per-link agreement on every run.
# The gate values are wall-clock numbers from one reference host; the
# tolerance absorbs normal host-to-host and run-to-run variance, so a
# failure means a real regression, not noise. Refresh after an intentional
# perf change with:
#   ./build/bench/mobiwlan-bench --perf
#   ./build/bench/mobiwlan-bench --scale
# and copy the new values into ci/perf_baseline.json as gate_*.
#
# PERF_MIN_TIME sets seconds per case/measurement (default 0.2 for a quick
# CI smoke run; use >= 1.0 when refreshing the baseline).
set -euo pipefail
cd "$(dirname "$0")/.."

BENCH="${BENCH:-./build/bench/mobiwlan-bench}"
MIN_TIME="${PERF_MIN_TIME:-0.2}"
OUT="${PERF_OUT:-/tmp/mobiwlan_perf.json}"
SCALE_OUT="${SCALE_OUT:-/tmp/mobiwlan_scale.json}"

if [[ ! -x "${BENCH}" ]]; then
  echo "FAIL: ${BENCH} not built (run cmake --build build first)" >&2
  exit 1
fi

"${BENCH}" --perf --perf-check \
  --perf-min-time "${MIN_TIME}" \
  --perf-out "${OUT}" \
  --perf-baseline ci/perf_baseline.json

"${BENCH}" --scale --scale-check \
  --perf-min-time "${MIN_TIME}" \
  --scale-out "${SCALE_OUT}" \
  --perf-baseline ci/perf_baseline.json
