#!/usr/bin/env bash
# ci/perf_gate.sh — perf-regression gate for the channel hot loops.
#
# Runs mobiwlan-bench --perf and fails if any case regresses past the gate_*
# values in ci/perf_baseline.json by more than the baseline's tolerance band
# (default 25%), or if a hot loop starts allocating. The gate values are
# wall-clock numbers from one reference host; the tolerance absorbs normal
# host-to-host and run-to-run variance, so a failure means a real regression,
# not noise. Refresh after an intentional perf change with:
#   ./build/bench/mobiwlan-bench --perf
# and copy the new *_ns/*_allocs values into ci/perf_baseline.json as gate_*.
#
# PERF_MIN_TIME sets seconds per case (default 0.2 for a quick CI smoke run;
# use >= 1.0 when refreshing the baseline).
set -euo pipefail
cd "$(dirname "$0")/.."

BENCH="${BENCH:-./build/bench/mobiwlan-bench}"
MIN_TIME="${PERF_MIN_TIME:-0.2}"
OUT="${PERF_OUT:-/tmp/mobiwlan_perf.json}"

if [[ ! -x "${BENCH}" ]]; then
  echo "FAIL: ${BENCH} not built (run cmake --build build first)" >&2
  exit 1
fi

"${BENCH}" --perf --perf-check \
  --perf-min-time "${MIN_TIME}" \
  --perf-out "${OUT}" \
  --perf-baseline ci/perf_baseline.json
