#!/usr/bin/env bash
# ci/trace_gate.sh — trace record/replay determinism gate.
#
# Runs the trace suite (`mobiwlan-bench --trace`): every protocol loop
# (classifier, link, latency, roaming, overall) is recorded live through a
# RecordingSource tee and replayed from the trace alone; all result fields
# must match bit for bit (mismatch counts gated at 0). The suite also
# composes the PR-5 fault layer onto a replayed trace (drops must skip
# recorded reads deterministically) and probes the arXiv 2002.03905
# pitfalls: timestamp-skew detection, gap hold-then-decay, and the
# missing-stream refusal. Bounds live in ci/trace_baseline.json. A second
# run at --jobs 1 must reproduce the --jobs 8 report byte-for-byte outside
# `"timing` lines (the replay-throughput probe is timing-based and carries
# the `timing.` key prefix so it is quarantined with the wall clock).
#
# Refresh after an intentional behaviour change with:
#   ./build/bench/mobiwlan-bench --trace
# and re-derive the bounds per EXPERIMENTS.md; the negative baseline
# (ci/trace_baseline_negative.json) must keep failing.
set -euo pipefail
cd "$(dirname "$0")/.."

BENCH="${BENCH:-./build/bench/mobiwlan-bench}"
OUT="${TRACE_OUT:-/tmp/mobiwlan_trace.json}"
OUT_J1="${OUT%.json}_j1.json"

if [[ ! -x "${BENCH}" ]]; then
  echo "FAIL: ${BENCH} not built (run cmake --build build first)" >&2
  exit 1
fi

"${BENCH}" --trace-check --jobs 8 \
  --trace-out "${OUT}" \
  --trace-baseline ci/trace_baseline.json

echo "-- trace determinism: --jobs 1 vs --jobs 8 --"
"${BENCH}" --trace-check --jobs 1 \
  --trace-out "${OUT_J1}" \
  --trace-baseline ci/trace_baseline.json >/dev/null
if ! diff <(grep -v '"timing' "${OUT}") \
          <(grep -v '"timing' "${OUT_J1}"); then
  echo "FAIL: trace report differs between --jobs 8 and --jobs 1" >&2
  exit 1
fi
echo "ok: trace report byte-identical modulo timing"

echo "-- trace gate negative control --"
if "${BENCH}" --trace-check-only "${OUT}" \
     --trace-baseline ci/trace_baseline_negative.json >/dev/null 2>&1; then
  echo "FAIL: negative baseline passed — the gate cannot catch regressions" >&2
  exit 1
fi
echo "ok: negative baseline fails as intended"
