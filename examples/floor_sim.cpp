// floor_sim — the configurable end-to-end experiment runner.
//
// Runs the §7 system simulation (roaming + rate adaptation + aggregation +
// beamforming feedback) on an N-AP corridor for a walking client, with both
// the default and the mobility-aware stacks, and prints a comparison report.
//
// Usage: floor_sim [--aps N] [--spacing M] [--duration S] [--walks K] [--seed X]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "sim/overall_sim.hpp"
#include "util/significance.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace mobiwlan;

namespace {

struct Args {
  std::size_t aps = 6;
  double spacing_m = 35.0;
  double duration_s = 45.0;
  int walks = 5;
  std::uint64_t seed = 1;
};

bool parse(int argc, char** argv, Args& args) {
  for (int i = 1; i < argc; i += 2) {
    if (i + 1 >= argc) return false;
    const std::string key = argv[i];
    const double value = std::atof(argv[i + 1]);
    if (key == "--aps") args.aps = static_cast<std::size_t>(value);
    else if (key == "--spacing") args.spacing_m = value;
    else if (key == "--duration") args.duration_s = value;
    else if (key == "--walks") args.walks = static_cast<int>(value);
    else if (key == "--seed") args.seed = static_cast<std::uint64_t>(value);
    else return false;
  }
  return args.aps >= 2 && args.spacing_m > 0 && args.duration_s > 0 &&
         args.walks > 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!parse(argc, argv, args)) {
    std::fprintf(stderr,
                 "usage: %s [--aps N] [--spacing M] [--duration S] "
                 "[--walks K] [--seed X]\n",
                 argv[0]);
    return 1;
  }

  std::printf("floor: %zu APs, %.0f m apart | %d walks x %.0f s | seed %llu\n\n",
              args.aps, args.spacing_m, args.walks, args.duration_s,
              static_cast<unsigned long long>(args.seed));

  SampleSet stock;
  SampleSet aware;
  TablePrinter t("per-walk throughput (Mbps)");
  t.set_header({"walk", "default stack", "mobility-aware", "handoffs (aware)"});
  for (int walk = 0; walk < args.walks; ++walk) {
    double results[2] = {0.0, 0.0};
    int aware_handoffs = 0;
    for (int mode = 0; mode < 2; ++mode) {
      Rng rng(args.seed + 100 * walk);
      auto traj = WlanDeployment::corridor_walk(rng, args.aps, args.spacing_m);
      WlanDeployment wlan(
          WlanDeployment::corridor_layout(args.aps, args.spacing_m), traj,
          ChannelConfig{}, rng);
      OverallSimConfig cfg;
      cfg.duration_s = args.duration_s;
      cfg.mobility_aware = mode == 1;
      Rng sim_rng(args.seed + 100 * walk + 7);
      const auto r = simulate_overall(wlan, cfg, sim_rng);
      results[mode] = r.throughput_mbps;
      if (mode == 1) aware_handoffs = r.handoffs;
    }
    stock.add(results[0]);
    aware.add(results[1]);
    t.add_row({std::to_string(walk + 1), TablePrinter::num(results[0], 1),
               TablePrinter::num(results[1], 1), std::to_string(aware_handoffs)});
  }
  t.print();

  std::printf("\nmedian: default %.1f vs mobility-aware %.1f Mbps (%+.1f%%)\n",
              stock.median(), aware.median(),
              100.0 * (aware.median() / stock.median() - 1.0));
  if (stock.size() >= 3) {
    const BootstrapInterval ci =
        bootstrap_median_diff_ci(aware.samples(), stock.samples());
    std::printf("95%% bootstrap CI on the median difference: [%.1f, %.1f] Mbps\n",
                ci.lo, ci.hi);
  }
  return 0;
}
