// mobility_monitor — a streaming classification tool built on the library's
// trace infrastructure, in the spirit of what an AP vendor would ship for
// debugging: record a CSI/ToF trace from a link, then replay any trace file
// through the classifier and emit a per-second CSV of its decisions.
//
// Usage:
//   mobility_monitor record <file> [static|environmental|micro|macro] [seconds]
//   mobility_monitor classify <file>
//
// The two steps communicate via the CsiTrace binary format, so a trace
// recorded once can be re-analyzed with different classifier settings.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "chan/csi_trace.hpp"
#include "chan/scenario.hpp"
#include "core/mobility_classifier.hpp"
#include "sim/event_queue.hpp"

using namespace mobiwlan;

namespace {

int record(const std::string& path, const std::string& mode, double seconds) {
  MobilityClass cls = MobilityClass::kMacro;
  if (mode == "static") cls = MobilityClass::kStatic;
  else if (mode == "environmental") cls = MobilityClass::kEnvironmental;
  else if (mode == "micro") cls = MobilityClass::kMicro;
  else if (mode != "macro") {
    std::fprintf(stderr, "unknown mode '%s'\n", mode.c_str());
    return 1;
  }

  Rng rng(static_cast<std::uint64_t>(seconds * 1000) ^ 0xbeef);
  Scenario scenario = make_scenario(cls, rng);

  // Sample on the measurement schedule the classifier expects: one full
  // observation (CSI + ToF + RSSI) per 20 ms data-ACK exchange.
  const CsiTrace trace = CsiTrace::record(*scenario.channel, seconds, 0.02);
  if (!trace.save(path)) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  std::printf("recorded %zu samples (%.1f s of %s mobility) to %s\n",
              trace.size(), trace.duration(), to_string(cls).data(), path.c_str());
  return 0;
}

int classify(const std::string& path) {
  const CsiTrace trace = CsiTrace::load(path);
  if (trace.empty()) {
    std::fprintf(stderr, "empty trace\n");
    return 1;
  }

  MobilityClassifier classifier;

  // Use the event queue to multiplex the two measurement streams at their
  // native cadences, exactly as an AP's driver would schedule them.
  EventQueue events;
  const MobilityClassifier::Config& cfg = classifier.config();
  events.schedule_every(0.0, cfg.csi_period_s, [&](double t) {
    classifier.on_csi(t, trace.at_time(t).csi);
  });
  events.schedule_every(0.0, cfg.tof_period_s, [&](double t) {
    classifier.on_tof(t, trace.at_time(t).tof_cycles);
  });

  std::printf("t_s,mode,similarity,rssi_dbm,tof_cycles\n");
  events.schedule_every(1.0, 1.0, [&](double t) {
    const TraceEntry& e = trace.at_time(t);
    std::printf("%.0f,%s,%.4f,%.1f,%.0f\n", t, to_string(classifier.mode()).data(),
                classifier.similarity().value_or(0.0), e.rssi_dbm, e.tof_cycles);
  });
  events.run_until(trace.duration());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 3 && std::strcmp(argv[1], "record") == 0) {
    const std::string mode = argc > 3 ? argv[3] : "macro";
    const double seconds = argc > 4 ? std::atof(argv[4]) : 30.0;
    return record(argv[2], mode, seconds);
  }
  if (argc >= 3 && std::strcmp(argv[1], "classify") == 0) return classify(argv[2]);

  std::fprintf(stderr,
               "usage:\n"
               "  %s record <file> [static|environmental|micro|macro] [seconds]\n"
               "  %s classify <file>\n",
               argv[0], argv[0]);
  return 1;
}
