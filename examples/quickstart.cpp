// quickstart — classify a client's mobility from PHY-layer observations.
//
// This is the smallest end-to-end use of the library:
//   1. build a "testbed" link (AP + client following some motion pattern);
//   2. feed the AP-side MobilityClassifier the CSI and ToF readings it
//      would see on ordinary data-ACK exchanges;
//   3. read back the live mobility decision and the Table-2 protocol
//      parameters a mobility-aware AP would apply.
//
// Usage: quickstart [static|environmental|micro|macro]   (default: macro)
#include <cstdio>
#include <cstring>

#include "chan/scenario.hpp"
#include "core/mobility_classifier.hpp"
#include "core/policy.hpp"

using namespace mobiwlan;

int main(int argc, char** argv) {
  MobilityClass cls = MobilityClass::kMacro;
  if (argc > 1) {
    if (std::strcmp(argv[1], "static") == 0) cls = MobilityClass::kStatic;
    else if (std::strcmp(argv[1], "environmental") == 0) cls = MobilityClass::kEnvironmental;
    else if (std::strcmp(argv[1], "micro") == 0) cls = MobilityClass::kMicro;
    else if (std::strcmp(argv[1], "macro") == 0) cls = MobilityClass::kMacro;
    else {
      std::fprintf(stderr, "usage: %s [static|environmental|micro|macro]\n", argv[0]);
      return 1;
    }
  }

  // 1. A randomized office link with the requested ground-truth motion.
  Rng rng(2014);
  Scenario scenario = make_scenario(cls, rng);
  std::printf("ground truth: %s client, %.1f m from the AP, link SNR %.1f dB\n\n",
              to_string(cls).data(), scenario.channel->true_distance(0.0),
              scenario.channel->snr_db(0.0));

  // 2. The AP observes CSI (every 500 ms here) and ToF (every 20 ms) from
  //    frames it is already exchanging with the client — no client changes.
  MobilityClassifier classifier;
  double next_csi = 0.0;
  std::printf("%6s  %-13s  %-10s  %s\n", "t(s)", "decision", "similarity",
              "mobility-aware parameters (Table 2)");
  for (double t = 0.0; t <= 30.0; t += 0.02) {
    if (t >= next_csi) {
      classifier.on_csi(t, scenario.channel->csi_at(t));
      next_csi += classifier.config().csi_period_s;
    }
    classifier.on_tof(t, scenario.channel->tof_cycles(t));

    // 3. Print the live decision once per second.
    if (std::fmod(t, 2.0) < 0.02 && t > 0.0) {
      const MobilityMode mode = classifier.mode();
      const ProtocolParams params = mobility_params(mode);
      char sim[16] = "--";
      if (classifier.similarity())
        std::snprintf(sim, sizeof(sim), "%.3f", *classifier.similarity());
      std::printf("%6.1f  %-13s  %-10s  agg %.0fms, alpha 1/%.0f, probe %.0fms, "
                  "BF %.0fms%s\n",
                  t, to_string(mode).data(), sim,
                  params.aggregation_limit_s * 1e3,
                  1.0 / params.per_smoothing_alpha, params.probe_interval_s * 1e3,
                  params.bf_update_period_s * 1e3,
                  params.encourage_roaming ? ", steer roaming" : "");
    }
  }
  return 0;
}
