// rate_control_demo — replay one walking channel through all five rate
// adaptation schemes (the §4.3 comparison) and print what each one did.
//
// Every scheme faces the *identical* channel realization: the scenario is
// rebuilt from the same seed, which is this library's equivalent of the
// paper's trace-based emulation.
//
// Usage: rate_control_demo [seed]
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "mac/atheros_ra.hpp"
#include "mac/esnr_ra.hpp"
#include "mac/link_sim.hpp"
#include "mac/sensor_hint_ra.hpp"
#include "mac/softrate_ra.hpp"

using namespace mobiwlan;

namespace {

struct SchemeRun {
  const char* label;
  double goodput = 0.0;
  double per = 0.0;
  int rate_changes = 0;
};

SchemeRun run(const char* label, std::uint64_t seed) {
  Rng rng(seed);
  Scenario scenario = make_scenario(MobilityClass::kMacro, rng);

  LinkSimConfig config;
  config.duration_s = 15.0;
  config.tcp_stall_s = 0.025;

  std::unique_ptr<RateAdapter> ra;
  const std::string name = label;
  if (name == "atheros-ra") {
    ra = std::make_unique<AtherosRa>();
  } else if (name == "motion-aware") {
    ra = std::make_unique<AtherosRa>(make_mobility_aware_atheros_ra());
  } else if (name == "rapidsample") {
    ra = std::make_unique<SensorHintRa>();
    config.run_classifier = false;
    config.provide_sensor_hint = true;
  } else if (name == "softrate") {
    ra = std::make_unique<SoftRateRa>();
    config.run_classifier = false;
    config.provide_phy_feedback = true;
  } else {
    ra = std::make_unique<EsnrRa>();
    config.run_classifier = false;
    config.provide_phy_feedback = true;
  }

  Rng frame_rng(seed + 99);
  const LinkSimResult r = simulate_link(scenario, *ra, config, frame_rng);
  return {label, r.goodput_mbps, r.mean_per,
          static_cast<int>(r.mcs_series.size())};
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;

  std::printf("One 15 s walking channel (seed %llu), TCP download, replayed "
              "through five rate-adaptation schemes:\n\n",
              static_cast<unsigned long long>(seed));
  std::printf("%-14s  %10s  %8s  %s\n", "scheme", "goodput", "PER",
              "rate changes");

  for (const char* label : {"atheros-ra", "motion-aware", "rapidsample",
                            "softrate", "esnr"}) {
    const SchemeRun r = run(label, seed);
    std::printf("%-14s  %7.1f Mb  %7.1f%%  %d\n", r.label, r.goodput,
                100.0 * r.per, r.rate_changes);
  }

  std::printf("\nExpected shape (paper §4.3): ESNR on top (it reads the\n"
              "channel directly), motion-aware Atheros close behind at ~90%%\n"
              "of ESNR with zero client cooperation, then SoftRate, then\n"
              "RapidSample, with the stock Atheros RA last.\n");
  return 0;
}
