// roaming_demo — a client walks an office corridor covered by six APs while
// three roaming schemes manage (or fail to manage) its association:
//   * the stock sticky client (roams only when the signal is nearly gone),
//   * the sensor-hint client (periodic scans whenever the accelerometer
//     reports motion),
//   * the paper's controller-based motion-aware roaming (steers the client
//     only when it is classified as walking away from its serving AP).
//
// Usage: roaming_demo [seed]
#include <cstdio>
#include <cstdlib>

#include "net/roaming.hpp"

using namespace mobiwlan;

int main(int argc, char** argv) {
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 7;

  std::printf("6 APs along a corridor, 35 m apart; one client walking for 90 s\n\n");

  for (auto scheme : {RoamingScheme::kDefault, RoamingScheme::kSensorHint,
                      RoamingScheme::kMotionAware}) {
    // Identical walk for every scheme: rebuild the world from the same seed.
    Rng rng(seed);
    auto trajectory = WlanDeployment::corridor_walk(rng);
    WlanDeployment wlan(WlanDeployment::corridor_layout(), trajectory,
                        ChannelConfig{}, rng);

    RoamingConfig config;
    config.duration_s = 90.0;
    Rng sim_rng(seed + 1);
    const RoamingResult result = simulate_roaming(wlan, scheme, config, sim_rng);

    std::printf("=== %s ===\n", to_string(scheme).data());
    std::printf("  mean throughput: %6.1f Mbps | handoffs: %d | time in "
                "outage: %.1f s\n",
                result.mean_throughput_mbps, result.handoffs, result.outage_s);
    std::printf("  association timeline: ");
    for (const auto& [t, ap] : result.associations)
      std::printf("[%5.1fs -> AP%zu] ", t, ap);
    std::printf("\n\n");
  }

  std::printf("Expected shape: the motion-aware controller hands the client\n"
              "over as soon as it walks away from its AP toward a better one,\n"
              "instead of waiting for the signal to collapse (default) or\n"
              "scanning on a timer (sensor-hint).\n");
  return 0;
}
