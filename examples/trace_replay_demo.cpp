// trace_replay_demo — record a mobility walk once, then replay it.
//
// Records 60 seconds of a macro-mobility walk (every PHY-observable read the
// classifier makes: CSI at the Table-2 cadence, ToF probes) into an MWTR v2
// trace file, then replays the same walk twice from the file alone:
//
//   1. a faithful replay (strict mode) — the classifier sees exactly what it
//      saw live, so its per-second decisions must match bit for bit;
//   2. a degraded replay — the PR-5 fault layer composed onto the trace
//      (FaultedSource over a relaxed TraceSource) drops 30% of the CSI and
//      ToF reads, showing how the same recorded walk classifies when the
//      observable export path is lossy.
//
// The three decision columns print side by side. This is the recorded-
// synthetic loop in miniature; `mobiwlan-bench --trace` gates the same
// property across every protocol loop.
//
// Usage: trace_replay_demo [--seed X] [--duration S] [--drop P] [--keep PATH]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "chan/scenario.hpp"
#include "runtime/classifier_driver.hpp"
#include "trace/source.hpp"
#include "trace/trace_io.hpp"
#include "trace/trace_source.hpp"

using namespace mobiwlan;

namespace {

struct Args {
  std::uint64_t seed = 1;
  double duration_s = 60.0;
  double drop = 0.3;
  std::string path;  // empty: temp file, removed on exit
};

bool parse(int argc, char** argv, Args& args) {
  for (int i = 1; i < argc; i += 2) {
    if (i + 1 >= argc) return false;
    const std::string key = argv[i];
    if (key == "--seed") args.seed = std::strtoull(argv[i + 1], nullptr, 10);
    else if (key == "--duration") args.duration_s = std::atof(argv[i + 1]);
    else if (key == "--drop") args.drop = std::atof(argv[i + 1]);
    else if (key == "--keep") args.path = argv[i + 1];
    else return false;
  }
  return true;
}

const char* mode_name(std::optional<MobilityMode> m) {
  if (!m) return "-";
  switch (*m) {
    case MobilityMode::kStatic: return "static";
    case MobilityMode::kEnvironmental: return "environmental";
    case MobilityMode::kMicro: return "micro";
    case MobilityMode::kMacroToward: return "macro-toward";
    case MobilityMode::kMacroAway: return "macro-away";
    case MobilityMode::kMacroOrbit: return "macro-orbit";
  }
  return "?";
}

using DecisionLog = std::vector<std::pair<double, std::optional<MobilityMode>>>;

DecisionLog run(trace::ObservableSource& src, double duration_s) {
  DecisionLog log;
  runtime::run_classifier_from_source(
      src, 0, duration_s, 10.0,
      [&](double t, std::optional<MobilityMode> m) { log.emplace_back(t, m); });
  return log;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!parse(argc, argv, args)) {
    std::fprintf(stderr,
                 "usage: trace_replay_demo [--seed X] [--duration S] "
                 "[--drop P] [--keep PATH]\n");
    return 1;
  }
  const bool keep = !args.path.empty();
  if (!keep) args.path = "trace_replay_demo.mwtr";

  // ---- record: a macro-mobility walk, every read teed into the trace ------
  Rng rng(args.seed);
  Scenario s = make_scenario(MobilityClass::kMacro, rng);
  DecisionLog live;
  {
    trace::LiveChannelSource channel(*s.channel);
    trace::TraceWriter writer(
        args.path, trace::RecordingSource::header_for(channel, ChannelConfig{}));
    trace::RecordingSource recording(channel, writer);
    live = run(recording, args.duration_s);
    writer.close();
    std::printf("recorded %.0f s macro walk -> %s (%llu records)\n",
                args.duration_s, args.path.c_str(),
                static_cast<unsigned long long>(writer.records_written()));
  }

  // ---- replay 1: faithful (strict — any divergence would throw) -----------
  trace::TraceSource faithful(args.path);
  const DecisionLog replayed = run(faithful, args.duration_s);

  // ---- replay 2: the fault layer composed onto the same trace -------------
  // Relaxed mode with a short hold: replay-time drops shift which reads
  // happen, so queries between recorded reads are served from the previous
  // record while it is fresh instead of failing the replay.
  trace::TraceSource::Config relaxed;
  relaxed.strict = false;
  relaxed.max_age_s = 0.05;
  trace::TraceSource degraded_base(args.path, relaxed);
  FaultPlan plan;
  plan.csi.drop_prob = args.drop;
  plan.tof.drop_prob = args.drop;
  plan.seed = Rng(args.seed).stream(0xFA17).seed();
  trace::FaultedSource degraded(degraded_base, plan);
  const DecisionLog lossy = run(degraded, args.duration_s);

  // ---- side-by-side decisions ---------------------------------------------
  std::printf("\n%6s  %-14s %-14s %-14s\n", "t [s]", "live",
              "replay (strict)", "replay+drops");
  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < live.size(); ++i) {
    const auto strict = i < replayed.size() ? replayed[i].second : std::nullopt;
    const auto faulted = i < lossy.size() ? lossy[i].second : std::nullopt;
    if (strict != live[i].second) ++mismatches;
    std::printf("%6.0f  %-14s %-14s %-14s\n", live[i].first,
                mode_name(live[i].second), mode_name(strict),
                mode_name(faulted));
  }
  std::printf("\nstrict replay: %zu/%zu decisions identical to live\n",
              live.size() - mismatches, live.size());
  std::printf("degraded replay skipped %llu recorded reads (%.0f%% drop plan)\n",
              static_cast<unsigned long long>(degraded_base.counters().skipped),
              args.drop * 100.0);
  if (keep)
    std::printf("trace kept at %s (replay later, or import CSV via "
                "trace::import_csv)\n", args.path.c_str());
  else
    std::remove(args.path.c_str());
  return mismatches == 0 ? 0 : 1;
}
