#include "campus/campus.hpp"

#include <algorithm>
#include <numeric>
#include <utility>

#include "util/alloc_count.hpp"

namespace mobiwlan::campus {

ChannelConfig campus_channel_config() {
  ChannelConfig cfg;
  cfg.n_tx = 1;
  cfg.n_rx = 1;
  cfg.n_subcarriers = 16;
  cfg.n_paths = 4;
  cfg.activity = EnvironmentalActivity::kNone;
  return cfg;
}

CampusConfig campus_default_config() {
  CampusConfig cfg;
  cfg.session.channel = campus_channel_config();
  return cfg;
}

CampusSim::CampusSim(const CampusConfig& config)
    : config_(config),
      map_(config.cols, config.rows, config.pitch_m),
      session_pool_(4096),
      shards_(config.shards == 0 ? 1 : config.shards),
      mailbox_(shards_.size(), config.mailbox_lane_capacity),
      arrivals_root_(Rng(config.master_seed).stream(kArrivalSalt)) {
  config_.shards = shards_.size();
  if (config_.jobs > 1)
    pool_ = std::make_unique<runtime::ThreadPool>(config_.jobs - 1);

  arrival_window_ = config_.arrival_window_epochs < 1
                        ? 1
                        : static_cast<int>(config_.arrival_window_epochs);
  // No materialized schedule: one ascending-id pass buckets ids by their
  // re-derived arrival epoch (8 bytes per not-yet-arrived id); the dwell
  // draw waits until admission, where it continues the id's substream
  // exactly where the old sorted-schedule construction did.
  arrival_buckets_.resize(static_cast<std::size_t>(arrival_window_) + 1);
  for (std::uint64_t id = 0; id < config_.n_sessions; ++id) {
    Rng a = arrivals_root_.stream(id);
    const auto arrival =
        static_cast<std::size_t>(a.uniform_int(1, arrival_window_));
    arrival_buckets_[arrival].push_back(id);
  }

  // Pre-size the shared per-shard sample (serial, once) so the hot phase
  // never allocates.
  const ChannelConfig& ch = config_.session.channel;
  for (Shard& sh : shards_)
    sh.sample.csi.resize(ch.n_tx, ch.n_rx, ch.n_subcarriers);
}

std::uint64_t CampusSim::active() const {
  std::uint64_t n = 0;
  for (const Shard& sh : shards_) n += sh.occupied;
  return n;
}

std::uint64_t CampusSim::deferred_handovers() const {
  std::uint64_t n = 0;
  for (const Shard& sh : shards_) n += sh.deferred;
  return n;
}

std::uint64_t CampusSim::hot_phase_allocs() const {
  std::uint64_t n = 0;
  for (const Shard& sh : shards_) n += sh.hot_allocs;
  return n;
}

template <typename Fn>
void CampusSim::for_each_shard(Fn&& body) {
  if (pool_) {
    // One chunk per shard; parallel_for's return is the epoch barrier.
    pool_->parallel_for(shards_.size(), 1,
                        [&](std::size_t, std::size_t begin, std::size_t end) {
                          for (std::size_t s = begin; s < end; ++s) body(s);
                        });
  } else {
    for (std::size_t s = 0; s < shards_.size(); ++s) body(s);
  }
}

void CampusSim::place(std::size_t dst, SessionPtr sp) {
  Shard& sh = shards_[dst];
  // A mailbox-delivered session one epoch from departure would be staged by
  // its new shard *before* sampling under a start-of-epoch scan; the fused
  // pass stages at the *end* of the previous epoch instead, so catch it here
  // (it never needs a slot). Arrivals can't hit this: dwell >= 2.
  if (sp->depart_epoch() <= epoch_ + 1) {
    sh.departing.push_back(std::move(sp));
    return;
  }
  const std::size_t slot = sh.batch.add_link(sp->channel());
  if (slot >= sh.sessions.size()) sh.sessions.resize(slot + 1);
  sh.sessions[slot] = std::move(sp);
  ++sh.occupied;
  // The fused pass stages every same-epoch departure into `departing`,
  // which can hold at most one entry per occupied slot. Reserving to the
  // slot vector's capacity here (serial phase, O(log n) reallocations)
  // keeps the hot phase structurally allocation-free even through the
  // drain wave after the arrival window closes.
  if (sh.departing.capacity() < sh.sessions.capacity())
    sh.departing.reserve(sh.sessions.capacity());
}

void CampusSim::phase_shard(std::size_t s) {
  Shard& sh = shards_[s];
  const double t = static_cast<double>(epoch_) * config_.session.tick_s;
  const std::size_t n_slots = sh.batch.size();

  // One fused pass: each occupied slot is sampled, observed (the batched
  // Eq.-1 classifier step), MAC-stepped, roamed, and — when its dwell ends
  // next epoch — staged for departure, all while its session/channel state
  // is cache-hot. At campus scale the shard's working set is far beyond L2,
  // so touching each session once per epoch instead of once per sweep is
  // what the throughput gate measures.
  //
  // Bitwise neutrality vs. the multi-sweep form: per-session draw order
  // (sample -> observe -> MAC -> roam) is unchanged, sessions are mutually
  // independent within the phase, and staging a departure at the end of
  // epoch d-1 instead of the start of epoch d is a uniform one-epoch shift
  // for *every* session — the per-epoch id-sorted fold batches concatenate
  // to the identical sequence, so the aggregate folds the same bits.
  // Software prefetch pays for itself only when the shard's working set
  // has outgrown L2 — then every session's lines were evicted since last
  // epoch and the misses (not the arithmetic) dominate the pass. Below
  // ~512 resident sessions (~4 KiB each, so ~2 MiB) the set is cache-
  // resident and the hint chain is pure issue-port overhead (~2x on the
  // 512-session microbench), so it is gated on occupancy. Purely a timing
  // decision: prefetches touch no architectural state, so the digests are
  // identical either way.
  const bool stream_ahead = sh.occupied >= 512;
  std::uint64_t allocs_before = 0;
  if (!pool_) allocs_before = alloc_count();
  for (std::size_t i = 0; i < n_slots; ++i) {
    SessionPtr& sp = sh.sessions[i];
    if (!sp) continue;
    // Stream upcoming slots' working sets in under this slot's synthesis:
    // slot i+1 gets the full set; slot i+2 gets its top-level objects so
    // the dependent buffer pointers are warm when its own full hint issues.
    if (stream_ahead) {
      if (i + 2 < n_slots) {
        if (const Session* nx2 = sh.sessions[i + 2].get()) {
          prefetch_lines(nx2, sizeof(Session));
          sh.batch.prefetch_slot(i + 2);
        }
      }
      if (i + 1 < n_slots) {
        if (const Session* nx = sh.sessions[i + 1].get()) {
          nx->prefetch();
          sh.batch.prefetch_slot(i + 1);
        }
      }
    }
    sh.batch.sample_slot(t, i, sh.sample, sh.scratch);
    sp->observe_step(epoch_, sh.sample);
    sp->mac_step(epoch_, sh.sample);
    sp->maybe_roam(t);
    if (sp->depart_epoch() <= epoch_ + 1) {
      // Dwell ends next epoch: this was the session's last batched step in
      // every partitioning, so it leaves the batch now.
      sh.batch.remove_link(i);
      sh.departing.push_back(std::move(sp));
      --sh.occupied;
      continue;
    }
    const std::size_t dst = map_.shard_of_ap(sp->serving_ap(), shards_.size());
    if (dst == s) continue;
    // Cross-shard mover: leaves through this shard's own SPSC lane. A
    // same-shard roam re-drew the channel realization in place (stable
    // address), so the batch slot needed no update at all.
    if (mailbox_.try_send(s, dst, sp)) {  // consumed only on success
      sh.batch.remove_link(i);
      --sh.occupied;
    } else {
      // Lane full: keep hosting for one more epoch. The session computes
      // the same observables here as it would on dst, so back-pressure is
      // observably invisible — it only shows up in this counter.
      ++sh.deferred;
    }
  }
  if (!pool_) sh.hot_allocs += alloc_count() - allocs_before;
}

void CampusSim::drain_mailbox() {
  for (std::size_t dst = 0; dst < shards_.size(); ++dst) {
    const std::size_t delivered = mailbox_.drain_to(
        dst, [&](SessionPtr sp) { place(dst, std::move(sp)); });
    handovers_sent_ += delivered;
  }
}

void CampusSim::admit_arrivals() {
  if (epoch_ >= arrival_buckets_.size()) return;
  std::vector<std::uint64_t>& bucket = arrival_buckets_[epoch_];
  for (const std::uint64_t id : bucket) {
    // Replay this id's fresh substream past its arrival draw; the dwell
    // draw then continues the stream exactly where one-shot schedule
    // construction would have.
    Rng a = arrivals_root_.stream(id);
    (void)a.uniform_int(1, arrival_window_);
    const auto extra = static_cast<std::uint64_t>(
        a.exponential(config_.mean_extra_dwell_epochs));
    std::uint64_t dwell = config_.min_dwell_epochs + extra;
    if (dwell > config_.max_dwell_epochs) dwell = config_.max_dwell_epochs;
    if (dwell < 2) dwell = 2;  // at least one batched step before departure

    SessionPtr sp = session_pool_.acquire(id, config_.master_seed, map_,
                                          config_.session, epoch_, dwell);
    sp->prime(prime_scratch_, prime_sample_);
    const std::size_t dst = map_.shard_of_ap(sp->serving_ap(), shards_.size());
    place(dst, std::move(sp));
    ++arrived_;
  }
  bucket = {};  // release this epoch's bucket storage
}

void CampusSim::fold_departures() {
  departed_stats_.clear();
  for (Shard& sh : shards_) {
    for (SessionPtr& sp : sh.departing) departed_stats_.push_back(sp->stats());
    sh.departing.clear();  // recycles the sessions into the pool
  }
  if (departed_stats_.empty()) return;
  std::sort(departed_stats_.begin(), departed_stats_.end(),
            [](const SessionStats& x, const SessionStats& y) {
              return x.id < y.id;
            });
  for (const SessionStats& st : departed_stats_) aggregate_.fold(st);
  departed_ += departed_stats_.size();
}

void CampusSim::step_epoch() {
  ++epoch_;

  // One fused parallel phase: within an epoch no shard reads another
  // shard's state (handover only enqueues into this shard's own SPSC
  // lanes), so departures, the hot section, and roam/send need no
  // intermediate barriers.
  for_each_shard([this](std::size_t s) { phase_shard(s); });

  // Serial tail: everything order-sensitive runs here, after the barrier,
  // in fixed (shard id, session id) order.
  drain_mailbox();
  admit_arrivals();
  fold_departures();
}

void CampusSim::run() {
  while (epoch_ < config_.horizon_epochs) step_epoch();
}

}  // namespace mobiwlan::campus
