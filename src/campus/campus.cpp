#include "campus/campus.hpp"

#include <algorithm>
#include <utility>

#include "util/alloc_count.hpp"

namespace mobiwlan::campus {

ChannelConfig campus_channel_config() {
  ChannelConfig cfg;
  cfg.n_tx = 1;
  cfg.n_rx = 1;
  cfg.n_subcarriers = 16;
  cfg.n_paths = 4;
  cfg.activity = EnvironmentalActivity::kNone;
  return cfg;
}

CampusConfig campus_default_config() {
  CampusConfig cfg;
  cfg.session.channel = campus_channel_config();
  return cfg;
}

namespace {

bool id_less(const std::unique_ptr<Session>& a,
             const std::unique_ptr<Session>& b) {
  return a->id() < b->id();
}

}  // namespace

CampusSim::CampusSim(const CampusConfig& config)
    : config_(config),
      map_(config.cols, config.rows, config.pitch_m),
      shards_(config.shards == 0 ? 1 : config.shards),
      mailbox_(shards_.size(), config.mailbox_lane_capacity) {
  config_.shards = shards_.size();
  if (config_.jobs > 1)
    pool_ = std::make_unique<runtime::ThreadPool>(config_.jobs - 1);

  // The arrival schedule is drawn per session id from its own counter-based
  // substream, so the (epoch, dwell) pair for id i is independent of every
  // other id and of the iteration order here.
  const Rng arrivals_root = Rng(config_.master_seed).stream(kArrivalSalt);
  schedule_.reserve(config_.n_sessions);
  const int window =
      config_.arrival_window_epochs < 1
          ? 1
          : static_cast<int>(config_.arrival_window_epochs);
  for (std::uint64_t id = 0; id < config_.n_sessions; ++id) {
    Rng a = arrivals_root.stream(id);
    const auto epoch = static_cast<std::uint64_t>(a.uniform_int(1, window));
    const auto extra = static_cast<std::uint64_t>(
        a.exponential(config_.mean_extra_dwell_epochs));
    std::uint64_t dwell = config_.min_dwell_epochs + extra;
    if (dwell > config_.max_dwell_epochs) dwell = config_.max_dwell_epochs;
    if (dwell < 2) dwell = 2;  // at least one batched step before departure
    schedule_.push_back(Arrival{epoch, id, dwell});
  }
  std::sort(schedule_.begin(), schedule_.end(),
            [](const Arrival& x, const Arrival& y) {
              return x.epoch != y.epoch ? x.epoch < y.epoch : x.id < y.id;
            });
}

std::uint64_t CampusSim::active() const {
  std::uint64_t n = 0;
  for (const Shard& sh : shards_) n += sh.sessions.size();
  return n;
}

template <typename Fn>
void CampusSim::for_each_shard(Fn&& body) {
  if (pool_) {
    // One chunk per shard; parallel_for's return is the epoch barrier.
    pool_->parallel_for(shards_.size(), 1,
                        [&](std::size_t, std::size_t begin, std::size_t end) {
                          for (std::size_t s = begin; s < end; ++s) body(s);
                        });
  } else {
    for (std::size_t s = 0; s < shards_.size(); ++s) body(s);
  }
}

void CampusSim::phase_prepare(std::size_t s) {
  Shard& sh = shards_[s];
  auto& v = sh.sessions;

  // Stage departures (dwell expired) before the batch is rebuilt, so a
  // session's last batched step is epoch depart-1 in every partitioning.
  std::size_t w = 0;
  for (auto& sp : v) {
    if (sp->depart_epoch() <= epoch_)
      sh.departing.push_back(std::move(sp));
    else
      v[w++] = std::move(sp);
  }
  v.resize(w);

  sh.batch.clear();
  const std::size_t presized = sh.samples.size();
  if (sh.samples.size() < v.size()) sh.samples.resize(v.size());
  const ChannelConfig& ch = config_.session.channel;
  for (std::size_t i = 0; i < v.size(); ++i) {
    sh.batch.add_link(v[i]->channel());
    // Pre-size fresh sample slots here so the hot phase never allocates.
    if (i >= presized)
      sh.samples[i].csi.resize(ch.n_tx, ch.n_rx, ch.n_subcarriers);
  }
}

void CampusSim::phase_hot(std::size_t s) {
  Shard& sh = shards_[s];
  const std::size_t n = sh.sessions.size();
  if (n == 0) return;
  const double t = static_cast<double>(epoch_) * config_.session.tick_s;
  sh.batch.sample_range(t, 0, n, sh.samples.data(), sh.scratch);
  for (std::size_t i = 0; i < n; ++i)
    sh.sessions[i]->step(epoch_, sh.samples[i]);
}

void CampusSim::phase_post(std::size_t s) {
  Shard& sh = shards_[s];
  auto& v = sh.sessions;
  const double t = static_cast<double>(epoch_) * config_.session.tick_s;
  std::size_t w = 0;
  for (auto& sp : v) {
    sp->maybe_roam(t);
    const std::size_t dst =
        map_.shard_of_ap(sp->serving_ap(), shards_.size());
    if (dst != s) {
      if (mailbox_.try_send(s, dst, sp)) continue;  // moved to dst's lane
      // Lane full: keep hosting for one more epoch. The session computes
      // the same observables here as it would on dst, so back-pressure is
      // observably invisible — it only shows up in this counter.
      ++deferred_handovers_;
    }
    v[w++] = std::move(sp);
  }
  v.resize(w);
}

void CampusSim::drain_mailbox() {
  for (std::size_t dst = 0; dst < shards_.size(); ++dst) {
    Shard& sh = shards_[dst];
    const std::size_t delivered =
        mailbox_.drain_to(dst, [&](std::unique_ptr<Session> sp) {
          sh.sessions.push_back(std::move(sp));
        });
    handovers_sent_ += delivered;
    if (delivered > 0)
      std::sort(sh.sessions.begin(), sh.sessions.end(), id_less);
  }
}

void CampusSim::admit_arrivals() {
  // Early-out keeps arrival-free epochs allocation-free (the steady-state
  // phase the campus_step perf case gates).
  if (next_arrival_ >= schedule_.size() ||
      schedule_[next_arrival_].epoch != epoch_)
    return;
  std::vector<bool> touched(shards_.size(), false);
  while (next_arrival_ < schedule_.size() &&
         schedule_[next_arrival_].epoch == epoch_) {
    const Arrival& a = schedule_[next_arrival_++];
    auto sp = std::make_unique<Session>(a.id, config_.master_seed, map_,
                                        config_.session, a.epoch, a.dwell);
    sp->prime(prime_scratch_, prime_sample_);
    const std::size_t dst =
        map_.shard_of_ap(sp->serving_ap(), shards_.size());
    shards_[dst].sessions.push_back(std::move(sp));
    touched[dst] = true;
    ++arrived_;
  }
  for (std::size_t s = 0; s < shards_.size(); ++s)
    if (touched[s])
      std::sort(shards_[s].sessions.begin(), shards_[s].sessions.end(),
                id_less);
}

void CampusSim::fold_departures() {
  departed_stats_.clear();
  for (Shard& sh : shards_) {
    for (auto& sp : sh.departing) departed_stats_.push_back(sp->stats());
    sh.departing.clear();
  }
  if (departed_stats_.empty()) return;
  std::sort(departed_stats_.begin(), departed_stats_.end(),
            [](const SessionStats& x, const SessionStats& y) {
              return x.id < y.id;
            });
  for (const SessionStats& st : departed_stats_) aggregate_.fold(st);
  departed_ += departed_stats_.size();
}

void CampusSim::step_epoch() {
  ++epoch_;

  for_each_shard([this](std::size_t s) { phase_prepare(s); });

  const std::uint64_t allocs_before = alloc_count();
  for_each_shard([this](std::size_t s) { phase_hot(s); });
  if (!pool_) hot_phase_allocs_ += alloc_count() - allocs_before;

  for_each_shard([this](std::size_t s) { phase_post(s); });

  // Serial tail: everything order-sensitive runs here, between barriers,
  // in fixed (shard id, session id) order.
  drain_mailbox();
  admit_arrivals();
  fold_departures();
}

void CampusSim::run() {
  while (epoch_ < config_.horizon_epochs) step_epoch();
}

}  // namespace mobiwlan::campus
