// campus.hpp — campus-scale sharded deployment with live client churn.
//
// CampusSim runs thousands of APs partitioned into shards. Each shard owns
// a ChannelBatch over the sessions it currently hosts and steps them with
// the batched engine; client sessions arrive by a seeded process, walk
// between shards, and depart, folding their statistics into a streamed
// aggregate (stats_stream.hpp) — per-session records are never
// materialized. Cross-shard handover travels through the bounded lock-free
// HandoverMailbox (mailbox.hpp).
//
// Determinism contract (the property the shard-invariance suite gates):
// every per-session observable — and therefore the campus aggregate — is
// bitwise identical for any shard count and any worker count. Three
// mechanisms carry the proof:
//
//   1. Session state is a pure function of (master seed, session id, time):
//      all randomness comes from counter-derived Rng substreams keyed by
//      the session id, never by the hosting shard or worker (session.hpp).
//   2. Epochs are barriered: the parallel phases (prepare / hot step /
//      handover post) each end at a ThreadPool::parallel_for barrier, and
//      everything order-sensitive (mailbox drain, arrivals, departure
//      folding) runs serially between barriers in fixed (shard id, session
//      id) order. Worker count can change who executes a shard, never what
//      the shard computes.
//   3. Handover moves the Session object wholesale — classifier
//      hold-then-decay state, rate-adaptation state, channel RNG and all —
//      so hosting is invisible. A handover deferred by mailbox back-pressure
//      just steps one more epoch in the source shard, which by (1) computes
//      the same observables the destination would have.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "campus/mailbox.hpp"
#include "campus/session.hpp"
#include "campus/stats_stream.hpp"
#include "chan/channel_batch.hpp"
#include "runtime/thread_pool.hpp"

namespace mobiwlan::campus {

/// Campus-wide knobs. The defaults are the `--campus` bench scenario:
/// a 32x32 AP grid (1024 APs) absorbing 100k sessions over an 80-epoch
/// arrival window, everyone departed by the 130-epoch horizon.
struct CampusConfig {
  std::size_t cols = 32;             ///< AP grid columns
  std::size_t rows = 32;             ///< AP grid rows
  double pitch_m = 30.0;             ///< AP spacing
  std::size_t shards = 4;            ///< partition of the AP index space
  std::size_t jobs = 1;              ///< worker threads stepping shards
  std::uint64_t master_seed = 20140204;  // runtime::kMasterSeed

  std::uint64_t n_sessions = 100000;
  std::uint64_t arrival_window_epochs = 80;  ///< arrivals in epochs [1, window]
  std::uint64_t min_dwell_epochs = 4;
  double mean_extra_dwell_epochs = 8.0;      ///< exponential tail on dwell
  std::uint64_t max_dwell_epochs = 40;
  std::uint64_t horizon_epochs = 130;        ///< epochs run() executes

  std::size_t mailbox_lane_capacity = 1024;  ///< per (src,dst) lane bound

  SessionParams session;  ///< per-session knobs (campus_channel_config() etc.)
};

/// The ChannelConfig every campus session uses unless overridden: a light
/// 1x1 link with 16 subcarriers and 4 scatterer paths, so a hundred
/// thousand sessions stay affordable while every classifier-relevant
/// mechanism (per-path phase rotation, ToF trend, shadowing) is intact.
ChannelConfig campus_channel_config();

/// CampusConfig with campus_channel_config() applied — the `--campus`
/// scenario defaults.
CampusConfig campus_default_config();

/// The sharded campus simulation. Construct, then run() (or step_epoch()
/// in a loop); read the aggregate and conservation counters afterwards.
class CampusSim {
 public:
  explicit CampusSim(const CampusConfig& config);

  /// Advances one epoch: barriered parallel phases over shards (stage
  /// departures + rebuild batches; batched sample + step; roam + handover
  /// send), then the serial tail (mailbox drain, arrivals, departure fold).
  void step_epoch();

  /// Runs step_epoch() up to config.horizon_epochs.
  void run();

  const CampusConfig& config() const { return config_; }
  const CampusMap& map() const { return map_; }
  std::uint64_t epoch() const { return epoch_; }

  /// The streamed campus rollup over every departed session.
  const CampusAggregate& aggregate() const { return aggregate_; }

  // -- conservation + health counters (the soak test's invariants) ---------
  std::uint64_t arrived() const { return arrived_; }
  std::uint64_t departed() const { return departed_; }
  std::uint64_t active() const;            ///< sessions currently hosted
  std::uint64_t handovers_sent() const { return handovers_sent_; }
  std::uint64_t deferred_handovers() const { return deferred_handovers_; }
  std::size_t mailbox_max_depth() const { return mailbox_.max_depth(); }

  /// Heap allocations observed inside the hot phase (batched sample + step)
  /// since construction. Only meters when jobs == 1 (the serial soak
  /// configuration): with a pool, the phase-dispatch std::function itself
  /// allocates on the calling thread. Counts only advance when the
  /// mobiwlan_alloc_hook override is linked.
  std::uint64_t hot_phase_allocs() const { return hot_phase_allocs_; }

  /// Per-shard session count (tests assert the partition actually spreads).
  std::size_t shard_session_count(std::size_t shard) const {
    return shards_[shard].sessions.size();
  }

 private:
  struct Shard {
    std::vector<std::unique_ptr<Session>> sessions;  ///< ascending id
    std::vector<std::unique_ptr<Session>> departing;  ///< staged this epoch
    ChannelBatch batch;
    std::vector<ChannelSample> samples;
    ChannelBatch::Scratch scratch;  ///< one worker per shard per phase
  };

  struct Arrival {
    std::uint64_t epoch;
    std::uint64_t id;
    std::uint64_t dwell;
  };

  template <typename Fn>
  void for_each_shard(Fn&& body);  ///< parallel when a pool exists; barrier

  void phase_prepare(std::size_t s);   // departures out, batch rebuilt
  void phase_hot(std::size_t s);       // batched sample + step (zero-alloc)
  void phase_post(std::size_t s);      // roam, handover send or defer
  void drain_mailbox();                // serial, fixed (dst, src) order
  void admit_arrivals();               // serial, ascending (epoch, id)
  void fold_departures();              // serial, ascending session id

  CampusConfig config_;
  CampusMap map_;
  std::vector<Shard> shards_;
  HandoverMailbox<std::unique_ptr<Session>> mailbox_;
  std::unique_ptr<runtime::ThreadPool> pool_;  ///< null when jobs == 1

  std::vector<Arrival> schedule_;  ///< sorted by (epoch, id)
  std::size_t next_arrival_ = 0;

  // Serial-phase scratch, reused across epochs.
  WirelessChannel::PathScratch prime_scratch_;
  ChannelSample prime_sample_;
  std::vector<SessionStats> departed_stats_;

  CampusAggregate aggregate_;
  std::uint64_t epoch_ = 0;
  std::uint64_t arrived_ = 0;
  std::uint64_t departed_ = 0;
  std::uint64_t handovers_sent_ = 0;
  std::uint64_t deferred_handovers_ = 0;
  std::uint64_t hot_phase_allocs_ = 0;
};

}  // namespace mobiwlan::campus
