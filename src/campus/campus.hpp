// campus.hpp — campus-scale sharded deployment with live client churn.
//
// CampusSim runs thousands of APs partitioned into shards. Each shard owns
// a ChannelBatch over the sessions it currently hosts and steps them with
// the batched engine; client sessions arrive by a seeded process, walk
// between shards, and depart, folding their statistics into a streamed
// aggregate (stats_stream.hpp) — per-session records are never
// materialized. Cross-shard handover travels through the bounded lock-free
// HandoverMailbox (mailbox.hpp).
//
// Scale mechanics (DESIGN.md §8): sessions live in a slab pool
// (session_pool.hpp) and are recycled across arrivals without touching the
// global allocator; arrivals are streamed from their counter-based RNG
// substreams instead of a materialized schedule (O(not-yet-arrived) ids, a
// single 8-byte word each, instead of a sorted 24-byte-per-session vector);
// and shard batch membership is incremental — a session occupies one batch
// slot from admission to departure, and only churned links touch the SoA
// planes. Same-shard roams re-draw the channel realization in place at a
// stable address, so they touch no batch state at all.
//
// Determinism contract (the property the shard-invariance suite gates):
// every per-session observable — and therefore the campus aggregate — is
// bitwise identical for any shard count and any worker count. Three
// mechanisms carry the proof:
//
//   1. Session state is a pure function of (master seed, session id, time):
//      all randomness comes from counter-derived Rng substreams keyed by
//      the session id, never by the hosting shard or worker (session.hpp).
//      Batch slot order is therefore irrelevant to the bits a session
//      computes — slots only decide which out[] element receives them.
//   2. Epochs are barriered: the fused parallel phase (stage departures,
//      batched sample + step, roam + handover send) runs one shard per
//      worker with no cross-shard communication except SPSC mailbox lanes
//      written by their owning source shard, and ends at a
//      ThreadPool::parallel_for barrier. Everything order-sensitive
//      (mailbox drain, arrivals, departure folding) runs serially after the
//      barrier in fixed (shard id, session id) order. Worker count can
//      change who executes a shard, never what the shard computes.
//   3. Handover moves the Session object wholesale — classifier
//      hold-then-decay state, rate-adaptation state, channel RNG and all —
//      so hosting is invisible. A handover deferred by mailbox back-pressure
//      just steps one more epoch in the source shard, which by (1) computes
//      the same observables the destination would have.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "campus/mailbox.hpp"
#include "campus/session.hpp"
#include "campus/session_pool.hpp"
#include "campus/stats_stream.hpp"
#include "chan/channel_batch.hpp"
#include "runtime/thread_pool.hpp"

namespace mobiwlan::campus {

/// Campus-wide knobs. The defaults are the `--campus` bench scenario:
/// a 32x32 AP grid (1024 APs) absorbing 100k sessions over an 80-epoch
/// arrival window, everyone departed by the 130-epoch horizon.
struct CampusConfig {
  std::size_t cols = 32;             ///< AP grid columns
  std::size_t rows = 32;             ///< AP grid rows
  double pitch_m = 30.0;             ///< AP spacing
  std::size_t shards = 4;            ///< partition of the AP index space
  std::size_t jobs = 1;              ///< worker threads stepping shards
  std::uint64_t master_seed = 20140204;  // runtime::kMasterSeed

  std::uint64_t n_sessions = 100000;
  std::uint64_t arrival_window_epochs = 80;  ///< arrivals in epochs [1, window]
  std::uint64_t min_dwell_epochs = 4;
  double mean_extra_dwell_epochs = 8.0;      ///< exponential tail on dwell
  std::uint64_t max_dwell_epochs = 40;
  std::uint64_t horizon_epochs = 130;        ///< epochs run() executes

  std::size_t mailbox_lane_capacity = 1024;  ///< per (src,dst) lane bound

  SessionParams session;  ///< per-session knobs (campus_channel_config() etc.)
};

/// The ChannelConfig every campus session uses unless overridden: a light
/// 1x1 link with 16 subcarriers and 4 scatterer paths, so a hundred
/// thousand sessions stay affordable while every classifier-relevant
/// mechanism (per-path phase rotation, ToF trend, shadowing) is intact.
ChannelConfig campus_channel_config();

/// CampusConfig with campus_channel_config() applied — the `--campus`
/// scenario defaults.
CampusConfig campus_default_config();

/// The sharded campus simulation. Construct, then run() (or step_epoch()
/// in a loop); read the aggregate and conservation counters afterwards.
class CampusSim {
 public:
  explicit CampusSim(const CampusConfig& config);

  /// Advances one epoch: one barriered parallel phase over shards — a
  /// single fused pass per shard (per slot: batched sample, classifier
  /// observe, MAC, roam/handover send, end-of-dwell staging) — then the
  /// serial tail (mailbox drain, streamed arrivals, departure fold).
  void step_epoch();

  /// Runs step_epoch() up to config.horizon_epochs.
  void run();

  const CampusConfig& config() const { return config_; }
  const CampusMap& map() const { return map_; }
  std::uint64_t epoch() const { return epoch_; }

  /// The streamed campus rollup over every departed session.
  const CampusAggregate& aggregate() const { return aggregate_; }

  // -- conservation + health counters (the soak test's invariants) ---------
  std::uint64_t arrived() const { return arrived_; }
  std::uint64_t departed() const { return departed_; }
  std::uint64_t active() const;            ///< sessions currently hosted
  std::uint64_t handovers_sent() const { return handovers_sent_; }
  std::uint64_t deferred_handovers() const;
  std::size_t mailbox_max_depth() const { return mailbox_.max_depth(); }

  /// Heap allocations observed inside the fused parallel phase since
  /// construction. Only meters when
  /// jobs == 1 (the serial soak configuration); counts only advance when
  /// the mobiwlan_alloc_hook override is linked. Slot-stable batches plus
  /// pooled sessions make this zero in steady state.
  std::uint64_t hot_phase_allocs() const;

  /// Sessions a shard currently hosts (tests assert the partition spreads).
  std::size_t shard_session_count(std::size_t shard) const {
    return shards_[shard].occupied;
  }

  /// Sessions the pool has constructed (peak concurrency high-water mark);
  /// the memory actually held is this count regardless of total arrivals.
  std::size_t pool_sessions() const { return session_pool_.constructed(); }

 private:
  struct Shard {
    // Slot-aligned with `batch`: sessions[i] owns the session whose channel
    // sits in batch slot i; a departed or handed-over slot leaves a nullptr
    // hole, and ChannelBatch's LIFO free list hands the same slot to the
    // next admission. One ChannelSample serves the whole shard: the fused
    // pass consumes each sample before taking the next, so nothing per-slot
    // is retained — at campus scale that removes megabytes of sample planes
    // from the per-epoch working set.
    std::vector<SessionPtr> sessions;
    std::vector<SessionPtr> departing;  ///< staged this epoch, folded serially
    ChannelBatch batch;
    ChannelSample sample;           ///< reused slot to slot (memory-bound!)
    ChannelBatch::Scratch scratch;  ///< one worker per shard per phase
    std::size_t occupied = 0;       ///< non-hole slots
    std::uint64_t deferred = 0;     ///< back-pressure deferrals (this shard)
    std::uint64_t hot_allocs = 0;   ///< metered only when jobs == 1
  };

  template <typename Fn>
  void for_each_shard(Fn&& body);  ///< parallel when a pool exists; barrier

  void phase_shard(std::size_t s);     // fused parallel phase for one shard
  void drain_mailbox();                // serial, fixed (dst, src) order
  void admit_arrivals();               // serial, ascending id within epoch
  void fold_departures();              // serial, ascending session id
  void place(std::size_t dst, SessionPtr sp);  // slot insert (serial phases)

  CampusConfig config_;
  CampusMap map_;
  // The pool outlives shards_ and mailbox_ (declared first, destroyed
  // last): their SessionPtrs release into it on teardown.
  SessionPool session_pool_;
  std::vector<Shard> shards_;
  HandoverMailbox<SessionPtr> mailbox_;
  std::unique_ptr<runtime::ThreadPool> pool_;  ///< null when jobs == 1

  // Streamed arrivals: one construction-time pass re-derives every id's
  // counter-based arrival draw (a pure function of (master seed, id), so
  // re-deriving is free of draw-order coupling) and buckets the ids by
  // arrival epoch, ascending within each bucket — the old sorted-schedule
  // admission order, at 8 bytes per not-yet-arrived id. Each epoch admits
  // its bucket and releases it; the dwell draw happens at admission,
  // continuing the id's substream exactly where schedule construction
  // would have.
  std::vector<std::vector<std::uint64_t>> arrival_buckets_;
  Rng arrivals_root_;
  int arrival_window_ = 1;

  // Serial-phase scratch, reused across epochs.
  ChannelBatch::Scratch prime_scratch_;
  ChannelSample prime_sample_;
  std::vector<SessionStats> departed_stats_;

  CampusAggregate aggregate_;
  std::uint64_t epoch_ = 0;
  std::uint64_t arrived_ = 0;
  std::uint64_t departed_ = 0;
  std::uint64_t handovers_sent_ = 0;
};

}  // namespace mobiwlan::campus
