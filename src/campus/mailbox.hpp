// mailbox.hpp — the bounded lock-free handover mailbox between campus shards.
//
// Cross-shard handover is the only communication between shards inside an
// epoch, and it must never serialize the shard step loops on a mutex.
// HandoverMailbox arranges S*S SPSC rings (runtime/spsc_ring.hpp) into the
// multi-producer/single-consumer shape the campus needs — every
// (source, destination) shard pair gets a private lane, so no two producers
// ever touch the same ring — and drains a destination's lanes in fixed
// source order, which keeps delivery order a pure function of the topology
// rather than of thread timing.
//
// Capacity is a hard bound: try_send on a full lane fails instead of
// blocking, and the campus treats a failed handover push as "carry the
// session one more epoch in the source shard" — back-pressure degrades to
// deferred bookkeeping, never to a deadlock or a dropped session. Because a
// session computes identical observables wherever it is hosted, a deferred
// transfer is observably invisible (see DESIGN.md §8).
#pragma once

#include <cstddef>
#include <memory>
#include <utility>
#include <vector>

#include "runtime/spsc_ring.hpp"

namespace mobiwlan::campus {

/// S*S SPSC lanes indexed (source, destination): a bounded MPSC mailbox per
/// destination shard built from per-sender SPSC lanes, giving FIFO delivery
/// per sender and a deterministic drain order across senders.
///
/// Threading contract (the epoch-barrier discipline): during a parallel
/// phase, the thread stepping shard s is the sole producer on every lane
/// (s, *); after the barrier, a single thread drains. The barrier provides
/// the cross-epoch happens-before; the rings provide it within an epoch.
template <typename T>
class HandoverMailbox {
 public:
  HandoverMailbox(std::size_t shards, std::size_t lane_capacity)
      : shards_(shards) {
    lanes_.reserve(shards * shards);
    for (std::size_t i = 0; i < shards * shards; ++i)
      lanes_.push_back(
          std::make_unique<runtime::SpscRing<T>>(lane_capacity));
  }

  std::size_t shards() const { return shards_; }
  std::size_t lane_capacity() const { return lanes_[0]->capacity(); }

  /// Producer: enqueue onto the (src, dst) lane. The message is consumed
  /// only on success; false means the lane is full and the caller keeps it
  /// (the campus retries next epoch).
  bool try_send(std::size_t src, std::size_t dst, T& msg) {
    return lane(src, dst).try_push(msg);
  }

  /// Consumer: pop every queued message for `dst`, lanes in ascending
  /// source order, FIFO within a lane, calling `fn(msg)` for each. Also
  /// updates the high-water depth probe. Returns messages delivered.
  template <typename Fn>
  std::size_t drain_to(std::size_t dst, Fn&& fn) {
    std::size_t delivered = 0;
    for (std::size_t src = 0; src < shards_; ++src) {
      runtime::SpscRing<T>& l = lane(src, dst);
      const std::size_t depth = l.size();
      if (depth > max_depth_) max_depth_ = depth;
      T msg;
      while (l.try_pop(msg)) {
        fn(std::move(msg));
        ++delivered;
      }
    }
    return delivered;
  }

  /// Highest per-lane occupancy ever observed at drain time — the soak
  /// test's bounded-depth probe. Consumer-side only.
  std::size_t max_depth() const { return max_depth_; }

 private:
  runtime::SpscRing<T>& lane(std::size_t src, std::size_t dst) {
    return *lanes_[src * shards_ + dst];
  }

  std::size_t shards_;
  // One allocation per lane: SpscRing is pinned (atomics, deleted moves),
  // and separate allocations keep each lane's cursors on their own lines.
  std::vector<std::unique_ptr<runtime::SpscRing<T>>> lanes_;
  std::size_t max_depth_ = 0;
};

}  // namespace mobiwlan::campus
