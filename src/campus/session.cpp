#include "campus/session.hpp"

#include <algorithm>

#include "phy/error_model.hpp"
#include "phy/mcs.hpp"

namespace mobiwlan::campus {

std::size_t CampusMap::nearest_ap(Vec2 p) const {
  const auto clamp_index = [](double v, std::size_t n) -> std::size_t {
    if (v <= 0.0) return 0;
    const auto i = static_cast<std::size_t>(v + 0.5);
    return i >= n ? n - 1 : i;
  };
  const std::size_t col = clamp_index((p.x - origin_.x) / pitch_m_, cols_);
  const std::size_t row = clamp_index((p.y - origin_.y) / pitch_m_, rows_);
  return row * cols_ + col;
}

CampusWalk::CampusWalk(Vec2 home, Vec2 bounds_min, Vec2 bounds_max, double t0,
                       double leg_s, double wander_m, std::size_t n_legs,
                       std::uint64_t seed) {
  rebuild(home, bounds_min, bounds_max, t0, leg_s, wander_m, n_legs, seed);
}

void CampusWalk::rebuild(Vec2 home, Vec2 bounds_min, Vec2 bounds_max,
                         double t0, double leg_s, double wander_m,
                         std::size_t n_legs, std::uint64_t seed) {
  t0_ = t0;
  leg_s_ = leg_s;
  memo_t_ = std::numeric_limits<double>::quiet_NaN();
  waypoints_.clear();
  waypoints_.reserve(n_legs + 1);
  waypoints_.push_back(home);
  const Rng root(seed);
  Vec2 p = home;
  for (std::size_t k = 1; k <= n_legs; ++k) {
    // One counter-derived substream per leg: waypoint k never depends on
    // how many draws any other component took.
    Rng leg = root.stream(k);
    p.x = std::clamp(p.x + leg.uniform(-wander_m, wander_m), bounds_min.x,
                     bounds_max.x);
    p.y = std::clamp(p.y + leg.uniform(-wander_m, wander_m), bounds_min.y,
                     bounds_max.y);
    waypoints_.push_back(p);
  }
}

Vec2 CampusWalk::position(double t) const {
  if (t == memo_t_) return memo_pos_;
  const double tau = t - t0_;
  Vec2 pos;
  if (tau <= 0.0) {
    pos = waypoints_.front();
  } else {
    const double legf = tau / leg_s_;
    const auto k = static_cast<std::size_t>(legf);
    if (k + 1 >= waypoints_.size()) {
      pos = waypoints_.back();
    } else {
      const double f = legf - static_cast<double>(k);
      const Vec2 a = waypoints_[k];
      const Vec2 b = waypoints_[k + 1];
      pos = {a.x + (b.x - a.x) * f, a.y + (b.y - a.y) * f};
    }
  }
  memo_t_ = t;
  memo_pos_ = pos;
  return pos;
}

Session::Session(std::uint64_t id, std::uint64_t master_seed,
                 const CampusMap& map, const SessionParams& params,
                 std::uint64_t arrival_epoch, std::uint64_t dwell_epochs)
    : map_(map),
      params_(params),
      master_seed_(master_seed),
      // Non-owning alias of the in-object walk (empty owner: no control
      // block, never deletes). &walk_ is stable — sessions are pool slots.
      walk_ref_(std::shared_ptr<const CampusWalk>(), &walk_),
      classifier_(params.classifier),
      ra_(make_mobility_aware_atheros_ra()) {
  reinit(id, arrival_epoch, dwell_epochs);
}

void Session::reinit(std::uint64_t id, std::uint64_t arrival_epoch,
                     std::uint64_t dwell_epochs) {
  base_ = Rng(master_seed_).stream(kSessionSalt).stream(id);
  mac_rng_ = base_.stream(kMacSalt);
  classifier_.reset();
  ra_.reset();
  stats_ = SessionStats{};
  stats_.id = id;
  stats_.arrival_epoch = arrival_epoch;
  stats_.depart_epoch = arrival_epoch + dwell_epochs;

  Rng home_rng = base_.stream(kHomeSalt);
  const Vec2 lo = map_.bounds_min();
  const Vec2 hi = map_.bounds_max();
  const Vec2 home{home_rng.uniform(lo.x, hi.x), home_rng.uniform(lo.y, hi.y)};
  const double t0 = static_cast<double>(arrival_epoch) * params_.tick_s;
  const double dwell_s = static_cast<double>(dwell_epochs) * params_.tick_s;
  const auto n_legs =
      static_cast<std::size_t>(dwell_s / params_.walk_leg_s) + 2;
  walk_.rebuild(home, lo, hi, t0, params_.walk_leg_s, params_.walk_wander_m,
                n_legs, base_.stream(kWalkSalt).seed());
  associate(map_.nearest_ap(home));
}

void Session::associate(std::size_t ap) {
  serving_ap_ = ap;
  // The channel realization is keyed by (session, AP): revisiting an AP
  // replays the same scatterer field — deterministic, and independent of
  // when or from which shard the association happens. The channel object is
  // built once per pool slot and re-drawn in place afterwards, so its
  // address — and the ChannelBatch slot holding it — survives both roams
  // and session recycling.
  const Rng ch_rng =
      base_.stream(kChannelSalt).stream(static_cast<std::uint64_t>(ap));
  if (channel_) {
    channel_->reinit(map_.ap_position(ap), ch_rng);
  } else {
    channel_ = std::make_unique<WirelessChannel>(
        params_.channel, map_.ap_position(ap), walk_ref_, ch_rng);
  }
}

void Session::prime(ChannelBatch::Scratch& scratch, ChannelSample& sample) {
  const double t0 =
      static_cast<double>(stats_.arrival_epoch) * params_.tick_s;
  // Two consecutive samples one tick apart: the association burst that
  // anchors the classifier's similarity stream (and takes its one-time
  // last_csi_/scratch allocations) before the batched hot loop sees the
  // session. The batched kernels are used here in EVERY partitioning, so
  // the digest never mixes per-link and batched bits for the same step —
  // and, since those kernels are bitwise tier-invariant, the digest is the
  // same on every SIMD tier.
  ChannelBatch::sample_link(*channel_, t0 - params_.tick_s, sample, scratch);
  observe(t0 - params_.tick_s, stats_.arrival_epoch, sample);
  ChannelBatch::sample_link(*channel_, t0, sample, scratch);
  observe(t0, stats_.arrival_epoch, sample);
}

void Session::observe(double t, std::uint64_t epoch,
                      const ChannelSample& sample) {
  ++stats_.steps;
  stats_.sum_rssi_dbm += sample.rssi_dbm;
  stats_.sum_tof_cycles += sample.tof_cycles;
  classifier_.on_csi(t, sample.csi);
  classifier_.on_tof(t, sample.tof_cycles);
  double sim_word = -1.0;  // sentinel: similarity not established yet
  if (const auto sim = classifier_.similarity()) {
    stats_.sum_similarity += *sim;
    ++stats_.similarity_steps;
    sim_word = *sim;
  }
  const MobilityMode mode = classifier_.mode();
  ++stats_.mode_steps[static_cast<std::size_t>(mode)];

  std::uint64_t d = stats_.digest;
  d = fnv1a_mix(d, sample.rssi_dbm);
  d = fnv1a_mix(d, sample.tof_cycles);
  d = fnv1a_mix(d, sim_word);
  d = fnv1a_mix(d, static_cast<std::uint64_t>(mode));
  d = fnv1a_mix(d, static_cast<std::uint64_t>(serving_ap_));
  d = fnv1a_mix(d, epoch);
  stats_.digest = d;
}

void Session::step(std::uint64_t epoch, const ChannelSample& sample) {
  observe_step(epoch, sample);
  mac_step(epoch, sample);
}

void Session::observe_step(std::uint64_t epoch, const ChannelSample& sample) {
  observe(static_cast<double>(epoch) * params_.tick_s, epoch, sample);
}

void Session::mac_step(std::uint64_t epoch, const ChannelSample& sample) {
  const double t = static_cast<double>(epoch) * params_.tick_s;

  // One rate-adaptation exchange per tick: the mobility-aware Atheros RA
  // (§4.2) keyed by the classifier's hold-then-decay decision, per-MPDU
  // losses drawn from the PHY error model at the sample's true SNR.
  TxContext ctx;
  ctx.t = t;
  ctx.mobility = classifier_.decision(t);
  ctx.mpdu_payload_bytes = params_.mpdu_payload_bytes;
  const int mcs_index = ra_.select_mcs(ctx);
  const McsEntry& entry = mcs(mcs_index);
  const double per =
      per_from_snr(entry, sample.snr_db, params_.mpdu_payload_bytes);
  const int n = ra_.probing() ? params_.mpdus_while_probing
                              : params_.mpdus_per_exchange;
  int failed = 0;
  for (int i = 0; i < n; ++i)
    if (mac_rng_.chance(per)) ++failed;

  FrameResult fr;
  fr.t = t;
  fr.mcs = mcs_index;
  fr.n_mpdus = n;
  fr.n_failed = failed;
  fr.block_ack_received = failed < n;
  ra_.on_result(fr, ctx);

  ++stats_.mac_steps;
  stats_.mpdus_sent += static_cast<std::uint64_t>(n);
  stats_.mpdus_failed += static_cast<std::uint64_t>(failed);
  stats_.sum_goodput_mbps +=
      entry.rate_mbps *
      (1.0 - static_cast<double>(failed) / static_cast<double>(n));

  std::uint64_t d = stats_.digest;
  d = fnv1a_mix(d, static_cast<std::uint64_t>(mcs_index));
  d = fnv1a_mix(d, static_cast<std::uint64_t>(failed));
  stats_.digest = d;
}

bool Session::maybe_roam(double t) {
  const Vec2 p = walk_.position(t);
  const std::size_t cand = map_.nearest_ap(p);
  if (cand == serving_ap_) return false;
  const double d_cand = distance(p, map_.ap_position(cand));
  const double d_serv = distance(p, map_.ap_position(serving_ap_));
  if (d_cand + params_.handover_hysteresis_m >= d_serv) return false;
  associate(cand);
  ++stats_.ap_handovers;
  return true;
}

}  // namespace mobiwlan::campus
