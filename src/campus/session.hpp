// session.hpp — the campus floor plan, the client walk, and one session.
//
// A Session is one client's stay on the campus: it arrives, associates to
// the nearest AP, walks a waypoint path, re-associates (and possibly crosses
// a shard boundary) as the nearest AP changes, and departs. Everything a
// session computes — channel realization, classifier state, rate-adaptation
// decisions, statistics, digest — is a pure function of (master seed,
// session id, time), NEVER of the shard hosting it or of the worker thread
// stepping it. That property, plus the epoch-barriered handover in
// CampusSim, is the whole determinism-by-construction argument (DESIGN.md
// §8): moving a session between shards moves this object wholesale, so no
// observable can tell partitions apart.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "chan/channel.hpp"
#include "chan/channel_batch.hpp"
#include "chan/geometry.hpp"
#include "chan/trajectory.hpp"
#include "campus/stats_stream.hpp"
#include "core/mobility_classifier.hpp"
#include "mac/atheros_ra.hpp"
#include "util/prefetch.hpp"
#include "util/rng.hpp"

namespace mobiwlan::campus {

// Substream salts for the per-session RNG tree. Every stream is derived
// with Rng::stream (counter-based: a pure function of seed and id), so no
// draw on one stream can shift another — the property that keeps session
// randomness independent of arrival order, shard count, and worker count.
inline constexpr std::uint64_t kArrivalSalt = 0x11;   ///< arrival/dwell draws
inline constexpr std::uint64_t kSessionSalt = 0x22;   ///< per-session base
inline constexpr std::uint64_t kHomeSalt = 0x33;      ///< home position
inline constexpr std::uint64_t kWalkSalt = 0x44;      ///< waypoint legs
inline constexpr std::uint64_t kChannelSalt = 0x55;   ///< per-AP channels
inline constexpr std::uint64_t kMacSalt = 0x66;       ///< per-MPDU loss draws

/// The AP grid: `cols` x `rows` APs at `pitch_m` spacing, AP index
/// row-major from `origin`. Shards own contiguous index bands, so a shard
/// is a horizontal slab of the floor plan and boundary crossings are walks
/// between slabs.
class CampusMap {
 public:
  CampusMap(std::size_t cols, std::size_t rows, double pitch_m,
            Vec2 origin = {0.0, 0.0})
      : cols_(cols), rows_(rows), pitch_m_(pitch_m), origin_(origin) {}

  std::size_t n_aps() const { return cols_ * rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t rows() const { return rows_; }
  double pitch_m() const { return pitch_m_; }

  Vec2 ap_position(std::size_t ap) const {
    return {origin_.x + static_cast<double>(ap % cols_) * pitch_m_,
            origin_.y + static_cast<double>(ap / cols_) * pitch_m_};
  }

  /// Corners of the floor-plan rectangle (trajectories are clamped to it).
  Vec2 bounds_min() const { return origin_; }
  Vec2 bounds_max() const {
    return {origin_.x + static_cast<double>(cols_ - 1) * pitch_m_,
            origin_.y + static_cast<double>(rows_ - 1) * pitch_m_};
  }

  /// Index of the AP whose cell contains `p` — nearest AP on the grid.
  /// Pure function of position; O(1).
  std::size_t nearest_ap(Vec2 p) const;

  /// Shard owning AP `ap` under an S-way partition: contiguous row-major
  /// index bands, balanced to within one AP. Pure function of (ap, shards).
  std::size_t shard_of_ap(std::size_t ap, std::size_t shards) const {
    return ap * shards / n_aps();
  }

 private:
  std::size_t cols_;
  std::size_t rows_;
  double pitch_m_;
  Vec2 origin_;
};

/// Campus client walk: piecewise-linear motion through waypoints drawn as a
/// clamped random walk from a home point. All waypoints are materialized at
/// construction (the session's dwell is known when it arrives), so
/// position(t) is O(1), allocation-free, and a pure function of (seed, t) —
/// no draw-count coupling with any other component.
class CampusWalk final : public Trajectory {
 public:
  /// `t0` is the session's arrival time; position(t <= t0) is the home
  /// point. `n_legs` waypoint legs of `leg_s` seconds each cover the
  /// session's dwell; each leg's displacement is uniform in ±`wander_m`
  /// per axis (its own counter-derived substream of `seed`), clamped to
  /// [bounds_min, bounds_max].
  CampusWalk(Vec2 home, Vec2 bounds_min, Vec2 bounds_max, double t0,
             double leg_s, double wander_m, std::size_t n_legs,
             std::uint64_t seed);

  /// An empty walk waiting for rebuild() — the pooled-session recycle path.
  /// position() must not be called before the first rebuild().
  CampusWalk() = default;

  /// Re-draws the walk in place: bitwise the state the equivalent
  /// constructor call would produce, reusing the waypoint storage.
  void rebuild(Vec2 home, Vec2 bounds_min, Vec2 bounds_max, double t0,
               double leg_s, double wander_m, std::size_t n_legs,
               std::uint64_t seed);

  /// Memoized on (t): the campus step evaluates the walk twice per epoch at
  /// the same instant (channel geometry, then the roam decision), so the
  /// second call returns the cached point. Pure function of (seed, t)
  /// either way — the memo is invisible. Single-caller like the rest of the
  /// session: the hosting worker is the only thread touching this walk.
  Vec2 position(double t) const override;
  MobilityClass mobility_class() const override {
    return MobilityClass::kMacro;
  }

  Vec2 home() const { return waypoints_.front(); }

  /// Cache-hint: streams the waypoint table in ahead of position().
  void prefetch() const {
    prefetch_lines(waypoints_.data(), waypoints_.size() * sizeof(Vec2));
  }

 private:
  double t0_ = 0.0;
  double leg_s_ = 1.0;
  std::vector<Vec2> waypoints_;  // n_legs + 1 points, fixed per rebuild
  // position(t) memo; rebuild() invalidates. NaN never equals t, so the
  // sentinel can't alias a real query.
  mutable double memo_t_ = std::numeric_limits<double>::quiet_NaN();
  mutable Vec2 memo_pos_{};
};

/// Per-campus knobs a session needs at construction and while stepping.
struct SessionParams {
  ChannelConfig channel;
  MobilityClassifier::Config classifier;
  double tick_s = 0.5;
  double handover_hysteresis_m = 2.0;  ///< candidate must be this much nearer
  double walk_leg_s = 15.0;
  double walk_wander_m = 25.0;
  int mpdu_payload_bytes = 1500;
  int mpdus_per_exchange = 16;   ///< A-MPDU size of the per-tick exchange
  int mpdus_while_probing = 4;   ///< short A-MPDU bounding a failed probe
};

/// One client session. Not copyable (owns its channel); CampusSim moves the
/// whole object across shards on handover, classifier hold-then-decay state
/// and all.
class Session {
 public:
  /// Creates the session at its arrival instant: derives the RNG tree from
  /// (master_seed, id), builds the walk covering `dwell_epochs`, and
  /// associates to the nearest AP. Call prime() next.
  Session(std::uint64_t id, std::uint64_t master_seed, const CampusMap& map,
          const SessionParams& params, std::uint64_t arrival_epoch,
          std::uint64_t dwell_epochs);

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Recycles this object for a new arrival: bitwise the state a freshly
  /// constructed Session{id, master_seed, map, params, arrival_epoch,
  /// dwell_epochs} would hold, but reusing every internal buffer — walk
  /// waypoints, channel scatterers, classifier anchors, RA ladder — so a
  /// pooled steady state performs no allocation. The channel object's
  /// address is stable across reinit *and* across maybe_roam(), which is
  /// what lets CampusSim keep batch slots alive for the whole pool slot.
  void reinit(std::uint64_t id, std::uint64_t arrival_epoch,
              std::uint64_t dwell_epochs);

  /// The two-sample association burst at arrival: samples at
  /// t_arrive - tick and t_arrive establish the classifier's similarity
  /// anchor (and take its one-time allocations) before the session enters
  /// any shard's batched hot loop. Uses the caller's scratch. Samples go
  /// through ChannelBatch::sample_link — the *batched* kernels — so the
  /// digest never mixes per-link and batched kernel bits, on any SIMD tier.
  void prime(ChannelBatch::Scratch& scratch, ChannelSample& sample);

  /// One batched-epoch step from an already-taken channel sample: feeds the
  /// classifier, runs the rate-adaptation exchange, updates stats and the
  /// observable digest. Allocation-free. `epoch` is the campus epoch the
  /// sample belongs to. Equivalent to observe_step() then mac_step().
  void step(std::uint64_t epoch, const ChannelSample& sample);

  /// Classifier half of step(): the anchored Eq.-1 similarity update over
  /// the sampled CSI plane (the batched classifier pass — the anchor's
  /// magnitude plane is precomputed once and shared across the window, so
  /// the per-epoch cost is one SoA magnitude kernel per session). Split
  /// from mac_step so the fused shard pass can keep per-session operation
  /// order — observe before MAC — explicit; the split is digest-neutral.
  void observe_step(std::uint64_t epoch, const ChannelSample& sample);

  /// MAC half of step(): rate adaptation plus the per-tick A-MPDU exchange
  /// at the sample's true SNR.
  void mac_step(std::uint64_t epoch, const ChannelSample& sample);

  /// Cache-hint for the whole per-step working set on the session side
  /// (the object, walk waypoints, classifier planes, RA tables — the
  /// channel is hinted separately via ChannelBatch::prefetch_slot). The
  /// fused campus pass issues it one slot ahead; no observable effect.
  void prefetch() const {
    prefetch_lines(this, sizeof(Session), /*for_write=*/true);
    walk_.prefetch();
    classifier_.prefetch();
    ra_.prefetch();
  }

  /// End-of-epoch roam decision: re-associate to the nearest AP if it beats
  /// the serving AP by the hysteresis margin. Returns true on handover
  /// (stats updated, fresh channel built). Pure function of position and
  /// previous serving AP.
  bool maybe_roam(double t);

  std::uint64_t id() const { return stats_.id; }
  std::uint64_t depart_epoch() const { return stats_.depart_epoch; }
  std::size_t serving_ap() const { return serving_ap_; }
  WirelessChannel* channel() { return channel_.get(); }
  const SessionStats& stats() const { return stats_; }
  const MobilityClassifier& classifier() const { return classifier_; }

 private:
  void associate(std::size_t ap);
  void observe(double t, std::uint64_t epoch, const ChannelSample& sample);

  const CampusMap& map_;
  const SessionParams& params_;
  std::uint64_t master_seed_;
  Rng base_;                 ///< Rng(master).stream(kSessionSalt).stream(id)
  Rng mac_rng_;              ///< per-MPDU loss draws (fixed draws per step)
  // The walk lives inside the Session (rebuilt in place on reinit); the
  // channel sees it through a non-owning aliasing shared_ptr built once at
  // construction. Sessions live in pool slabs, so &walk_ is stable for the
  // object's whole lifetime and the alias never dangles.
  CampusWalk walk_;
  std::shared_ptr<const CampusWalk> walk_ref_;
  std::size_t serving_ap_ = 0;
  std::unique_ptr<WirelessChannel> channel_;
  MobilityClassifier classifier_;
  AtherosRa ra_;             ///< mobility-aware variant (Table-2 parameters)
  SessionStats stats_;
};

}  // namespace mobiwlan::campus
