// session_pool.hpp — slab-pooled Session storage for the campus simulator.
//
// Arrival/departure churn at campus scale (~1% of sessions per epoch) made
// the global allocator the hot path: every arrival built a Session, a
// CampusWalk control block, a WirelessChannel and the classifier's buffers,
// and every departure tore them down. The pool keeps released Sessions
// CONSTRUCTED on a free list; a recycled arrival calls Session::reinit,
// which re-draws the state in place and reuses every internal buffer's
// capacity (walk waypoints, scatterers, CSI anchors, RA ladder). Steady-
// state churn then performs no allocation at all.
//
// Ownership vs. residence: a session's *memory* always lives in the slab of
// the pool that created it, but its *ownership* travels — a cross-shard
// handover moves the SessionPtr through the mailbox, and the deleter
// releases the object back to its origin pool whenever the session departs,
// from whichever shard it happens to be on. All acquire/release calls occur
// in the simulator's serial phases (admit/drain/fold), so the pool needs no
// locking; the parallel hot phase only ever dereferences stable pointers.
//
// Slab addresses never move (slabs are allocated once and kept), so &walk_
// aliases and ChannelBatch slot pointers taken from pooled sessions stay
// valid for the pool's lifetime.
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <utility>
#include <vector>

#include "campus/session.hpp"

namespace mobiwlan::campus {

class SessionPool;

/// unique_ptr deleter that returns the (still-constructed) Session to its
/// origin pool instead of destroying it.
struct PoolDeleter {
  SessionPool* pool = nullptr;
  void operator()(Session* s) const;
};

/// Owning handle to a pooled session. Moves like unique_ptr; dropping it
/// recycles the object (never frees memory).
using SessionPtr = std::unique_ptr<Session, PoolDeleter>;

class SessionPool {
 public:
  explicit SessionPool(std::size_t slab_sessions = 1024)
      : slab_sessions_(slab_sessions ? slab_sessions : 1) {}

  SessionPool(const SessionPool&) = delete;
  SessionPool& operator=(const SessionPool&) = delete;

  ~SessionPool() {
    for (Slab& slab : slabs_) {
      for (std::size_t i = slab.constructed; i-- > 0;) slab.data[i].~Session();
      ::operator delete(static_cast<void*>(slab.data),
                        std::align_val_t{alignof(Session)});
    }
  }

  /// Hands out a session initialized exactly as Session{id, master_seed,
  /// map, params, arrival_epoch, dwell_epochs}: a recycled slot reaches that
  /// state via reinit (allocation-free), a fresh slot via placement-new.
  /// master_seed/map/params must be the same on every call (one campus).
  SessionPtr acquire(std::uint64_t id, std::uint64_t master_seed,
                     const CampusMap& map, const SessionParams& params,
                     std::uint64_t arrival_epoch, std::uint64_t dwell_epochs) {
    if (!free_.empty()) {
      Session* s = free_.back();
      free_.pop_back();
      s->reinit(id, arrival_epoch, dwell_epochs);
      return SessionPtr{s, PoolDeleter{this}};
    }
    if (slabs_.empty() || slabs_.back().constructed == slab_sessions_) {
      Slab slab;
      slab.data = static_cast<Session*>(
          ::operator new(sizeof(Session) * slab_sessions_,
                         std::align_val_t{alignof(Session)}));
      slabs_.push_back(slab);
    }
    Slab& slab = slabs_.back();
    Session* s = new (slab.data + slab.constructed)
        Session(id, master_seed, map, params, arrival_epoch, dwell_epochs);
    ++slab.constructed;
    return SessionPtr{s, PoolDeleter{this}};
  }

  /// Returns a session to the free list. The object stays constructed; its
  /// buffers keep their capacity for the next acquire.
  void release(Session* s) { free_.push_back(s); }

  /// Sessions currently constructed (free or handed out).
  std::size_t constructed() const {
    std::size_t n = 0;
    for (const Slab& slab : slabs_) n += slab.constructed;
    return n;
  }

  /// Sessions on the free list awaiting reuse.
  std::size_t free_count() const { return free_.size(); }

 private:
  struct Slab {
    Session* data = nullptr;
    std::size_t constructed = 0;  ///< prefix [0, constructed) holds objects
  };

  std::size_t slab_sessions_;
  std::vector<Slab> slabs_;
  std::vector<Session*> free_;
};

inline void PoolDeleter::operator()(Session* s) const {
  if (s != nullptr && pool != nullptr) pool->release(s);
}

}  // namespace mobiwlan::campus
