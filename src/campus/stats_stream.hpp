// stats_stream.hpp — streamed per-session statistics for the campus.
//
// A campus run touches hundreds of thousands of sessions; materializing a
// per-session record for offline aggregation would defeat the point of the
// exercise. Instead every session carries a handful of online scalars
// (sums, counts, a running FNV-1a digest of its per-step observables) and
// folds them into a CampusAggregate at departure. The aggregate itself is
// streamed too: ordered float sums, fixed-bin histograms for the quantile
// views, and order-insensitive digest combiners.
//
// Determinism contract: every field here is a pure function of the
// per-session observable streams, and sessions are always folded in
// ascending session-id order (CampusSim sorts departures before folding).
// That makes the float sums — and therefore every derived mean — bitwise
// identical across shard counts and worker counts. The histograms bin into
// integer counters, so their quantiles are grid values (bin edges) that
// compare exactly.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <vector>

namespace mobiwlan::campus {

/// FNV-1a over 64-bit words — the per-step observable digest. Cheap enough
/// to run on every session-step, and any single-bit change in any step of
/// any session changes the final value.
inline constexpr std::uint64_t kFnvOffset = 14695981039346656037ULL;
inline constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

inline std::uint64_t fnv1a_mix(std::uint64_t h, std::uint64_t word) {
  for (int i = 0; i < 8; ++i) {
    h ^= (word >> (8 * i)) & 0xffULL;
    h *= kFnvPrime;
  }
  return h;
}

inline std::uint64_t fnv1a_mix(std::uint64_t h, double value) {
  std::uint64_t bits;
  std::memcpy(&bits, &value, sizeof bits);
  return fnv1a_mix(h, bits);
}

/// Number of MobilityMode enumerators (core/mobility_mode.hpp) — the
/// per-mode step counters are indexed by the mode's ordinal.
inline constexpr std::size_t kModeCount = 6;

/// The online per-session state: everything the campus ever reports about a
/// session derives from these scalars, updated once per step.
struct SessionStats {
  std::uint64_t id = 0;
  std::uint64_t arrival_epoch = 0;
  std::uint64_t depart_epoch = 0;

  std::uint64_t steps = 0;       ///< observed samples (prime + batched)
  std::uint64_t mac_steps = 0;   ///< rate-adaptation exchanges (batched only)
  double sum_rssi_dbm = 0.0;
  double sum_tof_cycles = 0.0;
  double sum_similarity = 0.0;
  std::uint64_t similarity_steps = 0;
  double sum_goodput_mbps = 0.0;  ///< realized rate*(delivered/sent) per exchange
  std::uint64_t mpdus_sent = 0;
  std::uint64_t mpdus_failed = 0;
  std::uint64_t ap_handovers = 0;
  std::uint64_t mode_steps[kModeCount] = {};

  /// Running FNV-1a over (rssi, tof, similarity, mode, mcs, losses,
  /// serving AP, epoch) of every step — the shard-invariance witness.
  std::uint64_t digest = kFnvOffset;
};

/// Fixed-bin streaming histogram. Bin edges are a pure function of the
/// construction parameters, so quantile() returns grid values that compare
/// bitwise across runs; out-of-range samples clamp to the edge bins.
class StreamHistogram {
 public:
  StreamHistogram(double lo, double hi, std::size_t bins)
      : lo_(lo), hi_(hi), counts_(bins == 0 ? 1 : bins, 0) {}

  void add(double x) {
    const double span = hi_ - lo_;
    double f = (x - lo_) / span;
    if (f < 0.0) f = 0.0;
    std::size_t i = static_cast<std::size_t>(f * static_cast<double>(counts_.size()));
    if (i >= counts_.size()) i = counts_.size() - 1;
    ++counts_[i];
    ++total_;
  }

  std::uint64_t total() const { return total_; }

  /// Lower edge of the bin where the cumulative count first reaches
  /// q * total (q in [0, 1]) — except at q >= 1.0, which returns that bin's
  /// *upper* edge: the maximum lives somewhere inside the last occupied
  /// bin, so reporting its lower edge would under-state max-style stats by
  /// up to one bin width. q <= 0 returns lo, an empty histogram returns lo,
  /// and since add() clamps out-of-range samples into the edge bins, every
  /// result lies in [lo, hi].
  double quantile(double q) const {
    if (total_ == 0) return lo_;
    const double target = q * static_cast<double>(total_);
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
      cum += counts_[i];
      if (static_cast<double>(cum) >= target) {
        const std::size_t edge = q >= 1.0 ? i + 1 : i;
        return lo_ + (hi_ - lo_) * static_cast<double>(edge) /
                         static_cast<double>(counts_.size());
      }
    }
    return hi_;
  }

 private:
  double lo_;
  double hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

/// The campus-wide rollup. fold() must be called in ascending session-id
/// order; the digest combiners (xor + wrapping sum) are order-insensitive
/// on top of that, so the pair cross-checks the ordered fold.
struct CampusAggregate {
  std::uint64_t sessions = 0;
  std::uint64_t steps = 0;
  std::uint64_t mac_steps = 0;
  std::uint64_t mpdus_sent = 0;
  std::uint64_t mpdus_failed = 0;
  std::uint64_t ap_handovers = 0;
  std::uint64_t mode_steps[kModeCount] = {};

  double sum_mean_rssi_dbm = 0.0;
  double sum_mean_similarity = 0.0;
  double sum_mean_goodput_mbps = 0.0;
  double sum_dwell_epochs = 0.0;

  std::uint64_t digest_xor = 0;
  std::uint64_t digest_sum = 0;

  StreamHistogram rssi_hist{-95.0, -20.0, 60};
  StreamHistogram dwell_hist{0.0, 200.0, 50};
  StreamHistogram similarity_hist{0.0, 1.0, 50};

  void fold(const SessionStats& s) {
    ++sessions;
    steps += s.steps;
    mac_steps += s.mac_steps;
    mpdus_sent += s.mpdus_sent;
    mpdus_failed += s.mpdus_failed;
    ap_handovers += s.ap_handovers;
    for (std::size_t m = 0; m < kModeCount; ++m) mode_steps[m] += s.mode_steps[m];

    const double mean_rssi =
        s.steps ? s.sum_rssi_dbm / static_cast<double>(s.steps) : 0.0;
    const double mean_sim =
        s.similarity_steps
            ? s.sum_similarity / static_cast<double>(s.similarity_steps)
            : 0.0;
    const double mean_goodput =
        s.mac_steps ? s.sum_goodput_mbps / static_cast<double>(s.mac_steps)
                    : 0.0;
    const double dwell =
        static_cast<double>(s.depart_epoch - s.arrival_epoch);
    sum_mean_rssi_dbm += mean_rssi;
    sum_mean_similarity += mean_sim;
    sum_mean_goodput_mbps += mean_goodput;
    sum_dwell_epochs += dwell;
    rssi_hist.add(mean_rssi);
    dwell_hist.add(dwell);
    if (s.similarity_steps) similarity_hist.add(mean_sim);

    // Bind the id to the digest so two sessions with swapped streams cannot
    // cancel in the xor.
    const std::uint64_t d = fnv1a_mix(s.digest, s.id);
    digest_xor ^= d;
    digest_sum += d;
  }
};

}  // namespace mobiwlan::campus
