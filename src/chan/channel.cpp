#include "chan/channel.hpp"

#include <immintrin.h>

#include <cmath>
#include <numbers>

#include "util/fastmath.hpp"
#include "util/prefetch.hpp"
#include "util/simd.hpp"
#include "util/units.hpp"

namespace mobiwlan {

namespace {
constexpr double kPi = std::numbers::pi;

// Unit phasor via the inline fdlibm kernel where the argument is small
// (subcarrier steps and array steering angles); falls back to libm for the
// rare out-of-range argument so callers never need to range-check.
cplx unit_polar(double phase) {
  if (std::abs(phase) > fastmath::kSincosMaxArg) [[unlikely]]
    return std::polar(1.0, phase);
  double s, c;
  fastmath::sincos(phase, s, c);
  return {c, s};
}

// Accumulate steer * base into one antenna pair's planes:
//   acc_re += sr * bre - si * bim;  acc_im += sr * bim + si * bre.
// This multiply-accumulate over subcarriers is the flop core of synthesis
// (pairs x subcarriers x paths), so it gets an AVX2+FMA variant selected at
// runtime — the build stays baseline x86-64 for portability. FMA contraction
// perturbs each term by ~1 ulp, far inside the 1e-12 equivalence budget, and
// the per-accumulator path summation order is unchanged.
__attribute__((target("avx2,fma"))) void mac_pair_avx2(
    double* acc_re, double* acc_im, const double* bre, const double* bim,
    double sr, double si, std::size_t n) {
  const __m256d vsr = _mm256_set1_pd(sr);
  const __m256d vsi = _mm256_set1_pd(si);
  std::size_t sc = 0;
  for (; sc + 4 <= n; sc += 4) {
    const __m256d b_re = _mm256_loadu_pd(bre + sc);
    const __m256d b_im = _mm256_loadu_pd(bim + sc);
    const __m256d a_re = _mm256_loadu_pd(acc_re + sc);
    const __m256d a_im = _mm256_loadu_pd(acc_im + sc);
    _mm256_storeu_pd(acc_re + sc,
                     _mm256_fmadd_pd(vsr, b_re, _mm256_fnmadd_pd(vsi, b_im, a_re)));
    _mm256_storeu_pd(acc_im + sc,
                     _mm256_fmadd_pd(vsr, b_im, _mm256_fmadd_pd(vsi, b_re, a_im)));
  }
  for (; sc < n; ++sc) {
    acc_re[sc] += sr * bre[sc] - si * bim[sc];
    acc_im[sc] += sr * bim[sc] + si * bre[sc];
  }
}

void mac_pair_scalar(double* __restrict acc_re, double* __restrict acc_im,
                     const double* __restrict bre, const double* __restrict bim,
                     double sr, double si, std::size_t n) {
  for (std::size_t sc = 0; sc < n; ++sc) {
    acc_re[sc] += sr * bre[sc] - si * bim[sc];
    acc_im[sc] += sr * bim[sc] + si * bre[sc];
  }
}

using MacPairFn = void (*)(double*, double*, const double*, const double*,
                           double, double, std::size_t);

// Re-resolved per synthesize_into call (not cached at static init) so
// MOBIWLAN_FORCE_SCALAR and the simd::set_force_scalar test hook can steer
// the untaken variant through the golden-fixture agreement tests.
MacPairFn resolve_mac_pair() {
  return simd::use_avx2fma() ? mac_pair_avx2 : mac_pair_scalar;
}
}  // namespace

Vec2 WirelessChannel::Scatterer::position(double t) const {
  if (motion_amplitude_m == 0.0) return home;
  const double s = motion_amplitude_m *
                   std::sin(2.0 * kPi * motion_freq_hz * t + motion_phase);
  return home + motion_dir * s;
}

double WirelessChannel::Scatterer::blockage_db(double t) const {
  if (blockage_depth_db == 0.0) return 0.0;
  // A body crosses the direct path for a fraction of each pacing cycle:
  // model the crossing as a raised-power sinusoid pulse (narrow, smooth).
  const double phase = std::sin(2.0 * kPi * motion_freq_hz * t + motion_phase);
  const double pulse = std::max(0.0, phase);
  return blockage_depth_db * pulse * pulse * pulse * pulse;
}

WirelessChannel::WirelessChannel(const ChannelConfig& config, Vec2 ap_pos,
                                 std::shared_ptr<const Trajectory> trajectory,
                                 Rng rng)
    : config_(config), ap_pos_(ap_pos), trajectory_(std::move(trajectory)),
      rng_(rng) {
  build_realization();
}

void WirelessChannel::reinit(Vec2 ap_pos, Rng rng) {
  ap_pos_ = ap_pos;
  rng_ = rng;
  scatterers_.clear();
  shadow_waves_.clear();
  build_realization();
}

void WirelessChannel::prefetch() const {
  // rng_ and the sampler's reads all live in the object + the two
  // realization vectors. The data() loads depend on this-object lines that
  // may themselves miss; out-of-order issue still starts them far ahead of
  // the next sample's demand loads.
  prefetch_lines(this, sizeof(WirelessChannel), /*for_write=*/true);
  prefetch_lines(scatterers_.data(), scatterers_.size() * sizeof(Scatterer));
  prefetch_lines(shadow_waves_.data(),
                 shadow_waves_.size() * sizeof(ShadowWave));
}

void WirelessChannel::build_realization() {
  // Place scatterers around the midpoint of the initial AP-client segment —
  // walls, furniture and bystanders that contribute single-bounce paths.
  const Vec2 client0 = trajectory_->position(0.0);
  const Vec2 mid = (ap_pos_ + client0) * 0.5;

  int n_movers = 0;
  double mover_amp = 0.0;
  double blockage_depth = 0.0;
  switch (config_.activity) {
    case EnvironmentalActivity::kNone: break;
    case EnvironmentalActivity::kWeak:
      n_movers = config_.n_movers_weak;
      mover_amp = config_.mover_amplitude_weak_m;
      blockage_depth = config_.blockage_depth_weak_db;
      break;
    case EnvironmentalActivity::kStrong:
      n_movers = config_.n_movers_strong;
      mover_amp = config_.mover_amplitude_strong_m;
      blockage_depth = config_.blockage_depth_strong_db;
      break;
  }

  // Structural reflectors: walls, cabinets — strong, and they never move.
  // Radii are stratified (alternating near/far rings) so every realization
  // has both short and long excess-delay paths; without the far ring, an
  // unlucky draw yields a frequency-flat channel no real office exhibits.
  const double mid_radius =
      (config_.scatterer_radius_min_m + config_.scatterer_radius_max_m) / 2.0;
  for (std::size_t p = 0; p < config_.n_paths; ++p) {
    Scatterer s;
    const double angle = rng_.phase();
    const double r = (p % 2 == 0)
                         ? rng_.uniform(config_.scatterer_radius_min_m, mid_radius)
                         : rng_.uniform(mid_radius, config_.scatterer_radius_max_m);
    s.home = mid + unit_from_angle(angle) * r;
    s.reflection_loss_db =
        rng_.uniform(config_.reflection_loss_lo_db, config_.reflection_loss_hi_db);
    s.reflection_phase = rng_.phase();
    scatterers_.push_back(s);
  }
  // People: weaker additional paths whose reflection points pace around.
  for (int p = 0; p < n_movers; ++p) {
    Scatterer s;
    const double angle = rng_.phase();
    const double r = rng_.uniform(config_.scatterer_radius_min_m, config_.scatterer_radius_max_m);
    s.home = mid + unit_from_angle(angle) * r;
    s.reflection_loss_db = rng_.uniform(config_.person_reflection_loss_lo_db,
                                        config_.person_reflection_loss_hi_db);
    s.reflection_phase = rng_.phase();
    s.motion_dir = unit_from_angle(rng_.phase());
    s.motion_amplitude_m = mover_amp * rng_.uniform(0.5, 1.0);
    s.motion_freq_hz = rng_.uniform(0.06, 0.15);
    s.motion_phase = rng_.phase();
    s.blockage_depth_db = blockage_depth * rng_.uniform(0.4, 1.0);
    scatterers_.push_back(s);
  }

  // Spatial shadowing field (see ChannelConfig).
  for (int w = 0; w < config_.shadow_waves; ++w) {
    const double k_mag = 2.0 * kPi / config_.shadow_correlation_m;
    shadow_waves_.push_back(
        {unit_from_angle(rng_.phase()) * k_mag, rng_.phase()});
  }
}

double WirelessChannel::shadow_db_at(double t) const {
  if (shadow_waves_.empty() || config_.shadow_sigma_db == 0.0) return 0.0;
  const Vec2 pos = trajectory_->position(t);
  double sum = 0.0;
  for (const auto& w : shadow_waves_)
    sum += std::sin(w.k.dot(pos) + w.phase);
  // Each sinusoid has variance 1/2; normalize the sum to unit variance.
  return config_.shadow_sigma_db * sum /
         std::sqrt(static_cast<double>(shadow_waves_.size()) / 2.0);
}

double WirelessChannel::path_amplitude(double length_m, double extra_loss_db) const {
  const double length = std::max(length_m, 1.0);
  const double loss_db = config_.ref_loss_db +
                         10.0 * config_.path_loss_exponent * std::log10(length) +
                         extra_loss_db;
  return std::sqrt(dbm_to_mw(config_.tx_power_dbm - loss_db));
}

void WirelessChannel::path_geometries_into(double t, PathScratch& scratch) const {
  std::vector<PathGeometry>& paths = scratch.paths;
  paths.clear();
  paths.reserve(scatterers_.size() + 1);

  const Vec2 client = trajectory_->position(t);
  // Body shadowing gates every path equally (the body blocks the handset,
  // not a particular reflection).
  const double shadow = shadow_db_at(t);
  // People walking near the link periodically cross the direct path.
  double blockage = 0.0;
  for (const auto& s : scatterers_) blockage += s.blockage_db(t);

  // Line-of-sight path.
  {
    PathGeometry los;
    los.length_m = distance(ap_pos_, client);
    const double obstruction =
        config_.los_obstruction_db_per_m * std::max(0.0, los.length_m - 5.0);
    los.amplitude = path_amplitude(los.length_m, shadow + obstruction + blockage);
    los.phase0 = 0.0;
    const Vec2 d = client - ap_pos_;
    // cos(atan2(y, x)) == x / hypot(x, y); the zero-length guard matches
    // cos(atan2(0, 0)) == 1.
    los.cos_aod = los.length_m > 0.0 ? d.x / los.length_m : 1.0;
    los.cos_aoa = los.length_m > 0.0 ? -d.x / los.length_m : 1.0;
    paths.push_back(los);
  }

  // Single-bounce paths via scatterers.
  for (const auto& s : scatterers_) {
    const Vec2 sp = s.position(t);
    PathGeometry p;
    const double out_len = distance(ap_pos_, sp);
    const double in_len = distance(sp, client);
    p.length_m = out_len + in_len;
    p.amplitude = path_amplitude(p.length_m, s.reflection_loss_db + shadow);
    p.phase0 = s.reflection_phase;
    const Vec2 out = sp - ap_pos_;
    const Vec2 in = sp - client;
    p.cos_aod = out_len > 0.0 ? out.x / out_len : 1.0;
    p.cos_aoa = in_len > 0.0 ? in.x / in_len : 1.0;
    paths.push_back(p);
  }
}

void WirelessChannel::synthesize_into(PathScratch& scratch, CsiMatrix& out) const {
  const std::size_t n_sc = config_.n_subcarriers;
  const std::size_t n_entries = config_.n_tx * config_.n_rx * n_sc;
  out.resize(config_.n_tx, config_.n_rx, n_sc);
  scratch.base_re.resize(n_sc);
  scratch.base_im.resize(n_sc);
  scratch.acc_re.assign(n_entries, 0.0);
  scratch.acc_im.assign(n_entries, 0.0);
  const double half = static_cast<double>(n_sc - 1) / 2.0;
  const MacPairFn mac_pair = resolve_mac_pair();

  for (const auto& p : scratch.paths) {
    const double tau = p.length_m / kSpeedOfLight;
    // Phase at the band centre, including the carrier term: this is what
    // makes centimetre-scale motion rotate the phase by radians.
    const double centre_phase = -2.0 * kPi * config_.carrier_hz * tau + p.phase0;
    // Per-subcarrier increment across the band (a fraction of a radian for
    // indoor path delays — inside the fast-sincos range).
    const cplx step = unit_polar(-2.0 * kPi * config_.subcarrier_spacing_hz * tau);
    const cplx start = std::polar(p.amplitude,
                                  centre_phase +
                                      2.0 * kPi * config_.subcarrier_spacing_hz * tau * half);

    // The per-subcarrier phasor chain depends only on the path, so run the
    // recurrence once and let every antenna pair scale it — the old kernel
    // re-ran it per (tx, rx). Four interleaved chains (each stepping by
    // step^4) break the serial complex-multiply dependency that otherwise
    // bounds this loop by multiply latency, at ~1e-15 relative phase drift.
    double br[4], bi[4];
    br[0] = start.real();
    bi[0] = start.imag();
    const double sr1 = step.real();
    const double si1 = step.imag();
    for (int j = 1; j < 4; ++j) {
      br[j] = br[j - 1] * sr1 - bi[j - 1] * si1;
      bi[j] = br[j - 1] * si1 + bi[j - 1] * sr1;
    }
    const double s2r = sr1 * sr1 - si1 * si1;
    const double s2i = 2.0 * sr1 * si1;
    const double s4r = s2r * s2r - s2i * s2i;
    const double s4i = 2.0 * s2r * s2i;
    std::size_t sc = 0;
    for (; sc + 4 <= n_sc; sc += 4) {
      for (int j = 0; j < 4; ++j) {
        scratch.base_re[sc + j] = br[j];
        scratch.base_im[sc + j] = bi[j];
        const double nr = br[j] * s4r - bi[j] * s4i;
        bi[j] = br[j] * s4i + bi[j] * s4r;
        br[j] = nr;
      }
    }
    for (int j = 0; sc < n_sc; ++sc, ++j) {
      scratch.base_re[sc] = br[j];
      scratch.base_im[sc] = bi[j];
    }

    // Uniform linear array at λ/2 spacing at both ends: the steering phase is
    // linear in the antenna index, so each side is a phasor power chain —
    // one sincos per side per path instead of one per (tx, rx).
    const cplx w_tx = unit_polar(-kPi * p.cos_aod);
    const cplx w_rx = unit_polar(-kPi * p.cos_aoa);
    cplx steer_tx{1.0, 0.0};
    for (std::size_t tx = 0; tx < config_.n_tx; ++tx) {
      cplx steer = steer_tx;
      for (std::size_t rx = 0; rx < config_.n_rx; ++rx) {
        const double sr = steer.real();
        const double si = steer.imag();
        mac_pair(scratch.acc_re.data() + (tx * config_.n_rx + rx) * n_sc,
                 scratch.acc_im.data() + (tx * config_.n_rx + rx) * n_sc,
                 scratch.base_re.data(), scratch.base_im.data(), sr, si, n_sc);
        steer *= w_rx;
      }
      steer_tx *= w_tx;
    }
  }

  cplx* raw = out.raw().data();
  for (std::size_t i = 0; i < n_entries; ++i)
    raw[i] = cplx{scratch.acc_re[i], scratch.acc_im[i]};
}

double WirelessChannel::total_power_mw(const std::vector<PathGeometry>& paths) {
  double sum = 0.0;
  for (const auto& p : paths) sum += p.amplitude * p.amplitude;
  return sum;
}

double WirelessChannel::noise_floor_dbm() const {
  return kThermalNoiseDbmPerHz + 10.0 * std::log10(config_.bandwidth_hz) +
         config_.noise_figure_db;
}

CsiMatrix WirelessChannel::csi_true(double t) const {
  PathScratch scratch;
  CsiMatrix csi;
  csi_true_into(t, csi, scratch);
  return csi;
}

void WirelessChannel::csi_true_into(double t, CsiMatrix& out,
                                    PathScratch& scratch) const {
  path_geometries_into(t, scratch);
  synthesize_into(scratch, out);
}

void WirelessChannel::add_csi_noise(CsiMatrix& csi, double link_snr_db) {
  // Measurement noise: the ACK is received at the link SNR, but the CSI
  // estimator saturates around csi_snr_cap_db even at high signal levels.
  const double snr = std::min(link_snr_db + config_.csi_processing_gain_db,
                              config_.csi_snr_cap_db);
  const double mean_pow = csi.mean_power();
  const double noise_var = mean_pow / db_to_linear(snr);
  rng_.add_complex_gaussian(csi.raw().data(), csi.raw().size(), noise_var);
}

CsiMatrix WirelessChannel::csi_at(double t) {
  CsiMatrix csi;
  csi_at_into(t, csi, scratch_);
  return csi;
}

void WirelessChannel::csi_at_into(double t, CsiMatrix& out, PathScratch& scratch) {
  path_geometries_into(t, scratch);
  synthesize_into(scratch, out);
  const double link_snr =
      mw_to_dbm(total_power_mw(scratch.paths)) - noise_floor_dbm();
  add_csi_noise(out, link_snr);
}

double WirelessChannel::snr_db(double t) const {
  PathScratch scratch;
  path_geometries_into(t, scratch);
  return mw_to_dbm(total_power_mw(scratch.paths)) - noise_floor_dbm();
}

double WirelessChannel::rssi_dbm(double t) {
  path_geometries_into(t, scratch_);
  const double raw = mw_to_dbm(total_power_mw(scratch_.paths)) +
                     rng_.gaussian(0.0, config_.rssi_noise_db);
  const double q = config_.rssi_quantum_db;
  return std::round(raw / q) * q;
}

double WirelessChannel::tof_cycles(double t) {
  const double d = true_distance(t);
  const double rt_ns = 2.0 * d / kSpeedOfLight * 1e9;
  const double measured_ns =
      rt_ns + config_.tof_bias_ns + rng_.gaussian(0.0, config_.tof_noise_ns);
  return std::round(measured_ns * 1e-9 * config_.tof_clock_hz);
}

double WirelessChannel::true_distance(double t) const {
  return distance(ap_pos_, trajectory_->position(t));
}

double WirelessChannel::radial_velocity(double t) const {
  const double dt = 1e-2;
  // A central difference at t < dt would need a sample before t = 0;
  // shifting the window (the old behaviour) reports the velocity at dt, not
  // t, biasing the first 10 ms. Use a forward difference there instead.
  if (t < dt) return (true_distance(t + dt) - true_distance(t)) / dt;
  return (true_distance(t + dt) - true_distance(t - dt)) / (2.0 * dt);
}

ChannelSample WirelessChannel::sample(double t) {
  ChannelSample s;
  sample_into(t, s, scratch_);
  return s;
}

void WirelessChannel::sample_into(double t, ChannelSample& out,
                                  PathScratch& scratch) {
  out.t = t;
  // The one geometry pass: CSI, SNR, RSSI and ToF all derive from it. The
  // RNG draw order (CSI noise, then RSSI jitter, then ToF jitter) matches
  // the historical multi-pass implementation, so sampled values are
  // unchanged.
  path_geometries_into(t, scratch);
  synthesize_into(scratch, out.csi);
  const double signal_dbm = mw_to_dbm(total_power_mw(scratch.paths));
  const double link_snr = signal_dbm - noise_floor_dbm();
  add_csi_noise(out.csi, link_snr);

  const double raw_rssi =
      signal_dbm + rng_.gaussian(0.0, config_.rssi_noise_db);
  const double q = config_.rssi_quantum_db;
  out.rssi_dbm = std::round(raw_rssi / q) * q;
  out.snr_db = link_snr;

  // The LOS entry's length is exactly the AP-client distance.
  const double d = scratch.paths.front().length_m;
  const double rt_ns = 2.0 * d / kSpeedOfLight * 1e9;
  const double measured_ns =
      rt_ns + config_.tof_bias_ns + rng_.gaussian(0.0, config_.tof_noise_ns);
  out.tof_cycles = std::round(measured_ns * 1e-9 * config_.tof_clock_hz);
  out.true_distance_m = d;
}

}  // namespace mobiwlan
