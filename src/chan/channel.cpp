#include "chan/channel.hpp"

#include <cmath>
#include <numbers>

#include "util/units.hpp"

namespace mobiwlan {

namespace {
constexpr double kPi = std::numbers::pi;
}

Vec2 WirelessChannel::Scatterer::position(double t) const {
  if (motion_amplitude_m == 0.0) return home;
  const double s = motion_amplitude_m *
                   std::sin(2.0 * kPi * motion_freq_hz * t + motion_phase);
  return home + motion_dir * s;
}

double WirelessChannel::Scatterer::blockage_db(double t) const {
  if (blockage_depth_db == 0.0) return 0.0;
  // A body crosses the direct path for a fraction of each pacing cycle:
  // model the crossing as a raised-power sinusoid pulse (narrow, smooth).
  const double phase = std::sin(2.0 * kPi * motion_freq_hz * t + motion_phase);
  const double pulse = std::max(0.0, phase);
  return blockage_depth_db * pulse * pulse * pulse * pulse;
}

WirelessChannel::WirelessChannel(const ChannelConfig& config, Vec2 ap_pos,
                                 std::shared_ptr<const Trajectory> trajectory,
                                 Rng rng)
    : config_(config), ap_pos_(ap_pos), trajectory_(std::move(trajectory)),
      rng_(rng) {
  // Place scatterers around the midpoint of the initial AP-client segment —
  // walls, furniture and bystanders that contribute single-bounce paths.
  const Vec2 client0 = trajectory_->position(0.0);
  const Vec2 mid = (ap_pos_ + client0) * 0.5;

  int n_movers = 0;
  double mover_amp = 0.0;
  double blockage_depth = 0.0;
  switch (config_.activity) {
    case EnvironmentalActivity::kNone: break;
    case EnvironmentalActivity::kWeak:
      n_movers = config_.n_movers_weak;
      mover_amp = config_.mover_amplitude_weak_m;
      blockage_depth = config_.blockage_depth_weak_db;
      break;
    case EnvironmentalActivity::kStrong:
      n_movers = config_.n_movers_strong;
      mover_amp = config_.mover_amplitude_strong_m;
      blockage_depth = config_.blockage_depth_strong_db;
      break;
  }

  // Structural reflectors: walls, cabinets — strong, and they never move.
  // Radii are stratified (alternating near/far rings) so every realization
  // has both short and long excess-delay paths; without the far ring, an
  // unlucky draw yields a frequency-flat channel no real office exhibits.
  const double mid_radius =
      (config_.scatterer_radius_min_m + config_.scatterer_radius_max_m) / 2.0;
  for (std::size_t p = 0; p < config_.n_paths; ++p) {
    Scatterer s;
    const double angle = rng_.phase();
    const double r = (p % 2 == 0)
                         ? rng_.uniform(config_.scatterer_radius_min_m, mid_radius)
                         : rng_.uniform(mid_radius, config_.scatterer_radius_max_m);
    s.home = mid + unit_from_angle(angle) * r;
    s.reflection_loss_db =
        rng_.uniform(config_.reflection_loss_lo_db, config_.reflection_loss_hi_db);
    s.reflection_phase = rng_.phase();
    scatterers_.push_back(s);
  }
  // People: weaker additional paths whose reflection points pace around.
  for (int p = 0; p < n_movers; ++p) {
    Scatterer s;
    const double angle = rng_.phase();
    const double r = rng_.uniform(config_.scatterer_radius_min_m, config_.scatterer_radius_max_m);
    s.home = mid + unit_from_angle(angle) * r;
    s.reflection_loss_db = rng_.uniform(config_.person_reflection_loss_lo_db,
                                        config_.person_reflection_loss_hi_db);
    s.reflection_phase = rng_.phase();
    s.motion_dir = unit_from_angle(rng_.phase());
    s.motion_amplitude_m = mover_amp * rng_.uniform(0.5, 1.0);
    s.motion_freq_hz = rng_.uniform(0.06, 0.15);
    s.motion_phase = rng_.phase();
    s.blockage_depth_db = blockage_depth * rng_.uniform(0.4, 1.0);
    scatterers_.push_back(s);
  }

  // Spatial shadowing field (see ChannelConfig).
  for (int w = 0; w < config_.shadow_waves; ++w) {
    const double k_mag = 2.0 * kPi / config_.shadow_correlation_m;
    shadow_waves_.push_back(
        {unit_from_angle(rng_.phase()) * k_mag, rng_.phase()});
  }
}

double WirelessChannel::shadow_db_at(double t) const {
  if (shadow_waves_.empty() || config_.shadow_sigma_db == 0.0) return 0.0;
  const Vec2 pos = trajectory_->position(t);
  double sum = 0.0;
  for (const auto& w : shadow_waves_)
    sum += std::sin(w.k.dot(pos) + w.phase);
  // Each sinusoid has variance 1/2; normalize the sum to unit variance.
  return config_.shadow_sigma_db * sum /
         std::sqrt(static_cast<double>(shadow_waves_.size()) / 2.0);
}

double WirelessChannel::path_amplitude(double length_m, double extra_loss_db) const {
  const double length = std::max(length_m, 1.0);
  const double loss_db = config_.ref_loss_db +
                         10.0 * config_.path_loss_exponent * std::log10(length) +
                         extra_loss_db;
  return std::sqrt(dbm_to_mw(config_.tx_power_dbm - loss_db));
}

std::vector<WirelessChannel::PathGeometry>
WirelessChannel::path_geometries(double t) const {
  std::vector<PathGeometry> paths;
  paths.reserve(scatterers_.size() + 1);

  const Vec2 client = trajectory_->position(t);
  // Body shadowing gates every path equally (the body blocks the handset,
  // not a particular reflection).
  const double shadow = shadow_db_at(t);
  // People walking near the link periodically cross the direct path.
  double blockage = 0.0;
  for (const auto& s : scatterers_) blockage += s.blockage_db(t);

  // Line-of-sight path.
  {
    PathGeometry los;
    los.length_m = distance(ap_pos_, client);
    const double obstruction =
        config_.los_obstruction_db_per_m * std::max(0.0, los.length_m - 5.0);
    los.amplitude = path_amplitude(los.length_m, shadow + obstruction + blockage);
    los.phase0 = 0.0;
    const Vec2 d = client - ap_pos_;
    los.aod_rad = std::atan2(d.y, d.x);
    los.aoa_rad = std::atan2(-d.y, -d.x);
    paths.push_back(los);
  }

  // Single-bounce paths via scatterers.
  for (const auto& s : scatterers_) {
    const Vec2 sp = s.position(t);
    PathGeometry p;
    p.length_m = distance(ap_pos_, sp) + distance(sp, client);
    p.amplitude = path_amplitude(p.length_m, s.reflection_loss_db + shadow);
    p.phase0 = s.reflection_phase;
    const Vec2 out = sp - ap_pos_;
    const Vec2 in = sp - client;
    p.aod_rad = std::atan2(out.y, out.x);
    p.aoa_rad = std::atan2(in.y, in.x);
    paths.push_back(p);
  }
  return paths;
}

CsiMatrix WirelessChannel::synthesize(const std::vector<PathGeometry>& paths) const {
  CsiMatrix csi(config_.n_tx, config_.n_rx, config_.n_subcarriers);
  const double lambda = wavelength(config_.carrier_hz);
  const double half = static_cast<double>(config_.n_subcarriers - 1) / 2.0;

  for (const auto& p : paths) {
    const double tau = p.length_m / kSpeedOfLight;
    // Phase at the band centre, including the carrier term: this is what
    // makes centimetre-scale motion rotate the phase by radians.
    const double centre_phase = -2.0 * kPi * config_.carrier_hz * tau + p.phase0;
    // Per-subcarrier increment across the band.
    const cplx step = std::polar(1.0, -2.0 * kPi * config_.subcarrier_spacing_hz * tau);
    const cplx start = std::polar(p.amplitude,
                                  centre_phase +
                                      2.0 * kPi * config_.subcarrier_spacing_hz * tau * half);

    for (std::size_t tx = 0; tx < config_.n_tx; ++tx) {
      // Uniform linear array at λ/2 spacing at both ends.
      const double tx_phase = -kPi * static_cast<double>(tx) * std::cos(p.aod_rad);
      for (std::size_t rx = 0; rx < config_.n_rx; ++rx) {
        const double rx_phase = -kPi * static_cast<double>(rx) * std::cos(p.aoa_rad);
        cplx acc = start * std::polar(1.0, tx_phase + rx_phase);
        for (std::size_t sc = 0; sc < config_.n_subcarriers; ++sc) {
          csi.at(tx, rx, sc) += acc;
          acc *= step;
        }
      }
    }
    (void)lambda;
  }
  return csi;
}

double WirelessChannel::total_power_mw(const std::vector<PathGeometry>& paths) {
  double sum = 0.0;
  for (const auto& p : paths) sum += p.amplitude * p.amplitude;
  return sum;
}

double WirelessChannel::noise_floor_dbm() const {
  return kThermalNoiseDbmPerHz + 10.0 * std::log10(config_.bandwidth_hz) +
         config_.noise_figure_db;
}

CsiMatrix WirelessChannel::csi_true(double t) const {
  return synthesize(path_geometries(t));
}

CsiMatrix WirelessChannel::csi_at(double t) {
  const auto paths = path_geometries(t);
  CsiMatrix csi = synthesize(paths);
  // Measurement noise: the ACK is received at the link SNR, but the CSI
  // estimator saturates around csi_snr_cap_db even at high signal levels.
  const double snr = std::min(snr_db(t) + config_.csi_processing_gain_db,
                              config_.csi_snr_cap_db);
  const double mean_pow = csi.mean_power();
  const double noise_var = mean_pow / db_to_linear(snr);
  for (auto& v : csi.raw()) v += rng_.complex_gaussian(noise_var);
  return csi;
}

double WirelessChannel::snr_db(double t) const {
  const auto paths = path_geometries(t);
  return mw_to_dbm(total_power_mw(paths)) - noise_floor_dbm();
}

double WirelessChannel::rssi_dbm(double t) {
  const auto paths = path_geometries(t);
  const double raw = mw_to_dbm(total_power_mw(paths)) +
                     rng_.gaussian(0.0, config_.rssi_noise_db);
  const double q = config_.rssi_quantum_db;
  return std::round(raw / q) * q;
}

double WirelessChannel::tof_cycles(double t) {
  const double d = true_distance(t);
  const double rt_ns = 2.0 * d / kSpeedOfLight * 1e9;
  const double measured_ns =
      rt_ns + config_.tof_bias_ns + rng_.gaussian(0.0, config_.tof_noise_ns);
  return std::round(measured_ns * 1e-9 * config_.tof_clock_hz);
}

double WirelessChannel::true_distance(double t) const {
  return distance(ap_pos_, trajectory_->position(t));
}

double WirelessChannel::radial_velocity(double t) const {
  const double dt = 1e-2;
  const double t0 = t > dt ? t - dt : 0.0;
  return (true_distance(t0 + 2 * dt) - true_distance(t0)) / (2 * dt);
}

ChannelSample WirelessChannel::sample(double t) {
  ChannelSample s;
  s.t = t;
  s.csi = csi_at(t);
  s.rssi_dbm = rssi_dbm(t);
  s.snr_db = snr_db(t);
  s.tof_cycles = tof_cycles(t);
  s.true_distance_m = true_distance(t);
  return s;
}

}  // namespace mobiwlan
