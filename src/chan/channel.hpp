// channel.hpp — the testbed substitute: a geometric indoor multipath channel.
//
// This module replaces the paper's physical testbed (HP MSM 460 APs + Galaxy
// S5 clients in two office buildings). It synthesizes exactly the PHY
// observables the AP firmware exported — per-subcarrier CSI, RSSI, and
// clock-quantized ToF — from explicit geometry:
//
//   * a line-of-sight path AP -> client, plus `n_paths` single-bounce paths
//     via explicit scatterer points (walls, furniture, people);
//   * per-path delay = geometric length / c, per-path loss = log-distance
//     path loss over that length plus a reflection loss;
//   * CSI per subcarrier i and antenna pair: H_i = sum_p g_p e^{-j2π f_i τ_p}
//     with uniform-linear-array phase terms at both ends.
//
// Because phases derive from geometry, every effect the paper's classifier
// exploits emerges mechanically rather than by construction:
//   * nothing moves            -> CSI constant up to measurement noise;
//   * people move (environmental) -> only the paths through those scatterers
//     decorrelate — "environmental mobility typically affects only a few
//     multipath components" (§2.3);
//   * the device moves (micro/macro) -> every path's phase rotates (λ/2 per
//     2.6 cm at 5.785 GHz) -> fast full decorrelation;
//   * only macro-mobility changes the AP-client distance -> ToF trend (§2.4).
#pragma once

#include <memory>
#include <vector>

#include "chan/geometry.hpp"
#include "chan/trajectory.hpp"
#include "phy/csi.hpp"
#include "util/rng.hpp"

namespace mobiwlan {

class ChannelBatch;

/// How much the environment itself moves (paper §2.1: quiet lab vs cafeteria
/// at lunch hour; Fig. 2b further splits environmental into weak and strong).
enum class EnvironmentalActivity { kNone, kWeak, kStrong };

struct ChannelConfig {
  // -- radio ---------------------------------------------------------------
  double carrier_hz = 5.785e9;      ///< paper: 5.8 GHz band
  double bandwidth_hz = 40e6;       ///< channel width (noise bandwidth)
  double subcarrier_spacing_hz = 312.5e3;
  std::size_t n_tx = 3;             ///< MSM 460: 3 transmit antennas
  std::size_t n_rx = 2;             ///< Galaxy S5: 2 antennas
  std::size_t n_subcarriers = kDefaultSubcarriers;
  double tx_power_dbm = 18.0;
  double noise_figure_db = 7.0;

  // -- propagation ---------------------------------------------------------
  double ref_loss_db = 47.0;        ///< path loss at 1 m (5.8 GHz free space)
  double path_loss_exponent = 3.2;  ///< indoor office (walls, furniture)
  std::size_t n_paths = 10;         ///< structural single-bounce NLOS paths
  double reflection_loss_lo_db = 3.0;   ///< walls/metal furniture reflect well
  double reflection_loss_hi_db = 9.0;
  /// Scatterers ring the AP-client midpoint between these radii. The far
  /// edge sets the excess-delay spread (and therefore how much frequency
  /// ripple the 52-subcarrier CSI shows): 25 m of extra path is ~80 ns,
  /// matching office-scale RMS delay spreads.
  double scatterer_radius_min_m = 4.0;
  double scatterer_radius_max_m = 25.0;
  /// Extra attenuation on the direct path per metre beyond 5 m: cubicles,
  /// shelving and people increasingly obstruct the LOS at range, so the
  /// Rician K-factor falls with distance (far links are scattering-rich).
  double los_obstruction_db_per_m = 0.2;

  // -- environmental activity ----------------------------------------------
  // Moving people contribute *additional*, weaker reflection paths (bodies
  // reflect far less than walls) whose motion modulates only their own
  // contribution — "environmental mobility typically affects only a few
  // multipath components" (§2.3).
  EnvironmentalActivity activity = EnvironmentalActivity::kNone;
  int n_movers_weak = 2;            ///< moving people, weak activity
  int n_movers_strong = 4;          ///< moving people, cafeteria
  double person_reflection_loss_lo_db = 13.0;
  double person_reflection_loss_hi_db = 19.0;
  // Pacing amplitude and cadence give peak speeds under ~1 m/s — people
  // shifting around tables, not sprinting.
  double mover_amplitude_weak_m = 0.7;
  double mover_amplitude_strong_m = 1.2;
  /// Peak attenuation of the direct path when a person crosses it. Bodies
  /// block 5 GHz almost completely; this is what makes RSSI fluctuate under
  /// environmental mobility as much as (or more than) under device mobility
  /// (Fig. 1), even though only a few multipath components change.
  double blockage_depth_weak_db = 3.0;
  double blockage_depth_strong_db = 7.0;

  // -- measurement imperfections -------------------------------------------
  /// CSI estimation integrates the long training fields, so its effective
  /// SNR sits above the per-symbol link SNR by a processing gain, up to a
  /// hardware cap.
  double csi_processing_gain_db = 20.0;
  double csi_snr_cap_db = 42.0;
  double rssi_noise_db = 0.4;       ///< front-end RSSI jitter (std)
  double rssi_quantum_db = 0.5;     ///< RSSI register granularity

  // -- Time-of-Flight (§2.4; Atheros ToD/ToA of the data-ACK exchange) ------
  double tof_clock_hz = 88e6;       ///< effective timestamp clock
  double tof_noise_ns = 12.0;       ///< per-reading jitter (std)
  double tof_bias_ns = 15.0;        ///< mean detection/multipath bias

  // -- body shadowing --------------------------------------------------------
  // At 5.8 GHz the user's body and orientation gate the whole link by several
  // dB, and the blockage pattern is a function of *where* the client is. We
  // model it as a smooth random field over 2-D space (sum of spatial
  // sinusoids): a static client sees a constant offset, a walking client
  // sweeps through the field and sees second-scale swings — which is what
  // makes the optimal bit-rate drift under macro-mobility (Fig. 8).
  double shadow_sigma_db = 4.0;
  double shadow_correlation_m = 3.0;  ///< spatial wavelength of the field
  int shadow_waves = 6;
};

/// One observation at the AP from a data-ACK exchange with the client.
struct ChannelSample {
  double t = 0.0;
  CsiMatrix csi;             ///< measured (noisy) CSI
  double rssi_dbm = 0.0;     ///< quantized RSSI
  double snr_db = 0.0;       ///< true wideband SNR (drives the PHY error model)
  double tof_cycles = 0.0;   ///< quantized round-trip clock-cycle count
  double true_distance_m = 0.0;  ///< ground truth, never shown to algorithms
};

/// The radio link between one AP and one client following a trajectory.
class WirelessChannel {
 public:
  /// Geometry of one propagation path at a time instant. Steering angles are
  /// carried as cosines (the only form the ULA phase terms need), computed as
  /// coordinate ratios instead of cos(atan2(...)).
  struct PathGeometry {
    double length_m;      // total propagation length
    double amplitude;     // sqrt(mW) received amplitude
    double phase0;        // reflection phase offset
    double cos_aod;       // cos(departure angle at the AP array)
    double cos_aoa;       // cos(arrival angle at the client array)
  };

  /// Reusable workspace for the single-pass hot path. One `sample_into` /
  /// `csi_*_into` call fills `paths` and the SoA synthesis planes; a caller
  /// that keeps a PathScratch (and a ChannelSample / CsiMatrix) alive across
  /// a sampling loop performs zero heap allocations in steady state — the
  /// vectors grow once and are reused thereafter.
  struct PathScratch {
    std::vector<PathGeometry> paths;
    std::vector<double> base_re, base_im;  ///< per-subcarrier phasor, one path
    std::vector<double> acc_re, acc_im;    ///< CSI accumulation planes (SoA)
  };

  WirelessChannel(const ChannelConfig& config, Vec2 ap_pos,
                  std::shared_ptr<const Trajectory> trajectory, Rng rng);

  /// Re-draws the channel realization in place for a new AP association:
  /// bitwise the state a freshly constructed WirelessChannel{config(),
  /// ap_pos, trajectory(), rng} would hold, but reusing the scatterer and
  /// shadow-wave storage. The object's address — and therefore any
  /// ChannelBatch slot pointing at it — stays valid, which is what lets a
  /// pooled session roam between APs without touching its shard's batch.
  void reinit(Vec2 ap_pos, Rng rng);

  /// Prefetches the realization state the next sample will touch (the
  /// object itself, scatterers, shadow waves). Purely a cache hint — no
  /// observable effect; a batched caller issues it one link ahead so the
  /// misses overlap the current link's synthesis.
  void prefetch() const;

  /// Full observation (CSI + RSSI + SNR + ToF) at time t.
  ChannelSample sample(double t);

  /// Single-pass full observation: path geometry is computed once and CSI,
  /// SNR, RSSI and ToF are all derived from that one pass (the convenience
  /// overloads above recompute nothing either — they share this core).
  /// Allocation-free in steady state when `out` and `scratch` are reused.
  void sample_into(double t, ChannelSample& out, PathScratch& scratch);

  /// Measured (noisy) CSI only.
  CsiMatrix csi_at(double t);

  /// Measured CSI into a reusable matrix; allocation-free in steady state.
  void csi_at_into(double t, CsiMatrix& out, PathScratch& scratch);

  /// Noiseless CSI — the channel's ground truth, used by the trace-based
  /// emulators to apply a precoder computed from stale *measured* CSI to the
  /// *actual* channel at transmit time.
  CsiMatrix csi_true(double t) const;

  /// Noiseless CSI into a reusable matrix; allocation-free in steady state.
  void csi_true_into(double t, CsiMatrix& out, PathScratch& scratch) const;

  /// True wideband SNR in dB at time t (no measurement noise).
  double snr_db(double t) const;

  /// Quantized RSSI reading in dBm.
  double rssi_dbm(double t);

  /// One noisy, clock-quantized ToF reading (round-trip clock cycles).
  double tof_cycles(double t);

  /// Ground-truth AP-client distance.
  double true_distance(double t) const;

  /// Ground-truth radial velocity (m/s, positive = moving away).
  double radial_velocity(double t) const;

  /// Body-shadowing attenuation (dB, zero-mean over space) at the client's
  /// position at time t.
  double shadow_db_at(double t) const;

  const ChannelConfig& config() const { return config_; }
  Vec2 ap_position() const { return ap_pos_; }
  const Trajectory& trajectory() const { return *trajectory_; }

 private:
  // The batched multi-link engine (chan/channel_batch.hpp) re-implements the
  // geometry + synthesis hot path over many links at once; it reads the
  // private realization state (scatterers, shadow field) and drives rng_
  // through the exact per-link draw sequence, so batched and per-link
  // sampling stay numerically equivalent (<= 1e-12) with identical RNG state.
  friend class ChannelBatch;

  // Draws scatterers_ and shadow_waves_ from rng_ (shared by the
  // constructor and reinit; clear()+refill keeps vector capacity).
  void build_realization();

  struct Scatterer {
    Vec2 home;
    double reflection_loss_db;
    double reflection_phase;
    // Sinusoidal pacing for moving people (amplitude 0 = static object).
    Vec2 motion_dir;
    double motion_amplitude_m = 0.0;
    double motion_freq_hz = 0.0;
    double motion_phase = 0.0;
    // Peak LOS attenuation when this person crosses the direct path.
    double blockage_depth_db = 0.0;

    Vec2 position(double t) const;
    /// Attenuation (dB) this person currently puts on the direct path:
    /// a narrow pulse once per pacing cycle.
    double blockage_db(double t) const;
  };

  /// Geometry of all paths (LOS first) at time t, into scratch.paths.
  void path_geometries_into(double t, PathScratch& scratch) const;

  /// Synthesize noiseless CSI from scratch.paths into `out` (SoA kernel).
  void synthesize_into(PathScratch& scratch, CsiMatrix& out) const;

  /// Measurement-noise + RSSI + ToF tail shared by the sampling entry points;
  /// `link_snr_db` and `true_distance_m` come from the single geometry pass.
  void add_csi_noise(CsiMatrix& csi, double link_snr_db);

  /// Total received power (mW) across paths.
  static double total_power_mw(const std::vector<PathGeometry>& paths);

  double path_amplitude(double length_m, double extra_loss_db) const;
  double noise_floor_dbm() const;

  struct ShadowWave {
    Vec2 k;        // spatial wavevector
    double phase;
  };

  ChannelConfig config_;
  Vec2 ap_pos_;
  std::shared_ptr<const Trajectory> trajectory_;
  std::vector<Scatterer> scatterers_;
  std::vector<ShadowWave> shadow_waves_;
  mutable Rng rng_;
  // Workspace for the by-value convenience overloads (sample, csi_at, ...).
  // Shares the same thread-safety contract as rng_: non-const entry points
  // are single-caller.
  PathScratch scratch_;
};

}  // namespace mobiwlan
