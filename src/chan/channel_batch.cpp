#include "chan/channel_batch.hpp"

#if defined(__x86_64__)
#include <immintrin.h>
#endif

#include <algorithm>
#include <cmath>
#include <numbers>

#include "util/fastmath.hpp"
#include "util/lane_math.hpp"
#include "util/simd.hpp"
#include "util/simd_math.hpp"
#include "util/units.hpp"

namespace mobiwlan {

namespace {
constexpr double kPi = std::numbers::pi;
constexpr double kLog2Ten_Over20 = 0.16609640474436813;  // log2(10)/20
constexpr double kLog2Ten_Over10 = 0.33219280948873623;  // log2(10)/10
constexpr double kInvLn10 = 0.43429448190325176;         // 1/ln(10)

// sqrt(dx^2 + dy^2) instead of Vec2::norm()'s std::hypot: the overflow
// protection hypot buys costs ~7x at these magnitudes, and floor-plan
// coordinates are metres — squares cannot overflow. ~1 ulp apart.
double fast_distance(Vec2 a, Vec2 b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

double sin_checked(double x) {
  if (std::abs(x) > fastmath::kSincosWideMaxArg) [[unlikely]]
    return std::sin(x);
  return fastmath::sin_wide(x);
}

// 10 * log10(mw) / 10^(db/10) with the fastmath kernels — the per-sample
// dBm conversions cost a libm log10 + pow each on the per-link path.
double fast_mw_to_dbm(double mw) { return 10.0 * fastmath::log10_pos(mw); }
double fast_db_to_linear(double db) { return std::exp2(db * kLog2Ten_Over10); }
double fast_noise_floor_dbm(const ChannelConfig& cfg) {
  return kThermalNoiseDbmPerHz + 10.0 * fastmath::log10_pos(cfg.bandwidth_hz) +
         cfg.noise_figure_db;
}

// Four interleaved per-subcarrier phasor chains (each stepping by step^4),
// seeded from the path's start phasor. Mirrors the chain seeding in
// WirelessChannel::synthesize_into exactly.
struct PathChains {
  double br[4];
  double bi[4];
  double s4r;
  double s4i;
};

PathChains seed_chains(cplx start, cplx step) {
  PathChains pc;
  pc.br[0] = start.real();
  pc.bi[0] = start.imag();
  const double sr1 = step.real();
  const double si1 = step.imag();
  for (int j = 1; j < 4; ++j) {
    pc.br[j] = pc.br[j - 1] * sr1 - pc.bi[j - 1] * si1;
    pc.bi[j] = pc.br[j - 1] * si1 + pc.bi[j - 1] * sr1;
  }
  const double s2r = sr1 * sr1 - si1 * si1;
  const double s2i = 2.0 * sr1 * si1;
  pc.s4r = s2r * s2r - s2i * s2i;
  pc.s4i = 2.0 * s2r * s2i;
  return pc;
}

// Scalar fp64 chain fill — bitwise mirror of fill_base_avx2 below: the same
// four 4-lane block chains stepping by step^16, with every vector fmsub /
// fmadd restated as an explicit std::fma. A non-AVX2 host therefore writes
// the exact phasor bits an AVX2 host writes, which is what lets the campus
// digests stay host-portable while the AVX2 kernels run where available.
void fill_base_lane(const PathChains& pc, double* bre, double* bim,
                    std::size_t n_sc) {
  double cr[4][4], ci[4][4];
  for (int l = 0; l < 4; ++l) {
    cr[0][l] = pc.br[l];
    ci[0][l] = pc.bi[l];
  }
  for (int j = 1; j < 4; ++j) {
    for (int l = 0; l < 4; ++l) {
      // fmsub(a, s4r, b*s4i) / fmadd(a, s4i, b*s4r), lane-for-lane.
      cr[j][l] = std::fma(cr[j - 1][l], pc.s4r, -(ci[j - 1][l] * pc.s4i));
      ci[j][l] = std::fma(cr[j - 1][l], pc.s4i, ci[j - 1][l] * pc.s4r);
    }
  }
  const double s8r = pc.s4r * pc.s4r - pc.s4i * pc.s4i;
  const double s8i = 2.0 * pc.s4r * pc.s4i;
  const double s16r = s8r * s8r - s8i * s8i;
  const double s16i = 2.0 * s8r * s8i;

  const std::size_t nbt = (n_sc + 3) / 4;  // blocks incl. a partial tail
  std::size_t b = 0;
  for (;;) {
    const std::size_t m = std::min<std::size_t>(4, nbt - b);
    for (std::size_t j = 0; j < m; ++j) {
      const std::size_t sc = 4 * (b + j);
      for (std::size_t l = 0; l < 4 && sc + l < n_sc; ++l) {
        bre[sc + l] = cr[j][l];
        bim[sc + l] = ci[j][l];
      }
    }
    b += m;
    if (b >= nbt) break;
    for (int j = 0; j < 4; ++j) {
      for (int l = 0; l < 4; ++l) {
        const double nr = std::fma(cr[j][l], s16r, -(ci[j][l] * s16i));
        ci[j][l] = std::fma(cr[j][l], s16i, ci[j][l] * s16r);
        cr[j][l] = nr;
      }
    }
  }
}

// Scalar fp64 MAC — bitwise mirror of mac_block_avx2/fused_mac_avx2: same
// 4-subcarrier slices, same register-block pair grouping (nb <= 6), the
// accumulation restated as std::fma per lane, and the power reduced through
// four positional partial sums folded in fixed lane order. The remainder
// tail keeps the plain-multiply expressions the AVX2 kernel's own scalar
// tail uses.
void mac_block_lane(const double* base, const double* steer,
                    std::size_t n_paths, std::size_t n_pairs,
                    std::size_t pair0, std::size_t nb, std::size_t n_sc,
                    cplx* raw, double& power) {
  double pow_l[4] = {0.0, 0.0, 0.0, 0.0};
  double acc_re[6][4], acc_im[6][4];
  std::size_t sc = 0;
  for (; sc + 4 <= n_sc; sc += 4) {
    for (std::size_t k = 0; k < nb; ++k) {
      for (int l = 0; l < 4; ++l) {
        acc_re[k][l] = 0.0;
        acc_im[k][l] = 0.0;
      }
    }
    for (std::size_t p = 0; p < n_paths; ++p) {
      const double* bplane = base + p * 2 * n_sc;
      const double* st = steer + (p * n_pairs + pair0) * 2;
      for (std::size_t k = 0; k < nb; ++k) {
        const double sr = st[2 * k];
        const double si = st[2 * k + 1];
        for (int l = 0; l < 4; ++l) {
          // fmadd(sr, b_re, fnmadd(si, b_im, acc)) lane-for-lane.
          acc_re[k][l] = std::fma(
              sr, bplane[sc + l], std::fma(-si, bplane[n_sc + sc + l],
                                           acc_re[k][l]));
          acc_im[k][l] = std::fma(
              sr, bplane[n_sc + sc + l],
              std::fma(si, bplane[sc + l], acc_im[k][l]));
        }
      }
    }
    for (std::size_t k = 0; k < nb; ++k) {
      for (int l = 0; l < 4; ++l) {
        raw[(pair0 + k) * n_sc + sc + l] = cplx{acc_re[k][l], acc_im[k][l]};
        pow_l[l] = std::fma(acc_re[k][l], acc_re[k][l],
                            std::fma(acc_im[k][l], acc_im[k][l], pow_l[l]));
      }
    }
  }
  power += pow_l[0] + pow_l[1] + pow_l[2] + pow_l[3];
  for (; sc < n_sc; ++sc) {
    for (std::size_t k = 0; k < nb; ++k) {
      double are = 0.0, aim = 0.0;
      for (std::size_t p = 0; p < n_paths; ++p) {
        const double* bplane = base + p * 2 * n_sc;
        const double sr = steer[(p * n_pairs + pair0 + k) * 2];
        const double si = steer[(p * n_pairs + pair0 + k) * 2 + 1];
        are += sr * bplane[sc] - si * bplane[n_sc + sc];
        aim += sr * bplane[n_sc + sc] + si * bplane[sc];
      }
      raw[(pair0 + k) * n_sc + sc] = cplx{are, aim};
      power += are * are + aim * aim;
    }
  }
}

void fused_mac_lane(const double* base, const double* steer,
                    std::size_t n_paths, std::size_t n_pairs, std::size_t n_sc,
                    cplx* raw, double& power) {
  power = 0.0;
  for (std::size_t pair0 = 0; pair0 < n_pairs; pair0 += 6)
    mac_block_lane(base, steer, n_paths, n_pairs, pair0,
                   std::min<std::size_t>(6, n_pairs - pair0), n_sc, raw,
                   power);
}

// amp_lane — one lane of vamp_n: the log-distance amplitude pipeline with
// the lane-exact log/exp2 mirrors and the vector's exact expression order.
double amp_lane(double len, double extra, double base_db, double coef) {
  const double l = std::max(len, 1.0);
  const double lg = lanemath::log_pos(l) * kInvLn10;
  const double db = (base_db - extra) - coef * lg;
  return lanemath::exp2(db * kLog2Ten_Over20);
}

#if defined(__x86_64__)

// Vector recurrence with four independent 4-lane block chains stepping by
// step^16: the serial dependency that latency-binds the scalar recurrence is
// split four ways, so the chain multiplies pipeline. Association differs
// from the scalar chain by a handful of rounding steps (~1e-15 relative),
// inside the batch's 1e-12 equivalence budget.
__attribute__((target("avx2,fma"), optimize("fp-contract=off"))) void fill_base_avx2(const PathChains& pc,
                                                        double* bre,
                                                        double* bim,
                                                        std::size_t n_sc) {
  __m256d c_re[4], c_im[4];
  c_re[0] = _mm256_loadu_pd(pc.br);
  c_im[0] = _mm256_loadu_pd(pc.bi);
  const __m256d s4r = _mm256_set1_pd(pc.s4r);
  const __m256d s4i = _mm256_set1_pd(pc.s4i);
  for (int j = 1; j < 4; ++j) {
    c_re[j] =
        _mm256_fmsub_pd(c_re[j - 1], s4r, _mm256_mul_pd(c_im[j - 1], s4i));
    c_im[j] =
        _mm256_fmadd_pd(c_re[j - 1], s4i, _mm256_mul_pd(c_im[j - 1], s4r));
  }
  const double s8r = pc.s4r * pc.s4r - pc.s4i * pc.s4i;
  const double s8i = 2.0 * pc.s4r * pc.s4i;
  const __m256d s16r = _mm256_set1_pd(s8r * s8r - s8i * s8i);
  const __m256d s16i = _mm256_set1_pd(2.0 * s8r * s8i);

  const std::size_t nbt = (n_sc + 3) / 4;  // blocks incl. a partial tail
  std::size_t b = 0;
  for (;;) {
    const std::size_t m = std::min<std::size_t>(4, nbt - b);
    for (std::size_t j = 0; j < m; ++j) {
      const std::size_t sc = 4 * (b + j);
      if (sc + 4 <= n_sc) {
        _mm256_storeu_pd(bre + sc, c_re[j]);
        _mm256_storeu_pd(bim + sc, c_im[j]);
      } else {
        alignas(32) double tr[4], ti[4];
        _mm256_store_pd(tr, c_re[j]);
        _mm256_store_pd(ti, c_im[j]);
        for (std::size_t l = 0; sc + l < n_sc; ++l) {
          bre[sc + l] = tr[l];
          bim[sc + l] = ti[l];
        }
      }
    }
    b += m;
    if (b >= nbt) break;
    for (int j = 0; j < 4; ++j) {
      const __m256d nr =
          _mm256_fmsub_pd(c_re[j], s16r, _mm256_mul_pd(c_im[j], s16i));
      c_im[j] = _mm256_fmadd_pd(c_re[j], s16i, _mm256_mul_pd(c_im[j], s16r));
      c_re[j] = nr;
    }
  }
}

// Register-blocked fused MAC for one block of NB antenna pairs: all NB
// re/im accumulators for a 4-subcarrier slice stay in ymm registers while
// the path loop runs, and the slice is stored interleaved straight into the
// CsiMatrix. Per element the accumulation is
//   acc_re = fmadd(sr, b_re, fnmadd(si, b_im, acc_re))
//   acc_im = fmadd(sr, b_im, fmadd(si, b_re, acc_im))
// in path order — the identical operation sequence the per-link
// mac_pair_avx2 kernel performs, so the blocked accumulation matches it
// bitwise. The wideband power accumulates during the store (order differs
// from CsiMatrix::mean_power; it only feeds the noise variance).
template <int NB>
__attribute__((target("avx2,fma"), optimize("fp-contract=off"))) void mac_block_avx2(
    const double* base, const double* steer, std::size_t n_paths,
    std::size_t n_pairs, std::size_t pair0, std::size_t n_sc, cplx* raw,
    double& power) {
  __m256d vpow = _mm256_setzero_pd();
  std::size_t sc = 0;
  for (; sc + 4 <= n_sc; sc += 4) {
    // The NB loops must fully unroll: only then do the accumulator arrays
    // get register-allocated (12 ymm accumulators + 4 operands fit the 16
    // AVX registers at NB == 6). Left rolled, GCC keeps them as stack
    // arrays and every FMA round-trips through memory.
    __m256d acc_re[NB], acc_im[NB];
#pragma GCC unroll 8
    for (int k = 0; k < NB; ++k) {
      acc_re[k] = _mm256_setzero_pd();
      acc_im[k] = _mm256_setzero_pd();
    }
    for (std::size_t p = 0; p < n_paths; ++p) {
      const double* bplane = base + p * 2 * n_sc;
      const __m256d b_re = _mm256_loadu_pd(bplane + sc);
      const __m256d b_im = _mm256_loadu_pd(bplane + n_sc + sc);
      const double* st = steer + (p * n_pairs + pair0) * 2;
#pragma GCC unroll 8
      for (int k = 0; k < NB; ++k) {
        const __m256d sr = _mm256_set1_pd(st[2 * k]);
        const __m256d si = _mm256_set1_pd(st[2 * k + 1]);
        acc_re[k] =
            _mm256_fmadd_pd(sr, b_re, _mm256_fnmadd_pd(si, b_im, acc_re[k]));
        acc_im[k] =
            _mm256_fmadd_pd(sr, b_im, _mm256_fmadd_pd(si, b_re, acc_im[k]));
      }
    }
#pragma GCC unroll 8
    for (int k = 0; k < NB; ++k) {
      const __m256d lo = _mm256_unpacklo_pd(acc_re[k], acc_im[k]);
      const __m256d hi = _mm256_unpackhi_pd(acc_re[k], acc_im[k]);
      double* dst = reinterpret_cast<double*>(raw + (pair0 + k) * n_sc + sc);
      _mm256_storeu_pd(dst, _mm256_permute2f128_pd(lo, hi, 0x20));
      _mm256_storeu_pd(dst + 4, _mm256_permute2f128_pd(lo, hi, 0x31));
      vpow = _mm256_fmadd_pd(acc_re[k], acc_re[k],
                             _mm256_fmadd_pd(acc_im[k], acc_im[k], vpow));
    }
  }
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, vpow);
  power += lanes[0] + lanes[1] + lanes[2] + lanes[3];
  for (; sc < n_sc; ++sc) {
    for (int k = 0; k < NB; ++k) {
      double are = 0.0, aim = 0.0;
      for (std::size_t p = 0; p < n_paths; ++p) {
        const double* bplane = base + p * 2 * n_sc;
        const double sr = steer[(p * n_pairs + pair0 + k) * 2];
        const double si = steer[(p * n_pairs + pair0 + k) * 2 + 1];
        are += sr * bplane[sc] - si * bplane[n_sc + sc];
        aim += sr * bplane[n_sc + sc] + si * bplane[sc];
      }
      raw[(pair0 + k) * n_sc + sc] = cplx{are, aim};
      power += are * are + aim * aim;
    }
  }
}

__attribute__((target("avx2,fma"), optimize("fp-contract=off"))) void fused_mac_avx2(
    const double* base, const double* steer, std::size_t n_paths,
    std::size_t n_pairs, std::size_t n_sc, cplx* raw, double& power) {
  power = 0.0;
  for (std::size_t pair0 = 0; pair0 < n_pairs; pair0 += 6) {
    switch (std::min<std::size_t>(6, n_pairs - pair0)) {
      case 6:
        mac_block_avx2<6>(base, steer, n_paths, n_pairs, pair0, n_sc, raw,
                          power);
        break;
      case 5:
        mac_block_avx2<5>(base, steer, n_paths, n_pairs, pair0, n_sc, raw,
                          power);
        break;
      case 4:
        mac_block_avx2<4>(base, steer, n_paths, n_pairs, pair0, n_sc, raw,
                          power);
        break;
      case 3:
        mac_block_avx2<3>(base, steer, n_paths, n_pairs, pair0, n_sc, raw,
                          power);
        break;
      case 2:
        mac_block_avx2<2>(base, steer, n_paths, n_pairs, pair0, n_sc, raw,
                          power);
        break;
      default:
        mac_block_avx2<1>(base, steer, n_paths, n_pairs, pair0, n_sc, raw,
                          power);
        break;
    }
  }
}

// Staged 4-lane helpers over lane-padded arrays (n a multiple of 4).
__attribute__((target("avx2,fma"), optimize("fp-contract=off"))) void vsincos_n(const double* x,
                                                   std::size_t n, double* s,
                                                   double* c) {
  for (std::size_t i = 0; i < n; i += 4) {
    __m256d vs, vc;
    simdmath::vsincos(_mm256_loadu_pd(x + i), vs, vc);
    _mm256_storeu_pd(s + i, vs);
    _mm256_storeu_pd(c + i, vc);
  }
}

__attribute__((target("avx2,fma"), optimize("fp-contract=off"))) void vsqrt_n(double* x, std::size_t n) {
  for (std::size_t i = 0; i < n; i += 4)
    _mm256_storeu_pd(x + i, _mm256_sqrt_pd(_mm256_loadu_pd(x + i)));
}

// amp[i] = 10^((base_db - extra[i] - coef*log10(max(len[i], 1))) / 20) — the
// whole log-distance amplitude pipeline in one pass (port of
// WirelessChannel::path_amplitude via log_pos + exp2).
__attribute__((target("avx2,fma"), optimize("fp-contract=off"))) void vamp_n(const double* len,
                                                const double* extra,
                                                std::size_t n, double base_db,
                                                double coef, double* amp) {
  const __m256d one = _mm256_set1_pd(1.0);
  for (std::size_t i = 0; i < n; i += 4) {
    const __m256d l = _mm256_max_pd(_mm256_loadu_pd(len + i), one);
    const __m256d lg =
        _mm256_mul_pd(simdmath::vlog_pos(l), _mm256_set1_pd(kInvLn10));
    const __m256d db = _mm256_sub_pd(
        _mm256_sub_pd(_mm256_set1_pd(base_db), _mm256_loadu_pd(extra + i)),
        _mm256_mul_pd(_mm256_set1_pd(coef), lg));
    _mm256_storeu_pd(
        amp + i,
        simdmath::vexp2(_mm256_mul_pd(db, _mm256_set1_pd(kLog2Ten_Over20))));
  }
}

#endif  // __x86_64__

// ---------------------------------------------------------------------------
// fp32 plane tier. Same staging structure as the double path above, but the
// phasor planes, steering table and MAC run in float: 8 lanes under AVX2,
// 16 under AVX-512. What stays double, and why (the error budget is in
// DESIGN.md §5):
//   * geometry and amplitudes — RSSI/ToF derive from them bitwise;
//   * the start-phase reduction — a carrier-scale phase (~1e5 rad) carries
//     only ~1e-2 rad of precision as a float, so it is reduced mod 2pi in
//     double *before* the float conversion;
//   * chain seeds and the steering power chains — O(paths) work whose
//     double evaluation pins the fp32 error budget to the per-subcarrier
//     recurrence and MAC;
//   * the wideband power reduction — per-lane partial sums are fp32
//     (<= ~few hundred similar-magnitude terms), the horizontal reduction
//     and the noise-variance math are double.
// ---------------------------------------------------------------------------

// Bring a (possibly carrier-scale) phase into the fp32 sincos domain with a
// double-precision Cody-Waite reduction mod 2pi; below the threshold the
// conversion alone is already exact to float rounding. The fused products
// keep the residual to ~k*1e-32 + 1 ulp — std::remainder would match, but
// its iterative libm implementation costs more than the whole fp32 sincos.
constexpr double kInvTwoPi = 0.15915494309189535;   // 1/(2pi)
constexpr double kTwoPiHi = 6.283185307179586;      // 2pi rounded to double
constexpr double kTwoPiLo = 2.4492935982947064e-16; // 2pi - kTwoPiHi
float reduce_phase_f32(double x) {
  if (std::abs(x) > 512.0) {
    const double kd = std::nearbyint(x * kInvTwoPi);
    x = std::fma(-kd, kTwoPiHi, x);
    x = std::fma(-kd, kTwoPiLo, x);
  }
  return static_cast<float>(x);
}

// Scalar fp32 chain fill: the float port of the fp64 chain fill, seeded from
// the double chain seeds (so the scalar and vector fp32 tiers differ only
// in recurrence association, a few ulp_f32).
struct PathChainsF32 {
  float br[4];
  float bi[4];
  float s4r;
  float s4i;
};

PathChainsF32 seed_chains_f32(cplx start, cplx step) {
  const PathChains pc = seed_chains(start, step);
  PathChainsF32 out;
  for (int j = 0; j < 4; ++j) {
    out.br[j] = static_cast<float>(pc.br[j]);
    out.bi[j] = static_cast<float>(pc.bi[j]);
  }
  out.s4r = static_cast<float>(pc.s4r);
  out.s4i = static_cast<float>(pc.s4i);
  return out;
}

void fill_base_scalar_f32(const PathChainsF32& pc, float* bre, float* bim,
                          std::size_t n_sc) {
  float br[4], bi[4];
  for (int j = 0; j < 4; ++j) {
    br[j] = pc.br[j];
    bi[j] = pc.bi[j];
  }
  std::size_t sc = 0;
  for (; sc + 4 <= n_sc; sc += 4) {
    for (int j = 0; j < 4; ++j) {
      bre[sc + j] = br[j];
      bim[sc + j] = bi[j];
      const float nr = br[j] * pc.s4r - bi[j] * pc.s4i;
      bi[j] = br[j] * pc.s4i + bi[j] * pc.s4r;
      br[j] = nr;
    }
  }
  for (int j = 0; sc < n_sc; ++sc, ++j) {
    bre[sc] = br[j];
    bim[sc] = bi[j];
  }
}

#if defined(__x86_64__)

// 8-lane fp32 recurrence: seeds start*step^j for j = 0..3 computed in
// double (the serial dependency), lanes 4..7 derived with one fp32 vector
// complex multiply by step^4, one block chain stepping step^8. At most
// ceil(n_sc/8) - 1 fp32 chain steps, so rounding growth stays at a few
// ulp_f32.
__attribute__((target("avx2,fma"), optimize("fp-contract=off"))) void seed_lanes8_f32(cplx start, cplx step,
                                                         __m256& c_re,
                                                         __m256& c_im) {
  alignas(16) float sr[4], si[4];
  cplx c = start;
  for (int j = 0; j < 4; ++j) {
    sr[j] = static_cast<float>(c.real());
    si[j] = static_cast<float>(c.imag());
    c *= step;
  }
  const cplx s2 = step * step;
  const cplx s4 = s2 * s2;
  const __m128 a_re = _mm_load_ps(sr);
  const __m128 a_im = _mm_load_ps(si);
  const __m128 v4r = _mm_set1_ps(static_cast<float>(s4.real()));
  const __m128 v4i = _mm_set1_ps(static_cast<float>(s4.imag()));
  const __m128 b_re = _mm_fmsub_ps(a_re, v4r, _mm_mul_ps(a_im, v4i));
  const __m128 b_im = _mm_fmadd_ps(a_re, v4i, _mm_mul_ps(a_im, v4r));
  c_re = _mm256_set_m128(b_re, a_re);
  c_im = _mm256_set_m128(b_im, a_im);
}

__attribute__((target("avx2,fma"), optimize("fp-contract=off"))) void fill_base_avx2_f32(
    cplx start, cplx step, float* bre, float* bim, std::size_t n_sc) {
  __m256 c_re, c_im;
  seed_lanes8_f32(start, step, c_re, c_im);
  const cplx s2 = step * step;
  const cplx s8 = (s2 * s2) * (s2 * s2);
  const __m256 v8r = _mm256_set1_ps(static_cast<float>(s8.real()));
  const __m256 v8i = _mm256_set1_ps(static_cast<float>(s8.imag()));
  std::size_t sc = 0;
  for (;;) {
    if (sc + 8 <= n_sc) {
      _mm256_storeu_ps(bre + sc, c_re);
      _mm256_storeu_ps(bim + sc, c_im);
    } else {
      alignas(32) float tr[8], ti[8];
      _mm256_store_ps(tr, c_re);
      _mm256_store_ps(ti, c_im);
      for (std::size_t l = 0; sc + l < n_sc; ++l) {
        bre[sc + l] = tr[l];
        bim[sc + l] = ti[l];
      }
    }
    sc += 8;
    if (sc >= n_sc) break;
    const __m256 nr = _mm256_fmsub_ps(c_re, v8r, _mm256_mul_ps(c_im, v8i));
    c_im = _mm256_fmadd_ps(c_re, v8i, _mm256_mul_ps(c_im, v8r));
    c_re = nr;
  }
}

// 16-lane fp32 recurrence (AVX-512): seeds start*step^j (j = 0..15) in
// double, one block chain stepping step^16.
__attribute__((target("avx2,fma,avx512f,avx512dq,avx512vl"), optimize("fp-contract=off"))) void
fill_base_avx512_f32(cplx start, cplx step, float* bre, float* bim,
                     std::size_t n_sc) {
  // Lanes 0..7 seeded like the AVX2 kernel (4 serial double multiplies plus
  // one 4-lane fp32 complex multiply by step^4); lanes 8..15 are that half
  // times step^8 — the serial seed chain stays 4 long instead of 16.
  __m256 lo_re, lo_im;
  seed_lanes8_f32(start, step, lo_re, lo_im);
  const cplx s2 = step * step;
  const cplx s4 = s2 * s2;
  const cplx s8 = s4 * s4;
  const cplx s16 = s8 * s8;
  const __m256 v8r = _mm256_set1_ps(static_cast<float>(s8.real()));
  const __m256 v8i = _mm256_set1_ps(static_cast<float>(s8.imag()));
  const __m256 hi_re =
      _mm256_fmsub_ps(lo_re, v8r, _mm256_mul_ps(lo_im, v8i));
  const __m256 hi_im =
      _mm256_fmadd_ps(lo_re, v8i, _mm256_mul_ps(lo_im, v8r));
  __m512 c_re = _mm512_insertf32x8(_mm512_castps256_ps512(lo_re), hi_re, 1);
  __m512 c_im = _mm512_insertf32x8(_mm512_castps256_ps512(lo_im), hi_im, 1);
  const __m512 v16r = _mm512_set1_ps(static_cast<float>(s16.real()));
  const __m512 v16i = _mm512_set1_ps(static_cast<float>(s16.imag()));
  std::size_t sc = 0;
  for (;;) {
    if (sc + 16 <= n_sc) {
      _mm512_storeu_ps(bre + sc, c_re);
      _mm512_storeu_ps(bim + sc, c_im);
    } else {
      alignas(64) float tr[16], ti[16];
      _mm512_store_ps(tr, c_re);
      _mm512_store_ps(ti, c_im);
      for (std::size_t l = 0; sc + l < n_sc; ++l) {
        bre[sc + l] = tr[l];
        bim[sc + l] = ti[l];
      }
    }
    sc += 16;
    if (sc >= n_sc) break;
    const __m512 nr = _mm512_fmsub_ps(c_re, v16r, _mm512_mul_ps(c_im, v16i));
    c_im = _mm512_fmadd_ps(c_re, v16i, _mm512_mul_ps(c_im, v16r));
    c_re = nr;
  }
}

// fp32 register-blocked MAC, 8 subcarriers per slice. Accumulators are
// float; the CsiMatrix store widens to double (cvtps_pd) so downstream
// consumers see the same cplx layout on every tier. Per-lane power partials
// stay fp32, the horizontal reduction is double.
template <int NB>
__attribute__((target("avx2,fma"), optimize("fp-contract=off"))) void mac_block_avx2_f32(
    const float* base, const float* steer, std::size_t n_paths,
    std::size_t n_pairs, std::size_t pair0, std::size_t n_sc, cplx* raw,
    double& power) {
  __m256 vpow = _mm256_setzero_ps();
  // Subcarrier counts that are not lane multiples take the remainder as one
  // *overlapped* full-width slice anchored at n_sc - 8: the overlapped
  // element stores are idempotent, and a lane mask keeps the overlap out of
  // the power sum. Only n_sc < 8 falls back to the scalar loop.
  const std::size_t full = n_sc & ~std::size_t{7};
  const std::size_t n_slices =
      (n_sc >= 8) ? full / 8 + (full != n_sc ? 1 : 0) : 0;
  for (std::size_t slice = 0; slice < n_slices; ++slice) {
    const std::size_t sc = std::min<std::size_t>(slice * 8, n_sc - 8);
    __m256 acc_re[NB], acc_im[NB];
#pragma GCC unroll 8
    for (int k = 0; k < NB; ++k) {
      acc_re[k] = _mm256_setzero_ps();
      acc_im[k] = _mm256_setzero_ps();
    }
    for (std::size_t p = 0; p < n_paths; ++p) {
      const float* bplane = base + p * 2 * n_sc;
      const __m256 b_re = _mm256_loadu_ps(bplane + sc);
      const __m256 b_im = _mm256_loadu_ps(bplane + n_sc + sc);
      const float* st = steer + (p * n_pairs + pair0) * 2;
#pragma GCC unroll 8
      for (int k = 0; k < NB; ++k) {
        const __m256 sr = _mm256_set1_ps(st[2 * k]);
        const __m256 si = _mm256_set1_ps(st[2 * k + 1]);
        acc_re[k] =
            _mm256_fmadd_ps(sr, b_re, _mm256_fnmadd_ps(si, b_im, acc_re[k]));
        acc_im[k] =
            _mm256_fmadd_ps(sr, b_im, _mm256_fmadd_ps(si, b_re, acc_im[k]));
      }
    }
    __m256 keep = _mm256_castsi256_ps(_mm256_set1_epi32(-1));
    if (slice * 8 != sc) {  // overlapped tail: mask lanes < overlap
      const __m256 idx = _mm256_setr_ps(0, 1, 2, 3, 4, 5, 6, 7);
      keep = _mm256_cmp_ps(
          idx, _mm256_set1_ps(static_cast<float>(slice * 8 - sc)),
          _CMP_GE_OQ);
    }
#pragma GCC unroll 8
    for (int k = 0; k < NB; ++k) {
      const __m256 lo = _mm256_unpacklo_ps(acc_re[k], acc_im[k]);
      const __m256 hi = _mm256_unpackhi_ps(acc_re[k], acc_im[k]);
      double* dst = reinterpret_cast<double*>(raw + (pair0 + k) * n_sc + sc);
      _mm256_storeu_pd(dst, _mm256_cvtps_pd(_mm256_castps256_ps128(lo)));
      _mm256_storeu_pd(dst + 4, _mm256_cvtps_pd(_mm256_castps256_ps128(hi)));
      _mm256_storeu_pd(dst + 8, _mm256_cvtps_pd(_mm256_extractf128_ps(lo, 1)));
      _mm256_storeu_pd(dst + 12,
                       _mm256_cvtps_pd(_mm256_extractf128_ps(hi, 1)));
      const __m256 pre = _mm256_and_ps(acc_re[k], keep);
      const __m256 pim = _mm256_and_ps(acc_im[k], keep);
      vpow = _mm256_fmadd_ps(pre, pre, _mm256_fmadd_ps(pim, pim, vpow));
    }
  }
  alignas(32) float lanes[8];
  _mm256_store_ps(lanes, vpow);
  for (float lane : lanes) power += static_cast<double>(lane);
  for (std::size_t sc = n_slices * 8; sc < n_sc; ++sc) {  // only n_sc < 8
    for (int k = 0; k < NB; ++k) {
      float are = 0.0f, aim = 0.0f;
      for (std::size_t p = 0; p < n_paths; ++p) {
        const float* bplane = base + p * 2 * n_sc;
        const float sr = steer[(p * n_pairs + pair0 + k) * 2];
        const float si = steer[(p * n_pairs + pair0 + k) * 2 + 1];
        are += sr * bplane[sc] - si * bplane[n_sc + sc];
        aim += sr * bplane[n_sc + sc] + si * bplane[sc];
      }
      raw[(pair0 + k) * n_sc + sc] = cplx{are, aim};
      power += static_cast<double>(are) * are + static_cast<double>(aim) * aim;
    }
  }
}

__attribute__((target("avx2,fma"), optimize("fp-contract=off"))) void fused_mac_avx2_f32(
    const float* base, const float* steer, std::size_t n_paths,
    std::size_t n_pairs, std::size_t n_sc, cplx* raw, double& power) {
  power = 0.0;
  for (std::size_t pair0 = 0; pair0 < n_pairs; pair0 += 6) {
    switch (std::min<std::size_t>(6, n_pairs - pair0)) {
      case 6:
        mac_block_avx2_f32<6>(base, steer, n_paths, n_pairs, pair0, n_sc, raw,
                              power);
        break;
      case 5:
        mac_block_avx2_f32<5>(base, steer, n_paths, n_pairs, pair0, n_sc, raw,
                              power);
        break;
      case 4:
        mac_block_avx2_f32<4>(base, steer, n_paths, n_pairs, pair0, n_sc, raw,
                              power);
        break;
      case 3:
        mac_block_avx2_f32<3>(base, steer, n_paths, n_pairs, pair0, n_sc, raw,
                              power);
        break;
      case 2:
        mac_block_avx2_f32<2>(base, steer, n_paths, n_pairs, pair0, n_sc, raw,
                              power);
        break;
      default:
        mac_block_avx2_f32<1>(base, steer, n_paths, n_pairs, pair0, n_sc, raw,
                              power);
        break;
    }
  }
}

// fp32 MAC, 16 subcarriers per slice (AVX-512). The interleaved double
// store uses permutex2var on the widened halves.
template <int NB>
__attribute__((target("avx512f,avx512dq,avx512vl"), optimize("fp-contract=off"))) void mac_block_avx512_f32(
    const float* base, const float* steer, std::size_t n_paths,
    std::size_t n_pairs, std::size_t pair0, std::size_t n_sc, cplx* raw,
    double& power) {
  __m512 vpow = _mm512_setzero_ps();
  const __m512i idx_lo = _mm512_setr_epi64(0, 8, 1, 9, 2, 10, 3, 11);
  const __m512i idx_hi = _mm512_setr_epi64(4, 12, 5, 13, 6, 14, 7, 15);
  // Remainder handled as one overlapped full-width slice at n_sc - 16 (see
  // mac_block_avx2_f32); scalar fallback only below 16 subcarriers.
  const std::size_t full = n_sc & ~std::size_t{15};
  const std::size_t n_slices =
      (n_sc >= 16) ? full / 16 + (full != n_sc ? 1 : 0) : 0;
  for (std::size_t slice = 0; slice < n_slices; ++slice) {
    const std::size_t sc = std::min<std::size_t>(slice * 16, n_sc - 16);
    __m512 acc_re[NB], acc_im[NB];
#pragma GCC unroll 8
    for (int k = 0; k < NB; ++k) {
      acc_re[k] = _mm512_setzero_ps();
      acc_im[k] = _mm512_setzero_ps();
    }
    for (std::size_t p = 0; p < n_paths; ++p) {
      const float* bplane = base + p * 2 * n_sc;
      const __m512 b_re = _mm512_loadu_ps(bplane + sc);
      const __m512 b_im = _mm512_loadu_ps(bplane + n_sc + sc);
      const float* st = steer + (p * n_pairs + pair0) * 2;
#pragma GCC unroll 8
      for (int k = 0; k < NB; ++k) {
        const __m512 sr = _mm512_set1_ps(st[2 * k]);
        const __m512 si = _mm512_set1_ps(st[2 * k + 1]);
        acc_re[k] =
            _mm512_fmadd_ps(sr, b_re, _mm512_fnmadd_ps(si, b_im, acc_re[k]));
        acc_im[k] =
            _mm512_fmadd_ps(sr, b_im, _mm512_fmadd_ps(si, b_re, acc_im[k]));
      }
    }
    __mmask16 keep = 0xffff;
    if (slice * 16 != sc)  // overlapped tail: drop lanes < overlap
      keep = static_cast<__mmask16>(0xffffu << (slice * 16 - sc));
#pragma GCC unroll 8
    for (int k = 0; k < NB; ++k) {
      const __m512d re_lo =
          _mm512_cvtps_pd(_mm512_castps512_ps256(acc_re[k]));
      const __m512d im_lo =
          _mm512_cvtps_pd(_mm512_castps512_ps256(acc_im[k]));
      const __m512d re_hi =
          _mm512_cvtps_pd(_mm512_extractf32x8_ps(acc_re[k], 1));
      const __m512d im_hi =
          _mm512_cvtps_pd(_mm512_extractf32x8_ps(acc_im[k], 1));
      double* dst = reinterpret_cast<double*>(raw + (pair0 + k) * n_sc + sc);
      _mm512_storeu_pd(dst, _mm512_permutex2var_pd(re_lo, idx_lo, im_lo));
      _mm512_storeu_pd(dst + 8, _mm512_permutex2var_pd(re_lo, idx_hi, im_lo));
      _mm512_storeu_pd(dst + 16,
                       _mm512_permutex2var_pd(re_hi, idx_lo, im_hi));
      _mm512_storeu_pd(dst + 24,
                       _mm512_permutex2var_pd(re_hi, idx_hi, im_hi));
      const __m512 pre = _mm512_maskz_mov_ps(keep, acc_re[k]);
      const __m512 pim = _mm512_maskz_mov_ps(keep, acc_im[k]);
      vpow = _mm512_fmadd_ps(pre, pre, _mm512_fmadd_ps(pim, pim, vpow));
    }
  }
  alignas(64) float lanes[16];
  _mm512_store_ps(lanes, vpow);
  for (float lane : lanes) power += static_cast<double>(lane);
  for (std::size_t sc = n_slices * 16; sc < n_sc; ++sc) {  // only n_sc < 16
    for (int k = 0; k < NB; ++k) {
      float are = 0.0f, aim = 0.0f;
      for (std::size_t p = 0; p < n_paths; ++p) {
        const float* bplane = base + p * 2 * n_sc;
        const float sr = steer[(p * n_pairs + pair0 + k) * 2];
        const float si = steer[(p * n_pairs + pair0 + k) * 2 + 1];
        are += sr * bplane[sc] - si * bplane[n_sc + sc];
        aim += sr * bplane[n_sc + sc] + si * bplane[sc];
      }
      raw[(pair0 + k) * n_sc + sc] = cplx{are, aim};
      power += static_cast<double>(are) * are + static_cast<double>(aim) * aim;
    }
  }
}

__attribute__((target("avx512f,avx512dq,avx512vl"), optimize("fp-contract=off"))) void fused_mac_avx512_f32(
    const float* base, const float* steer, std::size_t n_paths,
    std::size_t n_pairs, std::size_t n_sc, cplx* raw, double& power) {
  power = 0.0;
  for (std::size_t pair0 = 0; pair0 < n_pairs; pair0 += 6) {
    switch (std::min<std::size_t>(6, n_pairs - pair0)) {
      case 6:
        mac_block_avx512_f32<6>(base, steer, n_paths, n_pairs, pair0, n_sc,
                                raw, power);
        break;
      case 5:
        mac_block_avx512_f32<5>(base, steer, n_paths, n_pairs, pair0, n_sc,
                                raw, power);
        break;
      case 4:
        mac_block_avx512_f32<4>(base, steer, n_paths, n_pairs, pair0, n_sc,
                                raw, power);
        break;
      case 3:
        mac_block_avx512_f32<3>(base, steer, n_paths, n_pairs, pair0, n_sc,
                                raw, power);
        break;
      case 2:
        mac_block_avx512_f32<2>(base, steer, n_paths, n_pairs, pair0, n_sc,
                                raw, power);
        break;
      default:
        mac_block_avx512_f32<1>(base, steer, n_paths, n_pairs, pair0, n_sc,
                                raw, power);
        break;
    }
  }
}

// Staged fp32 sincos passes over lane-padded arrays.
__attribute__((target("avx2,fma"), optimize("fp-contract=off"))) void vsincos_n_f8(const float* x,
                                                      std::size_t n, float* s,
                                                      float* c) {
  for (std::size_t i = 0; i < n; i += 8) {
    __m256 vs, vc;
    simdmath::vsincos_f8(_mm256_loadu_ps(x + i), vs, vc);
    _mm256_storeu_ps(s + i, vs);
    _mm256_storeu_ps(c + i, vc);
  }
}

__attribute__((target("avx512f,avx512dq,avx512vl"), optimize("fp-contract=off"))) void vsincos_n_f16(
    const float* x, std::size_t n, float* s, float* c) {
  for (std::size_t i = 0; i < n; i += 16) {
    __m512 vs, vc;
    simdmath::vsincos_f16(_mm512_loadu_ps(x + i), vs, vc);
    _mm512_storeu_ps(s + i, vs);
    _mm512_storeu_ps(c + i, vc);
  }
}

#endif  // __x86_64__

std::size_t pad4(std::size_t n) { return (n + 3) & ~std::size_t{3}; }
std::size_t pad16(std::size_t n) { return (n + 15) & ~std::size_t{15}; }

}  // namespace

struct ChannelBatch::SynthSpec {
  simd::Tier tier = simd::Tier::kScalar;  ///< dispatch, resolved per range call
  bool avx2 = false;                      ///< tier >= kAvx2 (geometry pass)
  bool fp32 = false;                      ///< float32 plane tier active

  static SynthSpec resolve() {
    const simd::Tier tier = simd::active_tier();
    return SynthSpec{tier, tier >= simd::Tier::kAvx2,
                     simd::active_precision() == simd::Precision::kFloat32};
  }
};

// Wide-argument geometry pass: the shared bail-out when any oscillator
// argument exceeds the fastmath range (huge t or client coordinates). Both
// tiers funnel here on exactly the same inputs (same max-|arg| check), so
// the libm fallback stays tier-invariant by construction. Mirrors
// WirelessChannel::path_geometries_into with the extended-range fastmath
// kernels in place of libm (sin, hypot, log10, pow): every value agrees to
// well under 1e-12 relative with the per-link pass.
void ChannelBatch::geometries_wide(const WirelessChannel& ch, double t,
                                   Scratch& scratch) {
  const ChannelConfig& cfg = ch.config_;
  std::vector<WirelessChannel::PathGeometry>& paths = scratch.geom.paths;
  paths.clear();
  paths.reserve(ch.scatterers_.size() + 1);

  const Vec2 client = ch.trajectory_->position(t);

  double shadow = 0.0;
  if (!ch.shadow_waves_.empty() && cfg.shadow_sigma_db != 0.0) {
    double sum = 0.0;
    for (const auto& w : ch.shadow_waves_)
      sum += sin_checked(w.k.dot(client) + w.phase);
    shadow = cfg.shadow_sigma_db * sum /
             std::sqrt(static_cast<double>(ch.shadow_waves_.size()) / 2.0);
  }

  double blockage = 0.0;
  for (const auto& s : ch.scatterers_) {
    if (s.blockage_depth_db == 0.0) continue;
    const double phase =
        sin_checked(2.0 * kPi * s.motion_freq_hz * t + s.motion_phase);
    const double pulse = std::max(0.0, phase);
    blockage += s.blockage_depth_db * pulse * pulse * pulse * pulse;
  }

  const double base_db = cfg.tx_power_dbm - cfg.ref_loss_db;
  auto amplitude_for = [&](double length_m, double extra_loss_db) {
    // path_amplitude: sqrt(dbm_to_mw(tx - ref - 10*n*log10(len) - extra))
    // == 10^((tx - ref - extra - 10*n*log10(len))/20), via exp2 and the
    // fastmath log10 instead of pow/log10.
    const double length = std::max(length_m, 1.0);
    return fastmath::db_to_amplitude(
        base_db - extra_loss_db -
        10.0 * cfg.path_loss_exponent * fastmath::log10_pos(length));
  };

  {
    WirelessChannel::PathGeometry los;
    los.length_m = fast_distance(ch.ap_pos_, client);
    const double obstruction =
        cfg.los_obstruction_db_per_m * std::max(0.0, los.length_m - 5.0);
    los.amplitude =
        amplitude_for(los.length_m, shadow + obstruction + blockage);
    los.phase0 = 0.0;
    const Vec2 d = client - ch.ap_pos_;
    los.cos_aod = los.length_m > 0.0 ? d.x / los.length_m : 1.0;
    los.cos_aoa = los.length_m > 0.0 ? -d.x / los.length_m : 1.0;
    paths.push_back(los);
  }

  for (const auto& s : ch.scatterers_) {
    Vec2 sp = s.home;
    if (s.motion_amplitude_m != 0.0) {
      const double sway =
          s.motion_amplitude_m *
          sin_checked(2.0 * kPi * s.motion_freq_hz * t + s.motion_phase);
      sp = s.home + s.motion_dir * sway;
    }
    WirelessChannel::PathGeometry p;
    const double out_len = fast_distance(ch.ap_pos_, sp);
    const double in_len = fast_distance(sp, client);
    p.length_m = out_len + in_len;
    p.amplitude = amplitude_for(p.length_m, s.reflection_loss_db + shadow);
    p.phase0 = s.reflection_phase;
    const Vec2 out = sp - ch.ap_pos_;
    const Vec2 in = sp - client;
    p.cos_aod = out_len > 0.0 ? out.x / out_len : 1.0;
    p.cos_aoa = in_len > 0.0 ? in.x / in_len : 1.0;
    paths.push_back(p);
  }
}

// Scalar geometry pass — bitwise mirror of the staged AVX2 pass below. The
// staging order, the lane kernels (lanemath::sincos / log_pos / exp2 == one
// lane of vsincos / vlog_pos / vexp2), the shadow-sum order and the
// range-check that routes to geometries_wide are all identical, so a
// non-AVX2 host produces the same geometry bits as an AVX2 host.
void ChannelBatch::geometries_scalar(const WirelessChannel& ch, double t,
                                     Scratch& s) {
  const ChannelConfig& cfg = ch.config_;
  const std::size_t n_scat = ch.scatterers_.size();
  const std::size_t n_waves =
      (cfg.shadow_sigma_db != 0.0) ? ch.shadow_waves_.size() : 0;
  const Vec2 client = ch.trajectory_->position(t);

  // Stage 1: oscillator arguments + the same wide-argument bail as AVX2.
  const std::size_t n_osc = n_waves + n_scat;
  s.arg.resize(n_osc);
  double max_abs = 0.0;
  for (std::size_t i = 0; i < n_waves; ++i) {
    s.arg[i] = ch.shadow_waves_[i].k.dot(client) + ch.shadow_waves_[i].phase;
    max_abs = std::max(max_abs, std::abs(s.arg[i]));
  }
  for (std::size_t j = 0; j < n_scat; ++j) {
    const auto& sc = ch.scatterers_[j];
    s.arg[n_waves + j] = 2.0 * kPi * sc.motion_freq_hz * t + sc.motion_phase;
    max_abs = std::max(max_abs, std::abs(s.arg[n_waves + j]));
  }
  if (max_abs > fastmath::kSincosWideMaxArg) [[unlikely]] {
    geometries_wide(ch, t, s);
    return;
  }
  s.sinv.resize(n_osc);
  for (std::size_t i = 0; i < n_osc; ++i) {
    double c_unused;
    lanemath::sincos(s.arg[i], s.sinv[i], c_unused);
  }
  const double* mover_sin = s.sinv.data() + n_waves;

  double shadow = 0.0;
  if (n_waves != 0) {
    double sum = 0.0;
    for (std::size_t i = 0; i < n_waves; ++i) sum += s.sinv[i];
    shadow = cfg.shadow_sigma_db * sum /
             std::sqrt(static_cast<double>(n_waves) / 2.0);
  }
  double blockage = 0.0;
  for (std::size_t j = 0; j < n_scat; ++j) {
    const double depth = ch.scatterers_[j].blockage_depth_db;
    if (depth == 0.0) continue;
    const double pulse = std::max(0.0, mover_sin[j]);
    blockage += depth * pulse * pulse * pulse * pulse;
  }

  // Stage 2: leg squared lengths, then sqrt (correctly rounded on both
  // tiers, so a plain std::sqrt matches _mm256_sqrt_pd exactly).
  const std::size_t n_legs = 1 + 2 * n_scat;
  s.len.resize(n_legs);
  s.dxs.resize(n_legs);
  {
    const double dx = client.x - ch.ap_pos_.x;
    const double dy = client.y - ch.ap_pos_.y;
    s.len[0] = dx * dx + dy * dy;
    s.dxs[0] = dx;
  }
  for (std::size_t j = 0; j < n_scat; ++j) {
    const auto& sc = ch.scatterers_[j];
    Vec2 sp = sc.home;
    if (sc.motion_amplitude_m != 0.0) {
      const double sway = sc.motion_amplitude_m * mover_sin[j];
      sp = sc.home + sc.motion_dir * sway;
    }
    const double ox = sp.x - ch.ap_pos_.x;
    const double oy = sp.y - ch.ap_pos_.y;
    const double ix = sp.x - client.x;
    const double iy = sp.y - client.y;
    s.len[1 + 2 * j] = ox * ox + oy * oy;
    s.dxs[1 + 2 * j] = ox;
    s.len[2 + 2 * j] = ix * ix + iy * iy;
    s.dxs[2 + 2 * j] = ix;
  }
  for (std::size_t i = 0; i < n_legs; ++i) s.len[i] = std::sqrt(s.len[i]);

  // Stage 3: per-path lengths / extra losses and the amplitude pipeline
  // (one lane of vamp_n per path).
  const std::size_t n_paths = n_scat + 1;
  const double base_db = cfg.tx_power_dbm - cfg.ref_loss_db;
  const double coef = 10.0 * cfg.path_loss_exponent;
  const double los_len = s.len[0];
  std::vector<WirelessChannel::PathGeometry>& paths = s.geom.paths;
  paths.clear();
  paths.reserve(n_paths);
  {
    WirelessChannel::PathGeometry los;
    los.length_m = los_len;
    const double extra =
        shadow + cfg.los_obstruction_db_per_m * std::max(0.0, los_len - 5.0) +
        blockage;
    los.amplitude = amp_lane(los_len, extra, base_db, coef);
    los.phase0 = 0.0;
    los.cos_aod = los_len > 0.0 ? s.dxs[0] / los_len : 1.0;
    los.cos_aoa = los_len > 0.0 ? -s.dxs[0] / los_len : 1.0;
    paths.push_back(los);
  }
  for (std::size_t j = 0; j < n_scat; ++j) {
    WirelessChannel::PathGeometry p;
    const double out_len = s.len[1 + 2 * j];
    const double in_len = s.len[2 + 2 * j];
    p.length_m = out_len + in_len;
    p.amplitude = amp_lane(
        p.length_m, ch.scatterers_[j].reflection_loss_db + shadow, base_db,
        coef);
    p.phase0 = ch.scatterers_[j].reflection_phase;
    p.cos_aod = out_len > 0.0 ? s.dxs[1 + 2 * j] / out_len : 1.0;
    p.cos_aoa = in_len > 0.0 ? s.dxs[2 + 2 * j] / in_len : 1.0;
    paths.push_back(p);
  }
}

void ChannelBatch::geometries(const WirelessChannel& ch, double t,
                              const SynthSpec& spec, Scratch& s) {
#if defined(__x86_64__)
  if (!spec.avx2) {
    geometries_scalar(ch, t, s);
    return;
  }
  // Staged vector pass: gather every oscillator argument / squared length /
  // loss exponent of the sample into lane-padded planes and run each
  // transcendental family once, 4 lanes at a time. Values agree with the
  // scalar pass to ~1 ulp per kernel (same fdlibm evaluation order), and
  // the per-scatterer pacing sine is computed once and shared between the
  // blockage pulse and the sway displacement (identical argument).
  const ChannelConfig& cfg = ch.config_;
  const std::size_t n_scat = ch.scatterers_.size();
  const std::size_t n_waves =
      (cfg.shadow_sigma_db != 0.0) ? ch.shadow_waves_.size() : 0;
  const Vec2 client = ch.trajectory_->position(t);

  // A realization with no moving/blocking scatterer (every campus channel:
  // structural reflectors only) consumes no pacing sine at all — its
  // oscillator args were exactly 0.0 and read by nobody, so dropping the
  // lanes changes neither the wide-fallback decision (zeros never set
  // max_abs) nor any consumed bit.
  bool movers = false;
  for (const auto& sc : ch.scatterers_)
    movers |= (sc.motion_amplitude_m != 0.0 || sc.blockage_depth_db != 0.0);

  // Stage 1: shadow-field and pacing oscillator arguments.
  const std::size_t n_osc = n_waves + (movers ? n_scat : 0);
  s.arg.resize(pad4(n_osc));
  double max_abs = 0.0;
  for (std::size_t i = 0; i < n_waves; ++i) {
    s.arg[i] = ch.shadow_waves_[i].k.dot(client) + ch.shadow_waves_[i].phase;
    max_abs = std::max(max_abs, std::abs(s.arg[i]));
  }
  for (std::size_t j = 0; movers && j < n_scat; ++j) {
    const auto& sc = ch.scatterers_[j];
    s.arg[n_waves + j] = 2.0 * kPi * sc.motion_freq_hz * t + sc.motion_phase;
    max_abs = std::max(max_abs, std::abs(s.arg[n_waves + j]));
  }
  if (max_abs > fastmath::kSincosWideMaxArg) [[unlikely]] {
    geometries_wide(ch, t, s);
    return;
  }
  for (std::size_t i = n_osc; i < s.arg.size(); ++i) s.arg[i] = 0.0;
  s.sinv.resize(s.arg.size());
  s.cosv.resize(s.arg.size());
  vsincos_n(s.arg.data(), s.arg.size(), s.sinv.data(), s.cosv.data());
  const double* mover_sin = s.sinv.data() + n_waves;

  double shadow = 0.0;
  if (n_waves != 0) {
    double sum = 0.0;
    for (std::size_t i = 0; i < n_waves; ++i) sum += s.sinv[i];
    shadow = cfg.shadow_sigma_db * sum /
             std::sqrt(static_cast<double>(n_waves) / 2.0);
  }
  double blockage = 0.0;
  for (std::size_t j = 0; j < n_scat; ++j) {
    const double depth = ch.scatterers_[j].blockage_depth_db;
    if (depth == 0.0) continue;
    const double pulse = std::max(0.0, mover_sin[j]);
    blockage += depth * pulse * pulse * pulse * pulse;
  }

  // Stage 2: leg vectors and squared lengths (index 0 = LOS, then the
  // out/in legs of each scatterer), then one vector sqrt pass.
  const std::size_t n_legs = 1 + 2 * n_scat;
  s.len.resize(pad4(n_legs));
  s.dxs.resize(pad4(n_legs));
  {
    const double dx = client.x - ch.ap_pos_.x;
    const double dy = client.y - ch.ap_pos_.y;
    s.len[0] = dx * dx + dy * dy;
    s.dxs[0] = dx;
  }
  for (std::size_t j = 0; j < n_scat; ++j) {
    const auto& sc = ch.scatterers_[j];
    Vec2 sp = sc.home;
    if (sc.motion_amplitude_m != 0.0) {
      const double sway = sc.motion_amplitude_m * mover_sin[j];
      sp = sc.home + sc.motion_dir * sway;
    }
    const double ox = sp.x - ch.ap_pos_.x;
    const double oy = sp.y - ch.ap_pos_.y;
    const double ix = sp.x - client.x;
    const double iy = sp.y - client.y;
    s.len[1 + 2 * j] = ox * ox + oy * oy;
    s.dxs[1 + 2 * j] = ox;
    s.len[2 + 2 * j] = ix * ix + iy * iy;
    s.dxs[2 + 2 * j] = ix;
  }
  for (std::size_t i = n_legs; i < s.len.size(); ++i) s.len[i] = 1.0;
  vsqrt_n(s.len.data(), s.len.size());

  // Stage 3: per-path total lengths and extra losses, then one vector
  // log10 + exp2 pass for every amplitude. arg/cosv are re-carved for the
  // per-path planes (their oscillator contents are fully consumed).
  const std::size_t n_paths = n_scat + 1;
  s.arg.resize(pad4(n_paths));   // per-path total length
  s.cosv.resize(pad4(n_paths));  // per-path extra loss (dB)
  const double los_len = s.len[0];
  s.arg[0] = los_len;
  s.cosv[0] = shadow +
              cfg.los_obstruction_db_per_m * std::max(0.0, los_len - 5.0) +
              blockage;
  for (std::size_t j = 0; j < n_scat; ++j) {
    s.arg[1 + j] = s.len[1 + 2 * j] + s.len[2 + 2 * j];
    s.cosv[1 + j] = ch.scatterers_[j].reflection_loss_db + shadow;
  }
  for (std::size_t i = n_paths; i < s.arg.size(); ++i) {
    s.arg[i] = 1.0;
    s.cosv[i] = 0.0;
  }
  s.amp.resize(s.arg.size());
  vamp_n(s.arg.data(), s.cosv.data(), s.arg.size(),
         cfg.tx_power_dbm - cfg.ref_loss_db, 10.0 * cfg.path_loss_exponent,
         s.amp.data());

  // Stage 4: assemble the PathGeometry records (LOS first, then one per
  // scatterer — identical ordering and angle conventions to the per-link
  // pass).
  std::vector<WirelessChannel::PathGeometry>& paths = s.geom.paths;
  paths.clear();
  paths.reserve(n_paths);
  {
    WirelessChannel::PathGeometry los;
    los.length_m = los_len;
    los.amplitude = s.amp[0];
    los.phase0 = 0.0;
    los.cos_aod = los_len > 0.0 ? s.dxs[0] / los_len : 1.0;
    los.cos_aoa = los_len > 0.0 ? -s.dxs[0] / los_len : 1.0;
    paths.push_back(los);
  }
  for (std::size_t j = 0; j < n_scat; ++j) {
    WirelessChannel::PathGeometry p;
    const double out_len = s.len[1 + 2 * j];
    const double in_len = s.len[2 + 2 * j];
    p.length_m = s.arg[1 + j];
    p.amplitude = s.amp[1 + j];
    p.phase0 = ch.scatterers_[j].reflection_phase;
    p.cos_aod = out_len > 0.0 ? s.dxs[1 + 2 * j] / out_len : 1.0;
    p.cos_aoa = in_len > 0.0 ? s.dxs[2 + 2 * j] / in_len : 1.0;
    paths.push_back(p);
  }
#else
  (void)spec;
  geometries_scalar(ch, t, s);
#endif
}

void ChannelBatch::synthesize(const WirelessChannel& ch, const SynthSpec& spec,
                              Scratch& scratch, CsiMatrix& out,
                              double& power_mw) {
  if (spec.fp32) {
    synthesize_f32(ch, spec, scratch, out, power_mw);
    return;
  }
  const ChannelConfig& cfg = ch.config_;
  const std::size_t n_sc = cfg.n_subcarriers;
  const std::size_t n_pairs = cfg.n_tx * cfg.n_rx;
  const std::size_t n_paths = scratch.geom.paths.size();
  out.resize_for_overwrite(cfg.n_tx, cfg.n_rx, n_sc);
  scratch.base.resize(n_paths * 2 * n_sc);
  scratch.steer.resize(n_paths * n_pairs * 2);
  const double half = static_cast<double>(n_sc - 1) / 2.0;

  // Per-path phase set {step, start, tx steering, rx steering} — staged as
  // one 4-lane sincos pass per path on the AVX2 path.
  scratch.arg.resize(4 * n_paths);
  scratch.sinv.resize(4 * n_paths);
  scratch.cosv.resize(4 * n_paths);
  bool wide_ok = true;
  for (std::size_t p = 0; p < n_paths; ++p) {
    const WirelessChannel::PathGeometry& path = scratch.geom.paths[p];
    const double tau = path.length_m / kSpeedOfLight;
    const double centre_phase =
        -2.0 * kPi * cfg.carrier_hz * tau + path.phase0;
    scratch.arg[4 * p] = -2.0 * kPi * cfg.subcarrier_spacing_hz * tau;
    scratch.arg[4 * p + 1] =
        centre_phase + 2.0 * kPi * cfg.subcarrier_spacing_hz * tau * half;
    scratch.arg[4 * p + 2] = -kPi * path.cos_aod;
    scratch.arg[4 * p + 3] = -kPi * path.cos_aoa;
    if (std::abs(scratch.arg[4 * p + 1]) > fastmath::kSincosWideMaxArg)
      wide_ok = false;
  }
#if defined(__x86_64__)
  const bool vec = spec.avx2 && wide_ok;
  if (vec) {
    vsincos_n(scratch.arg.data(), 4 * n_paths, scratch.sinv.data(),
              scratch.cosv.data());
  }
#else
  const bool vec = false;
#endif
  if (!vec) {
    if (wide_ok) {
      // Bitwise mirror of the vsincos staging pass above.
      for (std::size_t i = 0; i < 4 * n_paths; ++i)
        lanemath::sincos(scratch.arg[i], scratch.sinv[i], scratch.cosv[i]);
    } else {
      // Out-of-range start phase: both tiers take this libm-backed loop
      // (the AVX2 tier also has vec == false here), so it stays invariant.
      for (std::size_t i = 0; i < 4 * n_paths; ++i) {
        const double x = scratch.arg[i];
        if (std::abs(x) > fastmath::kSincosWideMaxArg) [[unlikely]] {
          scratch.sinv[i] = std::sin(x);
          scratch.cosv[i] = std::cos(x);
        } else {
          fastmath::sincos_wide(x, scratch.sinv[i], scratch.cosv[i]);
        }
      }
    }
  }

  for (std::size_t p = 0; p < n_paths; ++p) {
    const double amp = scratch.geom.paths[p].amplitude;
    const cplx step{scratch.cosv[4 * p], scratch.sinv[4 * p]};
    const cplx start{amp * scratch.cosv[4 * p + 1],
                     amp * scratch.sinv[4 * p + 1]};
    const PathChains pc = seed_chains(start, step);
    double* bplane = scratch.base.data() + p * 2 * n_sc;
#if defined(__x86_64__)
    if (spec.avx2)
      fill_base_avx2(pc, bplane, bplane + n_sc, n_sc);
    else
      fill_base_lane(pc, bplane, bplane + n_sc, n_sc);
#else
    fill_base_lane(pc, bplane, bplane + n_sc, n_sc);
#endif

    // ULA steering phasor power chains, one row of the steering table per
    // path — identical chain order to the per-link kernel.
    const cplx w_tx{scratch.cosv[4 * p + 2], scratch.sinv[4 * p + 2]};
    const cplx w_rx{scratch.cosv[4 * p + 3], scratch.sinv[4 * p + 3]};
    double* st = scratch.steer.data() + p * n_pairs * 2;
    cplx steer_tx{1.0, 0.0};
    for (std::size_t tx = 0; tx < cfg.n_tx; ++tx) {
      cplx steer = steer_tx;
      for (std::size_t rx = 0; rx < cfg.n_rx; ++rx) {
        *st++ = steer.real();
        *st++ = steer.imag();
        steer *= w_rx;
      }
      steer_tx *= w_tx;
    }
  }

  double power_sum = 0.0;
#if defined(__x86_64__)
  if (spec.avx2) {
    fused_mac_avx2(scratch.base.data(), scratch.steer.data(), n_paths,
                   n_pairs, n_sc, out.raw().data(), power_sum);
    power_mw = power_sum;
    return;
  }
#endif
  // Scalar fused MAC — bitwise mirror of fused_mac_avx2 (same slice /
  // register-block structure, std::fma accumulation, fixed-order power
  // reduction).
  fused_mac_lane(scratch.base.data(), scratch.steer.data(), n_paths, n_pairs,
                 n_sc, out.raw().data(), power_sum);
  power_mw = power_sum;
}

// The float32 plane tier of synthesize: same per-path staging, with the
// sincos pass, the phasor recurrence, the steering table and the MAC in
// fp32 (8-lane AVX2 / 16-lane AVX-512 / scalar float). The start phase is
// reduced mod 2pi in double before the float conversion — the one stage a
// float cannot survive — and chain seeds plus the steering power chains are
// evaluated in double from the fp32 sincos results, so scalar and vector
// fp32 tiers differ only in recurrence/MAC association (a few ulp_f32).
// CSI agrees with the fp64 path to <= 1e-4 scale-relative; the power sum
// feeding the noise variance reduces in double.
void ChannelBatch::synthesize_f32(const WirelessChannel& ch,
                                  const SynthSpec& spec, Scratch& scratch,
                                  CsiMatrix& out, double& power_mw) {
  const ChannelConfig& cfg = ch.config_;
  const std::size_t n_sc = cfg.n_subcarriers;
  const std::size_t n_pairs = cfg.n_tx * cfg.n_rx;
  const std::size_t n_paths = scratch.geom.paths.size();
  out.resize_for_overwrite(cfg.n_tx, cfg.n_rx, n_sc);
  scratch.basef.resize(n_paths * 2 * n_sc);
  scratch.steerf.resize(n_paths * n_pairs * 2);
  const double half = static_cast<double>(n_sc - 1) / 2.0;

  // Per-path phase set {step, start, tx steering, rx steering}, computed in
  // double and reduced into the fp32 sincos domain. step and the steering
  // phases are already small (|x| <= pi + spacing*tau); only the start
  // phase carries the carrier term.
  const std::size_t n_args = 4 * n_paths;
  scratch.argf.resize(pad16(n_args));
  scratch.sinvf.resize(scratch.argf.size());
  scratch.cosvf.resize(scratch.argf.size());
  for (std::size_t p = 0; p < n_paths; ++p) {
    const WirelessChannel::PathGeometry& path = scratch.geom.paths[p];
    const double tau = path.length_m / kSpeedOfLight;
    const double centre_phase =
        -2.0 * kPi * cfg.carrier_hz * tau + path.phase0;
    const double step_arg = -2.0 * kPi * cfg.subcarrier_spacing_hz * tau;
    const double start_arg =
        centre_phase + 2.0 * kPi * cfg.subcarrier_spacing_hz * tau * half;
    scratch.argf[4 * p] = reduce_phase_f32(step_arg);
    scratch.argf[4 * p + 1] = reduce_phase_f32(start_arg);
    scratch.argf[4 * p + 2] = static_cast<float>(-kPi * path.cos_aod);
    scratch.argf[4 * p + 3] = static_cast<float>(-kPi * path.cos_aoa);
  }
  for (std::size_t i = n_args; i < scratch.argf.size(); ++i)
    scratch.argf[i] = 0.0f;

#if defined(__x86_64__)
  if (spec.tier == simd::Tier::kAvx512) {
    vsincos_n_f16(scratch.argf.data(), scratch.argf.size(),
                  scratch.sinvf.data(), scratch.cosvf.data());
  } else if (spec.tier >= simd::Tier::kAvx2) {
    vsincos_n_f8(scratch.argf.data(), scratch.argf.size(),
                 scratch.sinvf.data(), scratch.cosvf.data());
  } else
#endif
  {
    for (std::size_t i = 0; i < n_args; ++i)
      fastmath::sincos_f32(scratch.argf[i], scratch.sinvf[i],
                           scratch.cosvf[i]);
  }

  for (std::size_t p = 0; p < n_paths; ++p) {
    const double amp = scratch.geom.paths[p].amplitude;
    const cplx step{static_cast<double>(scratch.cosvf[4 * p]),
                    static_cast<double>(scratch.sinvf[4 * p])};
    const cplx start{amp * static_cast<double>(scratch.cosvf[4 * p + 1]),
                     amp * static_cast<double>(scratch.sinvf[4 * p + 1])};
    float* bplane = scratch.basef.data() + p * 2 * n_sc;
#if defined(__x86_64__)
    if (spec.tier == simd::Tier::kAvx512)
      fill_base_avx512_f32(start, step, bplane, bplane + n_sc, n_sc);
    else if (spec.tier >= simd::Tier::kAvx2)
      fill_base_avx2_f32(start, step, bplane, bplane + n_sc, n_sc);
    else
      fill_base_scalar_f32(seed_chains_f32(start, step), bplane,
                           bplane + n_sc, n_sc);
#else
    fill_base_scalar_f32(seed_chains_f32(start, step), bplane, bplane + n_sc,
                         n_sc);
#endif

    // Steering power chains in double (O(paths * pairs) — negligible),
    // stored as the fp32 steering table the MAC broadcasts from.
    const cplx w_tx{static_cast<double>(scratch.cosvf[4 * p + 2]),
                    static_cast<double>(scratch.sinvf[4 * p + 2])};
    const cplx w_rx{static_cast<double>(scratch.cosvf[4 * p + 3]),
                    static_cast<double>(scratch.sinvf[4 * p + 3])};
    float* st = scratch.steerf.data() + p * n_pairs * 2;
    cplx steer_tx{1.0, 0.0};
    for (std::size_t tx = 0; tx < cfg.n_tx; ++tx) {
      cplx steer = steer_tx;
      for (std::size_t rx = 0; rx < cfg.n_rx; ++rx) {
        *st++ = static_cast<float>(steer.real());
        *st++ = static_cast<float>(steer.imag());
        steer *= w_rx;
      }
      steer_tx *= w_tx;
    }
  }

  double power_sum = 0.0;
#if defined(__x86_64__)
  if (spec.tier == simd::Tier::kAvx512) {
    fused_mac_avx512_f32(scratch.basef.data(), scratch.steerf.data(), n_paths,
                         n_pairs, n_sc, out.raw().data(), power_sum);
    power_mw = power_sum;
    return;
  }
  if (spec.tier >= simd::Tier::kAvx2) {
    fused_mac_avx2_f32(scratch.basef.data(), scratch.steerf.data(), n_paths,
                       n_pairs, n_sc, out.raw().data(), power_sum);
    power_mw = power_sum;
    return;
  }
#endif
  for (std::size_t pair = 0; pair < n_pairs; ++pair) {
    for (std::size_t sc = 0; sc < n_sc; ++sc) {
      float are = 0.0f, aim = 0.0f;
      for (std::size_t p = 0; p < n_paths; ++p) {
        const float* bplane = scratch.basef.data() + p * 2 * n_sc;
        const float sr = scratch.steerf[(p * n_pairs + pair) * 2];
        const float si = scratch.steerf[(p * n_pairs + pair) * 2 + 1];
        are += sr * bplane[sc] - si * bplane[n_sc + sc];
        aim += sr * bplane[n_sc + sc] + si * bplane[sc];
      }
      out.raw()[pair * n_sc + sc] = cplx{are, aim};
      power_sum +=
          static_cast<double>(are) * are + static_cast<double>(aim) * aim;
    }
  }
  power_mw = power_sum;
}

void ChannelBatch::sample_one(WirelessChannel& ch, const SynthSpec& spec,
                              double t, ChannelSample& out, Scratch& scratch) {
  out.t = t;
  geometries(ch, t, spec, scratch);
  double csi_power_sum = 0.0;
  synthesize(ch, spec, scratch, out.csi, csi_power_sum);

  const ChannelConfig& cfg = ch.config_;
  const double signal_dbm =
      fast_mw_to_dbm(WirelessChannel::total_power_mw(scratch.geom.paths));
  const double link_snr = signal_dbm - fast_noise_floor_dbm(cfg);

  // CSI noise with the variance the per-link add_csi_noise derives, using
  // the power accumulated during the MAC store pass. Draw order (CSI noise,
  // RSSI jitter, ToF jitter) matches sample_into, so per-link RNG state
  // stays in lockstep with unbatched sampling.
  const double snr =
      std::min(link_snr + cfg.csi_processing_gain_db, cfg.csi_snr_cap_db);
  const double mean_pow =
      csi_power_sum / static_cast<double>(out.csi.raw().size());
  const double noise_var = mean_pow / fast_db_to_linear(snr);
  ch.rng_.add_complex_gaussian(out.csi.raw().data(), out.csi.raw().size(),
                               noise_var);

  const double raw_rssi = signal_dbm + ch.rng_.gaussian(0.0, cfg.rssi_noise_db);
  const double q = cfg.rssi_quantum_db;
  out.rssi_dbm = std::round(raw_rssi / q) * q;
  out.snr_db = link_snr;

  const double d = scratch.geom.paths.front().length_m;
  const double rt_ns = 2.0 * d / kSpeedOfLight * 1e9;
  const double measured_ns =
      rt_ns + cfg.tof_bias_ns + ch.rng_.gaussian(0.0, cfg.tof_noise_ns);
  out.tof_cycles = std::round(measured_ns * 1e-9 * cfg.tof_clock_hz);
  out.true_distance_m = d;
}

void ChannelBatch::sample_range(double t, std::size_t begin, std::size_t end,
                                ChannelSample* out, Scratch& scratch) {
  const SynthSpec spec = SynthSpec::resolve();
  for (std::size_t i = begin; i < end; ++i)
    if (links_[i] != nullptr) sample_one(*links_[i], spec, t, out[i], scratch);
}

void ChannelBatch::sample_slot(double t, std::size_t slot, ChannelSample& out,
                               Scratch& scratch) {
  const SynthSpec spec = SynthSpec::resolve();
  sample_one(*links_[slot], spec, t, out, scratch);
}

void ChannelBatch::sample_link(WirelessChannel& ch, double t,
                               ChannelSample& out, Scratch& scratch) {
  const SynthSpec spec = SynthSpec::resolve();
  sample_one(ch, spec, t, out, scratch);
}

void ChannelBatch::csi_into(std::size_t i, double t, CsiMatrix& out,
                            Scratch& scratch) {
  WirelessChannel& ch = *links_[i];
  const SynthSpec spec = SynthSpec::resolve();
  geometries(ch, t, spec, scratch);
  double csi_power_sum = 0.0;
  synthesize(ch, spec, scratch, out, csi_power_sum);

  const ChannelConfig& cfg = ch.config_;
  const double link_snr =
      fast_mw_to_dbm(WirelessChannel::total_power_mw(scratch.geom.paths)) -
      fast_noise_floor_dbm(cfg);
  const double snr =
      std::min(link_snr + cfg.csi_processing_gain_db, cfg.csi_snr_cap_db);
  const double mean_pow = csi_power_sum / static_cast<double>(out.raw().size());
  const double noise_var = mean_pow / fast_db_to_linear(snr);
  ch.rng_.add_complex_gaussian(out.raw().data(), out.raw().size(), noise_var);
}

void ChannelBatch::csi_true_into(std::size_t i, double t, CsiMatrix& out,
                                 Scratch& scratch) const {
  const WirelessChannel& ch = *links_[i];
  const SynthSpec spec = SynthSpec::resolve();
  geometries(ch, t, spec, scratch);
  double csi_power_sum = 0.0;
  synthesize(ch, spec, scratch, out, csi_power_sum);
}

void ChannelBatch::rssi_all(double t, Scratch& scratch) {
  const SynthSpec spec = SynthSpec::resolve();
  scratch.rssi.resize(links_.size());
  for (std::size_t i = 0; i < links_.size(); ++i) {
    if (links_[i] == nullptr) {
      scratch.rssi[i] = -1e9;  // holes never win strongest_link
      continue;
    }
    WirelessChannel& ch = *links_[i];
    geometries(ch, t, spec, scratch);
    const double raw =
        fast_mw_to_dbm(WirelessChannel::total_power_mw(scratch.geom.paths)) +
        ch.rng_.gaussian(0.0, ch.config_.rssi_noise_db);
    const double q = ch.config_.rssi_quantum_db;
    scratch.rssi[i] = std::round(raw / q) * q;
  }
}

void ChannelBatch::tof_all(double t, double* out) {
  for (std::size_t i = 0; i < links_.size(); ++i)
    if (links_[i] != nullptr) out[i] = links_[i]->tof_cycles(t);
}

std::size_t ChannelBatch::strongest_link(double t, Scratch& scratch) {
  rssi_all(t, scratch);
  std::size_t best = 0;
  double best_rssi = -1e9;
  for (std::size_t i = 0; i < scratch.rssi.size(); ++i) {
    if (scratch.rssi[i] > best_rssi) {
      best_rssi = scratch.rssi[i];
      best = i;
    }
  }
  return best;
}

}  // namespace mobiwlan
