// channel_batch.hpp — batched multi-link channel engine.
//
// A ChannelBatch advances N independent AP-client links in one
// structure-of-arrays pass. The per-link sampler (WirelessChannel::
// sample_into) is already allocation-free, but it pays per-sample costs that
// a batch can amortize or avoid:
//
//   * the AVX2/FMA dispatch (`simd::use_avx2fma()`) is resolved once per
//     range call, not once per sample;
//   * one scratch arena per *worker* holds the path geometries, the
//     path-major base-phasor planes and the ULA steering table for every
//     path of the link being synthesized, so the working set stays in L1
//     across the whole batch;
//   * the steer x base multiply-accumulate runs as a register-blocked fused
//     kernel: all antenna-pair accumulators for a 4-subcarrier block live in
//     registers while the path loop runs, and the result is stored directly
//     into the CsiMatrix (interleaved), eliminating the per-pair
//     accumulation planes, their zero-fill, and the final conversion pass;
//   * the wideband power needed for the CSI noise variance is accumulated
//     during that store instead of by a second pass over the matrix;
//   * geometry phases use the extended-range fastmath kernels
//     (fastmath::sincos_wide, log10_pos, db_to_amplitude) where the
//     per-link path uses libm.
//
// Numerical contract: batched output is equivalent to N independent
// `WirelessChannel::sample_into` calls to <= 1e-12 relative (the register
// blocking preserves the per-element accumulation order over paths, so the
// MAC itself is bitwise-identical to the per-link kernel; the fastmath
// substitutions account for the tolerance). The RNG draw *sequence* per link
// is identical, so per-link generator state stays in lockstep with the
// unbatched engine — a link can move between batched and per-link sampling
// mid-run without forking its randomness.
//
// Precision tiers: the default (simd::Precision::kFloat64) holds the
// contract above. Under MOBIWLAN_PRECISION=fp32 the phasor planes, the
// steering table and the steer x base MAC run in float32 (8-lane AVX2 /
// 16-lane AVX-512), with an error-bounded contract instead: CSI agrees with
// the fp64 reference to <= 1e-4 scale-relative, while geometry and every
// RNG draw stay double so RSSI/ToF readings and RNG state remain *bitwise*
// identical across precision tiers. See DESIGN.md §5 "Precision tiers".
//
// Thread safety: links may be partitioned across workers (e.g. via
// ThreadPool::parallel_for) as long as every worker owns a disjoint link
// range and its own Scratch — sampling mutates only per-link state (rng_)
// and the caller's buffers.
#pragma once

#include <cstddef>
#include <vector>

#include "chan/channel.hpp"
#include "phy/csi.hpp"

namespace mobiwlan {

/// Batched view over N independent links (non-owning).
class ChannelBatch {
 public:
  /// Per-worker workspace. All buffers grow to the batch's maximum path /
  /// antenna counts on first use and are reused thereafter: sampling through
  /// a retained Scratch performs zero heap allocations in steady state.
  struct Scratch {
    WirelessChannel::PathScratch geom;  ///< path geometries (paths vector)
    std::vector<double> base;   ///< path-major phasor planes: [path][re|im][sc]
    std::vector<double> steer;  ///< ULA steering phasors: [path][pair][re,im]
    std::vector<double> rssi;   ///< per-link RSSI plane for scans
    // Staging planes for the 4-lane transcendental passes (oscillator
    // arguments, squared lengths, loss exponents), padded to lane multiples.
    std::vector<double> arg, sinv, cosv, len, dxs, amp;
    // fp32 tier planes (simd::Precision::kFloat32): the phasor/steering
    // planes and the sincos staging in float, contiguous so the batch
    // kernel stays GPU-portable. Geometry (geom/len/dxs/amp) and the RSSI
    // plane stay double on every tier.
    std::vector<float> basef, steerf, argf, sinvf, cosvf;
  };

  ChannelBatch() = default;

  /// Registers a link and returns its slot. Slots are *stable*: a link
  /// keeps its slot until remove_link, and new links fill the most
  /// recently freed hole first (LIFO), else append. The channel must
  /// outlive its membership. Per-link sampling is independent, so slot
  /// order never affects any link's output — only which out[] element it
  /// lands in.
  std::size_t add_link(WirelessChannel* channel) {
    if (!free_slots_.empty()) {
      const std::size_t slot = free_slots_.back();
      free_slots_.pop_back();
      links_[slot] = channel;
      return slot;
    }
    links_.push_back(channel);
    // Every slot can become a hole, so growing the hole list alongside the
    // slot vector (amortized by capacity, O(log n) reallocations) makes
    // remove_link allocation-free — callers punch holes from hot loops.
    if (free_slots_.capacity() < links_.capacity())
      free_slots_.reserve(links_.capacity());
    return links_.size() - 1;
  }

  /// Frees a slot, leaving a hole the range calls skip. The slot is
  /// recycled by a later add_link.
  void remove_link(std::size_t slot) {
    links_[slot] = nullptr;
    free_slots_.push_back(slot);
  }

  /// Forgets every link and hole, keeping the registration buffers.
  void clear() {
    links_.clear();
    free_slots_.clear();
  }

  /// Slot count, holes included (the bound for the range calls).
  std::size_t size() const { return links_.size(); }
  /// Links registered (slots minus holes).
  std::size_t occupied() const { return links_.size() - free_slots_.size(); }
  bool is_hole(std::size_t i) const { return links_[i] == nullptr; }
  WirelessChannel& link(std::size_t i) { return *links_[i]; }
  const WirelessChannel& link(std::size_t i) const { return *links_[i]; }

  /// Full observations (CSI + RSSI + SNR + ToF) for links [begin, end) at
  /// time t, into out[begin..end). Holes are skipped (their out element is
  /// left untouched). Draw order per link matches
  /// WirelessChannel::sample_into. Allocation-free in steady state.
  void sample_range(double t, std::size_t begin, std::size_t end,
                    ChannelSample* out, Scratch& scratch);

  /// One slot's full observation — the same kernels and bits sample_range
  /// applies to that slot. Lets a memory-bound caller interleave sampling
  /// with per-link consumption in one pass, so each link's working set is
  /// touched exactly once per epoch. `slot` must not be a hole.
  void sample_slot(double t, std::size_t slot, ChannelSample& out,
                   Scratch& scratch);

  /// Cache-hint for the link in `slot` (hole-safe no-op): issue it one slot
  /// ahead of sample_slot so the link's realization lines stream in under
  /// the current slot's synthesis.
  void prefetch_slot(std::size_t slot) const {
    if (const WirelessChannel* ch = links_[slot]) ch->prefetch();
  }

  /// One full observation of a link that is not (or not yet) registered
  /// with any batch, through the *batched* kernels — same bits as a
  /// sample_range call would produce for it. The campus uses this for the
  /// association burst that precedes a session's first batched epoch, so
  /// its digests never mix per-link and batched kernel bits.
  static void sample_link(WirelessChannel& ch, double t, ChannelSample& out,
                          Scratch& scratch);

  /// Measured (noisy) CSI for one link — the classifier cadence entry point.
  void csi_into(std::size_t i, double t, CsiMatrix& out, Scratch& scratch);

  /// Noiseless CSI for one link (no RNG draws).
  void csi_true_into(std::size_t i, double t, CsiMatrix& out,
                     Scratch& scratch) const;

  /// Quantized RSSI for every link at time t into scratch.rssi — the roaming
  /// scan as one pass (one geometry evaluation per link, same per-link draw
  /// order as WirelessChannel::rssi_dbm).
  void rssi_all(double t, Scratch& scratch);

  /// One noisy ToF reading per link at time t into out[0..size()) — the
  /// neighbor-AP ToF sweep as one pass.
  void tof_all(double t, double* out);

  /// Link index with the strongest RSSI at time t (draws one RSSI reading
  /// per link, in link order — same contract as WlanDeployment's scan).
  std::size_t strongest_link(double t, Scratch& scratch);

 private:
  struct SynthSpec;  // resolved kernel + layout for one range call

  // The kernels are static: they touch only the passed link and scratch,
  // which is what lets sample_link serve unregistered links.
  static void geometries(const WirelessChannel& ch, double t,
                         const SynthSpec& spec, Scratch& scratch);
  static void geometries_wide(const WirelessChannel& ch, double t,
                              Scratch& scratch);
  static void geometries_scalar(const WirelessChannel& ch, double t,
                                Scratch& scratch);
  static void synthesize(const WirelessChannel& ch, const SynthSpec& spec,
                         Scratch& scratch, CsiMatrix& out, double& power_mw);
  static void synthesize_f32(const WirelessChannel& ch, const SynthSpec& spec,
                             Scratch& scratch, CsiMatrix& out,
                             double& power_mw);
  static void sample_one(WirelessChannel& ch, const SynthSpec& spec, double t,
                         ChannelSample& out, Scratch& scratch);

  std::vector<WirelessChannel*> links_;
  std::vector<std::size_t> free_slots_;  // LIFO recycled holes
};

}  // namespace mobiwlan
