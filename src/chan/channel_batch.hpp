// channel_batch.hpp — batched multi-link channel engine.
//
// A ChannelBatch advances N independent AP-client links in one
// structure-of-arrays pass. The per-link sampler (WirelessChannel::
// sample_into) is already allocation-free, but it pays per-sample costs that
// a batch can amortize or avoid:
//
//   * the AVX2/FMA dispatch (`simd::use_avx2fma()`) is resolved once per
//     range call, not once per sample;
//   * one scratch arena per *worker* holds the path geometries, the
//     path-major base-phasor planes and the ULA steering table for every
//     path of the link being synthesized, so the working set stays in L1
//     across the whole batch;
//   * the steer x base multiply-accumulate runs as a register-blocked fused
//     kernel: all antenna-pair accumulators for a 4-subcarrier block live in
//     registers while the path loop runs, and the result is stored directly
//     into the CsiMatrix (interleaved), eliminating the per-pair
//     accumulation planes, their zero-fill, and the final conversion pass;
//   * the wideband power needed for the CSI noise variance is accumulated
//     during that store instead of by a second pass over the matrix;
//   * geometry phases use the extended-range fastmath kernels
//     (fastmath::sincos_wide, log10_pos, db_to_amplitude) where the
//     per-link path uses libm.
//
// Numerical contract: batched output is equivalent to N independent
// `WirelessChannel::sample_into` calls to <= 1e-12 relative (the register
// blocking preserves the per-element accumulation order over paths, so the
// MAC itself is bitwise-identical to the per-link kernel; the fastmath
// substitutions account for the tolerance). The RNG draw *sequence* per link
// is identical, so per-link generator state stays in lockstep with the
// unbatched engine — a link can move between batched and per-link sampling
// mid-run without forking its randomness.
//
// Precision tiers: the default (simd::Precision::kFloat64) holds the
// contract above. Under MOBIWLAN_PRECISION=fp32 the phasor planes, the
// steering table and the steer x base MAC run in float32 (8-lane AVX2 /
// 16-lane AVX-512), with an error-bounded contract instead: CSI agrees with
// the fp64 reference to <= 1e-4 scale-relative, while geometry and every
// RNG draw stay double so RSSI/ToF readings and RNG state remain *bitwise*
// identical across precision tiers. See DESIGN.md §5 "Precision tiers".
//
// Thread safety: links may be partitioned across workers (e.g. via
// ThreadPool::parallel_for) as long as every worker owns a disjoint link
// range and its own Scratch — sampling mutates only per-link state (rng_)
// and the caller's buffers.
#pragma once

#include <cstddef>
#include <vector>

#include "chan/channel.hpp"
#include "phy/csi.hpp"

namespace mobiwlan {

/// Batched view over N independent links (non-owning).
class ChannelBatch {
 public:
  /// Per-worker workspace. All buffers grow to the batch's maximum path /
  /// antenna counts on first use and are reused thereafter: sampling through
  /// a retained Scratch performs zero heap allocations in steady state.
  struct Scratch {
    WirelessChannel::PathScratch geom;  ///< path geometries (paths vector)
    std::vector<double> base;   ///< path-major phasor planes: [path][re|im][sc]
    std::vector<double> steer;  ///< ULA steering phasors: [path][pair][re,im]
    std::vector<double> rssi;   ///< per-link RSSI plane for scans
    // Staging planes for the 4-lane transcendental passes (oscillator
    // arguments, squared lengths, loss exponents), padded to lane multiples.
    std::vector<double> arg, sinv, cosv, len, dxs, amp;
    // fp32 tier planes (simd::Precision::kFloat32): the phasor/steering
    // planes and the sincos staging in float, contiguous so the batch
    // kernel stays GPU-portable. Geometry (geom/len/dxs/amp) and the RSSI
    // plane stay double on every tier.
    std::vector<float> basef, steerf, argf, sinvf, cosvf;
  };

  ChannelBatch() = default;

  /// Registers a link. The channel must outlive the batch; construction
  /// order fixes the link index used by the range calls.
  void add_link(WirelessChannel* channel) { links_.push_back(channel); }

  /// Forgets every link, keeping the registration buffer — callers that
  /// rebuild the batch each epoch (the campus shards) re-add links without
  /// re-allocating.
  void clear() { links_.clear(); }

  std::size_t size() const { return links_.size(); }
  WirelessChannel& link(std::size_t i) { return *links_[i]; }
  const WirelessChannel& link(std::size_t i) const { return *links_[i]; }

  /// Full observations (CSI + RSSI + SNR + ToF) for links [begin, end) at
  /// time t, into out[begin..end). Draw order per link matches
  /// WirelessChannel::sample_into. Allocation-free in steady state.
  void sample_range(double t, std::size_t begin, std::size_t end,
                    ChannelSample* out, Scratch& scratch);

  /// Measured (noisy) CSI for one link — the classifier cadence entry point.
  void csi_into(std::size_t i, double t, CsiMatrix& out, Scratch& scratch);

  /// Noiseless CSI for one link (no RNG draws).
  void csi_true_into(std::size_t i, double t, CsiMatrix& out,
                     Scratch& scratch) const;

  /// Quantized RSSI for every link at time t into scratch.rssi — the roaming
  /// scan as one pass (one geometry evaluation per link, same per-link draw
  /// order as WirelessChannel::rssi_dbm).
  void rssi_all(double t, Scratch& scratch);

  /// One noisy ToF reading per link at time t into out[0..size()) — the
  /// neighbor-AP ToF sweep as one pass.
  void tof_all(double t, double* out);

  /// Link index with the strongest RSSI at time t (draws one RSSI reading
  /// per link, in link order — same contract as WlanDeployment's scan).
  std::size_t strongest_link(double t, Scratch& scratch);

 private:
  struct SynthSpec;  // resolved kernel + layout for one range call

  void geometries(const WirelessChannel& ch, double t, const SynthSpec& spec,
                  Scratch& scratch) const;
  void geometries_scalar(const WirelessChannel& ch, double t,
                         Scratch& scratch) const;
  void synthesize(const WirelessChannel& ch, const SynthSpec& spec,
                  Scratch& scratch, CsiMatrix& out, double& power_mw) const;
  void synthesize_f32(const WirelessChannel& ch, const SynthSpec& spec,
                      Scratch& scratch, CsiMatrix& out,
                      double& power_mw) const;
  void sample_one(WirelessChannel& ch, const SynthSpec& spec, double t,
                  ChannelSample& out, Scratch& scratch);

  std::vector<WirelessChannel*> links_;
};

}  // namespace mobiwlan
