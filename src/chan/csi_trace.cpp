#include "chan/csi_trace.hpp"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <stdexcept>

namespace mobiwlan {

namespace {
constexpr std::uint32_t kMagic = 0x43534954;  // "CSIT"
constexpr std::uint32_t kVersion = 1;
}  // namespace

void CsiTrace::add(TraceEntry entry) { entries_.push_back(std::move(entry)); }

double CsiTrace::duration() const {
  if (entries_.empty()) return 0.0;
  return entries_.back().t - entries_.front().t;
}

std::size_t CsiTrace::index_at(double t) const {
  if (entries_.empty()) throw std::out_of_range("empty trace");
  // First entry with time > t, then step back.
  auto it = std::upper_bound(entries_.begin(), entries_.end(), t,
                             [](double v, const TraceEntry& e) { return v < e.t; });
  if (it == entries_.begin()) return 0;
  return static_cast<std::size_t>(it - entries_.begin()) - 1;
}

const TraceEntry& CsiTrace::at_time(double t) const { return entries_[index_at(t)]; }

CsiTrace CsiTrace::record(WirelessChannel& channel, double duration_s,
                          double period_s) {
  CsiTrace trace;
  for (double t = 0.0; t <= duration_s; t += period_s) {
    const ChannelSample s = channel.sample(t);
    trace.add(TraceEntry{s.t, s.csi, s.snr_db, s.rssi_dbm, s.tof_cycles,
                         s.true_distance_m});
  }
  return trace;
}

bool CsiTrace::save(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  auto write_u32 = [f](std::uint32_t v) { std::fwrite(&v, sizeof(v), 1, f); };
  auto write_f64 = [f](double v) { std::fwrite(&v, sizeof(v), 1, f); };

  write_u32(kMagic);
  write_u32(kVersion);
  write_u32(static_cast<std::uint32_t>(entries_.size()));
  if (!entries_.empty()) {
    const CsiMatrix& c = entries_.front().csi;
    write_u32(static_cast<std::uint32_t>(c.n_tx()));
    write_u32(static_cast<std::uint32_t>(c.n_rx()));
    write_u32(static_cast<std::uint32_t>(c.n_subcarriers()));
  } else {
    write_u32(0);
    write_u32(0);
    write_u32(0);
  }
  for (const auto& e : entries_) {
    write_f64(e.t);
    write_f64(e.snr_db);
    write_f64(e.rssi_dbm);
    write_f64(e.tof_cycles);
    write_f64(e.true_distance_m);
    for (const auto& v : e.csi.raw()) {
      write_f64(v.real());
      write_f64(v.imag());
    }
  }
  const bool ok = std::fflush(f) == 0;
  std::fclose(f);
  return ok;
}

CsiTrace CsiTrace::load(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) throw std::runtime_error("cannot open trace file: " + path);
  auto read_u32 = [f]() {
    std::uint32_t v = 0;
    if (std::fread(&v, sizeof(v), 1, f) != 1) throw std::runtime_error("truncated trace");
    return v;
  };
  auto read_f64 = [f]() {
    double v = 0;
    if (std::fread(&v, sizeof(v), 1, f) != 1) throw std::runtime_error("truncated trace");
    return v;
  };

  try {
    if (read_u32() != kMagic) throw std::runtime_error("bad trace magic");
    if (read_u32() != kVersion) throw std::runtime_error("bad trace version");
    const std::uint32_t count = read_u32();
    const std::uint32_t n_tx = read_u32();
    const std::uint32_t n_rx = read_u32();
    const std::uint32_t n_sc = read_u32();

    CsiTrace trace;
    for (std::uint32_t i = 0; i < count; ++i) {
      TraceEntry e;
      e.t = read_f64();
      e.snr_db = read_f64();
      e.rssi_dbm = read_f64();
      e.tof_cycles = read_f64();
      e.true_distance_m = read_f64();
      e.csi = CsiMatrix(n_tx, n_rx, n_sc);
      for (auto& v : e.csi.raw()) {
        const double re = read_f64();
        const double im = read_f64();
        v = {re, im};
      }
      trace.add(std::move(e));
    }
    std::fclose(f);
    return trace;
  } catch (...) {
    std::fclose(f);
    throw;
  }
}

}  // namespace mobiwlan
