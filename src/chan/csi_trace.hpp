// csi_trace.hpp — recording and replaying CSI traces.
//
// The paper's rate-adaptation comparison (§4.3) and the MU-MIMO study (§6.2)
// are trace-based emulations: CSI is recorded once, then every scheme is
// replayed over the identical channel conditions. CsiTrace is that recording;
// it also persists to disk so examples can exchange traces with the
// mobility_monitor tool.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "chan/channel.hpp"
#include "phy/csi.hpp"

namespace mobiwlan {

/// One timestamped CSI observation along with the scalar PHY readings taken
/// from the same packet exchange.
struct TraceEntry {
  double t = 0.0;
  CsiMatrix csi;
  double snr_db = 0.0;
  double rssi_dbm = 0.0;
  double tof_cycles = 0.0;
  double true_distance_m = 0.0;
};

/// A time-ordered sequence of CSI observations from one link.
class CsiTrace {
 public:
  CsiTrace() = default;

  void add(TraceEntry entry);

  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  const TraceEntry& operator[](std::size_t i) const { return entries_[i]; }
  const std::vector<TraceEntry>& entries() const { return entries_; }

  double duration() const;

  /// Latest entry with t <= query time (clamped to the first entry).
  const TraceEntry& at_time(double t) const;

  /// Index of the latest entry with t <= query time (0 if before start).
  std::size_t index_at(double t) const;

  /// Record `duration_s` seconds from a channel at the given sampling period.
  static CsiTrace record(WirelessChannel& channel, double duration_s,
                         double period_s);

  /// Binary persistence (fixed little-endian layout with a magic header).
  bool save(const std::string& path) const;
  static CsiTrace load(const std::string& path);

 private:
  std::vector<TraceEntry> entries_;
};

}  // namespace mobiwlan
