// geometry.hpp — 2-D points and vectors for the indoor floor plan.
//
// The testbed substitute works on a 2-D floor plan (APs and clients at
// comparable heights); indoor multipath geometry is dominated by horizontal
// structure, and the paper's observables (per-path delays, Doppler, ToF)
// depend only on distances, which 2-D captures.
#pragma once

#include <cmath>

namespace mobiwlan {

struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  Vec2 operator+(Vec2 o) const { return {x + o.x, y + o.y}; }
  Vec2 operator-(Vec2 o) const { return {x - o.x, y - o.y}; }
  Vec2 operator*(double s) const { return {x * s, y * s}; }

  double norm() const { return std::hypot(x, y); }
  double dot(Vec2 o) const { return x * o.x + y * o.y; }

  /// Unit vector in the same direction; zero vector maps to zero.
  Vec2 normalized() const {
    const double n = norm();
    if (n == 0.0) return {0.0, 0.0};
    return {x / n, y / n};
  }
};

inline double distance(Vec2 a, Vec2 b) { return (a - b).norm(); }

/// Unit vector at the given angle (radians, CCW from +x).
inline Vec2 unit_from_angle(double radians) {
  return {std::cos(radians), std::sin(radians)};
}

}  // namespace mobiwlan
