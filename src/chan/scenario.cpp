#include "chan/scenario.hpp"

namespace mobiwlan {

MobilityMode Scenario::truth_mode(double t) const {
  switch (truth) {
    case MobilityClass::kStatic: return MobilityMode::kStatic;
    case MobilityClass::kEnvironmental: return MobilityMode::kEnvironmental;
    case MobilityClass::kMicro: return MobilityMode::kMicro;
    case MobilityClass::kMacro:
      return channel->radial_velocity(t) >= 0.0 ? MobilityMode::kMacroAway
                                                : MobilityMode::kMacroToward;
  }
  return MobilityMode::kStatic;
}

namespace {

Vec2 random_client_pos(Rng& rng, const ScenarioOptions& opt) {
  const double d = rng.uniform(opt.min_distance_m, opt.max_distance_m);
  return unit_from_angle(rng.phase()) * d;
}

Scenario finish(std::shared_ptr<const Trajectory> traj, MobilityClass truth,
                ChannelConfig config, Rng& rng) {
  Scenario s;
  s.trajectory = traj;
  s.channel = std::make_unique<WirelessChannel>(config, Vec2{0.0, 0.0}, traj,
                                                rng.split());
  s.truth = truth;
  return s;
}

}  // namespace

namespace {
Scenario make_scenario_once(MobilityClass cls, Rng& rng, const ScenarioOptions& opt);
Scenario make_environmental_once(EnvironmentalActivity activity, Rng& rng,
                                 const ScenarioOptions& opt);

/// Redraw until the link clears the minimum SNR (covered location).
template <typename Builder>
Scenario draw_covered(Rng& rng, const ScenarioOptions& opt, Builder build) {
  Scenario s = build(rng);
  for (int attempt = 0; attempt < 32; ++attempt) {
    if (s.channel->snr_db(0.0) >= opt.min_link_snr_db) break;
    s = build(rng);
  }
  return s;
}
}  // namespace

Scenario make_scenario(MobilityClass cls, Rng& rng, const ScenarioOptions& opt) {
  return draw_covered(rng, opt, [&](Rng& r) { return make_scenario_once(cls, r, opt); });
}

Scenario make_environmental_scenario(EnvironmentalActivity activity, Rng& rng,
                                     const ScenarioOptions& opt) {
  return draw_covered(
      rng, opt, [&](Rng& r) { return make_environmental_once(activity, r, opt); });
}

namespace {

Scenario make_scenario_once(MobilityClass cls, Rng& rng, const ScenarioOptions& opt) {
  const Vec2 client = random_client_pos(rng, opt);
  ChannelConfig config = opt.channel;
  std::shared_ptr<const Trajectory> traj;
  switch (cls) {
    case MobilityClass::kStatic:
      config.activity = EnvironmentalActivity::kNone;
      traj = std::make_shared<StaticTrajectory>(client);
      break;
    case MobilityClass::kEnvironmental:
      return make_environmental_once(EnvironmentalActivity::kStrong, rng, opt);
    case MobilityClass::kMicro:
      config.activity = EnvironmentalActivity::kNone;
      traj = std::make_shared<MicroTrajectory>(client, rng, opt.micro_extent_m);
      break;
    case MobilityClass::kMacro: {
      config.activity = EnvironmentalActivity::kNone;
      WalkTrajectory::Config wc;
      wc.speed_mps = opt.walk_speed_mps;
      // Natural office walks run along corridors, i.e. largely radially with
      // respect to the AP covering the corridor (see trajectory.hpp).
      wc.constrain_radial = true;
      wc.radial_focus = {0.0, 0.0};
      traj = std::make_shared<WalkTrajectory>(client, rng, wc);
      break;
    }
  }
  return finish(traj, cls, config, rng);
}

Scenario make_environmental_once(EnvironmentalActivity activity, Rng& rng,
                                 const ScenarioOptions& opt) {
  ChannelConfig config = opt.channel;
  config.activity = activity;
  auto traj = std::make_shared<StaticTrajectory>(random_client_pos(rng, opt));
  return finish(traj, MobilityClass::kEnvironmental, config, rng);
}

}  // namespace

Scenario make_radial_scenario(bool toward, double start_distance_m, Rng& rng,
                              const ScenarioOptions& opt) {
  ChannelConfig config = opt.channel;
  config.activity = EnvironmentalActivity::kNone;
  const Vec2 start = unit_from_angle(rng.phase()) * start_distance_m;
  const Vec2 dir = toward ? (Vec2{0.0, 0.0} - start) : start;
  auto traj = std::make_shared<LinearTrajectory>(start, dir, opt.walk_speed_mps);
  return finish(traj, MobilityClass::kMacro, config, rng);
}

Scenario make_bounce_scenario(double r_min, double r_max, Rng& rng,
                              const ScenarioOptions& opt) {
  ChannelConfig config = opt.channel;
  config.activity = EnvironmentalActivity::kNone;
  const Vec2 start = unit_from_angle(rng.phase()) * ((r_min + r_max) / 2.0);
  auto traj = std::make_shared<RadialBounceTrajectory>(Vec2{0.0, 0.0}, start, r_min,
                                                       r_max, opt.walk_speed_mps);
  return finish(traj, MobilityClass::kMacro, config, rng);
}

Scenario make_circular_scenario(double radius_m, Rng& rng,
                                const ScenarioOptions& opt) {
  ChannelConfig config = opt.channel;
  config.activity = EnvironmentalActivity::kNone;
  auto traj = std::make_shared<CircularTrajectory>(Vec2{0.0, 0.0}, radius_m,
                                                   opt.walk_speed_mps, rng.phase());
  return finish(traj, MobilityClass::kMacro, config, rng);
}

}  // namespace mobiwlan
