// scenario.hpp — randomized experiment scenarios standing in for the paper's
// measurement locations.
//
// The paper evaluated at >100 locations across two office buildings. Each
// call to a make_* function here draws a fresh AP-client geometry, scatterer
// field and motion realization from the given RNG — one "location". Bench
// binaries loop over seeds to play the role of location diversity.
#pragma once

#include <memory>

#include "chan/channel.hpp"
#include "chan/trajectory.hpp"
#include "core/mobility_mode.hpp"
#include "util/rng.hpp"

namespace mobiwlan {

/// One experimental setup: an AP-client link with a motion pattern.
struct Scenario {
  std::shared_ptr<const Trajectory> trajectory;
  std::unique_ptr<WirelessChannel> channel;
  MobilityClass truth = MobilityClass::kStatic;

  /// Ground-truth fine mode at time t: for macro motion, consults the radial
  /// velocity (the paper's "moving away" vs "moving towards").
  MobilityMode truth_mode(double t) const;
};

struct ScenarioOptions {
  ChannelConfig channel;          ///< base radio parameters
  double min_distance_m = 8.0;    ///< AP-client distance draw range
  double max_distance_m = 35.0;
  double micro_extent_m = 0.5;    ///< confinement of micro-mobility gestures
  double walk_speed_mps = 1.2;
  /// Reject draws whose initial link SNR is below this: measurement
  /// locations in the paper's testbed are covered (associated) spots, not
  /// dead corners. Redraws geometry up to 32 times.
  double min_link_snr_db = 12.0;
};

/// A scenario of the given ground-truth class at a random location.
/// Environmental scenarios default to strong (cafeteria) activity.
Scenario make_scenario(MobilityClass cls, Rng& rng, const ScenarioOptions& opt = {});

/// Static client with the given level of environmental motion.
Scenario make_environmental_scenario(EnvironmentalActivity activity, Rng& rng,
                                     const ScenarioOptions& opt = {});

/// Client walking radially: directly toward (or away from) the AP, starting
/// at `start_distance_m`. Used by the heading-resolved experiments.
Scenario make_radial_scenario(bool toward, double start_distance_m, Rng& rng,
                              const ScenarioOptions& opt = {});

/// Client bouncing between r_min and r_max from the AP (Fig. 4's periodic
/// toward/away walk).
Scenario make_bounce_scenario(double r_min, double r_max, Rng& rng,
                              const ScenarioOptions& opt = {});

/// Client orbiting the AP at constant radius — the §9 limitation case.
Scenario make_circular_scenario(double radius_m, Rng& rng,
                                const ScenarioOptions& opt = {});

}  // namespace mobiwlan
