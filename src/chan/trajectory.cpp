#include "chan/trajectory.hpp"

#include <cmath>
#include <numbers>

namespace mobiwlan {

double Trajectory::speed(double t) const {
  const double dt = 1e-3;
  const double t0 = t > dt ? t - dt : 0.0;
  const Vec2 a = position(t0);
  const Vec2 b = position(t0 + 2 * dt);
  return (b - a).norm() / (2 * dt);
}

MicroTrajectory::MicroTrajectory(Vec2 anchor, Rng& rng, double extent)
    : anchor_(anchor) {
  // Three sinusoids per axis with amplitudes summing to `extent`: slow sway
  // plus faster hand jitter. Peak speeds land in the 0.3-1.5 m/s range of
  // natural gestures.
  auto make_components = [&rng, extent](std::vector<Component>& out) {
    const double shares[3] = {0.55, 0.30, 0.15};
    const double freq_lo[3] = {0.15, 0.5, 1.0};
    const double freq_hi[3] = {0.5, 1.2, 2.2};
    for (int i = 0; i < 3; ++i) {
      out.push_back({extent * shares[i] * rng.uniform(0.6, 1.0),
                     rng.uniform(freq_lo[i], freq_hi[i]), rng.phase()});
    }
  };
  make_components(x_components_);
  make_components(y_components_);
}

Vec2 MicroTrajectory::position(double t) const {
  auto axis = [t](const std::vector<Component>& comps) {
    double v = 0.0;
    for (const auto& c : comps)
      v += c.amplitude * std::sin(2.0 * std::numbers::pi * c.freq_hz * t + c.phase);
    return v;
  };
  return {anchor_.x + axis(x_components_), anchor_.y + axis(y_components_)};
}

WalkTrajectory::WalkTrajectory(Vec2 start, Rng& rng, Config config, double duration_s)
    : swing_dir_(unit_from_angle(rng.phase())),
      swing_amplitude_(config.swing_amplitude_m),
      swing_freq_hz_(config.swing_freq_hz * rng.uniform(0.85, 1.15)),
      swing_phase_(rng.phase()) {
  double t = 0.0;
  Vec2 pos = start;
  double heading = rng.phase();
  while (t < duration_s) {
    const double leg = rng.uniform(config.min_leg_s, config.max_leg_s);
    if (config.constrain_radial) {
      // Corridor walking: head along the ray through the focus, either
      // outbound or inbound, within the cone.
      const Vec2 radial = (pos - config.radial_focus).normalized();
      double base = std::atan2(radial.y, radial.x);
      const bool outbound = rng.chance(0.5);
      if (!outbound) base += std::numbers::pi;
      // Don't walk inbound through the focus: cap inbound legs later via
      // bounds check below (distance clamps are handled by leg length).
      heading = base + rng.uniform(-config.radial_cone_rad, config.radial_cone_rad);
      if (!outbound) {
        // Keep at least 2 m away from the focus: shorten heading legs is
        // overkill; simply flip to outbound when too close.
        if ((pos - config.radial_focus).norm() < config.speed_mps * leg + 2.0)
          heading = base + std::numbers::pi;
      }
    }
    Vec2 dir = unit_from_angle(heading);
    // Billiard reflection: split the leg at every boundary crossing so the
    // walk never leaves the floor rectangle.
    double remaining = leg;
    while (remaining > 1e-9) {
      const Vec2 vel = dir * config.speed_mps;
      double dt = remaining;
      // Time to the first boundary hit along each axis.
      auto axis_hit = [](double p0, double v, double lo, double hi) {
        if (v > 1e-12) return (hi - p0) / v;
        if (v < -1e-12) return (lo - p0) / v;
        return 1e18;
      };
      const double tx = axis_hit(pos.x, vel.x, config.bounds_min.x, config.bounds_max.x);
      const double ty = axis_hit(pos.y, vel.y, config.bounds_min.y, config.bounds_max.y);
      const double hit = std::min(tx, ty);
      const bool bounced = hit < dt;
      if (bounced) dt = std::max(hit, 1e-6);
      legs_.push_back({t, t + dt, pos, vel});
      pos = pos + vel * dt;
      t += dt;
      remaining -= dt;
      if (bounced) {
        if (tx <= ty) dir.x = -dir.x;
        if (ty <= tx) dir.y = -dir.y;
      }
    }
    heading = std::atan2(dir.y, dir.x) + rng.uniform(-config.max_turn_rad, config.max_turn_rad);
  }
}

Vec2 WalkTrajectory::position(double t) const {
  if (legs_.empty()) return {};
  const Vec2 swing =
      swing_dir_ *
      (swing_amplitude_ *
       std::sin(2.0 * std::numbers::pi * swing_freq_hz_ * t + swing_phase_));
  if (t <= legs_.front().t_start) return legs_.front().origin + swing;
  for (const auto& leg : legs_) {
    if (t < leg.t_end) return leg.origin + leg.velocity * (t - leg.t_start) + swing;
  }
  const auto& last = legs_.back();
  return last.origin + last.velocity * (last.t_end - last.t_start) + swing;
}

LinearTrajectory::LinearTrajectory(Vec2 start, Vec2 direction, double speed_mps)
    : start_(start), velocity_(direction.normalized() * speed_mps) {}

Vec2 LinearTrajectory::position(double t) const { return start_ + velocity_ * t; }

RadialBounceTrajectory::RadialBounceTrajectory(Vec2 focus, Vec2 start, double r_min,
                                               double r_max, double speed_mps)
    : focus_(focus),
      dir_((start - focus).normalized()),
      r_min_(r_min),
      r_max_(r_max),
      speed_(speed_mps),
      r0_((start - focus).norm()) {
  if (r0_ < r_min_) r0_ = r_min_;
  if (r0_ > r_max_) r0_ = r_max_;
}

double RadialBounceTrajectory::radius(double t) const {
  // Triangle wave between r_min and r_max starting at r0 moving outward.
  const double span = r_max_ - r_min_;
  if (span <= 0.0) return r_min_;
  const double period = 2.0 * span / speed_;
  double phase = std::fmod((r0_ - r_min_) / speed_ + t, period);
  if (phase < 0) phase += period;
  const double up = speed_ * phase;
  return up <= span ? r_min_ + up : r_max_ - (up - span);
}

bool RadialBounceTrajectory::moving_toward(double t) const {
  const double dt = 1e-3;
  return radius(t + dt) < radius(t);
}

Vec2 RadialBounceTrajectory::position(double t) const {
  return focus_ + dir_ * radius(t);
}

CircularTrajectory::CircularTrajectory(Vec2 center, double radius, double speed_mps,
                                       double start_angle_rad)
    : center_(center),
      radius_(radius),
      angular_speed_(radius > 0 ? speed_mps / radius : 0.0),
      start_angle_(start_angle_rad) {}

Vec2 CircularTrajectory::position(double t) const {
  const double a = start_angle_ + angular_speed_ * t;
  return {center_.x + radius_ * std::cos(a), center_.y + radius_ * std::sin(a)};
}

}  // namespace mobiwlan
