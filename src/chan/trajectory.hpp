// trajectory.hpp — client motion models for the four mobility classes (§2.1).
//
// The paper's data collection: (1) static phone in a quiet lab, (2) static
// phone in a busy cafeteria (environmental — modelled by moving scatterers in
// the channel, the client trajectory is still static), (3) the phone moved
// with natural gestures within ~1 m (micro), and (4) natural walking with the
// phone (macro). We add controlled variants the evaluation sections need:
// straight-line walks (toward/away experiments) and a circular orbit around
// the AP (the §9 limitation case).
#pragma once

#include <memory>
#include <vector>

#include "chan/geometry.hpp"
#include "core/mobility_mode.hpp"
#include "util/rng.hpp"

namespace mobiwlan {

/// A client's position over time. Implementations are deterministic functions
/// of time (given their construction-time randomness), so any component may
/// query any time point in any order.
class Trajectory {
 public:
  virtual ~Trajectory() = default;

  /// Client position at time t (seconds, t >= 0).
  virtual Vec2 position(double t) const = 0;

  /// Ground-truth mobility class of this motion pattern.
  virtual MobilityClass mobility_class() const = 0;

  /// Instantaneous speed (m/s) via symmetric finite difference.
  double speed(double t) const;
};

/// Stationary client.
class StaticTrajectory final : public Trajectory {
 public:
  explicit StaticTrajectory(Vec2 pos) : pos_(pos) {}
  Vec2 position(double /*t*/) const override { return pos_; }
  MobilityClass mobility_class() const override { return MobilityClass::kStatic; }

 private:
  Vec2 pos_;
};

/// Gesture-like confined motion: a sum of low-frequency sinusoids per axis,
/// bounded so the device stays within ~`extent` metres of its anchor.
/// Reproduces the "moved it around within a meter of its location, using
/// natural gestures" collection methodology.
class MicroTrajectory final : public Trajectory {
 public:
  /// `extent` bounds the total sinusoid amplitude per axis (metres).
  MicroTrajectory(Vec2 anchor, Rng& rng, double extent = 0.5);

  Vec2 position(double t) const override;
  MobilityClass mobility_class() const override { return MobilityClass::kMicro; }

 private:
  struct Component {
    double amplitude;
    double freq_hz;
    double phase;
  };
  Vec2 anchor_;
  std::vector<Component> x_components_;
  std::vector<Component> y_components_;
};

/// Natural walking: straight legs at walking speed joined by random turns.
/// Leg durations of several seconds reproduce the paper's observation that
/// "during macro-mobility a user typically walks a reasonable distance
/// between two physical turns" (§2.4).
class WalkTrajectory final : public Trajectory {
 public:
  struct Config {
    double speed_mps = 1.2;       ///< typical indoor walking speed
    double min_leg_s = 10.0;      ///< minimum straight-leg duration (a corridor run)
    double max_leg_s = 22.0;      ///< maximum straight-leg duration
    /// Floor extent: legs reflect off this rectangle (a building floor or a
    /// corridor, depending on aspect ratio).
    Vec2 bounds_min{-40.0, -40.0};
    Vec2 bounds_max{40.0, 40.0};
    double max_turn_rad = 2.5;    ///< max heading change at a turn
    /// Corridor constraint: when set, each leg's heading is drawn within
    /// `radial_cone_rad` of the ray through `radial_focus` (toward or away,
    /// chosen at random). Office corridors run past the APs that cover them,
    /// so natural walks are mostly radial with respect to the serving AP —
    /// the regime the paper's ToF trend detector targets (§2.4). Purely
    /// tangential motion is the documented §9 limitation.
    bool constrain_radial = false;
    Vec2 radial_focus{0.0, 0.0};
    double radial_cone_rad = 0.6;
    /// Hand swing: the handset carried by a walking user oscillates at step
    /// frequency with centimetre amplitude, so its instantaneous speed well
    /// exceeds trunk speed — this is what decorrelates the channel within
    /// milliseconds during macro-mobility.
    double swing_amplitude_m = 0.12;
    double swing_freq_hz = 2.0;
  };

  WalkTrajectory(Vec2 start, Rng& rng) : WalkTrajectory(start, rng, Config{}) {}
  WalkTrajectory(Vec2 start, Rng& rng, Config config, double duration_s = 600.0);

  Vec2 position(double t) const override;
  MobilityClass mobility_class() const override { return MobilityClass::kMacro; }

 private:
  struct Leg {
    double t_start;
    double t_end;
    Vec2 origin;
    Vec2 velocity;
  };
  std::vector<Leg> legs_;
  Vec2 swing_dir_;
  double swing_amplitude_;
  double swing_freq_hz_;
  double swing_phase_;
};

/// Constant-velocity straight line from `start` along `direction`; used for
/// controlled moving-toward / moving-away experiments (Figs. 4, 7, 8).
class LinearTrajectory final : public Trajectory {
 public:
  LinearTrajectory(Vec2 start, Vec2 direction, double speed_mps);

  Vec2 position(double t) const override;
  MobilityClass mobility_class() const override { return MobilityClass::kMacro; }

 private:
  Vec2 start_;
  Vec2 velocity_;
};

/// Walk along the ray through `focus`, bouncing between distances
/// [r_min, r_max] from it — the Fig. 4 "walks towards and away from the AP
/// periodically" scenario.
class RadialBounceTrajectory final : public Trajectory {
 public:
  RadialBounceTrajectory(Vec2 focus, Vec2 start, double r_min, double r_max,
                         double speed_mps);

  Vec2 position(double t) const override;
  MobilityClass mobility_class() const override { return MobilityClass::kMacro; }

  /// Current distance from the focus at time t.
  double radius(double t) const;
  /// True if the client is moving toward the focus at time t.
  bool moving_toward(double t) const;

 private:
  Vec2 focus_;
  Vec2 dir_;       // unit vector from focus through start
  double r_min_;
  double r_max_;
  double speed_;
  double r0_;      // starting radius
};

/// Constant-radius orbit around `center` — the documented failure case (§9):
/// distance to the AP never changes, so ToF shows no trend and the system
/// classifies the client as micro-mobile despite walking speed.
class CircularTrajectory final : public Trajectory {
 public:
  CircularTrajectory(Vec2 center, double radius, double speed_mps,
                     double start_angle_rad = 0.0);

  Vec2 position(double t) const override;
  MobilityClass mobility_class() const override { return MobilityClass::kMacro; }

 private:
  Vec2 center_;
  double radius_;
  double angular_speed_;
  double start_angle_;
};

}  // namespace mobiwlan
