#include "core/csi_similarity.hpp"

#include <cmath>
#include <stdexcept>

#include "util/simd.hpp"

#if defined(__x86_64__)
#include <immintrin.h>
#endif

namespace mobiwlan {

double pearson_correlation(std::span<const double> a, std::span<const double> b) {
  if (a.size() != b.size() || a.empty())
    throw std::invalid_argument("pearson_correlation: size mismatch or empty");
  const double n = static_cast<double>(a.size());
  double mean_a = 0.0;
  double mean_b = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    mean_a += a[i];
    mean_b += b[i];
  }
  mean_a /= n;
  mean_b /= n;
  double cov = 0.0;
  double var_a = 0.0;
  double var_b = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double da = a[i] - mean_a;
    const double db = b[i] - mean_b;
    cov += da * db;
    var_a += da * da;
    var_b += db * db;
  }
  if (var_a <= 1e-30 || var_b <= 1e-30) return 0.0;
  return cov / std::sqrt(var_a * var_b);
}

namespace {

#if defined(__x86_64__)

// Fixed-order horizontal sum: lane0 + lane1 + lane2 + lane3. The order is
// part of the kernel's numerical contract (both Pearson arguments reduce
// identically, keeping the similarity exactly argument-symmetric).
__attribute__((target("avx2,fma"))) double hsum(__m256d v) {
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, v);
  return lanes[0] + lanes[1] + lanes[2] + lanes[3];
}

// Eq. (1) for one antenna pair, fused: magnitudes and the two Pearson
// passes run 4 subcarriers at a time, with the magnitude planes staged in
// the caller's scratch buffers. Numerics: magnitudes use sqrt(re^2 + im^2)
// (vs std::abs's overflow-safe hypot — equal to ~1 ulp at CSI magnitudes),
// and the sums accumulate 4 partial lanes reduced in fixed lane order, so
// the result matches the scalar path to ~1e-14 relative rather than
// bitwise. Swapping the arguments performs the identical arithmetic
// (products commute, reductions are positionally fixed): exact symmetry,
// the same contract the scalar path has.
__attribute__((target("avx2,fma"))) double pair_similarity_avx2(
    const cplx* pa, const cplx* pb, std::size_t n_sc, double* mag_a,
    double* mag_b) {
  const double n = static_cast<double>(n_sc);

  // Pass 1: magnitudes + sums.
  __m256d sum_a = _mm256_setzero_pd();
  __m256d sum_b = _mm256_setzero_pd();
  std::size_t sc = 0;
  for (; sc + 4 <= n_sc; sc += 4) {
    const double* qa = reinterpret_cast<const double*>(pa + sc);
    const double* qb = reinterpret_cast<const double*>(pb + sc);
    // Deinterleave [re0 im0 re1 im1 | re2 im2 re3 im3] into re/im planes
    // in subcarrier order.
    const __m256d a0 = _mm256_loadu_pd(qa);
    const __m256d a1 = _mm256_loadu_pd(qa + 4);
    const __m256d are = _mm256_permute4x64_pd(_mm256_unpacklo_pd(a0, a1), 0xd8);
    const __m256d aim = _mm256_permute4x64_pd(_mm256_unpackhi_pd(a0, a1), 0xd8);
    const __m256d ma = _mm256_sqrt_pd(
        _mm256_fmadd_pd(are, are, _mm256_mul_pd(aim, aim)));
    const __m256d b0 = _mm256_loadu_pd(qb);
    const __m256d b1 = _mm256_loadu_pd(qb + 4);
    const __m256d bre = _mm256_permute4x64_pd(_mm256_unpacklo_pd(b0, b1), 0xd8);
    const __m256d bim = _mm256_permute4x64_pd(_mm256_unpackhi_pd(b0, b1), 0xd8);
    const __m256d mb = _mm256_sqrt_pd(
        _mm256_fmadd_pd(bre, bre, _mm256_mul_pd(bim, bim)));
    _mm256_storeu_pd(mag_a + sc, ma);
    _mm256_storeu_pd(mag_b + sc, mb);
    sum_a = _mm256_add_pd(sum_a, ma);
    sum_b = _mm256_add_pd(sum_b, mb);
  }
  double tail_a = 0.0, tail_b = 0.0;
  for (; sc < n_sc; ++sc) {
    const double ra = pa[sc].real(), ia = pa[sc].imag();
    const double rb = pb[sc].real(), ib = pb[sc].imag();
    mag_a[sc] = std::sqrt(ra * ra + ia * ia);
    mag_b[sc] = std::sqrt(rb * rb + ib * ib);
    tail_a += mag_a[sc];
    tail_b += mag_b[sc];
  }
  const double mean_a = (hsum(sum_a) + tail_a) / n;
  const double mean_b = (hsum(sum_b) + tail_b) / n;

  // Pass 2: covariance and variances about the means.
  const __m256d va_mean = _mm256_set1_pd(mean_a);
  const __m256d vb_mean = _mm256_set1_pd(mean_b);
  __m256d cov4 = _mm256_setzero_pd();
  __m256d var_a4 = _mm256_setzero_pd();
  __m256d var_b4 = _mm256_setzero_pd();
  sc = 0;
  for (; sc + 4 <= n_sc; sc += 4) {
    const __m256d da = _mm256_sub_pd(_mm256_loadu_pd(mag_a + sc), va_mean);
    const __m256d db = _mm256_sub_pd(_mm256_loadu_pd(mag_b + sc), vb_mean);
    cov4 = _mm256_fmadd_pd(da, db, cov4);
    var_a4 = _mm256_fmadd_pd(da, da, var_a4);
    var_b4 = _mm256_fmadd_pd(db, db, var_b4);
  }
  double cov = hsum(cov4);
  double var_a = hsum(var_a4);
  double var_b = hsum(var_b4);
  for (; sc < n_sc; ++sc) {
    const double da = mag_a[sc] - mean_a;
    const double db = mag_b[sc] - mean_b;
    cov += da * db;
    var_a += da * da;
    var_b += db * db;
  }
  if (var_a <= 1e-30 || var_b <= 1e-30) return 0.0;
  return cov / std::sqrt(var_a * var_b);
}

#endif  // __x86_64__

}  // namespace

double csi_similarity(const CsiMatrix& a, const CsiMatrix& b, std::size_t tx,
                      std::size_t rx, CsiSimilarityScratch& scratch) {
#if defined(__x86_64__)
  const std::size_t n_sc = a.n_subcarriers();
  if (simd::use_avx2fma() && n_sc != 0) {  // empty keeps the scalar throw
    scratch.mag_a.resize(n_sc);
    scratch.mag_b.resize(n_sc);
    return pair_similarity_avx2(&a.at(tx, rx, 0), &b.at(tx, rx, 0), n_sc,
                                scratch.mag_a.data(), scratch.mag_b.data());
  }
#endif
  a.magnitudes_into(tx, rx, scratch.mag_a);
  b.magnitudes_into(tx, rx, scratch.mag_b);
  return pearson_correlation(scratch.mag_a, scratch.mag_b);
}

double csi_similarity(const CsiMatrix& a, const CsiMatrix& b, std::size_t tx,
                      std::size_t rx) {
  CsiSimilarityScratch scratch;
  return csi_similarity(a, b, tx, rx, scratch);
}

double csi_similarity(const CsiMatrix& a, const CsiMatrix& b,
                      CsiSimilarityScratch& scratch) {
  if (a.n_tx() != b.n_tx() || a.n_rx() != b.n_rx() ||
      a.n_subcarriers() != b.n_subcarriers())
    throw std::invalid_argument("csi_similarity: dimension mismatch");
  double sum = 0.0;
  for (std::size_t tx = 0; tx < a.n_tx(); ++tx)
    for (std::size_t rx = 0; rx < a.n_rx(); ++rx)
      sum += csi_similarity(a, b, tx, rx, scratch);
  return sum / static_cast<double>(a.n_tx() * a.n_rx());
}

double csi_similarity(const CsiMatrix& a, const CsiMatrix& b) {
  CsiSimilarityScratch scratch;
  return csi_similarity(a, b, scratch);
}

}  // namespace mobiwlan
