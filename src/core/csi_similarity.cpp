#include "core/csi_similarity.hpp"

#include <cmath>
#include <stdexcept>

#include "util/simd.hpp"

#if defined(__x86_64__)
#include <immintrin.h>
#endif

namespace mobiwlan {

double pearson_correlation(std::span<const double> a, std::span<const double> b) {
  if (a.size() != b.size() || a.empty())
    throw std::invalid_argument("pearson_correlation: size mismatch or empty");
  const double n = static_cast<double>(a.size());
  double mean_a = 0.0;
  double mean_b = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    mean_a += a[i];
    mean_b += b[i];
  }
  mean_a /= n;
  mean_b /= n;
  double cov = 0.0;
  double var_a = 0.0;
  double var_b = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double da = a[i] - mean_a;
    const double db = b[i] - mean_b;
    cov += da * db;
    var_a += da * da;
    var_b += db * db;
  }
  if (var_a <= 1e-30 || var_b <= 1e-30) return 0.0;
  return cov / std::sqrt(var_a * var_b);
}

namespace {

#if defined(__x86_64__)

// Fixed-order horizontal sum: lane0 + lane1 + lane2 + lane3. The order is
// part of the kernel's numerical contract (both Pearson arguments reduce
// identically, keeping the similarity exactly argument-symmetric).
__attribute__((target("avx2,fma"), optimize("fp-contract=off"))) double hsum(__m256d v) {
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, v);
  return lanes[0] + lanes[1] + lanes[2] + lanes[3];
}

// Magnitude pass of Eq. (1) for one antenna-pair plane, 4 subcarriers at a
// time: writes |H_i| into mag[0..n_sc) and returns the mean. Numerics:
// magnitudes use sqrt(re^2 + im^2) (vs std::abs's overflow-safe hypot —
// equal to ~1 ulp at CSI magnitudes), and the sum accumulates 4 positional
// partial lanes reduced in fixed lane order plus a plain-arithmetic sub-4
// tail.
__attribute__((target("avx2,fma"), optimize("fp-contract=off"))) double
magnitude_pass_avx2(const cplx* p, std::size_t n_sc, double* mag) {
  __m256d sum = _mm256_setzero_pd();
  std::size_t sc = 0;
  for (; sc + 4 <= n_sc; sc += 4) {
    const double* q = reinterpret_cast<const double*>(p + sc);
    // Deinterleave [re0 im0 re1 im1 | re2 im2 re3 im3] into re/im planes
    // in subcarrier order.
    const __m256d v0 = _mm256_loadu_pd(q);
    const __m256d v1 = _mm256_loadu_pd(q + 4);
    const __m256d re = _mm256_permute4x64_pd(_mm256_unpacklo_pd(v0, v1), 0xd8);
    const __m256d im = _mm256_permute4x64_pd(_mm256_unpackhi_pd(v0, v1), 0xd8);
    const __m256d m =
        _mm256_sqrt_pd(_mm256_fmadd_pd(re, re, _mm256_mul_pd(im, im)));
    _mm256_storeu_pd(mag + sc, m);
    sum = _mm256_add_pd(sum, m);
  }
  double tail = 0.0;
  for (; sc < n_sc; ++sc) {
    const double re = p[sc].real(), im = p[sc].imag();
    mag[sc] = std::sqrt(re * re + im * im);
    tail += mag[sc];
  }
  return (hsum(sum) + tail) / static_cast<double>(n_sc);
}

// Correlation pass of Eq. (1): Pearson of two magnitude planes about their
// precomputed means. The reductions are positionally fixed, so swapping the
// arguments performs identical arithmetic — exact symmetry.
__attribute__((target("avx2,fma"), optimize("fp-contract=off"))) double
correlation_pass_avx2(const double* mag_a, double mean_a, const double* mag_b,
                      double mean_b, std::size_t n_sc) {
  const __m256d va_mean = _mm256_set1_pd(mean_a);
  const __m256d vb_mean = _mm256_set1_pd(mean_b);
  __m256d cov4 = _mm256_setzero_pd();
  __m256d var_a4 = _mm256_setzero_pd();
  __m256d var_b4 = _mm256_setzero_pd();
  std::size_t sc = 0;
  for (; sc + 4 <= n_sc; sc += 4) {
    const __m256d da = _mm256_sub_pd(_mm256_loadu_pd(mag_a + sc), va_mean);
    const __m256d db = _mm256_sub_pd(_mm256_loadu_pd(mag_b + sc), vb_mean);
    cov4 = _mm256_fmadd_pd(da, db, cov4);
    var_a4 = _mm256_fmadd_pd(da, da, var_a4);
    var_b4 = _mm256_fmadd_pd(db, db, var_b4);
  }
  double cov = hsum(cov4);
  double var_a = hsum(var_a4);
  double var_b = hsum(var_b4);
  for (; sc < n_sc; ++sc) {
    const double da = mag_a[sc] - mean_a;
    const double db = mag_b[sc] - mean_b;
    cov += da * db;
    var_a += da * da;
    var_b += db * db;
  }
  if (var_a <= 1e-30 || var_b <= 1e-30) return 0.0;
  return cov / std::sqrt(var_a * var_b);
}

#endif  // __x86_64__

// Scalar magnitude pass — bitwise mirror of magnitude_pass_avx2: the same
// sqrt(fma(re, re, im*im)) magnitudes and four positional partial sums
// folded in fixed lane order plus the plain-arithmetic sub-4 tail. A
// non-AVX2 host therefore produces the exact bits an AVX2 host produces.
double magnitude_pass_lane(const cplx* p, std::size_t n_sc, double* mag) {
  double s[4] = {0.0, 0.0, 0.0, 0.0};
  std::size_t sc = 0;
  for (; sc + 4 <= n_sc; sc += 4) {
    for (int l = 0; l < 4; ++l) {
      const double re = p[sc + l].real(), im = p[sc + l].imag();
      const double m = std::sqrt(std::fma(re, re, im * im));
      mag[sc + l] = m;
      s[l] += m;
    }
  }
  double tail = 0.0;
  for (; sc < n_sc; ++sc) {
    const double re = p[sc].real(), im = p[sc].imag();
    mag[sc] = std::sqrt(re * re + im * im);
    tail += mag[sc];
  }
  return ((s[0] + s[1] + s[2] + s[3]) + tail) / static_cast<double>(n_sc);
}

// Scalar correlation pass — bitwise mirror of correlation_pass_avx2 (fma
// accumulation into four positional lanes, fixed-order fold, plain tail).
double correlation_pass_lane(const double* mag_a, double mean_a,
                             const double* mag_b, double mean_b,
                             std::size_t n_sc) {
  double cov_l[4] = {0.0, 0.0, 0.0, 0.0};
  double va_l[4] = {0.0, 0.0, 0.0, 0.0};
  double vb_l[4] = {0.0, 0.0, 0.0, 0.0};
  std::size_t sc = 0;
  for (; sc + 4 <= n_sc; sc += 4) {
    for (int l = 0; l < 4; ++l) {
      const double da = mag_a[sc + l] - mean_a;
      const double db = mag_b[sc + l] - mean_b;
      cov_l[l] = std::fma(da, db, cov_l[l]);
      va_l[l] = std::fma(da, da, va_l[l]);
      vb_l[l] = std::fma(db, db, vb_l[l]);
    }
  }
  double cov = cov_l[0] + cov_l[1] + cov_l[2] + cov_l[3];
  double var_a = va_l[0] + va_l[1] + va_l[2] + va_l[3];
  double var_b = vb_l[0] + vb_l[1] + vb_l[2] + vb_l[3];
  for (; sc < n_sc; ++sc) {
    const double da = mag_a[sc] - mean_a;
    const double db = mag_b[sc] - mean_b;
    cov += da * db;
    var_a += da * da;
    var_b += db * db;
  }
  if (var_a <= 1e-30 || var_b <= 1e-30) return 0.0;
  return cov / std::sqrt(var_a * var_b);
}

double magnitude_pass(const cplx* p, std::size_t n_sc, double* mag) {
#if defined(__x86_64__)
  if (simd::use_avx2fma()) return magnitude_pass_avx2(p, n_sc, mag);
#endif
  return magnitude_pass_lane(p, n_sc, mag);
}

double correlation_pass(const double* mag_a, double mean_a,
                        const double* mag_b, double mean_b, std::size_t n_sc) {
#if defined(__x86_64__)
  if (simd::use_avx2fma())
    return correlation_pass_avx2(mag_a, mean_a, mag_b, mean_b, n_sc);
#endif
  return correlation_pass_lane(mag_a, mean_a, mag_b, mean_b, n_sc);
}

}  // namespace

double csi_similarity(const CsiMatrix& a, const CsiMatrix& b, std::size_t tx,
                      std::size_t rx, CsiSimilarityScratch& scratch) {
  const std::size_t n_sc = a.n_subcarriers();
  if (n_sc != 0) {  // empty keeps the scalar throw below
    scratch.mag_a.resize(n_sc);
    scratch.mag_b.resize(n_sc);
    const double mean_a =
        magnitude_pass(&a.at(tx, rx, 0), n_sc, scratch.mag_a.data());
    const double mean_b =
        magnitude_pass(&b.at(tx, rx, 0), n_sc, scratch.mag_b.data());
    return correlation_pass(scratch.mag_a.data(), mean_a,
                            scratch.mag_b.data(), mean_b, n_sc);
  }
  a.magnitudes_into(tx, rx, scratch.mag_a);
  b.magnitudes_into(tx, rx, scratch.mag_b);
  return pearson_correlation(scratch.mag_a, scratch.mag_b);
}

void csi_anchor_set(const CsiMatrix& m, CsiAnchor& anchor) {
  const std::size_t n_sc = m.n_subcarriers();
  anchor.n_pairs = m.n_tx() * m.n_rx();
  anchor.n_sc = n_sc;
  anchor.mag.resize(anchor.n_pairs * n_sc);
  anchor.mean.resize(anchor.n_pairs);
  std::size_t pair = 0;
  for (std::size_t tx = 0; tx < m.n_tx(); ++tx)
    for (std::size_t rx = 0; rx < m.n_rx(); ++rx, ++pair)
      anchor.mean[pair] =
          magnitude_pass(&m.at(tx, rx, 0), n_sc, &anchor.mag[pair * n_sc]);
}

double csi_similarity_anchored(const CsiAnchor& anchor, const CsiMatrix& b,
                               CsiAnchor& next) {
  const std::size_t n_sc = b.n_subcarriers();
  if (b.n_tx() * b.n_rx() != anchor.n_pairs || n_sc != anchor.n_sc ||
      n_sc == 0)
    throw std::invalid_argument("csi_similarity_anchored: dimension mismatch");
  // The magnitude pass for b doubles as `next`'s anchor state; the pair loop
  // mirrors the tx-major accumulation of csi_similarity(a, b), so the result
  // is bitwise what the unanchored call computes.
  csi_anchor_set(b, next);
  double sum = 0.0;
  for (std::size_t pair = 0; pair < anchor.n_pairs; ++pair)
    sum += correlation_pass(&anchor.mag[pair * n_sc], anchor.mean[pair],
                            &next.mag[pair * n_sc], next.mean[pair], n_sc);
  return sum / static_cast<double>(anchor.n_pairs);
}

double csi_similarity(const CsiMatrix& a, const CsiMatrix& b, std::size_t tx,
                      std::size_t rx) {
  CsiSimilarityScratch scratch;
  return csi_similarity(a, b, tx, rx, scratch);
}

double csi_similarity(const CsiMatrix& a, const CsiMatrix& b,
                      CsiSimilarityScratch& scratch) {
  if (a.n_tx() != b.n_tx() || a.n_rx() != b.n_rx() ||
      a.n_subcarriers() != b.n_subcarriers())
    throw std::invalid_argument("csi_similarity: dimension mismatch");
  double sum = 0.0;
  for (std::size_t tx = 0; tx < a.n_tx(); ++tx)
    for (std::size_t rx = 0; rx < a.n_rx(); ++rx)
      sum += csi_similarity(a, b, tx, rx, scratch);
  return sum / static_cast<double>(a.n_tx() * a.n_rx());
}

double csi_similarity(const CsiMatrix& a, const CsiMatrix& b) {
  CsiSimilarityScratch scratch;
  return csi_similarity(a, b, scratch);
}

}  // namespace mobiwlan
