#include "core/csi_similarity.hpp"

#include <cmath>
#include <stdexcept>

namespace mobiwlan {

double pearson_correlation(std::span<const double> a, std::span<const double> b) {
  if (a.size() != b.size() || a.empty())
    throw std::invalid_argument("pearson_correlation: size mismatch or empty");
  const double n = static_cast<double>(a.size());
  double mean_a = 0.0;
  double mean_b = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    mean_a += a[i];
    mean_b += b[i];
  }
  mean_a /= n;
  mean_b /= n;
  double cov = 0.0;
  double var_a = 0.0;
  double var_b = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double da = a[i] - mean_a;
    const double db = b[i] - mean_b;
    cov += da * db;
    var_a += da * da;
    var_b += db * db;
  }
  if (var_a <= 1e-30 || var_b <= 1e-30) return 0.0;
  return cov / std::sqrt(var_a * var_b);
}

double csi_similarity(const CsiMatrix& a, const CsiMatrix& b, std::size_t tx,
                      std::size_t rx, CsiSimilarityScratch& scratch) {
  a.magnitudes_into(tx, rx, scratch.mag_a);
  b.magnitudes_into(tx, rx, scratch.mag_b);
  return pearson_correlation(scratch.mag_a, scratch.mag_b);
}

double csi_similarity(const CsiMatrix& a, const CsiMatrix& b, std::size_t tx,
                      std::size_t rx) {
  CsiSimilarityScratch scratch;
  return csi_similarity(a, b, tx, rx, scratch);
}

double csi_similarity(const CsiMatrix& a, const CsiMatrix& b,
                      CsiSimilarityScratch& scratch) {
  if (a.n_tx() != b.n_tx() || a.n_rx() != b.n_rx() ||
      a.n_subcarriers() != b.n_subcarriers())
    throw std::invalid_argument("csi_similarity: dimension mismatch");
  double sum = 0.0;
  for (std::size_t tx = 0; tx < a.n_tx(); ++tx)
    for (std::size_t rx = 0; rx < a.n_rx(); ++rx)
      sum += csi_similarity(a, b, tx, rx, scratch);
  return sum / static_cast<double>(a.n_tx() * a.n_rx());
}

double csi_similarity(const CsiMatrix& a, const CsiMatrix& b) {
  CsiSimilarityScratch scratch;
  return csi_similarity(a, b, scratch);
}

}  // namespace mobiwlan
