// csi_similarity.hpp — Equation (1) of the paper.
//
// The similarity between two CSI samples is the Pearson correlation of their
// per-subcarrier channel gain magnitudes. Static channels score ~1; device
// mobility decorrelates all multipath components and drives it toward 0;
// environmental mobility sits in between because only a few components move.
#pragma once

#include <span>

#include "phy/csi.hpp"

namespace mobiwlan {

/// Pearson correlation coefficient of two equal-length gain vectors.
/// Returns 0 when either vector is (numerically) constant.
double pearson_correlation(std::span<const double> a, std::span<const double> b);

/// Reusable magnitude buffers for the scratch overloads below: a caller that
/// keeps one of these across a sliding-window loop (as MobilityClassifier
/// does per packet) computes similarities with zero heap allocation.
struct CsiSimilarityScratch {
  std::vector<double> mag_a;
  std::vector<double> mag_b;
};

/// Eq. (1) for one transmit-receive antenna pair: correlation of channel gain
/// magnitudes across the 52 subcarriers.
double csi_similarity(const CsiMatrix& a, const CsiMatrix& b, std::size_t tx,
                      std::size_t rx);
double csi_similarity(const CsiMatrix& a, const CsiMatrix& b, std::size_t tx,
                      std::size_t rx, CsiSimilarityScratch& scratch);

/// Similarity averaged over all antenna pairs — the value S(csi_t, csi_{t+τ})
/// the classifier thresholds. Requires matching dimensions.
double csi_similarity(const CsiMatrix& a, const CsiMatrix& b);
double csi_similarity(const CsiMatrix& a, const CsiMatrix& b,
                      CsiSimilarityScratch& scratch);

}  // namespace mobiwlan
