// csi_similarity.hpp — Equation (1) of the paper.
//
// The similarity between two CSI samples is the Pearson correlation of their
// per-subcarrier channel gain magnitudes. Static channels score ~1; device
// mobility decorrelates all multipath components and drives it toward 0;
// environmental mobility sits in between because only a few components move.
#pragma once

#include <cstddef>
#include <span>
#include <utility>
#include <vector>

#include "phy/csi.hpp"

namespace mobiwlan {

/// Pearson correlation coefficient of two equal-length gain vectors.
/// Returns 0 when either vector is (numerically) constant.
double pearson_correlation(std::span<const double> a, std::span<const double> b);

/// Reusable magnitude buffers for the scratch overloads below: a caller that
/// keeps one of these across a sliding-window loop (as MobilityClassifier
/// does per packet) computes similarities with zero heap allocation.
struct CsiSimilarityScratch {
  std::vector<double> mag_a;
  std::vector<double> mag_b;
};

/// Eq. (1) for one transmit-receive antenna pair: correlation of channel gain
/// magnitudes across the 52 subcarriers.
double csi_similarity(const CsiMatrix& a, const CsiMatrix& b, std::size_t tx,
                      std::size_t rx);
double csi_similarity(const CsiMatrix& a, const CsiMatrix& b, std::size_t tx,
                      std::size_t rx, CsiSimilarityScratch& scratch);

/// Similarity averaged over all antenna pairs — the value S(csi_t, csi_{t+τ})
/// the classifier thresholds. Requires matching dimensions.
double csi_similarity(const CsiMatrix& a, const CsiMatrix& b);
double csi_similarity(const CsiMatrix& a, const CsiMatrix& b,
                      CsiSimilarityScratch& scratch);

/// Cached magnitude pass of Eq. (1) for one CSI matrix: per-subcarrier gain
/// magnitudes (pair-major planes) and their per-pair means. A consumer that
/// compares a *stream* of consecutive samples — where each sample becomes
/// the next comparison's anchor — computes every magnitude exactly once
/// instead of twice, and never needs to retain the anchor's complex CSI.
struct CsiAnchor {
  std::size_t n_pairs = 0;
  std::size_t n_sc = 0;
  std::vector<double> mag;   ///< [pair][sc], pair index = tx * n_rx + rx
  std::vector<double> mean;  ///< per-pair magnitude mean

  void swap(CsiAnchor& other) noexcept {
    std::swap(n_pairs, other.n_pairs);
    std::swap(n_sc, other.n_sc);
    mag.swap(other.mag);
    mean.swap(other.mean);
  }
};

/// Fills `anchor` with the magnitude pass for `m` — bit-for-bit the values
/// csi_similarity computes internally for either argument. Allocation-free
/// once `anchor` has reached the matrix dimensions.
void csi_anchor_set(const CsiMatrix& m, CsiAnchor& anchor);

/// Eq. (1) of `b` against a cached anchor, averaged over antenna pairs:
/// bitwise identical to csi_similarity(a, b) when `anchor` was set from a.
/// Also fills `next` with b's magnitude pass, so the caller can
/// `next.swap(anchor)` to advance the stream at zero recomputation.
double csi_similarity_anchored(const CsiAnchor& anchor, const CsiMatrix& b,
                               CsiAnchor& next);

}  // namespace mobiwlan
