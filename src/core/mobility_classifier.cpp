#include "core/mobility_classifier.hpp"

#include <cmath>

#include "chan/channel.hpp"
#include "core/csi_similarity.hpp"
#include "phy/aoa.hpp"
#include "util/prefetch.hpp"
#include "util/stats.hpp"

namespace mobiwlan {

MobilityClassifier::MobilityClassifier(Config config)
    : config_(config),
      similarity_avg_(config.similarity_window),
      tof_tracker_(config.tof) {}

void MobilityClassifier::on_csi(double t, const CsiMatrix& csi) {
  if (!have_anchor_) {
    csi_anchor_set(csi, anchor_);
    have_anchor_ = true;
    last_csi_t_ = t;
    return;
  }
  // Decimate to the configured sampling period (allow 1% early jitter).
  if (t - last_csi_t_ < config_.csi_period_s * 0.99) return;

  // A hole in the CSI stream (dropped firmware exports): the pending anchor
  // is too old for Eq. (1)'s consecutive-sample similarity, so re-anchor on
  // this sample and rebuild the average from genuinely adjacent pairs.
  if (t - last_csi_t_ > config_.csi_gap_reanchor_factor * config_.csi_period_s) {
    csi_anchor_set(csi, anchor_);
    last_csi_t_ = t;
    similarity_avg_.reset();
    have_similarity_ = false;
    return;
  }

  // Anchored Eq. (1): bitwise the same value csi_similarity(last, csi)
  // produced, but only this sample's magnitude pass runs; its pass becomes
  // the next anchor via the swap.
  const double s = csi_similarity_anchored(anchor_, csi, next_anchor_);
  next_anchor_.swap(anchor_);
  similarity_avg_.add(s);
  have_similarity_ = true;
  last_csi_t_ = t;
  if (config_.use_aoa && tof_active_) {
    const AoaEstimate est = estimate_aoa(csi);
    last_aoa_ = est.angle_rad;
    aoa_values_.push_back(est.angle_rad);
    if (aoa_values_.size() > config_.aoa_trend_window) aoa_values_.pop_front();
  }
  update_mode(t);
}

void MobilityClassifier::reset() {
  similarity_avg_.reset();
  have_anchor_ = false;
  last_csi_t_ = 0.0;
  have_similarity_ = false;
  tof_tracker_.reset();
  tof_active_ = false;
  aoa_values_.clear();
  last_aoa_.reset();
  mode_ = MobilityMode::kStatic;
  macro_until_ = -1.0;
  macro_direction_ = MobilityMode::kMacroAway;
}

void MobilityClassifier::prefetch() const {
  // The anchor's magnitude plane is read by every on_csi; next_anchor_'s is
  // overwritten by the incoming sample's pass, and the similarity ring
  // absorbs the result.
  prefetch_lines(anchor_.mag.data(), anchor_.mag.size() * sizeof(double));
  prefetch_lines(next_anchor_.mag.data(),
                 next_anchor_.mag.size() * sizeof(double), /*for_write=*/true);
  similarity_avg_.prefetch();
}

void MobilityClassifier::on_tof(double t, double tof_cycles) {
  if (!tof_active_) return;
  tof_tracker_.add(t, tof_cycles);
  update_mode(t);
}

void MobilityClassifier::observe(const ChannelSample& sample) {
  on_csi(sample.t, sample.csi);
  on_tof(sample.t, sample.tof_cycles);
}

std::optional<double> MobilityClassifier::similarity() const {
  if (!have_similarity_) return std::nullopt;
  return similarity_avg_.value();
}

std::optional<MobilityMode> MobilityClassifier::decision(double t) const {
  if (!have_similarity_) return std::nullopt;
  if (t - last_csi_t_ > config_.csi_stale_hold_s) return std::nullopt;
  return mode_;
}

void MobilityClassifier::update_mode(double t) {
  if (!have_similarity_) return;
  const double s = similarity_avg_.value();

  if (s > config_.thr_sta) {
    mode_ = MobilityMode::kStatic;
    tof_active_ = false;
    tof_tracker_.reset();
    aoa_values_.clear();
    macro_until_ = -1.0;
    return;
  }
  if (s > config_.thr_env) {
    mode_ = MobilityMode::kEnvironmental;
    tof_active_ = false;
    tof_tracker_.reset();
    aoa_values_.clear();
    macro_until_ = -1.0;
    return;
  }

  // Device mobility: consult the ToF trend (Fig. 5 right half).
  if (!tof_active_) {
    tof_active_ = true;
    tof_tracker_.reset();
    aoa_values_.clear();
    last_aoa_.reset();
  }
  switch (tof_tracker_.trend()) {
    case TofTrend::kIncreasing:
      macro_direction_ = MobilityMode::kMacroAway;
      macro_until_ = t + config_.macro_hold_s;
      break;
    case TofTrend::kDecreasing:
      macro_direction_ = MobilityMode::kMacroToward;
      macro_until_ = t + config_.macro_hold_s;
      break;
    case TofTrend::kNone:
      // §9 augmentation: constant distance but steadily swinging AoA means
      // the client is walking around the AP, not gesturing in place.
      if (config_.use_aoa && aoa_orbit_trend()) {
        macro_direction_ = MobilityMode::kMacroOrbit;
        macro_until_ = t + config_.macro_hold_s;
      }
      break;
  }
  mode_ = (t <= macro_until_) ? macro_direction_ : MobilityMode::kMicro;
}

bool MobilityClassifier::aoa_orbit_trend() const {
  const std::size_t n = aoa_values_.size();
  if (n < config_.aoa_trend_window) return false;
  const double dt = config_.csi_period_s;

  // Theil-Sen: median of all pairwise slopes (robust to beamscan outliers).
  std::vector<double> slopes;
  slopes.reserve(n * (n - 1) / 2);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i + 1; j < n; ++j)
      slopes.push_back((aoa_values_[j] - aoa_values_[i]) /
                       (static_cast<double>(j - i) * dt));
  const double slope = median_of(std::move(slopes));

  const double span_s = static_cast<double>(n - 1) * dt;
  if (std::abs(slope) < config_.aoa_min_rate_rad_s) return false;
  if (std::abs(slope) * span_s < config_.aoa_min_change_rad) return false;

  // Residual gate: gestures produce large-spread clouds around any fit.
  const double mid = median_of({aoa_values_.begin(), aoa_values_.end()});
  const double t_mid = span_s / 2.0;
  std::vector<double> residuals;
  residuals.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double fitted = mid + slope * (static_cast<double>(i) * dt - t_mid);
    residuals.push_back(std::abs(aoa_values_[i] - fitted));
  }
  return median_of(std::move(residuals)) <= config_.aoa_max_residual_rad;
}

std::optional<double> MobilityClassifier::aoa() const { return last_aoa_; }

}  // namespace mobiwlan
