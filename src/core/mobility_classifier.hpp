// mobility_classifier.hpp — the paper's primary contribution (Fig. 5).
//
// The AP classifies each client's mobility using only PHY information it
// already sees on data-ACK exchanges:
//
//   CSI similarity (moving average)        ToF trend (when device-mobile)
//   ---------------------------------      -----------------------------
//   S > Thr_sta (0.98)  -> Static          increasing -> Macro, moving away
//   S > Thr_env (0.7)   -> Environmental   decreasing -> Macro, moving toward
//   otherwise           -> device mobile   no trend   -> Micro
//
// ToF measurement starts only when CSI indicates device mobility and stops
// (state cleared) when it no longer does, exactly as in the paper's flow
// chart. No client-side cooperation or sensors are involved.
#pragma once

#include <optional>

#include "core/csi_similarity.hpp"
#include "core/mobility_mode.hpp"
#include "core/tof_tracker.hpp"
#include "phy/csi.hpp"
#include <deque>

#include "util/filters.hpp"

namespace mobiwlan {

struct ChannelSample;  // chan/channel.hpp; convenience overload only

class MobilityClassifier {
 public:
  struct Config {
    double thr_sta = 0.98;        ///< §2.3
    double thr_env = 0.70;        ///< §2.3
    double csi_period_s = 0.5;    ///< consecutive-sample spacing for Eq. (1)
    std::size_t similarity_window = 5;  ///< moving average over similarities
    double tof_period_s = 0.02;   ///< raw ToF sampling (§2.5: every 20 ms)
    TofTracker::Config tof;       ///< median/trend parameters
    /// Hold a detected macro state for this long past the last confirming
    /// trend, bridging the gaps between sliding windows.
    double macro_hold_s = 3.5;

    /// Graceful degradation on CSI starvation (§3: the controller falls back
    /// when PHY hints are missing). decision(t) keeps reporting the current
    /// mode for this long past the last accepted CSI sample, then decays to
    /// "no decision" so consumers can fall back instead of acting on stale
    /// state. Unfaulted feeds arrive every csi_period_s, far inside the hold.
    double csi_stale_hold_s = 2.0;
    /// A CSI sample arriving more than this many periods after the previous
    /// one re-anchors the similarity stream (Eq. (1) compares *consecutive*
    /// samples; comparing across a multi-second hole measures the gap, not
    /// the channel). The similarity average restarts from the fresh anchor.
    double csi_gap_reanchor_factor = 2.5;

    /// §9 AoA augmentation: when enabled, a device-mobile client with no ToF
    /// trend but a steadily swinging Angle-of-Arrival at the AP array is
    /// classified kMacroOrbit instead of micro (a client circling the AP).
    ///
    /// Beamscan estimates are noisy (fading occasionally hands the peak to a
    /// reflection), so the detector fits a Theil-Sen (median-of-pairwise-
    /// slopes) line over the window and demands BOTH a sustained angular
    /// rate AND small residuals — gestures produce large-spread, trendless
    /// estimate clouds; orbits produce tight steady ramps.
    bool use_aoa = false;
    std::size_t aoa_trend_window = 16;     ///< decimated CSI samples (~8 s)
    double aoa_min_rate_rad_s = 0.05;      ///< minimum |angular rate|
    double aoa_min_change_rad = 0.30;      ///< minimum swing across the window
    double aoa_max_residual_rad = 0.15;    ///< max median absolute residual
  };

  MobilityClassifier() : MobilityClassifier(Config{}) {}
  explicit MobilityClassifier(Config config);

  /// Feed a CSI observation. The classifier decimates internally: only
  /// samples >= csi_period_s apart enter the similarity computation, so
  /// callers may feed every received packet.
  void on_csi(double t, const CsiMatrix& csi);

  /// Restores the just-constructed state while keeping every internal
  /// buffer's capacity — the session-pool recycle path: a reused classifier
  /// behaves bitwise like a freshly constructed one, without reallocating.
  void reset();

  /// Cache-hint: streams the anchored-similarity planes in ahead of the
  /// next on_csi. No observable effect.
  void prefetch() const;

  /// Feed one raw ToF reading (round-trip clock cycles). Ignored unless the
  /// classifier has started ToF measurement (i.e. CSI says device mobility).
  void on_tof(double t, double tof_cycles);

  /// Convenience: feed a full channel observation.
  void observe(const ChannelSample& sample);

  /// Current mobility decision.
  MobilityMode mode() const { return mode_; }

  /// The mobility decision a consumer should act on at time t, or nullopt
  /// when the classifier cannot justify one: similarity is not established
  /// yet, or the CSI stream has been silent longer than csi_stale_hold_s
  /// (hold-then-decay on observable starvation). With an on-schedule CSI
  /// feed this is exactly mode() whenever similarity() is set.
  std::optional<MobilityMode> decision(double t) const;

  /// Moving-average CSI similarity (nullopt until two decimated samples).
  std::optional<double> similarity() const;

  /// Whether ToF measurement is currently running (Fig. 5's start/stop box).
  bool tof_active() const { return tof_active_; }

  /// Latest AoA estimate in radians (AoA augmentation only).
  std::optional<double> aoa() const;

  const Config& config() const { return config_; }

 private:
  void update_mode(double t);

  Config config_;
  MovingAverage similarity_avg_;
  // Anchored Eq.-1 state: instead of retaining the anchor's complex CSI and
  // recomputing both magnitude planes per comparison, the classifier caches
  // the anchor's magnitude pass (CsiAnchor) and computes only the incoming
  // sample's — bitwise the same similarity at half the arithmetic and
  // roughly half the per-classifier memory. next_anchor_ is the swap buffer
  // that receives the incoming sample's pass and becomes the new anchor.
  CsiAnchor anchor_;
  CsiAnchor next_anchor_;
  bool have_anchor_ = false;
  double last_csi_t_ = 0.0;
  bool have_similarity_ = false;

  TofTracker tof_tracker_;
  bool tof_active_ = false;

  bool aoa_orbit_trend() const;

  std::deque<double> aoa_values_;
  std::optional<double> last_aoa_;

  MobilityMode mode_ = MobilityMode::kStatic;
  double macro_until_ = -1.0;
  MobilityMode macro_direction_ = MobilityMode::kMacroAway;
};

}  // namespace mobiwlan
