// mobility_mode.hpp — the paper's client-mobility taxonomy (§1, §2).
//
// Four broad categories: a stationary client in a quiet environment (Static),
// a stationary client with moving objects nearby (Environmental), a device
// moved within a small area (Micro), and a device carried from one location
// to another (Macro). For macro-mobility the ToF trend further reveals the
// client's relative heading: toward or away from the AP (§2.4).
#pragma once

#include <string_view>

namespace mobiwlan {

/// Coarse mobility class — the ground-truth label a scenario carries and the
/// granularity of the paper's Table 1 confusion matrix.
enum class MobilityClass {
  kStatic,
  kEnvironmental,
  kMicro,
  kMacro,
};

/// Full classifier output: macro-mobility is refined by relative heading.
/// kMacroOrbit exists only when the optional AoA augmentation (§9 future
/// work, phy/aoa.hpp) is enabled: a client walking at constant distance
/// around the AP, which ToF alone cannot distinguish from micro-mobility.
enum class MobilityMode {
  kStatic,
  kEnvironmental,
  kMicro,
  kMacroToward,  ///< walking, distance to the serving AP decreasing
  kMacroAway,    ///< walking, distance to the serving AP increasing
  kMacroOrbit,   ///< walking at constant distance (AoA-augmented only)
};

constexpr MobilityClass to_class(MobilityMode m) {
  switch (m) {
    case MobilityMode::kStatic: return MobilityClass::kStatic;
    case MobilityMode::kEnvironmental: return MobilityClass::kEnvironmental;
    case MobilityMode::kMicro: return MobilityClass::kMicro;
    case MobilityMode::kMacroToward:
    case MobilityMode::kMacroAway:
    case MobilityMode::kMacroOrbit: return MobilityClass::kMacro;
  }
  return MobilityClass::kStatic;
}

constexpr bool is_device_mobility(MobilityMode m) {
  return m == MobilityMode::kMicro || m == MobilityMode::kMacroToward ||
         m == MobilityMode::kMacroAway || m == MobilityMode::kMacroOrbit;
}

constexpr bool is_macro(MobilityMode m) {
  return m == MobilityMode::kMacroToward || m == MobilityMode::kMacroAway ||
         m == MobilityMode::kMacroOrbit;
}

constexpr std::string_view to_string(MobilityClass c) {
  switch (c) {
    case MobilityClass::kStatic: return "static";
    case MobilityClass::kEnvironmental: return "environmental";
    case MobilityClass::kMicro: return "micro";
    case MobilityClass::kMacro: return "macro";
  }
  return "?";
}

constexpr std::string_view to_string(MobilityMode m) {
  switch (m) {
    case MobilityMode::kStatic: return "static";
    case MobilityMode::kEnvironmental: return "environmental";
    case MobilityMode::kMicro: return "micro";
    case MobilityMode::kMacroToward: return "macro-toward";
    case MobilityMode::kMacroAway: return "macro-away";
    case MobilityMode::kMacroOrbit: return "macro-orbit";
  }
  return "?";
}

}  // namespace mobiwlan
