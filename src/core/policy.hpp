// policy.hpp — Table 2: the per-mobility-mode protocol parameter matrix.
//
// Each mobility-aware protocol (roaming, rate adaptation, aggregation,
// beamforming, MU-MIMO) reads its knobs from this single table, keyed by the
// classifier's current output. `default_params()` is the mobility-oblivious
// stock configuration every comparison baseline uses.
//
// OCR note: the supplied paper text drops digits from several Table 2 cells;
// the values below are the physically-consistent readings documented in
// DESIGN.md and are deliberately centralized here so a reader can audit or
// retune them in one place.
#pragma once

#include "core/mobility_mode.hpp"

namespace mobiwlan {

struct ProtocolParams {
  /// Client roaming (§3): prepare candidate APs / encourage the client to
  /// roam. Only set when the client is walking away from its current AP.
  bool encourage_roaming;

  /// Rate adaptation (§4.2).
  double probe_interval_s;     ///< time at a successful rate before probing up
  double per_smoothing_alpha;  ///< EWMA weight on the newest PER observation
  int rate_retries;            ///< retries at the current rate before stepping down

  /// Frame aggregation (§5.1): maximum allowed aggregation time.
  double aggregation_limit_s;

  /// CSI feedback periods (§6.3).
  double bf_update_period_s;      ///< SU beamforming compressed-V update
  double mumimo_update_period_s;  ///< MU-MIMO precoder update
};

/// Table 2 row for the given classified mobility mode.
constexpr ProtocolParams mobility_params(MobilityMode mode) {
  switch (mode) {
    case MobilityMode::kStatic:
      return {false, 0.050, 1.0 / 16.0, 2, 8e-3, 200e-3, 200e-3};
    case MobilityMode::kEnvironmental:
      return {false, 0.050, 1.0 / 2.0, 1, 8e-3, 50e-3, 50e-3};
    case MobilityMode::kMicro:
      return {false, 0.050, 1.0 / 4.0, 1, 2e-3, 10e-3, 10e-3};
    case MobilityMode::kMacroAway:
      return {true, 0.100, 1.0 / 3.0, 0, 2e-3, 5e-3, 2e-3};
    case MobilityMode::kMacroToward:
      return {false, 0.020, 1.0 / 3.0, 1, 2e-3, 5e-3, 2e-3};
    case MobilityMode::kMacroOrbit:
      // Orbiting keeps distance constant: channel dynamics of macro (fast
      // decorrelation -> short aggregation, frequent feedback) but no
      // roaming pressure and no directional probing bias.
      return {false, 0.050, 1.0 / 3.0, 1, 2e-3, 5e-3, 2e-3};
  }
  return {false, 0.050, 1.0 / 8.0, 0, 4e-3, 20e-3, 20e-3};
}

/// The mobility-oblivious stock configuration: §4.1 Atheros RA defaults,
/// §5's statically configured 4 ms aggregation, and §6.3's statically
/// configured 2 ms CSI feedback period (the driver sounds aggressively so
/// beamforming is never stale — at a steep airtime cost for static clients).
constexpr ProtocolParams default_params() {
  return {false, 0.050, 1.0 / 8.0, 0, 4e-3, 2e-3, 2e-3};
}

}  // namespace mobiwlan
