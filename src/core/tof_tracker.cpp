#include "core/tof_tracker.hpp"

namespace mobiwlan {

TofTracker::TofTracker(Config config)
    : config_(config), window_(config.trend_window, config.slack_cycles) {}

void TofTracker::add(double t, double tof_cycles) {
  if (!epoch_open_) {
    epoch_start_ = t;
    epoch_open_ = true;
  }
  // Close out any full aggregation periods that elapsed before this reading.
  while (t - epoch_start_ >= config_.aggregation_period_s) {
    if (auto median = aggregator_.flush()) {
      window_.add(*median);
      last_median_ = *median;
      ++median_count_;
    }
    epoch_start_ += config_.aggregation_period_s;
  }
  aggregator_.add(tof_cycles);
}

TofTrend TofTracker::trend() const {
  if (window_.increasing(config_.min_change_cycles)) return TofTrend::kIncreasing;
  if (window_.decreasing(config_.min_change_cycles)) return TofTrend::kDecreasing;
  return TofTrend::kNone;
}

void TofTracker::reset() {
  aggregator_ = MedianAggregator{};
  window_.reset();
  epoch_open_ = false;
  last_median_.reset();
  median_count_ = 0;
}

}  // namespace mobiwlan
