#include "core/tof_tracker.hpp"

#include <cstdint>

namespace mobiwlan {

TofTracker::TofTracker(Config config)
    // 64 pending readings covers a full aggregation period at the paper's
    // 20 ms sampling cadence, so steady-state add() never allocates.
    : config_(config),
      aggregator_(64),
      window_(config.trend_window, config.slack_cycles) {}

void TofTracker::add(double t, double tof_cycles) {
  if (!epoch_open_) {
    epoch_start_ = t;
    epoch_open_ = true;
  }
  // Close out the elapsed aggregation periods in O(1): a reading may arrive
  // an arbitrary gap after the previous one (dropped or delayed ToF exports),
  // and iterating period-by-period would cost O(gap/period).
  //
  // Gap semantics: the trend window holds *consecutive* per-second medians.
  // If more than one period elapsed, the seconds in between produced no
  // median, so whatever pending samples we aggregate are not adjacent to the
  // window's existing entries — the window restarts rather than pretending
  // the gap never happened. `last_median_` still records the flushed value
  // (it is a "latest measurement" for diagnostics, not trend evidence).
  const double elapsed = t - epoch_start_;
  if (elapsed >= config_.aggregation_period_s) {
    const auto periods =
        static_cast<std::uint64_t>(elapsed / config_.aggregation_period_s);
    if (auto median = aggregator_.flush()) {
      last_median_ = *median;
      ++median_count_;
      if (periods == 1) window_.add(*median);
    }
    if (periods > 1) window_.reset();
    epoch_start_ += static_cast<double>(periods) * config_.aggregation_period_s;
  }
  aggregator_.add(tof_cycles);
}

TofTrend TofTracker::trend() const {
  if (window_.increasing(config_.min_change_cycles)) return TofTrend::kIncreasing;
  if (window_.decreasing(config_.min_change_cycles)) return TofTrend::kDecreasing;
  return TofTrend::kNone;
}

void TofTracker::reset() {
  aggregator_.clear();  // keeps capacity: reset never re-allocates
  window_.reset();
  epoch_open_ = false;
  last_median_.reset();
  median_count_ = 0;
}

}  // namespace mobiwlan
