// tof_tracker.hpp — the ToF half of the classifier (§2.4).
//
// Raw ToF readings are sampled every 20 ms and are individually too noisy to
// act on; the tracker aggregates each second with a median filter and keeps a
// sliding window of per-second medians. Macro-mobility is declared only when
// *all* values in the window follow an increasing or decreasing trend; the
// trend's sign gives the client's relative heading (increasing = moving away).
#pragma once

#include <cstddef>
#include <optional>

#include "util/filters.hpp"

namespace mobiwlan {

/// Heading relative to the AP, derived from the ToF trend.
enum class TofTrend { kNone, kIncreasing, kDecreasing };

class TofTracker {
 public:
  struct Config {
    double aggregation_period_s = 1.0;  ///< median filter cadence
    std::size_t trend_window = 4;       ///< per-second medians in the window (4 s)
    /// Per-pair countertrend tolerance (clock cycles): absorbs quantization
    /// plateaus without breaking a genuine trend.
    double slack_cycles = 0.45;
    /// Minimum net window change to call a trend (clock cycles); rejects
    /// micro-mobility noise that happens to drift monotonically.
    double min_change_cycles = 1.2;
  };

  TofTracker() : TofTracker(Config{}) {}
  explicit TofTracker(Config config);

  /// Feed one raw ToF reading (round-trip clock cycles) taken at time t.
  /// Timestamps must be non-decreasing.
  void add(double t, double tof_cycles);

  /// Current trend over the window (kNone until the window fills).
  TofTrend trend() const;

  /// Latest per-second median, if any has been produced.
  std::optional<double> last_median() const { return last_median_; }

  /// Number of per-second medians produced so far.
  std::size_t median_count() const { return median_count_; }

  /// Clears all accumulated state (used when the classifier stops ToF
  /// measurement on leaving device mobility — Fig. 5).
  void reset();

  const Config& config() const { return config_; }

 private:
  Config config_;
  MedianAggregator aggregator_;
  TrendWindow window_;
  double epoch_start_ = 0.0;
  bool epoch_open_ = false;
  std::optional<double> last_median_;
  std::size_t median_count_ = 0;
};

}  // namespace mobiwlan
