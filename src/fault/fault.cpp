#include "fault/fault.hpp"

namespace mobiwlan {

FaultStream::FaultStream(const StreamFault& fault, Rng drop_rng, Rng burst_rng)
    : fault_(fault),
      drops_active_(fault.drop_prob > 0.0 || fault.burst_rate_hz > 0.0),
      drop_rng_(drop_rng),
      burst_rng_(burst_rng),
      bursts_active_(fault.burst_rate_hz > 0.0) {
  if (bursts_active_) {
    // First burst after an exponential gap from t = 0.
    burst_start_ = burst_rng_.exponential(1.0 / fault_.burst_rate_hz);
    burst_end_ =
        burst_start_ + burst_rng_.uniform(fault_.burst_min_s, fault_.burst_max_s);
  }
}

bool FaultStream::deliver(double t) {
  if (!drops_active_) return true;
  if (bursts_active_) {
    // Advance the burst process past t. Bursts are generated in order from
    // their own substream, so the schedule is a pure function of the seed.
    while (burst_end_ <= t) {
      burst_start_ = burst_end_ + burst_rng_.exponential(1.0 / fault_.burst_rate_hz);
      burst_end_ = burst_start_ +
                   burst_rng_.uniform(fault_.burst_min_s, fault_.burst_max_s);
    }
    if (t >= burst_start_) return false;  // inside an outage burst
  }
  if (fault_.drop_prob > 0.0 && drop_rng_.chance(fault_.drop_prob)) return false;
  return true;
}

namespace {

/// Substream id for (unit, kind): two streams (drop, burst) per kind,
/// four kinds per unit.
std::uint64_t stream_id(FaultStreamKind kind, std::uint64_t unit) {
  return unit * 8 + static_cast<std::uint64_t>(kind) * 2;
}

const StreamFault& stream_fault(const FaultPlan& plan, FaultStreamKind kind) {
  switch (kind) {
    case FaultStreamKind::kCsi: return plan.csi;
    case FaultStreamKind::kTof: return plan.tof;
    case FaultStreamKind::kRssi: return plan.rssi;
    case FaultStreamKind::kFeedback: return plan.feedback;
  }
  return plan.csi;  // unreachable
}

}  // namespace

FaultStream make_stream(const FaultPlan& plan, FaultStreamKind kind,
                        std::uint64_t unit) {
  const StreamFault& fault = stream_fault(plan, kind);
  if (!fault.any()) return FaultStream{};
  const Rng master(plan.seed);
  const std::uint64_t id = stream_id(kind, unit);
  return FaultStream(fault, master.stream(id), master.stream(id + 1));
}

DegradedObservables::DegradedObservables(WirelessChannel& channel,
                                         const FaultPlan& plan,
                                         std::uint64_t unit)
    : channel_(channel),
      plan_(plan),
      csi_(make_stream(plan, FaultStreamKind::kCsi, unit)),
      tof_(make_stream(plan, FaultStreamKind::kTof, unit)),
      rssi_(make_stream(plan, FaultStreamKind::kRssi, unit)),
      feedback_(make_stream(plan, FaultStreamKind::kFeedback, unit)) {}

std::optional<CsiMatrix> DegradedObservables::csi(double t) {
  if (plan_.rssi_only) return std::nullopt;
  if (!csi_.deliver(t)) return std::nullopt;
  return channel_.csi_at(csi_.measured_t(t));
}

std::optional<double> DegradedObservables::tof_cycles(double t) {
  if (plan_.rssi_only) return std::nullopt;
  if (!tof_.deliver(t)) return std::nullopt;
  return channel_.tof_cycles(tof_.measured_t(t));
}

std::optional<double> DegradedObservables::rssi_dbm(double t) {
  if (!rssi_.deliver(t)) return std::nullopt;
  return channel_.rssi_dbm(rssi_.measured_t(t));
}

bool DegradedObservables::feedback_delivered(double t) {
  if (plan_.rssi_only) return false;
  return feedback_.deliver(t);
}

}  // namespace mobiwlan
