// fault.hpp — deterministic fault injection for PHY observables.
//
// The paper's system runs on firmware-exported observables that are
// unreliable in practice: CSI reports get dropped or arrive late, ToF
// exports are bursty, and §3 explicitly falls back when PHY hints are
// missing. This layer injects exactly those failure shapes between the
// channel simulator and every consumer:
//
//   * Bernoulli drop     — each reading independently lost with drop_prob;
//   * burst loss         — Poisson-arriving outages of uniform length,
//                          during which every reading of the stream is lost
//                          (a firmware export path wedging, an A-MPDU storm
//                          starving the CSI FIFO);
//   * staleness/delay    — readings reflect the channel delay_s ago (export
//                          queueing): the consumer never sees an observable
//                          newer than its injection delay;
//   * RSSI-only fallback — CSI and ToF export entirely unavailable (stock
//                          firmware): only RSSI survives.
//
// Determinism contract: every fault decision draws from counter-based
// `Rng::stream` substreams of FaultPlan::seed, keyed by (unit, stream kind)
// — never from the channel's own generator and never from shared state — so
// faulted runs are bit-identical across --jobs counts, and an all-zero plan
// performs no draws at all, leaving the unfaulted path bitwise unchanged.
#pragma once

#include <cstdint>
#include <optional>

#include "chan/channel.hpp"
#include "util/rng.hpp"

namespace mobiwlan {

/// Fault knobs for one observable stream.
struct StreamFault {
  double drop_prob = 0.0;     ///< independent per-reading loss probability
  double burst_rate_hz = 0.0; ///< Poisson arrival rate of loss bursts
  double burst_min_s = 0.0;   ///< burst length ~ U[min, max]
  double burst_max_s = 0.0;
  double delay_s = 0.0;       ///< readings reflect the channel delay_s ago

  bool any() const {
    return drop_prob > 0.0 || burst_rate_hz > 0.0 || delay_s > 0.0;
  }
};

/// A complete fault scenario over the four observable streams.
struct FaultPlan {
  StreamFault csi;
  StreamFault tof;
  StreamFault rssi;
  StreamFault feedback;  ///< PHY feedback on acked frames (CSI piggyback)
  /// Stock-firmware fallback: CSI and ToF exports do not exist at all.
  bool rssi_only = false;
  /// Seed for the fault substreams. Derive per trial from the trial Rng so
  /// paired runs stay independent yet reproducible.
  std::uint64_t seed = 0;

  bool any() const {
    return rssi_only || csi.any() || tof.any() || rssi.any() || feedback.any();
  }
};

/// Substream key: which observable a FaultStream gates.
enum class FaultStreamKind { kCsi = 0, kTof = 1, kRssi = 2, kFeedback = 3 };

/// Per-stream fault process. Default-constructed = zero-fault: deliver()
/// is always true and no random draws ever happen.
class FaultStream {
 public:
  FaultStream() = default;
  FaultStream(const StreamFault& fault, Rng drop_rng, Rng burst_rng);

  /// Whether the reading taken at time t reaches the consumer. Times must be
  /// non-decreasing per stream (the burst process advances with t).
  bool deliver(double t);

  /// The channel time a reading handed out at t actually describes
  /// (clamped at 0 before the first export could have happened).
  double measured_t(double t) const {
    const double shifted = t - fault_.delay_s;
    return shifted > 0.0 ? shifted : 0.0;
  }

  double delay_s() const { return fault_.delay_s; }

 private:
  StreamFault fault_{};
  bool drops_active_ = false;  ///< drop_prob or bursts configured
  Rng drop_rng_{0};
  Rng burst_rng_{0};
  double burst_start_ = 0.0;
  double burst_end_ = 0.0;
  bool bursts_active_ = false;
};

/// Builds the fault process for one (plan, kind, unit) triple. `unit`
/// distinguishes independent links (e.g. the AP index in a deployment);
/// the substream id is a pure function of (unit, kind), so construction
/// order and thread count cannot change the sequence.
FaultStream make_stream(const FaultPlan& plan, FaultStreamKind kind,
                        std::uint64_t unit = 0);

/// The degraded view of one AP-client link: every observable passes through
/// its fault process. A dropped reading returns nullopt AND leaves the
/// channel's generator untouched (the reading was lost in export, not
/// taken differently), so a zero-fault plan reproduces the raw channel
/// call-for-call and bit-for-bit.
class DegradedObservables {
 public:
  DegradedObservables(WirelessChannel& channel, const FaultPlan& plan,
                      std::uint64_t unit = 0);

  /// Measured CSI, if the export survives (nullopt under rssi_only).
  std::optional<CsiMatrix> csi(double t);

  /// One ToF reading, if the export survives (nullopt under rssi_only).
  std::optional<double> tof_cycles(double t);

  /// Quantized RSSI, if the reading survives (available under rssi_only).
  std::optional<double> rssi_dbm(double t);

  /// Whether the PHY feedback piggybacked on the frame acked at t survives.
  bool feedback_delivered(double t);

  WirelessChannel& channel() { return channel_; }
  const FaultPlan& plan() const { return plan_; }

 private:
  WirelessChannel& channel_;
  FaultPlan plan_;
  FaultStream csi_;
  FaultStream tof_;
  FaultStream rssi_;
  FaultStream feedback_;
};

}  // namespace mobiwlan
