#include "fidelity/fidelity.hpp"

#include <cmath>
#include <cstdio>
#include <sstream>

#include "runtime/report.hpp"  // json_escape / json_double

namespace mobiwlan::fidelity {

namespace {

/// Baseline / report keys that are bookkeeping, not metrics or bounds.
bool is_reserved_key(const std::string& key) {
  return key == "seed" || key == "schema_fidelity" || key == "wall_s" ||
         key == "timing" || key.rfind("assert.", 0) == 0;
}

/// Splits a baseline key into (metric, kind) if it ends in .min or .max.
std::optional<std::pair<std::string, Assertion::Kind>> parse_bound_key(
    const std::string& key) {
  const auto dot = key.rfind('.');
  if (dot == std::string::npos) return std::nullopt;
  const std::string suffix = key.substr(dot + 1);
  if (suffix == "min")
    return std::make_pair(key.substr(0, dot), Assertion::Kind::kMin);
  if (suffix == "max")
    return std::make_pair(key.substr(0, dot), Assertion::Kind::kMax);
  return std::nullopt;
}

}  // namespace

void FidelityReport::add(std::string id, double value) {
  metrics_.emplace_back(std::move(id), value);
}

std::optional<double> FidelityReport::value(const std::string& id) const {
  for (const auto& [key, v] : metrics_)
    if (key == id) return v;
  return std::nullopt;
}

CheckResult FidelityReport::check(const std::map<std::string, double>& baseline,
                                  std::uint64_t run_seed) const {
  CheckResult out;
  const auto seed_it = baseline.find("seed");
  if (seed_it != baseline.end()) {
    out.baseline_seed = static_cast<std::uint64_t>(seed_it->second);
    out.seed_ok = out.baseline_seed == run_seed;
  } else {
    out.baseline_seed = run_seed;
  }
  for (const auto& [key, bound] : baseline) {
    if (is_reserved_key(key)) continue;
    const auto parsed = parse_bound_key(key);
    if (!parsed) continue;
    Assertion a;
    a.metric = parsed->first;
    a.kind = parsed->second;
    a.bound = bound;
    a.measured = value(a.metric);
    a.pass = a.measured.has_value() &&
             (a.kind == Assertion::Kind::kMin ? *a.measured >= a.bound
                                              : *a.measured <= a.bound);
    if (!a.pass) ++out.failed;
    out.assertions.push_back(std::move(a));
  }
  return out;
}

std::string FidelityReport::to_json(std::uint64_t seed, double wall_s,
                                    const CheckResult* check) const {
  using runtime::json_double;
  using runtime::json_escape;
  std::ostringstream os;
  os << "{\n  \"schema_fidelity\": " << kSchemaVersion << ",\n  \"seed\": "
     << seed << ",\n";
  for (const auto& [key, v] : metrics_)
    os << "  \"" << json_escape(key) << "\": " << json_double(v) << ",\n";
  if (check) {
    for (const auto& a : check->assertions) {
      const char* kind = a.kind == Assertion::Kind::kMin ? "min" : "max";
      os << "  \"assert." << json_escape(a.metric) << "." << kind
         << ".bound\": " << json_double(a.bound) << ",\n";
      os << "  \"assert." << json_escape(a.metric) << "." << kind
         << ".pass\": " << (a.pass ? 1 : 0) << ",\n";
    }
    os << "  \"assert.seed_ok\": " << (check->seed_ok ? 1 : 0) << ",\n";
    os << "  \"assert.failed\": " << check->failed << ",\n";
  }
  // Wall time is the only nondeterministic value; one line, same contract
  // as the bench RunReport ("grep -v '\"timing\":'" strips it).
  os << "  \"timing\": {\"wall_s\": " << json_double(wall_s) << "}\n}\n";
  return os.str();
}

FidelityReport report_from_flat_json(const std::map<std::string, double>& doc,
                                     std::uint64_t& seed_out) {
  FidelityReport report;
  seed_out = 0;
  const auto seed_it = doc.find("seed");
  if (seed_it != doc.end())
    seed_out = static_cast<std::uint64_t>(seed_it->second);
  for (const auto& [key, v] : doc) {
    if (is_reserved_key(key)) continue;
    report.add(key, v);
  }
  return report;
}

std::string render_check(const CheckResult& check) {
  std::ostringstream os;
  char buf[256];
  for (const auto& a : check.assertions) {
    const char* rel = a.kind == Assertion::Kind::kMin ? ">=" : "<=";
    if (a.measured) {
      std::snprintf(buf, sizeof buf, "  %-44s %10.4f %s %-10.4f %s\n",
                    a.metric.c_str(), *a.measured, rel, a.bound,
                    a.pass ? "ok" : "FAIL");
    } else {
      std::snprintf(buf, sizeof buf, "  %-44s %10s %s %-10.4f %s\n",
                    a.metric.c_str(), "missing", rel, a.bound, "FAIL");
    }
    os << buf;
  }
  if (!check.seed_ok) {
    std::snprintf(buf, sizeof buf,
                  "  seed policy: run seed differs from baseline seed %llu "
                  "(bounds are calibrated at that seed)  FAIL\n",
                  static_cast<unsigned long long>(check.baseline_seed));
    os << buf;
  }
  std::snprintf(buf, sizeof buf, "  %zu/%zu assertions passed\n",
                check.assertions.size() - check.failed,
                check.assertions.size());
  os << buf;
  return os.str();
}

int count_monotone_runs(const std::vector<double>& xs, std::size_t min_steps,
                        double min_change) {
  if (xs.size() < 2) return 0;
  int runs = 0;
  std::size_t start = 0;
  int dir = 0;
  const auto close_run = [&](std::size_t end) {
    if (end - start >= min_steps && std::abs(xs[end] - xs[start]) >= min_change)
      ++runs;
  };
  for (std::size_t i = 1; i < xs.size(); ++i) {
    const int d = xs[i] > xs[i - 1] ? 1 : (xs[i] < xs[i - 1] ? -1 : dir);
    if (d != dir && dir != 0) {
      close_run(i - 1);
      start = i - 1;
    }
    dir = d;
  }
  close_run(xs.size() - 1);
  return runs;
}

}  // namespace mobiwlan::fidelity
