// fidelity.hpp — the statistical paper-fidelity gate (tier-2 CI).
//
// EXPERIMENTS.md records the paper's headline shapes (Table 1 diagonal
// > 92%, Fig 2's Thr_sta/Thr_env separation, Fig 4's ToF ramps, Fig 9's
// scheme ordering); this module turns those prose claims into machine-
// checked assertions. A fidelity run re-executes the core experiments
// through the runtime Experiment sharder (bench/suite/fidelity.cpp),
// records named metrics into a FidelityReport, and checks them against the
// committed baseline ci/fidelity_baseline.json:
//
//   * every baseline key `<metric>.min` / `<metric>.max` is one assertion
//     (bound direction in the suffix); a bound on a missing metric fails;
//   * the baseline's `seed` key is the seed policy: bounds are calibrated
//     at the master seed, and a run at any other seed fails the check
//     rather than comparing apples to oranges;
//   * everything is deterministic (counter-based trial streams), so
//     BENCH_fidelity.json is byte-identical for any worker count outside
//     its single "timing" line — the same contract mobiwlan-bench's
//     deterministic JSON keeps.
//
// Refreshing the baseline after an intentional behaviour change mirrors the
// perf-gate procedure in DESIGN.md §5: re-run `mobiwlan-bench --fidelity`,
// inspect BENCH_fidelity.json, and copy the re-derived bounds in; the
// negative baseline (ci/fidelity_baseline_negative.json) must keep failing.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace mobiwlan::fidelity {

/// Baseline schema version written to / expected in the JSON documents.
inline constexpr int kSchemaVersion = 1;

/// One checked bound: `metric` must be >= (kMin) or <= (kMax) `bound`.
struct Assertion {
  enum class Kind { kMin, kMax };
  std::string metric;
  Kind kind = Kind::kMin;
  double bound = 0.0;
  /// Measured value; nullopt when the run produced no such metric (fails).
  std::optional<double> measured;
  bool pass = false;
};

/// Outcome of checking a report against a baseline.
struct CheckResult {
  std::vector<Assertion> assertions;  ///< baseline key order (sorted)
  bool seed_ok = true;                ///< run seed matches the baseline seed
  std::uint64_t baseline_seed = 0;
  std::size_t failed = 0;             ///< assertions with pass == false

  bool pass() const { return seed_ok && failed == 0; }
};

/// Named metrics produced by one fidelity run, in insertion order.
class FidelityReport {
 public:
  void add(std::string id, double value);

  const std::vector<std::pair<std::string, double>>& metrics() const {
    return metrics_;
  }
  std::optional<double> value(const std::string& id) const;

  /// Checks every `<metric>.min` / `<metric>.max` key of `baseline` against
  /// the recorded metrics. `run_seed` is compared to the baseline's `seed`
  /// key (seed policy); a missing `seed` key accepts any run seed.
  CheckResult check(const std::map<std::string, double>& baseline,
                    std::uint64_t run_seed) const;

  /// Flat JSON document (BENCH_fidelity.json): schema + seed + one line per
  /// metric, then the assertion verdicts when `check` is given, then a
  /// single `"timing"` line (the only nondeterministic bytes — strip with
  /// `grep -v '"timing":'` to compare runs).
  std::string to_json(std::uint64_t seed, double wall_s,
                      const CheckResult* check = nullptr) const;

 private:
  std::vector<std::pair<std::string, double>> metrics_;
};

/// Rebuilds a FidelityReport (and its seed) from a parsed BENCH_fidelity.json
/// flat-number map — the `--fidelity-check-only` path, which re-checks an
/// existing run against a (possibly updated) baseline without re-running the
/// experiments. Assertion and bookkeeping keys are skipped.
FidelityReport report_from_flat_json(const std::map<std::string, double>& doc,
                                     std::uint64_t& seed_out);

/// Renders a human-readable verdict table (one line per assertion).
std::string render_check(const CheckResult& check);

/// Number of monotone stretches in `xs` spanning at least `min_steps`
/// consecutive moves in one direction (ties extend a run) with a net change
/// of at least `min_change` — the Fig. 4 "walking ramp" counter. A series
/// of per-second ToF medians under a periodic toward/away walk produces one
/// run per leg; micro-mobility noise produces none.
int count_monotone_runs(const std::vector<double>& xs, std::size_t min_steps,
                        double min_change);

}  // namespace mobiwlan::fidelity
