#include "loc/fingerprint.hpp"

#include <cmath>
#include <complex>

namespace mobiwlan::loc {

void extract_features(const CsiMatrix& csi, double rssi_dbm, float* out) {
  out[0] = static_cast<float>(rssi_dbm);
  const std::size_t n_sc = csi.n_subcarriers();
  const std::size_t n_tx = csi.n_tx();
  const std::size_t n_rx = csi.n_rx();
  for (std::size_t b = 0; b < kBands; ++b) {
    // Integer band edges partition the subcarriers as evenly as possible
    // regardless of whether kBands divides n_sc.
    const std::size_t sc_lo = b * n_sc / kBands;
    const std::size_t sc_hi = (b + 1) * n_sc / kBands;
    double power = 0.0;
    std::size_t n = 0;
    for (std::size_t tx = 0; tx < n_tx; ++tx) {
      for (std::size_t rx = 0; rx < n_rx; ++rx) {
        for (std::size_t sc = sc_lo; sc < sc_hi; ++sc) {
          power += std::norm(csi.at(tx, rx, sc));
          ++n;
        }
      }
    }
    const double mean = n > 0 ? power / static_cast<double>(n) : 0.0;
    double db = mean > 0.0 ? 10.0 * std::log10(mean) : kMagFloorDb;
    if (db < kMagFloorDb) db = kMagFloorDb;
    out[1 + b] = static_cast<float>(db);
  }
}

}  // namespace mobiwlan::loc
