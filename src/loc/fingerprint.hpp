// fingerprint.hpp — CSI fingerprint features for indoor localization.
//
// A fingerprint compresses one AP's view of a client position into a small
// fixed vector: the RSSI plus the per-band log-magnitude profile of the
// CSI, averaged over antenna pairs. Magnitudes (not phases) survive the
// firmware's unsynchronized sampling clocks — the same reason CRISLoc
// (arXiv 1910.06895) fingerprints amplitudes — and folding the subcarriers
// into a handful of bands smooths per-subcarrier measurement noise while
// keeping the frequency ripple that distinguishes nearby cells.
//
// Features are float32 on purpose: the database stores one row per
// (cell, AP) and the query kernel streams them contiguously, so halving
// the footprint halves the cache traffic of every lookup. The quantization
// is far below the measurement noise the features already carry.
#pragma once

#include <cstddef>

#include "phy/csi.hpp"

namespace mobiwlan::loc {

/// Sub-bands the subcarriers are folded into.
inline constexpr std::size_t kBands = 7;

/// Features per (cell, AP): [0] RSSI dBm, [1..kBands] per-band mean
/// log-magnitude in dB across all antenna pairs.
inline constexpr std::size_t kFeat = kBands + 1;

/// Floor for the log-magnitude features; stands in for "no energy" so
/// all-zero bands still produce finite features.
inline constexpr double kMagFloorDb = -120.0;

/// Extracts the kFeat fingerprint features of one observation into
/// out[0..kFeat). Pure function of (csi, rssi_dbm); no allocation.
void extract_features(const CsiMatrix& csi, double rssi_dbm, float* out);

}  // namespace mobiwlan::loc
