#include "loc/fingerprint_db.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cmath>
#include <memory>
#include <utility>

#include "campus/stats_stream.hpp"
#include "chan/trajectory.hpp"

namespace mobiwlan::loc {

FingerprintDb::FingerprintDb(const FingerprintDbConfig& cfg,
                             std::vector<Vec2> ap_positions,
                             const ChannelConfig& chan_cfg)
    : cfg_(cfg), aps_(std::move(ap_positions)), chan_cfg_(chan_cfg) {
  assert(aps_.size() <= 64 && "visibility mask is one u64 per cell");
  features_.assign(n_cells() * n_aps() * kFeat, 0.0f);
  rssi_.assign(n_cells() * n_aps(), static_cast<float>(cfg_.rssi_floor_dbm));
  rssi_by_ap_.assign(n_aps() * n_cells(),
                     static_cast<float>(cfg_.rssi_floor_dbm));
  masks_.assign(n_cells(), 0);
  postings_.resize(n_aps());
}

Vec2 FingerprintDb::cell_center(std::size_t cell) const {
  const std::size_t col = cell % cfg_.cols;
  const std::size_t row = cell / cfg_.cols;
  return cfg_.origin + Vec2{(static_cast<double>(col) + 0.5) * cfg_.pitch_m,
                            (static_cast<double>(row) + 0.5) * cfg_.pitch_m};
}

std::size_t FingerprintDb::nearest_cell(Vec2 p) const {
  const auto clamp_axis = [&](double v, std::size_t n) {
    double f = std::floor(v / cfg_.pitch_m);
    if (f < 0.0) f = 0.0;
    std::size_t i = static_cast<std::size_t>(f);
    return i >= n ? n - 1 : i;
  };
  const std::size_t col = clamp_axis(p.x - cfg_.origin.x, cfg_.cols);
  const std::size_t row = clamp_axis(p.y - cfg_.origin.y, cfg_.rows);
  return row * cfg_.cols + col;
}

void FingerprintDb::survey_cell(std::size_t cell, float* row, float* rssi_row,
                                std::uint64_t* mask,
                                ChannelBatch::Scratch& scratch) const {
  const Vec2 center = cell_center(cell);
  const float floor_fill = static_cast<float>(cfg_.rssi_floor_dbm);
  for (std::size_t f = 0; f < n_aps() * kFeat; ++f) row[f] = 0.0f;
  for (std::size_t a = 0; a < n_aps(); ++a) rssi_row[a] = floor_fill;
  *mask = 0;

  float feat[kFeat];
  double acc[kFeat];
  ChannelSample smp;
  for (std::size_t ap = 0; ap < n_aps(); ++ap) {
    if (distance(aps_[ap], center) > cfg_.coverage_radius_m) continue;

    // The per-AP survey stream: every cell replays the same realization
    // draws, so the AP's environment (scatterer sequence, shadow field) is
    // shared across the whole grid and with later same-stream queries.
    auto traj = std::make_shared<StaticTrajectory>(center);
    WirelessChannel ch(chan_cfg_, aps_[ap], traj,
                       Rng(cfg_.seed).stream(kSurveySalt ^ ap));

    for (std::size_t f = 0; f < kFeat; ++f) acc[f] = 0.0;
    for (std::size_t s = 0; s < cfg_.snapshots; ++s) {
      ChannelBatch::sample_link(ch, static_cast<double>(s) * cfg_.snapshot_spacing_s,
                                smp, scratch);
      extract_features(smp.csi, smp.rssi_dbm, feat);
      for (std::size_t f = 0; f < kFeat; ++f) acc[f] += static_cast<double>(feat[f]);
    }
    const double inv = 1.0 / static_cast<double>(cfg_.snapshots);
    const double mean_rssi = acc[0] * inv;
    if (mean_rssi < cfg_.rssi_floor_dbm) continue;  // inaudible: not surveyed

    *mask |= std::uint64_t{1} << ap;
    for (std::size_t f = 0; f < kFeat; ++f)
      row[ap * kFeat + f] = static_cast<float>(acc[f] * inv);
    rssi_row[ap] = row[ap * kFeat];
  }
}

void FingerprintDb::build() {
  ChannelBatch::Scratch scratch;
  for (std::size_t cell = 0; cell < n_cells(); ++cell)
    survey_cell(cell, &features_[cell * n_aps() * kFeat],
                &rssi_[cell * n_aps()], &masks_[cell], scratch);
  rebuild_postings();
  rebuild_planes();
}

void FingerprintDb::adopt_rows(std::vector<float> rows, std::vector<float> rssi,
                               std::vector<std::uint64_t> masks) {
  assert(rows.size() == n_cells() * n_aps() * kFeat);
  assert(rssi.size() == n_cells() * n_aps());
  assert(masks.size() == n_cells());
  features_ = std::move(rows);
  rssi_ = std::move(rssi);
  masks_ = std::move(masks);
  rebuild_postings();
  rebuild_planes();
}

void FingerprintDb::rebuild_planes() {
  for (std::size_t ap = 0; ap < n_aps(); ++ap)
    for (std::size_t cell = 0; cell < n_cells(); ++cell)
      rssi_by_ap_[ap * n_cells() + cell] = rssi_[cell * n_aps() + ap];

  packed_off_.assign(n_cells() + 1, 0);
  for (std::size_t cell = 0; cell < n_cells(); ++cell)
    packed_off_[cell + 1] =
        packed_off_[cell] +
        static_cast<std::uint64_t>(std::popcount(masks_[cell])) * kFeat;
  packed_feat_.assign(packed_off_[n_cells()], 0.0f);
  for (std::size_t cell = 0; cell < n_cells(); ++cell) repack_cell(cell);

  // Pair planes: two APs can share an audible cell only when they sit
  // within 2x the coverage radius of each other.
  pair_off_.assign(n_aps() * n_aps(), 0);
  pair_plane_.clear();
  for (std::size_t s = 0; s < n_aps(); ++s) {
    const std::vector<std::uint32_t>& posting = postings_[s];
    if (posting.empty()) continue;
    for (std::size_t a = 0; a < n_aps(); ++a) {
      if (distance(aps_[s], aps_[a]) > 2.0 * cfg_.coverage_radius_m) continue;
      pair_off_[s * n_aps() + a] = pair_plane_.size() + 1;
      for (const std::uint32_t cell : posting)
        pair_plane_.push_back(rssi_by_ap_[a * n_cells() + cell]);
    }
  }
}

void FingerprintDb::repack_cell(std::size_t cell) {
  const float* row = &features_[cell * n_aps() * kFeat];
  float* packed = &packed_feat_[packed_off_[cell]];
  std::uint64_t bits = masks_[cell];
  std::size_t rank = 0;
  while (bits != 0) {
    const std::size_t ap = static_cast<std::size_t>(std::countr_zero(bits));
    bits &= bits - 1;
    for (std::size_t f = 0; f < kFeat; ++f)
      packed[rank * kFeat + f] = row[ap * kFeat + f];
    ++rank;
  }
}

void FingerprintDb::rebuild_postings() {
  for (auto& p : postings_) p.clear();
  for (std::size_t cell = 0; cell < n_cells(); ++cell) {
    std::uint64_t bits = masks_[cell];
    while (bits != 0) {
      const int ap = std::countr_zero(bits);
      bits &= bits - 1;
      postings_[static_cast<std::size_t>(ap)].push_back(
          static_cast<std::uint32_t>(cell));
    }
  }
}

void FingerprintDb::refresh(std::size_t cell, const float* query_row,
                            const float* query_rssi, std::uint64_t query_mask,
                            double alpha) {
  std::uint64_t both = masks_[cell] & query_mask;
  float* row = &features_[cell * n_aps() * kFeat];
  float* rrow = &rssi_[cell * n_aps()];
  while (both != 0) {
    const std::size_t ap = static_cast<std::size_t>(std::countr_zero(both));
    both &= both - 1;
    for (std::size_t f = 0; f < kFeat; ++f) {
      const std::size_t i = ap * kFeat + f;
      row[i] = static_cast<float>((1.0 - alpha) * static_cast<double>(row[i]) +
                                  alpha * static_cast<double>(query_row[i]));
    }
    rrow[ap] = row[ap * kFeat];
    rssi_by_ap_[ap * n_cells() + cell] = rrow[ap];
    // Mirror into every posting-ordered pair plane that carries this
    // (cell, ap) entry: the cell appears in postings(s) for exactly the
    // APs s in its visibility mask.
    std::uint64_t owners = masks_[cell];
    while (owners != 0) {
      const std::size_t s = static_cast<std::size_t>(std::countr_zero(owners));
      owners &= owners - 1;
      const std::uint64_t off = pair_off_[s * n_aps() + ap];
      if (off == 0) continue;
      const std::vector<std::uint32_t>& posting = postings_[s];
      const auto it = std::lower_bound(posting.begin(), posting.end(),
                                       static_cast<std::uint32_t>(cell));
      pair_plane_[off - 1 + static_cast<std::size_t>(it - posting.begin())] =
          rrow[ap];
    }
    (void)query_rssi;
  }
  repack_cell(cell);
  ++writes_;
}

std::uint64_t FingerprintDb::digest() const {
  std::uint64_t h = campus::kFnvOffset;
  for (const float f : features_)
    h = campus::fnv1a_mix(h, static_cast<std::uint64_t>(std::bit_cast<std::uint32_t>(f)));
  for (const float f : rssi_)
    h = campus::fnv1a_mix(h, static_cast<std::uint64_t>(std::bit_cast<std::uint32_t>(f)));
  for (const std::uint64_t m : masks_) h = campus::fnv1a_mix(h, m);
  return h;
}

}  // namespace mobiwlan::loc
