// fingerprint_db.hpp — the survey-built CSI fingerprint database.
//
// Layout is SoA and query-shaped: one contiguous float feature row per
// cell ([ap][kFeat] within the row), a separate contiguous coarse RSSI
// plane ([cell][ap]) the first lookup stage streams, a 64-bit AP
// visibility mask per cell, and per-AP postings lists (ascending cell
// ids) so a query only scans the cells its strongest AP actually covers.
//
// Determinism contract: every (cell, AP) survey draws from
// Rng(seed).stream(kSurveySalt ^ ap) — a pure function of the database
// seed and the AP index — so survey_cell(cell) is a pure function of
// (config, AP positions, cell). The bench fans cells out over the
// Experiment sharder and the adopted rows are bitwise identical to a
// serial rebuild at any worker count; digest() pins that.
//
// Seeding per AP (not per cell) is deliberate: the channel realization —
// scatterer draw sequence and, crucially, the absolute-position shadowing
// field — then acts as a fixed *environment* per AP. Neighboring cells see
// smoothly varying fingerprints and a query taken later at the same
// position through the same stream reproduces them, exactly like a real
// building; per-cell seeds would make the map spatially white.
#pragma once

#include <cstdint>
#include <vector>

#include "chan/channel.hpp"
#include "chan/channel_batch.hpp"
#include "chan/geometry.hpp"
#include "loc/fingerprint.hpp"
#include "util/rng.hpp"

namespace mobiwlan::loc {

/// Substream salt for survey channels; queries that want to observe the
/// same environment derive their channels from the same streams.
inline constexpr std::uint64_t kSurveySalt = 0x10CA11FDB5ULL;

struct FingerprintDbConfig {
  std::size_t cols = 100;  ///< survey grid cells per row
  std::size_t rows = 100;
  double pitch_m = 4.0;    ///< cell pitch; centers at origin + (i + 0.5) * pitch
  Vec2 origin{0.0, 0.0};
  std::size_t snapshots = 2;        ///< survey samples averaged per (cell, AP)
  double snapshot_spacing_s = 0.5;
  double coverage_radius_m = 60.0;  ///< APs farther from a cell are not surveyed
  double rssi_floor_dbm = -82.0;    ///< visibility-mask threshold + absent-AP fill
  std::uint64_t seed = 0;           ///< survey master seed
};

class FingerprintDb {
 public:
  /// At most 64 APs (one visibility-mask bit each).
  FingerprintDb(const FingerprintDbConfig& cfg, std::vector<Vec2> ap_positions,
                const ChannelConfig& chan_cfg);

  std::size_t n_cells() const { return cfg_.cols * cfg_.rows; }
  std::size_t n_aps() const { return aps_.size(); }
  Vec2 cell_center(std::size_t cell) const;
  std::size_t nearest_cell(Vec2 p) const;

  /// Surveys one cell: features for every covered-and-audible AP into
  /// row[0 .. n_aps()*kFeat), the coarse RSSI plane into
  /// rssi_row[0 .. n_aps()), and the visibility mask. Invisible APs leave
  /// zeroed features and the rssi_floor_dbm fill, so asymmetric visibility
  /// costs coarse distance. Pure function of (config, AP positions, cell);
  /// see the header comment for why that makes the parallel build bitwise.
  void survey_cell(std::size_t cell, float* row, float* rssi_row,
                   std::uint64_t* mask, ChannelBatch::Scratch& scratch) const;

  /// Serial build: survey every cell, then index. The bench fans
  /// survey_cell over an Experiment instead and calls adopt_rows().
  void build();

  /// Installs externally surveyed rows (the parallel-build path) and
  /// rebuilds the postings index. The vectors must hold survey_cell output
  /// for every cell in index order.
  void adopt_rows(std::vector<float> rows, std::vector<float> rssi,
                  std::vector<std::uint64_t> masks);

  const float* cell_features(std::size_t cell) const {
    return &features_[cell * n_aps() * kFeat];
  }
  const float* cell_rssi(std::size_t cell) const {
    return &rssi_[cell * n_aps()];
  }
  /// Transposed coarse plane: one AP's RSSI over every cell, contiguous.
  /// The coarse lookup stage scans one 4*n_cells()-byte plane per query AP
  /// (cache-resident) instead of gathering [cell][ap] rows — same values as
  /// cell_rssi(), kept in sync by adopt_rows()/build()/refresh().
  const float* rssi_plane(std::size_t ap) const {
    return &rssi_by_ap_[ap * n_cells()];
  }
  /// Posting-ordered coarse plane for an AP pair: entry i is AP `a`'s RSSI
  /// at cell postings(s)[i]. Precomputed for every pair of APs close enough
  /// to share audible cells (within 2x the coverage radius), so the coarse
  /// stage streams contiguous floats with no per-entry cell indirection —
  /// the loop autovectorizes. nullptr when the pair is out of range (the
  /// caller falls back to gathering from rssi_plane()). Same values either
  /// way; kept in sync by adopt_rows()/build()/refresh().
  const float* pair_plane(std::size_t s, std::size_t a) const {
    const std::uint64_t off = pair_off_[s * n_aps() + a];
    return off == 0 ? nullptr : &pair_plane_[off - 1];
  }
  /// Packed fine-stage row: the cell's audible APs' features back to back,
  /// mask-bit order ([rank][kFeat], rank = popcount of lower mask bits).
  /// Identical values to cell_features() but ~mean_visible*kFeat floats per
  /// cell instead of n_aps()*kFeat, so the whole table stays cache-resident
  /// where the full [cell][ap][kFeat] array would thrash — the fine stage
  /// walks two cache lines per candidate instead of gathering across a 2 KiB
  /// row. Kept in sync by adopt_rows()/build()/refresh().
  const float* packed_features(std::size_t cell) const {
    return &packed_feat_[packed_off_[cell]];
  }
  std::uint64_t cell_mask(std::size_t cell) const { return masks_[cell]; }
  /// Cells (ascending) whose mask includes `ap`.
  const std::vector<std::uint32_t>& postings(std::size_t ap) const {
    return postings_[ap];
  }

  /// Blends a query fingerprint into a stored cell (EWMA with weight alpha
  /// toward the query) for every AP visible on both sides, and counts one
  /// write. Masks and postings are left untouched: a refresh updates what a
  /// cell looks like, not which APs cover it.
  void refresh(std::size_t cell, const float* query_row,
               const float* query_rssi, std::uint64_t query_mask, double alpha);

  std::uint64_t writes() const { return writes_; }

  /// FNV-1a over every feature bit, RSSI plane entry and mask — one word
  /// differing anywhere in the database changes it.
  std::uint64_t digest() const;

  const FingerprintDbConfig& config() const { return cfg_; }
  Vec2 ap_position(std::size_t ap) const { return aps_[ap]; }
  const ChannelConfig& channel_config() const { return chan_cfg_; }

 private:
  void rebuild_postings();
  void rebuild_planes();
  void repack_cell(std::size_t cell);

  FingerprintDbConfig cfg_;
  std::vector<Vec2> aps_;
  ChannelConfig chan_cfg_;
  std::vector<float> features_;  ///< [cell][ap][kFeat]
  std::vector<float> rssi_;      ///< [cell][ap] coarse plane
  std::vector<float> rssi_by_ap_;  ///< [ap][cell] transposed coarse plane
  std::vector<float> packed_feat_;       ///< audible-AP features, packed
  std::vector<std::uint64_t> packed_off_;  ///< per-cell offset into packed_feat_
  std::vector<float> pair_plane_;        ///< posting-ordered coarse planes
  std::vector<std::uint64_t> pair_off_;  ///< [s][a] offset+1, 0 = absent
  std::vector<std::uint64_t> masks_;
  std::vector<std::vector<std::uint32_t>> postings_;
  std::uint64_t writes_ = 0;
};

}  // namespace mobiwlan::loc
