#include "loc/locator.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>
#include <numeric>

#include "util/units.hpp"

namespace mobiwlan::loc {

Locator::Locator(const FingerprintDb* db, const LocatorConfig& cfg)
    : db_(db), cfg_(cfg) {}

void Locator::begin_query(Scratch& s) const {
  const std::size_t n_aps = db_->n_aps();
  s.feat.assign(n_aps * kFeat, 0.0f);
  s.rssi.assign(n_aps, static_cast<float>(db_->config().rssi_floor_dbm));
  s.mask = 0;
  s.strongest_ap = 0;
  s.strongest_rssi = -std::numeric_limits<float>::infinity();
  s.cand.clear();
  s.cand.reserve(cfg_.coarse_keep);
  s.cand_dist.clear();
  s.cand_dist.reserve(cfg_.coarse_keep);
  s.ap_dist.clear();
  s.ap_dist.reserve(n_aps);
}

void Locator::observe_ap(Scratch& s, std::size_t ap, const CsiMatrix& csi,
                         double rssi_dbm) const {
  if (rssi_dbm < db_->config().rssi_floor_dbm) return;
  extract_features(csi, rssi_dbm, &s.feat[ap * kFeat]);
  const float r = s.feat[ap * kFeat];
  s.rssi[ap] = r;
  s.mask |= std::uint64_t{1} << ap;
  // Lowest index wins RSSI ties so the result is invariant under the
  // order APs were observed in (the proptest permutation property).
  if (r > s.strongest_rssi || (r == s.strongest_rssi && ap < s.strongest_ap)) {
    s.strongest_rssi = r;
    s.strongest_ap = ap;
  }
}

void Locator::seed_query_from_cell(Scratch& s, std::size_t cell) const {
  begin_query(s);
  const float* row = db_->cell_features(cell);
  const float* rrow = db_->cell_rssi(cell);
  std::uint64_t bits = db_->cell_mask(cell);
  s.mask = bits;
  while (bits != 0) {
    const std::size_t ap = static_cast<std::size_t>(std::countr_zero(bits));
    bits &= bits - 1;
    for (std::size_t f = 0; f < kFeat; ++f)
      s.feat[ap * kFeat + f] = row[ap * kFeat + f];
    s.rssi[ap] = rrow[ap];
    if (rrow[ap] > s.strongest_rssi) {
      s.strongest_rssi = rrow[ap];
      s.strongest_ap = ap;
    }
  }
}

double Locator::fingerprint_distance(Scratch& s, std::size_t cell,
                                     int trim_override) const {
  const std::uint64_t cmask = db_->cell_mask(cell);
  const std::uint64_t shared = s.mask & cmask;
  if (shared == 0) return std::numeric_limits<double>::infinity();
  const float* packed = db_->packed_features(cell);

  // Walk the cell's packed row (mask-bit order) and keep the APs the query
  // also saw — ascending-AP order, so ap_dist is identical to a gather over
  // the full [ap][kFeat] row.
  s.ap_dist.clear();
  std::uint64_t bits = cmask;
  std::size_t rank = 0;
  while (bits != 0) {
    const std::size_t ap = static_cast<std::size_t>(std::countr_zero(bits));
    bits &= bits - 1;
    const float* c = &packed[rank * kFeat];
    ++rank;
    if ((shared >> ap & 1) == 0) continue;
    const float* q = &s.feat[ap * kFeat];
    double d2 = 0.0;
    for (std::size_t f = 0; f < kFeat; ++f) {
      const double diff = static_cast<double>(q[f]) - static_cast<double>(c[f]);
      d2 += diff * diff;
    }
    s.ap_dist.push_back(d2);
  }

  const std::size_t trim = trim_override >= 0
                               ? static_cast<std::size_t>(trim_override)
                               : cfg_.trim;
  std::size_t kept = s.ap_dist.size();
  if (trim > 0 && kept > trim && kept - trim >= cfg_.min_kept_aps) {
    // Partition the `trim` largest per-AP distances to the tail and drop
    // them — O(n), no sort, no allocation (ap_dist capacity is retained).
    std::nth_element(s.ap_dist.begin(),
                     s.ap_dist.begin() + static_cast<std::ptrdiff_t>(kept - trim),
                     s.ap_dist.end());
    kept -= trim;
  }
  double sum = 0.0;
  for (std::size_t i = 0; i < kept; ++i) sum += s.ap_dist[i];
  return sum / static_cast<double>(kept);
}

LocEstimate Locator::locate(Scratch& s) const {
  LocEstimate out;
  if (s.mask == 0) return out;
  const std::vector<std::uint32_t>& posting = db_->postings(s.strongest_ap);
  if (posting.empty()) return out;

  // Stage 1: coarse RSSI-plane scan over the strongest AP's postings, one
  // sequential pass per query AP down that AP's transposed plane. The
  // per-entry accumulation order (ascending AP) matches what a per-cell
  // mask walk would do, so scores are bitwise independent of the layout.
  s.qaps.clear();
  for (std::uint64_t bits = s.mask; bits != 0; bits &= bits - 1)
    s.qaps.push_back(static_cast<std::uint32_t>(std::countr_zero(bits)));
  s.coarse_acc.assign(posting.size(), 0.0);
  for (const std::uint32_t ap : s.qaps) {
    const double q = static_cast<double>(s.rssi[ap]);
    if (const float* pp = db_->pair_plane(s.strongest_ap, ap)) {
      // Posting-ordered plane: contiguous, no indirection, vectorizes.
      for (std::size_t i = 0; i < posting.size(); ++i) {
        const double diff = q - static_cast<double>(pp[i]);
        s.coarse_acc[i] += diff * diff;
      }
    } else {
      const float* plane = db_->rssi_plane(ap);
      for (std::size_t i = 0; i < posting.size(); ++i) {
        const double diff = q - static_cast<double>(plane[posting[i]]);
        s.coarse_acc[i] += diff * diff;
      }
    }
  }

  // Top-coarse_keep selection on (score, cell) pairs through a bounded
  // max-heap: one compare against the heap root per entry, a heap update
  // only when an entry beats the current 16th-best. The kept set is the
  // `keep` lexicographically smallest pairs — score ties fall to the lowest
  // cell id — so the candidates are a pure function of the scores no matter
  // how they are selected (nth_element over all pairs picks the same set,
  // just several times slower at this keep/posting ratio).
  // The posting sweep is spatially ordered, so scores fall monotonically
  // toward the best-matching region and a front-to-back scan would beat
  // the heap root hundreds of times. Visiting in a golden-ratio stride
  // (co-prime with n, so every entry is seen once) decorrelates the score
  // sequence and cuts heap updates to the random-order expectation of
  // ~keep*ln(n/keep). The kept set — and therefore the result — does not
  // depend on visit order.
  const std::size_t n = posting.size();
  const std::size_t keep = std::min(cfg_.coarse_keep, n);
  std::size_t stride = 1;
  if (n > 2 * keep) {
    stride = (n * 61) / 100 | 1;
    while (std::gcd(stride, n) != 1) stride += 2;
  }
  s.sel.clear();
  std::size_t i = 0;
  for (std::size_t j = 0; j < n; ++j) {
    const std::pair<double, std::uint32_t> p{s.coarse_acc[i], posting[i]};
    i += stride;
    if (i >= n) i -= n;
    if (s.sel.size() < keep) {
      s.sel.push_back(p);
      if (s.sel.size() == keep) std::make_heap(s.sel.begin(), s.sel.end());
    } else if (p < s.sel.front()) {
      std::pop_heap(s.sel.begin(), s.sel.end());
      s.sel.back() = p;
      std::push_heap(s.sel.begin(), s.sel.end());
    }
  }
  std::sort(s.sel.begin(), s.sel.end());
  s.cand.clear();
  s.cand_dist.clear();
  for (std::size_t i = 0; i < keep; ++i) {
    s.cand.push_back(s.sel[i].second);
    s.cand_dist.push_back(s.sel[i].first);
  }

  // Stage 2: fine trimmed distance on the survivors, reusing cand_dist.
  for (std::size_t i = 0; i < s.cand.size(); ++i)
    s.cand_dist[i] = fingerprint_distance(s, s.cand[i]);
  // Full insertion sort of the <= coarse_keep survivors: stable, so equal
  // fine distances keep their (deterministic) coarse order.
  for (std::size_t i = 1; i < s.cand.size(); ++i) {
    const double d = s.cand_dist[i];
    const std::uint32_t c = s.cand[i];
    std::size_t j = i;
    for (; j > 0 && s.cand_dist[j - 1] > d; --j) {
      s.cand_dist[j] = s.cand_dist[j - 1];
      s.cand[j] = s.cand[j - 1];
    }
    s.cand_dist[j] = d;
    s.cand[j] = c;
  }

  const std::size_t kk = std::min(cfg_.k, s.cand.size());
  double wsum = 0.0;
  Vec2 pos{};
  for (std::size_t i = 0; i < kk; ++i) {
    if (!std::isfinite(s.cand_dist[i])) break;  // no-shared-AP tail
    const double w = 1.0 / (s.cand_dist[i] + 1e-6);
    pos = pos + db_->cell_center(s.cand[i]) * w;
    wsum += w;
  }
  if (wsum <= 0.0) return out;
  out.position = pos * (1.0 / wsum);
  out.cell = s.cand[0];
  out.distance = s.cand_dist[0];
  out.valid = true;
  return out;
}

LocEstimate Locator::locate_fused(Scratch& s, const AoaEstimate& aoa,
                                  std::size_t serving_ap,
                                  double tof_cycles) const {
  LocEstimate est = locate(s);
  if (!est.valid) return est;
  // The confidence floor is what rejects the degenerate all-zero-CSI
  // estimate (ratio 0, NaN angle); the isfinite check is belt-and-braces.
  if (!(aoa.peak_ratio >= cfg_.aoa_min_peak_ratio) ||
      !std::isfinite(aoa.angle_rad))
    return est;

  // Invert the ToF model: cycles = round((2 d / c * 1e9 + bias_ns) * 1e-9 * clock).
  const double rt_ns = tof_cycles / cfg_.tof_clock_hz * 1e9 - cfg_.tof_bias_ns;
  const double range = 0.5 * rt_ns * 1e-9 * kSpeedOfLight;
  if (!(range > 0.0) || range > cfg_.max_fused_range_m) return est;

  // The ULA folds arrival angles into [0, pi]: both mirror candidates are
  // geometrically consistent, so let the fingerprint estimate disambiguate.
  const Vec2 ap = db_->ap_position(serving_ap);
  const double c = std::cos(aoa.angle_rad);
  const double sn = std::sin(aoa.angle_rad);
  const Vec2 pa = ap + Vec2{c, sn} * range;
  const Vec2 pb = ap + Vec2{c, -sn} * range;
  const Vec2 p =
      distance(pa, est.position) <= distance(pb, est.position) ? pa : pb;
  const double w = cfg_.fusion_weight;
  est.position = est.position * (1.0 - w) + p * w;
  return est;
}

}  // namespace mobiwlan::loc
