// locator.hpp — outlier-resistant kNN matching over the fingerprint DB,
// fused with the PHY AoA and ToF estimates.
//
// A lookup runs two stages over caller-owned scratch with zero steady-state
// allocations:
//   1. Coarse: scan the postings list of the query's strongest AP and score
//      each candidate cell by squared RSSI-plane distance over the query's
//      visible APs — one pass per query AP down that AP's contiguous
//      transposed RSSI plane (a few hundred sequential floats from a
//      cache-resident 4*n_cells-byte array, not a gather over [cell][ap]
//      rows), keep the best `coarse_keep`.
//   2. Fine: CRISLoc-style trimmed per-AP fingerprint distance (drop the
//      `trim` worst per-AP distances, so one shadowed or refreshed-stale AP
//      cannot veto a match) over the survivors, then an inverse-distance
//      weighted centroid of the k nearest cells.
// locate_fused() then blends in a position derived from the serving AP's
// beamscan AoA (rejected below a peak-ratio confidence floor — which is why
// the estimator's degenerate all-zero case must report ratio 0, not 1) and
// the inverted ToF cycle count.
//
// Determinism: candidate cells are visited in ascending id (postings
// order), APs in ascending bit order regardless of observe_ap() call
// order, and every tie-break is first-seen/lowest-index, so a query's
// result is a pure function of the observation set.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "chan/geometry.hpp"
#include "loc/fingerprint_db.hpp"
#include "phy/aoa.hpp"

namespace mobiwlan::loc {

struct LocatorConfig {
  std::size_t k = 4;                ///< kNN neighborhood for the centroid
  std::size_t coarse_keep = 16;     ///< fine-stage candidates kept by stage 1
  std::size_t trim = 2;             ///< worst per-AP distances dropped (CRISLoc)
  std::size_t min_kept_aps = 3;     ///< trim only if at least this many remain
  double aoa_min_peak_ratio = 1.3;  ///< fusion rejects weaker beamscan peaks
  double fusion_weight = 0.35;      ///< weight of the AoA/ToF point in the blend
  double max_fused_range_m = 1e4;   ///< reject absurd inverted-ToF ranges
  double tof_clock_hz = 88e6;       ///< must match the channel config
  double tof_bias_ns = 15.0;        ///< must match the channel config
};

struct LocEstimate {
  Vec2 position{};
  std::uint32_t cell = 0;  ///< best-matching cell
  double distance = 0.0;   ///< its trimmed fingerprint distance
  bool valid = false;      ///< false when the query saw no audible AP
};

class Locator {
 public:
  /// Caller-owned per-query state. Buffers grow on first use and are
  /// reused; begin_query/observe_ap/locate allocate nothing in steady
  /// state (gated by the proptest alloc-hook suite and the bench).
  struct Scratch {
    std::vector<float> feat;  ///< query feature rows, [ap][kFeat]
    std::vector<float> rssi;  ///< query coarse RSSI plane, [ap]
    std::uint64_t mask = 0;
    std::size_t strongest_ap = 0;
    float strongest_rssi = 0.0f;
    std::vector<std::uint32_t> cand;  ///< stage-1 survivors (ascending dist)
    std::vector<double> cand_dist;
    std::vector<double> ap_dist;      ///< per-AP distances of one candidate
    std::vector<std::uint32_t> qaps;  ///< query mask unpacked, ascending
    std::vector<double> coarse_acc;   ///< per-posting-entry coarse scores
    /// (score, cell) pairs for the coarse top-k selection; lexicographic
    /// order makes the kept set and its order independent of the
    /// selection algorithm (ties fall to the lowest cell id).
    std::vector<std::pair<double, std::uint32_t>> sel;
  };

  Locator(const FingerprintDb* db, const LocatorConfig& cfg);

  const LocatorConfig& config() const { return cfg_; }

  void begin_query(Scratch& s) const;

  /// Folds one AP observation into the query. Observations below the DB's
  /// RSSI floor are discarded (the survey could not have heard them
  /// either), which keeps query and stored fingerprints comparable.
  void observe_ap(Scratch& s, std::size_t ap, const CsiMatrix& csi,
                  double rssi_dbm) const;

  /// Loads a cell's stored row verbatim as the query (tests, calibration).
  void seed_query_from_cell(Scratch& s, std::size_t cell) const;

  /// Trimmed mean per-AP squared feature distance between the query and a
  /// cell, over the APs visible on both sides; +inf when they share none.
  /// trim_override < 0 uses cfg.trim. Exposed for the property suite.
  double fingerprint_distance(Scratch& s, std::size_t cell,
                              int trim_override = -1) const;

  LocEstimate locate(Scratch& s) const;
  LocEstimate locate_fused(Scratch& s, const AoaEstimate& aoa,
                           std::size_t serving_ap, double tof_cycles) const;

 private:
  const FingerprintDb* db_;
  LocatorConfig cfg_;
};

}  // namespace mobiwlan::loc
