// mobility_gate.hpp — routes localization clients by the mobility
// classifier's decision.
//
// The mobility-aware twist over CRISLoc-style fingerprinting: a static
// client produces survey-grade fingerprints, so its observations are worth
// blending back into the database (crowdsourced upkeep against furniture
// moves and seasonal drift); a device-mobile client produces motion-blurred
// fingerprints at positions the estimator is itself uncertain about, and an
// environmentally-noisy one measures bystanders rather than the room — both
// only query. When the classifier withholds a decision (observable
// starvation under the fault layer), the gate keeps acting on the held mode
// for `decision_hold_s` — mirroring the classifier's own csi_stale_hold_s
// degradation convention — then decays to query-only, the safe side: a
// stale "static" must not keep writing after the evidence for it expires.
#pragma once

#include <cstdint>
#include <optional>

#include "core/mobility_mode.hpp"

namespace mobiwlan::loc {

enum class GateAction {
  kRefresh,    ///< static: locate, then blend the observation into the DB
  kQueryOnly,  ///< mobile / noisy / unknown: locate only, DB is read-only
};

struct MobilityGateConfig {
  /// How long a missing decision keeps acting on the held mode before the
  /// gate decays to query-only. Matches MobilityClassifier::Config::
  /// csi_stale_hold_s so both layers degrade on the same clock.
  double decision_hold_s = 2.0;
  /// Minimum spacing between refreshes per client: one survey-grade sample
  /// per second is plenty, and every write perturbs a cell other clients
  /// are matching against.
  double min_refresh_period_s = 1.0;
};

class MobilityGate {
 public:
  MobilityGate() = default;
  explicit MobilityGate(const MobilityGateConfig& cfg) : cfg_(cfg) {}

  /// Routes one observation epoch. `decision` is the classifier's output at
  /// time t (nullopt when it has nothing fresh enough to say).
  GateAction route(double t, std::optional<MobilityMode> decision) {
    if (decision.has_value()) {
      held_mode_ = *decision;
      have_mode_ = true;
      last_decision_t_ = t;
    } else if (have_mode_) {
      if (t - last_decision_t_ <= cfg_.decision_hold_s) {
        ++held_;  // acting on a stale-but-in-window mode
      } else {
        have_mode_ = false;
        ++decayed_;
      }
    }
    if (have_mode_ && held_mode_ == MobilityMode::kStatic &&
        t - last_refresh_t_ >= cfg_.min_refresh_period_s) {
      last_refresh_t_ = t;
      ++refreshes_;
      return GateAction::kRefresh;
    }
    ++queries_;
    return GateAction::kQueryOnly;
  }

  std::uint64_t refreshes() const { return refreshes_; }
  std::uint64_t queries() const { return queries_; }
  /// Epochs routed on a held (stale, in-window) decision.
  std::uint64_t held() const { return held_; }
  /// Hold-window expiries (transitions into the unknown/query-only state).
  std::uint64_t decayed() const { return decayed_; }
  const MobilityGateConfig& config() const { return cfg_; }

 private:
  MobilityGateConfig cfg_;
  MobilityMode held_mode_ = MobilityMode::kStatic;
  bool have_mode_ = false;
  double last_decision_t_ = 0.0;
  double last_refresh_t_ = -1e18;
  std::uint64_t refreshes_ = 0;
  std::uint64_t queries_ = 0;
  std::uint64_t held_ = 0;
  std::uint64_t decayed_ = 0;
};

}  // namespace mobiwlan::loc
