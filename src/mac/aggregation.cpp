#include "mac/aggregation.hpp"

#include "core/policy.hpp"

namespace mobiwlan {

double aggregation_limit_s(const AggregationPolicy& policy,
                           std::optional<MobilityMode> mode) {
  if (policy.adaptive && mode) return mobility_params(*mode).aggregation_limit_s;
  return policy.fixed_limit_s;
}

double AmpduPlan::mpdu_age_fraction(int i) const {
  if (n_mpdus <= 0) return 0.0;
  return (static_cast<double>(i) + 0.5) / static_cast<double>(n_mpdus);
}

AmpduPlan plan_ampdu(const McsEntry& mcs_entry, double limit_s,
                     int mpdu_payload_bytes, const AirtimeConfig& airtime) {
  AmpduPlan plan;
  plan.n_mpdus = mpdus_within_time(mcs_entry, limit_s, mpdu_payload_bytes, airtime);
  plan.frame_airtime_s =
      ampdu_airtime_s(mcs_entry, plan.n_mpdus, mpdu_payload_bytes, airtime);
  return plan;
}

}  // namespace mobiwlan
