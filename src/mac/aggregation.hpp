// aggregation.hpp — A-MPDU frame aggregation policy (§5).
//
// 802.11n amortizes PHY and contention overheads by packing MPDUs into one
// frame, but the receiver equalizes using the channel estimate from the
// frame preamble only: the longer the frame, the staler the estimate for its
// tail MPDUs. The optimal maximum aggregation *time* therefore shrinks as
// mobility intensity grows (Fig. 10a). The adaptive policy picks the Table-2
// limit for the classified mobility mode; the stock driver uses a fixed 4 ms.
#pragma once

#include <optional>

#include "core/mobility_mode.hpp"
#include "phy/airtime.hpp"
#include "phy/mcs.hpp"

namespace mobiwlan {

/// How the transmitter chooses its maximum aggregation time.
struct AggregationPolicy {
  bool adaptive = false;        ///< true: Table-2 limit per mobility mode
  double fixed_limit_s = 4e-3;  ///< stock statically-configured limit
};

/// The aggregation time limit this policy yields for a (possibly unknown)
/// mobility classification.
double aggregation_limit_s(const AggregationPolicy& policy,
                           std::optional<MobilityMode> mode);

/// A composed A-MPDU: how many MPDUs to send and when each sits on air
/// relative to the preamble-based channel estimate.
struct AmpduPlan {
  int n_mpdus = 1;
  double frame_airtime_s = 0.0;  ///< preamble + all MPDUs
  /// Midpoint transmission offset of MPDU i from the channel estimate,
  /// as a fraction of frame_airtime_s — the "age" driving equalizer
  /// mismatch for that subframe.
  double mpdu_age_fraction(int i) const;
};

/// Plan an A-MPDU at the given MCS under an aggregation-time limit.
AmpduPlan plan_ampdu(const McsEntry& mcs_entry, double limit_s,
                     int mpdu_payload_bytes, const AirtimeConfig& airtime = {});

}  // namespace mobiwlan
