#include "mac/atheros_ra.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/policy.hpp"
#include "phy/mcs.hpp"
#include "util/prefetch.hpp"

namespace mobiwlan {

AtherosRa::AtherosRa(Config config)
    : AtherosRa(config, [](const TxContext&) { return AtherosRaParams{}; },
                "atheros-ra") {}

AtherosRa::AtherosRa(Config config, ParamProvider params, std::string name)
    : config_(config),
      params_(std::move(params)),
      name_(std::move(name)),
      ladder_(atheros_rate_ladder(config.max_streams)),
      per_(ladder_.size(), 0.0),
      current_(ladder_.size() - 1) {}  // §4.1: starts with the highest bit-rate

void AtherosRa::reset() {
  std::fill(per_.begin(), per_.end(), 0.0);
  current_ = ladder_.size() - 1;  // §4.1: starts with the highest bit-rate
  last_rate_change_t_ = 0.0;
  last_probe_t_ = 0.0;
  consecutive_full_losses_ = 0;
  epoch_start_t_ = 0.0;
  epoch_mpdus_ = 0;
  epoch_failed_ = 0;
  probing_ = false;
  probe_return_ = 0;
}

void AtherosRa::prefetch() const {
  prefetch_lines(ladder_.data(), ladder_.size() * sizeof(int));
  prefetch_lines(per_.data(), per_.size() * sizeof(double),
                 /*for_write=*/true);
}

std::size_t AtherosRa::ladder_pos(int mcs_index) const {
  const auto it = std::find(ladder_.begin(), ladder_.end(), mcs_index);
  if (it == ladder_.end()) throw std::invalid_argument("MCS not on the rate ladder");
  return static_cast<std::size_t>(it - ladder_.begin());
}

int AtherosRa::select_mcs(const TxContext& ctx) {
  const AtherosRaParams params = params_(ctx);
  if (!probing_ && current_ + 1 < ladder_.size() &&
      ctx.t - last_probe_t_ >= params.probe_interval_s &&
      ctx.t - last_rate_change_t_ >= params.probe_interval_s &&
      per_[current_] < config_.per_probe_ok) {
    probing_ = true;
    probe_return_ = current_;
    ++current_;
    last_probe_t_ = ctx.t;
  }
  return ladder_[current_];
}

void AtherosRa::on_result(const FrameResult& result, const TxContext& ctx) {
  const AtherosRaParams params = params_(ctx);
  const std::size_t pos = ladder_pos(result.mcs);

  const double inst_per =
      result.n_mpdus > 0
          ? static_cast<double>(result.n_failed) / result.n_mpdus
          : 1.0;

  // --- probe resolution is immediate (a probe is a single question) -------
  if (probing_ && pos == current_) {
    probing_ = false;
    per_[pos] = params.alpha * inst_per + (1.0 - params.alpha) * per_[pos];
    enforce_monotonicity(pos);
    if (!result.block_ack_received || inst_per > config_.per_step_down) {
      current_ = probe_return_;  // failed probe: return whence we came
    } else {
      consecutive_full_losses_ = 0;  // successful probe: stay up
    }
    last_rate_change_t_ = result.t;
    return;
  }

  // --- total loss handling is immediate (§4.1: no Block ACK -> lower rate) -
  if (!result.block_ack_received) {
    // §4.2 optimization 1: retry at the current rate `rate_retries` times
    // before concluding the channel deteriorated (stock: 0 retries).
    ++consecutive_full_losses_;
    if (consecutive_full_losses_ > params.rate_retries) {
      step_down();
      consecutive_full_losses_ = 0;
      last_rate_change_t_ = result.t;
      last_probe_t_ = result.t;
      // The rate that just failed completely is in a bad state.
      per_[pos] = std::max(per_[pos], 0.35);
      enforce_monotonicity(pos);
    }
    return;
  }
  consecutive_full_losses_ = 0;

  // --- everything else runs on the driver's statistics epoch ---------------
  // ath9k-style rate control recomputes its filtered PER on a fixed interval
  // (~100 ms), not per frame: the smoothing factor acts on epoch statistics.
  epoch_mpdus_ += result.n_mpdus;
  epoch_failed_ += result.n_failed;
  if (result.t - epoch_start_t_ < config_.decision_interval_s) return;

  const double epoch_per = epoch_mpdus_ > 0
                               ? static_cast<double>(epoch_failed_) / epoch_mpdus_
                               : 0.0;
  epoch_start_t_ = result.t;
  epoch_mpdus_ = 0;
  epoch_failed_ = 0;

  per_[current_] =
      params.alpha * epoch_per + (1.0 - params.alpha) * per_[current_];
  enforce_monotonicity(current_);

  if (per_[current_] > config_.per_step_down) {
    step_down();
    last_rate_change_t_ = result.t;
    last_probe_t_ = result.t;
  }
  (void)ctx;
}

void AtherosRa::step_down() {
  if (current_ > 0) --current_;
}

void AtherosRa::enforce_monotonicity(std::size_t updated_pos) {
  // PER is assumed monotone non-decreasing in rate along the ladder (§4.1).
  for (std::size_t i = updated_pos + 1; i < per_.size(); ++i)
    per_[i] = std::max(per_[i], per_[updated_pos]);
  for (std::size_t i = updated_pos; i-- > 0;)
    per_[i] = std::min(per_[i], per_[updated_pos]);
}

double AtherosRa::per_estimate(int mcs_index) const { return per_[ladder_pos(mcs_index)]; }

int AtherosRa::current_mcs() const { return ladder_[current_]; }

AtherosRa make_mobility_aware_atheros_ra(AtherosRa::Config config) {
  auto provider = [](const TxContext& ctx) {
    AtherosRaParams p;  // stock defaults when the classifier has no answer yet
    if (ctx.mobility) {
      const ProtocolParams table = mobility_params(*ctx.mobility);
      p.alpha = table.per_smoothing_alpha;
      p.rate_retries = table.rate_retries;
      p.probe_interval_s = table.probe_interval_s;
    }
    return p;
  };
  return AtherosRa(config, provider, "motion-aware-atheros-ra");
}

}  // namespace mobiwlan
