// atheros_ra.hpp — the stock Atheros MIMO rate adaptation and its
// mobility-aware variant (§4.1-4.2).
//
// Frame-based, transmitter-side, no client feedback:
//   * maintains a low-pass-filtered PER per rate (EWMA, default alpha = 1/8);
//   * enforces PER monotonicity across the rate ladder (higher rate -> higher
//     PER) and skips the ladder entries that would violate it;
//   * drops to the next lower rate when a frame gets no Block ACK;
//   * steps down when the filtered PER at the current rate is too high;
//   * probes the next higher rate after `probe_interval` of success.
//
// The mobility-aware variant is the *same engine* with per-frame parameters
// (alpha, retries before stepping down, probe interval) drawn from Table 2
// according to the classifier's output — the paper's three optimizations:
//  (1) retry at the current rate on full loss unless moving away,
//  (2) PER history length commensurate with mobility,
//  (3) probe aggressively toward the AP, conservatively away.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "mac/rate_adaptation.hpp"

namespace mobiwlan {

/// The tunables §4.2 adapts per mobility mode.
struct AtherosRaParams {
  double alpha = 1.0 / 8.0;       ///< PER EWMA smoothing factor
  int rate_retries = 0;           ///< full-loss retries before stepping down
  double probe_interval_s = 0.05; ///< success time before probing upward
};

class AtherosRa final : public RateAdapter {
 public:
  /// Per-frame parameter source; called with the TxContext so the
  /// mobility-aware variant can key off the classifier output.
  using ParamProvider = std::function<AtherosRaParams(const TxContext&)>;

  struct Config {
    int max_streams = 2;
    double per_step_down = 0.40;  ///< filtered PER above this steps down
    double per_probe_ok = 0.10;   ///< probing allowed only below this PER
    /// Statistics epoch: the driver recomputes its filtered PER and makes
    /// step-down decisions on this cadence (ath9k uses ~100 ms), so the
    /// smoothing factor alpha acts on epoch statistics, not per frame.
    double decision_interval_s = 0.10;
  };

  /// Stock behaviour: fixed default parameters.
  AtherosRa() : AtherosRa(Config{}) {}
  explicit AtherosRa(Config config);

  /// Custom parameter policy (used by make_mobility_aware_atheros_ra).
  AtherosRa(Config config, ParamProvider params, std::string name);

  int select_mcs(const TxContext& ctx) override;
  void on_result(const FrameResult& result, const TxContext& ctx) override;

  /// Restores the just-constructed adaptation state (filtered PERs, ladder
  /// position, probe/epoch bookkeeping) without touching config_/params_/
  /// ladder_ — the session-pool recycle path. A reset adapter behaves
  /// bitwise like a freshly constructed one and performs no allocation.
  void reset();

  /// Cache-hint: streams the ladder and filtered-PER tables in ahead of the
  /// next select_mcs/on_result pair. No observable effect.
  void prefetch() const;

  bool probing() const override { return probing_; }
  std::string_view name() const override { return name_; }

  /// Filtered PER estimate for a ladder rate (exposed for tests).
  double per_estimate(int mcs_index) const;
  int current_mcs() const;

 private:
  std::size_t ladder_pos(int mcs_index) const;
  void step_down();
  void enforce_monotonicity(std::size_t updated_pos);

  Config config_;
  ParamProvider params_;
  std::string name_;
  std::vector<int> ladder_;
  std::vector<double> per_;       ///< filtered PER per ladder position
  std::size_t current_ = 0;       ///< ladder position in use
  double last_rate_change_t_ = 0.0;
  double last_probe_t_ = 0.0;
  int consecutive_full_losses_ = 0;
  double epoch_start_t_ = 0.0;
  int epoch_mpdus_ = 0;
  int epoch_failed_ = 0;
  bool probing_ = false;
  std::size_t probe_return_ = 0;  ///< position to fall back to if probe fails
};

/// §4.2: the mobility-aware Atheros RA — Table-2 parameters keyed by the
/// classifier output carried in TxContext::mobility (falls back to stock
/// defaults when no classification is available).
AtherosRa make_mobility_aware_atheros_ra(AtherosRa::Config config = AtherosRa::Config{});

}  // namespace mobiwlan
