#include "mac/blockack.hpp"

#include <algorithm>
#include <stdexcept>

namespace mobiwlan {

BlockAckWindow::BlockAckWindow(Config config) : config_(config) {
  if (config_.window_size < 1) config_.window_size = 1;
  if (config_.retry_limit < 1) config_.retry_limit = 1;
}

void BlockAckWindow::enqueue(double t) {
  TrackedMpdu m;
  m.seq = next_seq_++;
  m.enqueue_t = t;
  queue_.push_back(m);
}

std::uint32_t BlockAckWindow::window_start() const {
  std::uint32_t start = next_seq_;
  for (const auto& m : retransmit_) start = std::min(start, m.seq);
  for (const auto& m : in_flight_) start = std::min(start, m.seq);
  if (!queue_.empty()) start = std::min(start, queue_.front().seq);
  return start;
}

bool BlockAckWindow::window_stalled() const {
  // The window is stalled when the oldest unacked sequence pins it and no
  // new sequence fits: everything sendable is already awaiting (re)tx.
  return retransmit_.size() >= static_cast<std::size_t>(config_.window_size);
}

std::vector<TrackedMpdu> BlockAckWindow::next_frame(double t, int max_mpdus) {
  if (!in_flight_.empty())
    throw std::logic_error("next_frame called with a frame still unacked");

  std::vector<TrackedMpdu> frame;
  const std::uint32_t start = window_start();

  auto fits_window = [&](const TrackedMpdu& m) {
    return m.seq < start + static_cast<std::uint32_t>(config_.window_size);
  };

  // Retransmissions first: they pin the window start, so draining them is
  // both the standard behaviour and the only way to advance the window.
  while (!retransmit_.empty() && static_cast<int>(frame.size()) < max_mpdus) {
    TrackedMpdu m = retransmit_.front();
    retransmit_.pop_front();
    ++m.retries;
    frame.push_back(m);
  }
  while (!queue_.empty() && static_cast<int>(frame.size()) < max_mpdus &&
         fits_window(queue_.front())) {
    TrackedMpdu m = queue_.front();
    queue_.pop_front();
    m.first_tx_t = t;
    m.retries = 1;
    frame.push_back(m);
  }
  in_flight_ = frame;
  return frame;
}

BlockAckWindow::FrameOutcome BlockAckWindow::on_block_ack(
    const std::vector<TrackedMpdu>& frame, const std::vector<bool>& delivered) {
  if (frame.size() != delivered.size())
    throw std::invalid_argument("frame/delivered size mismatch");

  FrameOutcome outcome;
  for (std::size_t i = 0; i < frame.size(); ++i) {
    const TrackedMpdu& m = frame[i];
    if (delivered[i]) {
      outcome.delivered.push_back(m);
    } else if (m.retries >= config_.retry_limit) {
      outcome.dropped.push_back(m);
    } else {
      retransmit_.push_back(m);
    }
  }
  // Keep retransmissions in sequence order so the window start is honest.
  std::sort(retransmit_.begin(), retransmit_.end(),
            [](const TrackedMpdu& a, const TrackedMpdu& b) { return a.seq < b.seq; });
  in_flight_.clear();
  return outcome;
}

}  // namespace mobiwlan
