// blockack.hpp — 802.11n Block ACK window and retransmission bookkeeping.
//
// A-MPDU aggregation rides on the Block ACK agreement: the transmitter may
// have at most `window` MPDUs outstanding (sequence-number window), the
// receiver acknowledges them with a bitmap, and unacknowledged MPDUs are
// retransmitted in later frames until a retry limit evicts them. The
// throughput benches abstract this away (a failed MPDU simply isn't
// goodput); the latency simulation (mac/latency_sim.*) needs the real
// machinery, because head-of-line blocking inside the window is where
// aggregation hurts delay under mobility.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

namespace mobiwlan {

/// One MPDU tracked by the transmitter.
struct TrackedMpdu {
  std::uint32_t seq = 0;     ///< sequence number (monotonic, not wrapped)
  double enqueue_t = 0.0;    ///< when the payload entered the MAC queue
  double first_tx_t = -1.0;  ///< first time on air (-1 = never sent)
  int retries = 0;           ///< transmissions so far
};

/// Transmitter-side Block ACK state machine.
class BlockAckWindow {
 public:
  struct Config {
    int window_size = 64;  ///< max outstanding MPDUs (Block ACK bitmap width)
    int retry_limit = 7;   ///< transmissions before the MPDU is dropped
  };

  BlockAckWindow() : BlockAckWindow(Config{}) {}
  explicit BlockAckWindow(Config config);

  /// Queue a new payload MPDU (arrived from the upper layer at time t).
  void enqueue(double t);
  std::size_t queued() const { return queue_.size(); }
  std::size_t in_flight() const { return in_flight_.size(); }
  /// MPDUs that failed and await retransmission (neither queued nor in
  /// flight) — needed for end-of-run conservation accounting.
  std::size_t pending_retransmit() const { return retransmit_.size(); }

  /// MPDUs eligible for the next A-MPDU: pending retransmissions first, then
  /// fresh MPDUs, limited by both `max_mpdus` and the free window space.
  /// Marks them in flight (stamps first_tx_t, bumps retries).
  std::vector<TrackedMpdu> next_frame(double t, int max_mpdus);

  /// Outcome of one transmitted frame: `delivered[i]` says whether the i-th
  /// MPDU of the frame (as returned by next_frame) was acknowledged.
  /// Returns the MPDUs completed by this Block ACK: delivered ones carry
  /// their timing for latency accounting; MPDUs that exhausted the retry
  /// limit are dropped (reported with first_tx_t >= 0 and
  /// retries >= retry_limit so the caller can count losses).
  struct FrameOutcome {
    std::vector<TrackedMpdu> delivered;
    std::vector<TrackedMpdu> dropped;
  };
  FrameOutcome on_block_ack(const std::vector<TrackedMpdu>& frame,
                            const std::vector<bool>& delivered);

  /// Lowest unacknowledged sequence number (window start).
  std::uint32_t window_start() const;
  /// True if the window blocks new transmissions entirely.
  bool window_stalled() const;

  const Config& config() const { return config_; }

 private:
  Config config_;
  std::uint32_t next_seq_ = 0;
  std::deque<TrackedMpdu> queue_;       // not yet transmitted
  std::deque<TrackedMpdu> retransmit_;  // failed, awaiting retransmission
  std::vector<TrackedMpdu> in_flight_;  // sent in the frame being acked
};

}  // namespace mobiwlan
