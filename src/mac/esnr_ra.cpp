#include "mac/esnr_ra.hpp"

namespace mobiwlan {

int EsnrRa::select_mcs(const TxContext& ctx) {
  if (ctx.feedback_esnr_db) {
    last_mcs_ = best_mcs(*ctx.feedback_esnr_db - config_.margin_db,
                         ctx.mpdu_payload_bytes, config_.max_streams,
                         config_.error_model);
  }
  return last_mcs_;
}

void EsnrRa::on_result(const FrameResult& result, const TxContext& /*ctx*/) {
  // On a total loss there is no CSI feedback for this frame; fall back one
  // MCS so the next frame (which refreshes the ESNR) is more likely heard.
  if (!result.block_ack_received && last_mcs_ > 0) --last_mcs_;
}

}  // namespace mobiwlan
