// esnr_ra.hpp — ESNR baseline (Halperin et al., SIGCOMM'10).
//
// The client computes an effective SNR from the CSI of each received packet
// and reports it; the effective SNR indexes directly into the rate table, so
// a single observation pins the optimal bit-rate (which is why the paper
// treats ESNR as the performance ceiling among client-feedback schemes).
// The scheme needs per-client calibration on real hardware; our reproduction
// models that as a fixed backoff margin.
#pragma once

#include "mac/rate_adaptation.hpp"
#include "phy/error_model.hpp"

namespace mobiwlan {

class EsnrRa final : public RateAdapter {
 public:
  struct Config {
    int max_streams = 2;
    double margin_db = 1.0;  ///< calibration backoff below the reported ESNR
    ErrorModelConfig error_model;
  };

  EsnrRa() : EsnrRa(Config{}) {}
  explicit EsnrRa(Config config) : config_(config) {}

  int select_mcs(const TxContext& ctx) override;
  void on_result(const FrameResult& result, const TxContext& ctx) override;
  std::string_view name() const override { return "esnr"; }

 private:
  Config config_;
  int last_mcs_ = 0;
};

}  // namespace mobiwlan
