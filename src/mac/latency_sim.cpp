#include "mac/latency_sim.hpp"

#include "phy/mcs.hpp"

namespace mobiwlan {

namespace {

/// Emulator-side observables (ground-truth CSI, SNR) must always be there:
/// they model the medium itself, not a lossy firmware export. A trace that
/// cannot serve one cannot drive this loop.
double ground(std::optional<double> v, const char* what) {
  if (!v)
    throw trace::TraceError(trace::TraceError::Code::kMissingStream,
                            std::string("latency sim: ground-truth observable "
                                        "unavailable from source: ") +
                                what);
  return *v;
}

void ground_csi(bool ok, const char* what) {
  if (!ok)
    throw trace::TraceError(trace::TraceError::Code::kMissingStream,
                            std::string("latency sim: ground-truth CSI "
                                        "unavailable from source: ") +
                                what);
}

}  // namespace

LatencySimResult simulate_latency(Scenario& scenario, RateAdapter& ra,
                                  const LatencySimConfig& config, Rng& rng) {
  trace::LiveChannelSource live(*scenario.channel);
  trace::FaultedSource src(live, config.fault);
  return simulate_latency(src, ra, config, rng);
}

LatencySimResult simulate_latency(trace::ObservableSource& src, RateAdapter& ra,
                                  const LatencySimConfig& config, Rng& rng) {
  using trace::StreamKind;
  src.require({StreamKind::kTrueCsi, StreamKind::kSnr}, "latency sim");
  if (config.run_classifier)
    src.require({StreamKind::kCsi, StreamKind::kTof},
                "latency sim classifier");

  MobilityClassifier classifier(config.classifier);
  BlockAckWindow window(config.blockack);

  LatencySimResult result;
  double t = 0.0;
  double next_arrival_t = 0.0;
  const double inter_arrival = 1.0 / config.offered_pps;
  double next_csi_t = 0.0;
  double next_tof_t = 0.0;
  long delivered_bytes = 0;

  CsiMatrix meas_csi, h_start, h_end;

  while (t < config.duration_s) {
    // CBR arrivals up to now. The flow stops at duration_s: arrivals at or
    // past the horizon are never offered.
    while (next_arrival_t <= t && next_arrival_t < config.duration_s) {
      window.enqueue(next_arrival_t);
      ++result.offered;
      next_arrival_t += inter_arrival;
    }

    if (config.run_classifier) {
      while (next_csi_t <= t) {
        if (src.csi(0, next_csi_t, meas_csi))
          classifier.on_csi(next_csi_t, meas_csi);
        next_csi_t += config.classifier.csi_period_s;
      }
      while (next_tof_t <= t) {
        if (auto tof = src.tof_cycles(0, next_tof_t))
          classifier.on_tof(next_tof_t, *tof);
        next_tof_t += config.classifier.tof_period_s;
      }
    }

    TxContext ctx;
    ctx.t = t;
    ctx.mpdu_payload_bytes = config.mpdu_payload_bytes;
    // Hold-then-decay: no mobility hint once the CSI stream goes stale.
    if (config.run_classifier) ctx.mobility = classifier.decision(t);

    if (window.queued() == 0 && window.in_flight() == 0 &&
        !window.window_stalled()) {
      if (next_arrival_t >= config.duration_s) break;  // flow is over
      // Idle: jump to the next packet arrival.
      t = std::max(t, next_arrival_t);
      continue;
    }

    const int mcs_index = ra.select_mcs(ctx);
    const McsEntry& entry = mcs(mcs_index);
    const double limit = aggregation_limit_s(config.aggregation, ctx.mobility);
    const int max_mpdus =
        mpdus_within_time(entry, limit, config.mpdu_payload_bytes, config.airtime);

    const auto frame = window.next_frame(t, max_mpdus);
    if (frame.empty()) {
      // Window stalled with nothing retransmittable this instant; let time
      // advance by one slot of airtime.
      t += 1e-3;
      continue;
    }

    const int n = static_cast<int>(frame.size());
    const double frame_airtime =
        ampdu_airtime_s(entry, n, config.mpdu_payload_bytes, config.airtime);
    const double ack_t =
        t + exchange_airtime_s(entry, n, config.mpdu_payload_bytes,
                               config.airtime);
    if (ack_t > config.duration_s) {
      // The final exchange would complete past the horizon; it never counts
      // toward goodput (which divides by duration_s), so the frame stays
      // unresolved and its MPDUs land in `leftover`.
      break;
    }
    ground_csi(src.csi_true(0, t, h_start), "h_start");
    const double eff_snr =
        effective_snr_db(h_start, ground(src.snr_db(0, t), "snr"));
    ground_csi(src.csi_true(0, t + frame_airtime, h_end), "h_end");
    const double decorr_end = 1.0 - complex_correlation(h_start, h_end);

    std::vector<bool> delivered(frame.size());
    int n_failed = 0;
    AmpduPlan plan;
    plan.n_mpdus = n;
    plan.frame_airtime_s = frame_airtime;
    for (int i = 0; i < n; ++i) {
      const double decorr = decorr_end * plan.mpdu_age_fraction(i);
      const double p = per_with_aging(entry, eff_snr, config.mpdu_payload_bytes,
                                      decorr, config.error_model);
      delivered[static_cast<std::size_t>(i)] = !rng.chance(p);
      if (!delivered[static_cast<std::size_t>(i)]) ++n_failed;
    }

    const auto outcome = window.on_block_ack(frame, delivered);
    for (const TrackedMpdu& m : outcome.delivered) {
      result.latencies_s.add(ack_t - m.enqueue_t);
      ++result.delivered;
      delivered_bytes += config.mpdu_payload_bytes;
    }
    result.dropped += static_cast<int>(outcome.dropped.size());

    FrameResult fr;
    fr.t = t;
    fr.mcs = mcs_index;
    fr.n_mpdus = n;
    fr.n_failed = n_failed;
    fr.block_ack_received = n_failed < n;
    ra.on_result(fr, ctx);

    t = ack_t;
  }

  // Arrivals the service loop never reached (it can exit with t well short
  // of duration_s) are still offered load; drain them into the queue so the
  // conservation identity holds.
  while (next_arrival_t < config.duration_s) {
    window.enqueue(next_arrival_t);
    ++result.offered;
    next_arrival_t += inter_arrival;
  }
  result.leftover = static_cast<int>(window.queued() + window.in_flight() +
                                     window.pending_retransmit());

  result.goodput_mbps =
      8.0 * static_cast<double>(delivered_bytes) / config.duration_s / 1e6;
  return result;
}

}  // namespace mobiwlan
