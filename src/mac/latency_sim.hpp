// latency_sim.hpp — per-MPDU delivery latency under aggregation policies.
//
// The throughput simulator (mac/link_sim.*) treats a lost MPDU as lost
// goodput; real MACs retransmit it under the Block ACK agreement, so losses
// cost *delay*, not data. That matters for the paper's §9 real-time-traffic
// discussion and for aggregation policy: a long A-MPDU under mobility loses
// its tail, and those MPDUs head-of-line block the window until they get
// through. This simulator runs a constant-bit-rate flow through the full
// Block ACK machinery and reports the delivery-latency distribution.
#pragma once

#include "chan/scenario.hpp"
#include "core/mobility_classifier.hpp"
#include "fault/fault.hpp"
#include "mac/aggregation.hpp"
#include "mac/blockack.hpp"
#include "mac/rate_adaptation.hpp"
#include "phy/error_model.hpp"
#include "trace/source.hpp"
#include "util/stats.hpp"

namespace mobiwlan {

struct LatencySimConfig {
  double duration_s = 15.0;
  int mpdu_payload_bytes = 1500;
  /// Offered load (packets/s). Keep below the link's capacity so latency
  /// reflects MAC behaviour rather than queue buildup.
  double offered_pps = 2000.0;

  AggregationPolicy aggregation;
  BlockAckWindow::Config blockack;
  ErrorModelConfig error_model;
  AirtimeConfig airtime;
  MobilityClassifier::Config classifier;
  bool run_classifier = true;

  /// PHY-observable fault injection; an all-zero plan is bitwise-identical
  /// to the unfaulted path.
  FaultPlan fault;
};

struct LatencySimResult {
  SampleSet latencies_s;   ///< enqueue -> acknowledged, per delivered MPDU
  int delivered = 0;       ///< acked at or before duration_s
  int dropped = 0;         ///< retry limit exceeded
  /// CBR arrivals in [0, duration_s) — every one of them is accounted for:
  /// offered == delivered + dropped + leftover.
  int offered = 0;
  /// Still queued / in flight / awaiting retransmission when time ran out.
  int leftover = 0;
  double goodput_mbps = 0.0;
};

/// Run a CBR downlink through the Block ACK machinery. Applies config.fault
/// via a FaultedSource and delegates to the source-driven overload —
/// bitwise-identical to the historical inline loop.
LatencySimResult simulate_latency(Scenario& scenario, RateAdapter& ra,
                                  const LatencySimConfig& config, Rng& rng);

/// Source-driven overload (live channel, recording tee, or trace replay;
/// unit 0). config.fault is NOT applied here — compose a FaultedSource when
/// faulting a live or replayed source.
LatencySimResult simulate_latency(trace::ObservableSource& src, RateAdapter& ra,
                                  const LatencySimConfig& config, Rng& rng);

}  // namespace mobiwlan
