#include "mac/link_sim.hpp"

#include <algorithm>

#include "core/csi_similarity.hpp"
#include "core/policy.hpp"

namespace mobiwlan {

namespace {

/// Emulator-side observables (ground-truth CSI, SNR) must always be there:
/// they model the medium itself, not a lossy firmware export. A trace that
/// cannot serve one cannot drive this loop.
double ground(std::optional<double> v, const char* what) {
  if (!v)
    throw trace::TraceError(trace::TraceError::Code::kMissingStream,
                            std::string("link sim: ground-truth observable "
                                        "unavailable from source: ") +
                                what);
  return *v;
}

void ground_csi(bool ok, const char* what) {
  if (!ok)
    throw trace::TraceError(trace::TraceError::Code::kMissingStream,
                            std::string("link sim: ground-truth CSI "
                                        "unavailable from source: ") +
                                what);
}

}  // namespace

LinkSimResult simulate_link(Scenario& scenario, RateAdapter& ra,
                            const LinkSimConfig& config, Rng& rng) {
  trace::LiveChannelSource live(*scenario.channel);
  trace::FaultedSource src(live, config.fault);
  return simulate_link(src, ra, config, rng, scenario.truth);
}

LinkSimResult simulate_link(trace::ObservableSource& src, RateAdapter& ra,
                            const LinkSimConfig& config, Rng& rng,
                            std::optional<MobilityClass> sensor_truth) {
  using trace::StreamKind;
  src.require({StreamKind::kTrueCsi, StreamKind::kSnr}, "link sim");
  if (config.run_classifier)
    src.require({StreamKind::kCsi, StreamKind::kTof}, "link sim classifier");

  MobilityClassifier classifier(config.classifier);

  LinkSimResult result;
  double t = 0.0;
  double next_classifier_csi_t = 0.0;
  double next_tof_t = 0.0;
  long delivered_bytes = 0;

  CsiMatrix meas_csi, h_start, h_end;

  // Client PHY feedback (SoftRate / ESNR) carries the previous frame's view.
  std::optional<double> feedback_esnr;
  std::optional<double> feedback_ber;

  // Poisson interference bursts (see LinkSimConfig).
  double burst_start = config.interference_burst_rate_hz > 0.0
                           ? rng.exponential(1.0 / config.interference_burst_rate_hz)
                           : 2.0 * config.duration_s;
  double burst_end = burst_start;

  int last_mcs = -1;
  std::optional<MobilityMode> last_mode;
  int consecutive_full_losses = 0;

  // §9 uplink hint advertisement (see LinkSimConfig::mobility_hint_latency_s).
  std::optional<MobilityMode> advertised_mode;
  double next_hint_t = 0.0;

  while (t < config.duration_s) {
    // --- classifier inputs arrive on their own cadence -----------------
    // A reading the source cannot serve (fault-dropped export, trace gap)
    // simply never reaches the classifier; the classifier's own
    // hold-then-decay covers the resulting gaps.
    if (config.run_classifier) {
      while (next_classifier_csi_t <= t) {
        if (src.csi(0, next_classifier_csi_t, meas_csi))
          classifier.on_csi(next_classifier_csi_t, meas_csi);
        next_classifier_csi_t += config.classifier.csi_period_s;
      }
      while (next_tof_t <= t) {
        if (auto tof = src.tof_cycles(0, next_tof_t))
          classifier.on_tof(next_tof_t, *tof);
        next_tof_t += config.classifier.tof_period_s;
      }
    }

    // --- build the transmit context ------------------------------------
    TxContext ctx;
    ctx.t = t;
    ctx.mpdu_payload_bytes = config.mpdu_payload_bytes;
    if (config.run_classifier) {
      // decision(t) decays to nullopt when the CSI stream has gone silent;
      // the rate adapter then falls back to its mobility-oblivious path
      // instead of acting on a stale mode.
      const std::optional<MobilityMode> decided = classifier.decision(t);
      if (config.mobility_hint_latency_s <= 0.0) {
        ctx.mobility = decided;
      } else if (decided) {
        if (t >= next_hint_t) {
          advertised_mode = *decided;
          next_hint_t = t + config.mobility_hint_latency_s;
        }
        ctx.mobility = advertised_mode;
      }
    }
    if (config.provide_sensor_hint)
      ctx.sensor_in_motion = sensor_truth == MobilityClass::kMicro ||
                             sensor_truth == MobilityClass::kMacro;
    if (config.provide_phy_feedback) {
      ctx.feedback_esnr_db = feedback_esnr;
      ctx.feedback_ber = feedback_ber;
    }

    // --- compose and transmit one A-MPDU --------------------------------
    const int mcs_index = ra.select_mcs(ctx);
    const McsEntry& entry = mcs(mcs_index);
    const double limit = aggregation_limit_s(config.aggregation, ctx.mobility);
    AmpduPlan plan =
        plan_ampdu(entry, limit, config.mpdu_payload_bytes, config.airtime);
    if (ra.probing() && plan.n_mpdus > 4) {
      // Short probe frame: bound the cost of probing a rate that fails.
      plan = plan_ampdu(entry, limit / plan.n_mpdus * 4, config.mpdu_payload_bytes,
                        config.airtime);
    }

    ground_csi(src.csi_true(0, t, h_start), "h_start");
    const double snr0 = ground(src.snr_db(0, t), "snr");
    const double eff_snr = effective_snr_db(h_start, snr0);
    // Channel aging across the frame: correlation between the channel at the
    // preamble (where it is estimated) and at the end of the frame.
    ground_csi(src.csi_true(0, t + plan.frame_airtime_s, h_end), "h_end");
    const double decorr_end = 1.0 - complex_correlation(h_start, h_end);

    // Advance the interference process past stale bursts.
    while (burst_end < t && config.interference_burst_rate_hz > 0.0) {
      burst_start = burst_end + rng.exponential(1.0 / config.interference_burst_rate_hz);
      burst_end = burst_start + rng.uniform(config.interference_burst_min_s,
                                            config.interference_burst_max_s);
    }
    const bool jammed =
        t < burst_end && t + plan.frame_airtime_s > burst_start;

    int n_failed = 0;
    double frame_ber_sum = 0.0;
    if (jammed) {
      n_failed = plan.n_mpdus;
      frame_ber_sum = 0.5 * plan.n_mpdus;
    } else {
      for (int i = 0; i < plan.n_mpdus; ++i) {
        const double decorr = decorr_end * plan.mpdu_age_fraction(i);
        const double p = per_with_aging(entry, eff_snr, config.mpdu_payload_bytes,
                                        decorr, config.error_model);
        if (rng.chance(p)) ++n_failed;
        // SoftPHY sees the whole frame: accumulate the per-MPDU BER the
        // receiver would measure, aged tail included.
        frame_ber_sum += coded_ber(
            entry.modulation, entry.code_rate,
            per_stream_snr_db(entry, aged_snr_db(eff_snr, decorr),
                              config.error_model));
      }
    }

    FrameResult frame;
    frame.t = t;
    frame.mcs = mcs_index;
    frame.n_mpdus = plan.n_mpdus;
    frame.n_failed = n_failed;
    frame.block_ack_received = n_failed < plan.n_mpdus;
    ra.on_result(frame, ctx);

    delivered_bytes +=
        static_cast<long>(plan.n_mpdus - n_failed) * config.mpdu_payload_bytes;
    result.mpdus_sent += plan.n_mpdus;
    result.mpdus_lost += n_failed;
    ++result.frames;

    if (mcs_index != last_mcs) {
      result.mcs_series.emplace_back(t, mcs_index);
      last_mcs = mcs_index;
    }
    if (ctx.mobility && ctx.mobility != last_mode) {
      result.mode_series.emplace_back(t, *ctx.mobility);
      last_mode = ctx.mobility;
    }

    // --- client PHY feedback for the next frame -------------------------
    // The feedback rides the acked frame; its export can be lost too, in
    // which case the RA keeps the previous frame's view.
    if (config.provide_phy_feedback && frame.block_ack_received &&
        src.feedback_delivered(0, t)) {
      feedback_esnr = eff_snr;
      feedback_ber = frame_ber_sum / plan.n_mpdus;
    }

    t += exchange_airtime_s(entry, plan.n_mpdus, config.mpdu_payload_bytes,
                            config.airtime);
    if (!frame.block_ack_received) {
      ++result.full_loss_events;
      ++consecutive_full_losses;
      if (consecutive_full_losses >= 2) t += config.tcp_stall_s;
    } else {
      consecutive_full_losses = 0;
    }
  }

  result.goodput_mbps = 8.0 * static_cast<double>(delivered_bytes) /
                        config.duration_s / 1e6;
  result.mean_per = result.mpdus_sent > 0
                        ? static_cast<double>(result.mpdus_lost) / result.mpdus_sent
                        : 0.0;
  return result;
}

}  // namespace mobiwlan
