// link_sim.hpp — frame-level simulation of one AP->client link.
//
// Drives a RateAdapter and an aggregation policy over a WirelessChannel,
// frame by frame: the AP classifies the client's mobility from the CSI/ToF
// it sees on data-ACK exchanges, the rate adapter picks an MCS, an A-MPDU is
// composed under the aggregation limit, per-MPDU losses are drawn from the
// PHY error model (including intra-frame channel aging), and the Block ACK
// feeds the rate adapter. This is the engine behind the §4 (rate control)
// and §5 (aggregation) experiments, and the per-link inner loop of §7.
//
// Determinism: given equal seeds, the channel realization is identical
// across runs, so competing schemes face identical channel conditions — the
// same methodological device as the paper's trace-based emulation (§4.3).
#pragma once

#include <vector>

#include <optional>

#include "chan/scenario.hpp"
#include "core/mobility_classifier.hpp"
#include "fault/fault.hpp"
#include "mac/aggregation.hpp"
#include "mac/rate_adaptation.hpp"
#include "phy/error_model.hpp"
#include "trace/source.hpp"
#include "util/rng.hpp"

namespace mobiwlan {

struct LinkSimConfig {
  double duration_s = 20.0;
  int mpdu_payload_bytes = 1500;

  AggregationPolicy aggregation;
  ErrorModelConfig error_model;
  AirtimeConfig airtime;

  /// PHY-observable fault injection (CSI/ToF/feedback exports). An all-zero
  /// plan is bitwise-identical to the unfaulted path. The sensor hint is a
  /// client accelerometer, not a PHY export, so it is never faulted here.
  FaultPlan fault;

  /// Feed the AP-side classifier and expose its output in TxContext.
  bool run_classifier = true;
  MobilityClassifier::Config classifier;

  /// §9 uplink deployment: the classifier runs at the AP (only it sees ToF),
  /// but for uplink traffic the *client* runs the rate adapter, learning the
  /// AP's classification from periodic advertisements (e.g. a vendor IE in
  /// beacons). This delay staleness-filters the hints the RA sees:
  /// the mode exposed at time t is the classification as of the last
  /// advertisement. 0 = co-located (downlink, the default).
  double mobility_hint_latency_s = 0.0;

  /// Expose the ground-truth accelerometer hint (device in motion) —
  /// only the sensor-hint baseline consumes it.
  bool provide_sensor_hint = false;

  /// Expose client PHY feedback (previous-frame ESNR and BER) — only the
  /// SoftRate / ESNR baselines consume it.
  bool provide_phy_feedback = false;

  /// Transient co-channel interference: Poisson bursts during which every
  /// MPDU on air is lost at any rate. These are §4.2's "transient conditions
  /// such as fast fading or interference" — the events the mobility-aware RA
  /// rides out by retrying at the current rate instead of stepping down.
  double interference_burst_rate_hz = 0.4;
  double interference_burst_min_s = 5e-3;
  double interference_burst_max_s = 25e-3;

  /// TCP approximation (DESIGN.md §4): the MAC absorbs an isolated lost
  /// exchange via immediate retransmission, but when total losses persist
  /// (2+ consecutive exchanges with no Block ACK) the TCP sender loses its
  /// self-clocking; each further total loss stalls it this long. 0 = UDP.
  double tcp_stall_s = 0.0;
};

struct LinkSimResult {
  double goodput_mbps = 0.0;
  double mean_per = 0.0;        ///< delivered-weighted packet error rate
  int frames = 0;
  int mpdus_sent = 0;
  int mpdus_lost = 0;
  int full_loss_events = 0;  ///< exchanges that got no Block ACK at all
  /// (time, MCS) at every rate change, for time-series figures.
  std::vector<std::pair<double, int>> mcs_series;
  /// (time, classified mode) at every classification change.
  std::vector<std::pair<double, MobilityMode>> mode_series;
};

/// Run a saturated downlink over the scenario's channel. Applies
/// config.fault via a FaultedSource and delegates to the source-driven
/// overload below — bitwise-identical to the historical inline loop.
LinkSimResult simulate_link(Scenario& scenario, RateAdapter& ra,
                            const LinkSimConfig& config, Rng& rng);

/// Source-driven overload: the same loop over any ObservableSource (live
/// channel, recording tee, or trace replay; unit 0). config.fault is NOT
/// applied here — compose a FaultedSource yourself when faulting a live or
/// replayed source. `sensor_truth` replaces scenario.truth for the
/// accelerometer hint (only read when config.provide_sensor_hint).
LinkSimResult simulate_link(trace::ObservableSource& src, RateAdapter& ra,
                            const LinkSimConfig& config, Rng& rng,
                            std::optional<MobilityClass> sensor_truth = {});

}  // namespace mobiwlan
