// rate_adaptation.hpp — the rate-control framework (§4).
//
// A RateAdapter picks the MCS for each A-MPDU and learns from the Block ACK.
// Five algorithms implement this interface:
//   * AtherosRa           — the stock frame-based driver algorithm (§4.1)
//   * mobility-aware AtherosRa — §4.2 (same engine, Table-2 parameters)
//   * SensorHintRa        — RapidSample/SampleRate switching on a binary
//                           motion hint (Balakrishnan et al., NSDI'11)
//   * SoftRateRa          — per-frame BER feedback stepping (SIGCOMM'09)
//   * EsnrRa              — CSI-derived effective-SNR rate picking (SIGCOMM'10)
#pragma once

#include <optional>
#include <string_view>

#include "core/mobility_mode.hpp"

namespace mobiwlan {

/// What the transmitter-side algorithm can see when choosing a rate.
/// Which fields are populated depends on the scheme's deployment model:
/// client-feedback schemes (SoftRate, ESNR) get PHY hints measured at the
/// client on the *previous* frame; the sensor-hint scheme gets a binary
/// motion flag; the paper's scheme gets the AP-side classifier output.
struct TxContext {
  double t = 0.0;

  /// AP-side PHY-based mobility classification (the paper's system).
  std::optional<MobilityMode> mobility;

  /// Client-sensor binary hint: device in motion (RapidSample's input).
  std::optional<bool> sensor_in_motion;

  /// Effective SNR computed from the client's CSI of the previous frame
  /// and fed back (ESNR's input).
  std::optional<double> feedback_esnr_db;

  /// Interference-free BER observed by the client's SoftPHY on the previous
  /// frame at the rate it was sent (SoftRate's input).
  std::optional<double> feedback_ber;

  int mpdu_payload_bytes = 1500;
};

/// Outcome of one A-MPDU exchange as seen by the transmitter.
struct FrameResult {
  double t = 0.0;
  int mcs = 0;
  int n_mpdus = 0;
  int n_failed = 0;
  /// False when every MPDU was lost and no Block ACK came back — the event
  /// that makes the stock Atheros RA drop a rate immediately.
  bool block_ack_received = true;
};

class RateAdapter {
 public:
  virtual ~RateAdapter() = default;

  /// MCS index for the next frame.
  virtual int select_mcs(const TxContext& ctx) = 0;

  /// Learn from the result of a transmitted frame.
  virtual void on_result(const FrameResult& result, const TxContext& ctx) = 0;

  /// True when the rate just returned by select_mcs is an upward probe or a
  /// sampling frame. The transmitter bounds the cost of a failed probe by
  /// sending a short A-MPDU (as production drivers do).
  virtual bool probing() const { return false; }

  virtual std::string_view name() const = 0;
};

}  // namespace mobiwlan
