#include "mac/sensor_hint_ra.hpp"

#include <algorithm>
#include <stdexcept>

#include "phy/mcs.hpp"

namespace mobiwlan {

SensorHintRa::SensorHintRa(Config config)
    : config_(config),
      ladder_(atheros_rate_ladder(config.max_streams)),
      per_(ladder_.size(), 0.0),
      current_(ladder_.size() / 2) {}

std::size_t SensorHintRa::pos_of(int mcs_index) const {
  const auto it = std::find(ladder_.begin(), ladder_.end(), mcs_index);
  if (it == ladder_.end()) throw std::invalid_argument("MCS not on the rate ladder");
  return static_cast<std::size_t>(it - ladder_.begin());
}

double SensorHintRa::tput_estimate(std::size_t pos) const {
  return mcs(ladder_[pos]).rate_mbps * (1.0 - per_[pos]);
}

int SensorHintRa::select_mcs(const TxContext& ctx) {
  const bool mobile = ctx.sensor_in_motion.value_or(false);
  if (mobile) {
    // RapidSample: probe one rate up after a short loss-free window.
    if (current_ + 1 < ladder_.size() &&
        ctx.t - last_loss_t_ >= config_.rapid_probe_after_s &&
        ctx.t - last_increase_t_ >= config_.rapid_probe_after_s) {
      ++current_;
      last_increase_t_ = ctx.t;
    }
    sampling_ = false;
    return ladder_[current_];
  }

  // SampleRate: mostly send at the best-estimate rate; every Nth frame,
  // sample an alternative whose lossless throughput could beat the champion.
  std::size_t best = 0;
  for (std::size_t i = 1; i < ladder_.size(); ++i)
    if (tput_estimate(i) > tput_estimate(best)) best = i;
  current_ = best;

  ++frame_counter_;
  if (frame_counter_ % config_.sample_every_n_frames == 0) {
    for (std::size_t i = ladder_.size(); i-- > 0;) {
      if (i != best && mcs(ladder_[i]).rate_mbps > tput_estimate(best)) {
        sampling_ = true;
        sample_pos_ = i;
        return ladder_[i];
      }
    }
  }
  sampling_ = false;
  return ladder_[current_];
}

void SensorHintRa::on_result(const FrameResult& result, const TxContext& ctx) {
  const std::size_t pos = pos_of(result.mcs);
  const double inst_per =
      result.n_mpdus > 0 ? static_cast<double>(result.n_failed) / result.n_mpdus : 1.0;
  per_[pos] =
      config_.sample_alpha * inst_per + (1.0 - config_.sample_alpha) * per_[pos];

  const bool mobile = ctx.sensor_in_motion.value_or(false);
  if (mobile) {
    // RapidSample: any significant loss steps the rate down at once.
    if (!result.block_ack_received || inst_per >= config_.rapid_fail_per) {
      if (current_ > 0 && pos <= current_) current_ = pos > 0 ? pos - 1 : 0;
      last_loss_t_ = result.t;
    }
  }
  sampling_ = false;
}

}  // namespace mobiwlan
