// sensor_hint_ra.hpp — the NSDI'11 sensor-hint baseline (§4.3's RapidSample).
//
// Balakrishnan et al. use the phone's accelerometer as a binary motion hint
// and switch between two algorithms: SampleRate when static and RapidSample
// when mobile. The hint cannot distinguish micro from macro mobility nor
// heading — which is exactly the gap the paper's PHY-based classifier closes.
//
//   SampleRate  — pick the rate with the best average-throughput estimate;
//                 periodically sample another rate that could do better.
//   RapidSample — drop a rate immediately on loss; opportunistically probe a
//                 higher rate after a short loss-free interval, since stale
//                 history is useless while moving.
#pragma once

#include <vector>

#include "mac/rate_adaptation.hpp"

namespace mobiwlan {

class SensorHintRa final : public RateAdapter {
 public:
  struct Config {
    int max_streams = 2;
    // SampleRate half.
    double sample_alpha = 0.10;       ///< PER EWMA for throughput estimates
    int sample_every_n_frames = 10;   ///< sampling cadence when static
    // RapidSample half.
    /// Instantaneous PER counted as a loss. RapidSample was designed for
    /// legacy (non-aggregated) 802.11, where a single lost packet is a lost
    /// frame; over A-MPDUs that translates to a low PER threshold — one of
    /// the reasons it underperforms the mobility-aware RA on 802.11n (§8).
    double rapid_fail_per = 0.10;
    double rapid_probe_after_s = 0.05;   ///< loss-free time before probing up
  };

  SensorHintRa() : SensorHintRa(Config{}) {}
  explicit SensorHintRa(Config config);

  int select_mcs(const TxContext& ctx) override;
  void on_result(const FrameResult& result, const TxContext& ctx) override;
  bool probing() const override { return sampling_; }
  std::string_view name() const override { return "rapidsample"; }

 private:
  std::size_t pos_of(int mcs_index) const;
  double tput_estimate(std::size_t pos) const;

  Config config_;
  std::vector<int> ladder_;
  std::vector<double> per_;
  std::size_t current_;
  // SampleRate state.
  int frame_counter_ = 0;
  bool sampling_ = false;
  std::size_t sample_pos_ = 0;
  // RapidSample state.
  double last_loss_t_ = 0.0;
  double last_increase_t_ = 0.0;
};

}  // namespace mobiwlan
