#include "mac/softrate_ra.hpp"

#include "phy/mcs.hpp"

namespace mobiwlan {

SoftRateRa::SoftRateRa(Config config)
    : config_(config),
      ladder_(atheros_rate_ladder(config.max_streams)),
      current_(ladder_.size() / 2) {}

int SoftRateRa::select_mcs(const TxContext& ctx) {
  if (ctx.feedback_ber) {
    const double ber = *ctx.feedback_ber;
    if (ber > config_.ber_high && current_ > 0) {
      --current_;
    } else if (ber < config_.ber_low && current_ + 1 < ladder_.size()) {
      ++current_;
    }
  }
  return ladder_[current_];
}

void SoftRateRa::on_result(const FrameResult& result, const TxContext& /*ctx*/) {
  // The BER feedback in the next TxContext carries all channel information;
  // the only transmitter-side reaction needed is to the total-loss case,
  // where no feedback will arrive for this frame at all.
  if (!result.block_ack_received && current_ > 0) --current_;
}

}  // namespace mobiwlan
