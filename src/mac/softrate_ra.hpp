// softrate_ra.hpp — SoftRate baseline (Vutukuru et al., SIGCOMM'09).
//
// The client's SoftPHY exposes per-bit confidences, from which SoftRate
// estimates the interference-free BER of each received frame and feeds it
// back. As the paper notes (§4.3), a single BER observation at one rate can
// "typically only indicate whether the rate should be increased, decreased,
// or unchanged" — so the algorithm steps along the ladder, one rate per
// feedback, holding inside a BER hysteresis band.
#pragma once

#include <vector>

#include "mac/rate_adaptation.hpp"

namespace mobiwlan {

class SoftRateRa final : public RateAdapter {
 public:
  struct Config {
    int max_streams = 2;
    /// BER below this at the current rate -> the next rate up would still be
    /// comfortable; step up.
    double ber_low = 1e-7;
    /// BER above this -> the current rate is failing; step down.
    double ber_high = 3e-5;
  };

  SoftRateRa() : SoftRateRa(Config{}) {}
  explicit SoftRateRa(Config config);

  int select_mcs(const TxContext& ctx) override;
  void on_result(const FrameResult& result, const TxContext& ctx) override;
  std::string_view name() const override { return "softrate"; }

 private:
  Config config_;
  std::vector<int> ladder_;
  std::size_t current_;
};

}  // namespace mobiwlan
