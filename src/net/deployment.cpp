#include "net/deployment.hpp"

namespace mobiwlan {

WlanDeployment::WlanDeployment(std::vector<Vec2> ap_positions,
                               std::shared_ptr<const Trajectory> client,
                               const ChannelConfig& config, Rng& rng)
    : positions_(std::move(ap_positions)), client_(std::move(client)) {
  channels_.reserve(positions_.size());
  for (const Vec2 pos : positions_) {
    channels_.push_back(
        std::make_unique<WirelessChannel>(config, pos, client_, rng.split()));
    batch_.add_link(channels_.back().get());
  }
}

std::size_t WlanDeployment::strongest_ap(double t) {
  // Batched scan: one RSSI draw per AP in AP order, first-wins argmax —
  // the same contract as the per-link rssi_dbm loop it replaces.
  return batch_.strongest_link(t, scratch_);
}

std::vector<Vec2> WlanDeployment::corridor_layout(std::size_t n_aps,
                                                  double spacing_m) {
  std::vector<Vec2> out;
  out.reserve(n_aps);
  for (std::size_t i = 0; i < n_aps; ++i)
    out.push_back({static_cast<double>(i) * spacing_m, 0.0});
  return out;
}

std::vector<Vec2> WlanDeployment::grid_layout(std::size_t cols,
                                              std::size_t rows,
                                              double pitch_m) {
  std::vector<Vec2> out;
  out.reserve(cols * rows);
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t c = 0; c < cols; ++c)
      out.push_back({static_cast<double>(c) * pitch_m,
                     static_cast<double>(r) * pitch_m});
  return out;
}

std::shared_ptr<WalkTrajectory> WlanDeployment::corridor_walk(Rng& rng,
                                                              std::size_t n_aps,
                                                              double spacing_m) {
  const double length = static_cast<double>(n_aps - 1) * spacing_m;
  WalkTrajectory::Config wc;
  wc.bounds_min = {-5.0, -8.0};
  wc.bounds_max = {length + 5.0, 8.0};
  const Vec2 start{rng.uniform(0.0, length), rng.uniform(-6.0, 6.0)};
  return std::make_shared<WalkTrajectory>(start, rng, wc, 600.0);
}

}  // namespace mobiwlan
