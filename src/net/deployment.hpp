// deployment.hpp — a multi-AP WLAN serving one mobile client.
//
// The §3/§7 testbed: six APs on an office floor, a controller wired to all
// of them, and a client walking through. Every AP maintains its own radio
// channel to the client (independent scatterer field, shared trajectory), so
// any AP can measure the client's RSSI, CSI and ToF — which is what lets the
// controller ask *neighbor* APs for distance/heading during roaming.
#pragma once

#include <memory>
#include <vector>

#include "chan/channel.hpp"
#include "chan/channel_batch.hpp"
#include "chan/trajectory.hpp"
#include "util/rng.hpp"

namespace mobiwlan {

class WlanDeployment {
 public:
  WlanDeployment(std::vector<Vec2> ap_positions,
                 std::shared_ptr<const Trajectory> client,
                 const ChannelConfig& config, Rng& rng);

  std::size_t n_aps() const { return channels_.size(); }
  Vec2 ap_position(std::size_t ap) const { return positions_[ap]; }
  WirelessChannel& channel(std::size_t ap) { return *channels_[ap]; }
  const Trajectory& client() const { return *client_; }

  /// AP with the strongest instantaneous RSSI at time t. Runs the scan as
  /// one batched pass over every AP channel (same per-link draw order as
  /// calling rssi_dbm per AP).
  std::size_t strongest_ap(double t);

  /// One noisy ToF reading per AP at time t — the controller's neighbor
  /// sweep as a single batched pass. `out` must hold n_aps() entries.
  void tof_sweep(double t, double* out) { batch_.tof_all(t, out); }

  /// The batched view over every AP channel, for callers that advance all
  /// links per tick (one pass per tick instead of n_aps() per-link calls).
  ChannelBatch& batch() { return batch_; }

  /// The standard 6-AP corridor used by the §3 and §7 experiments:
  /// APs every `spacing` metres along a hallway.
  static std::vector<Vec2> corridor_layout(std::size_t n_aps = 6,
                                           double spacing_m = 35.0);

  /// A cols x rows AP grid at `pitch_m` spacing, row-major from the origin —
  /// the building-scale layout the campus simulation partitions into shards.
  static std::vector<Vec2> grid_layout(std::size_t cols, std::size_t rows,
                                       double pitch_m);

  /// A natural walk confined to the corridor covered by corridor_layout():
  /// the workload of the paper's roaming (§3.2) and end-to-end (§7) tests.
  static std::shared_ptr<WalkTrajectory> corridor_walk(Rng& rng,
                                                       std::size_t n_aps = 6,
                                                       double spacing_m = 35.0);

 private:
  std::vector<Vec2> positions_;
  std::shared_ptr<const Trajectory> client_;
  std::vector<std::unique_ptr<WirelessChannel>> channels_;
  ChannelBatch batch_;              // non-owning view over channels_
  ChannelBatch::Scratch scratch_;   // scan workspace (single-threaded use)
};

}  // namespace mobiwlan
