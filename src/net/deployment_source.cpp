#include "net/deployment_source.hpp"

namespace mobiwlan {

bool LiveDeploymentSource::csi(std::uint32_t unit, double t, CsiMatrix& out) {
  if (path_ == CsiPath::kBatched) {
    wlan_.batch().csi_into(unit, t, out, batch_scratch_);
  } else {
    wlan_.channel(unit).csi_at_into(t, out, scratch_);
  }
  return true;
}

bool LiveDeploymentSource::csi_true(std::uint32_t unit, double t,
                                    CsiMatrix& out) {
  if (path_ == CsiPath::kBatched) {
    wlan_.batch().csi_true_into(unit, t, out, batch_scratch_);
  } else {
    wlan_.channel(unit).csi_true_into(t, out, scratch_);
  }
  return true;
}

void LiveDeploymentSource::tof_sweep(double t, std::optional<double>* out) {
  wlan_.tof_sweep(t, sweep_.data());
  for (std::size_t ap = 0; ap < sweep_.size(); ++ap) out[ap] = sweep_[ap];
}

}  // namespace mobiwlan
