// deployment_source.hpp — the live multi-AP ObservableSource.
//
// Wraps a WlanDeployment as a trace::ObservableSource (unit = AP index) so
// the roaming and end-to-end loops run source-driven. The CsiPath flag
// exists because the batched CSI engine is only ≤1e-12-equivalent to the
// per-link path (SIMD accumulation order), not bitwise: each loop must keep
// the exact CSI call path it had before the source interface, or recorded
// baselines would shift. Scalar observables (RSSI, ToF, SNR) are bitwise
// identical either way, and the batched scan/sweep overrides keep the fast
// paths the deployment already provides.
#pragma once

#include "net/deployment.hpp"
#include "trace/source.hpp"

namespace mobiwlan {

class LiveDeploymentSource : public trace::ObservableSource {
 public:
  enum class CsiPath {
    kPerLink,  ///< channel(ap).csi_at_into — roaming's historical path
    kBatched,  ///< batch().csi_into — the end-to-end loop's historical path
  };

  LiveDeploymentSource(WlanDeployment& wlan, CsiPath path)
      : wlan_(wlan), path_(path), sweep_(wlan.n_aps()) {}

  std::size_t n_units() const override { return wlan_.n_aps(); }
  bool has(trace::StreamKind) const override { return true; }

  bool csi(std::uint32_t unit, double t, CsiMatrix& out) override;
  bool csi_feedback(std::uint32_t unit, double t, CsiMatrix& out) override {
    return csi(unit, t, out);
  }
  bool csi_true(std::uint32_t unit, double t, CsiMatrix& out) override;
  std::optional<double> rssi_dbm(std::uint32_t unit, double t) override {
    return wlan_.channel(unit).rssi_dbm(t);
  }
  std::optional<double> scan_rssi_dbm(std::uint32_t unit, double t) override {
    return wlan_.channel(unit).rssi_dbm(t);
  }
  std::optional<double> tof_cycles(std::uint32_t unit, double t) override {
    return wlan_.channel(unit).tof_cycles(t);
  }
  std::optional<double> snr_db(std::uint32_t unit, double t) override {
    return wlan_.channel(unit).snr_db(t);
  }
  std::optional<double> true_distance(std::uint32_t unit, double t) override {
    return wlan_.channel(unit).true_distance(t);
  }

  /// Controller neighbor sweep: one batched pass (same per-link draw order
  /// as per-unit tof_cycles calls).
  void tof_sweep(double t, std::optional<double>* out) override;

  /// Batched scan, first-wins argmax — same draws as per-unit scan reads.
  std::optional<std::size_t> strongest_unit(double t) override {
    return wlan_.strongest_ap(t);
  }

  WlanDeployment& deployment() { return wlan_; }

 private:
  WlanDeployment& wlan_;
  CsiPath path_;
  std::vector<double> sweep_;
  WirelessChannel::PathScratch scratch_;
  ChannelBatch::Scratch batch_scratch_;
};

}  // namespace mobiwlan
