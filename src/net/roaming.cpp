#include "net/roaming.hpp"

#include <algorithm>

#include "core/tof_tracker.hpp"
#include "net/deployment_source.hpp"
#include "phy/mcs.hpp"

namespace mobiwlan {

std::string_view to_string(RoamingScheme s) {
  switch (s) {
    case RoamingScheme::kDefault: return "default-roaming";
    case RoamingScheme::kSensorHint: return "sensor-hint-roaming";
    case RoamingScheme::kMotionAware: return "motion-aware-roaming";
  }
  return "?";
}

namespace {

/// Deliverable PHY throughput on a link at the given SNR: best MCS,
/// discounted by MAC efficiency.
double link_rate_mbps(double snr, const RoamingConfig& config) {
  const int best = best_mcs(snr, config.mpdu_payload_bytes, 2, config.error_model);
  return expected_throughput_mbps(mcs(best), snr, config.mpdu_payload_bytes,
                                  config.error_model) *
         config.mac_efficiency;
}

/// Serving-link SNR models the medium itself, not a lossy export; a source
/// that cannot serve it cannot drive this loop.
double ground(std::optional<double> v, const char* what) {
  if (!v)
    throw trace::TraceError(trace::TraceError::Code::kMissingStream,
                            std::string("roaming sim: ground-truth observable "
                                        "unavailable from source: ") +
                                what);
  return *v;
}

}  // namespace

RoamingResult simulate_roaming(WlanDeployment& wlan, RoamingScheme scheme,
                               const RoamingConfig& config, Rng& rng) {
  // Per-link CSI path: the historical loop read wlan.channel(ap).csi_at(),
  // which is only ≤1e-12-equal (not bitwise) to the batched engine.
  LiveDeploymentSource live(wlan, LiveDeploymentSource::CsiPath::kPerLink);
  trace::FaultedSource src(live, config.fault);
  return simulate_roaming(src, scheme, config, rng,
                          wlan.client().mobility_class());
}

RoamingResult simulate_roaming(trace::ObservableSource& src,
                               RoamingScheme scheme,
                               const RoamingConfig& config, Rng& rng,
                               MobilityClass client_class) {
  using trace::StreamKind;
  src.require({StreamKind::kSnr, StreamKind::kRssi, StreamKind::kScanRssi},
              "roaming sim");
  if (scheme == RoamingScheme::kMotionAware)
    src.require({StreamKind::kCsi, StreamKind::kTof}, "motion-aware roaming");

  RoamingResult result;
  (void)rng;

  std::size_t assoc = src.strongest_unit(0.0).value_or(0);
  result.associations.emplace_back(0.0, assoc);

  // Motion-aware state: classifier on the serving AP, ToF trackers at every
  // AP (neighbors measure via periodic NULL frames, §3.1). Export loss and
  // staleness live in the source (FaultedSource / a replayed trace): a read
  // that returns absence simply never reaches the classifier or trackers.
  MobilityClassifier classifier(config.classifier);
  std::vector<TofTracker> heading(src.n_units(),
                                  TofTracker(config.classifier.tof));

  CsiMatrix meas_csi;

  double delivered_mbit = 0.0;
  double outage_until = 0.0;
  double next_csi_t = 0.0;
  double next_tof_t = 0.0;
  double next_scan_t = config.scan_interval_s;
  double steer_ok_t = 0.0;
  double threshold_scan_ok_t = 0.0;

  auto weak_signal = [&](double t, double rssi) {
    if (rssi >= config.rssi_threshold_dbm || t < threshold_scan_ok_t) return false;
    threshold_scan_ok_t = t + config.min_scan_gap_s;
    return true;
  };

  // Dead air is a single extend-only window: overlapping causes (a periodic
  // scan that immediately triggers a handoff) merge instead of double-counting,
  // and `result.outage_s` counts exactly the realized window extension.
  auto add_outage = [&](double t, double dur) {
    const double until = std::max(outage_until, t + dur);
    result.outage_s += until - std::max(outage_until, t);
    outage_until = until;
  };

  auto begin_handoff = [&](double t, std::size_t target, double outage) {
    assoc = target;
    add_outage(t, outage);
    ++result.handoffs;
    result.associations.emplace_back(t, target);
    classifier = MobilityClassifier(config.classifier);
  };

  for (double t = 0.0; t < config.duration_s; t += config.step_s) {
    if (scheme == RoamingScheme::kMotionAware) {
      while (next_csi_t <= t) {
        if (src.csi(assoc, next_csi_t, meas_csi))
          classifier.on_csi(next_csi_t, meas_csi);
        next_csi_t += config.classifier.csi_period_s;
      }
      while (next_tof_t <= t) {
        for (std::size_t ap = 0; ap < src.n_units(); ++ap) {
          const auto tof =
              src.tof_cycles(static_cast<std::uint32_t>(ap), next_tof_t);
          if (!tof) continue;
          if (ap == assoc)
            classifier.on_tof(next_tof_t, *tof);
          else
            heading[ap].add(next_tof_t, *tof);
        }
        next_tof_t += config.classifier.tof_period_s;
      }
    }

    if (t < outage_until) continue;  // scanning/associating: no goodput

    delivered_mbit +=
        link_rate_mbps(ground(src.snr_db(static_cast<std::uint32_t>(assoc), t),
                              "serving snr"),
                       config) *
        config.step_s;

    // Serving-link RSSI as exported by the AP firmware; the export can be
    // lost or stale. Scan measurements of *other* APs below are made fresh
    // by the client itself during the scan, so they are never faulted.
    const std::optional<double> current_rssi =
        src.rssi_dbm(static_cast<std::uint32_t>(assoc), t);

    switch (scheme) {
      case RoamingScheme::kDefault:
        // Stock client: roam only when the serving AP becomes weak. A lost
        // RSSI export simply means no roam decision this tick — the stock
        // client degrades to staying put, never to a spurious handoff.
        if (current_rssi && weak_signal(t, *current_rssi)) {
          if (const auto target = src.strongest_unit(t))
            begin_handoff(t, *target, config.handoff_outage_s);
        }
        break;

      case RoamingScheme::kSensorHint: {
        if (current_rssi && weak_signal(t, *current_rssi)) {
          if (const auto target = src.strongest_unit(t))
            begin_handoff(t, *target, config.handoff_outage_s);
          break;
        }
        const bool moving = client_class == MobilityClass::kMicro ||
                            client_class == MobilityClass::kMacro;
        if (moving && t >= next_scan_t) {
          next_scan_t = t + config.scan_interval_s;
          // The periodic scan itself costs airtime whether or not it helps.
          add_outage(t, config.scan_cost_s);
          ++result.scans;
          const auto best = src.strongest_unit(t);
          // A scan re-measures the serving AP too, so a lost passive export
          // is repaired here at the scan's cost (extra read only on faulted
          // paths — the zero-fault RNG sequence is untouched).
          const std::optional<double> serving_rssi =
              current_rssi
                  ? current_rssi
                  : src.scan_rssi_dbm(static_cast<std::uint32_t>(assoc), t);
          if (best && serving_rssi && *best != assoc) {
            const auto candidate_rssi =
                src.scan_rssi_dbm(static_cast<std::uint32_t>(*best), t);
            if (candidate_rssi &&
                *candidate_rssi > *serving_rssi + config.better_margin_db)
              begin_handoff(t, *best, config.handoff_outage_s);
          }
        }
        break;
      }

      case RoamingScheme::kMotionAware: {
        // The stock client behaviour still applies underneath (§3.1: "does
        // not impose any changes in the client's association mechanism").
        if (current_rssi && weak_signal(t, *current_rssi)) {
          if (const auto target = src.strongest_unit(t))
            begin_handoff(t, *target, config.handoff_outage_s);
          break;
        }
        if (t < steer_ok_t) break;
        // Graceful degradation: steer only on a *fresh* classification.
        // decision(t) decays to nullopt when the CSI stream goes stale, and
        // the heading trackers reset their trend windows across ToF gaps, so
        // under heavy export loss this scheme falls back to the stock
        // weak-signal behaviour above rather than steering on stale state.
        const std::optional<MobilityMode> decided = classifier.decision(t);
        if (!decided || *decided != MobilityMode::kMacroAway) break;
        if (!current_rssi) break;  // no serving baseline to compare against
        // Candidate set: APs the client is heading toward (their ToF trend
        // decreases) with similar-or-stronger signal.
        std::size_t best_candidate = assoc;
        double best_rssi = *current_rssi - 1.0;  // "similar or higher"
        for (std::size_t ap = 0; ap < src.n_units(); ++ap) {
          if (ap == assoc) continue;
          if (heading[ap].trend() != TofTrend::kDecreasing) continue;
          const auto rssi =
              src.scan_rssi_dbm(static_cast<std::uint32_t>(ap), t);
          if (rssi && *rssi >= best_rssi) {
            best_rssi = *rssi;
            best_candidate = ap;
          }
        }
        if (best_candidate != assoc) {
          // Forced disassociation -> client rescans -> candidate APs answer.
          begin_handoff(t, best_candidate, config.handoff_outage_s);
          steer_ok_t = t + config.steer_cooldown_s;
        }
        break;
      }
    }
  }

  result.mean_throughput_mbps = delivered_mbit / config.duration_s;
  return result;
}

std::pair<double, double> oracle_vs_stick(WlanDeployment& wlan,
                                          const RoamingConfig& config) {
  const std::size_t initial = wlan.strongest_ap(0.0);
  double best_sum = 0.0;
  double stick_sum = 0.0;
  int steps = 0;
  for (double t = 0.0; t < config.duration_s; t += config.step_s) {
    const std::size_t best = wlan.strongest_ap(t);
    best_sum += link_rate_mbps(wlan.channel(best).snr_db(t), config);
    stick_sum += link_rate_mbps(wlan.channel(initial).snr_db(t), config);
    ++steps;
  }
  if (steps == 0) return {0.0, 0.0};
  return {best_sum / steps, stick_sum / steps};
}

}  // namespace mobiwlan
