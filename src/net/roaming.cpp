#include "net/roaming.hpp"

#include <algorithm>

#include "core/tof_tracker.hpp"
#include "phy/mcs.hpp"

namespace mobiwlan {

std::string_view to_string(RoamingScheme s) {
  switch (s) {
    case RoamingScheme::kDefault: return "default-roaming";
    case RoamingScheme::kSensorHint: return "sensor-hint-roaming";
    case RoamingScheme::kMotionAware: return "motion-aware-roaming";
  }
  return "?";
}

namespace {

/// Deliverable PHY throughput on a link right now: best MCS at the current
/// SNR, discounted by MAC efficiency.
double link_rate_mbps(WirelessChannel& channel, double t,
                      const RoamingConfig& config) {
  const double snr = channel.snr_db(t);
  const int best = best_mcs(snr, config.mpdu_payload_bytes, 2, config.error_model);
  return expected_throughput_mbps(mcs(best), snr, config.mpdu_payload_bytes,
                                  config.error_model) *
         config.mac_efficiency;
}

}  // namespace

RoamingResult simulate_roaming(WlanDeployment& wlan, RoamingScheme scheme,
                               const RoamingConfig& config, Rng& rng) {
  RoamingResult result;
  (void)rng;

  std::size_t assoc = wlan.strongest_ap(0.0);
  result.associations.emplace_back(0.0, assoc);

  // Motion-aware state: classifier on the serving AP, ToF trackers at every
  // AP (neighbors measure via periodic NULL frames, §3.1).
  MobilityClassifier classifier(config.classifier);
  std::vector<TofTracker> heading(wlan.n_aps(), TofTracker(config.classifier.tof));

  double delivered_mbit = 0.0;
  double outage_until = 0.0;
  double next_csi_t = 0.0;
  double next_tof_t = 0.0;
  double next_scan_t = config.scan_interval_s;
  double steer_ok_t = 0.0;
  double threshold_scan_ok_t = 0.0;

  auto weak_signal = [&](double t, double rssi) {
    if (rssi >= config.rssi_threshold_dbm || t < threshold_scan_ok_t) return false;
    threshold_scan_ok_t = t + config.min_scan_gap_s;
    return true;
  };

  auto begin_handoff = [&](double t, std::size_t target, double outage) {
    assoc = target;
    outage_until = t + outage;
    ++result.handoffs;
    result.outage_s += outage;
    result.associations.emplace_back(t, target);
    classifier = MobilityClassifier(config.classifier);
  };

  for (double t = 0.0; t < config.duration_s; t += config.step_s) {
    if (scheme == RoamingScheme::kMotionAware) {
      while (next_csi_t <= t) {
        classifier.on_csi(next_csi_t, wlan.channel(assoc).csi_at(next_csi_t));
        next_csi_t += config.classifier.csi_period_s;
      }
      while (next_tof_t <= t) {
        for (std::size_t ap = 0; ap < wlan.n_aps(); ++ap) {
          const double tof = wlan.channel(ap).tof_cycles(next_tof_t);
          if (ap == assoc)
            classifier.on_tof(next_tof_t, tof);
          else
            heading[ap].add(next_tof_t, tof);
        }
        next_tof_t += config.classifier.tof_period_s;
      }
    }

    if (t < outage_until) continue;  // scanning/associating: no goodput

    delivered_mbit += link_rate_mbps(wlan.channel(assoc), t, config) * config.step_s;

    const double current_rssi = wlan.channel(assoc).rssi_dbm(t);

    switch (scheme) {
      case RoamingScheme::kDefault:
        // Stock client: roam only when the serving AP becomes weak.
        if (weak_signal(t, current_rssi)) {
          const std::size_t target = wlan.strongest_ap(t);
          begin_handoff(t, target, config.handoff_outage_s);
        }
        break;

      case RoamingScheme::kSensorHint: {
        if (weak_signal(t, current_rssi)) {
          begin_handoff(t, wlan.strongest_ap(t), config.handoff_outage_s);
          break;
        }
        const bool moving =
            wlan.client().mobility_class() == MobilityClass::kMicro ||
            wlan.client().mobility_class() == MobilityClass::kMacro;
        if (moving && t >= next_scan_t) {
          next_scan_t = t + config.scan_interval_s;
          // The periodic scan itself costs airtime whether or not it helps.
          outage_until = t + config.scan_cost_s;
          result.outage_s += config.scan_cost_s;
          const std::size_t best = wlan.strongest_ap(t);
          if (best != assoc && wlan.channel(best).rssi_dbm(t) >
                                   current_rssi + config.better_margin_db) {
            begin_handoff(t, best, config.handoff_outage_s);
          }
        }
        break;
      }

      case RoamingScheme::kMotionAware: {
        // The stock client behaviour still applies underneath (§3.1: "does
        // not impose any changes in the client's association mechanism").
        if (weak_signal(t, current_rssi)) {
          begin_handoff(t, wlan.strongest_ap(t), config.handoff_outage_s);
          break;
        }
        if (t < steer_ok_t) break;
        if (!classifier.similarity() ||
            classifier.mode() != MobilityMode::kMacroAway)
          break;
        // Candidate set: APs the client is heading toward (their ToF trend
        // decreases) with similar-or-stronger signal.
        std::size_t best_candidate = assoc;
        double best_rssi = current_rssi - 1.0;  // "similar or higher"
        for (std::size_t ap = 0; ap < wlan.n_aps(); ++ap) {
          if (ap == assoc) continue;
          if (heading[ap].trend() != TofTrend::kDecreasing) continue;
          const double rssi = wlan.channel(ap).rssi_dbm(t);
          if (rssi >= best_rssi) {
            best_rssi = rssi;
            best_candidate = ap;
          }
        }
        if (best_candidate != assoc) {
          // Forced disassociation -> client rescans -> candidate APs answer.
          begin_handoff(t, best_candidate, config.handoff_outage_s);
          steer_ok_t = t + config.steer_cooldown_s;
        }
        break;
      }
    }
  }

  result.mean_throughput_mbps = delivered_mbit / config.duration_s;
  return result;
}

std::pair<double, double> oracle_vs_stick(WlanDeployment& wlan,
                                          const RoamingConfig& config) {
  const std::size_t initial = wlan.strongest_ap(0.0);
  double best_sum = 0.0;
  double stick_sum = 0.0;
  int steps = 0;
  for (double t = 0.0; t < config.duration_s; t += config.step_s) {
    const std::size_t best = wlan.strongest_ap(t);
    best_sum += link_rate_mbps(wlan.channel(best), t, config);
    stick_sum += link_rate_mbps(wlan.channel(initial), t, config);
    ++steps;
  }
  if (steps == 0) return {0.0, 0.0};
  return {best_sum / steps, stick_sum / steps};
}

}  // namespace mobiwlan
