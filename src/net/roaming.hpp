// roaming.hpp — client roaming schemes (§3).
//
// Three schemes over the same deployment:
//
//   kDefault     — the stock client: stick with the associated AP until its
//                  RSSI drops below a threshold, then full-scan and join the
//                  strongest AP. "A moving client may be close to a stronger
//                  AP, but it does not try to discover it" (§3).
//   kSensorHint  — the NSDI'11 client-side scheme: when the accelerometer
//                  says the device is moving, scan periodically (each scan
//                  costs airtime and an outage) and switch to a stronger AP.
//   kMotionAware — the paper's controller-based scheme (§3.1): the current
//                  AP classifies the client; only when it is *walking away*
//                  does the controller poll neighbor APs for RSSI + heading
//                  (their own ToF trends), pick candidates the client is
//                  moving toward with similar-or-better signal, force a
//                  disassociation, and steer the client to the best one.
//                  No client modification is required.
#pragma once

#include <vector>

#include "core/mobility_classifier.hpp"
#include "fault/fault.hpp"
#include "net/deployment.hpp"
#include "phy/error_model.hpp"
#include "trace/source.hpp"

namespace mobiwlan {

enum class RoamingScheme { kDefault, kSensorHint, kMotionAware };

std::string_view to_string(RoamingScheme s);

struct RoamingConfig {
  double duration_s = 90.0;
  double step_s = 0.05;               ///< control-loop tick
  double handoff_outage_s = 0.20;     ///< §3.2: full scan + re-association
  double rssi_threshold_dbm = -85.0;  ///< sticky stock client roam trigger
  double min_scan_gap_s = 4.0;        ///< clients rate-limit threshold scans
  double scan_interval_s = 2.0;       ///< sensor-hint periodic scan cadence
  double scan_cost_s = 0.12;          ///< outage per periodic full scan
  double better_margin_db = 3.0;      ///< hysteresis for switching
  double steer_cooldown_s = 5.0;      ///< min gap between controller steers
  int mpdu_payload_bytes = 1500;
  /// MAC efficiency applied on top of PHY-expected throughput.
  double mac_efficiency = 0.70;
  MobilityClassifier::Config classifier;
  ErrorModelConfig error_model;

  /// PHY-observable fault injection, applied per AP (unit = AP index). The
  /// passive serving-link RSSI export is faulted; the active scan's fresh
  /// measurements are not (the client measures those itself). An all-zero
  /// plan is bitwise-identical to the unfaulted path.
  FaultPlan fault;
};

struct RoamingResult {
  double mean_throughput_mbps = 0.0;
  int handoffs = 0;
  int scans = 0;          ///< sensor-hint periodic scans performed
  double outage_s = 0.0;  ///< realized dead-air (extend-only window)
  /// (time, serving AP) at every association change.
  std::vector<std::pair<double, std::size_t>> associations;
};

/// Simulate a download to the walking client under the given scheme. Applies
/// config.fault via a FaultedSource over the deployment and delegates to the
/// source-driven overload — bitwise-identical to the historical inline loop.
RoamingResult simulate_roaming(WlanDeployment& wlan, RoamingScheme scheme,
                               const RoamingConfig& config, Rng& rng);

/// Source-driven overload: the same control loop over any multi-unit
/// ObservableSource (unit = AP index). config.fault is NOT applied here —
/// compose a FaultedSource yourself. `client_class` replaces
/// wlan.client().mobility_class() for the sensor-hint scheme's accelerometer.
RoamingResult simulate_roaming(trace::ObservableSource& src,
                               RoamingScheme scheme,
                               const RoamingConfig& config, Rng& rng,
                               MobilityClass client_class);

/// Fig. 7(a) helper: throughput of always using the instantaneous strongest
/// AP vs. sticking with the AP chosen at t = 0, over the same run. Returns
/// the pair (always-best, stick-with-initial) in Mbps.
std::pair<double, double> oracle_vs_stick(WlanDeployment& wlan,
                                          const RoamingConfig& config);

}  // namespace mobiwlan
