#include "net/scheduler.hpp"

#include <algorithm>
#include <stdexcept>

namespace mobiwlan {

std::size_t RoundRobinScheduler::pick(const std::vector<ClientSlotInfo>& clients) {
  if (clients.empty()) throw std::invalid_argument("no clients to schedule");
  const std::size_t chosen = next_ % clients.size();
  next_ = (next_ + 1) % clients.size();
  return chosen;
}

void RoundRobinScheduler::on_served(std::size_t, double) {}

std::size_t ProportionalFairScheduler::pick(
    const std::vector<ClientSlotInfo>& clients) {
  if (clients.empty()) throw std::invalid_argument("no clients to schedule");
  while (averages_.size() < clients.size())
    averages_.emplace_back(config_.alpha);
  while (rate_smooth_.size() < clients.size())
    rate_smooth_.emplace_back(config_.rate_alpha);

  std::size_t best = 0;
  double best_metric = -1.0;
  for (std::size_t i = 0; i < clients.size(); ++i) {
    rate_smooth_[i].add(clients[i].rate_mbps);
    const double avg =
        std::max(averages_[i].primed() ? averages_[i].value() : 0.0,
                 config_.min_average_mbps);
    const double smooth = std::max(rate_smooth_[i].value(), 1e-6);
    const double m = metric(clients[i], avg, smooth);
    if (m > best_metric) {
      best_metric = m;
      best = i;
    }
  }
  return best;
}

void ProportionalFairScheduler::on_served(std::size_t client, double rate_mbps) {
  while (averages_.size() <= client) averages_.emplace_back(config_.alpha);
  // Every client's average decays each slot; the served one credits its rate.
  for (std::size_t i = 0; i < averages_.size(); ++i)
    averages_[i].add(i == client ? rate_mbps : 0.0);
}

double ProportionalFairScheduler::metric(const ClientSlotInfo& info,
                                         double average,
                                         double /*rate_smooth*/) const {
  return info.rate_mbps / average;
}

double MobilityAwareScheduler::metric(const ClientSlotInfo& info, double average,
                                      double rate_smooth) const {
  const bool mobile = info.mobility && is_device_mobility(*info.mobility);
  const double base = info.rate_mbps / average;
  if (!mobile) return base;
  // Squared relative-rate boost: rate/rate_smooth > 1 on this client's own
  // peaks. The boost is self-normalizing, so it cannot starve the others.
  const double relative = info.rate_mbps / rate_smooth;
  return base * relative;
}

}  // namespace mobiwlan
