#include "net/scheduler.hpp"

#include <algorithm>
#include <stdexcept>

namespace mobiwlan {

std::size_t RoundRobinScheduler::pick(
    const std::vector<ClientSlotInfo>& clients) const {
  if (clients.empty()) throw std::invalid_argument("no clients to schedule");
  return next_ % clients.size();
}

void RoundRobinScheduler::on_served(const std::vector<ClientSlotInfo>& clients,
                                    std::size_t served) {
  next_ = clients.empty() ? 0 : (served + 1) % clients.size();
}

std::size_t ProportionalFairScheduler::pick(
    const std::vector<ClientSlotInfo>& clients) const {
  if (clients.empty()) throw std::invalid_argument("no clients to schedule");

  std::size_t best = 0;
  double best_metric = -1.0;
  for (std::size_t i = 0; i < clients.size(); ++i) {
    const double avg = std::max(
        i < averages_.size() && averages_[i].primed() ? averages_[i].value()
                                                      : 0.0,
        config_.min_average_mbps);
    // Before the first on_served the channel average is unknown; treat the
    // instantaneous rate as its own average (relative ratio of 1).
    const double smooth =
        i < rate_smooth_.size() && rate_smooth_[i].primed()
            ? std::max(rate_smooth_[i].value(), 1e-6)
            : std::max(clients[i].rate_mbps, 1e-6);
    const double m = metric(clients[i], avg, smooth);
    if (m > best_metric) {
      best_metric = m;
      best = i;
    }
  }
  return best;
}

void ProportionalFairScheduler::on_served(
    const std::vector<ClientSlotInfo>& clients, std::size_t served) {
  while (averages_.size() < clients.size()) averages_.emplace_back(config_.alpha);
  while (rate_smooth_.size() < clients.size())
    rate_smooth_.emplace_back(config_.rate_alpha);
  // Every client's average decays each slot; the served one credits its rate.
  // The offered-rate estimate advances once per *slot*, not per pick() call,
  // so probing a slot twice cannot skew the mobility-aware boost.
  for (std::size_t i = 0; i < clients.size(); ++i) {
    rate_smooth_[i].add(clients[i].rate_mbps);
    averages_[i].add(i == served ? clients[i].rate_mbps : 0.0);
  }
}

double ProportionalFairScheduler::metric(const ClientSlotInfo& info,
                                         double average,
                                         double /*rate_smooth*/) const {
  return info.rate_mbps / average;
}

double MobilityAwareScheduler::metric(const ClientSlotInfo& info, double average,
                                      double rate_smooth) const {
  const bool mobile = info.mobility && is_device_mobility(*info.mobility);
  const double base = info.rate_mbps / average;
  if (!mobile) return base;
  // Squared relative-rate boost: rate/rate_smooth > 1 on this client's own
  // peaks. The boost is self-normalizing, so it cannot starve the others.
  const double relative = info.rate_mbps / rate_smooth;
  return base * relative;
}

}  // namespace mobiwlan
