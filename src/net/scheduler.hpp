// scheduler.hpp — mobility-aware downlink scheduling (§9 future work).
//
// The paper's discussion lists "scheduling client traffic at an AP taking
// movement into account" as another protocol that could exploit mobility
// hints. The idea is classic opportunistic scheduling, gated by the
// classifier: a *mobile* client's channel swings by many dB on second
// timescales (body shadowing, fading), so serving it preferentially when
// its instantaneous rate is above its own recent average converts channel
// variation into throughput. A static client's channel barely moves, so
// opportunism buys nothing there — the classifier tells the scheduler where
// the variation is.
//
// Schedulers implement a per-slot decision over the AP's active clients:
//   * RoundRobinScheduler      — the airtime-fair baseline;
//   * ProportionalFairScheduler— classic PF (rate / smoothed throughput),
//                                mobility-oblivious;
//   * MobilityAwareScheduler   — PF, but the opportunism (the exponent on
//                                the instantaneous-rate term) is applied
//                                only to clients classified device-mobile.
#pragma once

#include <memory>
#include <optional>
#include <string_view>
#include <vector>

#include "core/mobility_mode.hpp"
#include "util/filters.hpp"

namespace mobiwlan {

/// Everything the scheduler may know about one client at slot time.
struct ClientSlotInfo {
  double rate_mbps = 0.0;  ///< deliverable rate right now
  std::optional<MobilityMode> mobility;  ///< classifier output, if any
};

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  /// Index of the client to serve this slot. Must not mutate scheduler
  /// state: calling pick() twice on the same slot (e.g. to probe the
  /// decision) returns the same index as calling it once.
  virtual std::size_t pick(const std::vector<ClientSlotInfo>& clients) const = 0;

  /// Commit one served slot: `clients` is the same snapshot that was passed
  /// to pick() and `served` the index actually served. All per-slot state
  /// updates (throughput averages, channel-rate smoothing) happen here.
  virtual void on_served(const std::vector<ClientSlotInfo>& clients,
                         std::size_t served) = 0;

  virtual std::string_view name() const = 0;
};

class RoundRobinScheduler final : public Scheduler {
 public:
  std::size_t pick(const std::vector<ClientSlotInfo>& clients) const override;
  void on_served(const std::vector<ClientSlotInfo>& clients,
                 std::size_t served) override;
  std::string_view name() const override { return "round-robin"; }

 private:
  std::size_t next_ = 0;
};

class ProportionalFairScheduler : public Scheduler {
 public:
  struct Config {
    double alpha = 0.02;  ///< EWMA weight on the served-throughput average
    /// Fairness floor so a client with a dead channel is not starved forever.
    double min_average_mbps = 0.5;
    /// EWMA weight for the offered-rate estimate (channel average).
    double rate_alpha = 0.01;
  };

  ProportionalFairScheduler() : ProportionalFairScheduler(Config{}) {}
  explicit ProportionalFairScheduler(Config config) : config_(config) {}

  std::size_t pick(const std::vector<ClientSlotInfo>& clients) const override;
  void on_served(const std::vector<ClientSlotInfo>& clients,
                 std::size_t served) override;
  std::string_view name() const override { return "proportional-fair"; }

 protected:
  /// The PF metric for one client; overridden by the mobility-aware variant.
  /// `average` is the served-throughput EWMA, `rate_smooth` the offered-rate
  /// EWMA (the client's channel average).
  virtual double metric(const ClientSlotInfo& info, double average,
                        double rate_smooth) const;

  Config config_;
  std::vector<Ewma> averages_;      ///< served throughput
  std::vector<Ewma> rate_smooth_;   ///< offered rate (channel average)
};

class MobilityAwareScheduler final : public ProportionalFairScheduler {
 public:
  using ProportionalFairScheduler::ProportionalFairScheduler;

  std::string_view name() const override { return "mobility-aware"; }

 protected:
  /// Device-mobile clients get *boosted* opportunism — the instantaneous
  /// rate relative to the client's own channel average enters squared, so
  /// peaks win decisively and troughs lose decisively; static/environmental
  /// clients keep the plain PF metric (their ratio is ~1 anyway, so the
  /// boost would only amplify measurement noise).
  double metric(const ClientSlotInfo& info, double average,
                double rate_smooth) const override;
};

}  // namespace mobiwlan
