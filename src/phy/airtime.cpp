#include "phy/airtime.hpp"

#include <algorithm>
#include <cmath>

#include "util/units.hpp"

namespace mobiwlan {

double ampdu_airtime_s(const McsEntry& mcs_entry, int n_mpdus,
                       int mpdu_payload_bytes, const AirtimeConfig& config) {
  const double preamble =
      config.preamble_s + config.ht_ltf_per_stream_s * mcs_entry.streams;
  const double bits =
      8.0 * n_mpdus * (mpdu_payload_bytes + config.mpdu_header_bytes);
  return preamble + bits / (mcs_entry.rate_mbps * 1e6);
}

double exchange_airtime_s(const McsEntry& mcs_entry, int n_mpdus,
                          int mpdu_payload_bytes, const AirtimeConfig& config) {
  const double contention = kDifs + config.avg_backoff_slots * kSlotTime;
  const double ack = n_mpdus > 1 ? config.block_ack_s : config.ack_s;
  return contention + ampdu_airtime_s(mcs_entry, n_mpdus, mpdu_payload_bytes, config) +
         kSifs + ack;
}

int mpdus_within_time(const McsEntry& mcs_entry, double aggregation_time_s,
                      int mpdu_payload_bytes, const AirtimeConfig& config) {
  const double bits_budget = aggregation_time_s * mcs_entry.rate_mbps * 1e6;
  const double bits_per_mpdu = 8.0 * (mpdu_payload_bytes + config.mpdu_header_bytes);
  const int n = static_cast<int>(bits_budget / bits_per_mpdu);
  return std::clamp(n, 1, 64);
}

double exchange_goodput_mbps(const McsEntry& mcs_entry, int n_mpdus,
                             int mpdu_payload_bytes, const AirtimeConfig& config) {
  const double airtime = exchange_airtime_s(mcs_entry, n_mpdus, mpdu_payload_bytes, config);
  const double payload_bits = 8.0 * n_mpdus * mpdu_payload_bytes;
  return payload_bits / airtime / 1e6;
}

}  // namespace mobiwlan
