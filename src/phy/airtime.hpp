// airtime.hpp — 802.11n medium-occupancy model.
//
// Converts MAC decisions (MCS, A-MPDU size) into on-air time, including PHY
// preambles, contention, SIFS, and the Block ACK — the denominators of every
// throughput number in the evaluation. Frame aggregation (§5) exists exactly
// because these per-frame overheads amortize over the aggregate.
#pragma once

#include "phy/mcs.hpp"

namespace mobiwlan {

struct AirtimeConfig {
  double preamble_s = 36e-6;        ///< L-STF/L-LTF/L-SIG + HT-SIG + HT-STF
  double ht_ltf_per_stream_s = 4e-6;
  double block_ack_s = 68e-6;       ///< Block ACK at a basic rate, incl. preamble
  double ack_s = 44e-6;             ///< legacy ACK (single MPDU)
  double avg_backoff_slots = 7.5;   ///< mean of CW_min = 15
  double mpdu_header_bytes = 40.0;  ///< MAC header + A-MPDU delimiter + FCS
};

/// Time on air for an A-MPDU carrying `n_mpdus` subframes of
/// `mpdu_payload_bytes` each at the given MCS (data portion + preamble).
double ampdu_airtime_s(const McsEntry& mcs_entry, int n_mpdus,
                       int mpdu_payload_bytes, const AirtimeConfig& config = {});

/// Full exchange time: DIFS + backoff + A-MPDU + SIFS + Block ACK.
double exchange_airtime_s(const McsEntry& mcs_entry, int n_mpdus,
                          int mpdu_payload_bytes, const AirtimeConfig& config = {});

/// Number of MPDUs of `mpdu_payload_bytes` that fit within an aggregation
/// *time* limit at the given MCS (§5: "Aggregation size = Maximum allowed
/// aggregation time / Bit-rate"). Always at least 1, capped at 64 (Block ACK
/// window).
int mpdus_within_time(const McsEntry& mcs_entry, double aggregation_time_s,
                      int mpdu_payload_bytes, const AirtimeConfig& config = {});

/// MAC goodput of a fully successful exchange, in Mbps.
double exchange_goodput_mbps(const McsEntry& mcs_entry, int n_mpdus,
                             int mpdu_payload_bytes, const AirtimeConfig& config = {});

}  // namespace mobiwlan
