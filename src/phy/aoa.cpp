#include "phy/aoa.hpp"

#include <array>
#include <cmath>
#include <limits>
#include <numbers>

namespace mobiwlan {

AoaEstimate estimate_aoa(const CsiMatrix& csi, int grid_points) {
  AoaEstimate best;
  if (csi.empty() || grid_points < 2) return best;

  const std::size_t n_tx = csi.n_tx();
  double best_power = -1.0;
  double power_sum = 0.0;

  // The conjugated steering phasors depend only on (grid point, tx), so they
  // are hoisted out of the per-(subcarrier, rx) accumulation; stack storage
  // keeps the scan allocation-free. Arrays wider than the cap (no deployed
  // config comes close) fall back to computing the phasor in the inner loop.
  constexpr std::size_t kMaxHoistedTx = 16;
  std::array<cplx, kMaxHoistedTx> steer_conj;
  const bool hoisted = n_tx <= kMaxHoistedTx;

  for (int g = 0; g < grid_points; ++g) {
    const double theta =
        std::numbers::pi * static_cast<double>(g) / (grid_points - 1);
    // Steering vector matching the channel synthesis convention:
    // element m contributes a phase of -pi * m * cos(theta).
    const double phase_step = -std::numbers::pi * std::cos(theta);
    if (hoisted)
      for (std::size_t tx = 0; tx < n_tx; ++tx)
        steer_conj[tx] =
            std::conj(std::polar(1.0, phase_step * static_cast<double>(tx)));

    double power = 0.0;
    for (std::size_t sc = 0; sc < csi.n_subcarriers(); ++sc) {
      for (std::size_t rx = 0; rx < csi.n_rx(); ++rx) {
        cplx acc{};
        if (hoisted) {
          for (std::size_t tx = 0; tx < n_tx; ++tx)
            acc += csi.at(tx, rx, sc) * steer_conj[tx];
        } else {
          for (std::size_t tx = 0; tx < n_tx; ++tx)
            acc += csi.at(tx, rx, sc) *
                   std::conj(std::polar(1.0, phase_step * static_cast<double>(tx)));
        }
        power += std::norm(acc);
      }
    }
    power_sum += power;
    if (power > best_power) {
      best_power = power;
      best.angle_rad = theta;
    }
  }

  const double mean_power = power_sum / grid_points;
  if (mean_power > 0.0) {
    best.peak_ratio = best_power / mean_power;
  } else {
    // All-zero CSI: the scan is flat at zero, so there is no angle to
    // report. NaN angle + zero confidence make the estimate rejectable,
    // where the old sentinel (theta = 0, ratio = 1.0) looked like a weak
    // but genuine measurement.
    best.angle_rad = std::numeric_limits<double>::quiet_NaN();
    best.peak_ratio = 0.0;
  }
  return best;
}

}  // namespace mobiwlan
