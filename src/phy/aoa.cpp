#include "phy/aoa.hpp"

#include <cmath>
#include <numbers>

namespace mobiwlan {

AoaEstimate estimate_aoa(const CsiMatrix& csi, int grid_points) {
  AoaEstimate best;
  if (csi.empty() || grid_points < 2) return best;

  const std::size_t n_tx = csi.n_tx();
  double best_power = -1.0;
  double power_sum = 0.0;

  for (int g = 0; g < grid_points; ++g) {
    const double theta =
        std::numbers::pi * static_cast<double>(g) / (grid_points - 1);
    // Steering vector matching the channel synthesis convention:
    // element m contributes a phase of -pi * m * cos(theta).
    const double phase_step = -std::numbers::pi * std::cos(theta);

    double power = 0.0;
    for (std::size_t sc = 0; sc < csi.n_subcarriers(); ++sc) {
      for (std::size_t rx = 0; rx < csi.n_rx(); ++rx) {
        cplx acc{};
        for (std::size_t tx = 0; tx < n_tx; ++tx) {
          const cplx steer = std::polar(1.0, phase_step * static_cast<double>(tx));
          acc += csi.at(tx, rx, sc) * std::conj(steer);
        }
        power += std::norm(acc);
      }
    }
    power_sum += power;
    if (power > best_power) {
      best_power = power;
      best.angle_rad = theta;
    }
  }

  const double mean_power = power_sum / grid_points;
  best.peak_ratio = mean_power > 0.0 ? best_power / mean_power : 1.0;
  return best;
}

}  // namespace mobiwlan
