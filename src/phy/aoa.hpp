// aoa.hpp — Angle-of-Arrival estimation from CSI (§9 future work).
//
// The paper's classifier cannot detect a client walking a circle around the
// AP (constant distance, no ToF trend) and proposes augmenting the system
// with AoA. The AP's 3-antenna uniform linear array encodes the departure
// angle of each path in the phase progression across its elements
// (and by channel reciprocity the uplink arrival angle equals it): this
// module recovers the dominant angle with a beamscan over the array
// steering vectors, averaged across subcarriers and client chains.
#pragma once

#include "phy/csi.hpp"

namespace mobiwlan {

struct AoaEstimate {
  /// Dominant angle in [0, pi] (ULA cone ambiguity). NaN when the CSI
  /// carries no power at all: a flat zero spectrum has no argmax, and any
  /// finite angle here would be an invented one.
  double angle_rad = 0.0;
  /// Beamscan peak / mean — confidence proxy. A real scan always yields
  /// >= 1 (the peak cannot fall below the mean), so the degenerate cases
  /// (empty CSI, too-coarse grid, all-zero CSI) report 0.0, letting fusion
  /// stages reject no-signal estimates with a single threshold.
  double peak_ratio = 0.0;
};

/// Beamscan AoA: evaluates P(theta) = sum_{sc,rx} |a(theta)^H h_{sc,rx}|^2
/// over a grid of `grid_points` angles, where a(theta) is the lambda/2 ULA
/// steering vector across the AP's antennas. Returns the grid argmax.
AoaEstimate estimate_aoa(const CsiMatrix& csi, int grid_points = 181);

}  // namespace mobiwlan
