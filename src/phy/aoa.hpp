// aoa.hpp — Angle-of-Arrival estimation from CSI (§9 future work).
//
// The paper's classifier cannot detect a client walking a circle around the
// AP (constant distance, no ToF trend) and proposes augmenting the system
// with AoA. The AP's 3-antenna uniform linear array encodes the departure
// angle of each path in the phase progression across its elements
// (and by channel reciprocity the uplink arrival angle equals it): this
// module recovers the dominant angle with a beamscan over the array
// steering vectors, averaged across subcarriers and client chains.
#pragma once

#include "phy/csi.hpp"

namespace mobiwlan {

struct AoaEstimate {
  double angle_rad = 0.0;  ///< dominant angle in [0, pi] (ULA cone ambiguity)
  double peak_ratio = 1.0; ///< beamscan peak / mean — confidence proxy
};

/// Beamscan AoA: evaluates P(theta) = sum_{sc,rx} |a(theta)^H h_{sc,rx}|^2
/// over a grid of `grid_points` angles, where a(theta) is the lambda/2 ULA
/// steering vector across the AP's antennas. Returns the grid argmax.
AoaEstimate estimate_aoa(const CsiMatrix& csi, int grid_points = 181);

}  // namespace mobiwlan
