#include "phy/beamforming.hpp"

#include <cmath>
#include <stdexcept>

#include "util/matrix.hpp"
#include "util/units.hpp"

namespace mobiwlan {

namespace {

/// Channel row vector h for one (subcarrier, rx chain): h[i] = gain from TX
/// antenna i. Reception model: y = h^T x, so MRT weights are conj(h)/||h||.
std::vector<cplx> tx_vector(const CsiMatrix& csi, std::size_t sc, std::size_t rx) {
  std::vector<cplx> h(csi.n_tx());
  for (std::size_t tx = 0; tx < csi.n_tx(); ++tx) h[tx] = csi.at(tx, rx, sc);
  return h;
}

cplx dot_unconj(const std::vector<cplx>& a, const std::vector<cplx>& b) {
  cplx sum{};
  for (std::size_t i = 0; i < a.size(); ++i) sum += a[i] * b[i];
  return sum;
}

}  // namespace

double su_beamforming_gain_db(const CsiMatrix& current, const CsiMatrix& feedback) {
  if (current.n_tx() != feedback.n_tx() || current.n_rx() != feedback.n_rx() ||
      current.n_subcarriers() != feedback.n_subcarriers())
    throw std::invalid_argument("CSI dimension mismatch in su_beamforming_gain_db");

  double gain_sum = 0.0;
  std::size_t count = 0;
  const double n_tx = static_cast<double>(current.n_tx());
  for (std::size_t sc = 0; sc < current.n_subcarriers(); ++sc) {
    for (std::size_t rx = 0; rx < current.n_rx(); ++rx) {
      const auto h_now = tx_vector(current, sc, rx);
      auto w = tx_vector(feedback, sc, rx);
      const double wn = vector_norm(w);
      if (wn == 0.0) continue;
      for (auto& v : w) v = std::conj(v) / wn;  // MRT from fed-back CSI
      const double realized = std::norm(dot_unconj(h_now, w));
      const double h_pow = vector_norm(h_now) * vector_norm(h_now);
      if (h_pow == 0.0) continue;
      // Reference: the average single-antenna power h_pow / n_tx.
      gain_sum += realized / (h_pow / n_tx);
      ++count;
    }
  }
  if (count == 0) return 0.0;
  return linear_to_db(gain_sum / static_cast<double>(count));
}

MuMimoResult mu_mimo_zero_forcing(const std::vector<CsiMatrix>& current,
                                  const std::vector<CsiMatrix>& feedback,
                                  const std::vector<double>& snr0_db) {
  const std::size_t k_clients = current.size();
  if (feedback.size() != k_clients || snr0_db.size() != k_clients)
    throw std::invalid_argument("client count mismatch in mu_mimo_zero_forcing");
  if (k_clients == 0) return {};
  const std::size_t n_tx = current.front().n_tx();
  const std::size_t n_sc = current.front().n_subcarriers();
  if (k_clients > n_tx)
    throw std::invalid_argument("more clients than AP antennas");

  // Per-client noise power, anchored so that the client's band-average
  // single-antenna SNR (no precoding) equals snr0_db[k].
  std::vector<double> noise(k_clients);
  for (std::size_t k = 0; k < k_clients; ++k) {
    const double mean_pow = current[k].mean_power();  // avg |h|^2 per antenna
    noise[k] = mean_pow / db_to_linear(snr0_db[k]);
  }

  // Accumulate per-client capacity across subcarriers, then invert to an
  // effective SINR (same mapping as effective_snr_db).
  std::vector<double> cap_sum(k_clients, 0.0);
  const double power_share = 1.0 / static_cast<double>(k_clients);

  for (std::size_t sc = 0; sc < n_sc; ++sc) {
    // Stale channel matrix (rows = clients) drives the precoder.
    CMatrix h_stale(k_clients, n_tx);
    for (std::size_t k = 0; k < k_clients; ++k) {
      const auto row = tx_vector(feedback[k], sc, 0);
      for (std::size_t i = 0; i < n_tx; ++i) h_stale(k, i) = row[i];
    }
    CMatrix w(n_tx, k_clients);
    try {
      w = h_stale.pseudo_inverse();
    } catch (const std::domain_error&) {
      // Degenerate (rank-deficient) stale channel: fall back to matched
      // filtering, which never throws.
      w = h_stale.hermitian();
    }
    // Unit-norm columns with equal power split.
    for (std::size_t k = 0; k < k_clients; ++k) {
      double norm = 0.0;
      for (std::size_t i = 0; i < n_tx; ++i) norm += std::norm(w(i, k));
      norm = std::sqrt(norm);
      if (norm == 0.0) continue;
      for (std::size_t i = 0; i < n_tx; ++i) w(i, k) /= norm;
    }

    for (std::size_t k = 0; k < k_clients; ++k) {
      const auto h_now = tx_vector(current[k], sc, 0);
      double signal = 0.0;
      double interference = 0.0;
      for (std::size_t j = 0; j < k_clients; ++j) {
        cplx rx{};
        for (std::size_t i = 0; i < n_tx; ++i) rx += h_now[i] * w(i, j);
        const double p = power_share * std::norm(rx);
        if (j == k)
          signal = p;
        else
          interference += p;
      }
      const double sinr = signal / (interference + noise[k]);
      cap_sum[k] += std::log2(1.0 + sinr);
    }
  }

  MuMimoResult result;
  result.sinr_db.resize(k_clients);
  for (std::size_t k = 0; k < k_clients; ++k) {
    const double mean_cap = cap_sum[k] / static_cast<double>(n_sc);
    result.sinr_db[k] = linear_to_db(std::pow(2.0, mean_cap) - 1.0);
  }
  return result;
}

}  // namespace mobiwlan
