// beamforming.hpp — SU transmit beamforming and MU-MIMO zero-forcing.
//
// §6 of the paper: beamforming precodes packets using CSI fed back by the
// client; the feedback goes stale at a rate set by the client's mobility.
// This module computes the *realized* gain (SU) or per-client SINR (MU) when
// a precoder derived from stale CSI is applied to the channel that actually
// exists at transmit time — the quantity that decays as feedback ages.
#pragma once

#include <vector>

#include "phy/csi.hpp"

namespace mobiwlan {

/// Realized SU transmit-beamforming array gain (dB) when the AP beamforms
/// with weights computed from `feedback` CSI while the true channel is
/// `current`. Computed per subcarrier per receive chain with maximum-ratio
/// transmission weights, then averaged.
///
/// Fresh feedback -> 10*log10(n_tx) (4.8 dB with 3 antennas);
/// fully stale    -> 0 dB in expectation (a random beam).
double su_beamforming_gain_db(const CsiMatrix& current, const CsiMatrix& feedback);

/// Per-client result of a MU-MIMO transmission.
struct MuMimoResult {
  /// Post-precoding SINR (dB) per client, frequency-averaged via capacity.
  std::vector<double> sinr_db;
};

/// Zero-forcing MU-MIMO downlink to K single-antenna clients from an
/// n_tx-antenna AP (K <= n_tx).
///
/// `current[k]` / `feedback[k]` are client k's true and fed-back CSI
/// (n_tx x 1 x n_sc). The precoder is the column-normalized pseudo-inverse of
/// the stale channel matrix with equal per-client power split; each client's
/// noise floor is `noise_relative_db[k]` below... i.e. the single-antenna SNR
/// client k would see without precoding is `snr0_db[k]`.
MuMimoResult mu_mimo_zero_forcing(const std::vector<CsiMatrix>& current,
                                  const std::vector<CsiMatrix>& feedback,
                                  const std::vector<double>& snr0_db);

}  // namespace mobiwlan
