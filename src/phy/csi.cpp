#include "phy/csi.hpp"

namespace mobiwlan {

CsiMatrix::CsiMatrix(std::size_t n_tx, std::size_t n_rx, std::size_t n_subcarriers)
    : n_tx_(n_tx), n_rx_(n_rx), n_sc_(n_subcarriers), data_(n_tx * n_rx * n_subcarriers) {}

void CsiMatrix::resize(std::size_t n_tx, std::size_t n_rx,
                       std::size_t n_subcarriers) {
  n_tx_ = n_tx;
  n_rx_ = n_rx;
  n_sc_ = n_subcarriers;
  data_.assign(n_tx * n_rx * n_subcarriers, cplx{});
}

void CsiMatrix::resize_for_overwrite(std::size_t n_tx, std::size_t n_rx,
                                     std::size_t n_subcarriers) {
  n_tx_ = n_tx;
  n_rx_ = n_rx;
  n_sc_ = n_subcarriers;
  data_.resize(n_tx * n_rx * n_subcarriers);
}

std::vector<double> CsiMatrix::magnitudes(std::size_t tx, std::size_t rx) const {
  std::vector<double> out;
  magnitudes_into(tx, rx, out);
  return out;
}

void CsiMatrix::magnitudes_into(std::size_t tx, std::size_t rx,
                                std::vector<double>& out) const {
  out.resize(n_sc_);
  for (std::size_t sc = 0; sc < n_sc_; ++sc) out[sc] = std::abs(at(tx, rx, sc));
}

double CsiMatrix::mean_power() const {
  if (data_.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& v : data_) sum += std::norm(v);
  return sum / static_cast<double>(data_.size());
}

CMatrix CsiMatrix::subcarrier_matrix(std::size_t sc) const {
  CMatrix h(n_rx_, n_tx_);
  for (std::size_t tx = 0; tx < n_tx_; ++tx)
    for (std::size_t rx = 0; rx < n_rx_; ++rx) h(rx, tx) = at(tx, rx, sc);
  return h;
}

std::vector<cplx> CsiMatrix::subcarrier_gains(std::size_t sc) const {
  std::vector<cplx> out;
  out.reserve(n_tx_ * n_rx_);
  for (std::size_t tx = 0; tx < n_tx_; ++tx)
    for (std::size_t rx = 0; rx < n_rx_; ++rx) out.push_back(at(tx, rx, sc));
  return out;
}

double complex_correlation(const CsiMatrix& a, const CsiMatrix& b) {
  const auto& ra = a.raw();
  const auto& rb = b.raw();
  if (ra.size() != rb.size() || ra.empty()) return 0.0;
  cplx dot{};
  double na = 0.0;
  double nb = 0.0;
  for (std::size_t i = 0; i < ra.size(); ++i) {
    dot += std::conj(ra[i]) * rb[i];
    na += std::norm(ra[i]);
    nb += std::norm(rb[i]);
  }
  if (na <= 0.0 || nb <= 0.0) return 0.0;
  return std::abs(dot) / std::sqrt(na * nb);
}

}  // namespace mobiwlan
