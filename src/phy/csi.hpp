// csi.hpp — Channel State Information as exported by the AP firmware.
//
// The Atheros AR9390 exports, for each received packet, a matrix of complex
// channel gains: one per (transmit antenna, receive antenna, OFDM subcarrier)
// triple. On a 20 MHz 802.11n channel that is 52 data subcarriers (§2.3 of
// the paper). CsiMatrix is the in-memory form of that export; both the
// channel simulator (producer) and the mobility classifier / beamformers
// (consumers) speak this type.
#pragma once

#include <complex>
#include <cstddef>
#include <vector>

#include "util/matrix.hpp"

namespace mobiwlan {

/// Number of data subcarriers the chipset reports on a 20 MHz channel.
inline constexpr std::size_t kDefaultSubcarriers = 52;

/// Per-packet CSI export: complex gain for every TX antenna x RX antenna x
/// subcarrier. Row-major layout: index = (tx * n_rx + rx) * n_sc + sc.
class CsiMatrix {
 public:
  CsiMatrix() = default;
  CsiMatrix(std::size_t n_tx, std::size_t n_rx, std::size_t n_subcarriers);

  /// Re-dimensions the matrix and zero-fills it, reusing the existing
  /// storage when it is large enough (no allocation in steady-state loops
  /// that recycle one matrix).
  void resize(std::size_t n_tx, std::size_t n_rx, std::size_t n_subcarriers);

  /// Re-dimensions without the zero-fill — for producers that overwrite
  /// every entry (the batched synthesis kernel stores the accumulated CSI
  /// directly). Entries are unspecified until written.
  void resize_for_overwrite(std::size_t n_tx, std::size_t n_rx,
                            std::size_t n_subcarriers);

  std::size_t n_tx() const { return n_tx_; }
  std::size_t n_rx() const { return n_rx_; }
  std::size_t n_subcarriers() const { return n_sc_; }
  bool empty() const { return data_.empty(); }

  cplx& at(std::size_t tx, std::size_t rx, std::size_t sc) {
    return data_[(tx * n_rx_ + rx) * n_sc_ + sc];
  }
  const cplx& at(std::size_t tx, std::size_t rx, std::size_t sc) const {
    return data_[(tx * n_rx_ + rx) * n_sc_ + sc];
  }

  /// Channel gain magnitudes for one antenna pair across subcarriers.
  std::vector<double> magnitudes(std::size_t tx, std::size_t rx) const;

  /// Same, into a reusable buffer (resized to n_subcarriers): allocation-free
  /// in steady state. The scratch-buffer form the per-packet similarity
  /// pipeline uses.
  void magnitudes_into(std::size_t tx, std::size_t rx,
                       std::vector<double>& out) const;

  /// Mean |H|^2 over all entries — the wideband channel power, i.e. what RSSI
  /// aggregates over (up to the noise floor and quantization).
  double mean_power() const;

  /// The n_rx x n_tx channel matrix H for a single subcarrier, in the
  /// convention y = H x (rows = receive antennas). Used by the precoders.
  CMatrix subcarrier_matrix(std::size_t sc) const;

  /// Per-antenna-pair complex gains for one subcarrier, flattened tx-major.
  std::vector<cplx> subcarrier_gains(std::size_t sc) const;

  const std::vector<cplx>& raw() const { return data_; }
  std::vector<cplx>& raw() { return data_; }

 private:
  std::size_t n_tx_ = 0;
  std::size_t n_rx_ = 0;
  std::size_t n_sc_ = 0;
  std::vector<cplx> data_;
};

/// Normalized complex correlation |<a, b>| / (||a|| ||b||) over all entries:
/// 1 when the channels are identical up to a scalar, ~0 when independent.
/// Drives the intra-frame channel-aging model (§5).
double complex_correlation(const CsiMatrix& a, const CsiMatrix& b);

}  // namespace mobiwlan
