#include "phy/csi_feedback.hpp"

#include <algorithm>

namespace mobiwlan {

std::size_t feedback_report_bytes(const CsiFeedbackConfig& config) {
  const std::size_t bits = config.n_tx * config.n_rx * config.n_subcarriers *
                           2 * static_cast<std::size_t>(config.bits_per_component);
  return (bits + 7) / 8 + static_cast<std::size_t>(config.mac_header_bytes);
}

double feedback_exchange_airtime_s(const CsiFeedbackConfig& config) {
  const double report_s = 8.0 * static_cast<double>(feedback_report_bytes(config)) /
                          (config.feedback_rate_mbps * 1e6);
  return config.sounding_overhead_s + report_s;
}

double feedback_overhead_fraction(double period_s, const CsiFeedbackConfig& config) {
  if (period_s <= 0.0) return 1.0;
  return std::min(1.0, feedback_exchange_airtime_s(config) / period_s);
}

}  // namespace mobiwlan
