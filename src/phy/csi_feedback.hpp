// csi_feedback.hpp — cost model for explicit CSI feedback (§6).
//
// "The CSI feedback packet may consist of a real and imaginary value
// (quantized into up to 8 bits) for each subcarrier and transmit-receive
// antenna pair ... the feedback packet is typically transmitted at the lowest
// bit-rate, consuming significant channel airtime." This module turns a
// feedback period into the fraction of airtime lost to sounding + feedback,
// which is what penalizes short periods for static clients in Fig. 11(a).
#pragma once

#include <cstddef>

namespace mobiwlan {

struct CsiFeedbackConfig {
  std::size_t n_tx = 3;
  std::size_t n_rx = 1;                 ///< chains reported by the client
  std::size_t n_subcarriers = 52;
  int bits_per_component = 8;           ///< §6: "quantized into up to 8 bits"
  double feedback_rate_mbps = 6.5;      ///< lowest MCS
  double sounding_overhead_s = 80e-6;   ///< NDP announcement + NDP + SIFS gaps
  double mac_header_bytes = 40;
};

/// Bytes in one CSI feedback report.
std::size_t feedback_report_bytes(const CsiFeedbackConfig& config = {});

/// Airtime of one complete sounding + feedback exchange (seconds).
double feedback_exchange_airtime_s(const CsiFeedbackConfig& config = {});

/// Fraction of airtime consumed by feedback at the given period. Saturates
/// at 1 when the exchange itself takes longer than the period.
double feedback_overhead_fraction(double period_s,
                                  const CsiFeedbackConfig& config = {});

}  // namespace mobiwlan
