#include "phy/error_model.hpp"

#include <algorithm>
#include <cmath>

#include "util/units.hpp"

namespace mobiwlan {

namespace {

/// Gaussian Q-function.
double q_func(double x) { return 0.5 * std::erfc(x / std::sqrt(2.0)); }

/// Effective coding gain (dB) of the 802.11 convolutional code at rate r.
double coding_gain_db(double code_rate) {
  if (code_rate <= 0.5) return 5.5;
  if (code_rate <= 2.0 / 3.0) return 4.5;
  if (code_rate <= 0.75) return 4.0;
  return 3.25;  // 5/6
}

}  // namespace

double raw_ber(Modulation modulation, double snr_db) {
  const double snr = db_to_linear(snr_db);
  switch (modulation) {
    case Modulation::kBpsk:
      return q_func(std::sqrt(2.0 * snr));
    case Modulation::kQpsk:
      // Gray-coded QPSK has the same per-bit error rate as BPSK at equal Es/N0
      // per bit: Q(sqrt(Es/N0)) with Es split over two bits.
      return q_func(std::sqrt(snr));
    case Modulation::kQam16: {
      const double arg = std::sqrt(snr / 5.0);  // 3/(M-1) = 1/5
      return (3.0 / 4.0) * q_func(arg);
    }
    case Modulation::kQam64: {
      const double arg = std::sqrt(snr / 21.0);  // 3/(M-1) = 1/21
      return (7.0 / 12.0) * q_func(arg);
    }
  }
  return 0.5;
}

double coded_ber(Modulation modulation, double code_rate, double snr_db) {
  // Model the Viterbi-decoded BER as the uncoded BER at an SNR boosted by the
  // coding gain, squared (with a small constant) to approximate the steeper
  // coded waterfall: an uncoded 1e-3 maps to ~2e-6. Clamped so that coding
  // never makes things worse than the uncoded channel.
  const double boosted = snr_db + coding_gain_db(code_rate);
  const double b = raw_ber(modulation, boosted);
  return std::min(raw_ber(modulation, snr_db), 2.0 * b * b);
}

double per_stream_snr_db(const McsEntry& mcs_entry, double link_snr_db,
                         const ErrorModelConfig& config) {
  double snr = link_snr_db - config.implementation_loss_db;
  if (mcs_entry.streams > 1) {
    snr -= 10.0 * std::log10(static_cast<double>(mcs_entry.streams));
    snr -= config.stream_penalty_db;
  }
  return snr;
}

double per_from_snr(const McsEntry& mcs_entry, double snr_db, int payload_bytes,
                    const ErrorModelConfig& config) {
  const double stream_snr = per_stream_snr_db(mcs_entry, snr_db, config);
  const double ber = coded_ber(mcs_entry.modulation, mcs_entry.code_rate, stream_snr);
  const double bits = 8.0 * payload_bytes;
  // 1 - (1-ber)^bits, computed in log space for numerical stability.
  const double log_ok = bits * std::log1p(-std::min(ber, 1.0 - 1e-12));
  return std::clamp(1.0 - std::exp(log_ok), 0.0, 1.0);
}

double effective_snr_db(const CsiMatrix& csi, double wideband_snr_db) {
  if (csi.empty()) return wideband_snr_db;
  // Per-subcarrier channel power relative to the wideband mean, mapped through
  // Shannon capacity per subcarrier and inverted.
  const double mean_pow = csi.mean_power();
  if (mean_pow <= 0.0) return wideband_snr_db;
  const double wideband_lin = db_to_linear(wideband_snr_db);
  double cap_sum = 0.0;
  const std::size_t n_sc = csi.n_subcarriers();
  const std::size_t n_pairs = csi.n_tx() * csi.n_rx();
  for (std::size_t sc = 0; sc < n_sc; ++sc) {
    double pow_sc = 0.0;
    for (std::size_t tx = 0; tx < csi.n_tx(); ++tx)
      for (std::size_t rx = 0; rx < csi.n_rx(); ++rx)
        pow_sc += std::norm(csi.at(tx, rx, sc));
    pow_sc /= static_cast<double>(n_pairs);
    const double snr_sc = wideband_lin * pow_sc / mean_pow;
    cap_sum += std::log2(1.0 + snr_sc);
  }
  const double mean_cap = cap_sum / static_cast<double>(n_sc);
  const double eff_lin = std::pow(2.0, mean_cap) - 1.0;
  return linear_to_db(eff_lin);
}

double aged_snr_db(double snr_db, double decorrelation) {
  const double d = std::clamp(decorrelation, 0.0, 1.0 - 1e-9);
  const double snr = db_to_linear(snr_db);
  return linear_to_db((1.0 - d) / (1.0 / snr + d));
}

double per_with_aging(const McsEntry& mcs_entry, double snr_db, int payload_bytes,
                      double decorrelation, const ErrorModelConfig& config) {
  return per_from_snr(mcs_entry, aged_snr_db(snr_db, decorrelation),
                      payload_bytes, config);
}

double expected_throughput_mbps(const McsEntry& mcs_entry, double link_snr_db,
                                int payload_bytes, const ErrorModelConfig& config) {
  const double per = per_from_snr(mcs_entry, link_snr_db, payload_bytes, config);
  return mcs_entry.rate_mbps * (1.0 - per);
}

int best_mcs(double link_snr_db, int payload_bytes, int max_streams,
             const ErrorModelConfig& config) {
  int best = 0;
  double best_tput = -1.0;
  for (const auto& entry : mcs_table()) {
    if (entry.streams > max_streams) continue;
    const double tput =
        expected_throughput_mbps(entry, link_snr_db, payload_bytes, config);
    if (tput > best_tput) {
      best_tput = tput;
      best = entry.index;
    }
  }
  return best;
}

}  // namespace mobiwlan
