// error_model.hpp — SNR -> BER -> PER mapping for the 802.11n PHY.
//
// The MAC substrate needs, for every transmitted (sub)frame, the probability
// that it fails at a given bit-rate and channel state. We use the textbook
// AWGN bit-error-rate expressions per modulation, an effective coding gain
// per convolutional code rate, and an effective-SNR reduction for
// frequency-selective channels (the same idea as Halperin et al.'s ESNR,
// which the paper compares against).
#pragma once

#include "phy/csi.hpp"
#include "phy/mcs.hpp"

namespace mobiwlan {

struct ErrorModelConfig {
  /// SNR penalty per extra spatial stream (power split + stream separation).
  double stream_penalty_db = 3.0;
  /// Implementation loss vs. theory (filters, CFO, quantization).
  double implementation_loss_db = 1.5;
};

/// Uncoded AWGN bit error rate for a modulation at per-bit... per-symbol SNR
/// (linear treatment internally; argument in dB).
double raw_ber(Modulation modulation, double snr_db);

/// Coded BER: models convolutional coding as an SNR gain before the raw
/// BER mapping, with a steepening exponent to approximate the waterfall.
double coded_ber(Modulation modulation, double code_rate, double snr_db);

/// Packet error rate of `payload_bytes` at the given MCS and post-processing
/// per-stream SNR.
double per_from_snr(const McsEntry& mcs_entry, double snr_db, int payload_bytes,
                    const ErrorModelConfig& config = {});

/// Per-stream post-processing SNR for an MCS given the wideband link SNR:
/// subtracts stream power split, stream separation penalty, and
/// implementation loss.
double per_stream_snr_db(const McsEntry& mcs_entry, double link_snr_db,
                         const ErrorModelConfig& config = {});

/// Effective SNR of a frequency-selective channel: maps per-subcarrier SNRs
/// through Shannon capacity, averages, and inverts. Equal or lower than the
/// wideband (mean-power) SNR; equality on a flat channel.
double effective_snr_db(const CsiMatrix& csi, double wideband_snr_db);

/// PER after the channel aged for `decorrelation` in [0,1] since the
/// preamble estimate (0 = fresh, 1 = fully decorrelated). The receiver
/// equalizes with the stale estimate, so a fraction `d` of the signal power
/// turns into self-interference:
///     SINR = (1 - d) / (1/snr + d)
/// — an error floor that no SNR can overcome, which is exactly why long
/// A-MPDUs fail under mobility (§5) regardless of link quality.
double per_with_aging(const McsEntry& mcs_entry, double snr_db, int payload_bytes,
                      double decorrelation, const ErrorModelConfig& config = {});

/// The post-equalization SINR (dB) after the channel decorrelated by `d`
/// since the estimate: SINR = (1-d) / (1/snr + d).
double aged_snr_db(double snr_db, double decorrelation);

/// The MCS maximizing expected MAC throughput rate*(1-PER) at this SNR —
/// the oracle the paper's Fig. 8 uses ("optimal bit-rate").
int best_mcs(double link_snr_db, int payload_bytes, int max_streams,
             const ErrorModelConfig& config = {});

/// Expected MAC-layer throughput rate*(1-PER) in Mbps for an MCS at a SNR.
double expected_throughput_mbps(const McsEntry& mcs_entry, double link_snr_db,
                                int payload_bytes,
                                const ErrorModelConfig& config = {});

}  // namespace mobiwlan
