#include "phy/mcs.hpp"

#include <stdexcept>

namespace mobiwlan {

const std::vector<McsEntry>& mcs_table() {
  static const std::vector<McsEntry> table = {
      // index, streams, modulation, code rate, 40MHz LGI rate
      {0, 1, Modulation::kBpsk, 0.5, 13.5},
      {1, 1, Modulation::kQpsk, 0.5, 27.0},
      {2, 1, Modulation::kQpsk, 0.75, 40.5},
      {3, 1, Modulation::kQam16, 0.5, 54.0},
      {4, 1, Modulation::kQam16, 0.75, 81.0},
      {5, 1, Modulation::kQam64, 2.0 / 3.0, 108.0},
      {6, 1, Modulation::kQam64, 0.75, 121.5},
      {7, 1, Modulation::kQam64, 5.0 / 6.0, 135.0},
      {8, 2, Modulation::kBpsk, 0.5, 27.0},
      {9, 2, Modulation::kQpsk, 0.5, 54.0},
      {10, 2, Modulation::kQpsk, 0.75, 81.0},
      {11, 2, Modulation::kQam16, 0.5, 108.0},
      {12, 2, Modulation::kQam16, 0.75, 162.0},
      {13, 2, Modulation::kQam64, 2.0 / 3.0, 216.0},
      {14, 2, Modulation::kQam64, 0.75, 243.0},
      {15, 2, Modulation::kQam64, 5.0 / 6.0, 270.0},
  };
  return table;
}

const McsEntry& mcs(int index) {
  const auto& table = mcs_table();
  if (index < 0 || static_cast<std::size_t>(index) >= table.size())
    throw std::out_of_range("MCS index out of range");
  return table[static_cast<std::size_t>(index)];
}

std::size_t mcs_count() { return mcs_table().size(); }

int max_mcs_for_streams(int streams) { return streams >= 2 ? 15 : 7; }

const std::vector<int>& atheros_rate_ladder(int max_streams) {
  // §4.1: "The Atheros RA skips the MCS 5-7 for single stream and MCS 8 for
  // double stream to maintain PER monotonicity." Low dual-stream MCS whose
  // rates duplicate single-stream entries (9 = MCS3's 54 Mbps, 10 = MCS4's
  // 81 Mbps) are skipped for the same reason: the ladder must be strictly
  // increasing in rate for the cross-rate PER update to be sound.
  static const std::vector<int> single = {0, 1, 2, 3, 4, 5, 6, 7};
  static const std::vector<int> dual = {0, 1, 2, 3, 4, 11, 12, 13, 14, 15};
  return max_streams >= 2 ? dual : single;
}

}  // namespace mobiwlan
