// mcs.hpp — the 802.11n modulation-and-coding-scheme table.
//
// The testbed runs 802.11n at 40 MHz with up to two spatial streams (the
// Galaxy S5 has two antennas), i.e. MCS 0-15. Data rates here are the long-GI
// 40 MHz values; the error model attaches SNR behaviour to each entry.
#pragma once

#include <cstddef>
#include <string_view>
#include <vector>

namespace mobiwlan {

enum class Modulation { kBpsk, kQpsk, kQam16, kQam64 };

constexpr std::string_view to_string(Modulation m) {
  switch (m) {
    case Modulation::kBpsk: return "BPSK";
    case Modulation::kQpsk: return "QPSK";
    case Modulation::kQam16: return "16-QAM";
    case Modulation::kQam64: return "64-QAM";
  }
  return "?";
}

/// Bits per modulation symbol.
constexpr int bits_per_symbol(Modulation m) {
  switch (m) {
    case Modulation::kBpsk: return 1;
    case Modulation::kQpsk: return 2;
    case Modulation::kQam16: return 4;
    case Modulation::kQam64: return 6;
  }
  return 1;
}

struct McsEntry {
  int index;             ///< MCS 0-15
  int streams;           ///< spatial streams (1 or 2)
  Modulation modulation;
  double code_rate;      ///< 1/2, 2/3, 3/4, 5/6
  double rate_mbps;      ///< PHY data rate, 40 MHz, long GI
};

/// The full MCS 0-15 table.
const std::vector<McsEntry>& mcs_table();

/// Entry by MCS index. Requires 0 <= index <= 15.
const McsEntry& mcs(int index);

/// Number of entries (16).
std::size_t mcs_count();

/// Highest MCS index usable with the given stream budget (7 for 1 stream,
/// 15 for 2 streams).
int max_mcs_for_streams(int streams);

/// The Atheros RA rate ladder (§4.1): to preserve PER monotonicity across the
/// probing order, the driver skips single-stream MCS 5-7 once two-stream
/// rates are available, and skips MCS 8 (whose rate duplicates MCS 3).
/// Returns indices in increasing-rate order.
const std::vector<int>& atheros_rate_ladder(int max_streams);

}  // namespace mobiwlan
