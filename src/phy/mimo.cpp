#include "phy/mimo.hpp"

#include <cmath>
#include <stdexcept>

#include "util/units.hpp"

namespace mobiwlan {

std::vector<double> zf_stream_sinrs_db(const CMatrix& h, int n_streams,
                                       double snr_db) {
  const std::size_t n_rx = h.rows();
  const std::size_t n_tx = h.cols();
  if (n_streams < 1 ||
      static_cast<std::size_t>(n_streams) > std::min(n_rx, n_tx))
    throw std::invalid_argument("invalid stream count for channel size");

  // Effective channel: the first n_streams transmit antennas, equal power
  // split 1/n_streams. Normalize against the mean single-antenna gain so
  // that snr_db remains the single-stream full-power reference.
  CMatrix heff(n_rx, static_cast<std::size_t>(n_streams));
  double mean_gain = 0.0;
  for (std::size_t r = 0; r < n_rx; ++r)
    for (std::size_t c = 0; c < n_tx; ++c) mean_gain += std::norm(h(r, c));
  mean_gain /= static_cast<double>(n_rx * n_tx);
  if (mean_gain <= 0.0) {
    return std::vector<double>(static_cast<std::size_t>(n_streams), -300.0);
  }
  const double scale = 1.0 / std::sqrt(mean_gain);
  for (std::size_t r = 0; r < n_rx; ++r)
    for (std::size_t s = 0; s < static_cast<std::size_t>(n_streams); ++s)
      heff(r, s) = h(r, s) * scale;

  // ZF post-processing SNR of stream k: rho / (n_streams * [(H^H H)^-1]_kk).
  const double rho = db_to_linear(snr_db);
  std::vector<double> out;
  try {
    const CMatrix gram = heff.hermitian() * heff;
    const CMatrix inv = gram.inverse();
    for (int k = 0; k < n_streams; ++k) {
      const double diag =
          std::abs(inv(static_cast<std::size_t>(k), static_cast<std::size_t>(k)));
      const double sinr = rho / (static_cast<double>(n_streams) *
                                 std::max(diag, 1e-12));
      out.push_back(linear_to_db(sinr));
    }
  } catch (const std::domain_error&) {
    out.assign(static_cast<std::size_t>(n_streams), -300.0);  // rank deficient
  }
  return out;
}

std::vector<double> zf_effective_stream_sinrs_db(const CsiMatrix& csi,
                                                 int n_streams, double snr_db) {
  std::vector<double> cap_sums(static_cast<std::size_t>(n_streams), 0.0);
  const std::size_t n_sc = csi.n_subcarriers();
  for (std::size_t sc = 0; sc < n_sc; ++sc) {
    const auto sinrs = zf_stream_sinrs_db(csi.subcarrier_matrix(sc), n_streams,
                                          snr_db);
    for (int k = 0; k < n_streams; ++k)
      cap_sums[static_cast<std::size_t>(k)] +=
          std::log2(1.0 + db_to_linear(sinrs[static_cast<std::size_t>(k)]));
  }
  std::vector<double> out;
  for (int k = 0; k < n_streams; ++k) {
    const double mean_cap = cap_sums[static_cast<std::size_t>(k)] /
                            static_cast<double>(n_sc);
    out.push_back(linear_to_db(std::pow(2.0, mean_cap) - 1.0));
  }
  return out;
}

double stream_separation_penalty_db(const CsiMatrix& csi, int n_streams,
                                    double snr_db) {
  const auto sinrs = zf_effective_stream_sinrs_db(csi, n_streams, snr_db);
  double worst = sinrs.front();
  for (double s : sinrs) worst = std::min(worst, s);
  // Ideal per-stream SNR with only the power split applied.
  const double ideal = snr_db - 10.0 * std::log10(static_cast<double>(n_streams));
  return ideal - worst;
}

}  // namespace mobiwlan
