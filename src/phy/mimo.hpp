// mimo.hpp — per-stream post-receiver SINRs for spatial multiplexing.
//
// The error model charges dual-stream MCS a fixed penalty (power split +
// stream separation) on top of the wideband SNR. This module computes the
// *actual* per-stream SINRs of a linear zero-forcing receiver from the
// channel matrices, per subcarrier — used to validate that approximation
// (tests/phy/mimo_test.cpp) and available to downstream users who want
// condition-number-aware rate selection.
#pragma once

#include <vector>

#include "phy/csi.hpp"

namespace mobiwlan {

/// Per-stream post-ZF SINRs (dB) for an n-stream transmission through the
/// channel of one subcarrier. The transmitter splits power equally across
/// `n_streams` (mapped to the first antennas); the receiver zero-forces.
/// `snr_db` is the single-stream, full-power wideband SNR reference.
/// Requires n_streams <= min(n_tx, n_rx) of the subcarrier matrix.
std::vector<double> zf_stream_sinrs_db(const CMatrix& h, int n_streams,
                                       double snr_db);

/// Frequency-averaged (capacity-mapped) per-stream effective SINRs across
/// all subcarriers of a CSI matrix.
std::vector<double> zf_effective_stream_sinrs_db(const CsiMatrix& csi,
                                                 int n_streams, double snr_db);

/// The dB gap between the ideal per-stream SNR (power split only) and the
/// worst actual ZF stream — i.e. the channel's stream-separation penalty.
/// This is the quantity the error model's `stream_penalty_db` approximates.
double stream_separation_penalty_db(const CsiMatrix& csi, int n_streams,
                                    double snr_db);

}  // namespace mobiwlan
