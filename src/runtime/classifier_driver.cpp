#include "runtime/classifier_driver.hpp"

#include "chan/channel_batch.hpp"

namespace mobiwlan::runtime {

void run_classifier(const Scenario& s, double duration_s, double warmup_s,
                    const std::function<void(double, MobilityMode)>& on_second,
                    MobilityClassifier::Config cfg) {
  MobilityClassifier clf(cfg);
  // The CSI cadence runs through the batched engine (single-link batch):
  // identical draw order to csi_at_into, so trial output is unchanged, but
  // the synthesis path is the vectorized one. Scratch and matrix are reused
  // across the whole run — no heap allocation after the first sample.
  ChannelBatch batch;
  batch.add_link(s.channel.get());
  ChannelBatch::Scratch scratch;
  CsiMatrix csi;
  double next_csi = 0.0;
  double next_second = warmup_s;
  for (double t = 0.0; t < duration_s; t += cfg.tof_period_s) {
    if (t >= next_csi - 1e-9) {
      batch.csi_into(0, t, csi, scratch);
      clf.on_csi(t, csi);
      next_csi += cfg.csi_period_s;
    }
    clf.on_tof(t, s.channel->tof_cycles(t));
    if (t >= next_second) {
      on_second(t, clf.mode());
      next_second += 1.0;
    }
  }
}

void run_classifier_from_source(
    trace::ObservableSource& src, std::uint32_t unit, double duration_s,
    double warmup_s,
    const std::function<void(double, std::optional<MobilityMode>)>& on_second,
    MobilityClassifier::Config cfg) {
  using trace::StreamKind;
  src.require({StreamKind::kCsi, StreamKind::kTof}, "classifier trial");
  MobilityClassifier clf(cfg);
  CsiMatrix csi;
  double next_csi = 0.0;
  double next_second = warmup_s;
  for (double t = 0.0; t < duration_s; t += cfg.tof_period_s) {
    if (t >= next_csi - 1e-9) {
      if (src.csi(unit, t, csi)) clf.on_csi(t, csi);
      next_csi += cfg.csi_period_s;
    }
    if (auto tof = src.tof_cycles(unit, t)) clf.on_tof(t, *tof);
    if (t >= next_second) {
      on_second(t, clf.decision(t));
      next_second += 1.0;
    }
  }
}

}  // namespace mobiwlan::runtime
