#include "runtime/classifier_driver.hpp"

namespace mobiwlan::runtime {

void run_classifier(const Scenario& s, double duration_s, double warmup_s,
                    const std::function<void(double, MobilityMode)>& on_second,
                    MobilityClassifier::Config cfg) {
  MobilityClassifier clf(cfg);
  // Reused across the whole run: after the first CSI sample the loop performs
  // no heap allocation (same draw order as the csi_at() convenience wrapper).
  WirelessChannel::PathScratch scratch;
  CsiMatrix csi;
  double next_csi = 0.0;
  double next_second = warmup_s;
  for (double t = 0.0; t < duration_s; t += cfg.tof_period_s) {
    if (t >= next_csi - 1e-9) {
      s.channel->csi_at_into(t, csi, scratch);
      clf.on_csi(t, csi);
      next_csi += cfg.csi_period_s;
    }
    clf.on_tof(t, s.channel->tof_cycles(t));
    if (t >= next_second) {
      on_second(t, clf.mode());
      next_second += 1.0;
    }
  }
}

}  // namespace mobiwlan::runtime
