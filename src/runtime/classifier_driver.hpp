// classifier_driver.hpp — the standard classifier-over-scenario trial loop.
//
// Every classification bench drives a MobilityClassifier over a scenario at
// the paper's measurement cadences (CSI every cfg.csi_period_s, ToF every
// cfg.tof_period_s) and samples the decision once per second. That cadence
// logic used to be duplicated inline in every bench binary via
// bench_common.hpp; it lives here, once, so benches and the unified driver
// share a single definition of what "one trial" means.
#pragma once

#include <functional>
#include <optional>

#include "chan/scenario.hpp"
#include "core/mobility_classifier.hpp"
#include "trace/source.hpp"

namespace mobiwlan::runtime {

/// Drives a classifier over `s` for `duration_s`, invoking
/// `on_second(t, mode)` once per second after `warmup_s`.
void run_classifier(const Scenario& s, double duration_s, double warmup_s,
                    const std::function<void(double, MobilityMode)>& on_second,
                    MobilityClassifier::Config cfg = {});

/// The same trial loop over any ObservableSource (live, recording tee, or
/// trace replay) at the given unit. Reads the source cannot serve simply
/// never reach the classifier, and `on_second` receives decision(t) — which
/// decays to nullopt across gaps (hold-then-decay, never interpolation).
void run_classifier_from_source(
    trace::ObservableSource& src, std::uint32_t unit, double duration_s,
    double warmup_s,
    const std::function<void(double, std::optional<MobilityMode>)>& on_second,
    MobilityClassifier::Config cfg = {});

}  // namespace mobiwlan::runtime
