#include "runtime/experiment.hpp"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <exception>
#include <mutex>

namespace mobiwlan::runtime {

namespace {
using Clock = std::chrono::steady_clock;

double seconds_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}
}  // namespace

Experiment::Experiment(ThreadPool& pool, std::uint64_t master_seed,
                       BenchReport* report)
    : pool_(pool), master_(master_seed), report_(report) {
  if (report_) report_->workers = pool_.size();
}

std::vector<std::uint64_t> Experiment::reserve_seeds(std::size_t count) {
  std::vector<std::uint64_t> seeds;
  seeds.reserve(count);
  for (std::size_t i = 0; i < count; ++i)
    seeds.push_back(master_.stream(next_stream_++).seed());
  return seeds;
}

void Experiment::run_indexed(std::size_t count,
                             const std::function<void(Trial&)>& body) {
  const std::uint64_t base_stream = next_stream_;
  next_stream_ += count;
  if (count == 0) return;

  // One shared context per fan-out: each queued task captures only a
  // pointer to it plus its index, so the whole batch enqueues through
  // TaskFn's inline buffer (no per-job heap allocation) and post_many pays
  // the queue lock and the worker wakeup once.
  struct Ctx {
    const std::function<void(Trial&)>* body;
    Rng* master;
    std::uint64_t base_stream;
    Clock::time_point submitted;
    std::vector<JobTiming> timings;  // each job writes only its own slot
    std::mutex mu;
    std::condition_variable done_cv;
    std::size_t remaining;
    std::exception_ptr first_error;
  } ctx;
  ctx.body = &body;
  ctx.master = &master_;
  ctx.base_stream = base_stream;
  ctx.timings.resize(count);
  ctx.remaining = count;
  ctx.submitted = Clock::now();

  pool_.post_many(count, [&ctx](std::size_t i) {
    return TaskFn([&ctx, i] {
      const Clock::time_point started = Clock::now();
      const std::uint64_t stream = ctx.base_stream + i;
      Trial trial{i, stream, ctx.master->stream(stream)};
      std::exception_ptr error;
      try {
        (*ctx.body)(trial);
      } catch (...) {
        error = std::current_exception();
      }
      const Clock::time_point finished = Clock::now();
      ctx.timings[i] =
          JobTiming{i, stream, seconds_between(ctx.submitted, started),
                    seconds_between(started, finished),
                    ThreadPool::current_worker()};
      std::lock_guard<std::mutex> lock(ctx.mu);
      if (error && !ctx.first_error) ctx.first_error = error;
      // Last job notifies under the lock: ctx lives on this frame and the
      // waiter may return as soon as the predicate is observable.
      if (--ctx.remaining == 0) ctx.done_cv.notify_all();
    });
  });

  {
    std::unique_lock<std::mutex> lock(ctx.mu);
    ctx.done_cv.wait(lock, [&] { return ctx.remaining == 0; });
  }

  if (report_)
    report_->jobs.insert(report_->jobs.end(), ctx.timings.begin(),
                         ctx.timings.end());
  if (ctx.first_error) std::rethrow_exception(ctx.first_error);
}

void Experiment::shard(std::size_t count, std::size_t grain,
                       const std::function<void(std::size_t, std::size_t,
                                                Rng&)>& fn) {
  if (count == 0) return;
  grain = std::max<std::size_t>(1, grain);
  const std::size_t n_chunks = (count + grain - 1) / grain;
  // Streams are reserved per chunk ordinal before any chunk runs, so the
  // experiment's stream accounting (and every chunk's generator) is a pure
  // function of (count, grain) — identical on any pool size.
  const std::uint64_t base_stream = next_stream_;
  next_stream_ += n_chunks;
  pool_.parallel_for(
      count, grain,
      [&](std::size_t /*slot*/, std::size_t begin, std::size_t end) {
        const std::size_t chunk = begin / grain;
        Rng rng = master_.stream(base_stream + chunk);
        fn(begin, end, rng);
      });
}

}  // namespace mobiwlan::runtime
