#include "runtime/experiment.hpp"

#include <chrono>
#include <condition_variable>
#include <exception>
#include <mutex>

namespace mobiwlan::runtime {

namespace {
using Clock = std::chrono::steady_clock;

double seconds_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}
}  // namespace

Experiment::Experiment(ThreadPool& pool, std::uint64_t master_seed,
                       BenchReport* report)
    : pool_(pool), master_(master_seed), report_(report) {
  if (report_) report_->workers = pool_.size();
}

std::vector<std::uint64_t> Experiment::reserve_seeds(std::size_t count) {
  std::vector<std::uint64_t> seeds;
  seeds.reserve(count);
  for (std::size_t i = 0; i < count; ++i)
    seeds.push_back(master_.stream(next_stream_++).seed());
  return seeds;
}

void Experiment::run_indexed(std::size_t count,
                             const std::function<void(Trial&)>& body) {
  const std::uint64_t base_stream = next_stream_;
  next_stream_ += count;
  if (count == 0) return;

  // Each job writes only its own slot; no lock needed for timings.
  std::vector<JobTiming> timings(count);

  std::mutex mu;
  std::condition_variable done_cv;
  std::size_t remaining = count;
  std::exception_ptr first_error;

  for (std::size_t i = 0; i < count; ++i) {
    const std::uint64_t stream = base_stream + i;
    const Clock::time_point submitted = Clock::now();
    pool_.post([&, i, stream, submitted] {
      const Clock::time_point started = Clock::now();
      Trial trial{i, stream, master_.stream(stream)};
      std::exception_ptr error;
      try {
        body(trial);
      } catch (...) {
        error = std::current_exception();
      }
      const Clock::time_point finished = Clock::now();
      timings[i] = JobTiming{i, stream, seconds_between(submitted, started),
                             seconds_between(started, finished),
                             ThreadPool::current_worker()};
      std::lock_guard<std::mutex> lock(mu);
      if (error && !first_error) first_error = error;
      if (--remaining == 0) done_cv.notify_all();
    });
  }

  {
    std::unique_lock<std::mutex> lock(mu);
    done_cv.wait(lock, [&] { return remaining == 0; });
  }

  if (report_)
    report_->jobs.insert(report_->jobs.end(), timings.begin(), timings.end());
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace mobiwlan::runtime
