// experiment.hpp — deterministic parallel trial runner.
//
// A bench is a sequence of map() calls, each fanning `count` independent
// trials out over a ThreadPool. Determinism is a construction property, not
// a scheduling one:
//
//   * every trial draws from Rng(splitmix64(master_seed ^ stream_id)) where
//     stream_id is a counter assigned in submission order — never from
//     thread identity, pool size, or execution order;
//   * results land in a slot indexed by trial id and are aggregated in that
//     order after all trials complete.
//
// Together these make bench output bit-identical for --jobs 1 and --jobs N.
// See DESIGN.md ("Runtime layer: the determinism contract").
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <utility>
#include <vector>

#include "runtime/report.hpp"
#include "runtime/thread_pool.hpp"
#include "util/rng.hpp"

namespace mobiwlan::runtime {

/// Master seed shared by every bench; change to re-draw every "location".
inline constexpr std::uint64_t kMasterSeed = 20140204;  // CoNEXT'14

/// Handed to each trial body: its position and its private generator.
struct Trial {
  std::size_t index;     ///< position within this map() call
  std::uint64_t stream;  ///< global stream id (unique across the experiment)
  Rng rng;               ///< master.stream(stream): order-independent seed
};

/// Shards independent trials across a thread pool, deterministically.
class Experiment {
 public:
  /// `report`, when given, accrues per-job timing and the worker count.
  Experiment(ThreadPool& pool, std::uint64_t master_seed,
             BenchReport* report = nullptr);

  std::uint64_t master_seed() const { return master_.seed(); }
  ThreadPool& pool() { return pool_; }

  /// Runs `count` independent trials of `fn` on the pool and returns their
  /// results in trial-index order. Blocks until all trials finish; the first
  /// exception a trial throws is rethrown here (after every trial has been
  /// given the chance to run to completion).
  template <typename Result>
  std::vector<Result> map(std::size_t count,
                          const std::function<Result(Trial&)>& fn) {
    std::vector<std::optional<Result>> slots(count);
    run_indexed(count,
                [&](Trial& trial) { slots[trial.index].emplace(fn(trial)); });
    std::vector<Result> out;
    out.reserve(count);
    for (auto& slot : slots) out.push_back(std::move(*slot));
    return out;
  }

  /// Shards the index range [0, count) across the pool in fixed chunks of
  /// `grain`, calling `fn(begin, end, rng)` once per chunk. Each chunk gets
  /// its own substream keyed by chunk ordinal — stream accounting depends
  /// only on (count, grain), never on the pool size or claim order, so a
  /// body that draws from the handed rng and writes only [begin, end) is
  /// bit-identical for --jobs 1 and --jobs N. Use for splitting one big
  /// trace/batch *within* a trial-sized unit of work (map() shards across
  /// trials; shard() shards across links inside one pass).
  void shard(std::size_t count, std::size_t grain,
             const std::function<void(std::size_t begin, std::size_t end,
                                      Rng& rng)>& fn);

  /// Reserves `count` stream ids and returns their derived seeds. Use when
  /// several trials must replay the *identical* stochastic world (e.g. five
  /// RA schemes over the same channel realization): derive one seed per
  /// world here, then pass it to each trial through the closure.
  std::vector<std::uint64_t> reserve_seeds(std::size_t count);

  /// Stream ids consumed so far (next map() starts here).
  std::uint64_t next_stream() const { return next_stream_; }

 private:
  void run_indexed(std::size_t count, const std::function<void(Trial&)>& body);

  ThreadPool& pool_;
  Rng master_;
  std::uint64_t next_stream_ = 0;
  BenchReport* report_;
};

}  // namespace mobiwlan::runtime
