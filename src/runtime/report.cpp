#include "runtime/report.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace mobiwlan::runtime {

void BenchReport::add_metadata(std::string key, std::string value) {
  metadata.emplace_back(std::move(key), std::move(value));
}

void BenchReport::add_metric(std::string key, double value) {
  metrics.emplace_back(std::move(key), value);
}

double BenchReport::total_cpu_s() const {
  double sum = 0.0;
  for (const auto& j : jobs) sum += j.run_s;
  return sum;
}

double BenchReport::mean_queue_wait_s() const {
  if (jobs.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& j : jobs) sum += j.queue_wait_s;
  return sum / static_cast<double>(jobs.size());
}

double BenchReport::worker_utilization() const {
  if (wall_s <= 0.0 || workers == 0) return 0.0;
  return total_cpu_s() / (wall_s * static_cast<double>(workers));
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_double(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[40];
  // Integral values print as plain integers: %g would render counters like
  // 100000 as "1e+05", which round-trips but reads as (and diffs like) a
  // lossy float. Every exactly-representable integer stays below 2^53.
  if (v == std::floor(v) && std::abs(v) <= 9007199254740992.0) {
    std::snprintf(buf, sizeof buf, "%.0f", v);
    return buf;
  }
  // Shortest %g form that round-trips: equal doubles -> identical bytes.
  for (int precision = 1; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof buf, "%.*g", precision, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

namespace {

void append_string_map(
    std::ostringstream& os, const char* indent,
    const std::vector<std::pair<std::string, std::string>>& kv) {
  os << "{";
  for (std::size_t i = 0; i < kv.size(); ++i) {
    os << (i ? "," : "") << "\n" << indent << "  \"" << json_escape(kv[i].first)
       << "\": \"" << json_escape(kv[i].second) << "\"";
  }
  if (!kv.empty()) os << "\n" << indent;
  os << "}";
}

void append_metric_map(std::ostringstream& os, const char* indent,
                       const std::vector<std::pair<std::string, double>>& kv) {
  os << "{";
  for (std::size_t i = 0; i < kv.size(); ++i) {
    os << (i ? "," : "") << "\n" << indent << "  \"" << json_escape(kv[i].first)
       << "\": " << json_double(kv[i].second);
  }
  if (!kv.empty()) os << "\n" << indent;
  os << "}";
}

// The whole timing object goes on ONE line so `grep -v '"timing":'` strips
// every nondeterministic byte of the document.
void append_bench_timing(std::ostringstream& os, const BenchReport& b,
                         bool include_job_timing) {
  os << "\"timing\": {\"workers\": " << b.workers
     << ", \"wall_s\": " << json_double(b.wall_s)
     << ", \"cpu_s\": " << json_double(b.total_cpu_s())
     << ", \"utilization\": " << json_double(b.worker_utilization())
     << ", \"mean_queue_wait_s\": " << json_double(b.mean_queue_wait_s())
     << ", \"jobs\": " << b.jobs.size();
  if (include_job_timing) {
    os << ", \"per_job\": [";
    for (std::size_t i = 0; i < b.jobs.size(); ++i) {
      const JobTiming& j = b.jobs[i];
      os << (i ? ", " : "") << "{\"id\": " << j.job_id << ", \"stream\": "
         << j.stream << ", \"queue_wait_s\": " << json_double(j.queue_wait_s)
         << ", \"run_s\": " << json_double(j.run_s) << ", \"worker\": "
         << j.worker << "}";
    }
    os << "]";
  }
  os << "}";
}

}  // namespace

std::string RunReport::to_json(bool include_job_timing) const {
  std::ostringstream os;
  os << "{\n  \"schema\": \"mobiwlan-bench/1\",\n  \"seed\": " << master_seed
     << ",\n  \"benches\": [";
  for (std::size_t bi = 0; bi < benches.size(); ++bi) {
    const BenchReport& b = benches[bi];
    os << (bi ? "," : "") << "\n    {\n      \"name\": \""
       << json_escape(b.name) << "\",\n      \"description\": \""
       << json_escape(b.description) << "\",\n      \"metadata\": ";
    append_string_map(os, "      ", b.metadata);
    os << ",\n      \"metrics\": ";
    append_metric_map(os, "      ", b.metrics);
    os << ",\n      \"text\": \"" << json_escape(b.text) << "\",\n      ";
    append_bench_timing(os, b, include_job_timing);
    os << "\n    }";
  }
  if (!benches.empty()) os << "\n  ";
  os << "],\n  \"timing\": {\"workers\": " << workers
     << ", \"wall_s\": " << json_double(wall_s) << "}\n}\n";
  return os.str();
}

}  // namespace mobiwlan::runtime
