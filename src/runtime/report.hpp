// report.hpp — structured run reports for the unified bench driver.
//
// Every mobiwlan-bench invocation produces a RunReport: per-bench metrics
// (the numbers a figure is made of), the rendered ASCII tables, scenario
// metadata, and per-job scheduling telemetry (queue wait, run time, worker).
// The JSON serialization keeps all nondeterministic timing under `"timing"`
// keys, each emitted on a single line, so two runs of the same seed can be
// compared byte-for-byte with `grep -v '"timing":'` regardless of worker
// count — the check `ci/check.sh` and the determinism tests rely on.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace mobiwlan::runtime {

/// Scheduling telemetry for one experiment job.
struct JobTiming {
  std::size_t job_id = 0;       ///< index in submission (= aggregation) order
  std::uint64_t stream = 0;     ///< rng stream id the job was seeded from
  double queue_wait_s = 0.0;    ///< submit -> first instruction on a worker
  double run_s = 0.0;           ///< job body wall time
  int worker = -1;              ///< pool worker that ran it
};

/// Everything one bench produced: deterministic results plus timing.
struct BenchReport {
  std::string name;
  std::string description;

  /// Scenario metadata, in insertion order (trial counts, durations, ...).
  std::vector<std::pair<std::string, std::string>> metadata;
  /// Named result values in insertion order — the deterministic payload.
  std::vector<std::pair<std::string, double>> metrics;
  /// Rendered ASCII tables, as the standalone binaries printed them.
  std::string text;

  /// Per-job telemetry in job-id order.
  std::vector<JobTiming> jobs;
  double wall_s = 0.0;
  std::size_t workers = 0;

  void add_metadata(std::string key, std::string value);
  void add_metric(std::string key, double value);

  /// Sum of per-job run times (the work the pool actually executed).
  double total_cpu_s() const;
  double mean_queue_wait_s() const;
  /// total_cpu / (wall * workers): 1.0 means every worker was busy the
  /// whole bench; low values mean jobs were too few or too uneven.
  double worker_utilization() const;
};

/// A whole driver invocation: shared seed, per-bench reports, run timing.
struct RunReport {
  std::uint64_t master_seed = 0;
  std::vector<BenchReport> benches;
  double wall_s = 0.0;
  std::size_t workers = 0;

  /// Serializes to JSON. Set `include_job_timing` false to drop the per-job
  /// arrays (the rest of the timing summary is always emitted).
  std::string to_json(bool include_job_timing = true) const;
};

/// Escapes a string for embedding in a JSON document (quotes not included).
std::string json_escape(const std::string& s);

/// Shortest round-trip decimal form of a double ("%.17g" trimmed), so equal
/// doubles always serialize to identical bytes.
std::string json_double(double v);

}  // namespace mobiwlan::runtime
