// spsc_ring.hpp — bounded wait-free single-producer/single-consumer ring.
//
// The concurrency primitive under the campus handover mailbox
// (src/campus/mailbox.hpp): a classic Lamport queue where the producer owns
// the tail, the consumer owns the head, and one release/acquire pair per
// operation is the entire synchronization story. It lives in runtime/ next
// to the thread pool because it is the second half of the epoch-barrier
// discipline: within a parallel phase the rings carry messages between
// workers without locks, and the barrier at the end of the phase
// (ThreadPool::parallel_for returning) provides the cross-phase
// happens-before for everything the rings don't.
//
// Capacity is a hard bound: try_push on a full ring fails instead of
// blocking, so back-pressure surfaces as a boolean the caller must handle,
// never as a deadlock.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace mobiwlan::runtime {

/// Exactly one thread may call try_push and one thread may call try_pop at
/// any time (they may be different threads, unsynchronized). Capacity is
/// rounded up to a power of two; the ring never allocates after
/// construction.
template <typename T>
class SpscRing {
 public:
  explicit SpscRing(std::size_t min_capacity) {
    std::size_t cap = 1;
    while (cap < min_capacity) cap <<= 1;
    slots_.resize(cap);
    mask_ = cap - 1;
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  std::size_t capacity() const { return slots_.size(); }

  /// Producer side. The value is moved only on success; on a full ring the
  /// caller keeps it and decides what back-pressure means.
  bool try_push(T& v) {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - head_.load(std::memory_order_acquire) >= slots_.size())
      return false;  // full
    slots_[tail & mask_] = std::move(v);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side. Returns false when the ring is empty.
  bool try_pop(T& out) {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_.load(std::memory_order_acquire)) return false;  // empty
    out = std::move(slots_[head & mask_]);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Snapshot occupancy. Exact when the producer is quiescent (the
  /// epoch-barrier case); a conservative estimate mid-traffic.
  std::size_t size() const {
    const std::uint64_t tail = tail_.load(std::memory_order_acquire);
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    return static_cast<std::size_t>(tail - head);
  }

 private:
  std::vector<T> slots_;
  std::size_t mask_ = 0;
  // Head and tail on separate cache lines so the producer's stores never
  // invalidate the consumer's line (and vice versa).
  alignas(64) std::atomic<std::uint64_t> head_{0};  // consumer cursor
  alignas(64) std::atomic<std::uint64_t> tail_{0};  // producer cursor
};

}  // namespace mobiwlan::runtime
