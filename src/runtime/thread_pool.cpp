#include "runtime/thread_pool.hpp"

#include <algorithm>

namespace mobiwlan::runtime {

namespace {
thread_local int tl_worker_index = -1;
}  // namespace

ThreadPool::ThreadPool(std::size_t num_threads) {
  const std::size_t n = std::max<std::size_t>(1, num_threads);
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    workers_.emplace_back([this, i] { worker_loop(static_cast<int>(i)); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::post(TaskFn task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::parallel_for(
    std::size_t count, std::size_t grain,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& fn) {
  if (count == 0) return;
  grain = std::max<std::size_t>(1, grain);
  const std::size_t n_chunks = (count + grain - 1) / grain;

  // All shared state lives on this frame; the final helper handshake below
  // guarantees no worker touches it after the function returns.
  struct Shared {
    std::atomic<std::size_t> next_chunk{0};
    std::size_t count;
    std::size_t grain;
    std::size_t n_chunks;
    const std::function<void(std::size_t, std::size_t, std::size_t)>* fn;
    std::mutex mu;
    std::condition_variable done_cv;
    std::size_t helpers_exited = 0;
    std::exception_ptr first_error;
  } shared;
  shared.count = count;
  shared.grain = grain;
  shared.n_chunks = n_chunks;
  shared.fn = &fn;

  auto run_slot = [](Shared& s, std::size_t slot) {
    for (;;) {
      const std::size_t c =
          s.next_chunk.fetch_add(1, std::memory_order_relaxed);
      if (c >= s.n_chunks) return;
      const std::size_t begin = c * s.grain;
      const std::size_t end = std::min(s.count, begin + s.grain);
      try {
        (*s.fn)(slot, begin, end);
      } catch (...) {
        std::lock_guard<std::mutex> lock(s.mu);
        if (!s.first_error) s.first_error = std::current_exception();
      }
    }
  };

  // The caller takes slot 0; at most one helper per remaining chunk. All
  // helpers enqueue under one lock/notify.
  const std::size_t n_helpers =
      std::min(workers_.size(), n_chunks > 0 ? n_chunks - 1 : 0);
  post_many(n_helpers, [&run_slot, &shared](std::size_t i) {
    return TaskFn([&shared, slot = i + 1, run = run_slot] {
      run(shared, slot);
      // Notify while holding the lock: `shared` lives on the caller's
      // frame, and the caller may destroy it the moment the predicate can
      // be observed true — a notify after unlock could race destruction.
      std::lock_guard<std::mutex> lock(shared.mu);
      ++shared.helpers_exited;
      shared.done_cv.notify_one();
    });
  });

  run_slot(shared, 0);

  {
    std::unique_lock<std::mutex> lock(shared.mu);
    shared.done_cv.wait(lock,
                        [&] { return shared.helpers_exited == n_helpers; });
  }
  if (shared.first_error) std::rethrow_exception(shared.first_error);
}

int ThreadPool::current_worker() { return tl_worker_index; }

void ThreadPool::worker_loop(int index) {
  tl_worker_index = index;
  for (;;) {
    TaskFn task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      // Drain the queue even while stopping so a destroyed pool still runs
      // everything that was posted before shutdown.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

}  // namespace mobiwlan::runtime
