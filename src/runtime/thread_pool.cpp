#include "runtime/thread_pool.hpp"

#include <algorithm>

namespace mobiwlan::runtime {

namespace {
thread_local int tl_worker_index = -1;
}  // namespace

ThreadPool::ThreadPool(std::size_t num_threads) {
  const std::size_t n = std::max<std::size_t>(1, num_threads);
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    workers_.emplace_back([this, i] { worker_loop(static_cast<int>(i)); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::post(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push(std::move(task));
  }
  cv_.notify_one();
}

int ThreadPool::current_worker() { return tl_worker_index; }

void ThreadPool::worker_loop(int index) {
  tl_worker_index = index;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      // Drain the queue even while stopping so a destroyed pool still runs
      // everything that was posted before shutdown.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

}  // namespace mobiwlan::runtime
