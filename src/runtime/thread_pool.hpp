// thread_pool.hpp — fixed-size worker pool for the experiment runner.
//
// A deliberately small pool: a mutex+condvar task queue, N workers created at
// construction, and a destructor that drains the queue and joins. Scheduling
// is work-conserving but unordered — callers that need deterministic output
// (every bench does) must make determinism a property of the *tasks*, which
// is what runtime::Experiment provides on top of this pool.
//
// Queued tasks are TaskFn, a move-only callable wrapper with a 56-byte
// inline buffer: a task whose captures fit (the common case — a context
// pointer plus a couple of indices) is enqueued without touching the heap,
// where std::function would allocate for anything beyond two pointers and
// would also rule out move-only captures like std::promise.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <future>
#include <mutex>
#include <new>
#include <queue>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace mobiwlan::runtime {

/// Move-only type-erased `void()` callable with small-buffer storage.
/// Callables up to kInlineBytes that are nothrow-move-constructible live in
/// the wrapper itself; larger ones fall back to a single heap allocation.
class TaskFn {
 public:
  static constexpr std::size_t kInlineBytes = 56;

  TaskFn() noexcept = default;

  template <typename F, typename = std::enable_if_t<!std::is_same_v<
                            std::remove_cvref_t<F>, TaskFn>>>
  TaskFn(F&& f) {  // NOLINT(google-explicit-constructor): function-like
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineBytes &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
      vt_ = &kInlineVtab<Fn>;
    } else {
      ::new (static_cast<void*>(storage_)) Fn*(new Fn(std::forward<F>(f)));
      vt_ = &kHeapVtab<Fn>;
    }
  }

  TaskFn(TaskFn&& other) noexcept {
    if (other.vt_) {
      other.vt_->relocate(other.storage_, storage_);
      vt_ = other.vt_;
      other.vt_ = nullptr;
    }
  }

  TaskFn& operator=(TaskFn&& other) noexcept {
    if (this != &other) {
      reset();
      if (other.vt_) {
        other.vt_->relocate(other.storage_, storage_);
        vt_ = other.vt_;
        other.vt_ = nullptr;
      }
    }
    return *this;
  }

  TaskFn(const TaskFn&) = delete;
  TaskFn& operator=(const TaskFn&) = delete;

  ~TaskFn() { reset(); }

  explicit operator bool() const noexcept { return vt_ != nullptr; }

  /// Invokes the wrapped callable. Precondition: non-empty.
  void operator()() { vt_->invoke(storage_); }

 private:
  struct VTab {
    void (*invoke)(void*);
    void (*relocate)(void* src, void* dst) noexcept;  // move + destroy src
    void (*destroy)(void*) noexcept;
  };

  template <typename Fn>
  static constexpr VTab kInlineVtab = {
      [](void* p) { (*static_cast<Fn*>(p))(); },
      [](void* src, void* dst) noexcept {
        Fn* s = static_cast<Fn*>(src);
        ::new (dst) Fn(std::move(*s));
        s->~Fn();
      },
      [](void* p) noexcept { static_cast<Fn*>(p)->~Fn(); },
  };

  template <typename Fn>
  static constexpr VTab kHeapVtab = {
      [](void* p) { (**static_cast<Fn**>(p))(); },
      [](void* src, void* dst) noexcept {
        ::new (dst) Fn*(*static_cast<Fn**>(src));
      },
      [](void* p) noexcept { delete *static_cast<Fn**>(p); },
  };

  void reset() noexcept {
    if (vt_) {
      vt_->destroy(storage_);
      vt_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineBytes];
  const VTab* vt_ = nullptr;
};

/// Fixed-size thread pool with a FIFO task queue and clean shutdown.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (clamped to at least one).
  explicit ThreadPool(std::size_t num_threads);

  /// Signals shutdown, finishes every already-queued task, and joins.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads.
  std::size_t size() const { return workers_.size(); }

  /// Enqueues a fire-and-forget task. The task must not throw; use submit()
  /// when exceptions need to reach the caller.
  void post(TaskFn task);

  /// Enqueues `count` tasks under one lock acquisition and one notify_all —
  /// a bulk fan-out pays the mutex and the wakeup once instead of per task.
  /// `make_task(i)` is called for i in [0, count) while the lock is held and
  /// must return something convertible to TaskFn (so it must not itself
  /// touch the pool).
  template <typename MakeTask>
  void post_many(std::size_t count, MakeTask&& make_task) {
    if (count == 0) return;
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (std::size_t i = 0; i < count; ++i) queue_.push(make_task(i));
    }
    cv_.notify_all();
  }

  /// Enqueues a callable and returns a future for its result; an exception
  /// thrown by the callable is rethrown from future::get(). The
  /// packaged_task is moved into the queue directly (TaskFn accepts
  /// move-only callables), so submit costs the one unavoidable shared-state
  /// allocation instead of the shared_ptr-of-packaged_task double hop.
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    std::packaged_task<R()> task(std::forward<F>(f));
    auto future = task.get_future();
    post(TaskFn(std::move(task)));
    return future;
  }

  /// Runs `fn(slot, begin, end)` over fixed chunks of [0, count) with chunk
  /// size `grain`, sharing the work between the calling thread (slot 0) and
  /// up to size() pool workers (slots 1..). Chunk boundaries depend only on
  /// (count, grain) — never on the worker count or claim order — so a body
  /// that keys its work on the chunk range (not the slot) produces identical
  /// results on any pool. The slot index is a dense per-call worker id for
  /// scratch-space reuse; slots claim chunks dynamically.
  ///
  /// Blocks until every chunk has run. The first exception thrown by the
  /// body is rethrown here after all chunks finish; remaining chunks still
  /// run (they may not observe the failure).
  void parallel_for(std::size_t count, std::size_t grain,
                    const std::function<void(std::size_t slot,
                                             std::size_t begin,
                                             std::size_t end)>& fn);

  /// Index in [0, size()) of the pool worker executing the current thread,
  /// or -1 when called from a thread the pool does not own. Used by the run
  /// report to attribute per-job timing to workers.
  static int current_worker();

 private:
  void worker_loop(int index);

  std::mutex mu_;
  std::condition_variable cv_;
  std::queue<TaskFn> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace mobiwlan::runtime
