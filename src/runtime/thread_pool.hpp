// thread_pool.hpp — fixed-size worker pool for the experiment runner.
//
// A deliberately small pool: a mutex+condvar task queue, N workers created at
// construction, and a destructor that drains the queue and joins. Scheduling
// is work-conserving but unordered — callers that need deterministic output
// (every bench does) must make determinism a property of the *tasks*, which
// is what runtime::Experiment provides on top of this pool.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace mobiwlan::runtime {

/// Fixed-size thread pool with a FIFO task queue and clean shutdown.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (clamped to at least one).
  explicit ThreadPool(std::size_t num_threads);

  /// Signals shutdown, finishes every already-queued task, and joins.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads.
  std::size_t size() const { return workers_.size(); }

  /// Enqueues a fire-and-forget task. The task must not throw; use submit()
  /// when exceptions need to reach the caller.
  void post(std::function<void()> task);

  /// Enqueues a callable and returns a future for its result; an exception
  /// thrown by the callable is rethrown from future::get().
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    post([task] { (*task)(); });
    return task->get_future();
  }

  /// Index in [0, size()) of the pool worker executing the current thread,
  /// or -1 when called from a thread the pool does not own. Used by the run
  /// report to attribute per-job timing to workers.
  static int current_worker();

 private:
  void worker_loop(int index);

  std::mutex mu_;
  std::condition_variable cv_;
  std::queue<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace mobiwlan::runtime
