#include "sim/beamforming_sim.hpp"

#include <algorithm>

#include "core/policy.hpp"
#include "phy/beamforming.hpp"
#include "phy/mcs.hpp"
#include "util/stats.hpp"

namespace mobiwlan {

namespace {

/// Tracks one client's feedback loop: classifier, period choice, stale CSI.
class FeedbackLoop {
 public:
  FeedbackLoop(Scenario& scenario, const BeamformingSimConfig& config)
      : scenario_(scenario), config_(config), classifier_(config.classifier) {}

  /// Advance measurement processes to time t; refresh stale CSI when the
  /// feedback period elapses. Returns true if a feedback exchange happened
  /// in this call (its airtime is charged by the caller).
  bool advance(double t) {
    while (next_csi_t_ <= t) {
      classifier_.on_csi(next_csi_t_, scenario_.channel->csi_at(next_csi_t_));
      next_csi_t_ += config_.classifier.csi_period_s;
    }
    while (next_tof_t_ <= t) {
      classifier_.on_tof(next_tof_t_, scenario_.channel->tof_cycles(next_tof_t_));
      next_tof_t_ += config_.classifier.tof_period_s;
    }
    bool fed_back = false;
    if (!have_feedback_ || t - last_feedback_t_ >= period(true)) {
      feedback_csi_ = scenario_.channel->csi_at(t);
      last_feedback_t_ = t;
      have_feedback_ = true;
      fed_back = true;
    }
    return fed_back;
  }

  /// Current feedback period (for overhead accounting).
  double period(bool for_mu = false) const {
    if (!config_.adaptive_period) return config_.fixed_period_s;
    if (!classifier_similarity_ready())
      return config_.fixed_period_s;
    const ProtocolParams p = mobility_params(classifier_.mode());
    return for_mu ? p.mumimo_update_period_s : p.bf_update_period_s;
  }

  const CsiMatrix& feedback_csi() const { return feedback_csi_; }
  bool ready() const { return have_feedback_; }

 private:
  bool classifier_similarity_ready() const {
    return classifier_.similarity().has_value();
  }

  Scenario& scenario_;
  const BeamformingSimConfig& config_;
  MobilityClassifier classifier_;
  CsiMatrix feedback_csi_;
  bool have_feedback_ = false;
  double last_feedback_t_ = 0.0;
  double next_csi_t_ = 0.0;
  double next_tof_t_ = 0.0;
};

double rate_at_snr(double snr_db, const BeamformingSimConfig& config,
                   int max_streams) {
  const int best = best_mcs(snr_db, config.mpdu_payload_bytes, max_streams,
                            config.error_model);
  return expected_throughput_mbps(mcs(best), snr_db, config.mpdu_payload_bytes,
                                  config.error_model) *
         config.mac_efficiency;
}

}  // namespace

SuBeamformingResult simulate_su_beamforming(Scenario& scenario,
                                            const BeamformingSimConfig& config,
                                            Rng& rng) {
  (void)rng;
  FeedbackLoop loop(scenario, config);
  const double fb_airtime = feedback_exchange_airtime_s(config.feedback);

  OnlineStats gain_stats;
  double delivered_mbit = 0.0;
  double feedback_time = 0.0;

  for (double t = 0.0; t < config.duration_s; t += config.slot_s) {
    if (loop.advance(t)) feedback_time += fb_airtime;
    if (!loop.ready()) continue;

    const CsiMatrix now = scenario.channel->csi_true(t);
    const double gain_db = su_beamforming_gain_db(now, loop.feedback_csi());
    gain_stats.add(gain_db);

    const double snr = effective_snr_db(now, scenario.channel->snr_db(t)) + gain_db;
    // Beamforming precodes a single stream across the AP antennas.
    delivered_mbit += rate_at_snr(snr, config, 1) * config.slot_s;
  }

  SuBeamformingResult result;
  result.overhead_fraction =
      std::min(1.0, feedback_time / config.duration_s);
  result.throughput_mbps =
      delivered_mbit / config.duration_s * (1.0 - result.overhead_fraction);
  result.mean_gain_db = gain_stats.mean();
  return result;
}

namespace {

/// Feedback loop over a recorded trace instead of a live channel.
class TraceFeedbackLoop {
 public:
  TraceFeedbackLoop(const CsiTrace& trace, const BeamformingSimConfig& config)
      : trace_(trace), config_(config), classifier_(config.classifier) {}

  bool advance(double t) {
    while (next_csi_t_ <= t) {
      const TraceEntry& e = trace_.at_time(next_csi_t_);
      classifier_.on_csi(next_csi_t_, e.csi);
      next_csi_t_ += config_.classifier.csi_period_s;
    }
    while (next_tof_t_ <= t) {
      classifier_.on_tof(next_tof_t_, trace_.at_time(next_tof_t_).tof_cycles);
      next_tof_t_ += config_.classifier.tof_period_s;
    }
    bool fed_back = false;
    if (!have_feedback_ || t - last_feedback_t_ >= period()) {
      feedback_index_ = trace_.index_at(t);
      last_feedback_t_ = t;
      have_feedback_ = true;
      fed_back = true;
    }
    return fed_back;
  }

  double period() const {
    if (!config_.adaptive_period || !classifier_.similarity())
      return config_.fixed_period_s;
    return mobility_params(classifier_.mode()).mumimo_update_period_s;
  }

  const CsiMatrix& feedback_csi() const { return trace_[feedback_index_].csi; }
  bool ready() const { return have_feedback_; }

 private:
  const CsiTrace& trace_;
  const BeamformingSimConfig& config_;
  MobilityClassifier classifier_;
  std::size_t feedback_index_ = 0;
  bool have_feedback_ = false;
  double last_feedback_t_ = 0.0;
  double next_csi_t_ = 0.0;
  double next_tof_t_ = 0.0;
};

}  // namespace

MuMimoSimResult simulate_mu_mimo_traces(const std::vector<const CsiTrace*>& clients,
                                        const BeamformingSimConfig& config) {
  const std::size_t k = clients.size();
  std::vector<TraceFeedbackLoop> loops;
  loops.reserve(k);
  double duration = config.duration_s;
  for (const CsiTrace* trace : clients) {
    loops.emplace_back(*trace, config);
    duration = std::min(duration, trace->duration());
  }

  const double fb_airtime = feedback_exchange_airtime_s(config.feedback);
  std::vector<double> delivered_mbit(k, 0.0);
  double feedback_time = 0.0;

  for (double t = 0.0; t < duration; t += config.slot_s) {
    bool all_ready = true;
    for (auto& loop : loops) {
      if (loop.advance(t)) feedback_time += fb_airtime;
      all_ready = all_ready && loop.ready();
    }
    if (!all_ready) continue;

    std::vector<CsiMatrix> current;
    std::vector<CsiMatrix> stale;
    std::vector<double> snr0;
    current.reserve(k);
    stale.reserve(k);
    snr0.reserve(k);
    for (std::size_t i = 0; i < k; ++i) {
      const TraceEntry& e = clients[i]->at_time(t);
      current.push_back(e.csi);
      stale.push_back(loops[i].feedback_csi());
      snr0.push_back(e.snr_db);
    }

    const MuMimoResult zf = mu_mimo_zero_forcing(current, stale, snr0);
    for (std::size_t i = 0; i < k; ++i)
      delivered_mbit[i] += rate_at_snr(zf.sinr_db[i], config, 1) * config.slot_s;
  }

  MuMimoSimResult result;
  if (duration <= 0.0) return result;
  const double overhead = std::min(1.0, feedback_time / duration);
  result.per_client_mbps.resize(k);
  for (std::size_t i = 0; i < k; ++i) {
    result.per_client_mbps[i] = delivered_mbit[i] / duration * (1.0 - overhead);
    result.total_mbps += result.per_client_mbps[i];
  }
  return result;
}

MuMimoSimResult simulate_mu_mimo_trace_files(
    const std::vector<std::string>& paths, const BeamformingSimConfig& config) {
  std::vector<CsiTrace> traces;
  traces.reserve(paths.size());
  for (const std::string& path : paths) traces.push_back(CsiTrace::load(path));
  std::vector<const CsiTrace*> clients;
  clients.reserve(traces.size());
  for (const CsiTrace& trace : traces) clients.push_back(&trace);
  return simulate_mu_mimo_traces(clients, config);
}

MuMimoSimResult simulate_mu_mimo(std::vector<Scenario*> clients,
                                 const BeamformingSimConfig& config, Rng& rng) {
  (void)rng;
  const std::size_t k = clients.size();
  std::vector<FeedbackLoop> loops;
  loops.reserve(k);
  for (Scenario* c : clients) loops.emplace_back(*c, config);

  const double fb_airtime = feedback_exchange_airtime_s(config.feedback);
  std::vector<double> delivered_mbit(k, 0.0);
  double feedback_time = 0.0;

  for (double t = 0.0; t < config.duration_s; t += config.slot_s) {
    bool all_ready = true;
    for (auto& loop : loops) {
      if (loop.advance(t)) feedback_time += fb_airtime;
      all_ready = all_ready && loop.ready();
    }
    if (!all_ready) continue;

    std::vector<CsiMatrix> current;
    std::vector<CsiMatrix> stale;
    std::vector<double> snr0;
    current.reserve(k);
    stale.reserve(k);
    snr0.reserve(k);
    for (std::size_t i = 0; i < k; ++i) {
      current.push_back(clients[i]->channel->csi_true(t));
      stale.push_back(loops[i].feedback_csi());
      snr0.push_back(clients[i]->channel->snr_db(t));
    }

    const MuMimoResult zf = mu_mimo_zero_forcing(current, stale, snr0);
    for (std::size_t i = 0; i < k; ++i)
      delivered_mbit[i] += rate_at_snr(zf.sinr_db[i], config, 1) * config.slot_s;
  }

  MuMimoSimResult result;
  const double overhead = std::min(1.0, feedback_time / config.duration_s);
  result.per_client_mbps.resize(k);
  for (std::size_t i = 0; i < k; ++i) {
    result.per_client_mbps[i] =
        delivered_mbit[i] / config.duration_s * (1.0 - overhead);
    result.total_mbps += result.per_client_mbps[i];
  }
  return result;
}

}  // namespace mobiwlan
