// beamforming_sim.hpp — §6: SU beamforming and MU-MIMO under CSI staleness.
//
// Both emulators replay a channel at a fine time step; at each step the AP
// precodes with the CSI it last received from the client, which refreshes
// only every feedback period. Each refresh also consumes airtime (sounding +
// report at the lowest rate), so short periods tax static clients while long
// periods starve mobile ones — the tension Fig. 11(a)/12(a) plots. The
// adaptive scheme picks the Table-2 period for each client's classified
// mobility mode.
#pragma once

#include <vector>

#include "chan/csi_trace.hpp"
#include "chan/scenario.hpp"
#include "core/mobility_classifier.hpp"
#include "phy/csi_feedback.hpp"
#include "phy/error_model.hpp"

namespace mobiwlan {

struct BeamformingSimConfig {
  double duration_s = 20.0;
  double slot_s = 2e-3;
  bool adaptive_period = false;   ///< Table-2 period per classified mode
  double fixed_period_s = 20e-3;  ///< stock statically-configured period
  int mpdu_payload_bytes = 1500;
  double mac_efficiency = 0.70;
  MobilityClassifier::Config classifier;
  ErrorModelConfig error_model;
  CsiFeedbackConfig feedback;
};

struct SuBeamformingResult {
  double throughput_mbps = 0.0;
  double mean_gain_db = 0.0;        ///< realized beamforming gain
  double overhead_fraction = 0.0;   ///< airtime share spent on feedback
};

/// Single-user transmit beamforming on one link (Fig. 11).
SuBeamformingResult simulate_su_beamforming(Scenario& scenario,
                                            const BeamformingSimConfig& config,
                                            Rng& rng);

struct MuMimoSimResult {
  std::vector<double> per_client_mbps;
  double total_mbps = 0.0;
};

/// MU-MIMO downlink to `clients.size()` single-antenna clients (Fig. 12).
/// Each scenario's channel must be configured with n_rx = 1, and the count
/// must not exceed the AP antenna count.
MuMimoSimResult simulate_mu_mimo(std::vector<Scenario*> clients,
                                 const BeamformingSimConfig& config, Rng& rng);

/// The paper's literal §6.2 methodology: CSI traces are recorded once (at
/// the slot cadence) and then replayed through the zero-forcing emulator —
/// "we fed the series of CSI values to a MU-MIMO emulator". The classifier
/// is fed from the same traces (CSI similarity + ToF), so mobility estimation
/// and precoding see exactly what the recording saw.
MuMimoSimResult simulate_mu_mimo_traces(const std::vector<const CsiTrace*>& clients,
                                        const BeamformingSimConfig& config);

/// File-based entry: load each per-client recording (CsiTrace::load — a
/// malformed or truncated file throws trace::TraceError rather than yielding
/// a silently-garbled emulation) and replay them through the emulator above.
MuMimoSimResult simulate_mu_mimo_trace_files(
    const std::vector<std::string>& paths, const BeamformingSimConfig& config);

}  // namespace mobiwlan
