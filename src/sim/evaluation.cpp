#include "sim/evaluation.hpp"

namespace mobiwlan {

double ClassTally::accuracy(MobilityClass truth) const {
  if (total == 0) return 0.0;
  const auto it = by_class.find(truth);
  return it == by_class.end() ? 0.0
                              : static_cast<double>(it->second) / total;
}

double ClassTally::fraction(MobilityMode mode) const {
  if (total == 0) return 0.0;
  const auto it = by_mode.find(mode);
  return it == by_mode.end() ? 0.0 : static_cast<double>(it->second) / total;
}

double ConfusionMatrix::accuracy(MobilityClass truth) const {
  const auto it = rows.find(truth);
  return it == rows.end() ? 0.0 : it->second.accuracy(truth);
}

double ConfusionMatrix::mean_accuracy() const {
  if (rows.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& [cls, tally] : rows) sum += tally.accuracy(cls);
  return sum / static_cast<double>(rows.size());
}

ClassTally evaluate_class(MobilityClass cls, Rng& rng,
                          const EvaluationOptions& opt) {
  ClassTally tally;
  for (int trial = 0; trial < opt.trials; ++trial) {
    const Scenario s = make_scenario(cls, rng, opt.scenario);
    drive_classifier(s, opt, [&](double, MobilityMode mode) {
      ++tally.total;
      ++tally.by_class[to_class(mode)];
      ++tally.by_mode[mode];
    });
  }
  return tally;
}

ConfusionMatrix evaluate_all(Rng& rng, const EvaluationOptions& opt) {
  ConfusionMatrix matrix;
  for (MobilityClass cls : {MobilityClass::kStatic, MobilityClass::kEnvironmental,
                            MobilityClass::kMicro, MobilityClass::kMacro}) {
    matrix.rows[cls] = evaluate_class(cls, rng, opt);
  }
  return matrix;
}

std::pair<double, double> evaluate_orbit(Rng& rng, const EvaluationOptions& opt,
                                         double radius_m) {
  int macro = 0;
  int micro = 0;
  int total = 0;
  for (int trial = 0; trial < opt.trials; ++trial) {
    const Scenario s = make_circular_scenario(radius_m + trial, rng, opt.scenario);
    drive_classifier(s, opt, [&](double, MobilityMode mode) {
      ++total;
      if (is_macro(mode)) ++macro;
      if (mode == MobilityMode::kMicro) ++micro;
    });
  }
  if (total == 0) return {0.0, 0.0};
  return {static_cast<double>(macro) / total, static_cast<double>(micro) / total};
}

}  // namespace mobiwlan
