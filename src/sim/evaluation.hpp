// evaluation.hpp — the standard classification-evaluation harness.
//
// Table 1, Figure 6 and the ablation benches all need the same experiment:
// run the classifier over randomized scenarios at the standard measurement
// cadences and tally per-second decisions against ground truth. Centralizing
// it keeps every consumer on the same protocol (warmup, cadences, decision
// sampling), so their numbers are comparable.
#pragma once

#include <map>

#include "chan/scenario.hpp"
#include "core/mobility_classifier.hpp"

namespace mobiwlan {

struct EvaluationOptions {
  int trials = 20;                ///< "locations" per class
  double duration_s = 40.0;       ///< per-trial observation time
  double warmup_s = 10.0;         ///< ignore decisions before this
  MobilityClassifier::Config classifier;
  ScenarioOptions scenario;
};

/// Per-second decision tallies for one ground-truth class.
struct ClassTally {
  std::map<MobilityClass, int> by_class;
  std::map<MobilityMode, int> by_mode;
  int total = 0;

  double accuracy(MobilityClass truth) const;
  double fraction(MobilityMode mode) const;
};

/// Full confusion-matrix evaluation over the four ground-truth classes.
struct ConfusionMatrix {
  std::map<MobilityClass, ClassTally> rows;

  double accuracy(MobilityClass truth) const;
  /// Mean of the four per-class accuracies.
  double mean_accuracy() const;
};

/// Drive the classifier over one scenario; `on_second(t, mode)` fires once
/// per second after the warmup. This is THE measurement protocol: CSI at the
/// classifier's configured period, ToF every tof_period_s.
template <typename PerSecond>
void drive_classifier(const Scenario& s, const EvaluationOptions& opt,
                      PerSecond on_second) {
  MobilityClassifier clf(opt.classifier);
  double next_csi = 0.0;
  double next_second = opt.warmup_s;
  const double step = opt.classifier.tof_period_s;
  for (double t = 0.0; t < opt.duration_s; t += step) {
    if (t >= next_csi - 1e-9) {
      clf.on_csi(t, s.channel->csi_at(t));
      next_csi += opt.classifier.csi_period_s;
    }
    clf.on_tof(t, s.channel->tof_cycles(t));
    if (t >= next_second) {
      on_second(t, clf.mode());
      next_second += 1.0;
    }
  }
}

/// Evaluate one ground-truth class over `opt.trials` random locations.
ClassTally evaluate_class(MobilityClass cls, Rng& rng,
                          const EvaluationOptions& opt);

/// Evaluate all four classes.
ConfusionMatrix evaluate_all(Rng& rng, const EvaluationOptions& opt);

/// Evaluate the §9 circular-orbit case (not part of the four classes):
/// returns the fraction of seconds classified macro (any direction) and the
/// fraction classified micro.
std::pair<double, double> evaluate_orbit(Rng& rng, const EvaluationOptions& opt,
                                         double radius_m = 10.0);

}  // namespace mobiwlan
