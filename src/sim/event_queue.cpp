#include "sim/event_queue.hpp"

#include <algorithm>

namespace mobiwlan {

std::uint64_t EventQueue::schedule(double t, Handler handler) {
  const std::uint64_t id = next_id_++;
  queue_.push(Event{std::max(t, now_), next_seq_++, id, 0.0, std::move(handler)});
  return id;
}

std::uint64_t EventQueue::schedule_every(double first, double period,
                                         Handler handler) {
  const std::uint64_t id = next_id_++;
  queue_.push(Event{std::max(first, now_), next_seq_++, id, period,
                    std::move(handler)});
  return id;
}

void EventQueue::cancel(std::uint64_t id) { cancelled_.push_back(id); }

void EventQueue::pop_and_fire() {
  Event ev = queue_.top();
  queue_.pop();
  if (std::find(cancelled_.begin(), cancelled_.end(), ev.id) != cancelled_.end())
    return;
  now_ = ev.t;
  ev.handler(ev.t);
  if (ev.period > 0.0) {
    ev.t += ev.period;
    ev.seq = next_seq_++;
    queue_.push(std::move(ev));
  }
}

void EventQueue::run_until(double t_end) {
  while (!queue_.empty() && queue_.top().t <= t_end) pop_and_fire();
  now_ = std::max(now_, t_end);
}

void EventQueue::run_all() {
  while (!queue_.empty()) pop_and_fire();
}

}  // namespace mobiwlan
