// event_queue.hpp — a small discrete-event scheduler.
//
// Periodic measurement processes (CSI sampling, ToF NULL frames, CSI
// feedback sounding) and one-shot events (handoff completion) share one
// timeline. Events at equal timestamps fire in scheduling order.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace mobiwlan {

class EventQueue {
 public:
  using Handler = std::function<void(double t)>;

  /// Schedule `handler` at absolute time t (>= now). Returns an id usable
  /// with cancel().
  std::uint64_t schedule(double t, Handler handler);

  /// Schedule `handler` every `period` starting at `first`, until cancelled
  /// or the queue stops. Returns the id of the recurring series.
  std::uint64_t schedule_every(double first, double period, Handler handler);

  /// Cancel a pending (or recurring) event by id. Safe on unknown ids.
  void cancel(std::uint64_t id);

  /// Run all events with t <= t_end; now() advances to t_end.
  void run_until(double t_end);

  /// Run until the queue is empty (careful with recurring events).
  void run_all();

  double now() const { return now_; }
  bool empty() const { return queue_.empty(); }
  std::size_t pending() const { return queue_.size(); }

 private:
  struct Event {
    double t;
    std::uint64_t seq;   // FIFO tie-break
    std::uint64_t id;
    double period;       // 0 for one-shot
    Handler handler;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.t != b.t) return a.t > b.t;
      return a.seq > b.seq;
    }
  };

  void pop_and_fire();

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::vector<std::uint64_t> cancelled_;
  double now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t next_id_ = 1;
};

}  // namespace mobiwlan
