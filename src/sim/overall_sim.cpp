#include "sim/overall_sim.hpp"

#include <algorithm>
#include <memory>

#include "core/policy.hpp"
#include "core/tof_tracker.hpp"
#include "mac/aggregation.hpp"
#include "mac/atheros_ra.hpp"
#include "net/deployment_source.hpp"
#include "phy/beamforming.hpp"
#include "phy/mcs.hpp"

namespace mobiwlan {

namespace {

double ground(std::optional<double> v, const char* what) {
  if (!v)
    throw trace::TraceError(trace::TraceError::Code::kMissingStream,
                            std::string("overall sim: ground-truth observable "
                                        "unavailable from source: ") +
                                what);
  return *v;
}

void ground_csi(bool ok, const char* what) {
  if (!ok)
    throw trace::TraceError(trace::TraceError::Code::kMissingStream,
                            std::string("overall sim: ground-truth CSI "
                                        "unavailable from source: ") +
                                what);
}

}  // namespace

OverallSimResult simulate_overall(WlanDeployment& wlan,
                                  const OverallSimConfig& config, Rng& rng) {
  // Batched CSI path: the historical loop read batch.csi_into(), which is
  // only ≤1e-12-equal (not bitwise) to the per-link path.
  LiveDeploymentSource src(wlan, LiveDeploymentSource::CsiPath::kBatched);
  return simulate_overall(src, config, rng);
}

OverallSimResult simulate_overall(trace::ObservableSource& src,
                                  const OverallSimConfig& config, Rng& rng) {
  using trace::StreamKind;
  src.require({StreamKind::kTrueCsi, StreamKind::kSnr, StreamKind::kRssi,
               StreamKind::kScanRssi, StreamKind::kCsiFeedback},
              "overall sim");
  if (config.mobility_aware)
    src.require({StreamKind::kCsi, StreamKind::kTof},
                "overall sim classifier");

  OverallSimResult result;

  std::size_t assoc = src.strongest_unit(0.0).value_or(0);
  result.associations.emplace_back(0.0, assoc);

  auto make_ra = [&]() -> std::unique_ptr<AtherosRa> {
    if (config.mobility_aware)
      return std::make_unique<AtherosRa>(make_mobility_aware_atheros_ra());
    return std::make_unique<AtherosRa>();
  };
  std::unique_ptr<AtherosRa> ra = make_ra();

  MobilityClassifier classifier(config.classifier);
  std::vector<TofTracker> heading(src.n_units(),
                                  TofTracker(config.classifier.tof));

  // Per-AP fault streams over the controller-facing exports, gated INSIDE
  // the loop rather than by a FaultedSource: ToF is measured by a batched
  // sweep across all APs, so the sweep always runs (every AP's reading is
  // drawn, keeping the shared draw order) and per-AP drops are applied to
  // the *export* after the fact. Dropped CSI/RSSI readings skip the source
  // call entirely (export lost, channel RNG untouched), so an all-zero plan
  // is bitwise-identical.
  std::vector<FaultStream> csi_fault;
  std::vector<FaultStream> tof_fault;
  std::vector<FaultStream> rssi_fault;
  for (std::size_t ap = 0; ap < src.n_units(); ++ap) {
    csi_fault.push_back(make_stream(config.fault, FaultStreamKind::kCsi, ap));
    tof_fault.push_back(make_stream(config.fault, FaultStreamKind::kTof, ap));
    rssi_fault.push_back(make_stream(config.fault, FaultStreamKind::kRssi, ap));
  }
  const bool rssi_only = config.fault.rssi_only;

  CsiMatrix meas_csi, h_start, h_end;
  std::vector<std::optional<double>> sweep(src.n_units());

  const double fb_airtime = feedback_exchange_airtime_s(config.feedback);
  const ProtocolParams stock = default_params();

  double t = 0.0;
  double next_csi_t = 0.0;
  double next_tof_t = 0.0;
  double next_fb_t = 0.0;
  double next_roam_check_t = 0.0;
  double steer_ok_t = 0.0;
  double threshold_scan_ok_t = 0.0;
  CsiMatrix fb_csi;
  bool have_fb = false;
  long delivered_bytes = 0;

  // Hold-then-decay: decision(now) withholds the mode once the CSI stream
  // goes stale, so every mobility-aware knob falls back to stock behaviour
  // under export loss instead of acting on an outdated classification.
  auto current_mode = [&](double now) -> std::optional<MobilityMode> {
    if (!config.mobility_aware) return std::nullopt;
    return classifier.decision(now);
  };

  auto begin_handoff = [&](std::size_t target) {
    assoc = target;
    t += config.handoff_outage_s;
    result.outage_s += config.handoff_outage_s;
    ++result.handoffs;
    result.associations.emplace_back(t, target);
    ra = make_ra();
    classifier = MobilityClassifier(config.classifier);
    have_fb = false;
    next_fb_t = t;
  };

  while (t < config.duration_s) {
    // --- measurement processes -----------------------------------------
    if (config.mobility_aware) {
      while (next_csi_t <= t) {
        if (!rssi_only && csi_fault[assoc].deliver(next_csi_t)) {
          if (src.csi(static_cast<std::uint32_t>(assoc),
                      csi_fault[assoc].measured_t(next_csi_t), meas_csi))
            classifier.on_csi(next_csi_t, meas_csi);
        }
        next_csi_t += config.classifier.csi_period_s;
      }
      while (next_tof_t <= t) {
        // plan.tof.delay_s is shared by every AP, so the whole (batched)
        // sweep samples at the delayed instant; drops then lose individual
        // AP exports without perturbing the shared draw order.
        const double shifted = next_tof_t - config.fault.tof.delay_s;
        src.tof_sweep(shifted > 0.0 ? shifted : 0.0, sweep.data());
        for (std::size_t ap = 0; ap < src.n_units(); ++ap) {
          if (rssi_only || !tof_fault[ap].deliver(next_tof_t)) continue;
          if (!sweep[ap]) continue;  // trace gap: export never recorded
          if (ap == assoc)
            classifier.on_tof(next_tof_t, *sweep[ap]);
          else
            heading[ap].add(next_tof_t, *sweep[ap]);
        }
        next_tof_t += config.classifier.tof_period_s;
      }
    }

    const std::optional<MobilityMode> mode = current_mode(t);
    const ProtocolParams params = mode ? mobility_params(*mode) : stock;

    // --- CSI feedback sounding (beamforming) ----------------------------
    if (t >= next_fb_t) {
      // An active protocol exchange, never faulted; the airtime is spent
      // whether or not a replayed trace can serve the report.
      if (src.csi_feedback(static_cast<std::uint32_t>(assoc), t, fb_csi))
        have_fb = true;
      t += fb_airtime;  // sounding + report occupy the medium
      next_fb_t = t + (config.mobility_aware ? params.bf_update_period_s
                                             : stock.bf_update_period_s);
    }

    // --- roaming control loop -------------------------------------------
    if (t >= next_roam_check_t) {
      next_roam_check_t = t + config.roam_check_period_s;
      // Serving-link RSSI export; when the export is lost there is nothing
      // to trigger on this check and the client stays put (no spurious roam).
      std::optional<double> current_rssi;
      if (rssi_fault[assoc].deliver(t))
        current_rssi = src.rssi_dbm(static_cast<std::uint32_t>(assoc),
                                    rssi_fault[assoc].measured_t(t));
      if (current_rssi && *current_rssi < config.rssi_threshold_dbm &&
          t >= threshold_scan_ok_t) {
        threshold_scan_ok_t = t + config.min_scan_gap_s;
        if (const auto target = src.strongest_unit(t)) {
          begin_handoff(*target);
          continue;
        }
      }
      if (config.mobility_aware && t >= steer_ok_t && mode &&
          *mode == MobilityMode::kMacroAway && current_rssi) {
        std::size_t best_candidate = assoc;
        double best_rssi = *current_rssi - 1.0;
        for (std::size_t ap = 0; ap < src.n_units(); ++ap) {
          if (ap == assoc) continue;
          if (heading[ap].trend() != TofTrend::kDecreasing) continue;
          const auto rssi =
              src.scan_rssi_dbm(static_cast<std::uint32_t>(ap), t);
          if (rssi && *rssi >= best_rssi) {
            best_rssi = *rssi;
            best_candidate = ap;
          }
        }
        if (best_candidate != assoc) {
          begin_handoff(best_candidate);
          steer_ok_t = t + config.steer_cooldown_s;
          continue;
        }
      }
    }

    // --- one A-MPDU exchange ---------------------------------------------
    TxContext ctx;
    ctx.t = t;
    ctx.mpdu_payload_bytes = config.mpdu_payload_bytes;
    ctx.mobility = mode;

    const int mcs_index = ra->select_mcs(ctx);
    const McsEntry& entry = mcs(mcs_index);
    const double agg_limit = config.mobility_aware ? params.aggregation_limit_s
                                                   : stock.aggregation_limit_s;
    const AmpduPlan plan =
        plan_ampdu(entry, agg_limit, config.mpdu_payload_bytes, config.airtime);

    ground_csi(src.csi_true(static_cast<std::uint32_t>(assoc), t, h_start),
               "h_start");
    double snr = effective_snr_db(
        h_start, ground(src.snr_db(static_cast<std::uint32_t>(assoc), t),
                        "serving snr"));
    if (have_fb) snr += std::max(0.0, su_beamforming_gain_db(h_start, fb_csi));

    ground_csi(src.csi_true(static_cast<std::uint32_t>(assoc),
                            t + plan.frame_airtime_s, h_end),
               "h_end");
    const double decorr_end = 1.0 - complex_correlation(h_start, h_end);

    int n_failed = 0;
    for (int i = 0; i < plan.n_mpdus; ++i) {
      const double decorr = decorr_end * plan.mpdu_age_fraction(i);
      const double p = per_with_aging(entry, snr, config.mpdu_payload_bytes,
                                      decorr, config.error_model);
      if (rng.chance(p)) ++n_failed;
    }

    FrameResult frame;
    frame.t = t;
    frame.mcs = mcs_index;
    frame.n_mpdus = plan.n_mpdus;
    frame.n_failed = n_failed;
    frame.block_ack_received = n_failed < plan.n_mpdus;
    ra->on_result(frame, ctx);

    delivered_bytes +=
        static_cast<long>(plan.n_mpdus - n_failed) * config.mpdu_payload_bytes;
    t += exchange_airtime_s(entry, plan.n_mpdus, config.mpdu_payload_bytes,
                            config.airtime);
  }

  result.throughput_mbps =
      8.0 * static_cast<double>(delivered_bytes) / config.duration_s / 1e6;
  return result;
}

}  // namespace mobiwlan
