// overall_sim.hpp — §7: the end-to-end system experiment (Fig. 13).
//
// One client walks through a 6-AP floor while the AP stack runs either the
// full mobility-aware suite — controller-steered roaming, Table-2 rate
// adaptation, adaptive aggregation, adaptive beamforming feedback — or the
// stock mobility-oblivious defaults. Frame-level simulation: every A-MPDU
// exchange, every feedback sounding, and every handoff outage occupies
// airtime.
#pragma once

#include <vector>

#include "core/mobility_classifier.hpp"
#include "fault/fault.hpp"
#include "net/deployment.hpp"
#include "phy/airtime.hpp"
#include "phy/csi_feedback.hpp"
#include "phy/error_model.hpp"
#include "trace/source.hpp"

namespace mobiwlan {

struct OverallSimConfig {
  bool mobility_aware = true;  ///< all four optimizations on, or all off
  double duration_s = 60.0;
  int mpdu_payload_bytes = 1500;

  // Roaming.
  double handoff_outage_s = 0.20;
  double rssi_threshold_dbm = -85.0;
  double min_scan_gap_s = 4.0;
  double steer_cooldown_s = 5.0;
  double roam_check_period_s = 0.10;

  MobilityClassifier::Config classifier;
  ErrorModelConfig error_model;
  AirtimeConfig airtime;
  CsiFeedbackConfig feedback;

  /// PHY-observable fault injection on the controller-facing exports
  /// (unit = AP index). The beamforming sounding is an active protocol
  /// exchange and is never faulted. An all-zero plan is bitwise-identical
  /// to the unfaulted path.
  FaultPlan fault;
};

struct OverallSimResult {
  double throughput_mbps = 0.0;
  int handoffs = 0;
  double outage_s = 0.0;
  std::vector<std::pair<double, std::size_t>> associations;
};

/// Wraps the deployment in a batched-path LiveDeploymentSource and delegates
/// to the source-driven overload — bitwise-identical to the historical
/// inline loop (including its per-AP fault-stream gating, which stays inside
/// the loop because the batched ToF sweep must always run).
OverallSimResult simulate_overall(WlanDeployment& wlan,
                                  const OverallSimConfig& config, Rng& rng);

/// Source-driven overload (unit = AP index). config.fault IS applied here —
/// the loop gates exports with its own per-AP fault streams (the batched ToF
/// sweep always draws for every AP; drops lose individual exports after the
/// fact) — so do NOT also wrap the source in a FaultedSource.
OverallSimResult simulate_overall(trace::ObservableSource& src,
                                  const OverallSimConfig& config, Rng& rng);

}  // namespace mobiwlan
