// CsiTrace now persists through the v2 MWTR format (trace/format.hpp): an
// entry becomes one kCsi record plus its four scalar records at the same
// timestamp. The in-memory API is unchanged; load() raises typed TraceError
// (still a std::runtime_error) instead of silently truncating, and legacy v1
// "CSIT" files are rejected with a re-record message.
#include "chan/csi_trace.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "trace/trace_io.hpp"

namespace mobiwlan {

namespace {

using trace::StreamKind;
using trace::TraceError;

constexpr std::uint32_t kScalarMask =
    trace::stream_bit(StreamKind::kSnr) | trace::stream_bit(StreamKind::kRssi) |
    trace::stream_bit(StreamKind::kTof) |
    trace::stream_bit(StreamKind::kTrueDistance);

// Scalars of one entry, written after its kCsi record in this fixed order.
constexpr StreamKind kScalarOrder[] = {
    StreamKind::kSnr, StreamKind::kRssi, StreamKind::kTof,
    StreamKind::kTrueDistance};

double scalar_of(const TraceEntry& e, StreamKind k) {
  switch (k) {
    case StreamKind::kSnr: return e.snr_db;
    case StreamKind::kRssi: return e.rssi_dbm;
    case StreamKind::kTof: return e.tof_cycles;
    default: return e.true_distance_m;
  }
}

double& scalar_slot(TraceEntry& e, StreamKind k) {
  switch (k) {
    case StreamKind::kSnr: return e.snr_db;
    case StreamKind::kRssi: return e.rssi_dbm;
    case StreamKind::kTof: return e.tof_cycles;
    default: return e.true_distance_m;
  }
}

}  // namespace

void CsiTrace::add(TraceEntry entry) { entries_.push_back(std::move(entry)); }

double CsiTrace::duration() const {
  if (entries_.empty()) return 0.0;
  return entries_.back().t - entries_.front().t;
}

std::size_t CsiTrace::index_at(double t) const {
  if (entries_.empty()) throw std::out_of_range("empty trace");
  // First entry with time > t, then step back.
  auto it = std::upper_bound(entries_.begin(), entries_.end(), t,
                             [](double v, const TraceEntry& e) { return v < e.t; });
  if (it == entries_.begin()) return 0;
  return static_cast<std::size_t>(it - entries_.begin()) - 1;
}

const TraceEntry& CsiTrace::at_time(double t) const { return entries_[index_at(t)]; }

CsiTrace CsiTrace::record(WirelessChannel& channel, double duration_s,
                          double period_s) {
  CsiTrace trace;
  for (double t = 0.0; t <= duration_s; t += period_s) {
    const ChannelSample s = channel.sample(t);
    trace.add(TraceEntry{s.t, s.csi, s.snr_db, s.rssi_dbm, s.tof_cycles,
                         s.true_distance_m});
  }
  return trace;
}

bool CsiTrace::save(const std::string& path) const {
  try {
    trace::TraceHeader h;
    h.n_units = 1;
    // An empty trace declares only scalar streams: matrix kinds with zero
    // geometry are a header error, and there is nothing to write anyway.
    h.stream_mask = kScalarMask;
    if (!entries_.empty()) {
      const CsiMatrix& c = entries_.front().csi;
      h.stream_mask |= trace::stream_bit(StreamKind::kCsi);
      h.n_tx = static_cast<std::uint32_t>(c.n_tx());
      h.n_rx = static_cast<std::uint32_t>(c.n_rx());
      h.n_sc = static_cast<std::uint32_t>(c.n_subcarriers());
    }
    if (entries_.size() >= 2) {
      h.nominal_period_s = entries_[1].t - entries_[0].t;
    }
    trace::TraceWriter writer(path, h);
    for (const auto& e : entries_) {
      writer.put_csi(StreamKind::kCsi, 0, e.t, e.csi);
      for (StreamKind k : kScalarOrder) {
        writer.put_scalar(k, 0, e.t, scalar_of(e, k));
      }
    }
    writer.close();
    return true;
  } catch (const TraceError&) {
    return false;
  }
}

CsiTrace CsiTrace::load(const std::string& path) {
  trace::TraceReader reader(path);
  const trace::TraceHeader& h = reader.header();
  if ((h.stream_mask & kScalarMask) != kScalarMask || h.n_units != 1) {
    throw TraceError(TraceError::Code::kMissingStream,
                     "not a CsiTrace recording (needs snr/rssi/tof/"
                     "true_distance streams on one unit): " + path);
  }

  CsiTrace trace;
  trace::TraceRecord rec;
  std::size_t next_scalar = 0;  // index into kScalarOrder for the open entry
  bool open = false;
  while (reader.next(rec)) {
    if (rec.kind == StreamKind::kCsi) {
      if (open && next_scalar != std::size(kScalarOrder)) {
        throw TraceError(TraceError::Code::kCorruptRecord,
                         "CsiTrace entry missing scalar readings: " + path);
      }
      TraceEntry e;
      e.t = rec.t;
      e.csi = rec.csi;
      trace.add(std::move(e));
      open = true;
      next_scalar = 0;
      continue;
    }
    if (!open || next_scalar >= std::size(kScalarOrder) ||
        rec.kind != kScalarOrder[next_scalar] ||
        rec.t != trace.entries_.back().t) {
      throw TraceError(TraceError::Code::kCorruptRecord,
                       "unexpected record order for a CsiTrace recording: " +
                           path);
    }
    scalar_slot(trace.entries_.back(), rec.kind) = rec.scalar;
    ++next_scalar;
  }
  if (open && next_scalar != std::size(kScalarOrder)) {
    throw TraceError(TraceError::Code::kCorruptRecord,
                     "CsiTrace entry missing scalar readings: " + path);
  }
  return trace;
}

}  // namespace mobiwlan
