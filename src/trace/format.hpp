// format.hpp — the mobiwlan binary trace format (version 2).
//
// The paper's rate-adaptation (§4.3) and MU-MIMO (§6.2) results are
// trace-based emulations: PHY observables are recorded once and every scheme
// replays identical channel conditions. This module defines the on-disk
// format those recordings use — compact, little-endian, streamed — and the
// typed error every reader/writer raises on malformed input.
//
// Layout (all integers little-endian, all floats IEEE-754 binary64):
//
//   offset  size  field
//   ------  ----  -----------------------------------------------------------
//        0     4  magic "MWTR" (0x5254574D as LE u32)
//        4     4  format version (2)
//        8     4  stream mask (bit k set => StreamKind k may appear)
//       12     4  n_units (links/APs; records carry unit < n_units)
//       16     4  n_tx   |
//       20     4  n_rx   | CSI geometry (0s allowed for scalar-only traces)
//       24     4  n_sc   |
//       28     4  reserved (0)
//       32     8  carrier_hz (f64, 0 if unknown)
//       40     8  nominal_period_s (f64, 0 if irregular/stream-of-reads)
//
// After the 48-byte header, the file is a sequence of chunks until EOF:
//
//   { u32 record_count, u32 payload_bytes } followed by payload_bytes of
//   records. Chunks bound the working set: a reader never materializes more
//   than one chunk, so multi-hour traces stream in constant memory.
//
// Each record is:
//
//   { u8 kind, u8 flags, u16 unit, f64 t, payload }
//
// where payload is one f64 for scalar kinds, or n_tx*n_rx*n_sc (re, im) f64
// pairs (row-major, the CsiMatrix layout) for matrix kinds. A record with
// flags bit 0 (kFlagAbsent) set carries NO payload: it logs a read that
// returned nothing (a fault-dropped export), so replaying a degraded run
// reproduces its absence pattern exactly. Timestamps are non-decreasing per
// (kind, unit) stream — the writer enforces it and the reader verifies it,
// because replay consumes each stream as an ordered log.
//
// Versioning policy: the magic identifies the family, the version the layout.
// A reader accepts exactly the versions it knows (currently 2; the legacy
// CsiTrace v1 "CSIT" layout is a different magic and is rejected with
// kBadMagic). Additive evolution (new StreamKinds) does not bump the version:
// unknown kinds in the mask are an error, so old readers refuse new traces
// loudly instead of misreading them.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

#include "phy/csi.hpp"

namespace mobiwlan::trace {

inline constexpr std::uint32_t kMagic = 0x5254574Du;  // "MWTR" little-endian
inline constexpr std::uint32_t kFormatVersion = 2;

/// One observable stream within a trace. A (kind, unit) pair is an ordered
/// log of reads: every consumer in the protocol loops reads its own stream
/// at non-decreasing times, so replay is a cursor walk per stream.
enum class StreamKind : std::uint8_t {
  kCsi = 0,           ///< measured (noisy) CSI fed to the classifier
  kRssi = 1,          ///< serving-link RSSI export (AP firmware)
  kTof = 2,           ///< noisy clock-quantized ToF reading
  kSnr = 3,           ///< true wideband SNR (drives the PHY error model)
  kTrueCsi = 4,       ///< noiseless ground-truth CSI (emulator-side aging)
  kTrueDistance = 5,  ///< ground-truth AP-client distance (never an input)
  kCsiFeedback = 6,   ///< measured CSI from beamforming sounding exchanges
  kScanRssi = 7,      ///< fresh client-side scan RSSI (roaming scans)
  kFeedbackOk = 8,    ///< 1/0: did the acked frame's PHY feedback survive
};

inline constexpr std::size_t kNumStreamKinds = 9;

/// Record flag: the read happened but returned nothing (dropped export).
inline constexpr std::uint8_t kFlagAbsent = 1;

constexpr std::uint32_t stream_bit(StreamKind k) {
  return 1u << static_cast<unsigned>(k);
}

/// Matrix-payload kinds carry a full CsiMatrix; everything else one f64.
constexpr bool is_matrix_kind(StreamKind k) {
  return k == StreamKind::kCsi || k == StreamKind::kTrueCsi ||
         k == StreamKind::kCsiFeedback;
}

std::string_view to_string(StreamKind k);

/// Fixed-size file header: link metadata and geometry shared by all records.
struct TraceHeader {
  std::uint32_t stream_mask = 0;
  std::uint32_t n_units = 1;
  std::uint32_t n_tx = 0;
  std::uint32_t n_rx = 0;
  std::uint32_t n_sc = 0;
  double carrier_hz = 0.0;
  double nominal_period_s = 0.0;

  bool has(StreamKind k) const { return (stream_mask & stream_bit(k)) != 0; }
  std::size_t csi_values() const {
    return static_cast<std::size_t>(n_tx) * n_rx * n_sc;
  }
};

/// One decoded record. `csi` is populated only for matrix kinds, `scalar`
/// only for scalar kinds; neither is meaningful when `present` is false.
struct TraceRecord {
  StreamKind kind = StreamKind::kCsi;
  std::uint32_t unit = 0;
  double t = 0.0;
  double scalar = 0.0;
  bool present = true;
  CsiMatrix csi;
};

/// Typed trace error: every malformed-input and misuse condition carries a
/// code, so tests and gates can assert the *reason*, not just "it threw".
/// Derives std::runtime_error so pre-existing catch sites keep working.
class TraceError : public std::runtime_error {
 public:
  enum class Code {
    kOpenFailed,       ///< file cannot be opened / created
    kBadMagic,         ///< not a MWTR trace (includes legacy v1 files)
    kBadVersion,       ///< MWTR family but an unknown format version
    kTruncated,        ///< EOF inside the header, a chunk, or a record
    kNonMonotoneTime,  ///< timestamps regress within a (kind, unit) stream
    kBadGeometry,      ///< header geometry invalid or matrix dims mismatch
    kCorruptRecord,    ///< undecodable record (kind/unit/size out of range)
    kMissingStream,    ///< consumer requires a stream the trace lacks
    kTimestampSkew,    ///< strict replay: query times diverge from the log
    kWriteFailed,      ///< I/O error while writing
  };

  TraceError(Code code, const std::string& what)
      : std::runtime_error(what), code_(code) {}

  Code code() const { return code_; }

 private:
  Code code_;
};

std::string_view to_string(TraceError::Code c);

}  // namespace mobiwlan::trace
