#include "trace/import.hpp"

#include <cstdlib>
#include <fstream>
#include <memory>
#include <optional>
#include <sstream>
#include <vector>

#include "trace/trace_io.hpp"

namespace mobiwlan::trace {

namespace {

std::vector<std::string> split_csv(const std::string& line) {
  std::vector<std::string> out;
  std::string field;
  std::istringstream ss(line);
  while (std::getline(ss, field, ',')) out.push_back(field);
  if (!line.empty() && line.back() == ',') out.emplace_back();
  return out;
}

std::string strip(const std::string& s) {
  std::size_t b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) return "";
  std::size_t e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

std::optional<StreamKind> kind_from_name(const std::string& name) {
  for (std::size_t k = 0; k < kNumStreamKinds; ++k) {
    const auto kind = static_cast<StreamKind>(k);
    if (name == to_string(kind)) return kind;
  }
  return std::nullopt;
}

double parse_f64(const std::string& field, std::size_t line_no,
                 const char* what) {
  const std::string s = strip(field);
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (s.empty() || end != s.c_str() + s.size()) {
    throw TraceError(TraceError::Code::kCorruptRecord,
                     "csv line " + std::to_string(line_no) + ": bad " + what +
                         " '" + s + "'");
  }
  return v;
}

std::uint32_t parse_u32(const std::string& field, std::size_t line_no,
                        const char* what) {
  const double v = parse_f64(field, line_no, what);
  if (v < 0.0 || v != static_cast<double>(static_cast<std::uint32_t>(v))) {
    throw TraceError(TraceError::Code::kCorruptRecord,
                     "csv line " + std::to_string(line_no) + ": bad " + what);
  }
  return static_cast<std::uint32_t>(v);
}

}  // namespace

std::uint64_t import_csv(const std::string& csv_path,
                         const std::string& out_path) {
  std::ifstream in(csv_path);
  if (!in) {
    throw TraceError(TraceError::Code::kOpenFailed,
                     "cannot open csv trace: " + csv_path);
  }

  TraceHeader header;
  header.n_units = 1;
  bool saw_magic = false;
  bool saw_streams = false;
  bool in_data = false;

  std::unique_ptr<TraceWriter> writer;
  CsiMatrix csi;
  std::string line;
  std::size_t line_no = 0;

  while (std::getline(in, line)) {
    ++line_no;
    const std::string text = strip(line);
    if (text.empty() || text[0] == '#') continue;
    const std::vector<std::string> f = split_csv(text);

    if (!saw_magic) {
      if (f.size() != 2 || strip(f[0]) != "mwtr-csv") {
        throw TraceError(TraceError::Code::kBadMagic,
                         "csv line " + std::to_string(line_no) +
                             ": expected 'mwtr-csv,<version>' directive");
      }
      if (parse_u32(f[1], line_no, "version") != kFormatVersion) {
        throw TraceError(TraceError::Code::kBadVersion,
                         "csv trace declares unsupported version " +
                             strip(f[1]));
      }
      saw_magic = true;
      continue;
    }

    if (!in_data) {
      const std::string key = strip(f[0]);
      if (key == "data") {
        if (!saw_streams) {
          throw TraceError(TraceError::Code::kMissingStream,
                           "csv trace declares no 'streams' directive");
        }
        writer = std::make_unique<TraceWriter>(out_path, header);
        in_data = true;
      } else if (key == "streams") {
        for (std::size_t i = 1; i < f.size(); ++i) {
          const auto kind = kind_from_name(strip(f[i]));
          if (!kind) {
            throw TraceError(TraceError::Code::kCorruptRecord,
                             "csv line " + std::to_string(line_no) +
                                 ": unknown stream kind '" + strip(f[i]) +
                                 "'");
          }
          header.stream_mask |= stream_bit(*kind);
        }
        saw_streams = header.stream_mask != 0;
      } else if (key == "units" && f.size() == 2) {
        header.n_units = parse_u32(f[1], line_no, "units");
      } else if (key == "geometry" && f.size() == 4) {
        header.n_tx = parse_u32(f[1], line_no, "n_tx");
        header.n_rx = parse_u32(f[2], line_no, "n_rx");
        header.n_sc = parse_u32(f[3], line_no, "n_sc");
      } else if (key == "carrier_hz" && f.size() == 2) {
        header.carrier_hz = parse_f64(f[1], line_no, "carrier_hz");
      } else if (key == "period_s" && f.size() == 2) {
        header.nominal_period_s = parse_f64(f[1], line_no, "period_s");
      } else {
        throw TraceError(TraceError::Code::kCorruptRecord,
                         "csv line " + std::to_string(line_no) +
                             ": unknown directive '" + key + "'");
      }
      continue;
    }

    // Data row: kind,unit,t,values...
    if (f.size() < 4) {
      throw TraceError(TraceError::Code::kCorruptRecord,
                       "csv line " + std::to_string(line_no) +
                           ": data row needs kind,unit,t,value...");
    }
    const auto kind = kind_from_name(strip(f[0]));
    if (!kind) {
      throw TraceError(TraceError::Code::kCorruptRecord,
                       "csv line " + std::to_string(line_no) +
                           ": unknown stream kind '" + strip(f[0]) + "'");
    }
    const std::uint32_t unit = parse_u32(f[1], line_no, "unit");
    const double t = parse_f64(f[2], line_no, "timestamp");

    if (is_matrix_kind(*kind)) {
      const std::size_t want = 2 * header.csi_values();
      if (f.size() - 3 != want) {
        throw TraceError(TraceError::Code::kCorruptRecord,
                         "csv line " + std::to_string(line_no) + ": " +
                             std::string(to_string(*kind)) + " row carries " +
                             std::to_string(f.size() - 3) + " values, needs " +
                             std::to_string(want));
      }
      csi.resize_for_overwrite(header.n_tx, header.n_rx, header.n_sc);
      auto& raw = csi.raw();
      for (std::size_t i = 0; i < header.csi_values(); ++i) {
        raw[i] = {parse_f64(f[3 + 2 * i], line_no, "re"),
                  parse_f64(f[4 + 2 * i], line_no, "im")};
      }
      writer->put_csi(*kind, unit, t, csi);
    } else {
      if (f.size() != 4) {
        throw TraceError(TraceError::Code::kCorruptRecord,
                         "csv line " + std::to_string(line_no) +
                             ": scalar row carries more than one value");
      }
      writer->put_scalar(*kind, unit, t, parse_f64(f[3], line_no, "value"));
    }
  }

  if (!saw_magic) {
    throw TraceError(TraceError::Code::kBadMagic,
                     "csv trace is empty: " + csv_path);
  }
  if (!in_data) {
    throw TraceError(TraceError::Code::kTruncated,
                     "csv trace has no 'data' section: " + csv_path);
  }
  const std::uint64_t n = writer->records_written();
  writer->close();
  return n;
}

}  // namespace mobiwlan::trace
