// import.hpp — text/CSV import into the binary MWTR trace format.
//
// External captures (e.g. a distributed CSI testbed export, arXiv
// 2412.07588) arrive as text; this converter turns a documented CSV layout
// into a v2 binary trace so every replay consumer works unchanged. The CSV
// is line-oriented, comma-separated; blank lines and lines starting with `#`
// are ignored:
//
//   mwtr-csv,2                     <- required first directive: family, version
//   streams,csi,rssi,tof           <- stream kinds the trace declares
//   units,2                        <- optional, default 1
//   geometry,3,2,16                <- n_tx,n_rx,n_sc; required with CSI kinds
//   carrier_hz,5.785e9             <- optional link metadata
//   period_s,0.05                  <- optional nominal sampling period
//   data                           <- ends the directive section
//   csi,0,0.00,re,im,re,im,...     <- kind,unit,t, then n_tx*n_rx*n_sc
//                                     (re, im) pairs row-major
//   rssi,0,0.00,-41.5              <- scalar kinds carry one value
//
// Rows must be grouped so timestamps are non-decreasing per (kind, unit).
// Every malformed input raises TraceError with the matching code — the same
// hardening contract as the binary reader.
#pragma once

#include <string>

#include "trace/format.hpp"

namespace mobiwlan::trace {

/// Converts `csv_path` into a binary trace at `out_path`. Returns the number
/// of records written. Throws TraceError (kOpenFailed, kBadMagic,
/// kBadVersion, kBadGeometry, kCorruptRecord, kNonMonotoneTime,
/// kMissingStream, kWriteFailed).
std::uint64_t import_csv(const std::string& csv_path,
                         const std::string& out_path);

}  // namespace mobiwlan::trace
