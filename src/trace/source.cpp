#include "trace/source.hpp"

#include <string>

namespace mobiwlan::trace {

void ObservableSource::tof_sweep(double t, std::optional<double>* out) {
  const std::size_t n = n_units();
  for (std::size_t u = 0; u < n; ++u) {
    out[u] = tof_cycles(static_cast<std::uint32_t>(u), t);
  }
}

std::optional<std::size_t> ObservableSource::strongest_unit(double t) {
  std::optional<std::size_t> best;
  double best_rssi = 0.0;
  const std::size_t n = n_units();
  for (std::size_t u = 0; u < n; ++u) {
    const auto rssi = scan_rssi_dbm(static_cast<std::uint32_t>(u), t);
    if (!rssi) continue;
    if (!best || *rssi > best_rssi) {
      best = u;
      best_rssi = *rssi;
    }
  }
  return best;
}

void ObservableSource::require(std::initializer_list<StreamKind> kinds,
                               const char* consumer) const {
  std::string missing;
  for (StreamKind k : kinds) {
    if (has(k)) continue;
    if (!missing.empty()) missing += ", ";
    missing += to_string(k);
  }
  if (missing.empty()) return;
  throw TraceError(TraceError::Code::kMissingStream,
                   std::string(consumer) +
                       " requires observable stream(s) this source lacks: " +
                       missing);
}

bool RecordingSource::csi(std::uint32_t unit, double t, CsiMatrix& out) {
  if (!inner_.csi(unit, t, out)) {
    writer_.put_absent(StreamKind::kCsi, unit, t);
    return false;
  }
  writer_.put_csi(StreamKind::kCsi, unit, t, out);
  return true;
}

bool RecordingSource::csi_feedback(std::uint32_t unit, double t,
                                   CsiMatrix& out) {
  if (!inner_.csi_feedback(unit, t, out)) {
    writer_.put_absent(StreamKind::kCsiFeedback, unit, t);
    return false;
  }
  writer_.put_csi(StreamKind::kCsiFeedback, unit, t, out);
  return true;
}

bool RecordingSource::csi_true(std::uint32_t unit, double t, CsiMatrix& out) {
  if (!inner_.csi_true(unit, t, out)) {
    writer_.put_absent(StreamKind::kTrueCsi, unit, t);
    return false;
  }
  writer_.put_csi(StreamKind::kTrueCsi, unit, t, out);
  return true;
}

std::optional<double> RecordingSource::log_scalar(StreamKind kind,
                                                  std::uint32_t unit, double t,
                                                  std::optional<double> v) {
  if (v)
    writer_.put_scalar(kind, unit, t, *v);
  else
    writer_.put_absent(kind, unit, t);
  return v;
}

bool RecordingSource::feedback_delivered(std::uint32_t unit, double t) {
  const bool ok = inner_.feedback_delivered(unit, t);
  writer_.put_scalar(StreamKind::kFeedbackOk, unit, t, ok ? 1.0 : 0.0);
  return ok;
}

std::optional<double> RecordingSource::rssi_dbm(std::uint32_t unit, double t) {
  return log_scalar(StreamKind::kRssi, unit, t, inner_.rssi_dbm(unit, t));
}

std::optional<double> RecordingSource::scan_rssi_dbm(std::uint32_t unit,
                                                     double t) {
  return log_scalar(StreamKind::kScanRssi, unit, t,
                    inner_.scan_rssi_dbm(unit, t));
}

std::optional<double> RecordingSource::tof_cycles(std::uint32_t unit,
                                                  double t) {
  return log_scalar(StreamKind::kTof, unit, t, inner_.tof_cycles(unit, t));
}

std::optional<double> RecordingSource::snr_db(std::uint32_t unit, double t) {
  return log_scalar(StreamKind::kSnr, unit, t, inner_.snr_db(unit, t));
}

std::optional<double> RecordingSource::true_distance(std::uint32_t unit,
                                                     double t) {
  return log_scalar(StreamKind::kTrueDistance, unit, t,
                    inner_.true_distance(unit, t));
}

void RecordingSource::tof_sweep(double t, std::optional<double>* out) {
  // Forward to the inner (possibly batched) sweep so the channel draw order
  // is untouched, then log every present reading in unit order.
  inner_.tof_sweep(t, out);
  const std::size_t n = n_units();
  for (std::size_t u = 0; u < n; ++u) {
    if (out[u]) {
      writer_.put_scalar(StreamKind::kTof, static_cast<std::uint32_t>(u), t,
                         *out[u]);
    } else {
      writer_.put_absent(StreamKind::kTof, static_cast<std::uint32_t>(u), t);
    }
  }
}

TraceHeader RecordingSource::header_for(const ObservableSource& src,
                                        const ChannelConfig& config) {
  TraceHeader h;
  h.n_units = static_cast<std::uint32_t>(src.n_units());
  h.n_tx = static_cast<std::uint32_t>(config.n_tx);
  h.n_rx = static_cast<std::uint32_t>(config.n_rx);
  h.n_sc = static_cast<std::uint32_t>(config.n_subcarriers);
  h.carrier_hz = config.carrier_hz;
  h.nominal_period_s = 0.0;  // stream-of-reads: query times are irregular
  for (std::size_t k = 0; k < kNumStreamKinds; ++k) {
    const auto kind = static_cast<StreamKind>(k);
    if (src.has(kind)) h.stream_mask |= stream_bit(kind);
  }
  return h;
}

FaultedSource::FaultedSource(ObservableSource& inner, const FaultPlan& plan)
    : inner_(inner), plan_(plan) {
  const std::size_t n = inner.n_units();
  csi_fault_.reserve(n);
  tof_fault_.reserve(n);
  rssi_fault_.reserve(n);
  feedback_fault_.reserve(n);
  for (std::size_t u = 0; u < n; ++u) {
    csi_fault_.push_back(make_stream(plan, FaultStreamKind::kCsi, u));
    tof_fault_.push_back(make_stream(plan, FaultStreamKind::kTof, u));
    rssi_fault_.push_back(make_stream(plan, FaultStreamKind::kRssi, u));
    feedback_fault_.push_back(make_stream(plan, FaultStreamKind::kFeedback, u));
  }
}

bool FaultedSource::csi(std::uint32_t unit, double t, CsiMatrix& out) {
  if (plan_.rssi_only) return false;
  if (!csi_fault_[unit].deliver(t)) return false;
  return inner_.csi(unit, csi_fault_[unit].measured_t(t), out);
}

std::optional<double> FaultedSource::rssi_dbm(std::uint32_t unit, double t) {
  if (!rssi_fault_[unit].deliver(t)) return std::nullopt;
  return inner_.rssi_dbm(unit, rssi_fault_[unit].measured_t(t));
}

std::optional<double> FaultedSource::tof_cycles(std::uint32_t unit, double t) {
  if (plan_.rssi_only) return std::nullopt;
  if (!tof_fault_[unit].deliver(t)) return std::nullopt;
  return inner_.tof_cycles(unit, tof_fault_[unit].measured_t(t));
}

bool FaultedSource::feedback_delivered(std::uint32_t unit, double t) {
  if (plan_.rssi_only) return false;
  if (!feedback_fault_[unit].deliver(t)) return false;
  return inner_.feedback_delivered(unit, t);
}

}  // namespace mobiwlan::trace
