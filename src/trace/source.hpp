// source.hpp — the observable-source abstraction behind every protocol loop.
//
// The paper's protocols consume PHY observables (CSI, RSSI, ToF, SNR) that
// this repo historically read straight off the live synthetic channel.
// ObservableSource puts one interface in front of those reads so the same
// protocol code runs in three modes:
//
//   synthetic          — LiveChannelSource / LiveDeploymentSource forward to
//                        the WirelessChannel / WlanDeployment exactly as the
//                        loops used to call them (same RNG draw order, so the
//                        live wrappers are bitwise-identical to the
//                        pre-source code);
//   recorded-synthetic — RecordingSource tees every successful read into a
//                        TraceWriter ("stream of reads": because the loops
//                        are deterministic given their config and seed,
//                        logging each read at its query time makes replay
//                        bit-identical by construction, even for
//                        decision-dependent query times);
//   replayed           — trace::TraceSource (trace_source.hpp) serves the
//                        same reads back from the recorded log.
//
// FaultedSource composes PR 5's fault layer over any source: drops and
// staleness apply identically to a live channel or a replayed trace, and a
// dropped reading never touches the inner source (the export was lost, not
// taken differently) — the same bitwise-invisibility contract
// DegradedObservables keeps.
//
// Absence contract: a read returns false / nullopt when the observable is
// not available (dropped by a fault process, or missing from a replayed
// trace). Consumers already treat absence as "export lost" and route it
// through the classifier's hold-then-decay path — gaps are never silently
// interpolated.
#pragma once

#include <initializer_list>
#include <optional>

#include "chan/channel.hpp"
#include "fault/fault.hpp"
#include "trace/format.hpp"
#include "trace/trace_io.hpp"

namespace mobiwlan::trace {

class ObservableSource {
 public:
  virtual ~ObservableSource() = default;

  /// Number of links (APs) this source observes.
  virtual std::size_t n_units() const = 0;

  /// Whether this source can ever serve the given stream.
  virtual bool has(StreamKind kind) const = 0;

  // Matrix reads fill `out` and return true when the observable is
  // available; scalar reads return nullopt when it is not.
  virtual bool csi(std::uint32_t unit, double t, CsiMatrix& out) = 0;
  virtual bool csi_feedback(std::uint32_t unit, double t, CsiMatrix& out) = 0;
  virtual bool csi_true(std::uint32_t unit, double t, CsiMatrix& out) = 0;
  virtual std::optional<double> rssi_dbm(std::uint32_t unit, double t) = 0;
  virtual std::optional<double> scan_rssi_dbm(std::uint32_t unit,
                                              double t) = 0;
  virtual std::optional<double> tof_cycles(std::uint32_t unit, double t) = 0;
  virtual std::optional<double> snr_db(std::uint32_t unit, double t) = 0;
  virtual std::optional<double> true_distance(std::uint32_t unit,
                                              double t) = 0;

  /// Whether PHY feedback piggybacked on the frame acked at t survives.
  /// Delivery is a fault-layer property, not a recorded observable: only
  /// FaultedSource overrides it.
  virtual bool feedback_delivered(std::uint32_t unit, double t) {
    (void)unit;
    (void)t;
    return true;
  }

  /// The controller's neighbor ToF sweep: one reading per unit at time t
  /// into out[0..n_units). Default: per-unit tof_cycles in unit order.
  /// LiveDeploymentSource overrides with the batched sweep (same per-link
  /// draw order, so both paths are bitwise-equal).
  virtual void tof_sweep(double t, std::optional<double>* out);

  /// Unit with the strongest scan RSSI at t (first wins on ties), or nullopt
  /// when no scan reading is available. Default: per-unit scan_rssi_dbm in
  /// unit order — the draw sequence WlanDeployment::strongest_ap's batched
  /// scan is bitwise-equal to.
  virtual std::optional<std::size_t> strongest_unit(double t);

  /// The missing-feedback check (arXiv 2002.03905): refuses to run a
  /// consumer over a source lacking a stream it requires, instead of letting
  /// replay silently produce absence for every read. Throws
  /// TraceError::Code::kMissingStream naming the consumer and the streams.
  void require(std::initializer_list<StreamKind> kinds,
               const char* consumer) const;
};

/// Live single-link source over one WirelessChannel. Unit 0 only.
class LiveChannelSource : public ObservableSource {
 public:
  explicit LiveChannelSource(WirelessChannel& channel) : channel_(channel) {}

  std::size_t n_units() const override { return 1; }
  bool has(StreamKind) const override { return true; }

  bool csi(std::uint32_t, double t, CsiMatrix& out) override {
    channel_.csi_at_into(t, out, scratch_);
    return true;
  }
  bool csi_feedback(std::uint32_t u, double t, CsiMatrix& out) override {
    return csi(u, t, out);
  }
  bool csi_true(std::uint32_t, double t, CsiMatrix& out) override {
    channel_.csi_true_into(t, out, scratch_);
    return true;
  }
  std::optional<double> rssi_dbm(std::uint32_t, double t) override {
    return channel_.rssi_dbm(t);
  }
  std::optional<double> scan_rssi_dbm(std::uint32_t u, double t) override {
    return rssi_dbm(u, t);
  }
  std::optional<double> tof_cycles(std::uint32_t, double t) override {
    return channel_.tof_cycles(t);
  }
  std::optional<double> snr_db(std::uint32_t, double t) override {
    return channel_.snr_db(t);
  }
  std::optional<double> true_distance(std::uint32_t, double t) override {
    return channel_.true_distance(t);
  }

  WirelessChannel& channel() { return channel_; }

 private:
  WirelessChannel& channel_;
  WirelessChannel::PathScratch scratch_;
};

/// Tee: forwards every read to `inner` and logs each one to the writer at
/// its query time — present reads with their value, absent reads as absence
/// records, feedback-delivery checks as the kFeedbackOk stream — so a
/// degraded run replays with its exact absence pattern. strongest_unit()
/// deliberately uses the base per-unit sweep so every scan reading is
/// individually recorded (bitwise equal to the batched scan); tof_sweep()
/// forwards to the inner (batched) sweep to preserve its draw lockstep, then
/// records the per-unit readings.
class RecordingSource : public ObservableSource {
 public:
  RecordingSource(ObservableSource& inner, TraceWriter& writer)
      : inner_(inner), writer_(writer) {}

  std::size_t n_units() const override { return inner_.n_units(); }
  bool has(StreamKind kind) const override { return inner_.has(kind); }

  bool csi(std::uint32_t unit, double t, CsiMatrix& out) override;
  bool csi_feedback(std::uint32_t unit, double t, CsiMatrix& out) override;
  bool csi_true(std::uint32_t unit, double t, CsiMatrix& out) override;
  std::optional<double> rssi_dbm(std::uint32_t unit, double t) override;
  std::optional<double> scan_rssi_dbm(std::uint32_t unit, double t) override;
  std::optional<double> tof_cycles(std::uint32_t unit, double t) override;
  std::optional<double> snr_db(std::uint32_t unit, double t) override;
  std::optional<double> true_distance(std::uint32_t unit, double t) override;
  bool feedback_delivered(std::uint32_t unit, double t) override;
  void tof_sweep(double t, std::optional<double>* out) override;

  /// The header a recording over `src` should carry: geometry from the
  /// channel config, all streams the source can serve.
  static TraceHeader header_for(const ObservableSource& src,
                                const ChannelConfig& config);

 private:
  std::optional<double> log_scalar(StreamKind kind, std::uint32_t unit,
                                   double t, std::optional<double> v);

  ObservableSource& inner_;
  TraceWriter& writer_;
};

/// Fault-composed view over any source: PR 5's FaultPlan applied per unit.
/// Dropped reads skip the inner source entirely; delayed reads query it at
/// measured_t. Over a live source with unit 0 this is draw-for-draw
/// identical to DegradedObservables; over a TraceSource it injects drops
/// and staleness into replay deterministically.
class FaultedSource : public ObservableSource {
 public:
  FaultedSource(ObservableSource& inner, const FaultPlan& plan);

  std::size_t n_units() const override { return inner_.n_units(); }
  bool has(StreamKind kind) const override { return inner_.has(kind); }

  bool csi(std::uint32_t unit, double t, CsiMatrix& out) override;
  bool csi_feedback(std::uint32_t unit, double t, CsiMatrix& out) override {
    return inner_.csi_feedback(unit, t, out);  // active exchange, never faulted
  }
  bool csi_true(std::uint32_t unit, double t, CsiMatrix& out) override {
    return inner_.csi_true(unit, t, out);  // emulator ground truth
  }
  std::optional<double> rssi_dbm(std::uint32_t unit, double t) override;
  std::optional<double> scan_rssi_dbm(std::uint32_t unit, double t) override {
    return inner_.scan_rssi_dbm(unit, t);  // client-side fresh measurement
  }
  std::optional<double> tof_cycles(std::uint32_t unit, double t) override;
  std::optional<double> snr_db(std::uint32_t unit, double t) override {
    return inner_.snr_db(unit, t);
  }
  std::optional<double> true_distance(std::uint32_t unit, double t) override {
    return inner_.true_distance(unit, t);
  }
  bool feedback_delivered(std::uint32_t unit, double t) override;

  /// Scans are client-side fresh measurements: pass through so a batched
  /// inner scan (LiveDeploymentSource) keeps its fast path.
  std::optional<std::size_t> strongest_unit(double t) override {
    return inner_.strongest_unit(t);
  }

  const FaultPlan& plan() const { return plan_; }

 private:
  ObservableSource& inner_;
  FaultPlan plan_;
  std::vector<FaultStream> csi_fault_;
  std::vector<FaultStream> tof_fault_;
  std::vector<FaultStream> rssi_fault_;
  std::vector<FaultStream> feedback_fault_;
};

}  // namespace mobiwlan::trace
