#include "trace/trace_io.hpp"

#include <cstring>
#include <limits>

namespace mobiwlan::trace {

namespace {

// Chunk payloads flush at this size; a single record larger than it (a big
// CSI matrix) still forms its own chunk.
constexpr std::size_t kChunkBytes = 256 * 1024;

// Sanity bounds rejecting absurd headers/chunks before any allocation, so a
// corrupt size field cannot OOM the reader.
constexpr std::uint32_t kMaxUnits = 1u << 16;
constexpr std::size_t kMaxCsiValues = 1u << 24;
constexpr std::uint32_t kMaxChunkPayload = 1u << 30;

constexpr std::size_t kRecordHeadBytes = 1 + 1 + 2 + 8;  // kind,flags,unit,t

static_assert(sizeof(double) == 8, "MWTR requires 8-byte IEEE doubles");

void append_bytes(std::vector<unsigned char>& buf, const void* p,
                  std::size_t n) {
  const auto* b = static_cast<const unsigned char*>(p);
  buf.insert(buf.end(), b, b + n);
}

void check_geometry(const TraceHeader& h) {
  if (h.n_units == 0 || h.n_units > kMaxUnits)
    throw TraceError(TraceError::Code::kBadGeometry,
                     "trace header: invalid unit count");
  bool any_matrix = false;
  for (std::size_t k = 0; k < kNumStreamKinds; ++k)
    if (h.has(static_cast<StreamKind>(k)) &&
        is_matrix_kind(static_cast<StreamKind>(k)))
      any_matrix = true;
  if (h.stream_mask >= (1u << kNumStreamKinds))
    throw TraceError(TraceError::Code::kBadGeometry,
                     "trace header: unknown stream kinds in mask");
  if (any_matrix && h.csi_values() == 0)
    throw TraceError(TraceError::Code::kBadGeometry,
                     "trace header: matrix streams declared with zero "
                     "CSI geometry");
  if (h.csi_values() > kMaxCsiValues)
    throw TraceError(TraceError::Code::kBadGeometry,
                     "trace header: CSI geometry implausibly large");
}

}  // namespace

std::string_view to_string(StreamKind k) {
  switch (k) {
    case StreamKind::kCsi: return "csi";
    case StreamKind::kRssi: return "rssi";
    case StreamKind::kTof: return "tof";
    case StreamKind::kSnr: return "snr";
    case StreamKind::kTrueCsi: return "true_csi";
    case StreamKind::kTrueDistance: return "true_distance";
    case StreamKind::kCsiFeedback: return "csi_feedback";
    case StreamKind::kScanRssi: return "scan_rssi";
    case StreamKind::kFeedbackOk: return "feedback_ok";
  }
  return "?";
}

std::string_view to_string(TraceError::Code c) {
  switch (c) {
    case TraceError::Code::kOpenFailed: return "open-failed";
    case TraceError::Code::kBadMagic: return "bad-magic";
    case TraceError::Code::kBadVersion: return "bad-version";
    case TraceError::Code::kTruncated: return "truncated";
    case TraceError::Code::kNonMonotoneTime: return "non-monotone-time";
    case TraceError::Code::kBadGeometry: return "bad-geometry";
    case TraceError::Code::kCorruptRecord: return "corrupt-record";
    case TraceError::Code::kMissingStream: return "missing-stream";
    case TraceError::Code::kTimestampSkew: return "timestamp-skew";
    case TraceError::Code::kWriteFailed: return "write-failed";
  }
  return "?";
}

// ---- TraceWriter ----------------------------------------------------------

TraceWriter::TraceWriter(const std::string& path, const TraceHeader& header)
    : path_(path), header_(header) {
  check_geometry(header_);
  f_ = std::fopen(path.c_str(), "wb");
  if (f_ == nullptr)
    throw TraceError(TraceError::Code::kOpenFailed,
                     "cannot create trace file: " + path);
  last_t_.assign(kNumStreamKinds * header_.n_units,
                 -std::numeric_limits<double>::infinity());
  buf_.reserve(kChunkBytes + 4096);

  unsigned char head[48];
  std::size_t off = 0;
  auto put_u32 = [&](std::uint32_t v) {
    std::memcpy(head + off, &v, 4);
    off += 4;
  };
  auto put_f64 = [&](double v) {
    std::memcpy(head + off, &v, 8);
    off += 8;
  };
  put_u32(kMagic);
  put_u32(kFormatVersion);
  put_u32(header_.stream_mask);
  put_u32(header_.n_units);
  put_u32(header_.n_tx);
  put_u32(header_.n_rx);
  put_u32(header_.n_sc);
  put_u32(0);  // reserved
  put_f64(header_.carrier_hz);
  put_f64(header_.nominal_period_s);
  if (std::fwrite(head, 1, sizeof head, f_) != sizeof head) {
    std::fclose(f_);
    f_ = nullptr;
    throw TraceError(TraceError::Code::kWriteFailed,
                     "cannot write trace header: " + path);
  }
}

TraceWriter::~TraceWriter() {
  try {
    close();
  } catch (const TraceError&) {
    // Destructors must not throw; an explicit close() surfaces the error.
  }
}

void TraceWriter::begin_record(StreamKind kind, std::uint32_t unit, double t,
                               std::uint8_t flags) {
  if (!header_.has(kind))
    throw TraceError(TraceError::Code::kMissingStream,
                     std::string("trace write: stream '") +
                         std::string(to_string(kind)) +
                         "' not declared in header");
  if (unit >= header_.n_units)
    throw TraceError(TraceError::Code::kCorruptRecord,
                     "trace write: unit out of range");
  double& last =
      last_t_[static_cast<std::size_t>(kind) * header_.n_units + unit];
  if (t < last)
    throw TraceError(TraceError::Code::kNonMonotoneTime,
                     std::string("trace write: time regresses on stream '") +
                         std::string(to_string(kind)) + "'");
  last = t;

  const std::uint8_t k = static_cast<std::uint8_t>(kind);
  const std::uint16_t u = static_cast<std::uint16_t>(unit);
  append_bytes(buf_, &k, 1);
  append_bytes(buf_, &flags, 1);
  append_bytes(buf_, &u, 2);
  append_bytes(buf_, &t, 8);
  ++chunk_records_;
  ++n_records_;
}

void TraceWriter::put_absent(StreamKind kind, std::uint32_t unit, double t) {
  begin_record(kind, unit, t, kFlagAbsent);
  if (buf_.size() >= kChunkBytes) flush_chunk();
}

void TraceWriter::put_scalar(StreamKind kind, std::uint32_t unit, double t,
                             double value) {
  if (is_matrix_kind(kind))
    throw TraceError(TraceError::Code::kCorruptRecord,
                     "trace write: scalar payload for a matrix stream");
  begin_record(kind, unit, t);
  append_bytes(buf_, &value, 8);
  if (buf_.size() >= kChunkBytes) flush_chunk();
}

void TraceWriter::put_csi(StreamKind kind, std::uint32_t unit, double t,
                          const CsiMatrix& csi) {
  if (!is_matrix_kind(kind))
    throw TraceError(TraceError::Code::kCorruptRecord,
                     "trace write: matrix payload for a scalar stream");
  if (csi.n_tx() != header_.n_tx || csi.n_rx() != header_.n_rx ||
      csi.n_subcarriers() != header_.n_sc)
    throw TraceError(TraceError::Code::kBadGeometry,
                     "trace write: CSI dimensions do not match the header");
  begin_record(kind, unit, t);
  // std::complex<double> is layout-compatible with double[2] (re, im), which
  // is exactly the on-disk payload — one memcpy-style append.
  append_bytes(buf_, csi.raw().data(),
               csi.raw().size() * sizeof(std::complex<double>));
  if (buf_.size() >= kChunkBytes) flush_chunk();
}

void TraceWriter::flush_chunk() {
  if (chunk_records_ == 0) return;
  if (f_ == nullptr)
    throw TraceError(TraceError::Code::kWriteFailed,
                     "trace write after close: " + path_);
  const std::uint32_t count = chunk_records_;
  const std::uint32_t bytes = static_cast<std::uint32_t>(buf_.size());
  bool ok = std::fwrite(&count, 4, 1, f_) == 1;
  ok = ok && std::fwrite(&bytes, 4, 1, f_) == 1;
  ok = ok && (buf_.empty() || std::fwrite(buf_.data(), 1, buf_.size(), f_) ==
                                  buf_.size());
  if (!ok)
    throw TraceError(TraceError::Code::kWriteFailed,
                     "cannot write trace chunk: " + path_);
  buf_.clear();
  chunk_records_ = 0;
}

void TraceWriter::close() {
  if (f_ == nullptr) return;
  flush_chunk();
  const bool ok = std::fflush(f_) == 0;
  std::fclose(f_);
  f_ = nullptr;
  if (!ok)
    throw TraceError(TraceError::Code::kWriteFailed,
                     "cannot flush trace file: " + path_);
}

// ---- TraceReader ----------------------------------------------------------

TraceReader::TraceReader(const std::string& path) : path_(path) {
  f_ = std::fopen(path.c_str(), "rb");
  if (f_ == nullptr)
    throw TraceError(TraceError::Code::kOpenFailed,
                     "cannot open trace file: " + path);
  try {
    unsigned char head[48];
    const std::size_t got = std::fread(head, 1, sizeof head, f_);
    // A short file that cannot even hold the magic is classified by what is
    // there: wrong magic bytes beat "truncated" so garbage files report
    // kBadMagic (matching the legacy loader's behaviour), while a file that
    // starts like a real trace but ends early reports kTruncated.
    std::uint32_t magic = 0;
    if (got >= 4) std::memcpy(&magic, head, 4);
    if (got < 4 || magic != kMagic) {
      if (got >= 4 && magic == 0x43534954u)  // legacy CsiTrace v1 "CSIT"
        throw TraceError(TraceError::Code::kBadVersion,
                         "legacy v1 trace (re-record in the v2 format): " +
                             path);
      throw TraceError(TraceError::Code::kBadMagic,
                       "not a MWTR trace: " + path);
    }
    if (got < sizeof head)
      throw TraceError(TraceError::Code::kTruncated,
                       "truncated trace header: " + path);
    std::size_t off = 4;
    auto get_u32 = [&] {
      std::uint32_t v = 0;
      std::memcpy(&v, head + off, 4);
      off += 4;
      return v;
    };
    const std::uint32_t version = get_u32();
    if (version != kFormatVersion)
      throw TraceError(TraceError::Code::kBadVersion,
                       "unsupported trace format version: " + path);
    header_.stream_mask = get_u32();
    header_.n_units = get_u32();
    header_.n_tx = get_u32();
    header_.n_rx = get_u32();
    header_.n_sc = get_u32();
    get_u32();  // reserved
    std::memcpy(&header_.carrier_hz, head + off, 8);
    off += 8;
    std::memcpy(&header_.nominal_period_s, head + off, 8);
    check_geometry(header_);
    last_t_.assign(kNumStreamKinds * header_.n_units,
                   -std::numeric_limits<double>::infinity());
  } catch (...) {
    std::fclose(f_);
    f_ = nullptr;
    throw;
  }
}

TraceReader::~TraceReader() {
  if (f_ != nullptr) std::fclose(f_);
}

void TraceReader::load_chunk() {
  std::uint32_t head[2];
  const std::size_t got = std::fread(head, 1, sizeof head, f_);
  if (got == 0) {
    eof_ = true;
    return;
  }
  if (got != sizeof head)
    throw TraceError(TraceError::Code::kTruncated,
                     "truncated chunk header: " + path_);
  const std::uint32_t count = head[0];
  const std::uint32_t bytes = head[1];
  if (count == 0 || bytes > kMaxChunkPayload ||
      bytes < count * kRecordHeadBytes)
    throw TraceError(TraceError::Code::kCorruptRecord,
                     "implausible chunk header: " + path_);
  chunk_.resize(bytes);
  if (std::fread(chunk_.data(), 1, bytes, f_) != bytes)
    throw TraceError(TraceError::Code::kTruncated,
                     "truncated chunk payload: " + path_);
  pos_ = 0;
  chunk_left_ = count;
}

bool TraceReader::next(TraceRecord& out) {
  while (chunk_left_ == 0) {
    if (eof_) return false;
    load_chunk();
    if (eof_) return false;
  }

  auto need = [&](std::size_t n) {
    if (chunk_.size() - pos_ < n)
      throw TraceError(TraceError::Code::kTruncated,
                       "record overruns its chunk: " + path_);
  };

  need(kRecordHeadBytes);
  const std::uint8_t kind_raw = chunk_[pos_];
  const std::uint8_t flags = chunk_[pos_ + 1];
  std::uint16_t unit = 0;
  std::memcpy(&unit, chunk_.data() + pos_ + 2, 2);
  double t = 0.0;
  std::memcpy(&t, chunk_.data() + pos_ + 4, 8);
  pos_ += kRecordHeadBytes;

  if (kind_raw >= kNumStreamKinds || (flags & ~kFlagAbsent) != 0)
    throw TraceError(TraceError::Code::kCorruptRecord,
                     "undecodable record: " + path_);
  const StreamKind kind = static_cast<StreamKind>(kind_raw);
  if (!header_.has(kind))
    throw TraceError(TraceError::Code::kCorruptRecord,
                     "record of an undeclared stream: " + path_);
  if (unit >= header_.n_units)
    throw TraceError(TraceError::Code::kCorruptRecord,
                     "record unit out of range: " + path_);
  if (t != t)  // NaN would defeat the monotonicity invariant silently
    throw TraceError(TraceError::Code::kCorruptRecord,
                     "record with NaN timestamp: " + path_);
  double& last =
      last_t_[static_cast<std::size_t>(kind) * header_.n_units + unit];
  if (t < last)
    throw TraceError(TraceError::Code::kNonMonotoneTime,
                     std::string("timestamps regress on stream '") +
                         std::string(to_string(kind)) + "': " + path_);
  last = t;

  out.kind = kind;
  out.unit = unit;
  out.t = t;
  out.present = (flags & kFlagAbsent) == 0;
  if (!out.present) {
    // Absent reads carry no payload.
  } else if (is_matrix_kind(kind)) {
    const std::size_t values = header_.csi_values();
    need(values * sizeof(std::complex<double>));
    out.csi.resize_for_overwrite(header_.n_tx, header_.n_rx, header_.n_sc);
    std::memcpy(out.csi.raw().data(), chunk_.data() + pos_,
                values * sizeof(std::complex<double>));
    pos_ += values * sizeof(std::complex<double>);
  } else {
    need(8);
    std::memcpy(&out.scalar, chunk_.data() + pos_, 8);
    pos_ += 8;
  }
  --chunk_left_;
  ++n_records_;
  if (chunk_left_ == 0 && pos_ != chunk_.size())
    throw TraceError(TraceError::Code::kCorruptRecord,
                     "chunk payload size mismatch: " + path_);
  return true;
}

}  // namespace mobiwlan::trace
