// trace_io.hpp — streamed chunked reader/writer for the MWTR trace format.
//
// TraceWriter appends records into an in-memory chunk buffer and flushes it
// to disk whenever it reaches ~256 KiB, so recording a multi-hour run writes
// sequentially in constant memory. TraceReader walks the file one chunk at a
// time with the same bound. Both enforce the format invariants (geometry,
// per-stream timestamp monotonicity, declared streams) and raise TraceError
// with a specific code on any violation — a malformed file never yields a
// silent partial trace.
#pragma once

#include <cstdio>
#include <vector>

#include "trace/format.hpp"

namespace mobiwlan::trace {

class TraceWriter {
 public:
  /// Opens `path` for writing and emits the header. Throws kOpenFailed /
  /// kBadGeometry / kWriteFailed.
  TraceWriter(const std::string& path, const TraceHeader& header);
  ~TraceWriter();  // best-effort close(); errors are swallowed here

  TraceWriter(const TraceWriter&) = delete;
  TraceWriter& operator=(const TraceWriter&) = delete;

  /// Appends one scalar record. `kind` must be declared in the header mask
  /// and scalar-payload; `t` must be non-decreasing within (kind, unit).
  void put_scalar(StreamKind kind, std::uint32_t unit, double t, double value);

  /// Appends one CSI record; the matrix must match the header geometry.
  void put_csi(StreamKind kind, std::uint32_t unit, double t,
               const CsiMatrix& csi);

  /// Appends an absence record: the read at t returned nothing (dropped
  /// export). Carries no payload; replay reproduces the absence.
  void put_absent(StreamKind kind, std::uint32_t unit, double t);

  /// Flushes the open chunk and closes the file. Throws kWriteFailed if any
  /// byte failed to reach the file. Idempotent.
  void close();

  const TraceHeader& header() const { return header_; }
  std::uint64_t records_written() const { return n_records_; }

 private:
  void begin_record(StreamKind kind, std::uint32_t unit, double t,
                    std::uint8_t flags = 0);
  void flush_chunk();

  std::FILE* f_ = nullptr;
  std::string path_;
  TraceHeader header_;
  std::vector<unsigned char> buf_;   // open chunk payload
  std::uint32_t chunk_records_ = 0;
  std::uint64_t n_records_ = 0;
  std::vector<double> last_t_;       // per (kind, unit) monotonicity cursor
};

class TraceReader {
 public:
  /// Opens `path` and validates the header. Throws kOpenFailed, kBadMagic,
  /// kBadVersion, kTruncated, or kBadGeometry.
  explicit TraceReader(const std::string& path);
  ~TraceReader();

  TraceReader(const TraceReader&) = delete;
  TraceReader& operator=(const TraceReader&) = delete;

  const TraceHeader& header() const { return header_; }

  /// Decodes the next record into `out` (reusing its CsiMatrix storage).
  /// Returns false at clean end-of-file; throws TraceError on truncation,
  /// corruption, or per-stream timestamp regression.
  bool next(TraceRecord& out);

  std::uint64_t records_read() const { return n_records_; }

 private:
  void load_chunk();  // refills chunk_ from the file; sets eof_ at clean EOF

  std::FILE* f_ = nullptr;
  std::string path_;
  TraceHeader header_;
  std::vector<unsigned char> chunk_;
  std::size_t pos_ = 0;
  std::uint32_t chunk_left_ = 0;  // records remaining in the loaded chunk
  bool eof_ = false;
  std::uint64_t n_records_ = 0;
  std::vector<double> last_t_;
};

}  // namespace mobiwlan::trace
