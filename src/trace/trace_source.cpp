#include "trace/trace_source.hpp"

#include <cmath>
#include <utility>

namespace mobiwlan::trace {

namespace {

std::string at(StreamKind kind, std::uint32_t unit, double t) {
  return std::string(to_string(kind)) + "/unit " + std::to_string(unit) +
         " at t=" + std::to_string(t);
}

}  // namespace

TraceSource::TraceSource(const std::string& path, Config config)
    : reader_(path), config_(config) {
  streams_.resize(kNumStreamKinds * header().n_units);
}

TraceSource::Stream& TraceSource::stream(StreamKind kind, std::uint32_t unit) {
  return streams_[static_cast<std::size_t>(kind) * header().n_units + unit];
}

void TraceSource::pump(Stream& s, double t) {
  const double horizon = t + config_.skew_tol_s;
  while (!reader_done_ &&
         (s.pending.empty() || s.pending.back().t <= horizon)) {
    if (!reader_.next(scratch_)) {
      reader_done_ = true;
      break;
    }
    if ((config_.ignore_mask & stream_bit(scratch_.kind)) != 0) continue;
    stream(scratch_.kind, scratch_.unit).pending.push_back(scratch_);
  }
}

const TraceRecord* TraceSource::fetch(StreamKind kind, std::uint32_t unit,
                                      double t) {
  Stream& s = stream(kind, unit);
  pump(s, t);
  const double tol = config_.skew_tol_s;
  // Records strictly behind the query were never consumed by a read: in a
  // faithful replay that cannot happen, so strict mode reports skew. Relaxed
  // mode passes over them (keeping the newest as the held value).
  while (!s.pending.empty() && s.pending.front().t < t - tol) {
    if (config_.strict) {
      throw TraceError(TraceError::Code::kTimestampSkew,
                       "strict replay: query for " + at(kind, unit, t) +
                           " skips recorded read at t=" +
                           std::to_string(s.pending.front().t));
    }
    ++counters_.skipped;
    if (s.pending.front().present) {
      s.current = std::move(s.pending.front());
      s.have_current = true;
    }
    s.pending.pop_front();
  }
  if (!s.pending.empty() && s.pending.front().t <= t + tol) {
    // A recorded absence is an answer too: the read was dropped when the
    // trace was made, so the replayed read is dropped identically.
    if (!s.pending.front().present) {
      s.pending.pop_front();
      ++counters_.absent;
      return nullptr;
    }
    s.current = std::move(s.pending.front());
    s.have_current = true;
    s.pending.pop_front();
    ++counters_.served;
    return &s.current;
  }
  // Miss: no recorded read aligns with this query.
  if (config_.strict) {
    throw TraceError(TraceError::Code::kTimestampSkew,
                     "strict replay: no recorded read matches query for " +
                         at(kind, unit, t) + " (tolerance " +
                         std::to_string(tol) + " s)");
  }
  if (s.have_current && config_.max_age_s > 0.0 &&
      t - s.current.t <= config_.max_age_s) {
    ++counters_.held;
    return &s.current;
  }
  ++counters_.missing;
  return nullptr;
}

std::optional<double> TraceSource::fetch_scalar(StreamKind kind,
                                                std::uint32_t unit, double t) {
  if (!has(kind)) return std::nullopt;
  const TraceRecord* rec = fetch(kind, unit, t);
  if (!rec) return std::nullopt;
  return rec->scalar;
}

bool TraceSource::fetch_csi(StreamKind kind, std::uint32_t unit, double t,
                            CsiMatrix& out) {
  if (!has(kind)) return false;
  const TraceRecord* rec = fetch(kind, unit, t);
  if (!rec) return false;
  out = rec->csi;
  return true;
}

bool TraceSource::csi(std::uint32_t unit, double t, CsiMatrix& out) {
  return fetch_csi(StreamKind::kCsi, unit, t, out);
}

bool TraceSource::csi_feedback(std::uint32_t unit, double t, CsiMatrix& out) {
  return fetch_csi(StreamKind::kCsiFeedback, unit, t, out);
}

bool TraceSource::csi_true(std::uint32_t unit, double t, CsiMatrix& out) {
  return fetch_csi(StreamKind::kTrueCsi, unit, t, out);
}

std::optional<double> TraceSource::rssi_dbm(std::uint32_t unit, double t) {
  return fetch_scalar(StreamKind::kRssi, unit, t);
}

std::optional<double> TraceSource::scan_rssi_dbm(std::uint32_t unit,
                                                 double t) {
  return fetch_scalar(StreamKind::kScanRssi, unit, t);
}

std::optional<double> TraceSource::tof_cycles(std::uint32_t unit, double t) {
  return fetch_scalar(StreamKind::kTof, unit, t);
}

std::optional<double> TraceSource::snr_db(std::uint32_t unit, double t) {
  return fetch_scalar(StreamKind::kSnr, unit, t);
}

std::optional<double> TraceSource::true_distance(std::uint32_t unit,
                                                 double t) {
  return fetch_scalar(StreamKind::kTrueDistance, unit, t);
}

bool TraceSource::feedback_delivered(std::uint32_t unit, double t) {
  if (!has(StreamKind::kFeedbackOk)) return true;
  const TraceRecord* rec = fetch(StreamKind::kFeedbackOk, unit, t);
  return rec == nullptr || rec->scalar != 0.0;
}

}  // namespace mobiwlan::trace
