// trace_source.hpp — replaying an ObservableSource from a recorded trace.
//
// A trace is a set of per-(kind, unit) ordered logs of reads. TraceSource
// walks each log with a cursor: every query consumes exactly one in-tolerance
// record from its stream (duplicate timestamps are legal — a roaming scan
// reads the same AP twice at one instant — and are served in log order).
// Records are decoded from the file strictly forward in one pass, so replay
// streams in memory bounded by how far the interleaved consumers drift apart,
// never by trace length.
//
// The arXiv 2002.03905 trace-replay pitfalls map to explicit behavior here:
//
//   timing skew      — in strict mode any query that does not align with the
//                      log within skew_tol_s throws kTimestampSkew (the
//                      replay-determinism gate runs strict); in relaxed mode
//                      skew is counted, never silently absorbed.
//   gaps             — a query falling in a recording hole returns *absence*,
//                      which consumers route through the classifier's
//                      hold-then-decay path. TraceSource never interpolates.
//                      max_age_s > 0 opts into serving the previous record
//                      while it is younger than the bound (for ragged
//                      external captures), still never synthesizing values.
//   missing feedback — has() reflects the header's stream mask, so
//                      ObservableSource::require() refuses to drive a
//                      consumer from a trace lacking its observables.
#pragma once

#include <deque>
#include <memory>

#include "trace/source.hpp"
#include "trace/trace_io.hpp"

namespace mobiwlan::trace {

class TraceSource : public ObservableSource {
 public:
  struct Config {
    /// Queries within this of a record's timestamp match it. Recorded
    /// replays align exactly; the default only forgives representation-level
    /// jitter in imported traces.
    double skew_tol_s = 1e-9;
    /// Relaxed mode only: serve the stream's previous record on a miss while
    /// it is at most this old. 0 = misses are absent (the gap contract).
    double max_age_s = 0.0;
    /// Strict replay: any skipped record or unmatched query throws
    /// kTimestampSkew. Relaxed replay counts them instead.
    bool strict = true;
    /// Stream kinds discarded at decode time (stream_bit() mask). Set this
    /// when a consumer deliberately ignores streams present in the trace, so
    /// their pending records don't accumulate.
    std::uint32_t ignore_mask = 0;
  };

  /// Replay tallies: `served` in-tolerance matches with a value, `absent`
  /// matches against recorded absence records (the read was dropped when
  /// recorded), `held` misses covered by max_age_s, `missing` queries with no
  /// matching record at all, `skipped` records passed over by a later query
  /// (relaxed mode only).
  struct Counters {
    std::uint64_t served = 0;
    std::uint64_t absent = 0;
    std::uint64_t held = 0;
    std::uint64_t missing = 0;
    std::uint64_t skipped = 0;
  };

  explicit TraceSource(const std::string& path) : TraceSource(path, Config{}) {}
  TraceSource(const std::string& path, Config config);

  std::size_t n_units() const override { return header().n_units; }
  bool has(StreamKind kind) const override {
    return header().has(kind) && (config_.ignore_mask & stream_bit(kind)) == 0;
  }

  bool csi(std::uint32_t unit, double t, CsiMatrix& out) override;
  bool csi_feedback(std::uint32_t unit, double t, CsiMatrix& out) override;
  bool csi_true(std::uint32_t unit, double t, CsiMatrix& out) override;
  std::optional<double> rssi_dbm(std::uint32_t unit, double t) override;
  std::optional<double> scan_rssi_dbm(std::uint32_t unit, double t) override;
  std::optional<double> tof_cycles(std::uint32_t unit, double t) override;
  std::optional<double> snr_db(std::uint32_t unit, double t) override;
  std::optional<double> true_distance(std::uint32_t unit, double t) override;
  bool feedback_delivered(std::uint32_t unit, double t) override;

  const TraceHeader& header() const { return reader_.header(); }
  const Config& config() const { return config_; }
  const Counters& counters() const { return counters_; }

 private:
  struct Stream {
    std::deque<TraceRecord> pending;  // decoded, not yet consumed
    TraceRecord current;              // last consumed record
    bool have_current = false;
  };

  Stream& stream(StreamKind kind, std::uint32_t unit);
  /// Decodes records forward until `s` can answer a query at time t (it holds
  /// a record with timestamp > t + tol) or the file ends.
  void pump(Stream& s, double t);
  /// Consumes and returns the record matching (kind, unit, t), nullptr on an
  /// uncovered miss. Throws kTimestampSkew per the strictness contract.
  const TraceRecord* fetch(StreamKind kind, std::uint32_t unit, double t);
  std::optional<double> fetch_scalar(StreamKind kind, std::uint32_t unit,
                                     double t);
  bool fetch_csi(StreamKind kind, std::uint32_t unit, double t,
                 CsiMatrix& out);

  TraceReader reader_;
  Config config_;
  Counters counters_;
  std::vector<Stream> streams_;  // [kind * n_units + unit]
  TraceRecord scratch_;          // decode target before routing
  bool reader_done_ = false;
};

}  // namespace mobiwlan::trace
