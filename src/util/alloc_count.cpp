#include "util/alloc_count.hpp"

#include <atomic>

namespace mobiwlan {
namespace {

std::atomic<std::uint64_t> g_count{0};
std::atomic<bool> g_active{false};

}  // namespace

std::uint64_t alloc_count() { return g_count.load(std::memory_order_relaxed); }

bool alloc_hook_active() { return g_active.load(std::memory_order_relaxed); }

namespace detail {

void alloc_count_bump() { g_count.fetch_add(1, std::memory_order_relaxed); }

void alloc_hook_mark_active() {
  g_active.store(true, std::memory_order_relaxed);
}

}  // namespace detail
}  // namespace mobiwlan
