// alloc_count.hpp — global heap-allocation counter for perf instrumentation.
//
// The counter itself lives in mobiwlan_util and is always linkable, but it
// only advances when the counting operator-new hook (the mobiwlan_alloc_hook
// object library, src/util/alloc_hook.cpp) is linked into the executable.
// Production binaries never link the hook, so they pay nothing; the perf
// bench and the zero-allocation regression test link it to observe
// allocs-per-operation on the hot paths.
#pragma once

#include <cstdint>

namespace mobiwlan {

/// Total global operator-new invocations since process start. Stays 0 when
/// the counting hook is not linked.
std::uint64_t alloc_count();

/// True when the counting hook is linked into this executable (i.e. the
/// value of alloc_count() is meaningful).
bool alloc_hook_active();

namespace detail {
/// Implementation hooks for alloc_hook.cpp — not part of the public API.
void alloc_count_bump();
void alloc_hook_mark_active();
}  // namespace detail

}  // namespace mobiwlan
