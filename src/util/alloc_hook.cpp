// alloc_hook.cpp — counting replacements for the global allocation functions.
//
// Built as the mobiwlan_alloc_hook OBJECT library and linked ONLY into
// binaries that want to measure heap traffic (the --perf bench mode and the
// zero-allocation regression test). Linking this file replaces operator
// new/delete program-wide, so keep it out of everything else.
#include <cstdlib>
#include <new>

#include "util/alloc_count.hpp"

namespace {

const bool g_marked = [] {
  mobiwlan::detail::alloc_hook_mark_active();
  return true;
}();

void* counted_alloc(std::size_t n) {
  mobiwlan::detail::alloc_count_bump();
  if (n == 0) n = 1;
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc();
}

}  // namespace

void* operator new(std::size_t n) { return counted_alloc(n); }
void* operator new[](std::size_t n) { return counted_alloc(n); }
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  mobiwlan::detail::alloc_count_bump();
  return std::malloc(n ? n : 1);
}
void* operator new[](std::size_t n, const std::nothrow_t&) noexcept {
  mobiwlan::detail::alloc_count_bump();
  return std::malloc(n ? n : 1);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
