// fastmath.hpp — inline trigonometry for the simulator's hot loops.
//
// glibc's sincos costs ~20 ns/call on typical hosts, and the channel
// sampler needs one per CSI noise draw (hundreds per sample) plus several
// per path in synthesis. This header provides the classic fdlibm kernel
// (argument reduction by pi/2 plus minimax polynomials on [-pi/4, pi/4]),
// which inlines to ~25 flops and agrees with libm to within ~2 ulp — far
// inside the 1e-12 numerical-equivalence budget the channel refactor is
// held to (tests/chan/channel_equivalence_test.cpp).
//
// Only valid for |x| <= kSincosMaxArg: the two-term Cody-Waite reduction
// loses accuracy once k = round(x * 2/pi) stops being a small integer.
// Callers with unbounded phases (e.g. carrier-scale path delays) must keep
// using std::sin/std::cos.
#pragma once

#include <bit>
#include <cmath>
#include <cstdint>
#include <cstdlib>

namespace mobiwlan::fastmath {

/// Largest |x| for which sincos() keeps full accuracy (|k| <= 16).
inline constexpr double kSincosMaxArg = 25.0;

namespace detail {

// fdlibm __kernel_sin / __kernel_cos minimax coefficients on [-pi/4, pi/4].
inline constexpr double kS1 = -1.66666666666666324348e-01;
inline constexpr double kS2 = 8.33333333332248946124e-03;
inline constexpr double kS3 = -1.98412698298579493134e-04;
inline constexpr double kS4 = 2.75573137070700676789e-06;
inline constexpr double kS5 = -2.50507602534068634195e-08;
inline constexpr double kS6 = 1.58969099521155010221e-10;
inline constexpr double kC1 = 4.16666666666666019037e-02;
inline constexpr double kC2 = -1.38888888888741095749e-03;
inline constexpr double kC3 = 2.48015872894767294178e-05;
inline constexpr double kC4 = -2.75573143513906633035e-07;
inline constexpr double kC5 = 2.08757232129817482790e-09;
inline constexpr double kC6 = -1.13596475577881948265e-11;

// pi/2 split for Cody-Waite reduction: pio2_hi has 33 significant bits, so
// k * pio2_hi is exact for |k| < 2^20; pio2_lo supplies the next 71 bits.
inline constexpr double kTwoOverPi = 6.36619772367581382433e-01;
inline constexpr double kPio2Hi = 1.57079632673412561417e+00;
inline constexpr double kPio2Lo = 6.07710050650619224932e-11;

inline double poly_sin(double r) {
  const double z = r * r;
  const double p = kS2 + z * (kS3 + z * (kS4 + z * (kS5 + z * kS6)));
  return r + (z * r) * (kS1 + z * p);
}

inline double poly_cos(double r) {
  const double z = r * r;
  const double p = z * (kC1 + z * (kC2 + z * (kC3 + z * (kC4 + z * (kC5 + z * kC6)))));
  const double hz = 0.5 * z;
  const double w = 1.0 - hz;
  return w + ((1.0 - w) - hz + z * p);
}

// fdlibm __ieee754_log: ln2 split plus the atanh-series coefficients for
// log((2+f)/(2-f)) evaluated at s = f/(2+f).
inline constexpr double kLn2Hi = 6.93147180369123816490e-01;
inline constexpr double kLn2Lo = 1.90821492927058770002e-10;
inline constexpr double kLg1 = 6.666666666666735130e-01;
inline constexpr double kLg2 = 3.999999999940941908e-01;
inline constexpr double kLg3 = 2.857142874366239149e-01;
inline constexpr double kLg4 = 2.222219843214978396e-01;
inline constexpr double kLg5 = 1.818357216161805012e-01;
inline constexpr double kLg6 = 1.531383769920937332e-01;
inline constexpr double kLg7 = 1.479819860511658591e-01;

}  // namespace detail

/// log(x) for finite normal x > 0, accurate to ~1 ulp (fdlibm kernel, no
/// special-case branches: subnormals, zero, negatives and non-finite inputs
/// are the caller's responsibility).
inline double log_pos(double x) {
  std::uint64_t bits = std::bit_cast<std::uint64_t>(x);
  std::uint32_t hx = static_cast<std::uint32_t>(bits >> 32);
  int k = static_cast<int>(hx >> 20) - 1023;
  hx &= 0x000fffffu;
  // Normalize the significand into [sqrt(2)/2, sqrt(2)) so f = m - 1 stays
  // small; the rounding constant picks the closer of m or m/2.
  const std::uint32_t i = (hx + 0x95f64u) & 0x100000u;
  k += static_cast<int>(i >> 20);
  bits = (static_cast<std::uint64_t>(hx | (i ^ 0x3ff00000u)) << 32) |
         (bits & 0xffffffffu);
  const double m = std::bit_cast<double>(bits);
  const double f = m - 1.0;
  const double s = f / (2.0 + f);
  const double z = s * s;
  const double w = z * z;
  const double t1 = w * (detail::kLg2 + w * (detail::kLg4 + w * detail::kLg6));
  const double t2 =
      z * (detail::kLg1 + w * (detail::kLg3 + w * (detail::kLg5 + w * detail::kLg7)));
  const double r = t2 + t1;
  const double hfsq = 0.5 * f * f;
  const double dk = static_cast<double>(k);
  return dk * detail::kLn2Hi - ((hfsq - (s * (hfsq + r) + dk * detail::kLn2Lo)) - f);
}

/// Computes sin(x) and cos(x) for |x| <= kSincosMaxArg, accurate to ~2 ulp.
inline void sincos(double x, double& sin_out, double& cos_out) {
  const long k = std::lrint(x * detail::kTwoOverPi);
  const double kd = static_cast<double>(k);
  const double r = (x - kd * detail::kPio2Hi) - kd * detail::kPio2Lo;
  const double s = detail::poly_sin(r);
  const double c = detail::poly_cos(r);
  switch (k & 3) {
    case 0: sin_out = s; cos_out = c; break;
    case 1: sin_out = c; cos_out = -s; break;
    case 2: sin_out = -s; cos_out = -c; break;
    default: sin_out = -c; cos_out = s; break;
  }
}

/// Largest |x| for which sincos_wide() holds its accuracy bound. k = round(x *
/// 2/pi) stays below 2^20, so k * pio2_hi (33 significant bits) is exact and
/// the k * pio2_lo correction still carries the full tail of pi/2.
inline constexpr double kSincosWideMaxArg = 1.0e6;

/// sin(x) and cos(x) for |x| <= kSincosWideMaxArg — the carrier-scale phase
/// range (-2*pi*f_c*tau is tens of thousands of radians for indoor path
/// delays). Same Cody-Waite reduction as sincos(): x - k*pio2_hi is exact by
/// Sterbenz (the two agree to within pi/4), and the neglected tail of pi/2
/// beyond pio2_hi + pio2_lo contributes < k * 1e-26 ~ 1e-20 rad of phase
/// error — orders of magnitude inside the 1e-12 equivalence budget, where
/// libm's sincos costs ~16 ns at these magnitudes (large-argument reduction).
inline void sincos_wide(double x, double& sin_out, double& cos_out) {
  const double kd = std::nearbyint(x * detail::kTwoOverPi);
  const double r = (x - kd * detail::kPio2Hi) - kd * detail::kPio2Lo;
  const double s = detail::poly_sin(r);
  const double c = detail::poly_cos(r);
  switch (static_cast<long>(kd) & 3) {
    case 0: sin_out = s; cos_out = c; break;
    case 1: sin_out = c; cos_out = -s; break;
    case 2: sin_out = -s; cos_out = -c; break;
    default: sin_out = -c; cos_out = s; break;
  }
}

/// sin(x) alone over the wide range (spatial shadowing field, mover pacing).
inline double sin_wide(double x) {
  double s, c;
  sincos_wide(x, s, c);
  return s;
}

/// 10^(db/20) — amplitude form of dB, via exp2 (one exp2 instead of a full
/// pow): 10^(x/20) = 2^(x * log2(10)/20). Relative error ~2 ulp.
inline double db_to_amplitude(double db) {
  return std::exp2(db * 0.16609640474436813);  // log2(10)/20
}

/// log10(x) for finite normal x > 0, via log_pos. Relative error ~2 ulp.
inline double log10_pos(double x) {
  return log_pos(x) * 0.43429448190325176;  // 1/ln(10)
}

// ---------------------------------------------------------------------------
// fp32 kernels — the scalar references for the float32 precision tier.
//
// These are single-precision ports of the kernels above, evaluated entirely
// in float (the vector variants in util/simd_math.hpp perform the same
// operation sequence 8 or 16 lanes wide). All accuracy bounds below are in
// *float* ulps (1 ulp_f32 ~ 1.19e-7 relative). The fp32 channel tier calls
// them only on pre-reduced arguments: phases beyond the float range are
// reduced in double first (chan/channel_batch.cpp), because a float simply
// cannot represent a carrier-scale phase to better than ~1e-2 rad.
// ---------------------------------------------------------------------------

/// Largest |x| for which sincos_f32 holds its bound: k = round(x * 2/pi)
/// stays below 2^10, so k * kPio2AF (14 significand bits) is exact in float
/// and the B/C correction terms carry the tail of pi/2.
inline constexpr float kSincosF32MaxArg = 1024.0f;

/// Largest |x| for which exp2_f32 holds its bound (result stays normal:
/// 2^-126 .. 2^127, with the reduction margin).
inline constexpr float kExp2F32MaxArg = 126.0f;

namespace detail {

// pi/2 split for the float Cody-Waite reduction (half the sleef PI_*2f
// split of pi): A carries 14 significand bits so k*A is exact for
// |k| < 2^10; B and C supply the next ~46 bits via FMA.
inline constexpr float kTwoOverPiF = 6.3661977e-01f;
inline constexpr float kPio2AF = 1.57073974609375f;
inline constexpr float kPio2BF = 5.657970905303955078125e-05f;
inline constexpr float kPio2CF = 9.9209363648873916e-10f;

// cephes sinf/cosf minimax coefficients on [-pi/4, pi/4].
inline constexpr float kSF1 = -1.6666654611e-01f;
inline constexpr float kSF2 = 8.3321608736e-03f;
inline constexpr float kSF3 = -1.9515295891e-04f;
inline constexpr float kCF1 = 4.166664568298827e-02f;
inline constexpr float kCF2 = -1.388731625493765e-03f;
inline constexpr float kCF3 = 2.443315711809948e-05f;

inline float poly_sin_f32(float r) {
  const float z = r * r;
  const float p = kSF1 + z * (kSF2 + z * kSF3);
  return r + (z * r) * p;
}

inline float poly_cos_f32(float r) {
  const float z = r * r;
  const float p = z * z * (kCF1 + z * (kCF2 + z * kCF3));
  return (1.0f - 0.5f * z) + p;
}

// fdlibm e_logf: ln2 split plus the float atanh-series coefficients.
inline constexpr float kLn2HiF = 6.9313812256e-01f;
inline constexpr float kLn2LoF = 9.0580006145e-06f;
inline constexpr float kLgF1 = 6.6666662693e-01f;
inline constexpr float kLgF2 = 4.0000972152e-01f;
inline constexpr float kLgF3 = 2.8498786688e-01f;
inline constexpr float kLgF4 = 2.4279078841e-01f;

}  // namespace detail

/// sin(x) and cos(x) in float for |x| <= kSincosF32MaxArg, accurate to
/// ~2 ulp_f32 (absolute error <= ~2e-7 near the trig zeros, where a
/// relative bound is meaningless).
inline void sincos_f32(float x, float& sin_out, float& cos_out) {
  const float kd = std::nearbyintf(x * detail::kTwoOverPiF);
  // Three-term Cody-Waite; written as fused ops so scalar and vector
  // evaluations agree to rounding (the vector kernels use FMA).
  float r = std::fmaf(kd, -detail::kPio2AF, x);
  r = std::fmaf(kd, -detail::kPio2BF, r);
  r = std::fmaf(kd, -detail::kPio2CF, r);
  const float s = detail::poly_sin_f32(r);
  const float c = detail::poly_cos_f32(r);
  switch (static_cast<long>(kd) & 3) {
    case 0: sin_out = s; cos_out = c; break;
    case 1: sin_out = c; cos_out = -s; break;
    case 2: sin_out = -s; cos_out = -c; break;
    default: sin_out = -c; cos_out = s; break;
  }
}

/// log(x) in float for finite normal float x > 0, accurate to ~1 ulp_f32
/// (fdlibm e_logf kernel; subnormals, zero, negatives and non-finite
/// inputs are the caller's responsibility, same contract as log_pos).
inline float log_pos_f32(float x) {
  std::uint32_t bits = std::bit_cast<std::uint32_t>(x);
  int k = static_cast<int>(bits >> 23) - 127;
  bits &= 0x007fffffu;
  // Normalize the significand into [sqrt(2)/2, sqrt(2)).
  const std::uint32_t i = (bits + 0x4afb20u) & 0x800000u;
  k += static_cast<int>(i >> 23);
  const float m = std::bit_cast<float>(bits | (i ^ 0x3f800000u));
  const float f = m - 1.0f;
  const float s = f / (2.0f + f);
  const float z = s * s;
  const float w = z * z;
  const float t1 = w * (detail::kLgF2 + w * detail::kLgF4);
  const float t2 = z * (detail::kLgF1 + w * detail::kLgF3);
  const float r = t2 + t1;
  const float hfsq = 0.5f * f * f;
  const float dk = static_cast<float>(k);
  return dk * detail::kLn2HiF -
         ((hfsq - (s * (hfsq + r) + dk * detail::kLn2LoF)) - f);
}

/// 2^x in float for |x| <= kExp2F32MaxArg, accurate to ~2 ulp_f32.
/// Reduction x = k + f with k integral and |f| <= 1/2 is exact; 2^f =
/// exp(f ln2) by a degree-7 Horner chain (truncation < 1 ulp_f32 at
/// |f ln2| <= 0.347); the 2^k scale is an exact exponent-field multiply.
inline float exp2_f32(float x) {
  const float kd = std::nearbyintf(x);
  const float t = (x - kd) * 0.69314718056f;  // ln 2
  float p = 1.0f / 5040.0f;
  p = std::fmaf(t, p, 1.0f / 720.0f);
  p = std::fmaf(t, p, 1.0f / 120.0f);
  p = std::fmaf(t, p, 1.0f / 24.0f);
  p = std::fmaf(t, p, 1.0f / 6.0f);
  p = std::fmaf(t, p, 0.5f);
  p = std::fmaf(t, p, 1.0f);
  p = std::fmaf(t, p, 1.0f);
  const std::int32_t k = static_cast<std::int32_t>(kd);
  const float scale = std::bit_cast<float>((k + 127) << 23);
  return p * scale;
}

/// 10^(db/20) in float — the fp32 amplitude form of dB. The float product
/// rounds the *exponent* to ~|x| * 2^-24, so the relative error grows with
/// |db|: ~3 ulp_f32 near 0 dB, ~0.12 * |db| ulp_f32 beyond (~25 ulp_f32,
/// 3e-6 relative, at the -200 dB extreme) — still far inside the fp32
/// tier's 1e-4 budget over the whole dB range the channel code uses.
inline float db_to_amplitude_f32(float db) {
  return exp2_f32(db * 0.166096404744368f);  // log2(10)/20
}

}  // namespace mobiwlan::fastmath
