#include "util/filters.hpp"

#include "util/stats.hpp"

namespace mobiwlan {

MovingAverage::MovingAverage(std::size_t window) : window_(window == 0 ? 1 : window) {}

void MovingAverage::add(double x) {
  buffer_.push_back(x);
  sum_ += x;
  if (buffer_.size() > window_) {
    sum_ -= buffer_.front();
    buffer_.pop_front();
  }
}

double MovingAverage::value() const {
  if (buffer_.empty()) return 0.0;
  return sum_ / static_cast<double>(buffer_.size());
}

void MovingAverage::reset() {
  buffer_.clear();
  sum_ = 0.0;
}

std::optional<double> MedianAggregator::flush() {
  if (pending_.empty()) return std::nullopt;
  const double m = median_of(pending_);
  pending_.clear();
  return m;
}

TrendWindow::TrendWindow(std::size_t window, double slack)
    : window_(window < 2 ? 2 : window), slack_(slack) {}

void TrendWindow::add(double x) {
  values_.push_back(x);
  if (values_.size() > window_) values_.pop_front();
}

bool TrendWindow::increasing(double min_change) const {
  if (values_.size() < window_) return false;
  for (std::size_t i = 1; i < values_.size(); ++i) {
    if (values_[i] < values_[i - 1] - slack_) return false;
  }
  return net_change() > min_change;
}

bool TrendWindow::decreasing(double min_change) const {
  if (values_.size() < window_) return false;
  for (std::size_t i = 1; i < values_.size(); ++i) {
    if (values_[i] > values_[i - 1] + slack_) return false;
  }
  return -net_change() > min_change;
}

double TrendWindow::net_change() const {
  if (values_.size() < 2) return 0.0;
  return values_.back() - values_.front();
}

void TrendWindow::reset() { values_.clear(); }

}  // namespace mobiwlan
