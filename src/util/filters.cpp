#include "util/filters.hpp"

#include <algorithm>

namespace mobiwlan {

MovingAverage::MovingAverage(std::size_t window)
    : window_(window == 0 ? 1 : window), ring_(window_) {}

void MovingAverage::add(double x) {
  sum_ += x;
  if (count_ < window_) {
    // head_ < window_ and count_ <= window_, so one conditional subtract
    // replaces the modulo (a hardware divide on the hot path).
    std::size_t idx = head_ + count_;
    if (idx >= window_) idx -= window_;
    ring_[idx] = x;
    ++count_;
  } else {
    sum_ -= ring_[head_];
    ring_[head_] = x;
    ++head_;
    if (head_ == window_) head_ = 0;
  }
}

double MovingAverage::value() const {
  if (count_ == 0) return 0.0;
  return sum_ / static_cast<double>(count_);
}

void MovingAverage::reset() {
  head_ = 0;
  count_ = 0;
  sum_ = 0.0;
}

std::optional<double> MedianAggregator::flush() {
  if (pending_.empty()) return std::nullopt;
  // Same arithmetic as stats.hpp's median_of, but selecting in place: the
  // buffer is about to be cleared, so there is no reason to copy it.
  const auto mid = pending_.size() / 2;
  std::nth_element(pending_.begin(), pending_.begin() + mid, pending_.end());
  double m = pending_[mid];
  if (pending_.size() % 2 == 0) {
    const auto lower = std::max_element(pending_.begin(), pending_.begin() + mid);
    m = (m + *lower) / 2.0;
  }
  pending_.clear();
  return m;
}

TrendWindow::TrendWindow(std::size_t window, double slack)
    : window_(window < 2 ? 2 : window), slack_(slack), ring_(window_) {}

void TrendWindow::add(double x) {
  if (count_ < window_) {
    ring_[(head_ + count_) % window_] = x;
    ++count_;
  } else {
    ring_[head_] = x;
    head_ = (head_ + 1) % window_;
  }
}

bool TrendWindow::increasing(double min_change) const {
  if (count_ < window_) return false;
  for (std::size_t i = 1; i < count_; ++i) {
    if (value(i) < value(i - 1) - slack_) return false;
  }
  return net_change() > min_change;
}

bool TrendWindow::decreasing(double min_change) const {
  if (count_ < window_) return false;
  for (std::size_t i = 1; i < count_; ++i) {
    if (value(i) > value(i - 1) + slack_) return false;
  }
  return -net_change() > min_change;
}

double TrendWindow::net_change() const {
  if (count_ < 2) return 0.0;
  return value(count_ - 1) - value(0);
}

void TrendWindow::reset() {
  head_ = 0;
  count_ = 0;
}

}  // namespace mobiwlan
