// filters.hpp — windowed filters used by the mobility-classification pipeline.
//
// The paper's ToF pipeline (§2.4) samples ToF every 20 ms, aggregates each
// second with a median filter, and then looks for a monotone trend across a
// few seconds of medians. The CSI pipeline maintains a moving average of
// similarity values. These small value-semantic classes implement exactly
// those primitives.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "util/prefetch.hpp"

namespace mobiwlan {

/// Exponentially-weighted moving average: v <- alpha*x + (1-alpha)*v.
///
/// This is the Atheros PER low-pass filter from §4.1 (default alpha = 1/8);
/// the mobility-aware RA re-parameterizes alpha per mobility mode.
class Ewma {
 public:
  explicit Ewma(double alpha, double initial = 0.0)
      : alpha_(alpha), value_(initial) {}

  void add(double x) {
    if (!primed_) {
      value_ = x;
      primed_ = true;
    } else {
      value_ = alpha_ * x + (1.0 - alpha_) * value_;
    }
  }

  double value() const { return value_; }
  bool primed() const { return primed_; }
  double alpha() const { return alpha_; }
  void set_alpha(double alpha) { alpha_ = alpha; }
  void reset(double initial = 0.0) {
    value_ = initial;
    primed_ = false;
  }

 private:
  double alpha_;
  double value_;
  bool primed_ = false;
};

/// Fixed-capacity moving average over the last `window` samples.
///
/// Backed by a preallocated ring buffer: add() never allocates, so the
/// per-packet similarity pipeline that feeds it stays allocation-free (a
/// deque-backed window allocates a fresh block every ~64 pushes).
class MovingAverage {
 public:
  explicit MovingAverage(std::size_t window);

  void add(double x);
  /// Mean of the retained samples; 0 when empty.
  double value() const;
  std::size_t count() const { return count_; }
  bool full() const { return count_ == window_; }
  void reset();

  /// Cache-hint: streams the ring buffer in ahead of the next add().
  void prefetch() const {
    prefetch_lines(ring_.data(), ring_.size() * sizeof(double),
                   /*for_write=*/true);
  }

 private:
  std::size_t window_;
  std::vector<double> ring_;  // capacity fixed at window_
  std::size_t head_ = 0;      // index of the oldest retained sample
  std::size_t count_ = 0;
  double sum_ = 0.0;
};

/// Collects samples and emits their median when asked, then clears.
///
/// Models the per-second median aggregation of raw 20 ms ToF readings.
/// flush() selects the median in place (the buffer is discarded anyway), so
/// after the first full period the aggregator stops allocating.
class MedianAggregator {
 public:
  MedianAggregator() = default;
  /// Preallocates the pending buffer so the first period never allocates
  /// either — for hot loops that meter allocations from the first sample.
  explicit MedianAggregator(std::size_t reserve) { pending_.reserve(reserve); }

  void add(double x) { pending_.push_back(x); }
  std::size_t pending_count() const { return pending_.size(); }

  /// Median of the pending samples, or nullopt if none; clears the buffer.
  std::optional<double> flush();

  /// Drops pending samples, keeping the buffer capacity.
  void clear() { pending_.clear(); }

 private:
  std::vector<double> pending_;
};

/// Sliding window of the most recent `window` values with trend queries.
///
/// "Only if all the ToF values in the moving window suggest an increasing or
/// decreasing trend, we declare that the client is under macro-mobility."
class TrendWindow {
 public:
  /// `window` is the number of retained values; `slack` allows each
  /// consecutive pair to move against the trend by at most this much
  /// (absorbs quantization plateaus in clock-cycle ToF values).
  explicit TrendWindow(std::size_t window, double slack = 0.0);

  void add(double x);
  bool full() const { return count_ == window_; }
  std::size_t count() const { return count_; }

  /// True if the window is full and values are non-decreasing (within slack)
  /// with a strictly positive overall rise greater than `min_change`.
  bool increasing(double min_change = 0.0) const;
  /// Mirror image of increasing().
  bool decreasing(double min_change = 0.0) const;
  /// Total change last - first (0 if fewer than 2 values).
  double net_change() const;
  void reset();

  /// i-th retained value, oldest first (i < count()).
  double value(std::size_t i) const { return ring_[(head_ + i) % window_]; }

 private:
  std::size_t window_;
  double slack_;
  std::vector<double> ring_;  // capacity fixed at window_; add() never allocates
  std::size_t head_ = 0;      // index of the oldest retained value
  std::size_t count_ = 0;
};

}  // namespace mobiwlan
