#include "util/flatjson.hpp"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace mobiwlan {

std::map<std::string, double> parse_flat_json_numbers(const std::string& text) {
  std::map<std::string, double> out;
  std::size_t i = 0;
  while ((i = text.find('"', i)) != std::string::npos) {
    const std::size_t key_end = text.find('"', i + 1);
    if (key_end == std::string::npos) break;
    const std::string key = text.substr(i + 1, key_end - i - 1);
    std::size_t j = key_end + 1;
    while (j < text.size() && std::isspace(static_cast<unsigned char>(text[j])))
      ++j;
    if (j < text.size() && text[j] == ':') {
      ++j;
      while (j < text.size() &&
             std::isspace(static_cast<unsigned char>(text[j])))
        ++j;
      char* end = nullptr;
      const double v = std::strtod(text.c_str() + j, &end);
      if (end && end != text.c_str() + j) out[key] = v;
    }
    i = key_end + 1;
  }
  return out;
}

std::map<std::string, double> load_flat_json(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return {};
  std::ostringstream ss;
  ss << in.rdbuf();
  return parse_flat_json_numbers(ss.str());
}

}  // namespace mobiwlan
