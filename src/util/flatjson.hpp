// flatjson.hpp — reader for the flat `"key": number` JSON documents the
// bench and CI tooling exchange.
//
// BENCH_channel.json, BENCH_fidelity.json, ci/perf_baseline.json and
// ci/fidelity_baseline.json are all written as a single JSON object whose
// values are numbers (strings are permitted but ignored). Parsing exactly
// that shape takes thirty lines and avoids dragging a JSON dependency into
// the build; anything nested is flattened by the writers before it lands in
// these files.
#pragma once

#include <map>
#include <string>

namespace mobiwlan {

/// Extracts every `"key": number` pair from `text`, in key-sorted order.
/// Non-numeric values are skipped; duplicate keys keep the last value.
std::map<std::string, double> parse_flat_json_numbers(const std::string& text);

/// parse_flat_json_numbers over the contents of `path`; empty map if the
/// file cannot be read.
std::map<std::string, double> load_flat_json(const std::string& path);

}  // namespace mobiwlan
