// lane_math.hpp — scalar fp64 kernels that are *bitwise* mirrors of the
// 4-lane AVX2+FMA kernels in simd_math.hpp.
//
// The vector kernels (simdmath::vsincos / vlog_pos / vexp2) evaluate the
// same fdlibm-derived polynomials as fastmath.hpp, but with FMA contraction
// at fixed points — so a lane disagrees with the plain-multiply scalar
// kernels by a last-ulp here and there. That gap is irrelevant for accuracy
// but fatal for the campus determinism contract, which wants one bit
// pattern per observable on *every* host, AVX2 or not.
//
// These functions re-state the vector kernels lane-for-lane: every fused
// multiply-add in the vector code is an explicit std::fma here, every plain
// vector multiply/add stays a plain multiply/add, and the reductions keep
// the exact lane order. std::fma is correctly rounded by IEEE 754 (glibc
// dispatches to the hardware FMA where present and to a correctly-rounded
// soft path otherwise), so
//
//     lanemath::f(x) == lane_i(simdmath::vf(broadcast(x)))   bit-for-bit
//
// on every conforming host. tests/util/lane_exact_test.cpp asserts exactly
// that across the kernels' documented domains.
//
// Callers: the scalar fallbacks of the batched channel engine
// (chan/channel_batch.cpp), the Box-Muller noise fill (util/rng.cpp) and
// the Eq.-1 similarity kernel (core/csi_similarity.cpp) — the code paths
// whose outputs flow into gated digests. The per-link channel path
// (chan/channel.cpp) keeps the original fastmath kernels: its bitstream is
// frozen by the golden fixtures and the fidelity gate.
#pragma once

#include <bit>
#include <cmath>
#include <cstdint>
#include <numbers>

#include "util/fastmath.hpp"

namespace mobiwlan::lanemath {

/// sin and cos of x — bitwise mirror of one lane of simdmath::vsincos.
/// Domain: |x| <= fastmath::kSincosWideMaxArg.
inline void sincos(double x, double& s_out, double& c_out) {
  namespace fm = fastmath::detail;
  // _mm256_round_pd(TO_NEAREST): round-half-to-even, like nearbyint under
  // the default rounding mode.
  const double kd = std::nearbyint(x * fm::kTwoOverPi);
  // fnmadd(kd, hi, x) = x - kd*hi with a single rounding.
  double r = std::fma(-kd, fm::kPio2Hi, x);
  r = std::fma(-kd, fm::kPio2Lo, r);
  const double z = r * r;
  double ps = std::fma(z, fm::kS6, fm::kS5);
  ps = std::fma(z, ps, fm::kS4);
  ps = std::fma(z, ps, fm::kS3);
  ps = std::fma(z, ps, fm::kS2);
  ps = std::fma(z, ps, fm::kS1);
  const double psin = std::fma(z * r, ps, r);
  double pc = std::fma(z, fm::kC6, fm::kC5);
  pc = std::fma(z, pc, fm::kC4);
  pc = std::fma(z, pc, fm::kC3);
  pc = std::fma(z, pc, fm::kC2);
  pc = std::fma(z, pc, fm::kC1);
  const double hz = 0.5 * z;
  const double w = 1.0 - hz;
  const double pcos = w + (((1.0 - w) - hz) + z * (z * pc));
  // Quadrant: sin = {s, c, -s, -c}[n & 3], cos = {c, -s, -c, s}[n & 3].
  // kd is integral, so the truncating cast equals the vector's
  // round-to-nearest int conversion; the sign flips are exact sign-bit
  // xors, identical to the vector's _mm256_xor_pd.
  const auto n = static_cast<std::int64_t>(kd);
  const bool odd = (n & 1) != 0;
  double s = odd ? pcos : psin;
  double c = odd ? psin : pcos;
  if ((n & 2) != 0) s = -s;
  if (((n + 1) & 2) != 0) c = -c;
  s_out = s;
  c_out = c;
}

/// sin(x) alone (same kernel; the cos is dead code the optimizer drops).
inline double sin(double x) {
  double s, c;
  sincos(x, s, c);
  return s;
}

/// log(x) for finite normal positive x — bitwise mirror of one lane of
/// simdmath::vlog_pos.
inline double log_pos(double x) {
  namespace fm = fastmath::detail;
  const std::uint64_t bits = std::bit_cast<std::uint64_t>(x);
  // 64-bit lane arithmetic wraps mod 2^64 exactly like _mm256_sub_epi64;
  // the final value fits int32, matching the vector's cvtepi32 compress.
  std::uint64_t k = (bits >> 52) - 1023;
  const std::uint64_t hi20 = (bits >> 32) & 0xfffff;
  const std::uint64_t i20 = (hi20 + 0x95f64) & 0x100000;
  k += i20 >> 20;
  const std::uint64_t mant = bits & 0x000fffffffffffffULL;
  const std::uint64_t expfield = (i20 ^ 0x3ff00000ULL) << 32;
  const double m = std::bit_cast<double>(mant | expfield);
  const double dk = static_cast<double>(static_cast<std::int64_t>(k));
  const double f = m - 1.0;
  const double s = f / (2.0 + f);
  const double z = s * s;
  const double w = z * z;
  const double t1 =
      w * std::fma(w, std::fma(w, fm::kLg6, fm::kLg4), fm::kLg2);
  const double t2 =
      z * std::fma(w, std::fma(w, std::fma(w, fm::kLg7, fm::kLg5), fm::kLg3),
                   fm::kLg1);
  const double r = t2 + t1;
  const double hfsq = 0.5 * (f * f);
  // dk*ln2_hi - ((hfsq - (s*(hfsq+r) + dk*ln2_lo)) - f)
  const double inner = std::fma(dk, fm::kLn2Lo, s * (hfsq + r));
  return std::fma(dk, fm::kLn2Hi, f - (hfsq - inner));
}

/// 2^x for |x| <= 256 — bitwise mirror of one lane of simdmath::vexp2.
inline double exp2(double x) {
  const double kd = std::nearbyint(x);
  const double t = (x - kd) * std::numbers::ln2;
  double p = 1.0 / 479001600.0;  // 1/12!
  p = std::fma(t, p, 1.0 / 39916800.0);
  p = std::fma(t, p, 1.0 / 3628800.0);
  p = std::fma(t, p, 1.0 / 362880.0);
  p = std::fma(t, p, 1.0 / 40320.0);
  p = std::fma(t, p, 1.0 / 5040.0);
  p = std::fma(t, p, 1.0 / 720.0);
  p = std::fma(t, p, 1.0 / 120.0);
  p = std::fma(t, p, 1.0 / 24.0);
  p = std::fma(t, p, 1.0 / 6.0);
  p = std::fma(t, p, 0.5);
  p = std::fma(t, p, 1.0);
  p = std::fma(t, p, 1.0);
  // Exact 2^k via the exponent field; kd is integral and |kd| <= 256.
  const auto k = static_cast<std::int64_t>(kd);
  const double scale =
      std::bit_cast<double>(static_cast<std::uint64_t>(k + 1023) << 52);
  return p * scale;
}

}  // namespace mobiwlan::lanemath
